#!/usr/bin/env bash
# Builds the project under AddressSanitizer and runs the fault-injection
# matrix (ctest label `faultinject`), so every single-site fault is
# exercised with memory checking on. Usage:
#
#   tools/run_faultinject.sh [build-dir]
#
# The default build dir (build-asan-faultinject) is separate from the
# regular `build/` tree so the sanitizer flags never leak into it.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan-faultinject}"

cmake -B "$build_dir" -S "$repo_root" -DARDA_SANITIZE=address
cmake --build "$build_dir" --target fault_injection_test -j"$(nproc)"
ctest --test-dir "$build_dir" -L faultinject --output-on-failure
