#!/usr/bin/env bash
# End-to-end smoke of the augmentation daemon (arda_serve), the lane CI
# runs after the unit tests:
#
#   1. byte-identity: concurrent responses from a real daemon must equal
#      the one-shot CLI's --canonical-report bytes exactly,
#   2. graceful SIGTERM: in-flight work drains and the daemon exits 0,
#   3. ingest fault leg: with ARDA_FAULT=service_ingest armed an `ingest`
#      request fails, but the previous snapshot keeps serving.
#
#   tools/run_service_smoke.sh            # BUILD_DIR=build by default
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cmake --build "$BUILD_DIR" --target arda_serve arda_cli bench_service \
  -j >/dev/null

# Deterministic toy repository (same shape the service tests use).
DATA="$WORK/data"
mkdir -p "$DATA"
python3 - "$DATA" <<'PY'
import os, random, sys
data = sys.argv[1]
rng = random.Random(3)
with open(os.path.join(data, "sales.csv"), "w") as base, \
     open(os.path.join(data, "lookup.csv"), "w") as lookup:
    base.write("id,x,y\n")
    lookup.write("id,hidden\n")
    for i in range(150):
        hidden = rng.gauss(0, 1)
        x = rng.gauss(0, 1)
        y = x + 3.0 * hidden + rng.gauss(0, 0.1)
        base.write(f"{i},{x:.6f},{y:.6f}\n")
        lookup.write(f"{i},{hidden:.6f}\n")
PY

# Golden bytes from the one-shot CLI.
"$BUILD_DIR/tools/arda_cli" --data="$DATA" --base=sales --target=y \
  --canonical-report="$WORK/reference.json" >/dev/null

wait_for_port() {
  for _ in $(seq 100); do
    [[ -s "$1" ]] && return 0
    sleep 0.1
  done
  echo "FAIL: daemon never wrote its port file" >&2
  return 1
}

# --- leg 1+2: byte-identity over the wire, then graceful SIGTERM ---
"$BUILD_DIR/tools/arda_serve" --data="$DATA" --port-file="$WORK/port" &
SERVE_PID=$!
wait_for_port "$WORK/port"

"$BUILD_DIR/bench/bench_service" --port="$(cat "$WORK/port")" \
  --data="$DATA" --clients=3 --requests=4 --assert-identical \
  --reference="$WORK/reference.json" --json > "$WORK/bench.json"
python3 - "$WORK/bench.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["identical"] and r["errors"] == 0, r
PY
echo "byte-identity vs CLI canonical report: ok"

kill -TERM "$SERVE_PID"
if wait "$SERVE_PID"; then
  echo "graceful SIGTERM shutdown (exit 0): ok"
else
  echo "FAIL: daemon exited nonzero after SIGTERM" >&2
  exit 1
fi
SERVE_PID=""

# --- leg 3: armed ingest fault, old snapshot keeps serving ---
rm -f "$WORK/port"
ARDA_FAULT=service_ingest \
  "$BUILD_DIR/tools/arda_serve" --data="$DATA" --port-file="$WORK/port" &
SERVE_PID=$!
wait_for_port "$WORK/port"

python3 - "$(cat "$WORK/port")" <<'PY'
import json, socket, struct, sys

def recvn(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise RuntimeError("connection closed")
        buf += chunk
    return buf

def call(sock, obj):
    payload = json.dumps(obj).encode()
    sock.sendall(struct.pack(">I", len(payload)) + payload)
    (n,) = struct.unpack(">I", recvn(sock, 4))
    return json.loads(recvn(sock, n))

sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])))
resp = call(sock, {"type": "ingest"})
assert resp["status"] == "error", resp
ping = call(sock, {"type": "ping"})
assert ping["status"] == "ok" and ping["snapshot_generation"] == 1, ping
aug = call(sock, {"type": "augment", "base": "sales", "target": "y"})
assert aug["status"] == "ok", aug
PY
echo "ingest fault leg (old snapshot kept serving): ok"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: daemon exited nonzero" >&2; exit 1; }
SERVE_PID=""
echo "service smoke: all legs passed"
