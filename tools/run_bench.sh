#!/usr/bin/env bash
# Runs the hot-path kernel benchmarks (bench/bench_kernels) several times,
# keeps the best time per kernel, and writes a BENCH_*.json record. When a
# baseline record is given, per-kernel speedups are computed against it:
#
#   tools/run_bench.sh                          # -> BENCH_kernels.json
#   tools/run_bench.sh -o BENCH_PR2.json -b baseline.json
#   tools/run_bench.sh --smoke                  # fast build-health variant
#   tools/run_bench.sh --trace-overhead         # also measure tracing cost
#   tools/run_bench.sh --service -o BENCH_PR8.json   # service load bench
#   tools/run_bench.sh --telemetry-overhead -o BENCH_PR9.json
#
# --service runs the augmentation-service load generator
# (bench/bench_service) instead of the kernel benches: concurrent clients
# against an in-process server, p50/p99 latency and QPS, with every
# response asserted byte-identical to the one-shot pipeline.
#
# --trace-overhead repeats every run with span tracing armed (--trace),
# checks that checksums are bit-identical either way (tracing must never
# change results), and records per-kernel and overall on-vs-off deltas.
#
# --telemetry-overhead runs the service load bench with the full PR 9
# telemetry surface off and on (JSON request logging, per-stage
# slow-request records, a concurrent /metrics scraper), best-of-RUNS wall
# time per side, byte-identity asserted both ways, and fails when the
# on-vs-off delta exceeds TELEMETRY_OVERHEAD_MAX_PCT (default 5; CI
# loosens it because shared runners are noisy — docs/observability.md).
#
# Times are wall-clock on the current machine; compare only records taken
# on the same machine (see docs/benchmarks.md).
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT="BENCH_kernels.json"
BASELINE=""
RUNS="${RUNS:-3}"
SMOKE=""
TRACE_OVERHEAD=""
SERVICE=""
TELEMETRY_OVERHEAD=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    -o) OUT="$2"; shift 2 ;;
    -b) BASELINE="$2"; shift 2 ;;
    --smoke) SMOKE="--smoke"; shift ;;
    --trace-overhead) TRACE_OVERHEAD=1; shift ;;
    --service) SERVICE=1; shift ;;
    --telemetry-overhead) TELEMETRY_OVERHEAD=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ -n "$TELEMETRY_OVERHEAD" ]]; then
  [[ "$OUT" == "BENCH_kernels.json" ]] && OUT="BENCH_telemetry.json"
  cmake --build "$BUILD_DIR" --target bench_service -j >/dev/null
  FAST=""
  [[ -n "$SMOKE" ]] && FAST="--fast"
  RAW_OFF=$(mktemp)
  RAW_ON=$(mktemp)
  LOG_LINES=$(mktemp)
  trap 'rm -f "$RAW_OFF" "$RAW_ON" "$LOG_LINES"' EXIT
  for ((i = 0; i < RUNS; i++)); do
    "$BUILD_DIR/bench/bench_service" --json --assert-identical $FAST \
      >> "$RAW_OFF"
    "$BUILD_DIR/bench/bench_service" --json --assert-identical \
      --telemetry $FAST >> "$RAW_ON" 2>> "$LOG_LINES"
  done
  MAX_PCT="${TELEMETRY_OVERHEAD_MAX_PCT:-5}" \
    python3 - "$RAW_OFF" "$RAW_ON" "$LOG_LINES" "$OUT" <<'PY'
import json, os, sys

off_path, on_path, log_path, out_path = sys.argv[1:5]
max_pct = float(os.environ["MAX_PCT"])

def load_runs(path):
    decoder = json.JSONDecoder()
    text = open(path).read()
    runs, pos = [], 0
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            break
        obj, pos = decoder.raw_decode(text, pos)
        runs.append(obj)
    return runs

def best_wall(runs, label):
    for r in runs:
        # Byte-identity must hold on every run, telemetry on or off.
        assert r["identical"] and r["errors"] == 0, (label, r)
    return min(runs, key=lambda r: r["wall_seconds"])

off = best_wall(load_runs(off_path), "telemetry off")
on = best_wall(load_runs(on_path), "telemetry on")
assert on["telemetry"] and not off["telemetry"], (off, on)
assert on["scrapes"] > 0, on  # the scraper thread really ran
log_lines = sum(1 for line in open(log_path) if line.strip())
assert log_lines > 0, "telemetry runs produced no log records"

pct = round((on["wall_seconds"] / off["wall_seconds"] - 1.0) * 100.0, 2)
record = {
    "bench": "service_telemetry_overhead",
    "runs_per_side": len(load_runs(off_path)),
    "off": off,
    "on": on,
    "telemetry_overhead_pct": pct,
    "log_lines": log_lines,
    "max_overhead_pct": max_pct,
}
json.dump(record, open(out_path, "w"), indent=2)
print(f"wrote {out_path}")
print(f'  off: wall {off["wall_seconds"]:.3f}s, qps {off["qps"]:.1f}, '
      f'p50 {off["p50_ms"]:.3f}ms, p99 {off["p99_ms"]:.3f}ms')
print(f'  on : wall {on["wall_seconds"]:.3f}s, qps {on["qps"]:.1f}, '
      f'p50 {on["p50_ms"]:.3f}ms, p99 {on["p99_ms"]:.3f}ms, '
      f'{on["scrapes"]} scrapes, {log_lines} log records')
print(f'  telemetry overhead: {pct:+.2f}% (gate < {max_pct:g}%), '
      f'byte-identity ok both ways')
if pct >= max_pct:
    sys.exit(f"telemetry overhead {pct:+.2f}% exceeds the "
             f"{max_pct:g}% gate")
PY
  exit 0
fi

if [[ -n "$SERVICE" ]]; then
  [[ "$OUT" == "BENCH_kernels.json" ]] && OUT="BENCH_service.json"
  cmake --build "$BUILD_DIR" --target bench_service -j >/dev/null
  FAST=""
  [[ -n "$SMOKE" ]] && FAST="--fast"
  "$BUILD_DIR/bench/bench_service" --json --assert-identical $FAST > "$OUT"
  python3 - "$OUT" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["identical"] and r["errors"] == 0, r
print(f"wrote {sys.argv[1]}")
print(f'  {r["clients"]} clients x {r["requests_per_client"]} requests: '
      f'{r["qps"]:.1f} req/s, p50 {r["p50_ms"]:.1f} ms, '
      f'p99 {r["p99_ms"]:.1f} ms, byte-identity ok')
PY
  exit 0
fi

cmake --build "$BUILD_DIR" --target bench_kernels -j >/dev/null

RAW=$(mktemp)
RAW_TRACE=$(mktemp)
trap 'rm -f "$RAW" "$RAW_TRACE"' EXIT
for ((i = 0; i < RUNS; i++)); do
  "$BUILD_DIR/bench/bench_kernels" --json $SMOKE >> "$RAW"
done
if [[ -n "$TRACE_OVERHEAD" ]]; then
  for ((i = 0; i < RUNS; i++)); do
    "$BUILD_DIR/bench/bench_kernels" --json --trace $SMOKE >> "$RAW_TRACE"
  done
fi

python3 - "$RAW" "$OUT" "$BASELINE" "$RAW_TRACE" <<'PY'
import json, sys

raw_path, out_path, baseline_path, trace_path = sys.argv[1:5]

# Each raw file is a concatenation of JSON objects, one per run.
def load_runs(path):
    decoder = json.JSONDecoder()
    text = open(path).read()
    runs, pos = [], 0
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            break
        obj, pos = decoder.raw_decode(text, pos)
        runs.append(obj)
    return runs

def best_of(runs):
    best = {}
    for run in runs:
        for r in run["results"]:
            cur = best.get(r["name"])
            if cur is None or r["seconds"] < cur["seconds"]:
                best[r["name"]] = dict(r)
            elif r["checksum"] != cur["checksum"]:
                sys.exit(f"checksum mismatch across runs for {r['name']}")
    return best

runs = load_runs(raw_path)
best = best_of(runs)

# Machine provenance: timings are only comparable on the same CPU at the
# same SIMD dispatch level, so both are pinned into the record.
cpu_model, cpu_flags = "", []
try:
    for line in open("/proc/cpuinfo"):
        if line.startswith("model name") and not cpu_model:
            cpu_model = line.split(":", 1)[1].strip()
        if line.startswith("flags") and not cpu_flags:
            present = set(line.split(":", 1)[1].split())
            cpu_flags = [f for f in ("sse4_2", "avx", "avx2", "fma",
                                     "avx512f") if f in present]
except OSError:
    pass

record = {
    "bench": "kernels",
    "seed": runs[0]["seed"],
    "smoke": runs[0]["smoke"],
    "runs": len(runs),
    "cpu_model": cpu_model,
    "cpu_flags": cpu_flags,
    "simd_level": runs[0].get("simd_level", "unknown"),
    "simd_supported": runs[0].get("simd_supported", "unknown"),
    "results": sorted(best.values(), key=lambda r: r["name"]),
}

trace_runs = load_runs(trace_path) if trace_path else []
if trace_runs:
    traced = best_of(trace_runs)
    total_off = total_on = 0.0
    for r in record["results"]:
        t = traced.get(r["name"])
        if t is None:
            sys.exit(f"missing traced result for {r['name']}")
        # Tracing must be observability-only: identical checksums on/off.
        if t["checksum"] != r["checksum"]:
            sys.exit(f"checksum changed with tracing for {r['name']}")
        r["trace_seconds"] = t["seconds"]
        r["trace_overhead_pct"] = round(
            (t["seconds"] / r["seconds"] - 1.0) * 100.0, 2)
        total_off += r["seconds"]
        total_on += t["seconds"]
    record["trace_overhead_pct"] = round(
        (total_on / total_off - 1.0) * 100.0, 2)

if baseline_path:
    base = {r["name"]: r for r in json.load(open(baseline_path))["results"]}
    for r in record["results"]:
        b = base.get(r["name"])
        if b:
            r["baseline_seconds"] = b["seconds"]
            r["speedup"] = round(b["seconds"] / r["seconds"], 2)

json.dump(record, open(out_path, "w"), indent=2)
print(f"wrote {out_path}")
print(f'  cpu: {record["cpu_model"]} [{" ".join(record["cpu_flags"])}], '
      f'simd level: {record["simd_level"]}')
for r in record["results"]:
    speed = f'  {r["speedup"]:.2f}x' if "speedup" in r else ""
    trace = (f'  trace {r["trace_overhead_pct"]:+.2f}%'
             if "trace_overhead_pct" in r else "")
    print(f'  {r["name"]:32s} {r["seconds"]:.6f}s{speed}{trace}')
if "trace_overhead_pct" in record:
    print(f'  overall tracing overhead: {record["trace_overhead_pct"]:+.2f}%')
PY
