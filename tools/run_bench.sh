#!/usr/bin/env bash
# Runs the hot-path kernel benchmarks (bench/bench_kernels) several times,
# keeps the best time per kernel, and writes a BENCH_*.json record. When a
# baseline record is given, per-kernel speedups are computed against it:
#
#   tools/run_bench.sh                          # -> BENCH_kernels.json
#   tools/run_bench.sh -o BENCH_PR2.json -b baseline.json
#   tools/run_bench.sh --smoke                  # fast build-health variant
#
# Times are wall-clock on the current machine; compare only records taken
# on the same machine (see docs/benchmarks.md).
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT="BENCH_kernels.json"
BASELINE=""
RUNS="${RUNS:-3}"
SMOKE=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    -o) OUT="$2"; shift 2 ;;
    -b) BASELINE="$2"; shift 2 ;;
    --smoke) SMOKE="--smoke"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cmake --build "$BUILD_DIR" --target bench_kernels -j >/dev/null

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
for ((i = 0; i < RUNS; i++)); do
  "$BUILD_DIR/bench/bench_kernels" --json $SMOKE >> "$RAW"
done

python3 - "$RAW" "$OUT" "$BASELINE" <<'PY'
import json, sys

raw_path, out_path, baseline_path = sys.argv[1], sys.argv[2], sys.argv[3]

# The raw file is a concatenation of JSON objects, one per run.
decoder = json.JSONDecoder()
text = open(raw_path).read()
runs, pos = [], 0
while pos < len(text):
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos >= len(text):
        break
    obj, pos = decoder.raw_decode(text, pos)
    runs.append(obj)

best = {}
for run in runs:
    for r in run["results"]:
        cur = best.get(r["name"])
        if cur is None or r["seconds"] < cur["seconds"]:
            best[r["name"]] = dict(r)
        elif r["checksum"] != cur["checksum"]:
            sys.exit(f"checksum mismatch across runs for {r['name']}")

record = {
    "bench": "kernels",
    "seed": runs[0]["seed"],
    "smoke": runs[0]["smoke"],
    "runs": len(runs),
    "results": sorted(best.values(), key=lambda r: r["name"]),
}

if baseline_path:
    base = {r["name"]: r for r in json.load(open(baseline_path))["results"]}
    for r in record["results"]:
        b = base.get(r["name"])
        if b:
            r["baseline_seconds"] = b["seconds"]
            r["speedup"] = round(b["seconds"] / r["seconds"], 2)

json.dump(record, open(out_path, "w"), indent=2)
print(f"wrote {out_path}")
for r in record["results"]:
    speed = f'  {r["speedup"]:.2f}x' if "speedup" in r else ""
    print(f'  {r["name"]:32s} {r["seconds"]:.6f}s{speed}')
PY
