#!/usr/bin/env bash
# End-to-end smoke of the arda_serve telemetry surface (PR 9,
# docs/observability.md), the lane CI runs after the service smoke:
#
#   1. endpoints: /healthz answers 200 "ok", /readyz answers 200 "ready",
#      unknown paths 404, non-GET methods 405,
#   2. exposition: GET /metrics returns a parsable Prometheus 0.0.4
#      document (correct Content-Type, valid series lines, cumulative
#      non-decreasing histogram buckets, +Inf bucket == _count) whose
#      service counters advance across real augment requests,
#   3. logging: with --log-level=info --log-format=json every request
#      leaves a single-line JSON `service.request` record carrying the
#      connection-scoped request id, and the armed --slow-request-ms
#      threshold adds a `service.slow_request` per-stage breakdown,
#   4. graceful SIGTERM with the telemetry endpoint up: exit 0.
#
#   tools/run_telemetry_smoke.sh          # BUILD_DIR=build by default
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cmake --build "$BUILD_DIR" --target arda_serve -j >/dev/null

# Deterministic toy repository (same shape the service smoke uses).
DATA="$WORK/data"
mkdir -p "$DATA"
python3 - "$DATA" <<'PY'
import os, random, sys
data = sys.argv[1]
rng = random.Random(3)
with open(os.path.join(data, "sales.csv"), "w") as base, \
     open(os.path.join(data, "lookup.csv"), "w") as lookup:
    base.write("id,x,y\n")
    lookup.write("id,hidden\n")
    for i in range(150):
        hidden = rng.gauss(0, 1)
        x = rng.gauss(0, 1)
        y = x + 3.0 * hidden + rng.gauss(0, 0.1)
        base.write(f"{i},{x:.6f},{y:.6f}\n")
        lookup.write(f"{i},{hidden:.6f}\n")
PY

wait_for_port() {
  for _ in $(seq 100); do
    [[ -s "$1" ]] && return 0
    sleep 0.1
  done
  echo "FAIL: daemon never wrote $1" >&2
  return 1
}

"$BUILD_DIR/tools/arda_serve" --data="$DATA" --port-file="$WORK/port" \
  --metrics-port=0 --metrics-port-file="$WORK/metrics_port" \
  --log-level=info --log-format=json --slow-request-ms=1 \
  2> "$WORK/serve.log" &
SERVE_PID=$!
wait_for_port "$WORK/port"
wait_for_port "$WORK/metrics_port"

python3 - "$(cat "$WORK/port")" "$(cat "$WORK/metrics_port")" <<'PY'
import http.client, json, socket, struct, sys

service_port, metrics_port = int(sys.argv[1]), int(sys.argv[2])

def http_get(path, method="GET"):
    conn = http.client.HTTPConnection("127.0.0.1", metrics_port, timeout=10)
    conn.request(method, path)
    resp = conn.getresponse()
    body = resp.read().decode()
    ctype = resp.getheader("Content-Type", "")
    conn.close()
    return resp.status, ctype, body

# --- leg 1: health/readiness/error routes ---
status, _, body = http_get("/healthz")
assert (status, body) == (200, "ok\n"), (status, body)
status, _, body = http_get("/readyz")
assert (status, body) == (200, "ready\n"), (status, body)
status, _, _ = http_get("/nope")
assert status == 404, status
status, _, _ = http_get("/metrics", method="POST")
assert status == 405, status
print("health/ready/404/405 routes: ok")

# --- leg 2: exposition parses; counters advance across real requests ---
def scrape():
    status, ctype, body = http_get("/metrics")
    assert status == 200, status
    assert ctype == "text/plain; version=0.0.4; charset=utf-8", ctype
    series = {}
    for line in body.splitlines():
        assert line, "blank line in exposition"
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
            continue
        name_and_labels, value = line.rsplit(" ", 1)
        series[name_and_labels] = float(value)
    return series

def bucket_of(series, name, le):
    return series[f'{name}_bucket{{le="{le}"}}']

# Counters register lazily on first increment, so a fresh daemon only
# guarantees the scrape counter (bumped by this very request) and the
# gauges PublishTelemetryGauges refreshes on every scrape.
first = scrape()
assert "telemetry_scrapes_total" in first, sorted(first)
assert "process_peak_rss_bytes" in first, sorted(first)

def recvn(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise RuntimeError("connection closed")
        buf += chunk
    return buf

def call(sock, obj):
    payload = json.dumps(obj).encode()
    sock.sendall(struct.pack(">I", len(payload)) + payload)
    (n,) = struct.unpack(">I", recvn(sock, 4))
    return json.loads(recvn(sock, n))

sock = socket.create_connection(("127.0.0.1", service_port))
for _ in range(2):
    aug = call(sock, {"type": "augment", "base": "sales", "target": "y"})
    assert aug["status"] == "ok", aug
    assert "request_id" not in aug, aug  # byte-identity surface
sock.close()

second = scrape()
for required in ("service_requests_total", "service_snapshot_generation",
                 "service_request_latency_p50",
                 "service_request_latency_p99",
                 "service_request_seconds_sum"):
    assert required in second, f"missing series {required}"
assert second["service_requests_total"] >= \
    first.get("service_requests_total", 0) + 2
assert second["telemetry_scrapes_total"] > first["telemetry_scrapes_total"]
count = second["service_request_seconds_count"]
assert count >= 2, count
# Cumulative le buckets: non-decreasing, +Inf equal to _count.
buckets = sorted(((float("inf") if le == "+Inf" else float(le)), v)
                 for k, v in second.items()
                 if k.startswith('service_request_seconds_bucket{le="')
                 for le in [k.split('le="')[1].rstrip('"}')])
assert buckets, "no service_request_seconds buckets"
values = [v for _, v in buckets]
assert values == sorted(values), values
assert bucket_of(second, "service_request_seconds", "+Inf") == count
print(f"exposition: ok ({len(second)} series, "
      f"{int(second['service_requests_total'])} requests recorded)")
PY

kill -TERM "$SERVE_PID"
if wait "$SERVE_PID"; then
  echo "graceful SIGTERM with telemetry endpoint up (exit 0): ok"
else
  echo "FAIL: daemon exited nonzero after SIGTERM" >&2
  exit 1
fi
SERVE_PID=""

# --- leg 3: structured request log ---
python3 - "$WORK/serve.log" <<'PY'
import json, sys

requests, slow = [], []
for line in open(sys.argv[1]):
    record = json.loads(line)  # every line must be one JSON object
    for key in ("ts", "mono", "level", "event"):
        assert key in record, (key, record)
    if record["event"] == "service.request":
        requests.append(record)
    elif record["event"] == "service.slow_request":
        slow.append(record)

augments = [r for r in requests if r.get("type") == "augment"]
assert len(augments) >= 2, requests
for r in augments:
    # Socket-path ids are connection-scoped: "c<conn>-<seq>".
    assert r["request_id"].startswith("c"), r
    assert r["elapsed_ms"] >= 0.0, r
assert slow, "no service.slow_request record despite --slow-request-ms=1"
assert any(k.startswith("stage_ms.") for k in slow[0]), slow[0]
print(f"structured log: ok ({len(augments)} augment records, "
      f"{len(slow)} slow-request breakdowns)")
PY

echo "telemetry smoke: all legs passed"
