// Writes the golden-output fixtures for tests/golden_kernels_test.cc into
// the directory given as argv[1] (tests/golden/ in the source tree).
//
// The fixtures pin the exact bit-level outputs of the decision-tree and
// join/group-by kernels at fixed seeds. They were generated from the
// pre-rewrite (PR 1) row-at-a-time kernels; the columnar kernels must
// reproduce them byte for byte. Re-run this tool ONLY when an intentional
// output change is being made, and say so in the PR.

#include <cstdio>
#include <string>

#include "data/generators.h"
#include "dataframe/aggregate.h"
#include "dataframe/csv.h"
#include "join/geo_join.h"
#include "join/join_executor.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "tests/golden_fixtures.h"
#include "util/check.h"

namespace arda {
namespace {

void WriteFile(const std::string& dir, const std::string& name,
               const std::string& content) {
  std::string path = dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ARDA_CHECK(f != nullptr);
  ARDA_CHECK_EQ(std::fwrite(content.data(), 1, content.size(), f),
                content.size());
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

}  // namespace
}  // namespace arda

int main(int argc, char** argv) {
  using namespace arda;
  ARDA_CHECK_EQ(argc, 2);
  const std::string dir = argv[1];

  WriteFile(dir, "tree_classification.txt",
            golden::GoldenClassificationTree());
  WriteFile(dir, "tree_regression.txt", golden::GoldenRegressionTree());
  WriteFile(dir, "forest_predictions.txt",
            golden::GoldenForestPredictions(1));
  WriteFile(dir, "join_hard.csv", golden::GoldenHardJoinCsv());
  WriteFile(dir, "join_soft.csv", golden::GoldenSoftJoinCsv());
  WriteFile(dir, "join_geo.csv", golden::GoldenGeoJoinCsv());
  WriteFile(dir, "aggregate.csv", golden::GoldenAggregateCsv());
  return 0;
}
