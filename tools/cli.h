#ifndef ARDA_TOOLS_CLI_H_
#define ARDA_TOOLS_CLI_H_

#include <string>
#include <vector>

#include "core/arda.h"
#include "util/status.h"

namespace arda::tools {

/// Parsed command-line options of the `arda_cli` driver.
struct CliOptions {
  /// Directory scanned for *.csv tables (every file becomes a repository
  /// table named after its stem).
  std::string data_dir;
  /// Table stem of the base table (must exist in data_dir).
  std::string base_table;
  /// Target column in the base table.
  std::string target;
  /// "regression" or "classification".
  std::string task = "regression";
  /// Feature selector name (featsel registry).
  std::string selector = "rifs";
  /// Join plan: "budget", "table" or "full".
  std::string plan = "budget";
  /// Candidate ordering before batching: "cost" (ascending statistical
  /// Tuple Ratio from the statistics catalog) or "score" (discovery
  /// order).
  std::string plan_order = "cost";
  /// Soft-key method: "2way", "nearest" or "hard".
  std::string soft_join = "2way";
  /// Directory of binary `.ardac` table caches ("" = caching disabled).
  /// Fresh cache files are loaded instead of re-parsing CSVs; missing or
  /// stale entries are rewritten after the CSV parse. Corrupt cache files
  /// degrade to the CSV path (reported as `ingest` skips).
  std::string table_cache;
  /// Serve fresh v3 `.ardac` caches through an mmap instead of an eager
  /// read (out-of-core repository mode; requires --table-cache). Results
  /// are identical either way.
  bool mmap_cache = false;
  /// Soft per-kernel working-set budget for the radix-partitioned join /
  /// group-by paths, in bytes (0 = unbounded single-pass kernels).
  /// Results are bit-identical for every value.
  uint64_t memory_budget_bytes = 0;
  /// Output CSV path for the augmented table ("" = don't write).
  std::string output;
  /// Output path for a machine-readable JSON report ("" = don't write).
  std::string report_json;
  /// Output path for the deterministic report subset ("" = don't write):
  /// core::DeterministicReportJson, the bytes the augmentation service
  /// returns for the same request — used by the byte-identity tests and
  /// the service load generator's --assert-identical mode.
  std::string canonical_report;
  /// Output path for a Chrome/Perfetto trace-event JSON file ("" = tracing
  /// stays disabled). Setting it enables span tracing for the whole run.
  std::string trace_out;
  uint64_t seed = 42;
  /// Threads for the parallel pipeline regions: 0 = hardware concurrency,
  /// 1 = serial. Results are identical for every value.
  size_t num_threads = 0;
  /// SIMD dispatch level: "auto" (highest supported), "scalar" or "avx2".
  /// Results are bit-identical for every level; overrides the ARDA_SIMD
  /// environment variable.
  std::string simd = "auto";
  /// Log level ("" = keep the process default / ARDA_LOG): debug, info,
  /// warn, error, off.
  std::string log_level;
  /// Log format ("" = text): text or json single-line records.
  std::string log_format;
  bool show_help = false;
};

/// Parses argv. Recognized flags:
///   --data=DIR --base=NAME --target=COL [--task=regression|classification]
///   [--selector=NAME] [--plan=budget|table|full] [--plan-order=cost|score]
///   [--soft-join=2way|nearest|hard] [--table-cache=DIR] [--mmap-cache]
///   [--memory-budget=SIZE] [--output=FILE] [--report-json=FILE]
///   [--trace-out=FILE] [--seed=N] [--threads=N]
///   [--simd=auto|scalar|avx2] [--log-level=L] [--log-format=text|json]
///   [--help]
/// Fails with InvalidArgument on unknown flags or missing required ones
/// (unless --help was given).
Result<CliOptions> ParseCliArgs(const std::vector<std::string>& args);

/// Usage text printed for --help or parse errors.
std::string CliUsage();

/// Translates parsed options into an ARDA configuration.
Result<core::ArdaConfig> MakeConfig(const CliOptions& options);

/// Loads the repository, runs the pipeline, prints a human-readable
/// report to stdout and optionally writes the augmented CSV. Returns the
/// process exit status.
Status RunCli(const CliOptions& options);

}  // namespace arda::tools

#endif  // ARDA_TOOLS_CLI_H_
