// arda_serve — the long-lived augmentation daemon (docs/service.md).
//
// Loads the data repository once (through the `.ardac` columnar cache),
// keeps it resident, and serves concurrent augmentation / ingest / stats
// requests over the length-prefixed JSON protocol in src/service/wire.h.
// SIGINT/SIGTERM (or a `shutdown` request) drain gracefully: stop
// accepting, finish in-flight requests, flush the trace file, exit 0.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#endif

#include "service/service.h"
#include "simd/simd.h"
#include "util/interrupt.h"
#include "util/fault.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace {

const char kUsage[] =
    "arda_serve — long-lived augmentation service over a directory of "
    "CSVs\n"
    "\n"
    "usage: arda_serve --data=DIR [options]\n"
    "\n"
    "  --data=DIR       directory containing *.csv tables (required)\n"
    "  --table-cache=D  binary .ardac table cache directory\n"
    "  --port=N         TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
    "  --port-file=F    write the bound port to F once listening\n"
    "  --max-queue=N    admission bound: concurrent augment requests\n"
    "                   admitted before rejecting with status "
    "\"overloaded\"\n"
    "                   (default 8)\n"
    "  --threads=N      CSV-parse threads at load/ingest (0 = hardware\n"
    "                   concurrency)\n"
    "  --simd=LEVEL     auto (default) | scalar | avx2 (results are\n"
    "                   bit-identical for every level)\n"
    "  --trace-out=F    enable span tracing; the trace file is written on\n"
    "                   shutdown (including signal-triggered shutdown)\n"
    "  --help           show this message\n"
    "\n"
    "Wire protocol and request JSON: docs/service.md\n";

struct ServeOptions {
  arda::service::ServiceConfig service;
  std::string port_file;
  std::string simd = "auto";
  std::string trace_out;
  bool show_help = false;
};

arda::Result<ServeOptions> ParseArgs(const std::vector<std::string>& args) {
  using arda::ParseInt64;
  using arda::StartsWith;
  using arda::Status;
  ServeOptions options;
  for (const std::string& arg : args) {
    auto value_of = [&](const char* flag) -> const char* {
      std::string prefix = std::string(flag) + "=";
      if (StartsWith(arg, prefix)) return arg.c_str() + prefix.size();
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
    } else if (const char* v = value_of("--data")) {
      options.service.data_dir = v;
    } else if (const char* v = value_of("--table-cache")) {
      options.service.table_cache = v;
    } else if (const char* v = value_of("--port")) {
      int64_t port = 0;
      if (!ParseInt64(v, &port) || port < 0 || port > 65535) {
        return Status::InvalidArgument("bad --port value: " +
                                       std::string(v));
      }
      options.service.port = static_cast<uint16_t>(port);
    } else if (const char* v = value_of("--port-file")) {
      options.port_file = v;
    } else if (const char* v = value_of("--max-queue")) {
      int64_t depth = 0;
      if (!ParseInt64(v, &depth) || depth <= 0) {
        return Status::InvalidArgument("bad --max-queue value: " +
                                       std::string(v));
      }
      options.service.max_queue_depth = static_cast<size_t>(depth);
    } else if (const char* v = value_of("--threads")) {
      int64_t threads = 0;
      if (!ParseInt64(v, &threads) || threads < 0) {
        return Status::InvalidArgument("bad --threads value: " +
                                       std::string(v));
      }
      options.service.load_threads = static_cast<size_t>(threads);
    } else if (const char* v = value_of("--simd")) {
      options.simd = v;
    } else if (const char* v = value_of("--trace-out")) {
      options.trace_out = v;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.show_help) return options;
  if (options.service.data_dir.empty()) {
    return Status::InvalidArgument("--data is required (see --help)");
  }
  return options;
}

arda::Status Serve(const ServeOptions& options) {
  using arda::Status;
  if (!options.trace_out.empty()) arda::trace::Enable();
  if (!arda::simd::SetLevelFromSpec(options.simd)) {
    if (options.simd != "avx2") {
      return Status::InvalidArgument("bad --simd value: " + options.simd +
                                     " (want auto|scalar|avx2)");
    }
    std::fprintf(stderr,
                 "warning: --simd=avx2 not supported on this CPU; "
                 "using scalar\n");
  }
  std::printf("simd level: %s\n", arda::simd::ActiveLevelName());

  arda::service::ArdaService server(options.service);
  ARDA_RETURN_IF_ERROR(server.Start());
  const arda::service::SnapshotInfo info = server.snapshot_info();
  std::printf("loaded %zu tables from %s (%zu from cache)\n",
              info.tables_loaded, options.service.data_dir.c_str(),
              info.cache_hits);
  std::printf("arda_serve listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (!options.port_file.empty()) {
    std::ofstream port_file(options.port_file);
    if (!port_file) {
      return Status::IoError("cannot write port file: " +
                             options.port_file);
    }
    port_file << server.port() << "\n";
  }

  // Bridge the process interrupt (SIGINT/SIGTERM) into the service's
  // graceful drain. A `shutdown` request drains the service without
  // touching the process flag, so the watcher also polls the service
  // state with a timeout.
#if defined(__unix__) || defined(__APPLE__)
  std::thread watcher([&server] {
    while (!server.ShutdownRequested()) {
      struct pollfd pfd = {arda::interrupt::WakeupFd(), POLLIN, 0};
      ::poll(&pfd, arda::interrupt::WakeupFd() >= 0 ? 1 : 0, 200);
      if (arda::interrupt::InterruptRequested()) {
        server.BeginShutdown();
        break;
      }
    }
  });
#endif
  server.Wait();
#if defined(__unix__) || defined(__APPLE__)
  if (watcher.joinable()) watcher.join();
#endif

  if (arda::interrupt::InterruptSignal() != 0) {
    std::printf("caught signal %d: drained in-flight requests\n",
                arda::interrupt::InterruptSignal());
  }
  if (!options.trace_out.empty()) {
    ARDA_RETURN_IF_ERROR(arda::trace::WriteJson(options.trace_out));
    std::printf("trace written to %s (%zu events)\n",
                options.trace_out.c_str(), arda::trace::EventCount());
  }
  std::printf("shutdown complete\n");
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  // Environment reads (ARDA_FAULT, ARDA_SIMD) are one-time and
  // process-wide; do them on the main thread before the accept loop or
  // any pool worker exists (docs/observability.md "Environment
  // one-time-init contract").
  arda::fault::InitFromEnvironment();
  arda::simd::InitFromEnvironment();
  arda::interrupt::InstallSignalHandlers();

  std::vector<std::string> args(argv + 1, argv + argc);
  arda::Result<ServeOptions> options = ParseArgs(args);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n%s", options.status().message().c_str(),
                 kUsage);
    return 2;
  }
  if (options->show_help) {
    std::printf("%s", kUsage);
    return 0;
  }
  arda::Status status = Serve(*options);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
