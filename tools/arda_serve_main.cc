// arda_serve — the long-lived augmentation daemon (docs/service.md).
//
// Loads the data repository once (through the `.ardac` columnar cache),
// keeps it resident, and serves concurrent augmentation / ingest / stats
// requests over the length-prefixed JSON protocol in src/service/wire.h.
// SIGINT/SIGTERM (or a `shutdown` request) drain gracefully: stop
// accepting, finish in-flight requests, flush the trace file, exit 0.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#endif

#include "core/options.h"
#include "service/service.h"
#include "simd/simd.h"
#include "telemetry/exposition.h"
#include "telemetry/http_server.h"
#include "util/interrupt.h"
#include "util/fault.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace {

const char kUsage[] =
    "arda_serve — long-lived augmentation service over a directory of "
    "CSVs\n"
    "\n"
    "usage: arda_serve --data=DIR [options]\n"
    "\n"
    "  --data=DIR       directory containing *.csv tables (required)\n"
    "  --table-cache=D  binary .ardac table cache directory\n"
    "  --mmap-cache     serve fresh v3 cache files through an mmap "
    "instead of\n"
    "                   an eager read (out-of-core repository mode; "
    "needs\n"
    "                   --table-cache; results are identical)\n"
    "  --port=N         TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
    "  --port-file=F    write the bound port to F once listening\n"
    "  --max-queue=N    admission bound: concurrent augment requests\n"
    "                   admitted before rejecting with status "
    "\"overloaded\"\n"
    "                   (default 8)\n"
    "  --threads=N      CSV-parse threads at load/ingest (0 = hardware\n"
    "                   concurrency)\n"
    "  --simd=LEVEL     auto (default) | scalar | avx2 (results are\n"
    "                   bit-identical for every level)\n"
    "  --trace-out=F    enable span tracing; the trace file is written on\n"
    "                   shutdown (including signal-triggered shutdown)\n"
    "  --metrics-port=N expose HTTP telemetry (GET /metrics /healthz\n"
    "                   /readyz) on 127.0.0.1:N (0 = ephemeral; omit the\n"
    "                   flag to disable the endpoint entirely)\n"
    "  --metrics-port-file=F  write the bound telemetry port to F\n"
    "  --log-level=L    debug | info | warn (default) | error | off;\n"
    "                   ARDA_LOG=L is the environment spelling\n"
    "  --log-format=F   text (default) | json (single-line records)\n"
    "  --slow-request-ms=N  log a per-stage breakdown for requests\n"
    "                   slower than N ms (0 = disabled)\n"
    "  --help           show this message\n"
    "\n"
    "Wire protocol and request JSON: docs/service.md\n"
    "Telemetry endpoint and log schema: docs/observability.md\n";

struct ServeOptions {
  arda::service::ServiceConfig service;
  std::string port_file;
  std::string simd = "auto";
  std::string trace_out;
  arda::core::LogOptions log;
  bool metrics_enabled = false;
  uint16_t metrics_port = 0;
  std::string metrics_port_file;
  bool show_help = false;
};

arda::Result<ServeOptions> ParseArgs(const std::vector<std::string>& args) {
  using arda::ParseInt64;
  using arda::StartsWith;
  using arda::Status;
  ServeOptions options;
  for (const std::string& arg : args) {
    auto value_of = [&](const char* flag) -> const char* {
      std::string prefix = std::string(flag) + "=";
      if (StartsWith(arg, prefix)) return arg.c_str() + prefix.size();
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
    } else if (const char* v = value_of("--data")) {
      options.service.data_dir = v;
    } else if (const char* v = value_of("--table-cache")) {
      options.service.table_cache = v;
    } else if (arg == "--mmap-cache") {
      options.service.map_cache = true;
    } else if (const char* v = value_of("--port")) {
      int64_t port = 0;
      if (!ParseInt64(v, &port) || port < 0 || port > 65535) {
        return Status::InvalidArgument("bad --port value: " +
                                       std::string(v));
      }
      options.service.port = static_cast<uint16_t>(port);
    } else if (const char* v = value_of("--port-file")) {
      options.port_file = v;
    } else if (const char* v = value_of("--max-queue")) {
      int64_t depth = 0;
      if (!ParseInt64(v, &depth) || depth <= 0) {
        return Status::InvalidArgument("bad --max-queue value: " +
                                       std::string(v));
      }
      options.service.max_queue_depth = static_cast<size_t>(depth);
    } else if (const char* v = value_of("--threads")) {
      int64_t threads = 0;
      if (!ParseInt64(v, &threads) || threads < 0) {
        return Status::InvalidArgument("bad --threads value: " +
                                       std::string(v));
      }
      options.service.load_threads = static_cast<size_t>(threads);
    } else if (const char* v = value_of("--simd")) {
      options.simd = v;
    } else if (const char* v = value_of("--trace-out")) {
      options.trace_out = v;
    } else if (const char* v = value_of("--metrics-port")) {
      int64_t port = 0;
      if (!ParseInt64(v, &port) || port < 0 || port > 65535) {
        return Status::InvalidArgument("bad --metrics-port value: " +
                                       std::string(v));
      }
      options.metrics_enabled = true;
      options.metrics_port = static_cast<uint16_t>(port);
    } else if (const char* v = value_of("--metrics-port-file")) {
      options.metrics_port_file = v;
    } else if (const char* v = value_of("--log-level")) {
      options.log.level = v;
    } else if (const char* v = value_of("--log-format")) {
      options.log.format = v;
    } else if (const char* v = value_of("--slow-request-ms")) {
      int64_t ms = 0;
      if (!ParseInt64(v, &ms) || ms < 0) {
        return Status::InvalidArgument("bad --slow-request-ms value: " +
                                       std::string(v));
      }
      options.service.slow_request_ms = static_cast<double>(ms);
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.show_help) return options;
  if (options.service.data_dir.empty()) {
    return Status::InvalidArgument("--data is required (see --help)");
  }
  if (options.service.map_cache && options.service.table_cache.empty()) {
    return Status::InvalidArgument(
        "--mmap-cache requires --table-cache (there is nothing to map "
        "without a cache directory)");
  }
  return options;
}

arda::Status Serve(const ServeOptions& options) {
  using arda::Status;
  ARDA_RETURN_IF_ERROR(arda::core::ApplyLogOptions(options.log));
  if (!options.trace_out.empty()) arda::trace::Enable();
  if (!arda::simd::SetLevelFromSpec(options.simd)) {
    if (options.simd != "avx2") {
      return Status::InvalidArgument("bad --simd value: " + options.simd +
                                     " (want auto|scalar|avx2)");
    }
    std::fprintf(stderr,
                 "warning: --simd=avx2 not supported on this CPU; "
                 "using scalar\n");
  }
  std::printf("simd level: %s\n", arda::simd::DispatchSummary().c_str());

  arda::service::ArdaService server(options.service);
  ARDA_RETURN_IF_ERROR(server.Start());
  const arda::service::SnapshotInfo info = server.snapshot_info();
  std::printf("loaded %zu tables from %s (%zu from cache)\n",
              info.tables_loaded, options.service.data_dir.c_str(),
              info.cache_hits);
  std::printf("arda_serve listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (!options.port_file.empty()) {
    std::ofstream port_file(options.port_file);
    if (!port_file) {
      return Status::IoError("cannot write port file: " +
                             options.port_file);
    }
    port_file << server.port() << "\n";
  }

  // HTTP telemetry endpoint (docs/observability.md). Started after the
  // service so /readyz never reports ready before the snapshot is
  // published, and stopped after the drain completes so scrapers see the
  // 503 "draining" window.
  arda::telemetry::HttpServer telemetry;
  if (options.metrics_enabled) {
    arda::telemetry::HttpServer::Hooks hooks;
    hooks.collect_metrics = [&server] {
      server.PublishTelemetryGauges();
      return arda::telemetry::RenderPrometheus(
          arda::metrics::GlobalRegistry().Snapshot());
    };
    hooks.ready = [&server](std::string* reason) {
      return server.Ready(reason);
    };
    ARDA_RETURN_IF_ERROR(
        telemetry.Start(options.metrics_port, std::move(hooks)));
    std::printf("telemetry on http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(telemetry.port()));
    std::fflush(stdout);
    if (!options.metrics_port_file.empty()) {
      std::ofstream metrics_port_file(options.metrics_port_file);
      if (!metrics_port_file) {
        return Status::IoError("cannot write metrics port file: " +
                               options.metrics_port_file);
      }
      metrics_port_file << telemetry.port() << "\n";
    }
  }

  // Bridge the process interrupt (SIGINT/SIGTERM) into the service's
  // graceful drain. A `shutdown` request drains the service without
  // touching the process flag, so the watcher also polls the service
  // state with a timeout.
#if defined(__unix__) || defined(__APPLE__)
  std::thread watcher([&server] {
    while (!server.ShutdownRequested()) {
      struct pollfd pfd = {arda::interrupt::WakeupFd(), POLLIN, 0};
      ::poll(&pfd, arda::interrupt::WakeupFd() >= 0 ? 1 : 0, 200);
      if (arda::interrupt::InterruptRequested()) {
        server.BeginShutdown();
        break;
      }
    }
  });
#endif
  server.Wait();
#if defined(__unix__) || defined(__APPLE__)
  if (watcher.joinable()) watcher.join();
#endif
  telemetry.Stop();

  if (arda::interrupt::InterruptSignal() != 0) {
    std::printf("caught signal %d: drained in-flight requests\n",
                arda::interrupt::InterruptSignal());
  }
  if (!options.trace_out.empty()) {
    ARDA_RETURN_IF_ERROR(arda::trace::WriteJson(options.trace_out));
    std::printf("trace written to %s (%zu events)\n",
                options.trace_out.c_str(), arda::trace::EventCount());
  }
  std::printf("shutdown complete\n");
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  // Environment reads (ARDA_FAULT, ARDA_SIMD) are one-time and
  // process-wide; do them on the main thread before the accept loop or
  // any pool worker exists (docs/observability.md "Environment
  // one-time-init contract").
  arda::fault::InitFromEnvironment();
  arda::simd::InitFromEnvironment();
  arda::log::InitFromEnvironment();
  arda::interrupt::InstallSignalHandlers();

  std::vector<std::string> args(argv + 1, argv + argc);
  arda::Result<ServeOptions> options = ParseArgs(args);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n%s", options.status().message().c_str(),
                 kUsage);
    return 2;
  }
  if (options->show_help) {
    std::printf("%s", kUsage);
    return 0;
  }
  arda::Status status = Serve(*options);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
