#include "tools/cli.h"

#include <cstdio>
#include <fstream>
#include <string_view>

#include "dataframe/csv.h"
#include "core/options.h"
#include "core/report_io.h"
#include "discovery/discovery.h"
#include "simd/simd.h"
#include "util/interrupt.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace arda::tools {

std::string CliUsage() {
  return
      "arda_cli — automatic relational data augmentation over a directory "
      "of CSVs\n"
      "\n"
      "usage: arda_cli --data=DIR --base=NAME --target=COL [options]\n"
      "\n"
      "  --data=DIR       directory containing *.csv tables\n"
      "  --base=NAME      base table (file stem, e.g. 'rides' for "
      "rides.csv)\n"
      "  --target=COL     prediction target column in the base table\n"
      "  --task=KIND      regression (default) | classification\n"
      "  --selector=NAME  rifs (default) | random_forest | mutual_info | "
      "f_test |\n"
      "                   chi_squared | lasso | relief | linear_svc | "
      "logistic_reg |\n"
      "                   sparse_regression | forward_selection | "
      "backward_selection |\n"
      "                   rfe | all_features\n"
      "  --plan=KIND      budget (default) | table | full\n"
      "  --plan-order=K   cost (default): order candidate joins by the\n"
      "                   statistics catalog's estimated tuple ratio "
      "before\n"
      "                   batching | score: keep discovery-score order\n"
      "  --soft-join=K    2way (default) | nearest | hard\n"
      "  --table-cache=D  cache parsed tables as binary .ardac files in "
      "D;\n"
      "                   repeated runs load the cache instead of "
      "re-parsing\n"
      "                   CSVs (corrupt caches fall back to CSV)\n"
      "  --mmap-cache     serve fresh v3 cache files through an mmap "
      "instead of\n"
      "                   an eager read (out-of-core repository mode; "
      "needs\n"
      "                   --table-cache; results are identical)\n"
      "  --memory-budget=SIZE  soft per-kernel working-set budget for "
      "the\n"
      "                   radix-partitioned join/group-by paths; bytes "
      "with an\n"
      "                   optional k/m/g suffix (0 = unbounded single "
      "pass;\n"
      "                   results are bit-identical for every value)\n"
      "  --output=FILE    write the augmented table as CSV\n"
      "  --report-json=F  write a machine-readable run report\n"
      "  --canonical-report=F  write only the deterministic report subset\n"
      "                   (byte-identical to the service's report_json for\n"
      "                   the same request; see docs/service.md)\n"
      "  --trace-out=F    enable span tracing and write a Chrome/Perfetto\n"
      "                   trace-event JSON file (open in ui.perfetto.dev "
      "or\n"
      "                   chrome://tracing)\n"
      "  --seed=N         random seed (default 42)\n"
      "  --threads=N      worker threads (0 = hardware concurrency, "
      "1 = serial;\n"
      "                   results are identical for every value)\n"
      "  --simd=LEVEL     auto (default: highest supported) | scalar | "
      "avx2;\n"
      "                   results are bit-identical for every level\n"
      "  --log-level=L    debug | info | warn (default) | error | off;\n"
      "                   ARDA_LOG=L is the environment spelling\n"
      "  --log-format=F   text (default) | json single-line records\n"
      "  --help           show this message\n";
}

Result<CliOptions> ParseCliArgs(const std::vector<std::string>& args) {
  CliOptions options;
  for (const std::string& arg : args) {
    auto value_of = [&](const char* flag) -> const char* {
      std::string prefix = std::string(flag) + "=";
      if (StartsWith(arg, prefix)) return arg.c_str() + prefix.size();
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
    } else if (const char* v = value_of("--data")) {
      options.data_dir = v;
    } else if (const char* v = value_of("--base")) {
      options.base_table = v;
    } else if (const char* v = value_of("--target")) {
      options.target = v;
    } else if (const char* v = value_of("--task")) {
      options.task = v;
    } else if (const char* v = value_of("--selector")) {
      options.selector = v;
    } else if (const char* v = value_of("--plan")) {
      options.plan = v;
    } else if (const char* v = value_of("--plan-order")) {
      options.plan_order = v;
    } else if (const char* v = value_of("--soft-join")) {
      options.soft_join = v;
    } else if (const char* v = value_of("--table-cache")) {
      options.table_cache = v;
    } else if (arg == "--mmap-cache") {
      options.mmap_cache = true;
    } else if (const char* v = value_of("--memory-budget")) {
      if (!ParseByteSize(v, &options.memory_budget_bytes)) {
        return Status::InvalidArgument(
            "bad --memory-budget value: " + std::string(v) +
            " (want BYTES with optional k/m/g suffix)");
      }
    } else if (const char* v = value_of("--output")) {
      options.output = v;
    } else if (const char* v = value_of("--report-json")) {
      options.report_json = v;
    } else if (const char* v = value_of("--canonical-report")) {
      options.canonical_report = v;
    } else if (const char* v = value_of("--trace-out")) {
      options.trace_out = v;
    } else if (const char* v = value_of("--seed")) {
      int64_t seed = 0;
      if (!ParseInt64(v, &seed)) {
        return Status::InvalidArgument("bad --seed value: " +
                                       std::string(v));
      }
      options.seed = static_cast<uint64_t>(seed);
    } else if (const char* v = value_of("--threads")) {
      int64_t threads = 0;
      if (!ParseInt64(v, &threads) || threads < 0) {
        return Status::InvalidArgument("bad --threads value: " +
                                       std::string(v));
      }
      options.num_threads = static_cast<size_t>(threads);
    } else if (const char* v = value_of("--simd")) {
      // Spelling is a flag-parse error (exit 2 + usage, like --task);
      // whether the level is available on this CPU is decided in RunCli.
      if (std::string_view(v) != "auto" && std::string_view(v) != "scalar" &&
          std::string_view(v) != "avx2") {
        return Status::InvalidArgument("bad --simd value: " + std::string(v) +
                                       " (want auto|scalar|avx2)");
      }
      options.simd = v;
    } else if (const char* v = value_of("--log-level")) {
      options.log_level = v;
    } else if (const char* v = value_of("--log-format")) {
      options.log_format = v;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.show_help) return options;
  if (options.data_dir.empty() || options.base_table.empty() ||
      options.target.empty()) {
    return Status::InvalidArgument(
        "--data, --base and --target are required (see --help)");
  }
  if (options.task != "regression" && options.task != "classification") {
    return Status::InvalidArgument("bad --task: " + options.task);
  }
  if (options.mmap_cache && options.table_cache.empty()) {
    return Status::InvalidArgument(
        "--mmap-cache requires --table-cache (there is nothing to map "
        "without a cache directory)");
  }
  return options;
}

Result<core::ArdaConfig> MakeConfig(const CliOptions& options) {
  // Delegate to the translation shared with the augmentation service, so
  // a service request and a CLI run with the same spellings build the
  // same ArdaConfig (the byte-identity contract depends on this).
  core::RunOptions run;
  run.task = options.task;
  run.selector = options.selector;
  run.plan = options.plan;
  run.plan_order = options.plan_order;
  run.soft_join = options.soft_join;
  run.seed = options.seed;
  run.num_threads = options.num_threads;
  run.memory_budget_bytes = options.memory_budget_bytes;
  return core::MakeArdaConfig(run);
}

namespace {

// Human-readable per-stage latency table built from the always-on
// `stage.<name>` histograms in the report's metrics snapshot.
void PrintStageSummary(const metrics::MetricsSnapshot& snapshot) {
  bool any = false;
  for (const metrics::HistogramSnapshot& h : snapshot.histograms) {
    if (StartsWith(h.name, "stage.") && h.count > 0) {
      any = true;
      break;
    }
  }
  if (!any) return;
  std::printf("\n%-16s %9s %12s %12s %12s\n", "stage", "count",
              "total (s)", "mean (ms)", "max (ms)");
  for (const metrics::HistogramSnapshot& h : snapshot.histograms) {
    if (!StartsWith(h.name, "stage.") || h.count == 0) continue;
    const double mean_ms =
        h.sum / static_cast<double>(h.count) * 1e3;
    std::printf("%-16s %9llu %12.3f %12.3f %12.3f\n", h.name.c_str() + 6,
                static_cast<unsigned long long>(h.count), h.sum, mean_ms,
                h.max * 1e3);
  }
  for (const metrics::GaugeSnapshot& g : snapshot.gauges) {
    if (g.name == "process.peak_rss_bytes" && g.value > 0.0) {
      std::printf("peak RSS: %.1f MiB\n", g.value / (1024.0 * 1024.0));
    }
  }
}

}  // namespace

Status RunCli(const CliOptions& options) {
  {
    core::LogOptions log_options;
    log_options.level = options.log_level;
    log_options.format = options.log_format;
    ARDA_RETURN_IF_ERROR(core::ApplyLogOptions(log_options));
  }
  ARDA_ASSIGN_OR_RETURN(core::ArdaConfig config, MakeConfig(options));
  // Cooperative Ctrl-C/SIGTERM: the pipeline checks the process interrupt
  // flag at stage boundaries and winds down with a partial report (marked
  // `"interrupted": true`) instead of dying mid-run — so --trace-out and
  // --report-json output survive an interrupt. main() installs the
  // handlers; without them the flag simply never fires.
  config.interrupt_check = [] { return interrupt::InterruptRequested(); };
  if (!options.trace_out.empty()) trace::Enable();

  // Pin the SIMD dispatch level before any kernel runs (the columnar
  // decode kernels already fire during table loading below). The flag
  // wins over the ARDA_SIMD environment variable.
  if (!simd::SetLevelFromSpec(options.simd)) {
    if (options.simd != "avx2") {
      return Status::InvalidArgument("bad --simd value: " + options.simd +
                                     " (want auto|scalar|avx2)");
    }
    // A supported-but-unavailable level degrades (results are level-
    // invariant anyway); only unknown specs are hard errors.
    std::fprintf(stderr,
                 "warning: --simd=avx2 not supported on this CPU; "
                 "using scalar\n");
  }
  std::printf("simd level: %s\n", simd::DispatchSummary().c_str());

  // Load every CSV in the data directory, via the binary table cache
  // when --table-cache is set.
  discovery::DataRepository repo;
  discovery::LoadOptions load_options;
  load_options.csv.num_threads = options.num_threads;
  load_options.map_cache = options.mmap_cache;
  discovery::LoadStats load_stats;
  ARDA_RETURN_IF_ERROR(repo.LoadDirectory(options.data_dir,
                                          options.table_cache, load_options,
                                          &load_stats));
  for (const discovery::IngestSkip& failure : load_stats.failures) {
    std::fprintf(stderr, "warning: skipping table %s: %s\n",
                 failure.table.c_str(), failure.reason.c_str());
  }
  for (const discovery::IngestSkip& fallback : load_stats.fallbacks) {
    std::fprintf(stderr, "warning: table %s: %s\n", fallback.table.c_str(),
                 fallback.reason.c_str());
  }
  std::printf("loaded %zu tables from %s", load_stats.tables_loaded,
              options.data_dir.c_str());
  if (!options.table_cache.empty()) {
    std::printf(" (%zu from cache, %zu cache files written)",
                load_stats.cache_hits, load_stats.cache_writes);
  }
  std::printf("\n");
  ARDA_ASSIGN_OR_RETURN(const df::DataFrame* base,
                        repo.Get(options.base_table));

  core::AugmentationTask task;
  task.base = *base;
  task.target_column = options.target;
  task.task = options.task == "classification"
                  ? ml::TaskType::kClassification
                  : ml::TaskType::kRegression;
  task.repo = &repo;
  task.base_table_name = options.base_table;
  for (const discovery::IngestSkip& fallback : load_stats.fallbacks) {
    task.ingest_skips.push_back(
        {fallback.table, "ingest", fallback.reason});
  }

  core::Arda arda(config);
  ARDA_ASSIGN_OR_RETURN(core::ArdaReport report, arda.Run(task));

  const bool classification = task.task == ml::TaskType::kClassification;
  if (report.interrupted) {
    std::printf("run interrupted%s: partial report covers %zu decided "
                "batch(es); final estimate skipped\n",
                interrupt::InterruptSignal() != 0 ? " by signal" : "",
                report.batches.size());
  }
  std::printf("tables considered: %zu, joined: %zu\n",
              report.tables_considered, report.tables_joined);
  if (!report.skipped_candidates.empty()) {
    std::printf("skipped %zu candidate(s):\n",
                report.skipped_candidates.size());
    for (const core::SkippedCandidate& skip : report.skipped_candidates) {
      std::printf("  %s [%s]: %s\n", skip.table.c_str(), skip.stage.c_str(),
                  skip.reason.c_str());
    }
  }
  if (classification) {
    std::printf("base accuracy:      %.2f%%\n", report.base_score * 100.0);
    std::printf("augmented accuracy: %.2f%%  (%+.1f%%)\n",
                report.final_score * 100.0, report.ImprovementPercent());
  } else {
    std::printf("base MAE:      %.4f\n", -report.base_score);
    std::printf("augmented MAE: %.4f  (%+.1f%%)\n", -report.final_score,
                report.ImprovementPercent());
  }
  std::printf("columns: %zu -> %zu (%.1fs total: %.1fs joins, %.1fs "
              "selection)\n",
              base->NumCols(), report.augmented.NumCols(),
              report.total_seconds, report.join_seconds,
              report.selection_seconds);
  PrintStageSummary(report.metrics);
  if (!options.output.empty()) {
    ARDA_RETURN_IF_ERROR(
        df::WriteCsvFile(report.augmented, options.output));
    std::printf("augmented table written to %s\n", options.output.c_str());
  }
  if (!options.report_json.empty()) {
    ARDA_RETURN_IF_ERROR(
        core::WriteReportJson(report, options.report_json));
    std::printf("JSON report written to %s\n",
                options.report_json.c_str());
  }
  if (!options.canonical_report.empty()) {
    std::ofstream canonical(options.canonical_report);
    if (!canonical) {
      return Status::IoError("cannot open file for writing: " +
                             options.canonical_report);
    }
    canonical << core::DeterministicReportJson(report);
    if (!canonical) {
      return Status::IoError("failed writing file: " +
                             options.canonical_report);
    }
    std::printf("canonical report written to %s\n",
                options.canonical_report.c_str());
  }
  if (!options.trace_out.empty()) {
    ARDA_RETURN_IF_ERROR(trace::WriteJson(options.trace_out));
    std::printf("trace written to %s (%zu events; open in "
                "ui.perfetto.dev or chrome://tracing)\n",
                options.trace_out.c_str(), trace::EventCount());
  }
  return Status::Ok();
}

}  // namespace arda::tools
