// Entry point of the arda_cli command-line driver; the logic lives in
// tools/cli.{h,cc} so it stays unit-testable.

#include <cstdio>

#include "simd/simd.h"
#include "tools/cli.h"
#include "util/fault.h"
#include "util/interrupt.h"
#include "util/log.h"

int main(int argc, char** argv) {
  // One-time environment reads (ARDA_FAULT, ARDA_SIMD) happen here, on
  // the main thread, before any worker thread exists — the armed spec and
  // dispatch level are process-wide for the whole run. Signal handlers go
  // in equally early so a Ctrl-C during table loading already lands on
  // the cooperative path (partial report + flushed trace) instead of the
  // default abort.
  arda::fault::InitFromEnvironment();
  arda::simd::InitFromEnvironment();
  arda::log::InitFromEnvironment();
  arda::interrupt::InstallSignalHandlers();
  std::vector<std::string> args(argv + 1, argv + argc);
  arda::Result<arda::tools::CliOptions> options =
      arda::tools::ParseCliArgs(args);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n%s", options.status().message().c_str(),
                 arda::tools::CliUsage().c_str());
    return 2;
  }
  if (options->show_help) {
    std::printf("%s", arda::tools::CliUsage().c_str());
    return 0;
  }
  arda::Status status = arda::tools::RunCli(*options);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
