// Entry point of the arda_cli command-line driver; the logic lives in
// tools/cli.{h,cc} so it stays unit-testable.

#include <cstdio>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  arda::Result<arda::tools::CliOptions> options =
      arda::tools::ParseCliArgs(args);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n%s", options.status().message().c_str(),
                 arda::tools::CliUsage().c_str());
    return 2;
  }
  if (options->show_help) {
    std::printf("%s", arda::tools::CliUsage().c_str());
    return 0;
  }
  arda::Status status = arda::tools::RunCli(*options);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
