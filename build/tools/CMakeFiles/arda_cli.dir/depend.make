# Empty dependencies file for arda_cli.
# This may be replaced when dependencies are built.
