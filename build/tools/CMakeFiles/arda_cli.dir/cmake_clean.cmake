file(REMOVE_RECURSE
  "CMakeFiles/arda_cli.dir/arda_cli_main.cc.o"
  "CMakeFiles/arda_cli.dir/arda_cli_main.cc.o.d"
  "arda_cli"
  "arda_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
