file(REMOVE_RECURSE
  "libarda_cli_lib.a"
)
