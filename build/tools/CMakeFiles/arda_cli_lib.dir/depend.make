# Empty dependencies file for arda_cli_lib.
# This may be replaced when dependencies are built.
