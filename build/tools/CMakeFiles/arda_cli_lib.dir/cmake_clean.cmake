file(REMOVE_RECURSE
  "CMakeFiles/arda_cli_lib.dir/cli.cc.o"
  "CMakeFiles/arda_cli_lib.dir/cli.cc.o.d"
  "libarda_cli_lib.a"
  "libarda_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
