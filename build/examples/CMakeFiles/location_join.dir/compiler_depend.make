# Empty compiler generated dependencies file for location_join.
# This may be replaced when dependencies are built.
