file(REMOVE_RECURSE
  "CMakeFiles/location_join.dir/location_join.cpp.o"
  "CMakeFiles/location_join.dir/location_join.cpp.o.d"
  "location_join"
  "location_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
