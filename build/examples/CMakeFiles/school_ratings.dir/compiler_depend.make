# Empty compiler generated dependencies file for school_ratings.
# This may be replaced when dependencies are built.
