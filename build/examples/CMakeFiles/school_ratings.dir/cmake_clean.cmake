file(REMOVE_RECURSE
  "CMakeFiles/school_ratings.dir/school_ratings.cpp.o"
  "CMakeFiles/school_ratings.dir/school_ratings.cpp.o.d"
  "school_ratings"
  "school_ratings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/school_ratings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
