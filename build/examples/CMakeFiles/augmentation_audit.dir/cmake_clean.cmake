file(REMOVE_RECURSE
  "CMakeFiles/augmentation_audit.dir/augmentation_audit.cpp.o"
  "CMakeFiles/augmentation_audit.dir/augmentation_audit.cpp.o.d"
  "augmentation_audit"
  "augmentation_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/augmentation_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
