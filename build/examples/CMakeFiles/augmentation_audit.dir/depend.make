# Empty dependencies file for augmentation_audit.
# This may be replaced when dependencies are built.
