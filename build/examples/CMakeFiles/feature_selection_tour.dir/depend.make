# Empty dependencies file for feature_selection_tour.
# This may be replaced when dependencies are built.
