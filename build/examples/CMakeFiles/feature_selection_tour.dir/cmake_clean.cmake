file(REMOVE_RECURSE
  "CMakeFiles/feature_selection_tour.dir/feature_selection_tour.cpp.o"
  "CMakeFiles/feature_selection_tour.dir/feature_selection_tour.cpp.o.d"
  "feature_selection_tour"
  "feature_selection_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_selection_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
