# Empty dependencies file for taxi_demand.
# This may be replaced when dependencies are built.
