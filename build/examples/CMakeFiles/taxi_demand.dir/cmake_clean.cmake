file(REMOVE_RECURSE
  "CMakeFiles/taxi_demand.dir/taxi_demand.cpp.o"
  "CMakeFiles/taxi_demand.dir/taxi_demand.cpp.o.d"
  "taxi_demand"
  "taxi_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
