# Empty dependencies file for bench_table3_sketch_regression.
# This may be replaced when dependencies are built.
