file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sketch_regression.dir/bench_table3_sketch_regression.cc.o"
  "CMakeFiles/bench_table3_sketch_regression.dir/bench_table3_sketch_regression.cc.o.d"
  "bench_table3_sketch_regression"
  "bench_table3_sketch_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sketch_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
