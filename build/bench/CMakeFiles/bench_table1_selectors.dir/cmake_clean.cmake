file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_selectors.dir/bench_table1_selectors.cc.o"
  "CMakeFiles/bench_table1_selectors.dir/bench_table1_selectors.cc.o.d"
  "bench_table1_selectors"
  "bench_table1_selectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_selectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
