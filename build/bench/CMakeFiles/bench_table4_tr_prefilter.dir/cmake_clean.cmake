file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_tr_prefilter.dir/bench_table4_tr_prefilter.cc.o"
  "CMakeFiles/bench_table4_tr_prefilter.dir/bench_table4_tr_prefilter.cc.o.d"
  "bench_table4_tr_prefilter"
  "bench_table4_tr_prefilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_tr_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
