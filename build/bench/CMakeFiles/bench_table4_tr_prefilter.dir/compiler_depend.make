# Empty compiler generated dependencies file for bench_table4_tr_prefilter.
# This may be replaced when dependencies are built.
