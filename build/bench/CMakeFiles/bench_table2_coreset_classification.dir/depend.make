# Empty dependencies file for bench_table2_coreset_classification.
# This may be replaced when dependencies are built.
