file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_soft_joins.dir/bench_fig5_soft_joins.cc.o"
  "CMakeFiles/bench_fig5_soft_joins.dir/bench_fig5_soft_joins.cc.o.d"
  "bench_fig5_soft_joins"
  "bench_fig5_soft_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_soft_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
