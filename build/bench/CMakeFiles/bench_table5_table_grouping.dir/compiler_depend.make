# Empty compiler generated dependencies file for bench_table5_table_grouping.
# This may be replaced when dependencies are built.
