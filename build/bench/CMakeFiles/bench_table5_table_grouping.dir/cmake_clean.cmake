file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_table_grouping.dir/bench_table5_table_grouping.cc.o"
  "CMakeFiles/bench_table5_table_grouping.dir/bench_table5_table_grouping.cc.o.d"
  "bench_table5_table_grouping"
  "bench_table5_table_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_table_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
