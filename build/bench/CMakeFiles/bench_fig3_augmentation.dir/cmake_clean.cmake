file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_augmentation.dir/bench_fig3_augmentation.cc.o"
  "CMakeFiles/bench_fig3_augmentation.dir/bench_fig3_augmentation.cc.o.d"
  "bench_fig3_augmentation"
  "bench_fig3_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
