# Empty dependencies file for arda_bench_common.
# This may be replaced when dependencies are built.
