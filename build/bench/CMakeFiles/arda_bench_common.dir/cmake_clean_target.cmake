file(REMOVE_RECURSE
  "libarda_bench_common.a"
)
