file(REMOVE_RECURSE
  "CMakeFiles/arda_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/arda_bench_common.dir/bench_common.cc.o.d"
  "libarda_bench_common.a"
  "libarda_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
