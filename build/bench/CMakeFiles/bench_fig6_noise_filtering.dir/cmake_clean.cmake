file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_noise_filtering.dir/bench_fig6_noise_filtering.cc.o"
  "CMakeFiles/bench_fig6_noise_filtering.dir/bench_fig6_noise_filtering.cc.o.d"
  "bench_fig6_noise_filtering"
  "bench_fig6_noise_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_noise_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
