# Empty dependencies file for bench_fig6_noise_filtering.
# This may be replaced when dependencies are built.
