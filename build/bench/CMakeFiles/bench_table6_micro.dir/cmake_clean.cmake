file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_micro.dir/bench_table6_micro.cc.o"
  "CMakeFiles/bench_table6_micro.dir/bench_table6_micro.cc.o.d"
  "bench_table6_micro"
  "bench_table6_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
