# Empty dependencies file for bench_table6_micro.
# This may be replaced when dependencies are built.
