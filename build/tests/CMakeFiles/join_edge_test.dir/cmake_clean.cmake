file(REMOVE_RECURSE
  "CMakeFiles/join_edge_test.dir/join_edge_test.cc.o"
  "CMakeFiles/join_edge_test.dir/join_edge_test.cc.o.d"
  "join_edge_test"
  "join_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
