file(REMOVE_RECURSE
  "CMakeFiles/rifs_behavior_test.dir/rifs_behavior_test.cc.o"
  "CMakeFiles/rifs_behavior_test.dir/rifs_behavior_test.cc.o.d"
  "rifs_behavior_test"
  "rifs_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rifs_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
