# Empty compiler generated dependencies file for rifs_behavior_test.
# This may be replaced when dependencies are built.
