# Empty compiler generated dependencies file for arda_test.
# This may be replaced when dependencies are built.
