file(REMOVE_RECURSE
  "CMakeFiles/arda_test.dir/arda_test.cc.o"
  "CMakeFiles/arda_test.dir/arda_test.cc.o.d"
  "arda_test"
  "arda_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
