# Empty compiler generated dependencies file for coreset_test.
# This may be replaced when dependencies are built.
