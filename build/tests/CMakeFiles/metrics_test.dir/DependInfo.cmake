
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/metrics_test.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/arda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/coreset/CMakeFiles/arda_coreset.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/arda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/arda_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/arda_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/featsel/CMakeFiles/arda_featsel.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/arda_join.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/arda_la.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/arda_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arda_util.dir/DependInfo.cmake"
  "/root/repo/build/tools/CMakeFiles/arda_cli_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
