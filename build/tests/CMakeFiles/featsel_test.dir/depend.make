# Empty dependencies file for featsel_test.
# This may be replaced when dependencies are built.
