file(REMOVE_RECURSE
  "CMakeFiles/featsel_test.dir/featsel_test.cc.o"
  "CMakeFiles/featsel_test.dir/featsel_test.cc.o.d"
  "featsel_test"
  "featsel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/featsel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
