file(REMOVE_RECURSE
  "CMakeFiles/scenario_semantics_test.dir/scenario_semantics_test.cc.o"
  "CMakeFiles/scenario_semantics_test.dir/scenario_semantics_test.cc.o.d"
  "scenario_semantics_test"
  "scenario_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
