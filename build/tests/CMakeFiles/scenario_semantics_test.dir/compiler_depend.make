# Empty compiler generated dependencies file for scenario_semantics_test.
# This may be replaced when dependencies are built.
