# Empty compiler generated dependencies file for additions_test.
# This may be replaced when dependencies are built.
