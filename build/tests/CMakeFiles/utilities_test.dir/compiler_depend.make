# Empty compiler generated dependencies file for utilities_test.
# This may be replaced when dependencies are built.
