file(REMOVE_RECURSE
  "CMakeFiles/utilities_test.dir/utilities_test.cc.o"
  "CMakeFiles/utilities_test.dir/utilities_test.cc.o.d"
  "utilities_test"
  "utilities_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utilities_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
