
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/automl.cc" "src/ml/CMakeFiles/arda_ml.dir/automl.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/automl.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/arda_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/arda_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/evaluator.cc" "src/ml/CMakeFiles/arda_ml.dir/evaluator.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/evaluator.cc.o.d"
  "/root/repo/src/ml/gradient_boosting.cc" "src/ml/CMakeFiles/arda_ml.dir/gradient_boosting.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/gradient_boosting.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/arda_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/arda_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/arda_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/arda_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/sparse_regression.cc" "src/ml/CMakeFiles/arda_ml.dir/sparse_regression.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/sparse_regression.cc.o.d"
  "/root/repo/src/ml/split.cc" "src/ml/CMakeFiles/arda_ml.dir/split.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/split.cc.o.d"
  "/root/repo/src/ml/svm_rbf.cc" "src/ml/CMakeFiles/arda_ml.dir/svm_rbf.cc.o" "gcc" "src/ml/CMakeFiles/arda_ml.dir/svm_rbf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/arda_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
