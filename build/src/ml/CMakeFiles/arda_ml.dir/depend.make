# Empty dependencies file for arda_ml.
# This may be replaced when dependencies are built.
