file(REMOVE_RECURSE
  "libarda_ml.a"
)
