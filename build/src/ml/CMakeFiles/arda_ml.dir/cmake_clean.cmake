file(REMOVE_RECURSE
  "CMakeFiles/arda_ml.dir/automl.cc.o"
  "CMakeFiles/arda_ml.dir/automl.cc.o.d"
  "CMakeFiles/arda_ml.dir/dataset.cc.o"
  "CMakeFiles/arda_ml.dir/dataset.cc.o.d"
  "CMakeFiles/arda_ml.dir/decision_tree.cc.o"
  "CMakeFiles/arda_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/arda_ml.dir/evaluator.cc.o"
  "CMakeFiles/arda_ml.dir/evaluator.cc.o.d"
  "CMakeFiles/arda_ml.dir/gradient_boosting.cc.o"
  "CMakeFiles/arda_ml.dir/gradient_boosting.cc.o.d"
  "CMakeFiles/arda_ml.dir/knn.cc.o"
  "CMakeFiles/arda_ml.dir/knn.cc.o.d"
  "CMakeFiles/arda_ml.dir/linear.cc.o"
  "CMakeFiles/arda_ml.dir/linear.cc.o.d"
  "CMakeFiles/arda_ml.dir/metrics.cc.o"
  "CMakeFiles/arda_ml.dir/metrics.cc.o.d"
  "CMakeFiles/arda_ml.dir/random_forest.cc.o"
  "CMakeFiles/arda_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/arda_ml.dir/sparse_regression.cc.o"
  "CMakeFiles/arda_ml.dir/sparse_regression.cc.o.d"
  "CMakeFiles/arda_ml.dir/split.cc.o"
  "CMakeFiles/arda_ml.dir/split.cc.o.d"
  "CMakeFiles/arda_ml.dir/svm_rbf.cc.o"
  "CMakeFiles/arda_ml.dir/svm_rbf.cc.o.d"
  "libarda_ml.a"
  "libarda_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
