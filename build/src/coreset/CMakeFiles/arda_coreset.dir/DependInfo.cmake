
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coreset/coreset.cc" "src/coreset/CMakeFiles/arda_coreset.dir/coreset.cc.o" "gcc" "src/coreset/CMakeFiles/arda_coreset.dir/coreset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataframe/CMakeFiles/arda_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/arda_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/arda_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
