file(REMOVE_RECURSE
  "CMakeFiles/arda_coreset.dir/coreset.cc.o"
  "CMakeFiles/arda_coreset.dir/coreset.cc.o.d"
  "libarda_coreset.a"
  "libarda_coreset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_coreset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
