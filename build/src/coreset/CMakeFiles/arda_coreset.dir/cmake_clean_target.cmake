file(REMOVE_RECURSE
  "libarda_coreset.a"
)
