# Empty compiler generated dependencies file for arda_coreset.
# This may be replaced when dependencies are built.
