file(REMOVE_RECURSE
  "CMakeFiles/arda_util.dir/rng.cc.o"
  "CMakeFiles/arda_util.dir/rng.cc.o.d"
  "CMakeFiles/arda_util.dir/status.cc.o"
  "CMakeFiles/arda_util.dir/status.cc.o.d"
  "CMakeFiles/arda_util.dir/string_util.cc.o"
  "CMakeFiles/arda_util.dir/string_util.cc.o.d"
  "libarda_util.a"
  "libarda_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
