# Empty compiler generated dependencies file for arda_util.
# This may be replaced when dependencies are built.
