file(REMOVE_RECURSE
  "libarda_util.a"
)
