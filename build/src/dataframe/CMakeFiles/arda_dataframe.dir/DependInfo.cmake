
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataframe/aggregate.cc" "src/dataframe/CMakeFiles/arda_dataframe.dir/aggregate.cc.o" "gcc" "src/dataframe/CMakeFiles/arda_dataframe.dir/aggregate.cc.o.d"
  "/root/repo/src/dataframe/column.cc" "src/dataframe/CMakeFiles/arda_dataframe.dir/column.cc.o" "gcc" "src/dataframe/CMakeFiles/arda_dataframe.dir/column.cc.o.d"
  "/root/repo/src/dataframe/csv.cc" "src/dataframe/CMakeFiles/arda_dataframe.dir/csv.cc.o" "gcc" "src/dataframe/CMakeFiles/arda_dataframe.dir/csv.cc.o.d"
  "/root/repo/src/dataframe/data_frame.cc" "src/dataframe/CMakeFiles/arda_dataframe.dir/data_frame.cc.o" "gcc" "src/dataframe/CMakeFiles/arda_dataframe.dir/data_frame.cc.o.d"
  "/root/repo/src/dataframe/describe.cc" "src/dataframe/CMakeFiles/arda_dataframe.dir/describe.cc.o" "gcc" "src/dataframe/CMakeFiles/arda_dataframe.dir/describe.cc.o.d"
  "/root/repo/src/dataframe/encode.cc" "src/dataframe/CMakeFiles/arda_dataframe.dir/encode.cc.o" "gcc" "src/dataframe/CMakeFiles/arda_dataframe.dir/encode.cc.o.d"
  "/root/repo/src/dataframe/transform.cc" "src/dataframe/CMakeFiles/arda_dataframe.dir/transform.cc.o" "gcc" "src/dataframe/CMakeFiles/arda_dataframe.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/arda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/arda_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
