file(REMOVE_RECURSE
  "CMakeFiles/arda_dataframe.dir/aggregate.cc.o"
  "CMakeFiles/arda_dataframe.dir/aggregate.cc.o.d"
  "CMakeFiles/arda_dataframe.dir/column.cc.o"
  "CMakeFiles/arda_dataframe.dir/column.cc.o.d"
  "CMakeFiles/arda_dataframe.dir/csv.cc.o"
  "CMakeFiles/arda_dataframe.dir/csv.cc.o.d"
  "CMakeFiles/arda_dataframe.dir/data_frame.cc.o"
  "CMakeFiles/arda_dataframe.dir/data_frame.cc.o.d"
  "CMakeFiles/arda_dataframe.dir/describe.cc.o"
  "CMakeFiles/arda_dataframe.dir/describe.cc.o.d"
  "CMakeFiles/arda_dataframe.dir/encode.cc.o"
  "CMakeFiles/arda_dataframe.dir/encode.cc.o.d"
  "CMakeFiles/arda_dataframe.dir/transform.cc.o"
  "CMakeFiles/arda_dataframe.dir/transform.cc.o.d"
  "libarda_dataframe.a"
  "libarda_dataframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_dataframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
