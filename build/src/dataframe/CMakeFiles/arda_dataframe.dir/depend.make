# Empty dependencies file for arda_dataframe.
# This may be replaced when dependencies are built.
