file(REMOVE_RECURSE
  "libarda_dataframe.a"
)
