file(REMOVE_RECURSE
  "CMakeFiles/arda_featsel.dir/filter_rankers.cc.o"
  "CMakeFiles/arda_featsel.dir/filter_rankers.cc.o.d"
  "CMakeFiles/arda_featsel.dir/model_rankers.cc.o"
  "CMakeFiles/arda_featsel.dir/model_rankers.cc.o.d"
  "CMakeFiles/arda_featsel.dir/ranker.cc.o"
  "CMakeFiles/arda_featsel.dir/ranker.cc.o.d"
  "CMakeFiles/arda_featsel.dir/relief.cc.o"
  "CMakeFiles/arda_featsel.dir/relief.cc.o.d"
  "CMakeFiles/arda_featsel.dir/rifs.cc.o"
  "CMakeFiles/arda_featsel.dir/rifs.cc.o.d"
  "CMakeFiles/arda_featsel.dir/search.cc.o"
  "CMakeFiles/arda_featsel.dir/search.cc.o.d"
  "CMakeFiles/arda_featsel.dir/selector.cc.o"
  "CMakeFiles/arda_featsel.dir/selector.cc.o.d"
  "CMakeFiles/arda_featsel.dir/significance.cc.o"
  "CMakeFiles/arda_featsel.dir/significance.cc.o.d"
  "CMakeFiles/arda_featsel.dir/stability.cc.o"
  "CMakeFiles/arda_featsel.dir/stability.cc.o.d"
  "CMakeFiles/arda_featsel.dir/wrappers.cc.o"
  "CMakeFiles/arda_featsel.dir/wrappers.cc.o.d"
  "libarda_featsel.a"
  "libarda_featsel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_featsel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
