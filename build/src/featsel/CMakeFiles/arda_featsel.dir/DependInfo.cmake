
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/featsel/filter_rankers.cc" "src/featsel/CMakeFiles/arda_featsel.dir/filter_rankers.cc.o" "gcc" "src/featsel/CMakeFiles/arda_featsel.dir/filter_rankers.cc.o.d"
  "/root/repo/src/featsel/model_rankers.cc" "src/featsel/CMakeFiles/arda_featsel.dir/model_rankers.cc.o" "gcc" "src/featsel/CMakeFiles/arda_featsel.dir/model_rankers.cc.o.d"
  "/root/repo/src/featsel/ranker.cc" "src/featsel/CMakeFiles/arda_featsel.dir/ranker.cc.o" "gcc" "src/featsel/CMakeFiles/arda_featsel.dir/ranker.cc.o.d"
  "/root/repo/src/featsel/relief.cc" "src/featsel/CMakeFiles/arda_featsel.dir/relief.cc.o" "gcc" "src/featsel/CMakeFiles/arda_featsel.dir/relief.cc.o.d"
  "/root/repo/src/featsel/rifs.cc" "src/featsel/CMakeFiles/arda_featsel.dir/rifs.cc.o" "gcc" "src/featsel/CMakeFiles/arda_featsel.dir/rifs.cc.o.d"
  "/root/repo/src/featsel/search.cc" "src/featsel/CMakeFiles/arda_featsel.dir/search.cc.o" "gcc" "src/featsel/CMakeFiles/arda_featsel.dir/search.cc.o.d"
  "/root/repo/src/featsel/selector.cc" "src/featsel/CMakeFiles/arda_featsel.dir/selector.cc.o" "gcc" "src/featsel/CMakeFiles/arda_featsel.dir/selector.cc.o.d"
  "/root/repo/src/featsel/significance.cc" "src/featsel/CMakeFiles/arda_featsel.dir/significance.cc.o" "gcc" "src/featsel/CMakeFiles/arda_featsel.dir/significance.cc.o.d"
  "/root/repo/src/featsel/stability.cc" "src/featsel/CMakeFiles/arda_featsel.dir/stability.cc.o" "gcc" "src/featsel/CMakeFiles/arda_featsel.dir/stability.cc.o.d"
  "/root/repo/src/featsel/wrappers.cc" "src/featsel/CMakeFiles/arda_featsel.dir/wrappers.cc.o" "gcc" "src/featsel/CMakeFiles/arda_featsel.dir/wrappers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/arda_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/arda_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
