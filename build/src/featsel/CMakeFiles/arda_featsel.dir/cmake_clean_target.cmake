file(REMOVE_RECURSE
  "libarda_featsel.a"
)
