# Empty compiler generated dependencies file for arda_featsel.
# This may be replaced when dependencies are built.
