file(REMOVE_RECURSE
  "libarda_discovery.a"
)
