file(REMOVE_RECURSE
  "CMakeFiles/arda_discovery.dir/discovery.cc.o"
  "CMakeFiles/arda_discovery.dir/discovery.cc.o.d"
  "CMakeFiles/arda_discovery.dir/minhash.cc.o"
  "CMakeFiles/arda_discovery.dir/minhash.cc.o.d"
  "CMakeFiles/arda_discovery.dir/repository.cc.o"
  "CMakeFiles/arda_discovery.dir/repository.cc.o.d"
  "CMakeFiles/arda_discovery.dir/transitive.cc.o"
  "CMakeFiles/arda_discovery.dir/transitive.cc.o.d"
  "CMakeFiles/arda_discovery.dir/tuple_ratio.cc.o"
  "CMakeFiles/arda_discovery.dir/tuple_ratio.cc.o.d"
  "libarda_discovery.a"
  "libarda_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
