# Empty dependencies file for arda_discovery.
# This may be replaced when dependencies are built.
