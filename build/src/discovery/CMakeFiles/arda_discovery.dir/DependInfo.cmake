
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/discovery/discovery.cc" "src/discovery/CMakeFiles/arda_discovery.dir/discovery.cc.o" "gcc" "src/discovery/CMakeFiles/arda_discovery.dir/discovery.cc.o.d"
  "/root/repo/src/discovery/minhash.cc" "src/discovery/CMakeFiles/arda_discovery.dir/minhash.cc.o" "gcc" "src/discovery/CMakeFiles/arda_discovery.dir/minhash.cc.o.d"
  "/root/repo/src/discovery/repository.cc" "src/discovery/CMakeFiles/arda_discovery.dir/repository.cc.o" "gcc" "src/discovery/CMakeFiles/arda_discovery.dir/repository.cc.o.d"
  "/root/repo/src/discovery/transitive.cc" "src/discovery/CMakeFiles/arda_discovery.dir/transitive.cc.o" "gcc" "src/discovery/CMakeFiles/arda_discovery.dir/transitive.cc.o.d"
  "/root/repo/src/discovery/tuple_ratio.cc" "src/discovery/CMakeFiles/arda_discovery.dir/tuple_ratio.cc.o" "gcc" "src/discovery/CMakeFiles/arda_discovery.dir/tuple_ratio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataframe/CMakeFiles/arda_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/arda_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
