file(REMOVE_RECURSE
  "CMakeFiles/arda_join.dir/geo_join.cc.o"
  "CMakeFiles/arda_join.dir/geo_join.cc.o.d"
  "CMakeFiles/arda_join.dir/impute.cc.o"
  "CMakeFiles/arda_join.dir/impute.cc.o.d"
  "CMakeFiles/arda_join.dir/join_executor.cc.o"
  "CMakeFiles/arda_join.dir/join_executor.cc.o.d"
  "CMakeFiles/arda_join.dir/resample.cc.o"
  "CMakeFiles/arda_join.dir/resample.cc.o.d"
  "CMakeFiles/arda_join.dir/transitive_join.cc.o"
  "CMakeFiles/arda_join.dir/transitive_join.cc.o.d"
  "libarda_join.a"
  "libarda_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
