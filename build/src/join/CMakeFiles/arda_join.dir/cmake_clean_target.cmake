file(REMOVE_RECURSE
  "libarda_join.a"
)
