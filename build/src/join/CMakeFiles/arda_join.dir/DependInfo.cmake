
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/geo_join.cc" "src/join/CMakeFiles/arda_join.dir/geo_join.cc.o" "gcc" "src/join/CMakeFiles/arda_join.dir/geo_join.cc.o.d"
  "/root/repo/src/join/impute.cc" "src/join/CMakeFiles/arda_join.dir/impute.cc.o" "gcc" "src/join/CMakeFiles/arda_join.dir/impute.cc.o.d"
  "/root/repo/src/join/join_executor.cc" "src/join/CMakeFiles/arda_join.dir/join_executor.cc.o" "gcc" "src/join/CMakeFiles/arda_join.dir/join_executor.cc.o.d"
  "/root/repo/src/join/resample.cc" "src/join/CMakeFiles/arda_join.dir/resample.cc.o" "gcc" "src/join/CMakeFiles/arda_join.dir/resample.cc.o.d"
  "/root/repo/src/join/transitive_join.cc" "src/join/CMakeFiles/arda_join.dir/transitive_join.cc.o" "gcc" "src/join/CMakeFiles/arda_join.dir/transitive_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataframe/CMakeFiles/arda_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/arda_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/arda_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
