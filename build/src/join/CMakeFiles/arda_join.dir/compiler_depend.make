# Empty compiler generated dependencies file for arda_join.
# This may be replaced when dependencies are built.
