# Empty dependencies file for arda_core.
# This may be replaced when dependencies are built.
