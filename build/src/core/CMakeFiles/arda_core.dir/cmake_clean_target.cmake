file(REMOVE_RECURSE
  "libarda_core.a"
)
