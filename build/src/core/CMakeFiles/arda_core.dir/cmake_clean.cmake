file(REMOVE_RECURSE
  "CMakeFiles/arda_core.dir/arda.cc.o"
  "CMakeFiles/arda_core.dir/arda.cc.o.d"
  "CMakeFiles/arda_core.dir/report_io.cc.o"
  "CMakeFiles/arda_core.dir/report_io.cc.o.d"
  "libarda_core.a"
  "libarda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
