# Empty compiler generated dependencies file for arda_la.
# This may be replaced when dependencies are built.
