file(REMOVE_RECURSE
  "CMakeFiles/arda_la.dir/linalg.cc.o"
  "CMakeFiles/arda_la.dir/linalg.cc.o.d"
  "CMakeFiles/arda_la.dir/matrix.cc.o"
  "CMakeFiles/arda_la.dir/matrix.cc.o.d"
  "libarda_la.a"
  "libarda_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
