file(REMOVE_RECURSE
  "libarda_la.a"
)
