file(REMOVE_RECURSE
  "CMakeFiles/arda_data.dir/common.cc.o"
  "CMakeFiles/arda_data.dir/common.cc.o.d"
  "CMakeFiles/arda_data.dir/micro.cc.o"
  "CMakeFiles/arda_data.dir/micro.cc.o.d"
  "CMakeFiles/arda_data.dir/scenario_pickup.cc.o"
  "CMakeFiles/arda_data.dir/scenario_pickup.cc.o.d"
  "CMakeFiles/arda_data.dir/scenario_poverty.cc.o"
  "CMakeFiles/arda_data.dir/scenario_poverty.cc.o.d"
  "CMakeFiles/arda_data.dir/scenario_school.cc.o"
  "CMakeFiles/arda_data.dir/scenario_school.cc.o.d"
  "CMakeFiles/arda_data.dir/scenario_taxi.cc.o"
  "CMakeFiles/arda_data.dir/scenario_taxi.cc.o.d"
  "libarda_data.a"
  "libarda_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arda_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
