# Empty compiler generated dependencies file for arda_data.
# This may be replaced when dependencies are built.
