file(REMOVE_RECURSE
  "libarda_data.a"
)
