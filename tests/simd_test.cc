// Kernel-level determinism tests for the arda_simd dispatch layer: every
// kernel must produce bit-identical output at every supported dispatch
// level, including unaligned heads and short tails (inputs smaller than
// one vector width). See DESIGN.md "SIMD dispatch".

#include "simd/simd.h"

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "simd/aligned.h"
#include "util/metrics.h"

namespace arda::simd {
namespace {

// Deterministic xorshift so the fixtures never depend on libc rand.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

// The size sweep used by every kernel test: zero, sub-vector-width
// tails (AVX2 widths are 4 for 64-bit lanes and 32 for validity bytes),
// exact multiples, and off-by-one straddles.
const size_t kSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,  31, 32,
                         33, 63, 64, 65, 100, 255, 256, 1000};

// Restores the entry dispatch state (bulk level and probe level — an
// explicit SetLevel pins both) when a test exits.
class LevelGuard {
 public:
  LevelGuard() : saved_(ActiveLevel()), saved_probe_(ProbeLevel()) {}
  ~LevelGuard() {
    SetLevel(saved_);
    SetProbeLevel(saved_probe_);
  }

 private:
  SimdLevel saved_;
  SimdLevel saved_probe_;
};

// Runs `body` once per supported dispatch level (always at least
// scalar). The body receives the level for labeling assertions.
template <typename Body>
void ForEachLevel(const Body& body) {
  LevelGuard guard;
  ASSERT_TRUE(SetLevel(SimdLevel::kScalar));
  body(SimdLevel::kScalar);
  if (Avx2Supported()) {
    ASSERT_TRUE(SetLevel(SimdLevel::kAvx2));
    body(SimdLevel::kAvx2);
  }
}

TEST(SimdDispatchTest, LevelRoundTrip) {
  LevelGuard guard;
  EXPECT_TRUE(SetLevel(SimdLevel::kScalar));
  EXPECT_EQ(ActiveLevel(), SimdLevel::kScalar);
  EXPECT_STREQ(ActiveLevelName(), "scalar");
  if (Avx2Supported()) {
    EXPECT_TRUE(SetLevel(SimdLevel::kAvx2));
    EXPECT_EQ(ActiveLevel(), SimdLevel::kAvx2);
    EXPECT_STREQ(ActiveLevelName(), "avx2");
  } else {
    EXPECT_FALSE(SetLevel(SimdLevel::kAvx2));
    EXPECT_EQ(ActiveLevel(), SimdLevel::kScalar);
  }
}

TEST(SimdDispatchTest, SpecParsing) {
  LevelGuard guard;
  EXPECT_TRUE(SetLevelFromSpec("scalar"));
  EXPECT_EQ(ActiveLevel(), SimdLevel::kScalar);
  EXPECT_TRUE(SetLevelFromSpec("auto"));
  EXPECT_EQ(ActiveLevel(),
            Avx2Supported() ? SimdLevel::kAvx2 : SimdLevel::kScalar);
  EXPECT_FALSE(SetLevelFromSpec("sse9"));
  EXPECT_FALSE(SetLevelFromSpec(""));
  EXPECT_EQ(SetLevelFromSpec("avx2"), Avx2Supported());
}

TEST(SimdDispatchTest, AutoKeepsProbesScalarExplicitPinsEverything) {
  LevelGuard guard;
  // `auto` resolves the bulk level to the highest supported one but keeps
  // the load-latency-bound probe kernels scalar (docs/benchmarks.md,
  // `simd_hash_probe`).
  ASSERT_TRUE(SetLevelFromSpec("auto"));
  EXPECT_EQ(ProbeLevel(), SimdLevel::kScalar);
  if (Avx2Supported()) {
    EXPECT_EQ(ActiveLevel(), SimdLevel::kAvx2);
    EXPECT_EQ(DispatchSummary(), "avx2(probe=scalar)");
    // Explicit avx2 pins the probes too — the opt-in is preserved.
    ASSERT_TRUE(SetLevelFromSpec("avx2"));
    EXPECT_EQ(ProbeLevel(), SimdLevel::kAvx2);
    EXPECT_EQ(DispatchSummary(), "avx2");
    ASSERT_TRUE(SetLevel(SimdLevel::kAvx2));
    EXPECT_EQ(ProbeLevel(), SimdLevel::kAvx2);
  } else {
    EXPECT_EQ(DispatchSummary(), "scalar");
  }
  // Explicit scalar pins everything scalar.
  ASSERT_TRUE(SetLevelFromSpec("scalar"));
  EXPECT_EQ(ProbeLevel(), SimdLevel::kScalar);
  EXPECT_EQ(DispatchSummary(), "scalar");
  // The probe level can be restored independently (bench harness idiom).
  EXPECT_TRUE(SetProbeLevel(SimdLevel::kScalar));
  EXPECT_EQ(SetProbeLevel(SimdLevel::kAvx2), Avx2Supported());
}

TEST(SimdDispatchTest, MetricsGauge) {
  LevelGuard guard;
  ASSERT_TRUE(SetLevel(SimdLevel::kScalar));
  PublishLevelMetrics();
  metrics::MetricsSnapshot snapshot = metrics::GlobalRegistry().Snapshot();
  bool found = false;
  for (const metrics::GaugeSnapshot& g : snapshot.gauges) {
    if (g.name == "simd.level") {
      EXPECT_EQ(g.value, 0.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SimdDispatchTest, AlignedAllocator) {
  AlignedVector<double> v(1000, 1.5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kAlign, 0u);
  AlignedVector<uint32_t> w(17);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(w.data()) % kAlign, 0u);
}

TEST(SimdKernelsTest, Mix64BatchMatchesScalar) {
  for (size_t n : kSizes) {
    uint64_t state = 0x1234 + n;
    std::vector<uint64_t> keys(n);
    for (uint64_t& k : keys) k = NextRand(&state);
    std::vector<uint64_t> reference;
    ForEachLevel([&](SimdLevel level) {
      std::vector<uint64_t> out(n, 0);
      Mix64Batch(keys.data(), n, out.data());
      if (level == SimdLevel::kScalar) {
        reference = out;
      } else {
        EXPECT_EQ(out, reference) << "n=" << n;
      }
    });
  }
}

// Builds a small open-addressing table the way KeyEncoder does, inserting
// with the same splitmix64 hash and linear probing.
struct TestTable {
  std::vector<uint64_t> hashes;
  std::vector<uint32_t> ids;
  std::vector<int64_t> values;

  explicit TestTable(const std::vector<int64_t>& distinct, size_t cap) {
    hashes.assign(cap, 0);
    ids.assign(cap, kIdMiss);
    const uint64_t mask = cap - 1;
    for (int64_t v : distinct) {
      uint64_t scratch = static_cast<uint64_t>(v);
      uint64_t h;
      Mix64Batch(&scratch, 1, &h);
      size_t slot = static_cast<size_t>(h & mask);
      while (ids[slot] != kIdMiss) slot = (slot + 1) & mask;
      values.push_back(v);
      hashes[slot] = h;
      ids[slot] = static_cast<uint32_t>(values.size());
    }
  }
};

TEST(SimdKernelsTest, Int64DictLookupMatchesScalar) {
  std::vector<int64_t> distinct;
  for (int64_t v = 0; v < 200; ++v) distinct.push_back(v * 3);
  TestTable table(distinct, 512);
  for (size_t n : kSizes) {
    uint64_t state = 0x9876 + n;
    std::vector<int64_t> keys(n);
    for (int64_t& k : keys) {
      // Mix of hits, definite misses and values that collide into
      // occupied slots.
      k = static_cast<int64_t>(NextRand(&state) % 700);
    }
    std::vector<uint32_t> ref_ids;
    std::vector<uint32_t> ref_walk;
    size_t ref_walk_count = 0;
    ForEachLevel([&](SimdLevel level) {
      std::vector<uint32_t> out(n, 123456);
      std::vector<uint32_t> walk(n, 123456);
      const size_t walk_count = Int64DictLookup(
          table.hashes.data(), table.ids.data(), table.values.data(),
          table.hashes.size() - 1, keys.data(), n, out.data(), walk.data());
      walk.resize(walk_count);
      if (level == SimdLevel::kScalar) {
        ref_ids = out;
        ref_walk = walk;
        ref_walk_count = walk_count;
      } else {
        EXPECT_EQ(walk_count, ref_walk_count) << "n=" << n;
        EXPECT_EQ(walk, ref_walk) << "n=" << n;
        EXPECT_EQ(out, ref_ids) << "n=" << n;
      }
    });
    // Semantic spot check at any level: resolved ids point at the key.
    std::vector<uint32_t> out(n);
    std::vector<uint32_t> walk(n);
    const size_t walk_count = Int64DictLookup(
        table.hashes.data(), table.ids.data(), table.values.data(),
        table.hashes.size() - 1, keys.data(), n, out.data(), walk.data());
    std::vector<bool> walked(n, false);
    for (size_t w = 0; w < walk_count; ++w) walked[walk[w]] = true;
    for (size_t i = 0; i < n; ++i) {
      if (walked[i]) continue;
      if (out[i] != kIdMiss) {
        EXPECT_EQ(table.values[out[i] - 1], keys[i]);
      }
    }
  }
}

TEST(SimdKernelsTest, TupleHashBatchMatchesScalar) {
  for (size_t n : kSizes) {
    for (size_t num_cols : {size_t{1}, size_t{2}, size_t{5}}) {
      uint64_t state = 0x5555 + n + num_cols;
      std::vector<uint32_t> ids(num_cols * (n + 3));
      for (uint32_t& id : ids) {
        id = static_cast<uint32_t>(NextRand(&state) % 1000);
      }
      const size_t stride = n + 3;  // deliberately != n
      std::vector<uint64_t> reference;
      ForEachLevel([&](SimdLevel level) {
        std::vector<uint64_t> out(n, 0);
        TupleHashBatch(ids.data(), num_cols, stride, n, out.data());
        if (level == SimdLevel::kScalar) {
          reference = out;
        } else {
          EXPECT_EQ(out, reference) << "n=" << n << " cols=" << num_cols;
        }
      });
    }
  }
}

TEST(SimdKernelsTest, GroupLookupMatchesScalar) {
  // Group table over 2-column tuples, built with TupleHashBatch hashes.
  const size_t num_cols = 2;
  const size_t num_groups = 64;
  std::vector<uint32_t> tuple_store;
  const size_t cap = 256;
  std::vector<uint64_t> table_hashes(cap, 0);
  std::vector<uint32_t> table_ids(cap, kIdMiss);
  for (size_t g = 0; g < num_groups; ++g) {
    const uint32_t a = static_cast<uint32_t>(g % 16);
    const uint32_t b = static_cast<uint32_t>(g / 16 + 1);
    const uint32_t tuple[2] = {a, b};
    uint64_t h;
    TupleHashBatch(tuple, num_cols, 1, 1, &h);
    size_t slot = static_cast<size_t>(h & (cap - 1));
    while (table_ids[slot] != kIdMiss) slot = (slot + 1) & (cap - 1);
    table_hashes[slot] = h;
    table_ids[slot] = static_cast<uint32_t>(g);
    tuple_store.push_back(a);
    tuple_store.push_back(b);
  }
  for (size_t n : kSizes) {
    uint64_t state = 0xabcd + n;
    const size_t stride = n + 1;
    std::vector<uint32_t> ids(num_cols * stride, 0);
    for (size_t r = 0; r < n; ++r) {
      ids[r] = static_cast<uint32_t>(NextRand(&state) % 24);       // col 0
      ids[stride + r] = static_cast<uint32_t>(NextRand(&state) % 7);  // col 1
    }
    std::vector<uint64_t> hashes(n);
    {
      // Row-major per-row hashing to seed the probe hashes.
      for (size_t r = 0; r < n; ++r) {
        const uint32_t tuple[2] = {ids[r], ids[stride + r]};
        TupleHashBatch(tuple, num_cols, 1, 1, &hashes[r]);
      }
    }
    std::vector<uint64_t> ref_gids;
    std::vector<uint32_t> ref_walk;
    ForEachLevel([&](SimdLevel level) {
      std::vector<uint64_t> gids(n, 77);
      std::vector<uint32_t> walk(n, 77);
      const size_t walk_count = GroupLookup(
          table_hashes.data(), table_ids.data(), tuple_store.data(),
          ids.data(), num_cols, stride, cap - 1, hashes.data(), n,
          gids.data(), walk.data());
      walk.resize(walk_count);
      if (level == SimdLevel::kScalar) {
        ref_gids = gids;
        ref_walk = walk;
      } else {
        EXPECT_EQ(walk, ref_walk) << "n=" << n;
        EXPECT_EQ(gids, ref_gids) << "n=" << n;
      }
    });
  }
}

TEST(SimdKernelsTest, CountAndScatterByGroupMatchScalar) {
  const size_t num_groups = 10;
  for (size_t n : kSizes) {
    uint64_t state = 0x7777 + n;
    std::vector<uint64_t> gids(n);
    std::vector<uint8_t> valid(n);
    std::vector<double> values(n);
    for (size_t r = 0; r < n; ++r) {
      gids[r] = NextRand(&state) % num_groups;
      valid[r] = NextRand(&state) % 3 != 0 ? 1 : 0;
      values[r] = static_cast<double>(static_cast<int64_t>(
                      NextRand(&state) % 2000) - 1000) / 8.0;
    }
    for (const uint8_t* validity :
         {static_cast<const uint8_t*>(valid.data()),
          static_cast<const uint8_t*>(nullptr)}) {
      std::vector<size_t> ref_counts;
      std::vector<double> ref_out;
      std::vector<size_t> ref_cursor;
      ForEachLevel([&](SimdLevel level) {
        std::vector<size_t> counts(num_groups, 0);
        CountPerGroup(gids.data(), validity, n, counts.data());
        // CSR layout from the counts, then scatter.
        std::vector<size_t> cursor(num_groups, 0);
        size_t total = 0;
        for (size_t g = 0; g < num_groups; ++g) {
          cursor[g] = total;
          total += counts[g];
        }
        std::vector<double> out(total, -1.0);
        ScatterByGroup(values.data(), validity, gids.data(), n,
                       cursor.data(), out.data());
        if (level == SimdLevel::kScalar) {
          ref_counts = counts;
          ref_out = out;
          ref_cursor = cursor;
        } else {
          EXPECT_EQ(counts, ref_counts) << "n=" << n;
          EXPECT_EQ(cursor, ref_cursor) << "n=" << n;
          EXPECT_EQ(out, ref_out) << "n=" << n;
        }
      });
    }
  }
}

TEST(SimdKernelsTest, ClassSquaresMatchesScalarOnCounts) {
  for (size_t num_classes : kSizes) {
    uint64_t state = 0x3333 + num_classes;
    std::vector<double> class_counts(num_classes);
    std::vector<double> left_counts(num_classes);
    for (size_t c = 0; c < num_classes; ++c) {
      const uint64_t total = NextRand(&state) % 50000;
      class_counts[c] = static_cast<double>(total);
      left_counts[c] = static_cast<double>(NextRand(&state) % (total + 1));
    }
    double ref_l = 0.0, ref_r = 0.0;
    ForEachLevel([&](SimdLevel level) {
      double l = -1.0, r = -1.0;
      ClassSquares(left_counts.data(), class_counts.data(), num_classes,
                   &l, &r);
      if (level == SimdLevel::kScalar) {
        ref_l = l;
        ref_r = r;
      } else {
        // Bitwise equality, not near-equality.
        EXPECT_EQ(std::memcmp(&l, &ref_l, sizeof l), 0)
            << "classes=" << num_classes;
        EXPECT_EQ(std::memcmp(&r, &ref_r, sizeof r), 0)
            << "classes=" << num_classes;
      }
    });
  }
}

TEST(SimdKernelsTest, GatherValsTargetsMatchesScalar) {
  const size_t num_rows = 512;
  uint64_t state = 0x2468;
  std::vector<double> col(num_rows);
  std::vector<double> y(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    col[r] = static_cast<double>(NextRand(&state)) / 1e17;
    y[r] = static_cast<double>(NextRand(&state)) / 1e18;
  }
  for (size_t n : kSizes) {
    std::vector<uint32_t> idx(n);
    for (uint32_t& i : idx) {
      i = static_cast<uint32_t>(NextRand(&state) % num_rows);
    }
    std::vector<double> ref_vals, ref_ys;
    ForEachLevel([&](SimdLevel level) {
      std::vector<double> vals(n, -1.0), ys(n, -1.0);
      GatherValsTargets(col.data(), y.data(), idx.data(), n, vals.data(),
                        ys.data());
      if (level == SimdLevel::kScalar) {
        ref_vals = vals;
        ref_ys = ys;
      } else {
        EXPECT_EQ(vals, ref_vals) << "n=" << n;
        EXPECT_EQ(ys, ref_ys) << "n=" << n;
      }
    });
  }
}

TEST(SimdKernelsTest, SquaredDistanceBitIdenticalAcrossLevels) {
  uint64_t state = 0x1357;
  for (size_t n : kSizes) {
    // Offset start by 1 to exercise unaligned bases too.
    std::vector<double> a(n + 1), b(n + 1);
    for (size_t i = 0; i <= n; ++i) {
      a[i] = static_cast<double>(static_cast<int64_t>(NextRand(&state) %
                                                      1000000) -
                                 500000) /
             997.0;
      b[i] = static_cast<double>(static_cast<int64_t>(NextRand(&state) %
                                                      1000000) -
                                 500000) /
             991.0;
    }
    for (size_t offset : {size_t{0}, size_t{1}}) {
      if (offset > n) continue;
      const size_t len = n - offset;
      double ref = 0.0;
      ForEachLevel([&](SimdLevel level) {
        const double d =
            SquaredDistance(a.data() + offset, b.data() + offset, len);
        if (level == SimdLevel::kScalar) {
          ref = d;
        } else {
          EXPECT_EQ(std::memcmp(&d, &ref, sizeof d), 0)
              << "n=" << len << " offset=" << offset;
        }
      });
    }
  }
  // The short-vector path is the plain sequential sum (what the geo-join
  // goldens pin): check it explicitly for 2-D.
  const double a2[2] = {1.5, -2.25};
  const double b2[2] = {0.25, 7.0};
  const double d0 = a2[0] - b2[0];
  const double d1 = a2[1] - b2[1];
  double expected = d0 * d0;
  expected += d1 * d1;
  ForEachLevel([&](SimdLevel) {
    EXPECT_EQ(SquaredDistance(a2, b2, 2), expected);
  });
}

TEST(SimdKernelsTest, SquaredDistanceToManyMatchesPairwiseAtEveryLevel) {
  uint64_t state = 0x9753;
  // Dim sweep crosses the vec boundary (dims < 4 takes the sequential
  // path); point counts cover the 4-row batch tail.
  for (size_t dims : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                      size_t{7}, size_t{8}, size_t{17}, size_t{64}}) {
    for (size_t points : {size_t{1}, size_t{3}, size_t{5}, size_t{8},
                          size_t{9}, size_t{16}, size_t{20}}) {
      std::vector<double> query(dims), base(points * dims);
      for (double& v : query) {
        v = static_cast<double>(static_cast<int64_t>(NextRand(&state) %
                                                     1000000) -
                                500000) /
            997.0;
      }
      for (double& v : base) {
        v = static_cast<double>(static_cast<int64_t>(NextRand(&state) %
                                                     1000000) -
                                500000) /
            991.0;
      }
      std::vector<double> ref(points);
      ForEachLevel([&](SimdLevel level) {
        std::vector<double> out(points, -1.0);
        SquaredDistanceToMany(query.data(), base.data(), points, dims,
                              out.data());
        // Every row must equal the single-pair kernel bit for bit (which
        // the test above pins as level-invariant itself).
        for (size_t p = 0; p < points; ++p) {
          const double pair =
              SquaredDistance(query.data(), base.data() + p * dims, dims);
          EXPECT_EQ(std::memcmp(&out[p], &pair, sizeof pair), 0)
              << "dims=" << dims << " points=" << points << " p=" << p;
        }
        if (level == SimdLevel::kScalar) {
          ref = out;
        } else {
          EXPECT_EQ(out, ref) << "dims=" << dims << " points=" << points;
        }
      });
    }
  }
}

TEST(SimdKernelsTest, DecodeU64LeMatchesScalar) {
  for (size_t n : kSizes) {
    uint64_t state = 0x8642 + n;
    std::vector<char> src(n * 8 + 1);
    for (char& c : src) c = static_cast<char>(NextRand(&state) & 0xff);
    std::vector<double> ref_d;
    std::vector<int64_t> ref_i;
    ForEachLevel([&](SimdLevel level) {
      std::vector<double> d(n, 0.0);
      std::vector<int64_t> i64(n, 0);
      // +1: unaligned source, the common case for packed .ardac blocks.
      DecodeU64LeToDouble(src.data() + 1, n, d.data());
      DecodeU64LeToInt64(src.data() + 1, n, i64.data());
      if (level == SimdLevel::kScalar) {
        ref_d = d;
        ref_i = i64;
      } else {
        EXPECT_EQ(i64, ref_i) << "n=" << n;
        // memcmp, not ==, so NaN payloads compare too.
        ASSERT_EQ(d.size(), ref_d.size());
        if (n > 0) {
          EXPECT_EQ(std::memcmp(d.data(), ref_d.data(), n * sizeof(double)),
                    0)
              << "n=" << n;
        }
      }
    });
  }
}

TEST(SimdKernelsTest, ExpandValidityBitmapMatchesScalar) {
  for (size_t n : kSizes) {
    uint64_t state = 0x1111 + n;
    std::vector<uint8_t> bitmap((n + 7) / 8);
    for (uint8_t& b : bitmap) b = static_cast<uint8_t>(NextRand(&state));
    std::vector<uint8_t> reference;
    ForEachLevel([&](SimdLevel level) {
      std::vector<uint8_t> valid(n, 9);
      ExpandValidityBitmap(bitmap.data(), n, valid.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_LE(valid[i], 1) << "n=" << n << " i=" << i;
        ASSERT_EQ(valid[i], (bitmap[i / 8] >> (i % 8)) & 1)
            << "n=" << n << " i=" << i;
      }
      if (level == SimdLevel::kScalar) {
        reference = valid;
      } else {
        EXPECT_EQ(valid, reference) << "n=" << n;
      }
    });
  }
}

}  // namespace
}  // namespace arda::simd
