// Edge cases of the join executor: multi-option keys (one table joinable
// on several alternative keys), the time-resampled hard join's key
// bucketing, empty foreign tables, and collision-prefix numbering.

#include <gtest/gtest.h>

#include "join/impute.h"
#include "join/join_executor.h"

namespace arda::join {
namespace {

using discovery::CandidateJoin;
using discovery::JoinKeyPair;
using discovery::KeyKind;

TEST(JoinEdgeTest, MultiOptionKeysJoinSeparately) {
  // One foreign table joinable on either `a` or `b` (the paper's
  // multiple-option key join): ARDA joins on each key separately, i.e.
  // two candidates against the same table.
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("a", {1, 2})).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("b", {20, 10})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("a", {1, 2})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("b", {10, 20})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("v", {100.0, 200.0})).ok());

  CandidateJoin on_a;
  on_a.foreign_table = "t";
  on_a.keys = {JoinKeyPair{"a", "a", KeyKind::kHard}};
  CandidateJoin on_b;
  on_b.foreign_table = "t";
  on_b.keys = {JoinKeyPair{"b", "b", KeyKind::kHard}};

  Rng rng(1);
  Result<df::DataFrame> first =
      ExecuteLeftJoin(base, foreign, on_a, {}, &rng);
  ASSERT_TRUE(first.ok());
  Result<df::DataFrame> both =
      ExecuteLeftJoin(*first, foreign, on_b, {}, &rng);
  ASSERT_TRUE(both.ok());

  // v from the `a` join, t.v (collision-prefixed) from the `b` join.
  ASSERT_TRUE(both->HasColumn("v"));
  ASSERT_TRUE(both->HasColumn("t.v"));
  EXPECT_DOUBLE_EQ(both->col("v").DoubleAt(0), 100.0);   // a=1
  EXPECT_DOUBLE_EQ(both->col("t.v").DoubleAt(0), 200.0);  // b=20
  EXPECT_DOUBLE_EQ(both->col("v").DoubleAt(1), 200.0);   // a=2
  EXPECT_DOUBLE_EQ(both->col("t.v").DoubleAt(1), 100.0);  // b=10
}

TEST(JoinEdgeTest, RepeatedCollisionsGetNumberedSuffixes) {
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("k", {1})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("k", {1})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {1.0})).ok());
  CandidateJoin cand;
  cand.foreign_table = "t";
  cand.keys = {JoinKeyPair{"k", "k", KeyKind::kHard}};
  Rng rng(2);
  df::DataFrame out = base;
  for (int i = 0; i < 3; ++i) {
    Result<df::DataFrame> joined =
        ExecuteLeftJoin(out, foreign, cand, {}, &rng);
    ASSERT_TRUE(joined.ok());
    out = std::move(joined).value();
  }
  EXPECT_TRUE(out.HasColumn("v"));
  EXPECT_TRUE(out.HasColumn("t.v"));
  EXPECT_TRUE(out.HasColumn("t.v_2"));
}

TEST(JoinEdgeTest, ResampledHardJoinBucketsBaseKeys) {
  // Base time key is coarse but NOT aligned to bucket representatives
  // (values 0.2, 1.2, ...); foreign is fine-grained. The resampled hard
  // join buckets both sides, so matches still land.
  df::DataFrame base;
  ASSERT_TRUE(
      base.AddColumn(df::Column::Double("t", {0.2, 1.2, 2.2})).ok());
  df::DataFrame foreign;
  std::vector<double> times, values;
  for (int day = 0; day < 3; ++day) {
    for (int q = 0; q < 5; ++q) {
      times.push_back(day + 0.2 * q);
      values.push_back(day * 10.0 + q);
    }
  }
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("t", times)).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", values)).ok());

  CandidateJoin cand;
  cand.foreign_table = "series";
  cand.keys = {JoinKeyPair{"t", "t", KeyKind::kSoft}};
  JoinOptions options;
  options.soft_method = SoftJoinMethod::kHardExact;
  options.time_resample = true;
  Rng rng(3);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, cand, options, &rng);
  ASSERT_TRUE(joined.ok());
  // Each day bucket aggregates values {10d..10d+4} -> mean 10d + 2.
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 2.0);
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(1), 12.0);
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(2), 22.0);
}

TEST(JoinEdgeTest, EmptyForeignTableYieldsAllNulls) {
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("k", {1, 2})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Empty("k", df::DataType::kInt64)).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Empty("v", df::DataType::kDouble))
          .ok());
  CandidateJoin cand;
  cand.foreign_table = "t";
  cand.keys = {JoinKeyPair{"k", "k", KeyKind::kHard}};
  Rng rng(4);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, cand, {}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 2u);
  EXPECT_EQ(joined->col("v").NullCount(), 2u);
}

TEST(JoinEdgeTest, AllNullSoftForeignKeyYieldsNulls) {
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Double("t", {1.0})).ok());
  df::DataFrame foreign;
  df::Column t = df::Column::Empty("t", df::DataType::kDouble);
  t.AppendNull();
  ASSERT_TRUE(foreign.AddColumn(std::move(t)).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {9.0})).ok());
  CandidateJoin cand;
  cand.foreign_table = "t";
  cand.keys = {JoinKeyPair{"t", "t", KeyKind::kSoft}};
  JoinOptions options;
  options.soft_method = SoftJoinMethod::kNearest;
  options.time_resample = false;
  Rng rng(5);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, cand, options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->col("v").IsNull(0));
}

TEST(JoinEdgeTest, TwoWayCategoricalPicksOneOfTheNeighbors) {
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Double("t", {0.5})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("t", {0.0, 1.0})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::String("s", {"low", "high"})).ok());
  CandidateJoin cand;
  cand.foreign_table = "t";
  cand.keys = {JoinKeyPair{"t", "t", KeyKind::kSoft}};
  JoinOptions options;
  options.soft_method = SoftJoinMethod::kTwoWayNearest;
  options.time_resample = false;
  Rng rng(6);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, cand, options, &rng);
  ASSERT_TRUE(joined.ok());
  const std::string& value = joined->col("s").StringAt(0);
  EXPECT_TRUE(value == "low" || value == "high");
}

TEST(JoinEdgeTest, DisjointKeySetsYieldEmptyProbeResult) {
  // Every probe misses: the join must succeed with an all-null value
  // column, not fail or drop rows.
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("k", {1, 2, 3})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("k", {7, 8})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {1.0, 2.0})).ok());
  CandidateJoin cand;
  cand.foreign_table = "t";
  cand.keys = {JoinKeyPair{"k", "k", KeyKind::kHard}};
  Rng rng(8);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, cand, {}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 3u);
  EXPECT_EQ(joined->col("v").NullCount(), 3u);
}

TEST(JoinEdgeTest, AllNullHardJoinKeyYieldsNulls) {
  // 100%-null join key on both sides: no row can match, every output
  // value is null, and nothing crashes in the key encoder.
  df::DataFrame base;
  df::Column bk = df::Column::Empty("k", df::DataType::kInt64);
  bk.AppendNull();
  bk.AppendNull();
  ASSERT_TRUE(base.AddColumn(std::move(bk)).ok());
  df::DataFrame foreign;
  df::Column fk = df::Column::Empty("k", df::DataType::kInt64);
  fk.AppendNull();
  ASSERT_TRUE(foreign.AddColumn(std::move(fk)).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {5.0})).ok());
  CandidateJoin cand;
  cand.foreign_table = "t";
  cand.keys = {JoinKeyPair{"k", "k", KeyKind::kHard}};
  Rng rng(9);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, cand, {}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 2u);
  EXPECT_EQ(joined->col("v").NullCount(), 2u);
}

TEST(JoinEdgeTest, OneToManyPreAggregationOverAllNullValues) {
  // Duplicate foreign keys force the pre-aggregation path; the value
  // column is entirely null, so each group aggregates to null and the
  // joined column is null everywhere a key matches.
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("k", {1, 2})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("k", {1, 1, 2})).ok());
  df::Column v = df::Column::Empty("v", df::DataType::kDouble);
  v.AppendNull();
  v.AppendNull();
  v.AppendNull();
  ASSERT_TRUE(foreign.AddColumn(std::move(v)).ok());
  CandidateJoin cand;
  cand.foreign_table = "t";
  cand.keys = {JoinKeyPair{"k", "k", KeyKind::kHard}};
  Rng rng(10);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, cand, {}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 2u);
  EXPECT_EQ(joined->col("v").NullCount(), 2u);
  // The degraded frame still imputes: an all-null double column becomes
  // constant without error.
  df::DataFrame frame = std::move(joined).value();
  Rng impute_rng(11);
  EXPECT_TRUE(ImputeInPlace(&frame, &impute_rng).ok());
  EXPECT_EQ(frame.col("v").NullCount(), 0u);
}

TEST(JoinEdgeTest, ForeignWithOnlyKeyColumnsAddsNothing) {
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("k", {1, 2})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("k", {1})).ok());
  CandidateJoin cand;
  cand.foreign_table = "t";
  cand.keys = {JoinKeyPair{"k", "k", KeyKind::kHard}};
  Rng rng(7);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, cand, {}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumCols(), 1u);
}

}  // namespace
}  // namespace arda::join
