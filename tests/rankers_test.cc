#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "featsel/filter_rankers.h"
#include "featsel/model_rankers.h"
#include "featsel/relief.h"
#include "util/rng.h"

namespace arda::featsel {
namespace {

// 1 informative feature (index 0) + `noise` pure-noise features.
ml::Dataset MakeDataset(ml::TaskType task, size_t n, size_t noise,
                        uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.task = task;
  data.x = la::Matrix(n, 1 + noise);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool positive = i % 2 == 0;
    data.x(i, 0) = rng.Normal(positive ? 1.5 : -1.5, 0.8);
    for (size_t c = 1; c <= noise; ++c) data.x(i, c) = rng.Normal();
    data.y[i] = task == ml::TaskType::kClassification
                    ? (positive ? 1.0 : 0.0)
                    : 2.0 * data.x(i, 0) + rng.Normal(0.0, 0.3);
  }
  for (size_t c = 0; c <= noise; ++c) {
    data.feature_names.push_back("f" + std::to_string(c));
  }
  return data;
}

std::unique_ptr<FeatureRanker> MakeRanker(const std::string& name) {
  if (name == "pearson") return std::make_unique<PearsonRanker>();
  if (name == "f_test") return std::make_unique<FTestRanker>();
  if (name == "mutual_info") return std::make_unique<MutualInfoRanker>();
  if (name == "random_forest") return std::make_unique<RandomForestRanker>();
  if (name == "sparse_regression") {
    return std::make_unique<SparseRegressionRanker>();
  }
  if (name == "lasso") return std::make_unique<LassoRanker>();
  if (name == "logistic_reg") return std::make_unique<LogisticRanker>();
  if (name == "linear_svc") return std::make_unique<LinearSvcRanker>();
  if (name == "relief") return std::make_unique<ReliefRanker>();
  return nullptr;
}

// Property sweep: every ranker must put the informative feature first on
// its supported tasks.
class RankerProperty : public testing::TestWithParam<const char*> {};

TEST_P(RankerProperty, SignalOutranksNoiseOnSupportedTasks) {
  std::unique_ptr<FeatureRanker> ranker = MakeRanker(GetParam());
  ASSERT_NE(ranker, nullptr);
  EXPECT_EQ(ranker->name(), GetParam());
  for (ml::TaskType task :
       {ml::TaskType::kClassification, ml::TaskType::kRegression}) {
    if (!ranker->SupportsTask(task)) continue;
    ml::Dataset data = MakeDataset(task, 240, 6, 17);
    Rng rng(5);
    std::vector<double> scores = ranker->Rank(data, &rng);
    ASSERT_EQ(scores.size(), 7u);
    for (size_t c = 1; c < scores.size(); ++c) {
      EXPECT_GT(scores[0], scores[c])
          << ranker->name() << " failed on "
          << ml::TaskTypeName(task) << " noise feature " << c;
    }
  }
}

TEST_P(RankerProperty, ScoresAreFinite) {
  std::unique_ptr<FeatureRanker> ranker = MakeRanker(GetParam());
  ASSERT_NE(ranker, nullptr);
  ml::TaskType task = ranker->SupportsTask(ml::TaskType::kClassification)
                          ? ml::TaskType::kClassification
                          : ml::TaskType::kRegression;
  ml::Dataset data = MakeDataset(task, 120, 4, 23);
  Rng rng(6);
  for (double score : ranker->Rank(data, &rng)) {
    EXPECT_TRUE(std::isfinite(score));
  }
}

INSTANTIATE_TEST_SUITE_P(AllRankers, RankerProperty,
                         testing::Values("pearson", "f_test", "mutual_info",
                                         "random_forest",
                                         "sparse_regression", "lasso",
                                         "logistic_reg", "linear_svc",
                                         "relief"));

TEST(RankerUtilTest, DescendingOrderStable) {
  std::vector<size_t> order = DescendingOrder({0.5, 0.9, 0.5, 0.1});
  EXPECT_EQ(order, (std::vector<size_t>{1, 0, 2, 3}));
}

TEST(RankerUtilTest, MinMaxNormalize) {
  std::vector<double> out = MinMaxNormalize({2.0, 4.0, 3.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
  std::vector<double> flat = MinMaxNormalize({1.0, 1.0});
  EXPECT_DOUBLE_EQ(flat[0], 0.5);
}

TEST(TaskSupportTest, TaskRestrictedRankers) {
  EXPECT_FALSE(LassoRanker().SupportsTask(ml::TaskType::kClassification));
  EXPECT_TRUE(LassoRanker().SupportsTask(ml::TaskType::kRegression));
  EXPECT_FALSE(LogisticRanker().SupportsTask(ml::TaskType::kRegression));
  EXPECT_FALSE(LinearSvcRanker().SupportsTask(ml::TaskType::kRegression));
  EXPECT_TRUE(ReliefRanker().SupportsTask(ml::TaskType::kRegression));
}

TEST(MutualInfoTest, IndependentFeatureNearZero) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 400, 3, 31);
  Rng rng(7);
  std::vector<double> scores = MutualInfoRanker().Rank(data, &rng);
  // Noise MI should be near zero and far below the signal's.
  EXPECT_GT(scores[0], 5.0 * std::max({scores[1], scores[2], scores[3]}));
}

TEST(ReliefTest, RegressionModeFindsSignal) {
  ml::Dataset data = MakeDataset(ml::TaskType::kRegression, 300, 5, 37);
  Rng rng(8);
  std::vector<double> scores = ReliefRanker().Rank(data, &rng);
  for (size_t c = 1; c < scores.size(); ++c) {
    EXPECT_GT(scores[0], scores[c]);
  }
}

TEST(ReliefTest, TinyInputReturnsZeros) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 2, 1, 39);
  Rng rng(9);
  std::vector<double> scores = ReliefRanker().Rank(data, &rng);
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

}  // namespace
}  // namespace arda::featsel
