#include <gtest/gtest.h>

#include "dataframe/aggregate.h"

namespace arda::df {
namespace {

DataFrame MakeFrame() {
  DataFrame frame;
  EXPECT_TRUE(
      frame.AddColumn(Column::String("k", {"a", "b", "a", "a", "b"})).ok());
  EXPECT_TRUE(
      frame.AddColumn(Column::Double("v", {1.0, 10.0, 2.0, 3.0, 20.0})).ok());
  EXPECT_TRUE(frame
                  .AddColumn(Column::String(
                      "s", {"x", "p", "y", "x", "p"}))
                  .ok());
  return frame;
}

TEST(AggregateTest, MeanPerGroupFirstOccurrenceOrder) {
  Result<DataFrame> r = GroupByAggregate(MakeFrame(), {"k"});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 2u);
  EXPECT_EQ(r->col("k").StringAt(0), "a");
  EXPECT_DOUBLE_EQ(r->col("v").DoubleAt(0), 2.0);
  EXPECT_DOUBLE_EQ(r->col("v").DoubleAt(1), 15.0);
}

TEST(AggregateTest, ModeForCategorical) {
  Result<DataFrame> r = GroupByAggregate(MakeFrame(), {"k"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("s").StringAt(0), "x");  // x appears twice in group a
  EXPECT_EQ(r->col("s").StringAt(1), "p");
}

TEST(AggregateTest, MedianSumMinMaxFirst) {
  DataFrame frame = MakeFrame();
  AggregateOptions options;
  options.numeric = NumericAgg::kMedian;
  EXPECT_DOUBLE_EQ(
      GroupByAggregate(frame, {"k"}, options)->col("v").DoubleAt(0), 2.0);
  options.numeric = NumericAgg::kSum;
  EXPECT_DOUBLE_EQ(
      GroupByAggregate(frame, {"k"}, options)->col("v").DoubleAt(0), 6.0);
  options.numeric = NumericAgg::kMin;
  EXPECT_DOUBLE_EQ(
      GroupByAggregate(frame, {"k"}, options)->col("v").DoubleAt(0), 1.0);
  options.numeric = NumericAgg::kMax;
  EXPECT_DOUBLE_EQ(
      GroupByAggregate(frame, {"k"}, options)->col("v").DoubleAt(0), 3.0);
  options.numeric = NumericAgg::kFirst;
  EXPECT_DOUBLE_EQ(
      GroupByAggregate(frame, {"k"}, options)->col("v").DoubleAt(0), 1.0);
}

TEST(AggregateTest, CategoricalFirstOption) {
  AggregateOptions options;
  options.categorical = CategoricalAgg::kFirst;
  Result<DataFrame> r = GroupByAggregate(MakeFrame(), {"k"}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("s").StringAt(0), "x");
}

TEST(AggregateTest, CompositeKeys) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Int64("a", {1, 1, 2, 1})).ok());
  ASSERT_TRUE(
      frame.AddColumn(Column::String("b", {"x", "y", "x", "x"})).ok());
  ASSERT_TRUE(
      frame.AddColumn(Column::Double("v", {1.0, 2.0, 3.0, 5.0})).ok());
  Result<DataFrame> r = GroupByAggregate(frame, {"a", "b"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 3u);
  EXPECT_DOUBLE_EQ(r->col("v").DoubleAt(0), 3.0);  // (1, x): mean of 1, 5
}

TEST(AggregateTest, NullKeysFormOwnGroup) {
  DataFrame frame;
  Column k = Column::Empty("k", DataType::kString);
  k.AppendString("a");
  k.AppendNull();
  k.AppendNull();
  ASSERT_TRUE(frame.AddColumn(std::move(k)).ok());
  ASSERT_TRUE(frame.AddColumn(Column::Double("v", {1.0, 2.0, 4.0})).ok());
  Result<DataFrame> r = GroupByAggregate(frame, {"k"});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 2u);
  EXPECT_DOUBLE_EQ(r->col("v").DoubleAt(1), 3.0);
}

TEST(AggregateTest, AllNullValueGroupStaysNull) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::String("k", {"a", "a"})).ok());
  Column v = Column::Empty("v", DataType::kDouble);
  v.AppendNull();
  v.AppendNull();
  ASSERT_TRUE(frame.AddColumn(std::move(v)).ok());
  Result<DataFrame> r = GroupByAggregate(frame, {"k"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->col("v").IsNull(0));
}

TEST(AggregateTest, CountColumn) {
  AggregateOptions options;
  options.add_count = true;
  Result<DataFrame> r = GroupByAggregate(MakeFrame(), {"k"}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("__group_count").Int64At(0), 3);
  EXPECT_EQ(r->col("__group_count").Int64At(1), 2);
}

TEST(AggregateTest, MissingKeyFails) {
  EXPECT_FALSE(GroupByAggregate(MakeFrame(), {"nope"}).ok());
  EXPECT_FALSE(GroupByAggregate(MakeFrame(), {}).ok());
}

TEST(AggregateTest, NumericKeyKeepsType) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Int64("k", {1, 1, 2})).ok());
  ASSERT_TRUE(frame.AddColumn(Column::Double("v", {1.0, 3.0, 5.0})).ok());
  Result<DataFrame> r = GroupByAggregate(frame, {"k"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("k").type(), DataType::kInt64);
  EXPECT_EQ(r->col("k").Int64At(0), 1);
}

}  // namespace
}  // namespace arda::df
