// Tests for the telemetry surface (PR 9): Prometheus text exposition
// conformance (hand-rolled parser — no scraper dependency), the shared
// bucket-edge contract between MetricsToJson and the exposition, the
// sliding-window quantile estimator, structured logging, the per-stage
// collector, the embedded HTTP endpoint (in-process routing plus a real
// socket round trip), and the service readiness probe flipping across a
// COW ingest swap and a graceful drain.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/options.h"
#include "core/report_io.h"
#include "service/service.h"
#include "telemetry/exposition.h"
#include "telemetry/http_server.h"
#include "util/json.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define ARDA_TELEMETRY_TEST_SOCKETS 1
#endif

namespace arda {
namespace {

namespace fs = std::filesystem;

json::Value MustParse(const std::string& text) {
  Result<json::Value> parsed = json::Parse(text);
  ARDA_CHECK(parsed.ok());
  return std::move(*parsed);
}

// --- hand-rolled exposition parser (the conformance reference) ---

struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct PromDoc {
  std::map<std::string, std::string> help;  // family -> help text
  std::map<std::string, std::string> type;  // family -> counter|gauge|...
  std::vector<PromSample> samples;
};

bool ValidPromName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

// Parses one exposition document; returns false (with a diagnostic in
// `error`) on any malformed line. Escape handling mirrors the format
// spec: \\, \" and \n inside label values.
bool ParsePromText(const std::string& text, PromDoc* doc,
                   std::string* error) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      *error = "document does not end in a newline";
      return false;
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name kind"
      if (line.rfind("# HELP ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          *error = "HELP without text: " + line;
          return false;
        }
        doc->help[rest.substr(0, sp)] = rest.substr(sp + 1);
      } else if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          *error = "TYPE without kind: " + line;
          return false;
        }
        doc->type[rest.substr(0, sp)] = rest.substr(sp + 1);
      }
      continue;  // other comments are legal and ignored
    }
    PromSample sample;
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      *error = "sample without value: " + line;
      return false;
    }
    sample.name = line.substr(0, name_end);
    size_t cursor = name_end;
    if (line[cursor] == '{') {
      ++cursor;
      while (cursor < line.size() && line[cursor] != '}') {
        const size_t eq = line.find('=', cursor);
        if (eq == std::string::npos || line[eq + 1] != '"') {
          *error = "bad label syntax: " + line;
          return false;
        }
        const std::string key = line.substr(cursor, eq - cursor);
        std::string value;
        size_t v = eq + 2;
        for (; v < line.size() && line[v] != '"'; ++v) {
          if (line[v] == '\\') {
            ++v;
            if (v >= line.size()) {
              *error = "dangling escape: " + line;
              return false;
            }
            if (line[v] == 'n') {
              value += '\n';
            } else if (line[v] == '\\' || line[v] == '"') {
              value += line[v];
            } else {
              *error = "unknown escape: " + line;
              return false;
            }
          } else {
            value += line[v];
          }
        }
        if (v >= line.size()) {
          *error = "unterminated label value: " + line;
          return false;
        }
        sample.labels[key] = value;
        cursor = v + 1;
        if (cursor < line.size() && line[cursor] == ',') ++cursor;
      }
      if (cursor >= line.size() || line[cursor] != '}') {
        *error = "unterminated label set: " + line;
        return false;
      }
      ++cursor;
    }
    if (cursor >= line.size() || line[cursor] != ' ') {
      *error = "missing value separator: " + line;
      return false;
    }
    const std::string value_text = line.substr(cursor + 1);
    if (value_text == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        *error = "bad sample value: " + line;
        return false;
      }
    }
    doc->samples.push_back(std::move(sample));
  }
  return true;
}

const PromSample* FindSample(const PromDoc& doc, const std::string& name,
                             const std::string& le = "") {
  for (const PromSample& s : doc.samples) {
    if (s.name != name) continue;
    if (le.empty() && s.labels.empty()) return &s;
    auto it = s.labels.find("le");
    if (!le.empty() && it != s.labels.end() && it->second == le) return &s;
  }
  return nullptr;
}

// --- metric-name sanitization and label escaping ---

TEST(ExpositionTest, SanitizesRepoNamesToPrometheusCharset) {
  EXPECT_EQ(telemetry::SanitizeMetricName("service.requests_total"),
            "service_requests_total");
  EXPECT_EQ(telemetry::SanitizeMetricName("stage.run_augment"),
            "stage_run_augment");
  EXPECT_EQ(telemetry::SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(telemetry::SanitizeMetricName("a-b c"), "a_b_c");
  EXPECT_EQ(telemetry::SanitizeMetricName(""), "_");
  EXPECT_TRUE(ValidPromName(telemetry::SanitizeMetricName("9.дот")));
}

TEST(ExpositionTest, EscapesLabelValues) {
  EXPECT_EQ(telemetry::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(telemetry::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(telemetry::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(telemetry::EscapeLabelValue("a\nb"), "a\\nb");
}

// --- exposition conformance over a real registry ---

TEST(ExpositionTest, RendersParsableDocumentWithHelpTypeAndBuckets) {
  metrics::Registry registry;
  registry.GetCounter("service.requests_total").Increment(3);
  registry.GetGauge("simd.level").Set(1.0);
  metrics::Histogram& h = registry.GetHistogram(
      "service.request_seconds", metrics::LatencyBucketsSeconds());
  h.Observe(1e-7);  // first bucket (le 1e-06)
  h.Observe(0.5);   // le 1
  h.Observe(1e9);   // overflow (+Inf only)

  const std::string text = telemetry::RenderPrometheus(registry.Snapshot());
  PromDoc doc;
  std::string error;
  ASSERT_TRUE(ParsePromText(text, &doc, &error)) << error;

  // Every sample name is charset-legal and belongs to a family with
  // # HELP and # TYPE lines (bucket/sum/count roll up to their family).
  for (const PromSample& s : doc.samples) {
    EXPECT_TRUE(ValidPromName(s.name)) << s.name;
    std::string family = s.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t n = std::strlen(suffix);
      if (family.size() > n &&
          family.compare(family.size() - n, n, suffix) == 0 &&
          doc.type.count(family.substr(0, family.size() - n)) > 0) {
        family = family.substr(0, family.size() - n);
        break;
      }
    }
    EXPECT_EQ(doc.help.count(family), 1u) << family;
    EXPECT_EQ(doc.type.count(family), 1u) << family;
  }
  EXPECT_EQ(doc.type["service_requests_total"], "counter");
  EXPECT_EQ(doc.type["simd_level"], "gauge");
  EXPECT_EQ(doc.type["service_request_seconds"], "histogram");
  // The dotted repo name survives in HELP for correlation.
  EXPECT_NE(doc.help["service_requests_total"].find(
                "service.requests_total"),
            std::string::npos);

  const PromSample* count =
      FindSample(doc, "service_request_seconds_count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->value, 3.0);

  // Buckets must be cumulative and non-decreasing, ending at +Inf ==
  // _count.
  double previous = 0.0;
  const PromSample* inf_bucket = nullptr;
  for (const PromSample& s : doc.samples) {
    if (s.name != "service_request_seconds_bucket") continue;
    ASSERT_EQ(s.labels.count("le"), 1u);
    EXPECT_GE(s.value, previous) << "le=" << s.labels.at("le");
    previous = s.value;
    if (s.labels.at("le") == "+Inf") inf_bucket = &s;
  }
  ASSERT_NE(inf_bucket, nullptr);
  EXPECT_DOUBLE_EQ(inf_bucket->value, count->value);
  // The 1e9 observation is only in the overflow bucket.
  const PromSample* top_finite =
      FindSample(doc, "service_request_seconds_bucket", "100");
  ASSERT_NE(top_finite, nullptr);
  EXPECT_DOUBLE_EQ(top_finite->value, 2.0);
}

TEST(ExpositionTest, CountersAreMonotonicAcrossScrapes) {
  metrics::Registry registry;
  metrics::Counter& counter = registry.GetCounter("test.scrapes");
  counter.Increment(5);
  auto read = [&registry]() {
    PromDoc doc;
    std::string error;
    const std::string text =
        telemetry::RenderPrometheus(registry.Snapshot());
    EXPECT_TRUE(ParsePromText(text, &doc, &error)) << error;
    const PromSample* s = FindSample(doc, "test_scrapes");
    EXPECT_NE(s, nullptr);
    return s != nullptr ? s->value : -1.0;
  };
  const double first = read();
  counter.Increment(2);
  const double second = read();
  counter.Increment(1);
  const double third = read();
  EXPECT_DOUBLE_EQ(first, 5.0);
  EXPECT_DOUBLE_EQ(second, 7.0);
  EXPECT_DOUBLE_EQ(third, 8.0);
}

// --- shared bucket-edge contract (MetricsToJson <-> exposition) ---

TEST(ExpositionTest, JsonReportAndExpositionAgreeOnEveryBucketEdge) {
  metrics::Registry registry;
  metrics::Histogram& h = registry.GetHistogram(
      "stage.join", metrics::LatencyBucketsSeconds());
  h.Observe(0.002);
  metrics::Histogram& sizes =
      registry.GetHistogram("join.rows", metrics::SizeBuckets());
  sizes.Observe(12345.0);

  const metrics::MetricsSnapshot snapshot = registry.Snapshot();
  const std::string json_text = core::MetricsToJson(snapshot);
  PromDoc doc;
  std::string error;
  ASSERT_TRUE(ParsePromText(telemetry::RenderPrometheus(snapshot), &doc,
                            &error))
      << error;

  for (const metrics::HistogramSnapshot& hist : snapshot.histograms) {
    const std::string prom_name =
        telemetry::SanitizeMetricName(hist.name) + "_bucket";
    for (size_t b = 0; b < hist.bucket_counts.size(); ++b) {
      const std::string label =
          metrics::BucketBoundLabel(hist.bounds, b);
      // The exposition has exactly this le edge...
      EXPECT_NE(FindSample(doc, prom_name, label), nullptr)
          << hist.name << " le=" << label;
      // ...and the JSON report renders the same bytes (finite edges as
      // bare numbers, the overflow edge as the quoted "+Inf" string).
      const std::string json_le =
          b < hist.bounds.size() ? "{\"le\": " + label + ","
                                 : "{\"le\": \"" + label + "\",";
      EXPECT_NE(json_text.find(json_le), std::string::npos)
          << hist.name << " le=" << label;
    }
  }
}

TEST(ExpositionTest, BucketBoundLabelRendersFiniteAndOverflow) {
  const std::vector<double>& bounds = metrics::LatencyBucketsSeconds();
  EXPECT_EQ(metrics::BucketBoundLabel(bounds, 0), "1e-06");
  EXPECT_EQ(metrics::BucketBoundLabel(bounds, bounds.size() - 1), "100");
  EXPECT_EQ(metrics::BucketBoundLabel(bounds, bounds.size()), "+Inf");
}

// --- sliding-window quantiles ---

TEST(QuantileTest, AllTimeQuantileInterpolatesWithinBucket) {
  metrics::Registry registry;
  metrics::Histogram& h = registry.GetHistogram(
      "q.alltime", metrics::LatencyBucketsSeconds());
  for (int i = 0; i < 1000; ++i) h.Observe(5e-5);  // bucket (1e-5, 1e-4]
  const double p50 = h.Quantile(0.5);
  EXPECT_GT(p50, 1e-5);
  EXPECT_LE(p50, 1e-4);
  // Overflow-bucket ranks clamp to the highest finite bound.
  metrics::Histogram& over = registry.GetHistogram(
      "q.overflow", metrics::LatencyBucketsSeconds());
  over.Observe(1e9);
  EXPECT_DOUBLE_EQ(over.Quantile(0.99), 100.0);
  // Nothing observed -> 0.
  metrics::Histogram& empty = registry.GetHistogram(
      "q.empty", metrics::LatencyBucketsSeconds());
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(QuantileTest, WindowQuantileAgesOutOldObservations) {
  metrics::Registry registry;
  metrics::Histogram& h = registry.GetHistogram(
      "q.window", metrics::LatencyBucketsSeconds());

  h.MaybeRotate(0.0);  // fix the baseline before anything is observed
  for (int i = 0; i < 1000; ++i) h.Observe(5e-5);
  // Inside the window the estimate sees the fresh observations.
  double p50 = h.WindowQuantile(0.5);
  EXPECT_GT(p50, 1e-5);
  EXPECT_LE(p50, 1e-4);

  // A gap longer than the whole ring resets it: everything before the
  // gap ages out of the window while the all-time estimate keeps it.
  const double ring_span = (metrics::Histogram::kQuantileWindows + 1) *
                           metrics::Histogram::kQuantileWindowSeconds;
  h.MaybeRotate(ring_span * 2);
  EXPECT_DOUBLE_EQ(h.WindowQuantile(0.5), 0.0);
  EXPECT_GT(h.Quantile(0.5), 1e-5);

  // New observations dominate the window even though the cumulative
  // counts still hold 1000 old ones.
  for (int i = 0; i < 100; ++i) h.Observe(5.0);  // bucket (1, 10]
  p50 = h.WindowQuantile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 10.0);
  // ...and they age out too once the ring rotates past them.
  h.MaybeRotate(ring_span * 4);
  EXPECT_DOUBLE_EQ(h.WindowQuantile(0.5), 0.0);
}

TEST(QuantileTest, WindowRotatesGraduallyAndResetClearsRing) {
  metrics::Registry registry;
  metrics::Histogram& h = registry.GetHistogram(
      "q.gradual", metrics::LatencyBucketsSeconds());
  const double w = metrics::Histogram::kQuantileWindowSeconds;

  h.MaybeRotate(0.0);
  for (int i = 0; i < 100; ++i) h.Observe(5e-5);
  // Rotating one window at a time keeps the observations visible while
  // the pre-observation baseline is still in the ring (it falls out on
  // the kQuantileWindows-th rotation).
  for (size_t i = 1; i < metrics::Histogram::kQuantileWindows; ++i) {
    h.MaybeRotate(w * static_cast<double>(i));
    EXPECT_GT(h.WindowQuantile(0.5), 0.0) << "window " << i;
  }
  // One more rotation pushes the pre-observation baseline out.
  h.MaybeRotate(w * metrics::Histogram::kQuantileWindows);
  EXPECT_DOUBLE_EQ(h.WindowQuantile(0.5), 0.0);

  for (int i = 0; i < 10; ++i) h.Observe(5e-5);
  EXPECT_GT(h.WindowQuantile(0.5), 0.0);
  h.Reset();
  EXPECT_DOUBLE_EQ(h.WindowQuantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(QuantileTest, RegistryAdvanceWindowsRotatesEveryHistogram) {
  metrics::Registry registry;
  metrics::Histogram& a =
      registry.GetHistogram("q.a", metrics::LatencyBucketsSeconds());
  metrics::Histogram& b =
      registry.GetHistogram("q.b", metrics::LatencyBucketsSeconds());
  registry.AdvanceWindows(0.0);
  a.Observe(5e-5);
  b.Observe(5e-5);
  const double far = (metrics::Histogram::kQuantileWindows + 2) * 10.0 *
                     metrics::Histogram::kQuantileWindowSeconds;
  registry.AdvanceWindows(far);
  EXPECT_DOUBLE_EQ(a.WindowQuantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(b.WindowQuantile(0.5), 0.0);
  EXPECT_GT(a.Quantile(0.5), 0.0);
}

// --- structured logging ---

// Captures rendered log lines for one test and restores the defaults.
struct LogCapture {
  LogCapture() {
    lines = std::make_shared<std::vector<std::string>>();
    auto sink_lines = lines;
    auto sink_mu = mu;
    log::SetSinkForTest([sink_lines, sink_mu](const std::string& line) {
      std::lock_guard<std::mutex> lock(*sink_mu);
      sink_lines->push_back(line);
    });
  }
  ~LogCapture() {
    log::SetSinkForTest(nullptr);
    log::SetLevel(log::Level::kWarn);
    log::SetFormat(log::Format::kText);
  }
  std::vector<std::string> Lines() const {
    std::lock_guard<std::mutex> lock(*mu);
    return *lines;
  }
  std::shared_ptr<std::vector<std::string>> lines;
  std::shared_ptr<std::mutex> mu = std::make_shared<std::mutex>();
};

TEST(LogTest, TextFormatRendersSingleLine) {
  LogCapture capture;
  log::SetLevel(log::Level::kInfo);
  log::SetFormat(log::Format::kText);
  log::Info("service.request", {log::Field::Str("request_id", "c1-2"),
                                log::Field::F64("elapsed_ms", 12.5),
                                log::Field::Bool("ok", true)});
  const std::vector<std::string> lines = capture.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[INFO] service.request"), std::string::npos);
  EXPECT_NE(lines[0].find("request_id=c1-2"), std::string::npos);
  EXPECT_NE(lines[0].find("ok=true"), std::string::npos);
  EXPECT_EQ(lines[0].find('\n'), std::string::npos);
}

TEST(LogTest, JsonFormatEmitsParsableRecordsWithEnvelope) {
  LogCapture capture;
  log::SetLevel(log::Level::kDebug);
  log::SetFormat(log::Format::kJson);
  log::Warn("service.slow_request",
            {log::Field::Str("request_id", "c7-1"),
             log::Field::F64("elapsed_ms", 912.25),
             log::Field::Int("threshold_ms", 500),
             log::Field::Str("quoted", "a\"b\nc")});
  const std::vector<std::string> lines = capture.Lines();
  ASSERT_EQ(lines.size(), 1u);
  Result<json::Value> record = json::Parse(lines[0]);
  ASSERT_TRUE(record.ok()) << lines[0];
  EXPECT_EQ(record->StringOr("level", ""), "warn");
  EXPECT_EQ(record->StringOr("event", ""), "service.slow_request");
  EXPECT_EQ(record->StringOr("request_id", ""), "c7-1");
  EXPECT_EQ(record->StringOr("quoted", ""), "a\"b\nc");
  EXPECT_DOUBLE_EQ(record->NumberOr("elapsed_ms", 0.0), 912.25);
  EXPECT_EQ(record->IntOr("threshold_ms", 0), 500);
  // Envelope: wall timestamp and monotonic offset are both present and
  // sane (mono is small and non-negative; ts is a modern epoch).
  EXPECT_GE(record->NumberOr("mono", -1.0), 0.0);
  EXPECT_GT(record->NumberOr("ts", 0.0), 1e9);
}

TEST(LogTest, LevelsFilterAndSpecsParse) {
  LogCapture capture;
  log::SetLevel(log::Level::kWarn);
  log::Info("dropped.event");
  log::Debug("dropped.too");
  log::Error("kept.event");
  EXPECT_EQ(capture.Lines().size(), 1u);
  EXPECT_FALSE(log::Enabled(log::Level::kInfo));
  EXPECT_TRUE(log::Enabled(log::Level::kError));

  EXPECT_TRUE(log::SetLevelFromSpec("debug"));
  EXPECT_EQ(log::GlobalLevel(), log::Level::kDebug);
  EXPECT_TRUE(log::SetLevelFromSpec("off"));
  EXPECT_FALSE(log::SetLevelFromSpec("loud"));
  EXPECT_TRUE(log::SetFormatFromSpec("json"));
  EXPECT_FALSE(log::SetFormatFromSpec("xml"));

  // The flag surface fails loudly on bad specs (ARDA_LOG only warns).
  core::LogOptions options;
  options.level = "verbose";
  EXPECT_FALSE(core::ApplyLogOptions(options).ok());
  options.level = "info";
  options.format = "yaml";
  EXPECT_FALSE(core::ApplyLogOptions(options).ok());
  options.format = "text";
  EXPECT_TRUE(core::ApplyLogOptions(options).ok());
  EXPECT_EQ(log::GlobalLevel(), log::Level::kInfo);
}

// --- per-stage collector ---

TEST(StageCollectorTest, CollectsScopesAndNests) {
  EXPECT_EQ(trace::StageCollector::Current(), nullptr);
  trace::StageCollector outer;
  EXPECT_EQ(trace::StageCollector::Current(), &outer);
  {
    trace::StageScope a("stage.test_outer");
    trace::StageScope b("stage.test_inner");
  }
  ASSERT_EQ(outer.entries().size(), 2u);
  // Scopes record at destruction, innermost first.
  EXPECT_STREQ(outer.entries()[0].stage, "stage.test_inner");
  EXPECT_STREQ(outer.entries()[1].stage, "stage.test_outer");
  EXPECT_GE(outer.entries()[0].seconds, 0.0);
  {
    trace::StageCollector inner;
    EXPECT_EQ(trace::StageCollector::Current(), &inner);
    { trace::StageScope c("stage.test_nested"); }
    ASSERT_EQ(inner.entries().size(), 1u);
  }
  // The outer collector is reinstated and did not see the inner scope.
  EXPECT_EQ(trace::StageCollector::Current(), &outer);
  EXPECT_EQ(outer.entries().size(), 2u);
}

// --- HTTP endpoint: in-process routing ---

TEST(HttpServerTest, RoutesPathsInProcess) {
  telemetry::HttpServer server;
  int status = 0;
  std::string content_type;

  const uint64_t scrapes_before = metrics::GlobalRegistry()
                                      .Snapshot()
                                      .CounterValue("telemetry.scrapes_total");
  std::string body = server.HandlePath("/metrics", &status, &content_type);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(content_type, telemetry::kExpositionContentType);
  PromDoc doc;
  std::string error;
  ASSERT_TRUE(ParsePromText(body, &doc, &error)) << error;
  EXPECT_EQ(metrics::GlobalRegistry().Snapshot().CounterValue(
                "telemetry.scrapes_total"),
            scrapes_before + 1);

  body = server.HandlePath("/healthz", &status, &content_type);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");

  // No readiness hook installed means "always ready".
  body = server.HandlePath("/readyz", &status, &content_type);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ready\n");

  body = server.HandlePath("/nope", &status, &content_type);
  EXPECT_EQ(status, 404);
}

#if defined(ARDA_TELEMETRY_TEST_SOCKETS)

// Minimal HTTP client: one request, reads until the peer closes.
std::string HttpRequest(uint16_t port, const std::string& head) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < head.size()) {
    const ssize_t n = ::send(fd, head.data() + sent, head.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return HttpRequest(port, "GET " + path +
                               " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

TEST(HttpServerTest, ServesScrapesOverRealSockets) {
  std::atomic<bool> ready{true};
  telemetry::HttpServer server;
  telemetry::HttpServer::Hooks hooks;
  hooks.collect_metrics = [] {
    metrics::Registry registry;
    registry.GetCounter("scrape.test_total").Increment(9);
    return telemetry::RenderPrometheus(registry.Snapshot());
  };
  hooks.ready = [&ready](std::string* reason) {
    if (!ready.load()) {
      if (reason != nullptr) *reason = "draining";
      return false;
    }
    return true;
  };
  ASSERT_TRUE(server.Start(0, std::move(hooks)).ok());
  ASSERT_GT(server.port(), 0);

  const std::string metrics_response = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(metrics_response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u)
      << metrics_response;
  EXPECT_NE(metrics_response.find("Connection: close"), std::string::npos);
  EXPECT_NE(metrics_response.find(telemetry::kExpositionContentType),
            std::string::npos);
  const size_t body_at = metrics_response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  PromDoc doc;
  std::string error;
  ASSERT_TRUE(
      ParsePromText(metrics_response.substr(body_at + 4), &doc, &error))
      << error;
  const PromSample* s = FindSample(doc, "scrape_test_total");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 9.0);

  // Query strings are stripped before routing.
  EXPECT_EQ(HttpGet(server.port(), "/healthz?probe=1")
                .rfind("HTTP/1.1 200 OK\r\n", 0),
            0u);

  // Readiness flips through the hook.
  EXPECT_EQ(HttpGet(server.port(), "/readyz").rfind("HTTP/1.1 200", 0), 0u);
  ready.store(false);
  const std::string not_ready = HttpGet(server.port(), "/readyz");
  EXPECT_EQ(not_ready.rfind("HTTP/1.1 503", 0), 0u);
  EXPECT_NE(not_ready.find("draining"), std::string::npos);

  // Unknown paths, non-GET methods and malformed request lines.
  EXPECT_EQ(HttpGet(server.port(), "/nope").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(HttpRequest(server.port(),
                        "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .rfind("HTTP/1.1 405", 0),
            0u);
  EXPECT_EQ(HttpRequest(server.port(), "GARBAGE\r\n\r\n")
                .rfind("HTTP/1.1 400", 0),
            0u);

  server.Stop();
  // Stop is idempotent and the port no longer answers.
  server.Stop();
  EXPECT_EQ(HttpGet(server.port(), "/healthz"), "");
}

#endif  // ARDA_TELEMETRY_TEST_SOCKETS

// --- service integration: readiness, request ids, slow-request logs ---

// Tiny CSV fixture (mirrors service_test's layout).
struct TelemetryDir {
  fs::path dir;
  explicit TelemetryDir(const char* tag) {
    dir = fs::path(testing::TempDir()) / tag;
    fs::remove_all(dir);
    fs::create_directories(dir);
    Rng rng(3);
    std::string base_csv = "id,x,y\n";
    std::string lookup_csv = "id,hidden\n";
    for (int i = 0; i < 120; ++i) {
      double hidden = rng.Normal();
      double x = rng.Normal();
      base_csv += StrFormat("%d,%.6f,%.6f\n", i, x,
                            x + 3.0 * hidden + rng.Normal(0.0, 0.1));
      lookup_csv += StrFormat("%d,%.6f\n", i, hidden);
    }
    Write("sales.csv", base_csv);
    Write("lookup.csv", lookup_csv);
  }
  ~TelemetryDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  void Write(const std::string& name, const std::string& text) {
    std::ofstream out(dir / name, std::ios::binary);
    out << text;
  }
};

std::string AugmentRequestJson(uint64_t seed = 42) {
  std::map<std::string, json::Value> members;
  members.emplace("type", json::Value::MakeString("augment"));
  members.emplace("base", json::Value::MakeString("sales"));
  members.emplace("target", json::Value::MakeString("y"));
  members.emplace("seed",
                  json::Value::MakeInt(static_cast<int64_t>(seed)));
  return json::Serialize(json::Value::MakeObject(std::move(members)));
}

TEST(ServiceTelemetryTest, ReadyFlipsAcrossIngestAndDrain) {
  TelemetryDir data("arda_tel_ready");
  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  service::ArdaService server(config);

  std::string reason;
  EXPECT_FALSE(server.Ready(&reason));
  EXPECT_EQ(reason, "no repository snapshot loaded");

  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.Ready());

  // Wire the probe through the HTTP endpoint the way arda_serve does.
  telemetry::HttpServer telemetry_server;
  telemetry::HttpServer::Hooks hooks;
  hooks.ready = [&server](std::string* why) { return server.Ready(why); };
  int status = 0;
  std::string content_type;
  // HandlePath routes without Start — hooks are installed directly for
  // the in-process probe.
  ASSERT_TRUE(telemetry_server.Start(0, std::move(hooks)).ok());
  std::string body =
      telemetry_server.HandlePath("/readyz", &status, &content_type);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ready\n");

  // A COW ingest swap must not drop readiness: the old snapshot serves
  // until the new one is published.
  data.Write("extra.csv", "id,z\n1,2.0\n2,3.0\n");
  json::Value ingest =
      MustParse(server.HandleRequest("{\"type\":\"ingest\"}", "c1-1"));
  EXPECT_EQ(ingest.StringOr("status", ""), "ok");
  EXPECT_TRUE(server.Ready());
  body = telemetry_server.HandlePath("/readyz", &status, &content_type);
  EXPECT_EQ(status, 200);

  // Draining (the SIGTERM path funnels into BeginShutdown) flips the
  // probe to 503 with the reason in the body.
  server.BeginShutdown();
  EXPECT_FALSE(server.Ready(&reason));
  EXPECT_EQ(reason, "draining");
  body = telemetry_server.HandlePath("/readyz", &status, &content_type);
  EXPECT_EQ(status, 503);
  EXPECT_EQ(body, "draining\n");
  server.Wait();
  telemetry_server.Stop();
}

TEST(ServiceTelemetryTest, RequestIdsLandInLogsAndErrorsButNeverInOkAugments) {
  TelemetryDir data("arda_tel_ids");
  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  // Any finished request is "slow" at a zero-adjacent threshold, so the
  // per-stage breakdown record fires deterministically.
  config.slow_request_ms = 0.000001;
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());

  LogCapture capture;
  log::SetLevel(log::Level::kInfo);
  log::SetFormat(log::Format::kJson);

  // Malformed request: the error response carries the caller's id.
  json::Value error_response =
      MustParse(server.HandleRequest("not json at all", "c9-3"));
  EXPECT_EQ(error_response.StringOr("status", ""), "error");
  EXPECT_EQ(error_response.StringOr("request_id", ""), "c9-3");
  // The id-less overload mints a fallback id ("r<seq>") — visible in the
  // request log, not in the response of an ok augment.
  json::Value fallback = MustParse(server.HandleRequest("{}"));
  EXPECT_EQ(fallback.StringOr("status", ""), "error");
  EXPECT_EQ(fallback.StringOr("request_id", "").rfind("r", 0), 0u);

  const std::string first =
      server.HandleRequest(AugmentRequestJson(), "c9-7");
  const std::string second =
      server.HandleRequest(AugmentRequestJson(), "c9-8");
  // Byte-identity surface: ok augment responses never vary with the
  // request id (the result cache and cross-client comparisons depend on
  // it).
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.find("request_id"), std::string::npos);
  EXPECT_EQ(MustParse(first).StringOr("status", ""), "ok");

  // The logs carry the ids: a service.request record per request and a
  // slow-request record with the per-stage breakdown.
  bool saw_request_log = false;
  bool saw_slow_log = false;
  for (const std::string& line : capture.Lines()) {
    Result<json::Value> record = json::Parse(line);
    ASSERT_TRUE(record.ok()) << line;
    const std::string event = record->StringOr("event", "");
    if (event == "service.request" &&
        record->StringOr("request_id", "") == "c9-7") {
      saw_request_log = true;
      EXPECT_EQ(record->StringOr("type", ""), "augment");
      EXPECT_GE(record->NumberOr("elapsed_ms", -1.0), 0.0);
    }
    if (event == "service.slow_request" &&
        record->StringOr("request_id", "") == "c9-7") {
      saw_slow_log = true;
      // The breakdown names pipeline stages, stage_ms.<stage> fields.
      bool has_stage_field = false;
      // service.run_augment wraps the whole run, so it is always there.
      if (record->Find("stage_ms.service.run_augment") != nullptr) {
        has_stage_field = true;
      }
      EXPECT_TRUE(has_stage_field) << line;
    }
  }
  EXPECT_TRUE(saw_request_log);
  EXPECT_TRUE(saw_slow_log);

  // Counters moved: the slow-request path is also counted.
  EXPECT_GE(metrics::GlobalRegistry().Snapshot().CounterValue(
                "service.slow_requests_total"),
            1u);

  // Stats exposes the live window quantiles PublishTelemetryGauges
  // maintains.
  json::Value stats =
      MustParse(server.HandleRequest("{\"type\":\"stats\"}", "c9-9"));
  EXPECT_EQ(stats.StringOr("status", ""), "ok");
  const json::Value* latency = stats.Find("request_latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->NumberOr("p50", -1.0), 0.0);
  EXPECT_GE(latency->NumberOr("p99", -1.0),
            latency->NumberOr("p50", -1.0));
  // The gauges are published for the next scrape too.
  bool found_gauge = false;
  for (const auto& g : metrics::GlobalRegistry().Snapshot().gauges) {
    if (g.name == "service.request_latency_p99") found_gauge = true;
  }
  EXPECT_TRUE(found_gauge);

  server.BeginShutdown();
  server.Wait();
}

}  // namespace
}  // namespace arda
