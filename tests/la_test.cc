#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "la/linalg.h"
#include "la/matrix.h"
#include "util/rng.h"

namespace arda::la {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromData) {
  Matrix m(2, 2, std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 1), 4);
}

TEST(MatrixTest, RowAndColCopies) {
  Matrix m(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, SetRowAndSetCol) {
  Matrix m(2, 2);
  m.SetRow(0, {1, 2});
  m.SetCol(1, {9, 8});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 1), 9);
  EXPECT_DOUBLE_EQ(m(1, 1), 8);
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
}

TEST(MatrixTest, Multiply) {
  Matrix a(2, 2, std::vector<double>{1, 2, 3, 4});
  Matrix b(2, 2, std::vector<double>{5, 6, 7, 8});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, MultiplyVec) {
  Matrix a(2, 3, std::vector<double>{1, 0, 2, 0, 1, -1});
  std::vector<double> out = a.MultiplyVec({1, 2, 3});
  EXPECT_DOUBLE_EQ(out[0], 7);
  EXPECT_DOUBLE_EQ(out[1], -1);
}

TEST(MatrixTest, TransposeMultiplyVec) {
  Matrix a(2, 2, std::vector<double>{1, 2, 3, 4});
  std::vector<double> out = a.TransposeMultiplyVec({1, 1});
  EXPECT_DOUBLE_EQ(out[0], 4);
  EXPECT_DOUBLE_EQ(out[1], 6);
}

TEST(MatrixTest, SelectColsAndRows) {
  Matrix a(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  Matrix cols = a.SelectCols({2, 0});
  EXPECT_DOUBLE_EQ(cols(0, 0), 3);
  EXPECT_DOUBLE_EQ(cols(1, 1), 4);
  Matrix rows = a.SelectRows({1, 1});
  EXPECT_EQ(rows.rows(), 2u);
  EXPECT_DOUBLE_EQ(rows(0, 0), 4);
  EXPECT_DOUBLE_EQ(rows(1, 2), 6);
}

TEST(MatrixTest, HStack) {
  Matrix a(2, 1, std::vector<double>{1, 2});
  Matrix b(2, 2, std::vector<double>{3, 4, 5, 6});
  Matrix c = a.HStack(b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_DOUBLE_EQ(c(1, 2), 6);
}

TEST(MatrixTest, HStackWithEmpty) {
  Matrix a;
  Matrix b(2, 2, std::vector<double>{3, 4, 5, 6});
  EXPECT_EQ(a.HStack(b).cols(), 2u);
  EXPECT_EQ(b.HStack(a).cols(), 2u);
}

TEST(MatrixTest, Identity) {
  Matrix i = Identity(3);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 2), 0.0);
}

TEST(VectorOpsTest, DotNormAxpy) {
  std::vector<double> a = {1, 2, 2};
  std::vector<double> b = {2, 0, 1};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 3.0);
  Axpy(2.0, b, &a);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
}

TEST(VectorOpsTest, MeanVariance) {
  std::vector<double> a = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(a), 2.5);
  EXPECT_DOUBLE_EQ(Variance(a), 1.25);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(VectorOpsTest, PearsonPerfectCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {-1, -2, -3, -4};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(VectorOpsTest, PearsonConstantInputIsZero) {
  std::vector<double> a = {1, 1, 1};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(CholeskyTest, FactorsSpdMatrix) {
  Matrix a(2, 2, std::vector<double>{4, 2, 2, 3});
  Result<Matrix> l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(l->At(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l->At(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l->At(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2, std::vector<double>{1, 2, 2, 1});
  EXPECT_FALSE(Cholesky(a).ok());
}

TEST(SolveSpdTest, SolvesSystem) {
  Matrix a(2, 2, std::vector<double>{4, 2, 2, 3});
  Result<std::vector<double>> x = SolveSpd(a, {10, 8});
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  EXPECT_NEAR(4 * (*x)[0] + 2 * (*x)[1], 10.0, 1e-9);
  EXPECT_NEAR(2 * (*x)[0] + 3 * (*x)[1], 8.0, 1e-9);
}

TEST(RidgeSolveTest, RecoversLinearModel) {
  Rng rng(5);
  const size_t n = 200, d = 4;
  Matrix x(n, d);
  std::vector<double> truth = {2.0, -1.0, 0.5, 3.0};
  std::vector<double> y(n);
  for (size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < d; ++c) {
      x(r, c) = rng.Normal();
      acc += truth[c] * x(r, c);
    }
    y[r] = acc;
  }
  Result<std::vector<double>> w = RidgeSolve(x, y, 1e-6);
  ASSERT_TRUE(w.ok());
  for (size_t c = 0; c < d; ++c) EXPECT_NEAR((*w)[c], truth[c], 1e-3);
}

TEST(RidgeSolveTest, NonFiniteGramReturnsStatusNotNaNWeights) {
  // A NaN feature poisons the Gram matrix; no amount of diagonal jitter
  // fixes it, so the solver must fail with a Status instead of silently
  // returning NaN weights.
  Matrix x(3, 2);
  x(0, 0) = 1.0;
  x(0, 1) = std::numeric_limits<double>::quiet_NaN();
  x(1, 0) = 2.0;
  x(1, 1) = 1.0;
  x(2, 0) = 3.0;
  x(2, 1) = -1.0;
  std::vector<double> y = {1.0, 2.0, 3.0};
  Result<std::vector<double>> w = RidgeSolve(x, y, 1e-3);
  ASSERT_FALSE(w.ok());
  EXPECT_NE(w.status().message().find("singular"), std::string::npos);
}

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  Rng rng(6);
  Matrix x(300, 2);
  for (size_t r = 0; r < 300; ++r) {
    x(r, 0) = rng.Normal(5.0, 3.0);
    x(r, 1) = 7.0;  // constant column
  }
  ColumnStats stats = ComputeColumnStats(x);
  Matrix z = Standardize(x, stats);
  EXPECT_NEAR(Mean(z.Col(0)), 0.0, 1e-9);
  EXPECT_NEAR(Variance(z.Col(0)), 1.0, 1e-6);
  EXPECT_NEAR(z(0, 1), 0.0, 1e-12);  // constant column maps to zero
}

TEST(FeatureMomentsTest, MeanOverColumns) {
  Matrix x(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  FeatureMoments m = ComputeFeatureMoments(x);
  ASSERT_EQ(m.mean.size(), 2u);
  EXPECT_DOUBLE_EQ(m.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(m.mean[1], 5.0);
  EXPECT_EQ(m.covariance.rows(), 2u);
  // Both rows are [1,2,3] shifted; columns vary together -> positive
  // covariance everywhere.
  EXPECT_GT(m.covariance(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.covariance(0, 1), m.covariance(1, 0));
}

TEST(SampleMultivariateNormalTest, MatchesMoments) {
  // Target: mean (1, -1), covariance [[2, 0.8], [0.8, 1]].
  FeatureMoments moments;
  moments.mean = {1.0, -1.0};
  moments.covariance = Matrix(2, 2, std::vector<double>{2.0, 0.8, 0.8, 1.0});
  Rng rng(8);
  Matrix samples = SampleMultivariateNormal(moments, 20000, &rng);
  ASSERT_EQ(samples.rows(), 2u);
  double m0 = Mean(samples.Row(0));
  double m1 = Mean(samples.Row(1));
  EXPECT_NEAR(m0, 1.0, 0.05);
  EXPECT_NEAR(m1, -1.0, 0.05);
  // Empirical covariance.
  double cov = 0.0;
  for (size_t s = 0; s < samples.cols(); ++s) {
    cov += (samples(0, s) - m0) * (samples(1, s) - m1);
  }
  cov /= static_cast<double>(samples.cols());
  EXPECT_NEAR(cov, 0.8, 0.08);
}

TEST(SampleMultivariateNormalTest, SingularCovarianceFallsBack) {
  FeatureMoments moments;
  moments.mean = {0.0, 0.0};
  moments.covariance = Matrix(2, 2);  // all zeros: singular
  Rng rng(9);
  Matrix samples = SampleMultivariateNormal(moments, 100, &rng);
  EXPECT_EQ(samples.cols(), 100u);
}

}  // namespace
}  // namespace arda::la
