// Tests for the exploration utilities: Describe summaries and selection
// stability analysis.

#include <gtest/gtest.h>

#include <cmath>

#include "dataframe/describe.h"
#include "featsel/stability.h"
#include "util/rng.h"

namespace arda {
namespace {

TEST(DescribeTest, NumericSummary) {
  df::DataFrame frame;
  df::Column v = df::Column::Empty("v", df::DataType::kDouble);
  v.AppendDouble(1.0);
  v.AppendDouble(2.0);
  v.AppendDouble(3.0);
  v.AppendNull();
  ASSERT_TRUE(frame.AddColumn(std::move(v)).ok());
  std::vector<df::ColumnSummary> summaries = df::Describe(frame);
  ASSERT_EQ(summaries.size(), 1u);
  const df::ColumnSummary& s = summaries[0];
  EXPECT_EQ(s.name, "v");
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.null_count, 1u);
  EXPECT_EQ(s.distinct, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(DescribeTest, StringSummaryModeAndDistinct) {
  df::DataFrame frame;
  ASSERT_TRUE(frame
                  .AddColumn(df::Column::String(
                      "s", {"a", "b", "b", "c", "b"}))
                  .ok());
  std::vector<df::ColumnSummary> summaries = df::Describe(frame);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].distinct, 3u);
  EXPECT_EQ(summaries[0].mode, "b");
  EXPECT_DOUBLE_EQ(summaries[0].mean, 0.0);  // numeric fields untouched
}

TEST(DescribeTest, RenderedTableContainsHeaderAndValues) {
  df::DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(df::Column::Int64("id", {7, 8})).ok());
  std::string text = df::DescribeToString(frame);
  EXPECT_NE(text.find("column"), std::string::npos);
  EXPECT_NE(text.find("id"), std::string::npos);
  EXPECT_NE(text.find("7.5"), std::string::npos);  // mean
}

TEST(DescribeTest, EmptyFrame) {
  df::DataFrame frame;
  EXPECT_TRUE(df::Describe(frame).empty());
}

TEST(StabilityTest, JaccardBasics) {
  EXPECT_DOUBLE_EQ(featsel::SelectionJaccard({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(featsel::SelectionJaccard({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(featsel::SelectionJaccard({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(featsel::SelectionJaccard({}, {}), 1.0);
}

ml::Dataset MakeStrongSignal(size_t n, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.task = ml::TaskType::kClassification;
  data.x = la::Matrix(n, 5);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool positive = i % 2 == 0;
    data.y[i] = positive ? 1.0 : 0.0;
    data.x(i, 0) = rng.Normal(positive ? 3.0 : -3.0, 0.4);  // dominant
    for (size_t c = 1; c < 5; ++c) data.x(i, c) = rng.Normal();
  }
  for (size_t c = 0; c < 5; ++c) {
    data.feature_names.push_back("f" + std::to_string(c));
  }
  return data;
}

TEST(StabilityTest, DominantFeatureAlwaysSelected) {
  ml::Dataset data = MakeStrongSignal(240, 3);
  std::unique_ptr<featsel::FeatureSelector> selector =
      featsel::MakeSelector("f_test");
  featsel::StabilityOptions options;
  options.num_bootstraps = 5;
  featsel::StabilityResult result =
      featsel::AnalyzeSelectionStability(data, *selector, options);
  EXPECT_EQ(result.selections.size(), 5u);
  EXPECT_DOUBLE_EQ(result.selection_frequency[0], 1.0);
  EXPECT_GT(result.mean_jaccard, 0.3);
  EXPECT_LE(result.mean_jaccard, 1.0);
}

TEST(StabilityTest, FrequenciesAreProbabilities) {
  ml::Dataset data = MakeStrongSignal(150, 5);
  std::unique_ptr<featsel::FeatureSelector> selector =
      featsel::MakeSelector("random_forest");
  featsel::StabilityOptions options;
  options.num_bootstraps = 4;
  featsel::StabilityResult result =
      featsel::AnalyzeSelectionStability(data, *selector, options);
  ASSERT_EQ(result.selection_frequency.size(), 5u);
  for (double freq : result.selection_frequency) {
    EXPECT_GE(freq, 0.0);
    EXPECT_LE(freq, 1.0);
  }
}

}  // namespace
}  // namespace arda
