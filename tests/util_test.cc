#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace arda {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalHasApproximatelyUnitMoments) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, PoissonMeanMatchesLambda) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) sum += static_cast<double>(rng.Poisson(4.0));
  EXPECT_NEAR(sum / 5000.0, 4.0, 0.2);
}

TEST(RngTest, PoissonLargeLambdaUsesNormalApprox) {
  Rng rng(21);
  double sum = 0.0;
  for (int i = 0; i < 3000; ++i) {
    int64_t v = rng.Poisson(100.0);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 3000.0, 100.0, 2.0);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(25);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(50, 20);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleWithoutReplacementFullPermutation) {
  Rng rng(27);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(29);
  std::vector<int> values = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(values, shuffled);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Fork();
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Doubler(Result<int> input) {
  ARDA_ASSIGN_OR_RETURN(int v, std::move(input));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string> parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleToken) {
  EXPECT_EQ(Split("abc", ',').size(), 1u);
}

TEST(StringUtilTest, TrimRemovesWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, JoinWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ParseDoubleAcceptsValid) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(StringUtilTest, ParseDoubleRejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, ParseDoubleAcceptsSubnormals) {
  // Regression: the old strtod-based parser rejected subnormals because
  // strtod reports them via errno=ERANGE even though the conversion is
  // exact enough to use.
  double v = 0.0;
  ASSERT_TRUE(ParseDouble("1e-320", &v));
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1e-300);
  ASSERT_TRUE(ParseDouble("-4.9406564584124654e-324", &v));  // min denormal
  EXPECT_LT(v, 0.0);
}

TEST(StringUtilTest, ParseDoubleStrictGrammar) {
  // The CSV numeric grammar (docs/csv_dialect.md): no nan/inf spellings,
  // no hex floats, no '+' sign, no overflowing magnitudes — those stay
  // strings in type inference.
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("nan", &v));
  EXPECT_FALSE(ParseDouble("NaN", &v));
  EXPECT_FALSE(ParseDouble("-nan", &v));
  EXPECT_FALSE(ParseDouble("inf", &v));
  EXPECT_FALSE(ParseDouble("Infinity", &v));
  EXPECT_FALSE(ParseDouble("-inf", &v));
  EXPECT_FALSE(ParseDouble("0x1p3", &v));
  EXPECT_FALSE(ParseDouble("0x10", &v));
  EXPECT_FALSE(ParseDouble("+1.5", &v));
  EXPECT_FALSE(ParseDouble("1e999", &v));
  EXPECT_FALSE(ParseDouble("-1e999", &v));
  EXPECT_FALSE(ParseDouble("1e", &v));
  EXPECT_FALSE(ParseDouble("-", &v));
  EXPECT_FALSE(ParseDouble(".", &v));
  EXPECT_FALSE(ParseDouble("1.5 2", &v));
  // Tiny-but-representable and bare-dot forms parse.
  EXPECT_TRUE(ParseDouble(".5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(ParseDouble("5.", &v));
  EXPECT_DOUBLE_EQ(v, 5.0);
  EXPECT_TRUE(ParseDouble("001", &v));
  EXPECT_DOUBLE_EQ(v, 1.0);
  // Underflow past the smallest denormal is out of range, like overflow.
  EXPECT_FALSE(ParseDouble("1e-999", &v));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
}

TEST(StringUtilTest, ParseInt64StrictGrammar) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_TRUE(ParseInt64(" 007 ", &v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));   // overflow
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));  // underflow
  EXPECT_FALSE(ParseInt64("+1", &v));
  EXPECT_FALSE(ParseInt64("0x10", &v));
  EXPECT_FALSE(ParseInt64("1 2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("-", &v));
}

TEST(StringUtilTest, StrFormatWorks) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(StringUtilTest, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch watch;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  watch.Reset();
  EXPECT_GE(watch.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace arda
