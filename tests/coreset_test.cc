#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "coreset/coreset.h"

namespace arda::coreset {
namespace {

df::DataFrame MakeLabeled(size_t majority, size_t minority) {
  df::DataFrame frame;
  std::vector<int64_t> labels;
  std::vector<double> values;
  for (size_t i = 0; i < majority; ++i) {
    labels.push_back(0);
    values.push_back(static_cast<double>(i));
  }
  for (size_t i = 0; i < minority; ++i) {
    labels.push_back(1);
    values.push_back(1000.0 + static_cast<double>(i));
  }
  EXPECT_TRUE(frame.AddColumn(df::Column::Int64("label", labels)).ok());
  EXPECT_TRUE(frame.AddColumn(df::Column::Double("v", values)).ok());
  return frame;
}

TEST(CoresetTest, HeuristicSize) {
  EXPECT_EQ(HeuristicCoresetSize(100), 100u);
  EXPECT_EQ(HeuristicCoresetSize(1000), 1000u);
  size_t big = HeuristicCoresetSize(1001000);
  EXPECT_EQ(big, 2000u);  // 1000 + sqrt(1e6)
}

TEST(CoresetTest, NoneKeepsEverything) {
  df::DataFrame base = MakeLabeled(50, 10);
  CoresetConfig config;
  config.method = CoresetMethod::kNone;
  config.size = 5;
  Rng rng(1);
  Result<df::DataFrame> sampled = SampleCoreset(
      base, "label", ml::TaskType::kClassification, config, &rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(sampled->NumRows(), 60u);
}

TEST(CoresetTest, UniformSampleHasRequestedSize) {
  df::DataFrame base = MakeLabeled(80, 20);
  CoresetConfig config;
  config.method = CoresetMethod::kUniform;
  config.size = 25;
  Rng rng(2);
  Result<df::DataFrame> sampled = SampleCoreset(
      base, "label", ml::TaskType::kClassification, config, &rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(sampled->NumRows(), 25u);
}

TEST(CoresetTest, StratifiedKeepsEveryClass) {
  // Minority class so small a uniform sample could easily miss it.
  df::DataFrame base = MakeLabeled(196, 4);
  CoresetConfig config;
  config.method = CoresetMethod::kStratified;
  config.size = 20;
  Rng rng(3);
  Result<df::DataFrame> sampled = SampleCoreset(
      base, "label", ml::TaskType::kClassification, config, &rng);
  ASSERT_TRUE(sampled.ok());
  std::map<int64_t, size_t> counts;
  const df::Column& label = sampled->col("label");
  for (size_t r = 0; r < label.size(); ++r) ++counts[label.Int64At(r)];
  EXPECT_GE(counts[0], 1u);
  EXPECT_GE(counts[1], 1u);  // minority never overlooked
  EXPECT_GT(counts[0], counts[1]);
}

TEST(CoresetTest, StratifiedProportionsRoughlyPreserved) {
  df::DataFrame base = MakeLabeled(300, 100);
  CoresetConfig config;
  config.method = CoresetMethod::kStratified;
  config.size = 100;
  Rng rng(4);
  Result<df::DataFrame> sampled = SampleCoreset(
      base, "label", ml::TaskType::kClassification, config, &rng);
  ASSERT_TRUE(sampled.ok());
  size_t minority = 0;
  const df::Column& label = sampled->col("label");
  for (size_t r = 0; r < label.size(); ++r) {
    minority += label.Int64At(r) == 1;
  }
  EXPECT_NEAR(static_cast<double>(minority), 25.0, 3.0);
}

TEST(CoresetTest, MissingLabelColumnFails) {
  df::DataFrame base = MakeLabeled(10, 10);
  CoresetConfig config;
  Rng rng(5);
  EXPECT_FALSE(SampleCoreset(base, "nope", ml::TaskType::kClassification,
                             config, &rng)
                   .ok());
}

TEST(CoresetTest, MethodNames) {
  EXPECT_STREQ(CoresetMethodName(CoresetMethod::kUniform), "uniform");
  EXPECT_STREQ(CoresetMethodName(CoresetMethod::kSketch), "sketch");
}

ml::Dataset MakeNumericDataset(size_t n, ml::TaskType task) {
  ml::Dataset data;
  data.task = task;
  data.x = la::Matrix(n, 3);
  data.y.resize(n);
  Rng rng(7);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < 3; ++c) data.x(r, c) = rng.Normal();
    data.y[r] = task == ml::TaskType::kClassification
                    ? static_cast<double>(r % 3)
                    : data.x(r, 0) * 2.0;
  }
  data.feature_names = {"a", "b", "c"};
  return data;
}

TEST(SketchTest, ReducesRowCountKeepsColumns) {
  ml::Dataset data = MakeNumericDataset(200, ml::TaskType::kRegression);
  Rng rng(8);
  ml::Dataset sketched = SketchRows(data, 40, &rng);
  EXPECT_LE(sketched.NumRows(), 41u);
  EXPECT_GT(sketched.NumRows(), 10u);
  EXPECT_EQ(sketched.NumFeatures(), 3u);
  EXPECT_EQ(sketched.y.size(), sketched.NumRows());
}

TEST(SketchTest, NoOpWhenTargetExceedsRows) {
  ml::Dataset data = MakeNumericDataset(30, ml::TaskType::kRegression);
  Rng rng(9);
  ml::Dataset sketched = SketchRows(data, 100, &rng);
  EXPECT_EQ(sketched.NumRows(), 30u);
}

TEST(SketchTest, ClassificationSketchKeepsAllLabels) {
  ml::Dataset data = MakeNumericDataset(300, ml::TaskType::kClassification);
  Rng rng(10);
  ml::Dataset sketched = SketchRows(data, 60, &rng);
  std::vector<int> labels = ml::DistinctLabels(sketched.y);
  EXPECT_EQ(labels.size(), 3u);
}

TEST(SketchTest, PreservesColumnNormsApproximately) {
  // A CountSketch is an (approximate) subspace embedding: column norms of
  // the sketched matrix concentrate around the originals.
  ml::Dataset data = MakeNumericDataset(2000, ml::TaskType::kRegression);
  Rng rng(11);
  ml::Dataset sketched = SketchRows(data, 400, &rng);
  for (size_t c = 0; c < 3; ++c) {
    double orig = 0.0, sk = 0.0;
    for (size_t r = 0; r < data.NumRows(); ++r) {
      orig += data.x(r, c) * data.x(r, c);
    }
    for (size_t r = 0; r < sketched.NumRows(); ++r) {
      sk += sketched.x(r, c) * sketched.x(r, c);
    }
    EXPECT_NEAR(sk / orig, 1.0, 0.35);
  }
}

TEST(SketchTest, RegressionTargetSketchedConsistently) {
  // y was a linear function of column 0; the sketch applies the same
  // linear map to both, so the relationship survives exactly.
  ml::Dataset data = MakeNumericDataset(500, ml::TaskType::kRegression);
  Rng rng(12);
  ml::Dataset sketched = SketchRows(data, 100, &rng);
  for (size_t r = 0; r < sketched.NumRows(); ++r) {
    EXPECT_NEAR(sketched.y[r], 2.0 * sketched.x(r, 0), 1e-9);
  }
}

}  // namespace
}  // namespace arda::coreset
