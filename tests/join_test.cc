#include <gtest/gtest.h>

#include <limits>

#include "join/impute.h"
#include "join/join_executor.h"
#include "join/resample.h"

namespace arda::join {
namespace {

using discovery::CandidateJoin;
using discovery::JoinKeyPair;
using discovery::KeyKind;

CandidateJoin HardJoin(const std::string& table, const std::string& key) {
  CandidateJoin cand;
  cand.foreign_table = table;
  cand.keys = {JoinKeyPair{key, key, KeyKind::kHard}};
  return cand;
}

df::DataFrame MakeBase() {
  df::DataFrame base;
  EXPECT_TRUE(base.AddColumn(df::Column::Int64("id", {1, 2, 3, 4})).ok());
  EXPECT_TRUE(
      base.AddColumn(df::Column::Double("y", {10.0, 20.0, 30.0, 40.0}))
          .ok());
  return base;
}

TEST(HardJoinTest, MatchesAndPreservesAllBaseRows) {
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", {2, 4})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("v", {200.0, 400.0})).ok());
  Rng rng(1);
  Result<df::DataFrame> joined = ExecuteLeftJoin(
      MakeBase(), foreign, HardJoin("f", "id"), JoinOptions{}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 4u);  // LEFT JOIN keeps every base row
  const df::Column& v = joined->col("v");
  EXPECT_TRUE(v.IsNull(0));
  EXPECT_DOUBLE_EQ(v.DoubleAt(1), 200.0);
  EXPECT_TRUE(v.IsNull(2));
  EXPECT_DOUBLE_EQ(v.DoubleAt(3), 400.0);
}

TEST(HardJoinTest, KeyColumnNotDuplicated) {
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", {1})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {5.0})).ok());
  Rng rng(1);
  Result<df::DataFrame> joined = ExecuteLeftJoin(
      MakeBase(), foreign, HardJoin("f", "id"), JoinOptions{}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumCols(), 3u);  // id, y, v
}

TEST(HardJoinTest, OneToManyPreAggregates) {
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", {1, 1, 2})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("v", {10.0, 30.0, 7.0})).ok());
  Rng rng(1);
  Result<df::DataFrame> joined = ExecuteLeftJoin(
      MakeBase(), foreign, HardJoin("f", "id"), JoinOptions{}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 4u);  // never duplicates base rows
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 20.0);  // mean(10, 30)
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(1), 7.0);
}

TEST(HardJoinTest, CompositeKeys) {
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("a", {1, 1, 2})).ok());
  ASSERT_TRUE(
      base.AddColumn(df::Column::String("b", {"x", "y", "x"})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("a", {1, 2})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::String("b", {"y", "x"})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {1.0, 2.0})).ok());

  CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {JoinKeyPair{"a", "a", KeyKind::kHard},
               JoinKeyPair{"b", "b", KeyKind::kHard}};
  Rng rng(1);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, cand, JoinOptions{}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->col("v").IsNull(0));   // (1, x) unmatched
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(1), 1.0);  // (1, y)
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(2), 2.0);  // (2, x)
}

TEST(HardJoinTest, NullBaseKeysStayUnmatched) {
  df::DataFrame base;
  df::Column id = df::Column::Empty("id", df::DataType::kInt64);
  id.AppendInt64(1);
  id.AppendNull();
  ASSERT_TRUE(base.AddColumn(std::move(id)).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", {1})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {9.0})).ok());
  Rng rng(1);
  Result<df::DataFrame> joined = ExecuteLeftJoin(
      base, foreign, HardJoin("f", "id"), JoinOptions{}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 9.0);
  EXPECT_TRUE(joined->col("v").IsNull(1));
}

TEST(HardJoinTest, CollidingColumnNamesGetPrefixed) {
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", {1})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("y", {-1.0})).ok());
  Rng rng(1);
  Result<df::DataFrame> joined = ExecuteLeftJoin(
      MakeBase(), foreign, HardJoin("ft", "id"), JoinOptions{}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->HasColumn("ft.y"));
  EXPECT_DOUBLE_EQ(joined->col("y").DoubleAt(0), 10.0);  // base y untouched
}

TEST(HardJoinTest, MissingKeyColumnFails) {
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("other", {1})).ok());
  Rng rng(1);
  EXPECT_FALSE(ExecuteLeftJoin(MakeBase(), foreign, HardJoin("f", "id"),
                               JoinOptions{}, &rng)
                   .ok());
  CandidateJoin empty;
  empty.foreign_table = "f";
  EXPECT_FALSE(
      ExecuteLeftJoin(MakeBase(), foreign, empty, JoinOptions{}, &rng).ok());
}

// ----------------------------------------------------------- soft joins --

df::DataFrame MakeTimeBase() {
  df::DataFrame base;
  EXPECT_TRUE(
      base.AddColumn(df::Column::Double("t", {0.0, 1.0, 2.0})).ok());
  return base;
}

CandidateJoin SoftJoin() {
  CandidateJoin cand;
  cand.foreign_table = "series";
  cand.keys = {JoinKeyPair{"t", "t", KeyKind::kSoft}};
  return cand;
}

TEST(SoftJoinTest, NearestPicksClosestValue) {
  df::DataFrame foreign;
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("t", {0.4, 0.9, 2.2})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("v", {1.0, 2.0, 3.0})).ok());
  JoinOptions options;
  options.soft_method = SoftJoinMethod::kNearest;
  options.time_resample = false;
  Rng rng(1);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(MakeTimeBase(), foreign, SoftJoin(), options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 1.0);  // 0.0 -> 0.4
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(1), 2.0);  // 1.0 -> 0.9
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(2), 3.0);  // 2.0 -> 2.2
}

TEST(SoftJoinTest, NearestRespectsTolerance) {
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("t", {5.0})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {1.0})).ok());
  JoinOptions options;
  options.soft_method = SoftJoinMethod::kNearest;
  options.time_resample = false;
  options.soft_tolerance = 0.5;
  Rng rng(1);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(MakeTimeBase(), foreign, SoftJoin(), options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->col("v").IsNull(0));  // |0 - 5| > 0.5
}

TEST(SoftJoinTest, TwoWayInterpolatesLinearly) {
  df::DataFrame foreign;
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("t", {0.0, 2.0})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("v", {10.0, 30.0})).ok());
  JoinOptions options;
  options.soft_method = SoftJoinMethod::kTwoWayNearest;
  options.time_resample = false;
  Rng rng(1);
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Double("t", {0.5})).ok());
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, SoftJoin(), options, &rng);
  ASSERT_TRUE(joined.ok());
  // t=0.5 between 0 and 2: lambda = (2-0.5)/2 = 0.75 on the low row.
  EXPECT_NEAR(joined->col("v").DoubleAt(0), 0.75 * 10.0 + 0.25 * 30.0,
              1e-12);
}

TEST(SoftJoinTest, TwoWayAtBoundariesUsesNearest) {
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("t", {1.0, 2.0})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {10.0, 20.0})).ok());
  JoinOptions options;
  options.soft_method = SoftJoinMethod::kTwoWayNearest;
  options.time_resample = false;
  Rng rng(1);
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Double("t", {0.0, 5.0})).ok());
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, SoftJoin(), options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 10.0);  // below range
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(1), 20.0);  // above range
}

TEST(SoftJoinTest, HardExactOnSoftKeyOnlyMatchesEqualValues) {
  df::DataFrame foreign;
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("t", {0.0, 1.5})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("v", {10.0, 20.0})).ok());
  JoinOptions options;
  options.soft_method = SoftJoinMethod::kHardExact;
  options.time_resample = false;
  Rng rng(1);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(MakeTimeBase(), foreign, SoftJoin(), options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 10.0);
  EXPECT_TRUE(joined->col("v").IsNull(1));
  EXPECT_TRUE(joined->col("v").IsNull(2));
}

TEST(SoftJoinTest, MixedKeyMatchesWithinHardPartition) {
  df::DataFrame base;
  ASSERT_TRUE(
      base.AddColumn(df::Column::String("city", {"nyc", "bos"})).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("t", {1.0, 1.0})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign
                  .AddColumn(df::Column::String(
                      "city", {"nyc", "nyc", "bos"}))
                  .ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("t", {0.8, 5.0, 1.3})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("v", {1.0, 2.0, 3.0})).ok());

  CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {JoinKeyPair{"city", "city", KeyKind::kHard},
               JoinKeyPair{"t", "t", KeyKind::kSoft}};
  JoinOptions options;
  options.soft_method = SoftJoinMethod::kNearest;
  options.time_resample = false;
  Rng rng(1);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, cand, options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 1.0);  // nyc nearest 0.8
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(1), 3.0);  // bos partition
}

TEST(SoftJoinTest, TwoSoftKeysRejected) {
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Double("a", {1.0})).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("b", {1.0})).ok());
  df::DataFrame foreign = base;
  CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {JoinKeyPair{"a", "a", KeyKind::kSoft},
               JoinKeyPair{"b", "b", KeyKind::kSoft}};
  Rng rng(1);
  EXPECT_FALSE(
      ExecuteLeftJoin(base, foreign, cand, JoinOptions{}, &rng).ok());
}

TEST(SoftJoinTest, NonNumericSoftKeyRejected) {
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::String("k", {"x"})).ok());
  df::DataFrame foreign = base;
  CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {JoinKeyPair{"k", "k", KeyKind::kSoft}};
  Rng rng(1);
  EXPECT_FALSE(
      ExecuteLeftJoin(base, foreign, cand, JoinOptions{}, &rng).ok());
}

// ------------------------------------------------------------ resample --

TEST(ResampleTest, DetectGranularity) {
  df::Column daily = df::Column::Double("t", {0.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(DetectGranularity(daily), 1.0);
  df::Column single = df::Column::Double("t", {5.0});
  EXPECT_DOUBLE_EQ(DetectGranularity(single), 0.0);
  df::Column strings = df::Column::String("s", {"a"});
  EXPECT_DOUBLE_EQ(DetectGranularity(strings), 0.0);
}

TEST(ResampleTest, DetectGranularitySnapsAndSkipsNonFiniteGaps) {
  // Gaps of 0.1 accumulate binary error; the 9-significant-digit snap
  // must collapse them to one granularity, not a cloud of near-0.1s.
  std::vector<double> times;
  for (int i = 0; i < 30; ++i) times.push_back(0.1 * i);
  df::Column tenths = df::Column::Double("t", times);
  EXPECT_DOUBLE_EQ(DetectGranularity(tenths), 0.1);

  // An infinite value makes one gap non-finite; it must be ignored, not
  // crash the string round-trip or win the granularity vote.
  df::Column with_inf = df::Column::Double(
      "t", {0.0, 1.0, 2.0, 3.0, std::numeric_limits<double>::infinity()});
  EXPECT_DOUBLE_EQ(DetectGranularity(with_inf), 1.0);

  // All-infinite gaps: no usable granularity.
  df::Column infs = df::Column::Double(
      "t", {-std::numeric_limits<double>::infinity(), 0.0,
            std::numeric_limits<double>::infinity()});
  EXPECT_DOUBLE_EQ(DetectGranularity(infs), 0.0);
}

TEST(ResampleTest, AggregatesFineRowsIntoCoarseBuckets) {
  df::DataFrame foreign;
  ASSERT_TRUE(foreign
                  .AddColumn(df::Column::Double(
                      "t", {0.0, 0.25, 0.5, 1.0, 1.25}))
                  .ok());
  ASSERT_TRUE(foreign
                  .AddColumn(df::Column::Double(
                      "v", {1.0, 2.0, 3.0, 10.0, 20.0}))
                  .ok());
  Result<df::DataFrame> resampled = TimeResample(foreign, "t", 1.0);
  ASSERT_TRUE(resampled.ok());
  ASSERT_EQ(resampled->NumRows(), 2u);
  EXPECT_DOUBLE_EQ(resampled->col("v").DoubleAt(0), 2.0);   // mean 1,2,3
  EXPECT_DOUBLE_EQ(resampled->col("v").DoubleAt(1), 15.0);  // mean 10,20
}

TEST(ResampleTest, InvalidInputsFail) {
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::String("t", {"x"})).ok());
  EXPECT_FALSE(TimeResample(foreign, "t", 1.0).ok());
  EXPECT_FALSE(TimeResample(foreign, "missing", 1.0).ok());
  df::DataFrame numeric;
  ASSERT_TRUE(numeric.AddColumn(df::Column::Double("t", {1.0})).ok());
  EXPECT_FALSE(TimeResample(numeric, "t", 0.0).ok());
}

TEST(SoftJoinTest, AutomaticTimeResamplingRecoversDailyMean) {
  // Base at day granularity; foreign at quarter-day granularity.
  df::DataFrame base;
  ASSERT_TRUE(
      base.AddColumn(df::Column::Double("t", {0.0, 1.0, 2.0})).ok());
  df::DataFrame foreign;
  std::vector<double> times, values;
  for (int day = 0; day < 3; ++day) {
    for (int q = 0; q < 4; ++q) {
      times.push_back(day + 0.25 * q);
      values.push_back(day * 100.0 + q);  // daily mean = 100*day + 1.5
    }
  }
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("t", times)).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", values)).ok());
  JoinOptions options;
  options.soft_method = SoftJoinMethod::kNearest;
  options.time_resample = true;
  Rng rng(1);
  Result<df::DataFrame> joined =
      ExecuteLeftJoin(base, foreign, SoftJoin(), options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 1.5);
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(1), 101.5);
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(2), 201.5);
}

// ------------------------------------------------------------- impute --

TEST(ImputeTest, NumericMedianAndCategoricalRandom) {
  df::DataFrame frame;
  df::Column num = df::Column::Empty("n", df::DataType::kDouble);
  num.AppendDouble(1.0);
  num.AppendNull();
  num.AppendDouble(3.0);
  ASSERT_TRUE(frame.AddColumn(std::move(num)).ok());
  df::Column cat = df::Column::Empty("c", df::DataType::kString);
  cat.AppendString("only");
  cat.AppendNull();
  cat.AppendString("only");
  ASSERT_TRUE(frame.AddColumn(std::move(cat)).ok());

  Rng rng(3);
  EXPECT_EQ(TotalNullCount(frame), 2u);
  ImputeInPlace(&frame, &rng);
  EXPECT_EQ(TotalNullCount(frame), 0u);
  EXPECT_DOUBLE_EQ(frame.col("n").DoubleAt(1), 2.0);
  EXPECT_EQ(frame.col("c").StringAt(1), "only");
}

TEST(ImputeTest, AllNullColumnsGetDefaults) {
  df::DataFrame frame;
  df::Column num = df::Column::Empty("n", df::DataType::kDouble);
  num.AppendNull();
  ASSERT_TRUE(frame.AddColumn(std::move(num)).ok());
  df::Column cat = df::Column::Empty("c", df::DataType::kString);
  cat.AppendNull();
  ASSERT_TRUE(frame.AddColumn(std::move(cat)).ok());
  Rng rng(3);
  ImputeInPlace(&frame, &rng);
  EXPECT_DOUBLE_EQ(frame.col("n").DoubleAt(0), 0.0);
  EXPECT_EQ(frame.col("c").StringAt(0), "<missing>");
}

TEST(ImputeTest, IntColumnImputedWithRoundedMedian) {
  df::DataFrame frame;
  df::Column num = df::Column::Empty("n", df::DataType::kInt64);
  num.AppendInt64(1);
  num.AppendNull();
  num.AppendInt64(4);
  ASSERT_TRUE(frame.AddColumn(std::move(num)).ok());
  Rng rng(3);
  ImputeInPlace(&frame, &rng);
  EXPECT_EQ(frame.col("n").Int64At(1), 3);  // round(2.5) away from zero
}

}  // namespace
}  // namespace arda::join
