#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/arda.h"
#include "data/generators.h"

namespace arda::data {
namespace {

Scenario MakeByName(const std::string& name) {
  const uint64_t seed = 7;
  if (name == "taxi") return MakeTaxiScenario(seed, ScenarioScale::kSmall);
  if (name == "pickup") {
    return MakePickupScenario(seed, ScenarioScale::kSmall);
  }
  if (name == "poverty") {
    return MakePovertyScenario(seed, ScenarioScale::kSmall);
  }
  if (name == "school_s") {
    return MakeSchoolScenario(false, seed, ScenarioScale::kSmall);
  }
  return MakeSchoolScenario(true, seed, ScenarioScale::kSmall);
}

class ScenarioProperty : public testing::TestWithParam<const char*> {};

TEST_P(ScenarioProperty, StructurallySound) {
  Scenario scenario = MakeByName(GetParam());
  EXPECT_EQ(scenario.name, GetParam());
  EXPECT_GT(scenario.base.NumRows(), 50u);
  ASSERT_TRUE(scenario.base.HasColumn(scenario.target_column));
  // Base registered in the repo plus at least one foreign table.
  EXPECT_TRUE(scenario.repo.Has(scenario.name));
  EXPECT_GT(scenario.repo.size(), 2u);
  EXPECT_FALSE(scenario.candidates.empty());
  EXPECT_FALSE(scenario.signal_tables.empty());
}

TEST_P(ScenarioProperty, CandidatesReferenceRealTablesAndKeys) {
  Scenario scenario = MakeByName(GetParam());
  for (const discovery::CandidateJoin& cand : scenario.candidates) {
    ASSERT_TRUE(scenario.repo.Has(cand.foreign_table))
        << cand.foreign_table;
    const df::DataFrame& foreign =
        scenario.repo.GetOrDie(cand.foreign_table);
    for (const discovery::JoinKeyPair& key : cand.keys) {
      EXPECT_TRUE(scenario.base.HasColumn(key.base_column))
          << key.base_column;
      EXPECT_TRUE(foreign.HasColumn(key.foreign_column))
          << key.foreign_column;
    }
  }
}

TEST_P(ScenarioProperty, SignalTablesAreCandidates) {
  Scenario scenario = MakeByName(GetParam());
  std::set<std::string> candidate_tables;
  for (const discovery::CandidateJoin& cand : scenario.candidates) {
    candidate_tables.insert(cand.foreign_table);
  }
  for (const std::string& table : scenario.signal_tables) {
    EXPECT_TRUE(candidate_tables.count(table) > 0) << table;
  }
}

TEST_P(ScenarioProperty, DatasetBuildsAndTargetVaries) {
  Scenario scenario = MakeByName(GetParam());
  Result<ml::Dataset> data = core::BuildDataset(
      scenario.base, scenario.target_column, scenario.task);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->NumRows(), scenario.base.NumRows());
  if (scenario.task == ml::TaskType::kClassification) {
    EXPECT_GE(data->NumClasses(), 2u);
  } else {
    EXPECT_GT(la::Variance(data->y), 0.0);
  }
}

TEST_P(ScenarioProperty, DeterministicForSeed) {
  Scenario a = MakeByName(GetParam());
  Scenario b = MakeByName(GetParam());
  ASSERT_EQ(a.base.NumRows(), b.base.NumRows());
  const df::Column& target_a = a.base.col(a.target_column);
  const df::Column& target_b = b.base.col(b.target_column);
  for (size_t r = 0; r < target_a.size(); ++r) {
    EXPECT_EQ(target_a.ValueToString(r), target_b.ValueToString(r));
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioProperty,
                         testing::Values("taxi", "pickup", "poverty",
                                         "school_s", "school_l"));

TEST(ScenarioTest, SchoolLargeHasMoreTablesThanSmall) {
  Scenario small = MakeSchoolScenario(false, 7, ScenarioScale::kSmall);
  Scenario large = MakeSchoolScenario(true, 7, ScenarioScale::kSmall);
  EXPECT_GT(large.repo.size(), small.repo.size());
  // Both sizes share the same five signal tables; L only adds noise pool.
  EXPECT_EQ(large.signal_tables.size(), small.signal_tables.size());
}

TEST(ScenarioTest, FullScaleMatchesPaperTableCounts) {
  // Candidates = joinable tables: 29 (taxi), 23 (pickup), 39 (poverty),
  // 16 (school S), 350 (school L).
  EXPECT_EQ(MakeTaxiScenario(7).candidates.size(), 29u);
  EXPECT_EQ(MakePickupScenario(7).candidates.size(), 23u);
  EXPECT_EQ(MakePovertyScenario(7).candidates.size(), 39u);
  EXPECT_EQ(MakeSchoolScenario(false, 7).candidates.size(), 16u);
  EXPECT_EQ(MakeSchoolScenario(true, 7).candidates.size(), 350u);
}

TEST(ScenarioTest, MakeAllScenariosOrder) {
  std::vector<Scenario> all = MakeAllScenarios(7, ScenarioScale::kSmall);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "pickup");
  EXPECT_EQ(all[4].name, "taxi");
}

TEST(ScenarioTest, MakeTaskWiresRepoAndCandidates) {
  Scenario scenario = MakeByName("poverty");
  core::AugmentationTask task = scenario.MakeTask();
  EXPECT_EQ(task.repo, &scenario.repo);
  EXPECT_EQ(task.candidates.size(), scenario.candidates.size());
  EXPECT_EQ(task.base_table_name, "poverty");
}

TEST(MicroBenchmarkTest, KrakenShapeMatchesPaper) {
  MicroBenchmark bench = MakeKrakenBenchmark(7);
  EXPECT_EQ(bench.data.NumRows(), 1000u);
  EXPECT_EQ(bench.num_original, 24u);
  // 10x noise appended.
  EXPECT_EQ(bench.data.NumFeatures(), 24u + 240u);
  // Label counts 568 / 432.
  size_t positives = 0;
  for (double y : bench.data.y) positives += y > 0.5;
  EXPECT_EQ(positives, 432u);
  EXPECT_TRUE(bench.IsNoiseFeature(24));
  EXPECT_FALSE(bench.IsNoiseFeature(23));
}

TEST(MicroBenchmarkTest, DigitsShapeMatchesPaper) {
  MicroBenchmark bench = MakeDigitsBenchmark(7);
  EXPECT_EQ(bench.data.NumRows(), 1800u);
  EXPECT_EQ(bench.num_original, 64u);
  EXPECT_EQ(bench.data.NumFeatures(), 64u + 640u);
  EXPECT_EQ(bench.data.NumClasses(), 10u);
}

TEST(MicroBenchmarkTest, InjectNoiseAppends) {
  ml::Dataset data;
  data.task = ml::TaskType::kRegression;
  data.x = la::Matrix(10, 4, 1.0);
  data.y.assign(10, 0.0);
  data.feature_names = {"a", "b", "c", "d"};
  Rng rng(3);
  size_t added = InjectNoiseFeatures(&data, 2.0, &rng);
  EXPECT_EQ(added, 8u);
  EXPECT_EQ(data.NumFeatures(), 12u);
  EXPECT_EQ(data.feature_names.size(), 12u);
}

TEST(MicroBenchmarkTest, DigitsSignalIsLearnable) {
  MicroBenchmark bench = MakeDigitsBenchmark(7, /*noise_multiplier=*/0.0);
  ml::Evaluator evaluator(bench.data, 0.25, 11);
  EXPECT_GT(evaluator.ScoreAllFeatures(), 0.8);
}

TEST(MicroBenchmarkTest, KrakenSignalIsLearnable) {
  MicroBenchmark bench = MakeKrakenBenchmark(7, /*noise_multiplier=*/0.0);
  ml::Evaluator evaluator(bench.data, 0.25, 11);
  // Kraken is deliberately hard (wide class overlap); learnable means
  // comfortably above the 56.8% majority-class rate.
  EXPECT_GT(evaluator.ScoreAllFeatures(), 0.65);
}

}  // namespace
}  // namespace arda::data
