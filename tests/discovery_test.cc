#include <gtest/gtest.h>

#include "discovery/discovery.h"
#include "discovery/repository.h"
#include "discovery/tuple_ratio.h"

namespace arda::discovery {
namespace {

df::DataFrame MakeBase() {
  df::DataFrame base;
  EXPECT_TRUE(
      base.AddColumn(df::Column::Int64("id", {1, 2, 3, 4})).ok());
  EXPECT_TRUE(base.AddColumn(df::Column::Double("t", {0.0, 1.0, 2.0, 3.0}))
                  .ok());
  EXPECT_TRUE(
      base.AddColumn(df::Column::Double("y", {1.0, 2.0, 3.0, 4.0})).ok());
  return base;
}

TEST(RepositoryTest, AddGetRemove) {
  DataRepository repo;
  EXPECT_TRUE(repo.Add("t1", MakeBase()).ok());
  EXPECT_EQ(repo.Add("t1", MakeBase()).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(repo.Has("t1"));
  EXPECT_FALSE(repo.Has("t2"));
  ASSERT_TRUE(repo.Get("t1").ok());
  EXPECT_EQ(repo.Get("t1").value()->NumRows(), 4u);
  EXPECT_FALSE(repo.Get("t2").ok());
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_TRUE(repo.Remove("t1").ok());
  EXPECT_FALSE(repo.Remove("t1").ok());
}

TEST(RepositoryTest, NamesSorted) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("b", MakeBase()).ok());
  ASSERT_TRUE(repo.Add("a", MakeBase()).ok());
  EXPECT_EQ(repo.Names(), (std::vector<std::string>{"a", "b"}));
}

TEST(RepositoryTest, AddOrReplace) {
  DataRepository repo;
  repo.AddOrReplace("t", MakeBase());
  df::DataFrame small;
  ASSERT_TRUE(small.AddColumn(df::Column::Int64("id", {9})).ok());
  repo.AddOrReplace("t", std::move(small));
  EXPECT_EQ(repo.GetOrDie("t").NumRows(), 1u);
}

TEST(IntersectionScoreTest, CountsOverlapFraction) {
  df::Column base = df::Column::Int64("id", {1, 2, 3, 4});
  df::Column full = df::Column::Int64("id", {1, 2, 3, 4, 5});
  df::Column half = df::Column::Int64("id", {1, 2, 99, 98});
  df::Column none = df::Column::Int64("id", {7, 8});
  EXPECT_DOUBLE_EQ(IntersectionScore(base, full), 1.0);
  EXPECT_DOUBLE_EQ(IntersectionScore(base, half), 0.5);
  EXPECT_DOUBLE_EQ(IntersectionScore(base, none), 0.0);
}

TEST(RangeOverlapTest, NumericRanges) {
  df::Column base = df::Column::Double("t", {0.0, 10.0});
  df::Column inside = df::Column::Double("t", {2.0, 8.0});
  df::Column disjoint = df::Column::Double("t", {20.0, 30.0});
  EXPECT_NEAR(RangeOverlap(base, inside), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(RangeOverlap(base, disjoint), 0.0);
}

TEST(DiscoverCandidatesTest, FindsHardKeyByNameAndOverlap) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("base", MakeBase()).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", {1, 2, 3})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("extra", {5.0, 6.0, 7.0})).ok());
  ASSERT_TRUE(repo.Add("lookup", std::move(foreign)).ok());

  std::vector<CandidateJoin> candidates =
      DiscoverCandidates(repo, "base", "y");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].foreign_table, "lookup");
  ASSERT_EQ(candidates[0].keys.size(), 1u);
  EXPECT_EQ(candidates[0].keys[0].base_column, "id");
  EXPECT_EQ(candidates[0].keys[0].kind, KeyKind::kHard);
  EXPECT_NEAR(candidates[0].score, 0.75, 1e-12);
}

TEST(DiscoverCandidatesTest, ProposesSoftKeyForMisalignedNumerics) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("base", MakeBase()).ok());
  df::DataFrame foreign;
  // Same range as base "t" but offset values -> no exact matches.
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("t", {0.5, 1.5, 2.5})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("w", {1.0, 1.0, 1.0})).ok());
  ASSERT_TRUE(repo.Add("series", std::move(foreign)).ok());

  std::vector<CandidateJoin> candidates =
      DiscoverCandidates(repo, "base", "y");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].keys[0].kind, KeyKind::kSoft);
  EXPECT_EQ(candidates[0].keys[0].base_column, "t");
}

TEST(DiscoverCandidatesTest, TargetColumnNeverAKey) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("base", MakeBase()).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("y", {1.0, 2.0, 3.0})).ok());
  ASSERT_TRUE(repo.Add("leak", std::move(foreign)).ok());
  EXPECT_TRUE(DiscoverCandidates(repo, "base", "y").empty());
}

TEST(DiscoverCandidatesTest, SortedByScoreDescending) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("base", MakeBase()).ok());
  df::DataFrame strong;
  ASSERT_TRUE(strong.AddColumn(df::Column::Int64("id", {1, 2, 3, 4})).ok());
  ASSERT_TRUE(repo.Add("strong", std::move(strong)).ok());
  df::DataFrame weak;
  ASSERT_TRUE(weak.AddColumn(df::Column::Int64("id", {1, 90, 91, 92})).ok());
  ASSERT_TRUE(repo.Add("weak", std::move(weak)).ok());
  std::vector<CandidateJoin> candidates =
      DiscoverCandidates(repo, "base", "y");
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].foreign_table, "strong");
  EXPECT_GT(candidates[0].score, candidates[1].score);
}

TEST(TupleRatioTest, ComputesDomainRatio) {
  df::DataFrame base = MakeBase();  // 4 rows
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", {1, 1, 2})).ok());
  CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {JoinKeyPair{"id", "id", KeyKind::kHard}};
  // nS = 4, nR = 2 distinct keys.
  EXPECT_DOUBLE_EQ(TupleRatio(base, foreign, cand), 2.0);
}

TEST(TupleRatioFilterTest, SplitsKeptAndRemoved) {
  DataRepository repo;
  df::DataFrame base = MakeBase();
  // Rich table: 4 distinct keys -> ratio 1.
  df::DataFrame rich;
  ASSERT_TRUE(rich.AddColumn(df::Column::Int64("id", {1, 2, 3, 4})).ok());
  ASSERT_TRUE(repo.Add("rich", std::move(rich)).ok());
  // Tiny domain: 1 distinct key -> ratio 4.
  df::DataFrame tiny;
  ASSERT_TRUE(tiny.AddColumn(df::Column::Int64("id", {1, 1})).ok());
  ASSERT_TRUE(repo.Add("tiny", std::move(tiny)).ok());

  std::vector<CandidateJoin> candidates(2);
  candidates[0].foreign_table = "rich";
  candidates[0].keys = {JoinKeyPair{"id", "id", KeyKind::kHard}};
  candidates[1].foreign_table = "tiny";
  candidates[1].keys = {JoinKeyPair{"id", "id", KeyKind::kHard}};

  TupleRatioFilterResult result =
      FilterByTupleRatio(repo, base, candidates, /*tau=*/2.0);
  ASSERT_EQ(result.kept.size(), 1u);
  EXPECT_EQ(result.kept[0].foreign_table, "rich");
  ASSERT_EQ(result.removed.size(), 1u);
  EXPECT_EQ(result.removed[0].foreign_table, "tiny");
}

TEST(TupleRatioFilterTest, MissingTableRemoved) {
  DataRepository repo;
  std::vector<CandidateJoin> candidates(1);
  candidates[0].foreign_table = "ghost";
  TupleRatioFilterResult result =
      FilterByTupleRatio(repo, MakeBase(), candidates, 100.0);
  EXPECT_TRUE(result.kept.empty());
  EXPECT_EQ(result.removed.size(), 1u);
}

TEST(CandidateTest, HasSoftKey) {
  CandidateJoin cand;
  cand.keys = {JoinKeyPair{"a", "a", KeyKind::kHard}};
  EXPECT_FALSE(cand.HasSoftKey());
  cand.keys.push_back(JoinKeyPair{"t", "t", KeyKind::kSoft});
  EXPECT_TRUE(cand.HasSoftKey());
}

}  // namespace
}  // namespace arda::discovery
