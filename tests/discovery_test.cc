#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/generators.h"
#include "dataframe/column_stats.h"
#include "discovery/discovery.h"
#include "discovery/minhash.h"
#include "discovery/repository.h"
#include "discovery/tuple_ratio.h"

namespace arda::discovery {
namespace {

df::DataFrame MakeBase() {
  df::DataFrame base;
  EXPECT_TRUE(
      base.AddColumn(df::Column::Int64("id", {1, 2, 3, 4})).ok());
  EXPECT_TRUE(base.AddColumn(df::Column::Double("t", {0.0, 1.0, 2.0, 3.0}))
                  .ok());
  EXPECT_TRUE(
      base.AddColumn(df::Column::Double("y", {1.0, 2.0, 3.0, 4.0})).ok());
  return base;
}

TEST(RepositoryTest, AddGetRemove) {
  DataRepository repo;
  EXPECT_TRUE(repo.Add("t1", MakeBase()).ok());
  EXPECT_EQ(repo.Add("t1", MakeBase()).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(repo.Has("t1"));
  EXPECT_FALSE(repo.Has("t2"));
  ASSERT_TRUE(repo.Get("t1").ok());
  EXPECT_EQ(repo.Get("t1").value()->NumRows(), 4u);
  EXPECT_FALSE(repo.Get("t2").ok());
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_TRUE(repo.Remove("t1").ok());
  EXPECT_FALSE(repo.Remove("t1").ok());
}

TEST(RepositoryTest, NamesSorted) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("b", MakeBase()).ok());
  ASSERT_TRUE(repo.Add("a", MakeBase()).ok());
  EXPECT_EQ(repo.Names(), (std::vector<std::string>{"a", "b"}));
}

TEST(RepositoryTest, AddOrReplace) {
  DataRepository repo;
  repo.AddOrReplace("t", MakeBase());
  df::DataFrame small;
  ASSERT_TRUE(small.AddColumn(df::Column::Int64("id", {9})).ok());
  repo.AddOrReplace("t", std::move(small));
  EXPECT_EQ(repo.GetOrDie("t").NumRows(), 1u);
}

TEST(IntersectionScoreTest, CountsOverlapFraction) {
  df::Column base = df::Column::Int64("id", {1, 2, 3, 4});
  df::Column full = df::Column::Int64("id", {1, 2, 3, 4, 5});
  df::Column half = df::Column::Int64("id", {1, 2, 99, 98});
  df::Column none = df::Column::Int64("id", {7, 8});
  EXPECT_DOUBLE_EQ(IntersectionScore(base, full), 1.0);
  EXPECT_DOUBLE_EQ(IntersectionScore(base, half), 0.5);
  EXPECT_DOUBLE_EQ(IntersectionScore(base, none), 0.0);
}

TEST(RangeOverlapTest, NumericRanges) {
  df::Column base = df::Column::Double("t", {0.0, 10.0});
  df::Column inside = df::Column::Double("t", {2.0, 8.0});
  df::Column disjoint = df::Column::Double("t", {20.0, 30.0});
  EXPECT_NEAR(RangeOverlap(base, inside), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(RangeOverlap(base, disjoint), 0.0);
}

TEST(RangeOverlapTest, ZeroWidthRangesUseContainment) {
  // Regression: two columns holding the same single value used to score
  // 0.0 (zero-width intersection) instead of 1.0.
  df::Column point = df::Column::Double("t", {5.0, 5.0});
  df::Column same_point = df::Column::Double("t", {5.0});
  EXPECT_DOUBLE_EQ(RangeOverlap(point, same_point), 1.0);
  // Point base inside a wider foreign range: fully covered.
  df::Column wide = df::Column::Double("t", {0.0, 10.0});
  EXPECT_DOUBLE_EQ(RangeOverlap(point, wide), 1.0);
  // Point base on the edge of the foreign range: still covered.
  df::Column edge = df::Column::Double("t", {5.0, 10.0});
  EXPECT_DOUBLE_EQ(RangeOverlap(point, edge), 1.0);
  // Point base outside the foreign range: disjoint.
  df::Column far = df::Column::Double("t", {6.0, 10.0});
  EXPECT_DOUBLE_EQ(RangeOverlap(point, far), 0.0);
  // Point foreign strictly inside a wider base range covers none of it.
  EXPECT_DOUBLE_EQ(RangeOverlap(wide, point), 0.0);
}

TEST(RangeOverlapTest, StatsBackedOverlapMatchesColumnScan) {
  df::Column base = df::Column::Double("t", {0.0, 10.0});
  df::Column inside = df::Column::Double("t", {2.0, 8.0});
  df::ColumnStats base_stats = df::ComputeColumnStats(base);
  df::ColumnStats inside_stats = df::ComputeColumnStats(inside);
  EXPECT_DOUBLE_EQ(RangeOverlapFromStats(base_stats, inside_stats),
                   RangeOverlap(base, inside));
  df::ColumnStats empty_stats =
      df::ComputeColumnStats(df::Column::String("s", {"a"}));
  EXPECT_DOUBLE_EQ(RangeOverlapFromStats(base_stats, empty_stats), 0.0);
}

TEST(DiscoverCandidatesTest, FindsHardKeyByNameAndOverlap) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("base", MakeBase()).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", {1, 2, 3})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("extra", {5.0, 6.0, 7.0})).ok());
  ASSERT_TRUE(repo.Add("lookup", std::move(foreign)).ok());

  // Default (catalog) scoring estimates containment from sketches, so the
  // score is pinned only within the estimation tolerance.
  std::vector<CandidateJoin> candidates =
      DiscoverCandidates(repo, "base", "y");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].foreign_table, "lookup");
  ASSERT_EQ(candidates[0].keys.size(), 1u);
  EXPECT_EQ(candidates[0].keys[0].base_column, "id");
  EXPECT_EQ(candidates[0].keys[0].kind, KeyKind::kHard);
  EXPECT_NEAR(candidates[0].score, 0.75, 0.15);

  // Exact scoring reproduces the containment 3/4 bit-exactly.
  DiscoveryOptions exact;
  exact.scoring = DiscoveryScoring::kExact;
  std::vector<CandidateJoin> exact_candidates =
      DiscoverCandidates(repo, "base", "y", exact);
  ASSERT_EQ(exact_candidates.size(), 1u);
  EXPECT_NEAR(exact_candidates[0].score, 0.75, 1e-12);
}

TEST(DiscoverCandidatesTest, ProposesSoftKeyForMisalignedNumerics) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("base", MakeBase()).ok());
  df::DataFrame foreign;
  // Same range as base "t" but offset values -> no exact matches.
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("t", {0.5, 1.5, 2.5})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("w", {1.0, 1.0, 1.0})).ok());
  ASSERT_TRUE(repo.Add("series", std::move(foreign)).ok());

  std::vector<CandidateJoin> candidates =
      DiscoverCandidates(repo, "base", "y");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].keys[0].kind, KeyKind::kSoft);
  EXPECT_EQ(candidates[0].keys[0].base_column, "t");
}

TEST(DiscoverCandidatesTest, TargetColumnNeverAKey) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("base", MakeBase()).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("y", {1.0, 2.0, 3.0})).ok());
  ASSERT_TRUE(repo.Add("leak", std::move(foreign)).ok());
  EXPECT_TRUE(DiscoverCandidates(repo, "base", "y").empty());
}

TEST(DiscoverCandidatesTest, SortedByScoreDescending) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("base", MakeBase()).ok());
  df::DataFrame strong;
  ASSERT_TRUE(strong.AddColumn(df::Column::Int64("id", {1, 2, 3, 4})).ok());
  ASSERT_TRUE(repo.Add("strong", std::move(strong)).ok());
  df::DataFrame weak;
  ASSERT_TRUE(weak.AddColumn(df::Column::Int64("id", {1, 90, 91, 92})).ok());
  ASSERT_TRUE(repo.Add("weak", std::move(weak)).ok());
  std::vector<CandidateJoin> candidates =
      DiscoverCandidates(repo, "base", "y");
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].foreign_table, "strong");
  EXPECT_GT(candidates[0].score, candidates[1].score);
}

TEST(TupleRatioTest, ComputesDomainRatio) {
  df::DataFrame base = MakeBase();  // 4 rows
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", {1, 1, 2})).ok());
  CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {JoinKeyPair{"id", "id", KeyKind::kHard}};
  // nS = 4, nR = 2 distinct keys.
  Result<double> ratio = TupleRatio(base, foreign, cand);
  ASSERT_TRUE(ratio.ok());
  EXPECT_DOUBLE_EQ(*ratio, 2.0);
}

TEST(TupleRatioTest, MissingForeignColumnIsNotFound) {
  df::DataFrame base = MakeBase();
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("other", {1, 2})).ok());
  CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {JoinKeyPair{"id", "id", KeyKind::kHard}};
  // A broken reference must surface as an error, not masquerade as the
  // degenerate ratio nS (which would read as "legitimately too large").
  Result<double> ratio = TupleRatio(base, foreign, cand);
  ASSERT_FALSE(ratio.ok());
  EXPECT_EQ(ratio.status().code(), StatusCode::kNotFound);
}

TEST(TupleRatioFilterTest, SplitsKeptAndRemoved) {
  DataRepository repo;
  df::DataFrame base = MakeBase();
  // Rich table: 4 distinct keys -> ratio 1.
  df::DataFrame rich;
  ASSERT_TRUE(rich.AddColumn(df::Column::Int64("id", {1, 2, 3, 4})).ok());
  ASSERT_TRUE(repo.Add("rich", std::move(rich)).ok());
  // Tiny domain: 1 distinct key -> ratio 4.
  df::DataFrame tiny;
  ASSERT_TRUE(tiny.AddColumn(df::Column::Int64("id", {1, 1})).ok());
  ASSERT_TRUE(repo.Add("tiny", std::move(tiny)).ok());

  std::vector<CandidateJoin> candidates(2);
  candidates[0].foreign_table = "rich";
  candidates[0].keys = {JoinKeyPair{"id", "id", KeyKind::kHard}};
  candidates[1].foreign_table = "tiny";
  candidates[1].keys = {JoinKeyPair{"id", "id", KeyKind::kHard}};

  TupleRatioFilterResult result =
      FilterByTupleRatio(repo, base, candidates, /*tau=*/2.0);
  ASSERT_EQ(result.kept.size(), 1u);
  EXPECT_EQ(result.kept[0].foreign_table, "rich");
  ASSERT_EQ(result.removed.size(), 1u);
  EXPECT_EQ(result.removed[0].candidate.foreign_table, "tiny");
  EXPECT_FALSE(result.removed[0].broken_reference);
  EXPECT_NE(result.removed[0].reason.find("tuple ratio"),
            std::string::npos);
}

TEST(TupleRatioFilterTest, MissingTableRemoved) {
  DataRepository repo;
  std::vector<CandidateJoin> candidates(1);
  candidates[0].foreign_table = "ghost";
  TupleRatioFilterResult result =
      FilterByTupleRatio(repo, MakeBase(), candidates, 100.0);
  EXPECT_TRUE(result.kept.empty());
  ASSERT_EQ(result.removed.size(), 1u);
  EXPECT_TRUE(result.removed[0].broken_reference);
}

TEST(TupleRatioFilterTest, MissingKeyColumnIsBrokenReference) {
  DataRepository repo;
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("other", {1, 2})).ok());
  ASSERT_TRUE(repo.Add("f", std::move(foreign)).ok());
  std::vector<CandidateJoin> candidates(1);
  candidates[0].foreign_table = "f";
  candidates[0].keys = {JoinKeyPair{"id", "id", KeyKind::kHard}};
  TupleRatioFilterResult result =
      FilterByTupleRatio(repo, MakeBase(), candidates, 100.0);
  EXPECT_TRUE(result.kept.empty());
  ASSERT_EQ(result.removed.size(), 1u);
  EXPECT_TRUE(result.removed[0].broken_reference);
  EXPECT_NE(result.removed[0].reason.find("no key column"),
            std::string::npos);
}

TEST(ColumnStatsTest, DistinctEstimateTracksTrueCardinality) {
  for (size_t n : {1u, 10u, 100u, 5000u}) {
    std::vector<int64_t> values;
    values.reserve(2 * n);
    for (size_t i = 0; i < n; ++i) {
      values.push_back(static_cast<int64_t>(i));
      values.push_back(static_cast<int64_t>(i));  // duplicates don't count
    }
    df::ColumnStats stats =
        df::ComputeColumnStats(df::Column::Int64("k", values));
    EXPECT_EQ(stats.row_count, 2 * n);
    EXPECT_EQ(stats.non_null_count, 2 * n);
    // HLL with 4096 registers: ~1.6% standard error; allow 10%.
    EXPECT_NEAR(stats.DistinctEstimate(), static_cast<double>(n),
                std::max(1.0, 0.10 * static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST(ColumnStatsTest, NullsAreExcludedFromEverything) {
  df::Column col = df::Column::Empty("v", df::DataType::kDouble);
  col.AppendDouble(3.0);
  col.AppendNull();
  col.AppendDouble(7.0);
  df::ColumnStats stats = df::ComputeColumnStats(col);
  EXPECT_EQ(stats.row_count, 3u);
  EXPECT_EQ(stats.non_null_count, 2u);
  ASSERT_TRUE(stats.has_range);
  EXPECT_EQ(stats.min, 3.0);
  EXPECT_EQ(stats.max, 7.0);
  EXPECT_NEAR(stats.DistinctEstimate(), 2.0, 0.5);
}

TEST(ColumnStatsTest, ContainmentEstimateForSubsetColumns) {
  // base ⊂ foreign with |foreign| ≫ |base|: containment must approach
  // 1.0 (Jaccard alone would approach |base|/|foreign| ≈ 0.05 — the
  // semantics bug this estimator replaces).
  std::vector<int64_t> small, big;
  for (int64_t i = 0; i < 50; ++i) small.push_back(i);
  for (int64_t i = 0; i < 1000; ++i) big.push_back(i);
  df::ColumnStats small_stats =
      df::ComputeColumnStats(df::Column::Int64("k", small));
  df::ColumnStats big_stats =
      df::ComputeColumnStats(df::Column::Int64("k", big));
  EXPECT_GT(df::EstimateContainment(small_stats, big_stats), 0.8);
  // The reverse direction is genuinely small.
  EXPECT_LT(df::EstimateContainment(big_stats, small_stats), 0.3);
  // Disjoint domains: no containment either way.
  std::vector<int64_t> other;
  for (int64_t i = 5000; i < 5050; ++i) other.push_back(i);
  df::ColumnStats other_stats =
      df::ComputeColumnStats(df::Column::Int64("k", other));
  EXPECT_LT(df::EstimateContainment(small_stats, other_stats), 0.2);
}

TEST(MinHashTest, ContainmentNotJaccardForSubsetKeys) {
  // Regression for the scoring-semantics bug: a base key column fully
  // contained in a much larger foreign domain used to be scored by raw
  // Jaccard similarity (≈ |A|/|B|, tiny), silently discarding perfect
  // join keys against rich dimension tables.
  std::vector<int64_t> small, big;
  for (int64_t i = 0; i < 40; ++i) small.push_back(i);
  for (int64_t i = 0; i < 800; ++i) big.push_back(i);
  df::Column base = df::Column::Int64("k", small);
  df::Column foreign = df::Column::Int64("k", big);
  MinHashSignature base_sig(base, 256);
  MinHashSignature foreign_sig(foreign, 256);
  EXPECT_LT(base_sig.EstimateJaccard(foreign_sig), 0.15);
  EXPECT_GT(base_sig.EstimateContainment(foreign_sig), 0.8);
  EXPECT_NEAR(base_sig.EstimateCardinality(), 40.0, 12.0);
  EXPECT_NEAR(foreign_sig.EstimateCardinality(), 800.0, 240.0);
}

TEST(DiscoverCandidatesTest, SubsetKeyFoundByEveryScoringMode) {
  // End-to-end form of the containment-semantics fix: the base keys are a
  // strict subset of a large foreign key domain, so every scoring mode
  // must surface the hard key with a near-1.0 score.
  DataRepository repo;
  df::DataFrame base;
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < 30; ++i) ids.push_back(i * 3);
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("id", ids)).ok());
  std::vector<double> y(ids.begin(), ids.end());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("y", y)).ok());
  ASSERT_TRUE(repo.Add("base", std::move(base)).ok());

  df::DataFrame dim;
  std::vector<int64_t> all_ids;
  for (int64_t i = 0; i < 900; ++i) all_ids.push_back(i);
  ASSERT_TRUE(dim.AddColumn(df::Column::Int64("id", all_ids)).ok());
  ASSERT_TRUE(repo.Add("dim", std::move(dim)).ok());

  // Exact containment is 1.0; the catalog's HLL inclusion-exclusion
  // estimate stays within a few percent; the pure MinHash signature route
  // is the noisiest (Jaccard relative error grows as resemblance shrinks)
  // but must still clear the bar by a wide margin — raw Jaccard here
  // would be 30/900 ≈ 0.03.
  struct ModeBar {
    DiscoveryScoring scoring;
    double min_score;
  };
  for (ModeBar mode : {ModeBar{DiscoveryScoring::kExact, 0.99},
                       ModeBar{DiscoveryScoring::kMinHash, 0.5},
                       ModeBar{DiscoveryScoring::kCatalog, 0.9}}) {
    DiscoveryOptions options;
    options.scoring = mode.scoring;
    options.minhash_hashes = 256;
    std::vector<CandidateJoin> candidates =
        DiscoverCandidates(repo, "base", "y", options);
    ASSERT_EQ(candidates.size(), 1u)
        << "scoring=" << static_cast<int>(mode.scoring);
    EXPECT_EQ(candidates[0].keys[0].kind, KeyKind::kHard);
    EXPECT_GT(candidates[0].score, mode.min_score)
        << "scoring=" << static_cast<int>(mode.scoring);
  }
}

TEST(DiscoverCandidatesTest, EmptyForeignTableYieldsNoCandidate) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("base", MakeBase()).ok());
  df::DataFrame empty;
  ASSERT_TRUE(empty.AddColumn(df::Column::Int64("id", {})).ok());
  ASSERT_TRUE(repo.Add("empty", std::move(empty)).ok());
  for (DiscoveryScoring scoring :
       {DiscoveryScoring::kExact, DiscoveryScoring::kMinHash,
        DiscoveryScoring::kCatalog}) {
    DiscoveryOptions options;
    options.scoring = scoring;
    EXPECT_TRUE(DiscoverCandidates(repo, "base", "y", options).empty())
        << "scoring=" << static_cast<int>(scoring);
  }
}

TEST(DiscoverCandidatesTest, AllNullKeyColumnYieldsNoCandidate) {
  DataRepository repo;
  ASSERT_TRUE(repo.Add("base", MakeBase()).ok());
  df::DataFrame nulls;
  df::Column id = df::Column::Empty("id", df::DataType::kInt64);
  for (int i = 0; i < 4; ++i) id.AppendNull();
  ASSERT_TRUE(nulls.AddColumn(std::move(id)).ok());
  ASSERT_TRUE(repo.Add("nulls", std::move(nulls)).ok());
  for (DiscoveryScoring scoring :
       {DiscoveryScoring::kExact, DiscoveryScoring::kMinHash,
        DiscoveryScoring::kCatalog}) {
    DiscoveryOptions options;
    options.scoring = scoring;
    EXPECT_TRUE(DiscoverCandidates(repo, "base", "y", options).empty())
        << "scoring=" << static_cast<int>(scoring);
  }
}

TEST(DiscoverCandidatesTest, CatalogRankingMatchesExactOnScenarioPools) {
  // Golden ranking fixture: across every synthetic scenario pool the
  // sketch-backed catalog scorer must propose the same candidate tables
  // with the same join keys as the exact rescan. Scores are estimates
  // (pinned to ±0.15, the documented sketch tolerance at 128 hashes), so
  // strict ordering is only asserted between candidates whose exact
  // scores are separated by more than twice that tolerance.
  std::vector<data::Scenario> scenarios =
      data::MakeAllScenarios(/*seed=*/7, data::ScenarioScale::kSmall);
  ASSERT_FALSE(scenarios.empty());
  for (const data::Scenario& scenario : scenarios) {
    DiscoveryOptions exact_options;
    exact_options.scoring = DiscoveryScoring::kExact;
    std::vector<CandidateJoin> exact = DiscoverCandidates(
        scenario.repo, scenario.name, scenario.target_column, exact_options);
    std::vector<CandidateJoin> catalog = DiscoverCandidates(
        scenario.repo, scenario.name, scenario.target_column);
    ASSERT_EQ(catalog.size(), exact.size()) << scenario.name;

    auto find_in_exact =
        [&](const std::string& table) -> const CandidateJoin* {
      for (const CandidateJoin& c : exact) {
        if (c.foreign_table == table) return &c;
      }
      return nullptr;
    };
    for (const CandidateJoin& c : catalog) {
      const CandidateJoin* e = find_in_exact(c.foreign_table);
      ASSERT_NE(e, nullptr)
          << scenario.name << ": catalog-only candidate "
          << c.foreign_table;
      ASSERT_EQ(c.keys.size(), e->keys.size())
          << scenario.name << "/" << c.foreign_table;
      for (size_t k = 0; k < c.keys.size(); ++k) {
        EXPECT_EQ(c.keys[k].base_column, e->keys[k].base_column)
            << scenario.name << "/" << c.foreign_table;
        EXPECT_EQ(c.keys[k].foreign_column, e->keys[k].foreign_column)
            << scenario.name << "/" << c.foreign_table;
        EXPECT_EQ(c.keys[k].kind, e->keys[k].kind)
            << scenario.name << "/" << c.foreign_table;
      }
      EXPECT_NEAR(c.score, e->score, 0.15)
          << scenario.name << "/" << c.foreign_table;
    }
    // Ordering contract between clearly separated candidates.
    auto position_in_catalog = [&](const std::string& table) {
      for (size_t i = 0; i < catalog.size(); ++i) {
        if (catalog[i].foreign_table == table) return i;
      }
      return catalog.size();
    };
    for (size_t i = 0; i < exact.size(); ++i) {
      for (size_t j = i + 1; j < exact.size(); ++j) {
        if (exact[i].score - exact[j].score <= 0.3) continue;
        EXPECT_LT(position_in_catalog(exact[i].foreign_table),
                  position_in_catalog(exact[j].foreign_table))
            << scenario.name << ": " << exact[i].foreign_table
            << " should rank above " << exact[j].foreign_table;
      }
    }
  }
}

TEST(CandidateTest, HasSoftKey) {
  CandidateJoin cand;
  cand.keys = {JoinKeyPair{"a", "a", KeyKind::kHard}};
  EXPECT_FALSE(cand.HasSoftKey());
  cand.keys.push_back(JoinKeyPair{"t", "t", KeyKind::kSoft});
  EXPECT_TRUE(cand.HasSoftKey());
}

}  // namespace
}  // namespace arda::discovery
