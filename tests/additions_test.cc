// Tests for the library additions beyond the paper's core: chi-squared
// filter ranking, MinHash discovery signatures, and gradient-boosted
// trees.

#include <gtest/gtest.h>

#include <cmath>

#include "discovery/discovery.h"
#include "discovery/minhash.h"
#include "featsel/filter_rankers.h"
#include "featsel/selector.h"
#include "ml/gradient_boosting.h"
#include "ml/metrics.h"

namespace arda {
namespace {

// ---------------------------------------------------------- chi-squared --

ml::Dataset MakeLabeled(size_t n, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.task = ml::TaskType::kClassification;
  data.x = la::Matrix(n, 3);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool positive = i % 2 == 0;
    data.y[i] = positive ? 1.0 : 0.0;
    data.x(i, 0) = rng.Normal(positive ? 2.0 : -2.0, 1.0);  // signal
    data.x(i, 1) = rng.Normal();                            // noise
    data.x(i, 2) = rng.UniformDouble();                     // noise
  }
  data.feature_names = {"signal", "noise1", "noise2"};
  return data;
}

TEST(ChiSquaredTest, SignalScoresHighest) {
  ml::Dataset data = MakeLabeled(400, 3);
  featsel::ChiSquaredRanker ranker;
  Rng rng(1);
  std::vector<double> scores = ranker.Rank(data, &rng);
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_GT(scores[0], 50.0);  // strongly dependent
}

TEST(ChiSquaredTest, ClassificationOnly) {
  featsel::ChiSquaredRanker ranker;
  EXPECT_TRUE(ranker.SupportsTask(ml::TaskType::kClassification));
  EXPECT_FALSE(ranker.SupportsTask(ml::TaskType::kRegression));
}

TEST(ChiSquaredTest, RegisteredAsSelector) {
  std::unique_ptr<featsel::FeatureSelector> selector =
      featsel::MakeSelector("chi_squared");
  ASSERT_NE(selector, nullptr);
  ml::Dataset data = MakeLabeled(200, 4);
  ml::Evaluator evaluator(data, 0.25, 7);
  Rng rng(2);
  featsel::SelectionResult result =
      selector->Select(data, evaluator, &rng);
  EXPECT_FALSE(result.selected.empty());
  EXPECT_GT(result.score, 0.8);
}

// -------------------------------------------------------------- minhash --

TEST(MinHashTest, IdenticalColumnsEstimateOne) {
  df::Column a = df::Column::Int64("a", {1, 2, 3, 4, 5});
  discovery::MinHashSignature sa(a), sb(a);
  EXPECT_DOUBLE_EQ(sa.EstimateJaccard(sb), 1.0);
}

TEST(MinHashTest, DisjointColumnsEstimateNearZero) {
  df::Column a = df::Column::Int64("a", {1, 2, 3, 4, 5});
  df::Column b = df::Column::Int64("b", {100, 200, 300});
  discovery::MinHashSignature sa(a, 128), sb(b, 128);
  EXPECT_LT(sa.EstimateJaccard(sb), 0.1);
}

TEST(MinHashTest, EstimateTracksExactJaccard) {
  // Two overlapping 200-value sets with Jaccard 1/3.
  std::vector<int64_t> va, vb;
  for (int64_t i = 0; i < 200; ++i) va.push_back(i);
  for (int64_t i = 100; i < 300; ++i) vb.push_back(i);
  df::Column a = df::Column::Int64("a", va);
  df::Column b = df::Column::Int64("b", vb);
  double exact = discovery::ExactJaccard(a, b);
  EXPECT_NEAR(exact, 1.0 / 3.0, 1e-12);
  discovery::MinHashSignature sa(a, 256), sb(b, 256);
  EXPECT_NEAR(sa.EstimateJaccard(sb), exact, 0.12);
}

TEST(MinHashTest, EmptyColumnGivesZero) {
  df::Column a = df::Column::Int64("a", {1, 2});
  df::Column empty = df::Column::Empty("e", df::DataType::kInt64);
  discovery::MinHashSignature sa(a), se(empty);
  EXPECT_TRUE(se.empty());
  EXPECT_DOUBLE_EQ(sa.EstimateJaccard(se), 0.0);
  EXPECT_DOUBLE_EQ(discovery::ExactJaccard(a, empty), 0.0);
}

TEST(MinHashTest, DiscoveryWithMinHashFindsSameJoin) {
  discovery::DataRepository repo;
  df::DataFrame base;
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < 100; ++i) ids.push_back(i);
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("id", ids)).ok());
  ASSERT_TRUE(base.AddColumn(
                      df::Column::Double("y", std::vector<double>(100, 1.0)))
                  .ok());
  ASSERT_TRUE(repo.Add("base", base).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", ids)).ok());
  ASSERT_TRUE(repo.Add("lookup", std::move(foreign)).ok());

  discovery::DiscoveryOptions options;
  options.use_minhash = true;
  std::vector<discovery::CandidateJoin> candidates =
      discovery::DiscoverCandidates(repo, "base", "y", options);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].foreign_table, "lookup");
  EXPECT_GT(candidates[0].score, 0.9);  // identical sets
}

// ------------------------------------------------------------- boosting --

TEST(BoostingTest, RegressionFitsNonlinearTarget) {
  Rng rng(5);
  const size_t n = 400;
  la::Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(-2.0, 2.0);
    x(i, 1) = rng.Normal();
    y[i] = x(i, 0) * x(i, 0) + rng.Normal(0.0, 0.1);  // quadratic
  }
  ml::BoostingConfig config;
  config.task = ml::TaskType::kRegression;
  ml::GradientBoosting model(config);
  model.Fit(x, y);
  EXPECT_LT(ml::MeanAbsoluteError(y, model.Predict(x)), 0.4);
  EXPECT_EQ(model.NumRounds(), config.num_rounds);
}

TEST(BoostingTest, BinaryClassification) {
  ml::Dataset data = MakeLabeled(400, 6);
  ml::BoostingConfig config;
  config.task = ml::TaskType::kClassification;
  ml::GradientBoosting model(config);
  model.Fit(data.x, data.y);
  EXPECT_GT(ml::Accuracy(data.y, model.Predict(data.x)), 0.95);
}

TEST(BoostingTest, MulticlassOneVsRest) {
  Rng rng(7);
  const size_t n = 300;
  la::Matrix x(n, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    size_t cls = i % 3;
    y[i] = static_cast<double>(cls);
    x(i, 0) = rng.Normal(static_cast<double>(cls) * 4.0, 0.6);
  }
  ml::BoostingConfig config;
  config.task = ml::TaskType::kClassification;
  ml::GradientBoosting model(config);
  model.Fit(x, y);
  EXPECT_GT(ml::Accuracy(y, model.Predict(x)), 0.93);
}

TEST(BoostingTest, MoreRoundsFitTighter) {
  Rng rng(8);
  la::Matrix x(200, 1);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.Uniform(-3.0, 3.0);
    y[i] = std::sin(x(i, 0)) * 5.0;
  }
  ml::BoostingConfig few;
  few.task = ml::TaskType::kRegression;
  few.num_rounds = 5;
  few.subsample = 1.0;
  ml::BoostingConfig many = few;
  many.num_rounds = 120;
  ml::GradientBoosting small(few), big(many);
  small.Fit(x, y);
  big.Fit(x, y);
  EXPECT_LT(ml::MeanAbsoluteError(y, big.Predict(x)),
            ml::MeanAbsoluteError(y, small.Predict(x)));
}

}  // namespace
}  // namespace arda
