// Golden-output regression tests for the columnar hot-path kernels.
//
// The files under tests/golden/ were serialized from the pre-rewrite
// (PR 1) row-at-a-time kernels at fixed seeds; the pre-sorted split
// search and the interned-key join/group-by paths must reproduce them
// byte for byte, at 1 and at 8 threads. See tools/capture_goldens.cc for
// how to regenerate them (only on an intentional output change).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "simd/simd.h"
#include "tests/golden_fixtures.h"

#ifndef ARDA_GOLDEN_DIR
#error "ARDA_GOLDEN_DIR must be defined by the build"
#endif

namespace arda {
namespace {

std::string ReadGolden(const std::string& name) {
  std::string path = std::string(ARDA_GOLDEN_DIR) + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ADD_FAILURE() << "missing golden file " << path
                  << " (run tools/capture_goldens)";
    return "";
  }
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  return content;
}

TEST(GoldenKernelsTest, ClassificationTreeBitIdentical) {
  EXPECT_EQ(golden::GoldenClassificationTree(),
            ReadGolden("tree_classification.txt"));
}

TEST(GoldenKernelsTest, RegressionTreeBitIdentical) {
  EXPECT_EQ(golden::GoldenRegressionTree(),
            ReadGolden("tree_regression.txt"));
}

TEST(GoldenKernelsTest, ForestPredictionsBitIdenticalSingleThread) {
  EXPECT_EQ(golden::GoldenForestPredictions(1),
            ReadGolden("forest_predictions.txt"));
}

TEST(GoldenKernelsTest, ForestPredictionsBitIdenticalEightThreads) {
  EXPECT_EQ(golden::GoldenForestPredictions(8),
            ReadGolden("forest_predictions.txt"));
}

TEST(GoldenKernelsTest, HardJoinBitIdentical) {
  EXPECT_EQ(golden::GoldenHardJoinCsv(), ReadGolden("join_hard.csv"));
}

TEST(GoldenKernelsTest, SoftJoinBitIdentical) {
  EXPECT_EQ(golden::GoldenSoftJoinCsv(), ReadGolden("join_soft.csv"));
}

TEST(GoldenKernelsTest, GeoJoinBitIdentical) {
  EXPECT_EQ(golden::GoldenGeoJoinCsv(), ReadGolden("join_geo.csv"));
}

TEST(GoldenKernelsTest, AggregateBitIdentical) {
  EXPECT_EQ(golden::GoldenAggregateCsv(), ReadGolden("aggregate.csv"));
}

// Every golden must reproduce at every SIMD dispatch level: the vector
// kernels are bit-identical to their scalar fallbacks by contract (see
// DESIGN.md "SIMD dispatch"). The avx2 pass is skipped when the CPU lacks
// AVX2 or the ARDA_SIMD=scalar env pin is active (the dedicated scalar
// ctest leg must stay genuinely scalar).
TEST(GoldenKernelsTest, GoldensAreSimdLevelInvariant) {
  const simd::SimdLevel prev = simd::ActiveLevel();
  std::vector<simd::SimdLevel> levels = {simd::SimdLevel::kScalar};
  const char* env = std::getenv("ARDA_SIMD");
  const bool pinned_scalar =
      env != nullptr && std::string_view(env) == "scalar";
  if (simd::Avx2Supported() && !pinned_scalar) {
    levels.push_back(simd::SimdLevel::kAvx2);
  }
  for (simd::SimdLevel level : levels) {
    ASSERT_TRUE(simd::SetLevel(level));
    SCOPED_TRACE(simd::LevelName(level));
    EXPECT_EQ(golden::GoldenClassificationTree(),
              ReadGolden("tree_classification.txt"));
    EXPECT_EQ(golden::GoldenRegressionTree(),
              ReadGolden("tree_regression.txt"));
    EXPECT_EQ(golden::GoldenHardJoinCsv(), ReadGolden("join_hard.csv"));
    EXPECT_EQ(golden::GoldenSoftJoinCsv(), ReadGolden("join_soft.csv"));
    EXPECT_EQ(golden::GoldenGeoJoinCsv(), ReadGolden("join_geo.csv"));
    EXPECT_EQ(golden::GoldenAggregateCsv(), ReadGolden("aggregate.csv"));
    // Thread-count sweep inside the level sweep: the dispatch level and
    // the pool must be independently invariant.
    EXPECT_EQ(golden::GoldenForestPredictions(1),
              ReadGolden("forest_predictions.txt"));
    EXPECT_EQ(golden::GoldenForestPredictions(8),
              ReadGolden("forest_predictions.txt"));
  }
  simd::SetLevel(prev);
}

// The radix-partitioned out-of-core kernels must reproduce the goldens at
// every partition count, at every SIMD dispatch level: partitioning is a
// memory-shape knob, never an output knob (DESIGN.md "Out-of-core
// execution"). 1 = the partitioned machinery with one partition, 2 = the
// smallest real fan-out, 7 = a count that exercises non-power-of-two
// modulo placement.
TEST(GoldenKernelsTest, GoldensArePartitionCountInvariant) {
  const simd::SimdLevel prev = simd::ActiveLevel();
  std::vector<simd::SimdLevel> levels = {simd::SimdLevel::kScalar};
  const char* env = std::getenv("ARDA_SIMD");
  const bool pinned_scalar =
      env != nullptr && std::string_view(env) == "scalar";
  if (simd::Avx2Supported() && !pinned_scalar) {
    levels.push_back(simd::SimdLevel::kAvx2);
  }
  for (simd::SimdLevel level : levels) {
    ASSERT_TRUE(simd::SetLevel(level));
    for (size_t partitions : {size_t{1}, size_t{2}, size_t{7}}) {
      SCOPED_TRACE(std::string(simd::LevelName(level)) + " partitions=" +
                   std::to_string(partitions));
      EXPECT_EQ(golden::GoldenHardJoinCsv(partitions),
                ReadGolden("join_hard.csv"));
      EXPECT_EQ(golden::GoldenSoftJoinCsv(partitions),
                ReadGolden("join_soft.csv"));
      EXPECT_EQ(golden::GoldenAggregateCsv(partitions),
                ReadGolden("aggregate.csv"));
    }
  }
  simd::SetLevel(prev);
}

}  // namespace
}  // namespace arda
