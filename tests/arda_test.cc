#include <gtest/gtest.h>

#include "core/arda.h"
#include "data/generators.h"

namespace arda::core {
namespace {

// A tiny hand-built augmentation problem: the target depends on a hidden
// value stored in a SIGNAL foreign table; a NOISE table is also joinable.
struct TinyWorld {
  discovery::DataRepository repo;
  AugmentationTask task;
};

TinyWorld MakeTinyWorld(size_t n = 240) {
  Rng rng(99);
  TinyWorld world;
  std::vector<int64_t> ids(n);
  std::vector<double> base_feature(n);
  std::vector<double> hidden(n);
  std::vector<double> target(n);
  for (size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<int64_t>(i);
    base_feature[i] = rng.Normal();
    hidden[i] = rng.Normal();
    target[i] = 1.0 * base_feature[i] + 4.0 * hidden[i] +
                rng.Normal(0.0, 0.2);
  }
  df::DataFrame base;
  EXPECT_TRUE(base.AddColumn(df::Column::Int64("id", ids)).ok());
  EXPECT_TRUE(base.AddColumn(df::Column::Double("b", base_feature)).ok());
  EXPECT_TRUE(base.AddColumn(df::Column::Double("y", target)).ok());

  df::DataFrame signal;
  EXPECT_TRUE(signal.AddColumn(df::Column::Int64("id", ids)).ok());
  EXPECT_TRUE(signal.AddColumn(df::Column::Double("hidden", hidden)).ok());
  EXPECT_TRUE(world.repo.Add("signal", std::move(signal)).ok());

  df::DataFrame noise;
  std::vector<double> junk(n);
  for (double& v : junk) v = rng.Normal();
  EXPECT_TRUE(noise.AddColumn(df::Column::Int64("id", ids)).ok());
  EXPECT_TRUE(noise.AddColumn(df::Column::Double("junk", junk)).ok());
  EXPECT_TRUE(world.repo.Add("noise", std::move(noise)).ok());

  EXPECT_TRUE(world.repo.Add("base", base).ok());

  world.task.base = std::move(base);
  world.task.target_column = "y";
  world.task.task = ml::TaskType::kRegression;
  world.task.repo = &world.repo;
  world.task.base_table_name = "base";
  discovery::CandidateJoin signal_cand;
  signal_cand.foreign_table = "signal";
  signal_cand.keys = {
      discovery::JoinKeyPair{"id", "id", discovery::KeyKind::kHard}};
  signal_cand.score = 0.9;
  discovery::CandidateJoin noise_cand = signal_cand;
  noise_cand.foreign_table = "noise";
  noise_cand.score = 0.8;
  world.task.candidates = {signal_cand, noise_cand};
  return world;
}

TEST(BuildDatasetTest, NumericRegressionTarget) {
  TinyWorld world = MakeTinyWorld(50);
  Result<ml::Dataset> data =
      BuildDataset(world.task.base, "y", ml::TaskType::kRegression);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->NumRows(), 50u);
  EXPECT_EQ(data->NumFeatures(), 2u);  // id + b (y excluded)
  EXPECT_EQ(data->task, ml::TaskType::kRegression);
}

TEST(BuildDatasetTest, StringClassificationTargetMapsToIds) {
  df::DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(df::Column::Double("x", {1, 2, 3})).ok());
  ASSERT_TRUE(
      frame.AddColumn(df::Column::String("label", {"no", "yes", "no"}))
          .ok());
  Result<ml::Dataset> data =
      BuildDataset(frame, "label", ml::TaskType::kClassification);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->y, (std::vector<double>{0.0, 1.0, 0.0}));
}

TEST(BuildDatasetTest, RejectsBadTargets) {
  df::DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(df::Column::String("s", {"a"})).ok());
  EXPECT_FALSE(BuildDataset(frame, "s", ml::TaskType::kRegression).ok());
  EXPECT_FALSE(BuildDataset(frame, "missing",
                            ml::TaskType::kClassification)
                   .ok());
  df::DataFrame nulls;
  df::Column y = df::Column::Empty("y", df::DataType::kDouble);
  y.AppendNull();
  ASSERT_TRUE(nulls.AddColumn(std::move(y)).ok());
  EXPECT_FALSE(BuildDataset(nulls, "y", ml::TaskType::kRegression).ok());
}

TEST(JoinPlanTest, FullMaterializationIsOneBatch) {
  TinyWorld world = MakeTinyWorld(30);
  auto batches =
      BuildJoinPlan(world.task.candidates, world.repo,
                    JoinPlanKind::kFullMaterialization, 100, {});
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 2u);
}

TEST(JoinPlanTest, TableAtATimeIsOnePerBatch) {
  TinyWorld world = MakeTinyWorld(30);
  auto batches = BuildJoinPlan(world.task.candidates, world.repo,
                               JoinPlanKind::kTableAtATime, 100, {});
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 1u);
}

TEST(JoinPlanTest, BudgetPacksUntilFull) {
  TinyWorld world = MakeTinyWorld(30);
  // Each table estimates 2 features (id + value): budget of 3 forces one
  // table per batch, budget of 10 packs both.
  auto tight = BuildJoinPlan(world.task.candidates, world.repo,
                             JoinPlanKind::kBudget, 3, {});
  EXPECT_EQ(tight.size(), 2u);
  auto loose = BuildJoinPlan(world.task.candidates, world.repo,
                             JoinPlanKind::kBudget, 10, {});
  EXPECT_EQ(loose.size(), 1u);
}

TEST(JoinPlanTest, OversizedTableShipsAlone) {
  TinyWorld world = MakeTinyWorld(30);
  auto batches = BuildJoinPlan(world.task.candidates, world.repo,
                               JoinPlanKind::kBudget, 1, {});
  EXPECT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 1u);
}

TEST(EstimateEncodedFeaturesTest, CountsNumericAndCategorical) {
  df::DataFrame table;
  ASSERT_TRUE(table.AddColumn(df::Column::Double("n", {1, 2, 3})).ok());
  ASSERT_TRUE(
      table.AddColumn(df::Column::String("c", {"a", "b", "a"})).ok());
  df::EncodeOptions encode;
  EXPECT_EQ(EstimateEncodedFeatures(table, encode), 3u);  // 1 + 2 cats
  encode.max_categories = 1;
  EXPECT_EQ(EstimateEncodedFeatures(table, encode), 2u);
}

TEST(ArdaTest, EndToEndImprovesOverBase) {
  TinyWorld world = MakeTinyWorld();
  ArdaConfig config;
  config.rifs.num_rounds = 5;
  Arda arda(config);
  Result<ArdaReport> report = arda.Run(world.task);
  ASSERT_TRUE(report.ok());
  // The hidden feature dominates the target, so augmentation must help.
  EXPECT_GT(report->final_score, report->base_score);
  EXPECT_GT(report->ImprovementPercent(), 10.0);
  EXPECT_TRUE(report->augmented.HasColumn("hidden"));
  EXPECT_GE(report->tables_joined, 1u);
  EXPECT_EQ(report->tables_considered, 2u);
  EXPECT_FALSE(report->batches.empty());
  EXPECT_GT(report->total_seconds, 0.0);
}

TEST(ArdaTest, AugmentedKeepsAllBaseColumns) {
  TinyWorld world = MakeTinyWorld();
  ArdaConfig config;
  config.rifs.num_rounds = 4;
  Arda arda(config);
  Result<ArdaReport> report = arda.Run(world.task);
  ASSERT_TRUE(report.ok());
  for (const std::string& name : {"id", "b", "y"}) {
    EXPECT_TRUE(report->augmented.HasColumn(name)) << name;
  }
}

TEST(ArdaTest, DiscoversCandidatesWhenNoneGiven) {
  TinyWorld world = MakeTinyWorld();
  world.task.candidates.clear();
  ArdaConfig config;
  config.rifs.num_rounds = 4;
  Arda arda(config);
  Result<ArdaReport> report = arda.Run(world.task);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->tables_considered, 2u);
  EXPECT_GT(report->final_score, report->base_score);
}

TEST(ArdaTest, TupleRatioPrefilterDropsTables) {
  TinyWorld world = MakeTinyWorld();
  ArdaConfig config;
  config.rifs.num_rounds = 4;
  config.use_tuple_ratio_prefilter = true;
  config.tuple_ratio_tau = 0.5;  // every table has ratio 1 -> all removed
  Arda arda(config);
  Result<ArdaReport> report = arda.Run(world.task);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tables_filtered_by_tuple_ratio, 2u);
  EXPECT_EQ(report->tables_joined, 0u);
}

TEST(ArdaTest, AlternativeSelectorRuns) {
  TinyWorld world = MakeTinyWorld();
  ArdaConfig config;
  config.selector = "random_forest";
  Arda arda(config);
  Result<ArdaReport> report = arda.Run(world.task);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->final_score, report->base_score);
}

TEST(ArdaTest, UnknownSelectorFails) {
  TinyWorld world = MakeTinyWorld(40);
  ArdaConfig config;
  config.selector = "bogus";
  Arda arda(config);
  EXPECT_FALSE(arda.Run(world.task).ok());
}

TEST(ArdaTest, MissingRepoOrTargetFails) {
  TinyWorld world = MakeTinyWorld(40);
  AugmentationTask task = world.task;
  task.repo = nullptr;
  EXPECT_FALSE(Arda(ArdaConfig{}).Run(task).ok());
  task = world.task;
  task.target_column = "missing";
  EXPECT_FALSE(Arda(ArdaConfig{}).Run(task).ok());
}

TEST(ArdaTest, CoresetShrinksRows) {
  TinyWorld world = MakeTinyWorld(300);
  ArdaConfig config;
  config.rifs.num_rounds = 3;
  config.coreset.method = coreset::CoresetMethod::kUniform;
  config.coreset.size = 120;
  Arda arda(config);
  Result<ArdaReport> report = arda.Run(world.task);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->augmented.NumRows(), 120u);
}

TEST(ArdaTest, ImprovementPercentSigns) {
  ArdaReport report;
  report.base_score = 0.5;
  report.final_score = 0.75;
  EXPECT_NEAR(report.ImprovementPercent(), 50.0, 1e-9);
  report.base_score = -10.0;  // regression: -MAE
  report.final_score = -5.0;  // error halved
  EXPECT_NEAR(report.ImprovementPercent(), 50.0, 1e-9);
}

TEST(JoinPlanKindTest, Names) {
  EXPECT_STREQ(JoinPlanKindName(JoinPlanKind::kBudget), "budget");
  EXPECT_STREQ(JoinPlanKindName(JoinPlanKind::kTableAtATime), "table");
  EXPECT_STREQ(JoinPlanKindName(JoinPlanKind::kFullMaterialization),
               "full");
}

}  // namespace
}  // namespace arda::core
