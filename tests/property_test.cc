// Randomized property sweeps: invariants that must hold for arbitrary
// (seeded) random inputs, parameterized over seeds via TEST_P.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "coreset/coreset.h"
#include "dataframe/aggregate.h"
#include "dataframe/csv.h"
#include "dataframe/encode.h"
#include "featsel/search.h"
#include "join/impute.h"
#include "join/join_executor.h"
#include "ml/random_forest.h"
#include "ml/split.h"
#include "util/string_util.h"

namespace arda {
namespace {

class PropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  Rng MakeRng() const { return Rng(GetParam()); }
};

// Random table with a key column and mixed value columns.
df::DataFrame RandomTable(Rng* rng, size_t rows, size_t key_domain,
                          bool with_nulls) {
  df::DataFrame table;
  df::Column key = df::Column::Empty("key", df::DataType::kInt64);
  df::Column num = df::Column::Empty("num", df::DataType::kDouble);
  df::Column cat = df::Column::Empty("cat", df::DataType::kString);
  for (size_t r = 0; r < rows; ++r) {
    if (with_nulls && rng->Bernoulli(0.1)) {
      key.AppendNull();
    } else {
      key.AppendInt64(rng->UniformInt(0, static_cast<int64_t>(key_domain)));
    }
    if (with_nulls && rng->Bernoulli(0.15)) {
      num.AppendNull();
    } else {
      num.AppendDouble(rng->Normal());
    }
    if (with_nulls && rng->Bernoulli(0.15)) {
      cat.AppendNull();
    } else {
      cat.AppendString("c" + std::to_string(rng->UniformUint64(6)));
    }
  }
  EXPECT_TRUE(table.AddColumn(std::move(key)).ok());
  EXPECT_TRUE(table.AddColumn(std::move(num)).ok());
  EXPECT_TRUE(table.AddColumn(std::move(cat)).ok());
  return table;
}

TEST_P(PropertyTest, LeftJoinPreservesBaseRowsAndColumns) {
  Rng rng = MakeRng();
  df::DataFrame base = RandomTable(&rng, 80, 20, /*with_nulls=*/true);
  df::DataFrame foreign = RandomTable(&rng, 60, 20, /*with_nulls=*/true);
  discovery::CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {discovery::JoinKeyPair{"key", "key",
                                      discovery::KeyKind::kHard}};
  Result<df::DataFrame> joined =
      join::ExecuteLeftJoin(base, foreign, cand, {}, &rng);
  ASSERT_TRUE(joined.ok());
  // The augmentation invariant: never add or drop base rows, never touch
  // base values.
  EXPECT_EQ(joined->NumRows(), base.NumRows());
  for (size_t c = 0; c < base.NumCols(); ++c) {
    const df::Column& before = base.col(c);
    const df::Column& after = joined->col(before.name());
    for (size_t r = 0; r < base.NumRows(); ++r) {
      EXPECT_EQ(before.ValueToString(r), after.ValueToString(r));
      EXPECT_EQ(before.IsNull(r), after.IsNull(r));
    }
  }
  EXPECT_GT(joined->NumCols(), base.NumCols());
}

TEST_P(PropertyTest, SoftJoinPreservesBaseRows) {
  Rng rng = MakeRng();
  df::DataFrame base;
  df::Column t = df::Column::Empty("t", df::DataType::kDouble);
  for (size_t i = 0; i < 50; ++i) t.AppendDouble(rng.Uniform(0.0, 100.0));
  ASSERT_TRUE(base.AddColumn(std::move(t)).ok());
  df::DataFrame foreign;
  df::Column ft = df::Column::Empty("t", df::DataType::kDouble);
  df::Column fv = df::Column::Empty("v", df::DataType::kDouble);
  for (size_t i = 0; i < 30; ++i) {
    ft.AppendDouble(rng.Uniform(0.0, 100.0));
    fv.AppendDouble(rng.Normal());
  }
  ASSERT_TRUE(foreign.AddColumn(std::move(ft)).ok());
  ASSERT_TRUE(foreign.AddColumn(std::move(fv)).ok());
  discovery::CandidateJoin cand;
  cand.foreign_table = "f";
  cand.keys = {discovery::JoinKeyPair{"t", "t", discovery::KeyKind::kSoft}};
  for (join::SoftJoinMethod method :
       {join::SoftJoinMethod::kNearest, join::SoftJoinMethod::kTwoWayNearest,
        join::SoftJoinMethod::kHardExact}) {
    join::JoinOptions options;
    options.soft_method = method;
    Result<df::DataFrame> joined =
        join::ExecuteLeftJoin(base, foreign, cand, options, &rng);
    ASSERT_TRUE(joined.ok());
    EXPECT_EQ(joined->NumRows(), 50u);
    // Interpolated values must lie within the foreign value range.
    const df::Column& v = joined->col("v");
    std::vector<double> fvals = foreign.col("v").NonNullNumericValues();
    auto [lo, hi] = std::minmax_element(fvals.begin(), fvals.end());
    for (size_t r = 0; r < v.size(); ++r) {
      if (v.IsNull(r)) continue;
      EXPECT_GE(v.NumericAt(r), *lo - 1e-9);
      EXPECT_LE(v.NumericAt(r), *hi + 1e-9);
    }
  }
}

TEST_P(PropertyTest, GroupByRowsEqualDistinctKeysAndCountsSum) {
  Rng rng = MakeRng();
  df::DataFrame table = RandomTable(&rng, 120, 15, /*with_nulls=*/true);
  df::AggregateOptions options;
  options.add_count = true;
  Result<df::DataFrame> grouped =
      df::GroupByAggregate(table, {"key"}, options);
  ASSERT_TRUE(grouped.ok());
  std::set<std::string> distinct;
  bool has_null_key = false;
  const df::Column& key = table.col("key");
  for (size_t r = 0; r < key.size(); ++r) {
    if (key.IsNull(r)) {
      has_null_key = true;
    } else {
      distinct.insert(key.ValueToString(r));
    }
  }
  EXPECT_EQ(grouped->NumRows(), distinct.size() + (has_null_key ? 1 : 0));
  int64_t total = 0;
  const df::Column& counts = grouped->col("__group_count");
  for (size_t r = 0; r < counts.size(); ++r) total += counts.Int64At(r);
  EXPECT_EQ(total, static_cast<int64_t>(table.NumRows()));
}

TEST_P(PropertyTest, ImputationClearsAllNullsAndIsIdempotent) {
  Rng rng = MakeRng();
  df::DataFrame table = RandomTable(&rng, 100, 10, /*with_nulls=*/true);
  join::ImputeInPlace(&table, &rng);
  EXPECT_EQ(join::TotalNullCount(table), 0u);
  df::DataFrame again = table;
  join::ImputeInPlace(&again, &rng);
  for (size_t c = 0; c < table.NumCols(); ++c) {
    for (size_t r = 0; r < table.NumRows(); ++r) {
      EXPECT_EQ(table.col(c).ValueToString(r),
                again.col(c).ValueToString(r));
    }
  }
}

TEST_P(PropertyTest, EncodedMatrixIsFiniteWithOneHotRows) {
  Rng rng = MakeRng();
  df::DataFrame table = RandomTable(&rng, 60, 10, /*with_nulls=*/true);
  df::EncodedFeatures encoded = df::EncodeFeatures(table, {});
  for (size_t r = 0; r < encoded.x.rows(); ++r) {
    double cat_sum = 0.0;
    for (size_t c = 0; c < encoded.x.cols(); ++c) {
      EXPECT_TRUE(std::isfinite(encoded.x(r, c)));
      if (StartsWith(encoded.names[c], "cat=")) cat_sum += encoded.x(r, c);
    }
    // Each row belongs to exactly one category bucket (incl. <null>).
    EXPECT_DOUBLE_EQ(cat_sum, 1.0);
  }
}

TEST_P(PropertyTest, CsvRoundTripIsLossless) {
  Rng rng = MakeRng();
  df::DataFrame table = RandomTable(&rng, 40, 8, /*with_nulls=*/true);
  Result<df::DataFrame> reparsed =
      df::ReadCsvString(df::WriteCsvString(table));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->NumRows(), table.NumRows());
  ASSERT_EQ(reparsed->NumCols(), table.NumCols());
  for (size_t c = 0; c < table.NumCols(); ++c) {
    for (size_t r = 0; r < table.NumRows(); ++r) {
      EXPECT_EQ(reparsed->col(c).ValueToString(r),
                table.col(c).ValueToString(r));
    }
  }
}

TEST_P(PropertyTest, CoresetIsSubsetWithRequestedSize) {
  Rng rng = MakeRng();
  df::DataFrame table = RandomTable(&rng, 150, 5, /*with_nulls=*/false);
  coreset::CoresetConfig config;
  config.method = coreset::CoresetMethod::kUniform;
  config.size = 60;
  Result<df::DataFrame> sampled = coreset::SampleCoreset(
      table, "key", ml::TaskType::kRegression, config, &rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(sampled->NumRows(), 60u);
}

TEST_P(PropertyTest, SplitsPartitionForRandomSizes) {
  Rng rng = MakeRng();
  size_t n = 20 + rng.UniformUint64(200);
  ml::Dataset data;
  data.task = ml::TaskType::kClassification;
  data.x = la::Matrix(n, 2);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) data.y[i] = static_cast<double>(i % 3);
  ml::TrainTestSplit split = ml::MakeTrainTestSplit(data, 0.3, &rng);
  EXPECT_EQ(split.train.NumRows() + split.test.NumRows(), n);
  EXPECT_GT(split.test.NumRows(), 0u);
  EXPECT_GT(split.train.NumRows(), 0u);
}

TEST_P(PropertyTest, ForestPredictionsAreValidLabels) {
  Rng rng = MakeRng();
  const size_t n = 120;
  la::Matrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < 3; ++c) x(i, c) = rng.Normal();
    y[i] = static_cast<double>(rng.UniformUint64(4));
  }
  ml::ForestConfig config;
  config.task = ml::TaskType::kClassification;
  config.num_trees = 8;
  config.seed = GetParam();
  ml::RandomForest forest(config);
  forest.Fit(x, y);
  for (double pred : forest.Predict(x)) {
    EXPECT_GE(pred, 0.0);
    EXPECT_LE(pred, 3.0);
    EXPECT_DOUBLE_EQ(pred, std::round(pred));
  }
}

TEST_P(PropertyTest, SketchKeepsFeatureCountAndBoundsRows) {
  Rng rng = MakeRng();
  ml::Dataset data;
  data.task = ml::TaskType::kRegression;
  const size_t n = 200;
  data.x = la::Matrix(n, 7);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < 7; ++c) data.x(i, c) = rng.Normal();
    data.y[i] = rng.Normal();
  }
  ml::Dataset sketched = coreset::SketchRows(data, 50, &rng);
  EXPECT_EQ(sketched.NumFeatures(), 7u);
  EXPECT_LE(sketched.NumRows(), 50u);
  EXPECT_GT(sketched.NumRows(), 0u);
  for (size_t r = 0; r < sketched.NumRows(); ++r) {
    for (size_t c = 0; c < 7; ++c) {
      EXPECT_TRUE(std::isfinite(sketched.x(r, c)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                         34u));

}  // namespace
}  // namespace arda
