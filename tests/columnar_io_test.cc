// Round-trip and corruption coverage for the binary `.ardac` columnar
// table format, plus the DataRepository directory loader that uses it as
// a table cache (fresh-cache hits, stale-cache refresh, and graceful
// fallback to CSV on any corrupt cache file).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "dataframe/column_stats.h"
#include "dataframe/columnar_io.h"
#include "dataframe/csv.h"
#include "discovery/repository.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace arda::df {
namespace {

namespace fs = std::filesystem;

DataFrame MakeTypedFrame() {
  Column d = Column::Empty("d", DataType::kDouble);
  d.AppendDouble(1.5);
  d.AppendNull();
  d.AppendDouble(-0.0);
  d.AppendDouble(std::numeric_limits<double>::quiet_NaN());
  d.AppendDouble(std::numeric_limits<double>::infinity());
  d.AppendDouble(1e-320);  // subnormal
  Column i = Column::Empty("i", DataType::kInt64);
  i.AppendInt64(std::numeric_limits<int64_t>::min());
  i.AppendInt64(-1);
  i.AppendNull();
  i.AppendInt64(0);
  i.AppendInt64(std::numeric_limits<int64_t>::max());
  i.AppendInt64(7);
  Column s = Column::Empty("s", DataType::kString);
  s.AppendString("plain");
  s.AppendString("");
  s.AppendString(std::string("nul\0byte", 8));
  s.AppendNull();
  s.AppendString("comma, \"quote\"\nnewline");
  s.AppendString("\xC3\xA9");
  DataFrame frame;
  EXPECT_TRUE(frame.AddColumn(std::move(d)).ok());
  EXPECT_TRUE(frame.AddColumn(std::move(i)).ok());
  EXPECT_TRUE(frame.AddColumn(std::move(s)).ok());
  return frame;
}

void ExpectFramesIdentical(const DataFrame& a, const DataFrame& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.NumCols(), b.NumCols());
  for (size_t c = 0; c < a.NumCols(); ++c) {
    const Column& ca = a.col(c);
    const Column& cb = b.col(c);
    EXPECT_EQ(ca.name(), cb.name());
    ASSERT_EQ(ca.type(), cb.type());
    for (size_t r = 0; r < a.NumRows(); ++r) {
      ASSERT_EQ(ca.IsNull(r), cb.IsNull(r)) << "col " << c << " row " << r;
      if (ca.IsNull(r)) continue;
      switch (ca.type()) {
        case DataType::kDouble: {
          // Bit-identical, including NaN payloads and signed zero.
          uint64_t ba, bb;
          double da = ca.DoubleAt(r), db = cb.DoubleAt(r);
          static_assert(sizeof(ba) == sizeof(da));
          std::memcpy(&ba, &da, 8);
          std::memcpy(&bb, &db, 8);
          EXPECT_EQ(ba, bb) << "col " << c << " row " << r;
          break;
        }
        case DataType::kInt64:
          EXPECT_EQ(ca.Int64At(r), cb.Int64At(r))
              << "col " << c << " row " << r;
          break;
        case DataType::kString:
          EXPECT_EQ(ca.StringAt(r), cb.StringAt(r))
              << "col " << c << " row " << r;
          break;
      }
    }
  }
}

TEST(ColumnarIoTest, RoundTripsTypedFrameInMemory) {
  DataFrame frame = MakeTypedFrame();
  std::string bytes = WriteColumnarString(frame);
  Result<DataFrame> back = ReadColumnarString(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectFramesIdentical(frame, *back);
}

TEST(ColumnarIoTest, RoundTripsThroughFile) {
  DataFrame frame = MakeTypedFrame();
  const std::string path = testing::TempDir() + "/arda_columnar_rt.ardac";
  ASSERT_TRUE(WriteColumnar(frame, path).ok());
  Result<DataFrame> back = ReadColumnar(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectFramesIdentical(frame, *back);
  std::remove(path.c_str());
}

TEST(ColumnarIoTest, RoundTripsEmptyFrames) {
  DataFrame empty;
  Result<DataFrame> back = ReadColumnarString(WriteColumnarString(empty));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumCols(), 0u);
  EXPECT_EQ(back->NumRows(), 0u);

  DataFrame zero_rows;
  ASSERT_TRUE(
      zero_rows.AddColumn(Column::Empty("a", DataType::kDouble)).ok());
  ASSERT_TRUE(
      zero_rows.AddColumn(Column::Empty("b", DataType::kString)).ok());
  back = ReadColumnarString(WriteColumnarString(zero_rows));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumCols(), 2u);
  EXPECT_EQ(back->NumRows(), 0u);
  EXPECT_EQ(back->col(0).type(), DataType::kDouble);
  EXPECT_EQ(back->col(1).type(), DataType::kString);
}

TEST(ColumnarIoTest, LargeMixedCsvRoundTripIsByteIdentical) {
  // The acceptance fixture: a ~100k-row mixed-type table goes
  // CSV -> DataFrame -> .ardac -> DataFrame with nothing lost; the CSV
  // serialization of both frames must match byte for byte.
  Rng rng(99);
  std::string csv = "id,value,count,city\n";
  static const char* kCities[] = {"boston", "cambridge", "somerville",
                                  "medford"};
  for (size_t i = 0; i < 100000; ++i) {
    csv += std::to_string(i);
    csv += ',';
    if (rng.UniformUint64(20) != 0) csv += std::to_string(rng.Normal());
    csv += ',';
    if (rng.UniformUint64(20) != 0) {
      csv += std::to_string(rng.UniformUint64(1000));
    }
    csv += ',';
    if (rng.UniformUint64(20) != 0) csv += kCities[rng.UniformUint64(4)];
    csv += '\n';
  }
  Result<DataFrame> parsed = ReadCsvString(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumRows(), 100000u);
  EXPECT_EQ(parsed->col("id").type(), DataType::kInt64);
  EXPECT_EQ(parsed->col("value").type(), DataType::kDouble);
  EXPECT_EQ(parsed->col("count").type(), DataType::kInt64);
  EXPECT_EQ(parsed->col("city").type(), DataType::kString);

  const std::string path = testing::TempDir() + "/arda_columnar_big.ardac";
  ASSERT_TRUE(WriteColumnar(*parsed, path).ok());
  Result<DataFrame> back = ReadColumnar(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectFramesIdentical(*parsed, *back);
  EXPECT_EQ(WriteCsvString(*parsed), WriteCsvString(*back));
  std::remove(path.c_str());
}

TEST(ColumnarIoTest, RejectsBadMagic) {
  std::string bytes = WriteColumnarString(MakeTypedFrame());
  bytes[0] = 'X';
  Result<DataFrame> r = ReadColumnarString(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST(ColumnarIoTest, RejectsVersionSkew) {
  std::string bytes = WriteColumnarString(MakeTypedFrame());
  bytes[4] = 99;  // little-endian version field starts at offset 4
  Result<DataFrame> r = ReadColumnarString(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST(ColumnarIoTest, RejectsChecksumMismatch) {
  std::string bytes = WriteColumnarString(MakeTypedFrame());
  bytes[bytes.size() - 1] ^= 0x40;  // flip a payload bit
  Result<DataFrame> r = ReadColumnarString(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(ColumnarIoTest, RejectsTrailingGarbage) {
  std::string bytes = WriteColumnarString(MakeTypedFrame());
  Result<DataFrame> r = ReadColumnarString(bytes + std::string(4, '\0'));
  ASSERT_FALSE(r.ok());
  // The appended bytes perturb the checksum before trailing-byte
  // detection; either way the read must fail cleanly.
}

TEST(ColumnarIoTest, EveryTruncationFailsCleanly) {
  // Slicing the file at every possible length must yield a Status —
  // never a crash or an out-of-range read.
  std::string bytes = WriteColumnarString(MakeTypedFrame());
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<DataFrame> r = ReadColumnarString(bytes.substr(0, len));
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

TEST(ColumnarIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadColumnar("/nonexistent/arda.ardac").ok());
}

// --- Version-2 meta block: source fingerprint + statistics catalog ---

TEST(ColumnarIoTest, MetaBlockRoundTrips) {
  DataFrame frame = MakeTypedFrame();
  ColumnarMeta meta;
  meta.source_size = 1234;
  meta.source_hash = 0xDEADBEEFCAFEF00DULL;
  meta.stats = ComputeTableStats(frame);
  std::string bytes = WriteColumnarString(frame, &meta);

  ColumnarMeta back_meta;
  Result<DataFrame> back = ReadColumnarString(bytes, &back_meta);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectFramesIdentical(frame, *back);
  EXPECT_EQ(back_meta.source_size, 1234u);
  EXPECT_EQ(back_meta.source_hash, 0xDEADBEEFCAFEF00DULL);
  ASSERT_EQ(back_meta.stats.columns.size(), frame.NumCols());
  for (size_t c = 0; c < frame.NumCols(); ++c) {
    const ColumnStats& expected = meta.stats.columns[c];
    const ColumnStats& got = back_meta.stats.columns[c];
    EXPECT_EQ(got.row_count, expected.row_count);
    EXPECT_EQ(got.non_null_count, expected.non_null_count);
    EXPECT_EQ(got.has_range, expected.has_range);
    if (got.has_range) {
      EXPECT_EQ(got.min, expected.min);
      EXPECT_EQ(got.max, expected.max);
    }
    EXPECT_EQ(got.hll, expected.hll);
    EXPECT_EQ(got.minhash, expected.minhash);
  }
}

TEST(ColumnarIoTest, VersionOneBytesStillLoad) {
  // Files written by the previous format version carry no meta block;
  // they must still deserialize, reporting an unknown fingerprint and an
  // empty stats catalog (recomputed on demand by the repository).
  DataFrame frame = MakeTypedFrame();
  std::string v1_bytes = WriteColumnarStringV1(frame);
  ColumnarMeta meta;
  meta.source_size = 99;  // must be reset by the reader
  Result<DataFrame> back = ReadColumnarString(v1_bytes, &meta);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectFramesIdentical(frame, *back);
  EXPECT_EQ(meta.source_size, 0u);
  EXPECT_EQ(meta.source_hash, 0u);
  EXPECT_TRUE(meta.stats.Empty());
}

TEST(ColumnarIoTest, VersionTwoWithoutMetaBlockFailsCleanly) {
  // A version-2 header whose payload ends after the columns (no ARDM
  // block) is truncated — the reader must fail with a Status, not crash.
  // (The payload checksum doesn't cover the header, so this exercises the
  // meta-decode truncation path directly.)
  std::string bytes = WriteColumnarStringV1(MakeTypedFrame());
  bytes[4] = 2;  // little-endian version field starts at offset 4
  Result<DataFrame> r = ReadColumnarString(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("meta"), std::string::npos);
}

TEST(ColumnarIoTest, EveryTruncationOfStatsFileFailsCleanly) {
  // Same contract as EveryTruncationFailsCleanly, over a file that
  // carries the full stats meta block.
  DataFrame frame = MakeTypedFrame();
  ColumnarMeta meta;
  meta.source_size = 42;
  meta.source_hash = 43;
  meta.stats = ComputeTableStats(frame);
  std::string bytes = WriteColumnarString(frame, &meta);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<DataFrame> r = ReadColumnarString(bytes.substr(0, len));
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

// --- DataRepository::LoadDirectory cache behavior ---

struct TempTree {
  fs::path data_dir;
  fs::path cache_dir;
  TempTree(const char* tag) {
    data_dir = fs::path(testing::TempDir()) / (std::string(tag) + "_data");
    cache_dir =
        fs::path(testing::TempDir()) / (std::string(tag) + "_cache");
    fs::remove_all(data_dir);
    fs::remove_all(cache_dir);
    fs::create_directories(data_dir);
  }
  ~TempTree() {
    std::error_code ec;
    fs::remove_all(data_dir, ec);
    fs::remove_all(cache_dir, ec);
  }
};

void WriteFile(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  ASSERT_TRUE(out.good());
}

TEST(RepositoryCacheTest, WritesCacheThenLoadsFromIt) {
  TempTree tree("arda_repo_cache");
  WriteFile(tree.data_dir / "t.csv", "a,b\n1,x\n2,y\n");

  discovery::DataRepository first;
  discovery::LoadStats stats1;
  ASSERT_TRUE(first
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, &stats1)
                  .ok());
  EXPECT_EQ(stats1.tables_loaded, 1u);
  EXPECT_EQ(stats1.cache_hits, 0u);
  EXPECT_EQ(stats1.cache_writes, 1u);
  EXPECT_TRUE(fs::exists(tree.cache_dir / "t.ardac"));

  discovery::DataRepository second;
  discovery::LoadStats stats2;
  ASSERT_TRUE(second
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, &stats2)
                  .ok());
  EXPECT_EQ(stats2.tables_loaded, 1u);
  EXPECT_EQ(stats2.cache_hits, 1u);
  EXPECT_EQ(stats2.cache_writes, 0u);
  EXPECT_TRUE(stats2.fallbacks.empty());
  const DataFrame& t = second.GetOrDie("t");
  EXPECT_EQ(t.col("a").Int64At(1), 2);
  EXPECT_EQ(t.col("b").StringAt(0), "x");
}

TEST(RepositoryCacheTest, StaleCacheIsRefreshedFromCsv) {
  TempTree tree("arda_repo_stale");
  WriteFile(tree.data_dir / "t.csv", "a\n1\n");
  discovery::DataRepository first;
  ASSERT_TRUE(first
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, nullptr)
                  .ok());
  // Make the CSV strictly newer than the cache entry.
  WriteFile(tree.data_dir / "t.csv", "a\n42\n");
  fs::last_write_time(tree.cache_dir / "t.ardac",
                      fs::last_write_time(tree.data_dir / "t.csv") -
                          std::chrono::seconds(5));

  discovery::DataRepository second;
  discovery::LoadStats stats;
  ASSERT_TRUE(second
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, &stats)
                  .ok());
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_writes, 1u);
  EXPECT_EQ(second.GetOrDie("t").col("a").Int64At(0), 42);
}

TEST(RepositoryCacheTest, CorruptCacheFallsBackToCsv) {
  TempTree tree("arda_repo_corrupt");
  WriteFile(tree.data_dir / "t.csv", "a,b\n7,x\n");
  discovery::DataRepository first;
  ASSERT_TRUE(first
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, nullptr)
                  .ok());
  // Corrupt the cache (payload bit flip -> checksum mismatch); writing it
  // also keeps its mtime >= the CSV's, so it would be used if valid.
  WriteFile(tree.cache_dir / "t.ardac", "ARDCgarbage-not-a-valid-file");

  metrics::GlobalRegistry().ResetForTest();
  discovery::DataRepository second;
  discovery::LoadStats stats;
  ASSERT_TRUE(second
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, &stats)
                  .ok());
  EXPECT_EQ(stats.tables_loaded, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  ASSERT_EQ(stats.fallbacks.size(), 1u);
  EXPECT_EQ(stats.fallbacks[0].table, "t");
  // The fallback increments the skips.ingest counter exactly once (the
  // report/counter lockstep the fault matrix asserts).
  EXPECT_EQ(metrics::GlobalRegistry().Snapshot().CounterValue(
                "skips.ingest"),
            1u);
  // The table itself is fine — re-parsed from the CSV...
  EXPECT_EQ(second.GetOrDie("t").col("a").Int64At(0), 7);
  // ...and the bad cache entry has been rewritten with a valid one.
  EXPECT_EQ(stats.cache_writes, 1u);
  Result<DataFrame> repaired =
      ReadColumnar((tree.cache_dir / "t.ardac").string());
  EXPECT_TRUE(repaired.ok());
}

TEST(RepositoryCacheTest, BadCsvIsRecordedAndSkipped) {
  TempTree tree("arda_repo_badcsv");
  WriteFile(tree.data_dir / "good.csv", "a\n1\n");
  WriteFile(tree.data_dir / "bad.csv", "a,b\n1\n");  // ragged
  discovery::DataRepository repo;
  discovery::LoadStats stats;
  ASSERT_TRUE(repo.LoadDirectory(tree.data_dir.string(), "", {}, &stats)
                  .ok());
  EXPECT_EQ(stats.tables_loaded, 1u);
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_EQ(stats.failures[0].table, "bad");
  EXPECT_TRUE(repo.Has("good"));
  EXPECT_FALSE(repo.Has("bad"));
}

TEST(RepositoryCacheTest, NoCacheDirMeansNoCacheFiles) {
  TempTree tree("arda_repo_nocache");
  WriteFile(tree.data_dir / "t.csv", "a\n1\n");
  discovery::DataRepository repo;
  discovery::LoadStats stats;
  ASSERT_TRUE(repo.LoadDirectory(tree.data_dir.string(), "", {}, &stats)
                  .ok());
  EXPECT_EQ(stats.tables_loaded, 1u);
  EXPECT_EQ(stats.cache_writes, 0u);
  EXPECT_FALSE(fs::exists(tree.cache_dir));
}

TEST(RepositoryCacheTest, MissingDataDirFails) {
  discovery::DataRepository repo;
  EXPECT_FALSE(
      repo.LoadDirectory("/nonexistent/arda_data", "", {}, nullptr).ok());
}

TEST(RepositoryCacheTest, RewriteAtSameMtimeIsDetectedByFingerprint) {
  // Regression test for the mtime-granularity staleness bug: a CSV
  // rewritten within the filesystem's timestamp granularity (cache mtime
  // >= CSV mtime) used to keep serving the stale cache. The source
  // fingerprint (size + content hash) in the cache meta block must catch
  // it regardless of timestamps.
  TempTree tree("arda_repo_samemtime");
  WriteFile(tree.data_dir / "t.csv", "a\n1\n");
  discovery::DataRepository first;
  ASSERT_TRUE(first
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, nullptr)
                  .ok());
  // Rewrite the CSV with same-length different content, then force the
  // cache entry's mtime to be strictly NEWER than the CSV — the
  // worst case for an mtime-only freshness check.
  WriteFile(tree.data_dir / "t.csv", "a\n2\n");
  fs::last_write_time(tree.cache_dir / "t.ardac",
                      fs::last_write_time(tree.data_dir / "t.csv") +
                          std::chrono::seconds(5));

  discovery::DataRepository second;
  discovery::LoadStats stats;
  ASSERT_TRUE(second
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, &stats)
                  .ok());
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_writes, 1u);
  EXPECT_EQ(second.GetOrDie("t").col("a").Int64At(0), 2);
}

TEST(RepositoryCacheTest, V1CacheWithEqualMtimeIsStale) {
  // Regression test for the equal-mtime staleness bug on fingerprint-less
  // version-1 cache files: a CSV rewritten within the filesystem's
  // timestamp granularity leaves the cache and the CSV with the SAME
  // mtime, and the old `cache_time >= csv_time` freshness check kept
  // serving the stale cache (a long-lived service ingesting rapid
  // updates hits this constantly). Equal timestamps must count as stale.
  TempTree tree("arda_repo_v1_equal_mtime");
  // A v1 cache entry (no meta block, no fingerprint) holding old data.
  Result<DataFrame> stale = ReadCsvString("a\n1\n");
  ASSERT_TRUE(stale.ok());
  fs::create_directories(tree.cache_dir);
  WriteFile(tree.cache_dir / "t.ardac", WriteColumnarStringV1(*stale));
  // The CSV now holds new data, with its mtime pinned EQUAL to the
  // cache's — the rewritten-within-granularity case.
  WriteFile(tree.data_dir / "t.csv", "a\n42\n");
  fs::last_write_time(tree.data_dir / "t.csv",
                      fs::last_write_time(tree.cache_dir / "t.ardac"));

  discovery::DataRepository repo;
  discovery::LoadStats stats;
  ASSERT_TRUE(repo.LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, &stats)
                  .ok());
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_writes, 1u);
  EXPECT_EQ(repo.GetOrDie("t").col("a").Int64At(0), 42);
  // ...while a cache strictly newer than the CSV is still a v1 hit.
  fs::last_write_time(tree.cache_dir / "t.ardac",
                      fs::last_write_time(tree.data_dir / "t.csv") +
                          std::chrono::seconds(5));
  // Rewrite the cache as v1 again (LoadDirectory repaired it to v2).
  WriteFile(tree.cache_dir / "t.ardac",
            WriteColumnarStringV1(repo.GetOrDie("t")));
  fs::last_write_time(tree.cache_dir / "t.ardac",
                      fs::last_write_time(tree.data_dir / "t.csv") +
                          std::chrono::seconds(5));
  discovery::DataRepository second;
  discovery::LoadStats stats2;
  ASSERT_TRUE(second
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, &stats2)
                  .ok());
  EXPECT_EQ(stats2.cache_hits, 1u);
}

TEST(RepositoryCacheTest, StatsAreServedFromCacheWithoutRecompute) {
  TempTree tree("arda_repo_statshit");
  WriteFile(tree.data_dir / "t.csv", "a,b\n1,x\n2,y\n2,z\n");
  discovery::DataRepository first;
  ASSERT_TRUE(first
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, nullptr)
                  .ok());

  metrics::GlobalRegistry().ResetForTest();
  discovery::DataRepository second;
  discovery::LoadStats stats;
  ASSERT_TRUE(second
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, &stats)
                  .ok());
  ASSERT_EQ(stats.cache_hits, 1u);
  const TableStats* table_stats = second.Stats("t");
  ASSERT_NE(table_stats, nullptr);
  ASSERT_EQ(table_stats->columns.size(), 2u);
  EXPECT_EQ(table_stats->columns[0].row_count, 3u);
  EXPECT_EQ(table_stats->columns[0].non_null_count, 3u);
  EXPECT_TRUE(table_stats->columns[0].has_range);
  EXPECT_EQ(table_stats->columns[0].min, 1.0);
  EXPECT_EQ(table_stats->columns[0].max, 2.0);
  EXPECT_NEAR(table_stats->columns[0].DistinctEstimate(), 2.0, 0.5);
  // A cache hit serves the catalog from the meta block — no per-column
  // stats computation runs.
  EXPECT_EQ(metrics::GlobalRegistry().Snapshot().CounterValue(
                "stats.columns_computed"),
            0u);
  // Unknown tables have no catalog entry.
  EXPECT_EQ(second.Stats("nope"), nullptr);
}

}  // namespace
}  // namespace arda::df
