// Out-of-core repository coverage: the mmap-backed `.ardac` v3 reader
// (dataframe/mapped_columnar.h), the borrowed-column lifetime contract,
// the stat-based file sizing, the legacy v2 writer's truncation sweep,
// the repository's map_cache mode, and the radix-partitioned join /
// group-by kernels' bit-identity at every partition count.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "dataframe/aggregate.h"
#include "dataframe/column_stats.h"
#include "dataframe/columnar_io.h"
#include "dataframe/csv.h"
#include "dataframe/mapped_columnar.h"
#include "dataframe/partition.h"
#include "discovery/repository.h"
#include "join/join_executor.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace arda::df {
namespace {

namespace fs = std::filesystem;

DataFrame MakeTypedFrame() {
  Column d = Column::Empty("d", DataType::kDouble);
  d.AppendDouble(1.5);
  d.AppendNull();
  d.AppendDouble(-0.0);
  d.AppendDouble(2.25);
  Column i = Column::Empty("i", DataType::kInt64);
  i.AppendInt64(-7);
  i.AppendInt64(41);
  i.AppendNull();
  i.AppendInt64(0);
  Column s = Column::Empty("s", DataType::kString);
  s.AppendString("plain");
  s.AppendString("");
  s.AppendNull();
  s.AppendString("comma, \"quote\"\nnewline");
  DataFrame frame;
  EXPECT_TRUE(frame.AddColumn(std::move(d)).ok());
  EXPECT_TRUE(frame.AddColumn(std::move(i)).ok());
  EXPECT_TRUE(frame.AddColumn(std::move(s)).ok());
  return frame;
}

void WriteFileBytes(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  ASSERT_TRUE(out.good());
}

void ExpectFramesIdentical(const DataFrame& a, const DataFrame& b) {
  // CSV serialization covers names, order, null masks and the repo's
  // deterministic numeric rendering in one comparison.
  EXPECT_EQ(WriteCsvString(a), WriteCsvString(b));
}

// --- MapColumnar: the mmap-backed v3 reader ---

TEST(MappedColumnarTest, MappedReadMatchesEagerRead) {
  DataFrame frame = MakeTypedFrame();
  ColumnarMeta meta;
  meta.source_size = 77;
  meta.source_hash = 0xABCDEF;
  meta.stats = ComputeTableStats(frame);
  const std::string path = testing::TempDir() + "/arda_map_rt.ardac";
  ASSERT_TRUE(WriteColumnar(frame, path, &meta).ok());

  ColumnarMeta eager_meta, mapped_meta;
  Result<DataFrame> eager = ReadColumnar(path, &eager_meta);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  bool unsupported_version = true;
  Result<DataFrame> mapped = MapColumnar(path, &mapped_meta,
                                         &unsupported_version);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_FALSE(unsupported_version);
  ExpectFramesIdentical(frame, *eager);
  ExpectFramesIdentical(frame, *mapped);
  EXPECT_EQ(mapped_meta.source_size, 77u);
  EXPECT_EQ(mapped_meta.source_hash, 0xABCDEFu);
  EXPECT_EQ(mapped_meta.stats.columns.size(), frame.NumCols());
  std::remove(path.c_str());
}

TEST(MappedColumnarTest, MappedReadMatchesEagerOnLargeMixedTable) {
  Rng rng(7);
  std::string csv = "id,value,count,city\n";
  static const char* kCities[] = {"boston", "cambridge", "somerville"};
  for (size_t i = 0; i < 20000; ++i) {
    csv += std::to_string(i);
    csv += ',';
    if (rng.UniformUint64(20) != 0) csv += std::to_string(rng.Normal());
    csv += ',';
    if (rng.UniformUint64(20) != 0) {
      csv += std::to_string(rng.UniformUint64(1000));
    }
    csv += ',';
    if (rng.UniformUint64(20) != 0) csv += kCities[rng.UniformUint64(3)];
    csv += '\n';
  }
  Result<DataFrame> parsed = ReadCsvString(csv);
  ASSERT_TRUE(parsed.ok());
  const std::string path = testing::TempDir() + "/arda_map_big.ardac";
  ASSERT_TRUE(WriteColumnar(*parsed, path).ok());
  Result<DataFrame> mapped = MapColumnar(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectFramesIdentical(*parsed, *mapped);
  std::remove(path.c_str());
}

TEST(MappedColumnarTest, LegacyVersionsReportUnsupportedVersion) {
  DataFrame frame = MakeTypedFrame();
  const std::string path = testing::TempDir() + "/arda_map_legacy.ardac";
  for (const std::string& bytes :
       {WriteColumnarStringV1(frame), WriteColumnarStringV2(frame)}) {
    WriteFileBytes(path, bytes);
    bool unsupported_version = false;
    Result<DataFrame> mapped = MapColumnar(path, nullptr,
                                           &unsupported_version);
    EXPECT_FALSE(mapped.ok());
    EXPECT_TRUE(unsupported_version);
    // The eager path still loads the same file, so the repository can
    // silently fall through for pre-v3 caches.
    EXPECT_TRUE(ReadColumnar(path).ok());
  }
  std::remove(path.c_str());
}

TEST(MappedColumnarTest, EveryTruncationFailsWithStatusNotSigbus) {
  // The v3 safety contract: every extent is validated against the real
  // file size before the first payload access, so a truncated file of
  // ANY length yields a Status — never a SIGBUS on a fault-in past EOF.
  DataFrame frame = MakeTypedFrame();
  ColumnarMeta meta;
  meta.source_size = 42;
  meta.source_hash = 43;
  meta.stats = ComputeTableStats(frame);
  const std::string bytes = WriteColumnarString(frame, &meta);
  const std::string path = testing::TempDir() + "/arda_map_trunc.ardac";
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(path, bytes.substr(0, len));
    bool unsupported_version = false;
    Result<DataFrame> mapped = MapColumnar(path, nullptr,
                                           &unsupported_version);
    EXPECT_FALSE(mapped.ok()) << "prefix length " << len;
    EXPECT_FALSE(unsupported_version) << "prefix length " << len;
  }
  std::remove(path.c_str());
}

TEST(MappedColumnarTest, RejectsCorruptIndex) {
  DataFrame frame = MakeTypedFrame();
  std::string bytes = WriteColumnarString(frame);
  const std::string path = testing::TempDir() + "/arda_map_corrupt.ardac";
  bytes[50] ^= 0x01;  // inside the column index: name bytes
  WriteFileBytes(path, bytes);
  Result<DataFrame> mapped = MapColumnar(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(mapped.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MappedColumnarTest, MissingFileFails) {
  EXPECT_FALSE(MapColumnar("/nonexistent/arda.ardac").ok());
}

TEST(MappedColumnarTest, BorrowedColumnsMaterializeOnMutation) {
  // Columns of a mapped frame borrow validity/data straight out of the
  // mapping; any mutation must first copy them into owned storage (and
  // keep reads consistent), never write through the mapping.
  DataFrame frame = MakeTypedFrame();
  const std::string path = testing::TempDir() + "/arda_map_mut.ardac";
  ASSERT_TRUE(WriteColumnar(frame, path).ok());
  Result<DataFrame> mapped = MapColumnar(path);
  ASSERT_TRUE(mapped.ok());

  Column d = mapped->col("d");  // copy shares the borrow
  d.AppendDouble(9.75);
  ASSERT_EQ(d.size(), 5u);
  EXPECT_EQ(d.DoubleAt(0), 1.5);
  EXPECT_TRUE(d.IsNull(1));
  EXPECT_EQ(d.DoubleAt(4), 9.75);
  Column i = mapped->col("i");
  i.AppendNull();
  ASSERT_EQ(i.size(), 5u);
  EXPECT_EQ(i.Int64At(1), 41);
  EXPECT_TRUE(i.IsNull(4));
  // The mapped frame itself is untouched by the materialized copies.
  ExpectFramesIdentical(frame, *mapped);
  std::remove(path.c_str());
}

TEST(MappedColumnarTest, RewriteKeepsLiveMappingIntact) {
  // WriteColumnar lands in a temp file and rename()s into place: a live
  // mapping of the previous cache generation keeps its old inode, so the
  // COW snapshot contract ("never unmap a table mid-request") holds even
  // while ingest rewrites the same path.
  DataFrame old_frame = MakeTypedFrame();
  const std::string path = testing::TempDir() + "/arda_map_rename.ardac";
  ASSERT_TRUE(WriteColumnar(old_frame, path).ok());
  Result<DataFrame> mapped_old = MapColumnar(path);
  ASSERT_TRUE(mapped_old.ok());

  DataFrame new_frame;
  ASSERT_TRUE(
      new_frame.AddColumn(Column::Int64("z", {5, 6, 7})).ok());
  ASSERT_TRUE(WriteColumnar(new_frame, path).ok());

  // The old mapping still serves the old bytes; a fresh map sees the new.
  ExpectFramesIdentical(old_frame, *mapped_old);
  Result<DataFrame> mapped_new = MapColumnar(path);
  ASSERT_TRUE(mapped_new.ok());
  ExpectFramesIdentical(new_frame, *mapped_new);
  std::remove(path.c_str());
}

// --- FileSizeBytes: the stat-based 64-bit size probe ---

TEST(FileSizeBytesTest, ReportsExactSizeAndExplicitErrors) {
  const std::string path = testing::TempDir() + "/arda_fsize.bin";
  WriteFileBytes(path, std::string(12345, 'x'));
  Result<uint64_t> size = FileSizeBytes(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 12345u);
  std::remove(path.c_str());
  Result<uint64_t> missing = FileSizeBytes(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

TEST(FileSizeBytesTest, SizesPastTwoGiBAreNotTruncated) {
  // The old fseek+ftell probe returned a `long`, which wraps past 2 GiB
  // on ILP32 and turned huge caches into a silent zero-byte reserve. A
  // sparse file checks the 64-bit path without touching 2 GiB of disk.
  const std::string path = testing::TempDir() + "/arda_fsize_sparse.bin";
  const uint64_t want = (uint64_t{1} << 31) + 8;
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good());
  }
  std::error_code ec;
  fs::resize_file(path, want, ec);
  if (ec) GTEST_SKIP() << "filesystem rejects sparse files: "
                       << ec.message();
  Result<uint64_t> size = FileSizeBytes(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, want);
  std::remove(path.c_str());
}

// --- legacy v2 writer: the sliced-at-every-length contract ---

TEST(ColumnarV2Test, RoundTripsAndEveryTruncationFailsCleanly) {
  DataFrame frame = MakeTypedFrame();
  ColumnarMeta meta;
  meta.source_size = 42;
  meta.source_hash = 43;
  meta.stats = ComputeTableStats(frame);
  const std::string bytes = WriteColumnarStringV2(frame, &meta);

  ColumnarMeta back_meta;
  Result<DataFrame> back = ReadColumnarString(bytes, &back_meta);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectFramesIdentical(frame, *back);
  EXPECT_EQ(back_meta.source_size, 42u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<DataFrame> r = ReadColumnarString(bytes.substr(0, len));
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

// --- DataRepository map_cache mode ---

struct TempTree {
  fs::path data_dir;
  fs::path cache_dir;
  explicit TempTree(const char* tag) {
    data_dir = fs::path(testing::TempDir()) / (std::string(tag) + "_data");
    cache_dir =
        fs::path(testing::TempDir()) / (std::string(tag) + "_cache");
    fs::remove_all(data_dir);
    fs::remove_all(cache_dir);
    fs::create_directories(data_dir);
  }
  ~TempTree() {
    std::error_code ec;
    fs::remove_all(data_dir, ec);
    fs::remove_all(cache_dir, ec);
  }
};

TEST(RepositoryMapCacheTest, MappedLoadServesIdenticalTables) {
  TempTree tree("arda_oocore_repo");
  WriteFileBytes(tree.data_dir / "t.csv", "a,b,c\n1,2.5,x\n2,,y\n3,7.5,\n");
  WriteFileBytes(tree.data_dir / "u.csv", "k,v\n10,0.5\n20,0.25\n");

  discovery::DataRepository eager;
  discovery::LoadStats warm_stats;
  ASSERT_TRUE(eager
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, &warm_stats)
                  .ok());
  EXPECT_EQ(warm_stats.cache_writes, 2u);

  discovery::DataRepository mapped;
  discovery::LoadOptions options;
  options.map_cache = true;
  discovery::LoadStats stats;
  ASSERT_TRUE(mapped
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), options, &stats)
                  .ok());
  EXPECT_EQ(stats.tables_loaded, 2u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_TRUE(stats.fallbacks.empty());
  ExpectFramesIdentical(eager.GetOrDie("t"), mapped.GetOrDie("t"));
  ExpectFramesIdentical(eager.GetOrDie("u"), mapped.GetOrDie("u"));
  // The persisted stats catalog rides along with the mapped hit too.
  EXPECT_NE(mapped.Stats("t"), nullptr);
}

TEST(RepositoryMapCacheTest, CorruptCacheDegradesToCsv) {
  TempTree tree("arda_oocore_corrupt");
  WriteFileBytes(tree.data_dir / "t.csv", "a\n1\n2\n");
  discovery::DataRepository warm;
  ASSERT_TRUE(warm
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), {}, nullptr)
                  .ok());
  // Corrupt the cache in place (same size, bad bytes).
  {
    std::fstream f(tree.cache_dir / "t.ardac",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(52);
    f.put('\xff');
  }
  discovery::DataRepository repo;
  discovery::LoadOptions options;
  options.map_cache = true;
  discovery::LoadStats stats;
  ASSERT_TRUE(repo
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), options, &stats)
                  .ok());
  EXPECT_TRUE(repo.Has("t"));
  EXPECT_EQ(stats.cache_hits, 0u);
  ASSERT_EQ(stats.fallbacks.size(), 1u);
  EXPECT_EQ(repo.GetOrDie("t").col("a").Int64At(1), 2);
}

TEST(RepositoryMapCacheTest, V2CacheServedEagerlyWithoutFallback) {
  // Pre-v3 caches predate the column index: map_cache mode serves them
  // through the eager reader with NO fallback recorded (they are not
  // corrupt, just not mmap-able), and migrates them to v3 only when the
  // CSV changes.
  TempTree tree("arda_oocore_v2");
  const std::string csv = "a,b\n1,x\n2,y\n";
  WriteFileBytes(tree.data_dir / "t.csv", csv);
  Result<DataFrame> parsed = ReadCsvString(csv);
  ASSERT_TRUE(parsed.ok());
  ColumnarMeta meta;
  meta.source_size = csv.size();
  meta.source_hash = StatsFnv1a64(csv);
  meta.stats = ComputeTableStats(*parsed);
  fs::create_directories(tree.cache_dir);
  WriteFileBytes(tree.cache_dir / "t.ardac",
                 WriteColumnarStringV2(*parsed, &meta));

  discovery::DataRepository repo;
  discovery::LoadOptions options;
  options.map_cache = true;
  discovery::LoadStats stats;
  ASSERT_TRUE(repo
                  .LoadDirectory(tree.data_dir.string(),
                                 tree.cache_dir.string(), options, &stats)
                  .ok());
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_TRUE(stats.fallbacks.empty());
  ExpectFramesIdentical(*parsed, repo.GetOrDie("t"));
}

// --- radix partitioning primitives ---

TEST(PartitionTest, EveryRowLandsInExactlyOnePartitionAscending) {
  DataFrame frame;
  std::vector<int64_t> keys;
  std::vector<double> soft;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(i % 23);
    soft.push_back(static_cast<double>(i % 7) * 1.5);
  }
  ASSERT_TRUE(frame.AddColumn(Column::Int64("k", keys)).ok());
  ASSERT_TRUE(frame.AddColumn(Column::Double("s", soft)).ok());

  std::vector<PartitionKeySpec> specs(2);
  specs[0].col = 0;
  specs[0].native = true;
  specs[1].col = 1;
  specs[1].granularity = 2.0;
  for (size_t p : {size_t{1}, size_t{2}, size_t{7}}) {
    std::vector<std::vector<size_t>> parts =
        PartitionRowsByKey(frame, specs, p);
    ASSERT_EQ(parts.size(), p);
    std::set<size_t> seen;
    for (const std::vector<size_t>& rows : parts) {
      for (size_t j = 0; j < rows.size(); ++j) {
        if (j > 0) EXPECT_LT(rows[j - 1], rows[j]);
        EXPECT_TRUE(seen.insert(rows[j]).second) << "row " << rows[j];
      }
    }
    EXPECT_EQ(seen.size(), frame.NumRows());
    // Equal keys colocate: rows with identical key tuples share a
    // partition (the property the per-partition build/probe relies on).
    std::vector<size_t> partition_of(frame.NumRows());
    for (size_t pi = 0; pi < parts.size(); ++pi) {
      for (size_t row : parts[pi]) partition_of[row] = pi;
    }
    for (size_t r = 0; r < frame.NumRows(); ++r) {
      // i % 23 and bucket(i % 7 * 1.5, 2.0) repeat with period 161.
      if (r + 161 < frame.NumRows()) {
        EXPECT_EQ(partition_of[r], partition_of[r + 161]) << "row " << r;
      }
    }
  }
}

TEST(PartitionTest, ChoosePartitionCountScalesWithBudget) {
  EXPECT_EQ(ChoosePartitionCount(5, 1000, 10), 5u);  // explicit wins
  EXPECT_EQ(ChoosePartitionCount(0, 0, 1 << 30), 1u);  // no budget
  EXPECT_EQ(ChoosePartitionCount(0, 100, 50), 1u);
  EXPECT_EQ(ChoosePartitionCount(0, 100, 250), 3u);
  EXPECT_EQ(ChoosePartitionCount(0, 1, uint64_t{1} << 40), 256u);  // clamp
}

TEST(PartitionTest, MemoryBudgetForcesPartitioningWithIdenticalOutput) {
  Rng rng(13);
  DataFrame frame;
  std::vector<int64_t> keys;
  std::vector<double> vals;
  Column tags = Column::Empty("t", DataType::kString);
  for (int i = 0; i < 500; ++i) {
    keys.push_back(i % 37);
    vals.push_back(rng.Normal());
    tags.AppendString(i % 3 == 0 ? "odd" : "even");
  }
  ASSERT_TRUE(frame.AddColumn(Column::Int64("k", keys)).ok());
  ASSERT_TRUE(frame.AddColumn(Column::Double("v", vals)).ok());
  ASSERT_TRUE(frame.AddColumn(std::move(tags)).ok());

  AggregateOptions single;
  Result<DataFrame> reference = GroupByAggregate(frame, {"k"}, single);
  ASSERT_TRUE(reference.ok());

  AggregateOptions budgeted;
  budgeted.memory_budget_bytes = 64;  // far below the frame estimate
  Result<DataFrame> bounded = GroupByAggregate(frame, {"k"}, budgeted);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(WriteCsvString(*reference), WriteCsvString(*bounded));

  for (size_t p : {size_t{1}, size_t{2}, size_t{7}}) {
    AggregateOptions pinned;
    pinned.partition_count = p;
    Result<DataFrame> parts = GroupByAggregate(frame, {"k"}, pinned);
    ASSERT_TRUE(parts.ok()) << "partitions " << p;
    EXPECT_EQ(WriteCsvString(*reference), WriteCsvString(*parts))
        << "partitions " << p;
  }
}

TEST(PartitionTest, JoinMemoryBudgetIsBitInvariant) {
  // Hard join with duplicate foreign keys (forces the partitioned
  // dup-detect + pre-aggregate + probe pipeline) and null keys on both
  // sides; the budgeted output must match the single-pass bytes exactly.
  Rng rng(29);
  DataFrame base;
  {
    Column id = Column::Empty("id", DataType::kInt64);
    Column city = Column::Empty("city", DataType::kString);
    Column y = Column::Empty("y", DataType::kDouble);
    static const char* kCities[] = {"ann arbor", "boston", "cambridge"};
    for (int i = 0; i < 150; ++i) {
      if (i % 13 == 12) {
        id.AppendNull();
      } else {
        id.AppendInt64(i % 31);
      }
      city.AppendString(kCities[i % 3]);
      y.AppendDouble(rng.Normal());
    }
    ASSERT_TRUE(base.AddColumn(std::move(id)).ok());
    ASSERT_TRUE(base.AddColumn(std::move(city)).ok());
    ASSERT_TRUE(base.AddColumn(std::move(y)).ok());
  }
  DataFrame foreign;
  {
    Column fid = Column::Empty("fid", DataType::kInt64);
    Column fcity = Column::Empty("fcity", DataType::kString);
    Column score = Column::Empty("score", DataType::kDouble);
    static const char* kCities[] = {"ann arbor", "boston", "cambridge"};
    for (int i = 0; i < 220; ++i) {
      if (i % 17 == 16) {
        fid.AppendNull();
      } else {
        fid.AppendInt64(i % 31);  // duplicates force pre-aggregation
      }
      fcity.AppendString(kCities[i % 3]);
      if (i % 11 == 10) {
        score.AppendNull();
      } else {
        score.AppendDouble(rng.Normal());
      }
    }
    ASSERT_TRUE(foreign.AddColumn(std::move(fid)).ok());
    ASSERT_TRUE(foreign.AddColumn(std::move(fcity)).ok());
    ASSERT_TRUE(foreign.AddColumn(std::move(score)).ok());
  }
  discovery::CandidateJoin cand;
  cand.foreign_table = "aug";
  cand.keys = {
      discovery::JoinKeyPair{"id", "fid", discovery::KeyKind::kHard},
      discovery::JoinKeyPair{"city", "fcity", discovery::KeyKind::kHard}};

  Rng jrng(3);
  Result<DataFrame> reference =
      join::ExecuteLeftJoin(base, foreign, cand, {}, &jrng);
  ASSERT_TRUE(reference.ok());
  const std::string reference_csv = WriteCsvString(*reference);

  join::JoinOptions budgeted;
  budgeted.memory_budget_bytes = 64;
  Rng brng(3);
  Result<DataFrame> bounded =
      join::ExecuteLeftJoin(base, foreign, cand, budgeted, &brng);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(reference_csv, WriteCsvString(*bounded));

  for (size_t p : {size_t{1}, size_t{2}, size_t{7}}) {
    join::JoinOptions pinned;
    pinned.partition_count = p;
    Rng prng(3);
    Result<DataFrame> parts =
        join::ExecuteLeftJoin(base, foreign, cand, pinned, &prng);
    ASSERT_TRUE(parts.ok()) << "partitions " << p;
    EXPECT_EQ(reference_csv, WriteCsvString(*parts)) << "partitions " << p;
  }
}

// --- ParseByteSize: the --memory-budget spelling ---

TEST(ParseByteSizeTest, ParsesSuffixesAndRejectsGarbage) {
  uint64_t out = 0;
  EXPECT_TRUE(ParseByteSize("0", &out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(ParseByteSize("12345", &out));
  EXPECT_EQ(out, 12345u);
  EXPECT_TRUE(ParseByteSize("64k", &out));
  EXPECT_EQ(out, 64u << 10);
  EXPECT_TRUE(ParseByteSize("3M", &out));
  EXPECT_EQ(out, uint64_t{3} << 20);
  EXPECT_TRUE(ParseByteSize("2g", &out));
  EXPECT_EQ(out, uint64_t{2} << 30);
  EXPECT_TRUE(ParseByteSize(" 8m ", &out));
  EXPECT_EQ(out, uint64_t{8} << 20);
  EXPECT_FALSE(ParseByteSize("", &out));
  EXPECT_FALSE(ParseByteSize("k", &out));
  EXPECT_FALSE(ParseByteSize("-1", &out));
  EXPECT_FALSE(ParseByteSize("1.5g", &out));
  EXPECT_FALSE(ParseByteSize("10q", &out));
  EXPECT_FALSE(ParseByteSize("64kb", &out));
  EXPECT_FALSE(ParseByteSize("99999999999999999999g", &out));
}

}  // namespace
}  // namespace arda::df
