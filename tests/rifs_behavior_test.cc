// Behavioral probes of RIFS beyond the basic selection tests: parameter
// sensitivity (eta, rounds, thresholds), the Algorithm-3 early-stop mode,
// and determinism guarantees.

#include <gtest/gtest.h>

#include <algorithm>

#include "featsel/rifs.h"
#include "util/rng.h"

namespace arda::featsel {
namespace {

ml::Dataset MakeDataset(size_t n, size_t signal, size_t noise,
                        uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.task = ml::TaskType::kClassification;
  data.x = la::Matrix(n, signal + noise);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool positive = i % 2 == 0;
    data.y[i] = positive ? 1.0 : 0.0;
    for (size_t c = 0; c < signal; ++c) {
      data.x(i, c) = rng.Normal(positive ? 1.2 : -1.2, 0.9);
    }
    for (size_t c = signal; c < signal + noise; ++c) {
      data.x(i, c) = rng.Normal();
    }
  }
  for (size_t c = 0; c < signal + noise; ++c) {
    data.feature_names.push_back("f" + std::to_string(c));
  }
  return data;
}

class RifsEtaSweep : public testing::TestWithParam<double> {};

TEST_P(RifsEtaSweep, AnyInjectionFractionFindsSignal) {
  ml::Dataset data = MakeDataset(220, 2, 10, 3);
  ml::Evaluator evaluator(data, 0.25, 7);
  RifsConfig config;
  config.eta = GetParam();
  config.num_rounds = 8;
  Rng rng(11);
  RifsResult result = RunRifs(data, evaluator, config, &rng);
  size_t signal_kept = 0;
  for (size_t f : result.selected) signal_kept += f < 2;
  EXPECT_GE(signal_kept, 1u) << "eta=" << GetParam();
  EXPECT_GT(result.score, 0.75);
}

INSTANTIATE_TEST_SUITE_P(Etas, RifsEtaSweep,
                         testing::Values(0.05, 0.2, 0.5, 1.0));

TEST(RifsBehaviorTest, MoreRoundsSharpensFractions) {
  ml::Dataset data = MakeDataset(220, 2, 10, 5);
  ml::Evaluator evaluator(data, 0.25, 7);
  // With many rounds, signal fractions should saturate near 1 while the
  // mean noise fraction stays clearly below.
  RifsConfig config;
  config.num_rounds = 12;
  Rng rng(13);
  RifsResult result = RunRifs(data, evaluator, config, &rng);
  double signal_mean =
      0.5 * (result.beat_noise_fraction[0] + result.beat_noise_fraction[1]);
  double noise_mean = 0.0;
  for (size_t c = 2; c < 12; ++c) noise_mean += result.beat_noise_fraction[c];
  noise_mean /= 10.0;
  EXPECT_GT(signal_mean, 0.8);
  EXPECT_LT(noise_mean, 0.5 * signal_mean);
}

TEST(RifsBehaviorTest, DeterministicGivenIdenticalRngState) {
  ml::Dataset data = MakeDataset(180, 2, 8, 7);
  ml::Evaluator evaluator(data, 0.25, 7);
  RifsConfig config;
  config.num_rounds = 5;
  Rng a(99), b(99);
  RifsResult ra = RunRifs(data, evaluator, config, &a);
  RifsResult rb = RunRifs(data, evaluator, config, &b);
  EXPECT_EQ(ra.selected, rb.selected);
  EXPECT_EQ(ra.beat_noise_fraction, rb.beat_noise_fraction);
  EXPECT_DOUBLE_EQ(ra.score, rb.score);
}

TEST(RifsBehaviorTest, EarlyStopSelectsSubsetOfSweptThresholds) {
  ml::Dataset data = MakeDataset(200, 2, 8, 9);
  ml::Evaluator evaluator(data, 0.25, 7);
  RifsConfig full;
  full.num_rounds = 6;
  RifsConfig early = full;
  early.stop_on_decrease = true;
  Rng a(17), b(17);
  RifsResult full_result = RunRifs(data, evaluator, full, &a);
  RifsResult early_result = RunRifs(data, evaluator, early, &b);
  // Same noise rounds (same rng stream), so identical fractions; the
  // early stop can only see fewer thresholds, never better ones.
  EXPECT_EQ(full_result.beat_noise_fraction,
            early_result.beat_noise_fraction);
  EXPECT_LE(early_result.evaluations, full_result.evaluations);
  EXPECT_GE(full_result.score, early_result.score - 1e-12);
}

TEST(RifsBehaviorTest, SingleThresholdConfigWorks) {
  ml::Dataset data = MakeDataset(160, 2, 6, 11);
  ml::Evaluator evaluator(data, 0.25, 7);
  RifsConfig config;
  config.num_rounds = 5;
  config.thresholds = {0.8};
  Rng rng(19);
  RifsResult result = RunRifs(data, evaluator, config, &rng);
  EXPECT_FALSE(result.selected.empty());
  for (size_t f : result.selected) {
    EXPECT_GE(result.beat_noise_fraction[f], 0.8);
  }
}

TEST(RifsBehaviorTest, SelectedIndicesAreSortedAndUnique) {
  ml::Dataset data = MakeDataset(200, 3, 9, 13);
  ml::Evaluator evaluator(data, 0.25, 7);
  RifsConfig config;
  config.num_rounds = 5;
  Rng rng(23);
  RifsResult result = RunRifs(data, evaluator, config, &rng);
  EXPECT_TRUE(std::is_sorted(result.selected.begin(),
                             result.selected.end()));
  EXPECT_EQ(std::adjacent_find(result.selected.begin(),
                               result.selected.end()),
            result.selected.end());
}

}  // namespace
}  // namespace arda::featsel
