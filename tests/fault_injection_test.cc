// Single-fault matrix for graceful degradation: with every registered
// fault site armed, the ARDA pipeline must complete, record what it
// skipped in ArdaReport::skipped_candidates, and keep producing a usable
// report. Also covers the spec grammar, CSV-load degradation (candidate
// tables that fail to parse drop out of the repository), and the CLI
// driver returning success (exit 0) under an active fault.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <map>

#include "core/arda.h"
#include "dataframe/aggregate.h"
#include "dataframe/csv.h"
#include "discovery/repository.h"
#include "join/join_executor.h"
#include "tools/cli.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace arda {
namespace {

// Disarms every fault on scope exit so a failing assertion in one test
// cannot leave faults armed for the rest of the binary.
struct FaultGuard {
  ~FaultGuard() { ARDA_CHECK(fault::SetFaultSpecForTest("").ok()); }
};

// A small three-table scenario: base(k, x, y), a unique-key candidate
// `wea`, and a duplicate-key candidate `evt` whose join exercises the
// one-to-many pre-aggregation path. `task.repo` points into the struct,
// so scenarios are constructed in place and never moved.
struct Scenario {
  discovery::DataRepository repo;
  core::AugmentationTask task;
};

void MakeScenario(Scenario* s) {
  std::vector<int64_t> k;
  std::vector<double> x, y;
  for (int i = 0; i < 40; ++i) {
    k.push_back(i);
    x.push_back(static_cast<double>(i % 5));
    y.push_back(2.0 * (i % 7) + 0.5 * (i % 5));
  }
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("k", k)).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("x", x)).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("y", y)).ok());

  df::DataFrame wea;
  std::vector<double> v;
  for (int i = 0; i < 40; ++i) v.push_back(static_cast<double>(i % 7));
  ASSERT_TRUE(wea.AddColumn(df::Column::Int64("k", k)).ok());
  ASSERT_TRUE(wea.AddColumn(df::Column::Double("v", v)).ok());

  df::DataFrame evt;
  std::vector<int64_t> dup_k;
  std::vector<double> w;
  for (int i = 0; i < 40; ++i) {
    dup_k.push_back(i % 20);  // every key appears twice
    w.push_back(static_cast<double>(i % 3));
  }
  ASSERT_TRUE(evt.AddColumn(df::Column::Int64("k", dup_k)).ok());
  ASSERT_TRUE(evt.AddColumn(df::Column::Double("w", w)).ok());

  ASSERT_TRUE(s->repo.Add("base", base).ok());
  ASSERT_TRUE(s->repo.Add("wea", std::move(wea)).ok());
  ASSERT_TRUE(s->repo.Add("evt", std::move(evt)).ok());

  s->task.base = std::move(base);
  s->task.target_column = "y";
  s->task.task = ml::TaskType::kRegression;
  s->task.repo = &s->repo;
  s->task.base_table_name = "base";
  discovery::CandidateJoin on_wea;
  on_wea.foreign_table = "wea";
  on_wea.keys = {
      discovery::JoinKeyPair{"k", "k", discovery::KeyKind::kHard}};
  discovery::CandidateJoin on_evt;
  on_evt.foreign_table = "evt";
  on_evt.keys = {
      discovery::JoinKeyPair{"k", "k", discovery::KeyKind::kHard}};
  s->task.candidates = {on_wea, on_evt};
}

core::ArdaConfig MakeConfig() {
  core::ArdaConfig config;
  config.seed = 42;
  config.num_threads = 1;
  config.rifs.num_rounds = 3;
  return config;
}

TEST(FaultInjectionTest, PipelineCompletesWithEverySingleFault) {
  FaultGuard guard;
  // Sites the scenario is guaranteed to hit; the others (csv_parse is a
  // load-time site, resample needs time keys, cholesky degrades inside
  // the solver) must still leave the run completing cleanly.
  const std::set<std::string_view> expect_skips = {
      fault::kJoinKeyEncode, fault::kPreAggregate, fault::kImpute,
      fault::kCoreset, fault::kRifs};
  for (std::string_view site : fault::AllFaultSites()) {
    ASSERT_TRUE(fault::SetFaultSpecForTest(site).ok()) << site;
    // Metrics are cumulative across runs; zero them so the skip counters
    // in this run's snapshot mirror exactly this run's skip list.
    metrics::GlobalRegistry().ResetForTest();
    Scenario s;
    MakeScenario(&s);
    Result<core::ArdaReport> report = core::Arda(MakeConfig()).Run(s.task);
    ASSERT_TRUE(report.ok())
        << "site=" << site << ": " << report.status().ToString();
    // Observability contract: every skipped_candidates entry has a
    // matching `skips.<stage>` counter increment, and no stage counts
    // skips the report doesn't know about.
    std::map<std::string, uint64_t> per_stage;
    for (const core::SkippedCandidate& skip : report->skipped_candidates) {
      ++per_stage[skip.stage];
    }
    for (const auto& [stage, count] : per_stage) {
      EXPECT_EQ(report->metrics.CounterValue("skips." + stage), count)
          << "site=" << site << " stage=" << stage;
    }
    for (const auto& counter : report->metrics.counters) {
      if (counter.name.rfind("skips.", 0) != 0) continue;
      const std::string stage = counter.name.substr(6);
      EXPECT_EQ(counter.value, per_stage[stage])
          << "site=" << site << " counter=" << counter.name;
    }
    if (expect_skips.count(site) > 0) {
      EXPECT_FALSE(report->skipped_candidates.empty()) << "site=" << site;
      bool any_injected = false;
      for (const core::SkippedCandidate& skip : report->skipped_candidates) {
        EXPECT_FALSE(skip.table.empty());
        EXPECT_FALSE(skip.stage.empty());
        EXPECT_FALSE(skip.reason.empty());
        if (skip.reason.find("injected fault") != std::string::npos) {
          any_injected = true;
        }
      }
      EXPECT_TRUE(any_injected) << "site=" << site;
    }
    // The run still scores something: the base features always survive.
    EXPECT_GT(report->augmented.NumRows(), 0u) << "site=" << site;
    EXPECT_GE(report->augmented.NumCols(), 3u) << "site=" << site;
  }
}

TEST(FaultInjectionTest, DisarmedRunMatchesNeverArmedRun) {
  FaultGuard guard;
  Scenario before;
  MakeScenario(&before);
  Result<core::ArdaReport> clean = core::Arda(MakeConfig()).Run(before.task);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->skipped_candidates.empty());

  ASSERT_TRUE(fault::SetFaultSpecForTest("impute").ok());
  Scenario faulted;
  MakeScenario(&faulted);
  Result<core::ArdaReport> degraded =
      core::Arda(MakeConfig()).Run(faulted.task);
  ASSERT_TRUE(degraded.ok());
  EXPECT_FALSE(degraded->skipped_candidates.empty());

  ASSERT_TRUE(fault::SetFaultSpecForTest("").ok());
  Scenario after;
  MakeScenario(&after);
  Result<core::ArdaReport> again = core::Arda(MakeConfig()).Run(after.task);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->skipped_candidates.empty());
  // Disarming restores bit-identical behavior.
  EXPECT_EQ(df::WriteCsvString(clean->augmented),
            df::WriteCsvString(again->augmented));
  EXPECT_DOUBLE_EQ(clean->final_score, again->final_score);
}

TEST(FaultInjectionTest, CsvParseFaultHitsOnlyTheRequestedLoad) {
  FaultGuard guard;
  ASSERT_TRUE(fault::SetFaultSpecForTest("csv_parse:2").ok());
  fault::ResetFaultCounters();
  const std::string csv = "k,v\n1,2\n";
  Result<df::DataFrame> first = df::ReadCsvString(csv);
  ASSERT_TRUE(first.ok());
  Result<df::DataFrame> second = df::ReadCsvString(csv);
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("injected fault"),
            std::string::npos);
  Result<df::DataFrame> third = df::ReadCsvString(csv);
  EXPECT_TRUE(third.ok());  // only the 2nd hit fails
}

TEST(FaultInjectionTest, RejectsUnknownSitesAndBadCounts) {
  FaultGuard guard;
  EXPECT_FALSE(fault::SetFaultSpecForTest("no_such_site").ok());
  EXPECT_FALSE(fault::SetFaultSpecForTest("cholesky:0").ok());
  EXPECT_FALSE(fault::SetFaultSpecForTest("cholesky:-1").ok());
  EXPECT_FALSE(fault::SetFaultSpecForTest("cholesky:x").ok());
  EXPECT_TRUE(fault::SetFaultSpecForTest(" impute , cholesky:2 ").ok());
  EXPECT_TRUE(fault::SetFaultSpecForTest("").ok());
  // Disarmed: no site fires.
  EXPECT_FALSE(fault::FaultsArmed());
}

TEST(FaultInjectionTest, ColumnarReadFaultFallsBackToCsv) {
  FaultGuard guard;
  namespace fs = std::filesystem;
  const std::string data_dir = ::testing::TempDir() + "/arda_fault_colr";
  const std::string cache_dir = data_dir + "_cache";
  fs::remove_all(data_dir);
  fs::remove_all(cache_dir);
  fs::create_directories(data_dir);
  Scenario s;
  MakeScenario(&s);
  ASSERT_TRUE(df::WriteCsvFile(s.task.base, data_dir + "/base.csv").ok());

  // Warm the cache, then arm the columnar_read site: the cached load must
  // degrade to re-parsing the CSV, never crash or drop the table.
  discovery::DataRepository warm;
  ASSERT_TRUE(warm.LoadDirectory(data_dir, cache_dir, {}, nullptr).ok());

  ASSERT_TRUE(fault::SetFaultSpecForTest("columnar_read").ok());
  fault::ResetFaultCounters();
  metrics::GlobalRegistry().ResetForTest();
  discovery::DataRepository repo;
  discovery::LoadStats stats;
  ASSERT_TRUE(repo.LoadDirectory(data_dir, cache_dir, {}, &stats).ok());
  EXPECT_TRUE(repo.Has("base"));
  EXPECT_EQ(stats.tables_loaded, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  ASSERT_EQ(stats.fallbacks.size(), 1u);
  EXPECT_NE(stats.fallbacks[0].reason.find("injected fault"),
            std::string::npos);
  EXPECT_EQ(
      metrics::GlobalRegistry().Snapshot().CounterValue("skips.ingest"),
      1u);
  fs::remove_all(data_dir);
  fs::remove_all(cache_dir);
}

TEST(FaultInjectionTest, ColumnarMapFaultFallsBackToCsv) {
  FaultGuard guard;
  namespace fs = std::filesystem;
  const std::string data_dir = ::testing::TempDir() + "/arda_fault_colm";
  const std::string cache_dir = data_dir + "_cache";
  fs::remove_all(data_dir);
  fs::remove_all(cache_dir);
  fs::create_directories(data_dir);
  Scenario s;
  MakeScenario(&s);
  ASSERT_TRUE(df::WriteCsvFile(s.task.base, data_dir + "/base.csv").ok());

  // Warm the cache, then arm the columnar_map site: the out-of-core
  // (mmap) load must degrade to re-parsing the CSV exactly like a failed
  // eager read — counter and fallback entry in lockstep.
  discovery::DataRepository warm;
  ASSERT_TRUE(warm.LoadDirectory(data_dir, cache_dir, {}, nullptr).ok());

  ASSERT_TRUE(fault::SetFaultSpecForTest("columnar_map").ok());
  fault::ResetFaultCounters();
  metrics::GlobalRegistry().ResetForTest();
  discovery::DataRepository repo;
  discovery::LoadOptions options;
  options.map_cache = true;
  discovery::LoadStats stats;
  ASSERT_TRUE(repo.LoadDirectory(data_dir, cache_dir, options, &stats).ok());
  EXPECT_TRUE(repo.Has("base"));
  EXPECT_EQ(stats.tables_loaded, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  ASSERT_EQ(stats.fallbacks.size(), 1u);
  EXPECT_NE(stats.fallbacks[0].reason.find("injected fault"),
            std::string::npos);
  EXPECT_EQ(
      metrics::GlobalRegistry().Snapshot().CounterValue("skips.ingest"),
      1u);
  fs::remove_all(data_dir);
  fs::remove_all(cache_dir);
}

TEST(FaultInjectionTest, PartitionSpillFaultFailsPartitionedKernels) {
  FaultGuard guard;
  // The site only exists on the radix-partitioned paths: unpartitioned
  // runs never hit it, partitioned runs surface it as a deterministic
  // Status regardless of which partition task would have executed.
  Scenario s;
  MakeScenario(&s);
  const df::DataFrame& evt = s.repo.GetOrDie("evt");

  ASSERT_TRUE(fault::SetFaultSpecForTest("partition_spill").ok());
  fault::ResetFaultCounters();
  df::AggregateOptions agg;
  agg.partition_count = 2;
  Result<df::DataFrame> grouped = df::GroupByAggregate(evt, {"k"}, agg);
  ASSERT_FALSE(grouped.ok());
  EXPECT_NE(grouped.status().message().find("injected fault"),
            std::string::npos);

  ASSERT_TRUE(fault::SetFaultSpecForTest("partition_spill").ok());
  fault::ResetFaultCounters();
  discovery::CandidateJoin cand;
  cand.foreign_table = "evt";
  cand.keys = {discovery::JoinKeyPair{"k", "k", discovery::KeyKind::kHard}};
  join::JoinOptions join_options;
  join_options.partition_count = 2;
  Rng rng(11);
  Result<df::DataFrame> joined =
      join::ExecuteLeftJoin(s.task.base, evt, cand, join_options, &rng);
  ASSERT_FALSE(joined.ok());
  EXPECT_NE(joined.status().message().find("injected fault"),
            std::string::npos);

  // Disarmed, the same partitioned calls succeed and match single-pass.
  ASSERT_TRUE(fault::SetFaultSpecForTest("").ok());
  Result<df::DataFrame> clean =
      df::GroupByAggregate(evt, {"k"}, df::AggregateOptions{});
  Result<df::DataFrame> parts = df::GroupByAggregate(evt, {"k"}, agg);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(df::WriteCsvString(*clean), df::WriteCsvString(*parts));
}

TEST(FaultInjectionTest, PipelineCompletesUnderPartitionSpillWithBudget) {
  FaultGuard guard;
  // End to end: a memory-budgeted run that partitions its joins must
  // degrade gracefully under the spill fault — candidates skip, the run
  // completes on base features.
  ASSERT_TRUE(fault::SetFaultSpecForTest("partition_spill").ok());
  fault::ResetFaultCounters();
  Scenario s;
  MakeScenario(&s);
  core::ArdaConfig config = MakeConfig();
  config.join.memory_budget_bytes = 1;  // forces max fan-out on every join
  Result<core::ArdaReport> report = core::Arda(config).Run(s.task);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  bool any_injected = false;
  for (const core::SkippedCandidate& skip : report->skipped_candidates) {
    if (skip.reason.find("injected fault") != std::string::npos) {
      any_injected = true;
    }
  }
  EXPECT_TRUE(any_injected);
  EXPECT_GT(report->augmented.NumRows(), 0u);
}

TEST(FaultInjectionTest, StatsDecodeFaultFallsBackToCsv) {
  FaultGuard guard;
  namespace fs = std::filesystem;
  const std::string data_dir = ::testing::TempDir() + "/arda_fault_stats";
  const std::string cache_dir = data_dir + "_cache";
  fs::remove_all(data_dir);
  fs::remove_all(cache_dir);
  fs::create_directories(data_dir);
  Scenario s;
  MakeScenario(&s);
  ASSERT_TRUE(df::WriteCsvFile(s.task.base, data_dir + "/base.csv").ok());

  // Warm the cache so the second load reaches the stats meta-block
  // decoder, then arm it: a corrupt/unreadable stats block must degrade
  // the whole cached read to the CSV path (skips.ingest), never crash.
  discovery::DataRepository warm;
  ASSERT_TRUE(warm.LoadDirectory(data_dir, cache_dir, {}, nullptr).ok());

  ASSERT_TRUE(fault::SetFaultSpecForTest("stats_decode").ok());
  fault::ResetFaultCounters();
  metrics::GlobalRegistry().ResetForTest();
  discovery::DataRepository repo;
  discovery::LoadStats stats;
  ASSERT_TRUE(repo.LoadDirectory(data_dir, cache_dir, {}, &stats).ok());
  EXPECT_TRUE(repo.Has("base"));
  EXPECT_EQ(stats.tables_loaded, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  ASSERT_EQ(stats.fallbacks.size(), 1u);
  EXPECT_NE(stats.fallbacks[0].reason.find("injected fault"),
            std::string::npos);
  EXPECT_EQ(
      metrics::GlobalRegistry().Snapshot().CounterValue("skips.ingest"),
      1u);
  // The table is still fully usable (re-parsed), and stats can be
  // recomputed on demand despite the unreadable cached catalog.
  EXPECT_NE(repo.Stats("base"), nullptr);
  fs::remove_all(data_dir);
  fs::remove_all(cache_dir);
}

TEST(FaultInjectionTest, CliReportsIngestSkipUnderColumnarFault) {
  FaultGuard guard;
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/arda_fault_cli_cache";
  const std::string cache_dir = dir + "/cache";
  fs::remove_all(dir);
  fs::create_directories(dir);
  Scenario s;
  MakeScenario(&s);
  ASSERT_TRUE(df::WriteCsvFile(s.task.base, dir + "/base.csv").ok());
  ASSERT_TRUE(
      df::WriteCsvFile(*s.repo.Get("wea").value(), dir + "/wea.csv").ok());

  tools::CliOptions options;
  options.data_dir = dir;
  options.base_table = "base";
  options.target = "y";
  options.num_threads = 1;
  options.table_cache = cache_dir;
  options.report_json = dir + "/report.json";

  // First run warms the cache; second run hits it with columnar_read
  // armed, so every cached table degrades to CSV and the run's report
  // lists the fallbacks as `ingest` skips (exit status still 0).
  Status first = tools::RunCli(options);
  ASSERT_TRUE(first.ok()) << first.ToString();
  ASSERT_TRUE(fs::exists(cache_dir + "/base.ardac"));

  ASSERT_TRUE(fault::SetFaultSpecForTest("columnar_read").ok());
  fault::ResetFaultCounters();
  metrics::GlobalRegistry().ResetForTest();
  Status second = tools::RunCli(options);
  EXPECT_TRUE(second.ok()) << second.ToString();

  std::ifstream in(dir + "/report.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"skipped_candidates\""), std::string::npos);
  EXPECT_NE(json.find("\"ingest\""), std::string::npos);
  EXPECT_NE(json.find("injected fault at site 'columnar_read'"),
            std::string::npos);
  // Counter/report lockstep holds for ingest skips too: two tables fell
  // back, two skips.ingest increments, two report entries.
  EXPECT_NE(json.find("\"skips.ingest\": 2"), std::string::npos);
  fs::remove_all(dir);
}

TEST(FaultInjectionTest, CliCompletesAndReportsSkipsUnderFault) {
  FaultGuard guard;
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/arda_fault_cli";
  fs::create_directories(dir);
  Scenario s;
  MakeScenario(&s);
  ASSERT_TRUE(
      df::WriteCsvFile(s.task.base, dir + "/base.csv").ok());
  ASSERT_TRUE(
      df::WriteCsvFile(*s.repo.Get("wea").value(), dir + "/wea.csv").ok());

  ASSERT_TRUE(fault::SetFaultSpecForTest("impute").ok());
  tools::CliOptions options;
  options.data_dir = dir;
  options.base_table = "base";
  options.target = "y";
  options.num_threads = 1;
  options.report_json = dir + "/report.json";
  // RunCli returning Ok is what arda_cli_main maps to exit code 0.
  Status status = tools::RunCli(options);
  EXPECT_TRUE(status.ok()) << status.ToString();

  std::ifstream in(dir + "/report.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"skipped_candidates\""), std::string::npos);
  EXPECT_NE(json.find("injected fault at site 'impute'"), std::string::npos);
  std::remove((dir + "/report.json").c_str());
  std::remove((dir + "/base.csv").c_str());
  std::remove((dir + "/wea.csv").c_str());
}

}  // namespace
}  // namespace arda
