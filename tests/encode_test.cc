#include <gtest/gtest.h>

#include "dataframe/encode.h"

namespace arda::df {
namespace {

DataFrame MakeFrame() {
  DataFrame frame;
  EXPECT_TRUE(frame.AddColumn(Column::Double("num", {1.0, 2.0, 3.0})).ok());
  EXPECT_TRUE(
      frame.AddColumn(Column::String("color", {"red", "blue", "red"})).ok());
  EXPECT_TRUE(frame.AddColumn(Column::Int64("target", {0, 1, 0})).ok());
  return frame;
}

TEST(EncodeTest, NumericPassThroughAndOneHot) {
  EncodedFeatures encoded = EncodeFeatures(MakeFrame(), {"target"});
  // num + color=blue + color=red.
  ASSERT_EQ(encoded.names.size(), 3u);
  EXPECT_EQ(encoded.names[0], "num");
  EXPECT_EQ(encoded.names[1], "color=blue");
  EXPECT_EQ(encoded.names[2], "color=red");
  EXPECT_EQ(encoded.x.rows(), 3u);
  EXPECT_DOUBLE_EQ(encoded.x(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(encoded.x(0, 2), 1.0);  // row 0 is red
  EXPECT_DOUBLE_EQ(encoded.x(1, 1), 1.0);  // row 1 is blue
  EXPECT_DOUBLE_EQ(encoded.x(1, 2), 0.0);
}

TEST(EncodeTest, ExcludeSkipsColumns) {
  EncodedFeatures encoded = EncodeFeatures(MakeFrame(), {"target", "color"});
  ASSERT_EQ(encoded.names.size(), 1u);
  EXPECT_EQ(encoded.names[0], "num");
}

TEST(EncodeTest, SourceColumnTracksOrigin) {
  EncodedFeatures encoded = EncodeFeatures(MakeFrame(), {"target"});
  EXPECT_EQ(encoded.source_column[0], 0u);  // num
  EXPECT_EQ(encoded.source_column[1], 1u);  // color=blue
  EXPECT_EQ(encoded.source_column[2], 1u);  // color=red
}

TEST(EncodeTest, NullNumericImputedWithMedian) {
  DataFrame frame;
  Column c = Column::Empty("v", DataType::kDouble);
  c.AppendDouble(1.0);
  c.AppendNull();
  c.AppendDouble(3.0);
  ASSERT_TRUE(frame.AddColumn(std::move(c)).ok());
  EncodedFeatures encoded = EncodeFeatures(frame, {});
  EXPECT_DOUBLE_EQ(encoded.x(1, 0), 2.0);  // median of {1, 3}
}

TEST(EncodeTest, NullNumericZeroFillOption) {
  DataFrame frame;
  Column c = Column::Empty("v", DataType::kDouble);
  c.AppendDouble(4.0);
  c.AppendNull();
  ASSERT_TRUE(frame.AddColumn(std::move(c)).ok());
  EncodeOptions options;
  options.impute_numeric_nulls = false;
  EncodedFeatures encoded = EncodeFeatures(frame, {}, options);
  EXPECT_DOUBLE_EQ(encoded.x(1, 0), 0.0);
}

TEST(EncodeTest, NullCategoryGetsIndicator) {
  DataFrame frame;
  Column c = Column::Empty("s", DataType::kString);
  c.AppendString("a");
  c.AppendNull();
  ASSERT_TRUE(frame.AddColumn(std::move(c)).ok());
  EncodedFeatures encoded = EncodeFeatures(frame, {});
  ASSERT_EQ(encoded.names.size(), 2u);
  EXPECT_EQ(encoded.names[1], "s=<null>");
  EXPECT_DOUBLE_EQ(encoded.x(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(encoded.x(0, 1), 0.0);
}

TEST(EncodeTest, HighCardinalityCollapsesToOther) {
  DataFrame frame;
  std::vector<std::string> values;
  for (int i = 0; i < 30; ++i) values.push_back("v" + std::to_string(i % 10));
  // Make v0 dominant.
  for (int i = 0; i < 20; ++i) values.push_back("v0");
  ASSERT_TRUE(frame.AddColumn(Column::String("s", values)).ok());
  EncodeOptions options;
  options.max_categories = 3;
  EncodedFeatures encoded = EncodeFeatures(frame, {}, options);
  // 3 categories + <other>.
  ASSERT_EQ(encoded.names.size(), 4u);
  EXPECT_EQ(encoded.names.back(), "s=<other>");
  // Every row is in exactly one bucket.
  for (size_t r = 0; r < encoded.x.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < encoded.x.cols(); ++c) sum += encoded.x(r, c);
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(EncodeTest, EmptyFrame) {
  DataFrame frame;
  EncodedFeatures encoded = EncodeFeatures(frame, {});
  EXPECT_EQ(encoded.x.rows(), 0u);
  EXPECT_EQ(encoded.names.size(), 0u);
}

TEST(EncodeTest, Int64ColumnsAreNumeric) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column::Int64("i", {5, 6})).ok());
  EncodedFeatures encoded = EncodeFeatures(frame, {});
  EXPECT_DOUBLE_EQ(encoded.x(1, 0), 6.0);
}

}  // namespace
}  // namespace arda::df
