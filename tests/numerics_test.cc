// Cross-model numeric agreement tests: independent implementations must
// converge to the same answers in regimes where theory says they
// coincide, which catches silent solver bugs no single-model test can.

#include <gtest/gtest.h>

#include <cmath>

#include "la/linalg.h"
#include "ml/automl.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/sparse_regression.h"
#include "util/rng.h"

namespace arda {
namespace {

struct LinearProblem {
  la::Matrix x;
  std::vector<double> y;
  std::vector<double> truth;
};

LinearProblem MakeProblem(size_t n, size_t d, double noise, uint64_t seed) {
  Rng rng(seed);
  LinearProblem p;
  p.x = la::Matrix(n, d);
  p.y.resize(n);
  p.truth.resize(d);
  for (size_t c = 0; c < d; ++c) p.truth[c] = rng.Uniform(-3.0, 3.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t c = 0; c < d; ++c) {
      p.x(i, c) = rng.Normal();
      acc += p.truth[c] * p.x(i, c);
    }
    p.y[i] = acc + rng.Normal(0.0, noise);
  }
  return p;
}

TEST(NumericsTest, LassoAtTinyAlphaMatchesRidgeAtTinyLambda) {
  LinearProblem p = MakeProblem(300, 5, 0.01, 1);
  ml::Lasso lasso(1e-6, 2000, 1e-10);
  lasso.Fit(p.x, p.y);
  ml::RidgeRegression ridge(1e-8);
  ridge.Fit(p.x, p.y);
  std::vector<double> lp = lasso.Predict(p.x);
  std::vector<double> rp = ridge.Predict(p.x);
  for (size_t i = 0; i < lp.size(); ++i) {
    EXPECT_NEAR(lp[i], rp[i], 1e-3);
  }
}

TEST(NumericsTest, RidgeSolveMatchesDirectNormalEquations) {
  LinearProblem p = MakeProblem(120, 4, 0.0, 2);
  const double lambda = 0.5;
  Result<std::vector<double>> solved = la::RidgeSolve(p.x, p.y, lambda);
  ASSERT_TRUE(solved.ok());
  std::vector<double> via_solver = std::move(solved).value();
  // Direct: (X^T X + lambda I) w = X^T y through explicit products.
  la::Matrix xt = p.x.Transposed();
  la::Matrix gram = xt.Multiply(p.x);
  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  Result<std::vector<double>> direct =
      la::SolveSpd(gram, p.x.TransposeMultiplyVec(p.y));
  ASSERT_TRUE(direct.ok());
  for (size_t c = 0; c < via_solver.size(); ++c) {
    EXPECT_NEAR(via_solver[c], (*direct)[c], 1e-8);
  }
}

TEST(NumericsTest, SparseRegressionApproachesRidgeFitAtZeroGamma) {
  LinearProblem p = MakeProblem(200, 4, 0.05, 3);
  ml::SparseRegressionConfig config;
  config.task = ml::TaskType::kRegression;
  config.gamma = 0.0;
  config.max_iters = 3000;
  config.learning_rate = 0.02;
  ml::L21SparseRegression sparse(config);
  sparse.Fit(p.x, p.y);
  ml::RidgeRegression ridge(1e-6);
  ridge.Fit(p.x, p.y);
  // Same model family at gamma=0: predictions should roughly agree.
  double sparse_mae = ml::MeanAbsoluteError(p.y, sparse.Predict(p.x));
  double ridge_mae = ml::MeanAbsoluteError(p.y, ridge.Predict(p.x));
  EXPECT_LT(sparse_mae, 3.0 * ridge_mae + 0.1);
}

TEST(NumericsTest, LargerGammaGivesSparserRows) {
  LinearProblem p = MakeProblem(150, 10, 0.05, 4);
  // Only 2 informative features; enough target noise that an unpenalized
  // fit puts real weight on the junk columns.
  Rng noise_rng(44);
  for (size_t i = 0; i < 150; ++i) {
    p.y[i] = 3.0 * p.x(i, 0) - 2.0 * p.x(i, 1) + noise_rng.Normal(0.0, 0.8);
  }
  auto norms_at = [&](double gamma) {
    ml::SparseRegressionConfig config;
    config.task = ml::TaskType::kRegression;
    config.gamma = gamma;
    ml::L21SparseRegression model(config);
    model.Fit(p.x, p.y);
    return model.FeatureNorms();
  };
  std::vector<double> soft = norms_at(0.0);
  std::vector<double> hard = norms_at(2.0);
  double soft_tail = 0.0, hard_tail = 0.0;
  for (size_t c = 2; c < 10; ++c) {
    soft_tail += soft[c];
    hard_tail += hard[c];
  }
  EXPECT_LT(hard_tail, soft_tail);  // stronger penalty shrinks junk rows
}

TEST(NumericsTest, LogisticAndSvmAgreeOnSeparableData) {
  Rng rng(5);
  la::Matrix x(200, 2);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    bool positive = i % 2 == 0;
    y[i] = positive ? 1.0 : 0.0;
    x(i, 0) = rng.Normal(positive ? 3.0 : -3.0, 0.5);
    x(i, 1) = rng.Normal();
  }
  ml::LogisticRegression logistic;
  logistic.Fit(x, y);
  ml::LinearSvm svm;
  svm.Fit(x, y);
  EXPECT_EQ(logistic.Predict(x), svm.Predict(x));  // both perfect
}

TEST(NumericsTest, CholeskyReconstructsInput) {
  Rng rng(6);
  const size_t n = 8;
  // Build SPD A = B B^T + I.
  la::Matrix b(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) b(i, j) = rng.Normal();
  }
  la::Matrix a = b.Multiply(b.Transposed());
  for (size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  Result<la::Matrix> l = la::Cholesky(a);
  ASSERT_TRUE(l.ok());
  la::Matrix reconstructed = l->Multiply(l->Transposed());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(reconstructed(i, j), a(i, j), 1e-9);
    }
  }
}

TEST(NumericsTest, AutoMlDeterministicForSeed) {
  LinearProblem p = MakeProblem(120, 3, 0.2, 7);
  ml::Dataset data;
  data.x = p.x;
  data.y = p.y;
  data.task = ml::TaskType::kRegression;
  for (size_t c = 0; c < 3; ++c) {
    data.feature_names.push_back("f" + std::to_string(c));
  }
  ml::AutoMlConfig config;
  config.max_configs = 8;
  config.time_budget_seconds = 60.0;  // count-capped, not time-capped
  config.seed = 11;
  ml::AutoMlResult a = ml::RunRandomSearchAutoMl(data, config);
  ml::AutoMlResult b = ml::RunRandomSearchAutoMl(data, config);
  EXPECT_EQ(a.configs_tried, b.configs_tried);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.best_config, b.best_config);
}

}  // namespace
}  // namespace arda
