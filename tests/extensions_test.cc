#include <gtest/gtest.h>

#include <cmath>

#include "discovery/transitive.h"
#include "featsel/significance.h"
#include "join/geo_join.h"
#include "join/transitive_join.h"

namespace arda {
namespace {

using discovery::CandidateJoin;
using discovery::JoinKeyPair;
using discovery::KeyKind;

// ------------------------------------------------------------ geo join --

df::DataFrame MakeGeoBase() {
  df::DataFrame base;
  EXPECT_TRUE(
      base.AddColumn(df::Column::Double("lat", {0.0, 10.0, 5.0})).ok());
  EXPECT_TRUE(
      base.AddColumn(df::Column::Double("lon", {0.0, 10.0, 5.0})).ok());
  return base;
}

df::DataFrame MakeGeoForeign() {
  df::DataFrame foreign;
  EXPECT_TRUE(foreign
                  .AddColumn(df::Column::Double(
                      "lat", {0.5, 9.0, 100.0}))
                  .ok());
  EXPECT_TRUE(foreign
                  .AddColumn(df::Column::Double(
                      "lon", {0.5, 9.5, 100.0}))
                  .ok());
  EXPECT_TRUE(foreign
                  .AddColumn(df::Column::Double("v", {1.0, 2.0, 3.0}))
                  .ok());
  return foreign;
}

CandidateJoin GeoCandidate() {
  CandidateJoin cand;
  cand.foreign_table = "geo";
  cand.keys = {JoinKeyPair{"lat", "lat", KeyKind::kSoft},
               JoinKeyPair{"lon", "lon", KeyKind::kSoft}};
  return cand;
}

TEST(GeoJoinTest, MatchesNearestIn2D) {
  Rng rng(1);
  join::GeoJoinOptions options;
  options.normalize = false;
  Result<df::DataFrame> joined = join::ExecuteGeoLeftJoin(
      MakeGeoBase(), MakeGeoForeign(), GeoCandidate(), options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 1.0);  // (0,0)->(0.5,0.5)
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(1), 2.0);  // (10,10)->(9,9.5)
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(2), 2.0);  // (5,5)->(9,9.5)
}

TEST(GeoJoinTest, ToleranceProducesNulls) {
  Rng rng(2);
  join::GeoJoinOptions options;
  options.normalize = false;
  options.tolerance = 2.0;
  Result<df::DataFrame> joined = join::ExecuteGeoLeftJoin(
      MakeGeoBase(), MakeGeoForeign(), GeoCandidate(), options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_FALSE(joined->col("v").IsNull(0));
  EXPECT_FALSE(joined->col("v").IsNull(1));
  EXPECT_TRUE(joined->col("v").IsNull(2));  // (5,5) is ~6.0 away
}

TEST(GeoJoinTest, NormalizationBalancesDimensions) {
  // lat spans 0..1, lon spans 0..1000. Without normalization lon
  // dominates; with it both count equally.
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Double("lat", {0.0, 1.0})).ok());
  ASSERT_TRUE(
      base.AddColumn(df::Column::Double("lon", {0.0, 1000.0})).ok());
  df::DataFrame foreign;
  // Candidate A: perfect lat, lon off by 400 (0.4 normalized).
  // Candidate B: lat off by 1 (1.0 normalized), perfect lon.
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("lat", {0.0, 1.0})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("lon", {400.0, 0.0})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {1.0, 2.0})).ok());
  Rng rng(3);
  join::GeoJoinOptions options;  // normalize = true
  Result<df::DataFrame> joined = join::ExecuteGeoLeftJoin(
      base, foreign, GeoCandidate(), options, &rng);
  ASSERT_TRUE(joined.ok());
  // Base row 0 at (0, 0): A is 0.4 away normalized, B is 1.0 -> picks A.
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 1.0);
}

TEST(GeoJoinTest, HardKeyPartitions) {
  df::DataFrame base;
  ASSERT_TRUE(
      base.AddColumn(df::Column::String("city", {"a", "b"})).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("lat", {0.0, 0.0})).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("lon", {0.0, 0.0})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::String("city", {"a", "b"})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("lat", {5.0, 0.1})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("lon", {5.0, 0.1})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {1.0, 2.0})).ok());
  CandidateJoin cand = GeoCandidate();
  cand.keys.insert(cand.keys.begin(),
                   JoinKeyPair{"city", "city", KeyKind::kHard});
  Rng rng(4);
  join::GeoJoinOptions options;
  options.normalize = false;
  Result<df::DataFrame> joined =
      join::ExecuteGeoLeftJoin(base, foreign, cand, options, &rng);
  ASSERT_TRUE(joined.ok());
  // Row 0 ("a") must match the far "a" point, not the near "b" point.
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 1.0);
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(1), 2.0);
}

TEST(GeoJoinTest, RejectsFewerThanTwoSoftDims) {
  df::DataFrame base = MakeGeoBase();
  df::DataFrame foreign = MakeGeoForeign();
  CandidateJoin cand;
  cand.foreign_table = "geo";
  cand.keys = {JoinKeyPair{"lat", "lat", KeyKind::kSoft}};
  Rng rng(5);
  EXPECT_FALSE(
      join::ExecuteGeoLeftJoin(base, foreign, cand, {}, &rng).ok());
}

TEST(GeoJoinTest, DuplicateCoordinatesPreAggregated) {
  df::DataFrame base = MakeGeoBase();
  df::DataFrame foreign;
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("lat", {0.0, 0.0})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("lon", {0.0, 0.0})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("v", {10.0, 20.0})).ok());
  Rng rng(6);
  join::GeoJoinOptions options;
  options.normalize = false;
  Result<df::DataFrame> joined = join::ExecuteGeoLeftJoin(
      base, foreign, GeoCandidate(), options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 15.0);  // mean
}

// ----------------------------------------------------- transitive joins --

discovery::DataRepository MakeChainRepo() {
  discovery::DataRepository repo;
  // base(order_id, customer_id, y) -> customers(customer_id, zip)
  //   -> zip_stats(zip, income)
  df::DataFrame base;
  EXPECT_TRUE(
      base.AddColumn(df::Column::Int64("order_id", {1, 2, 3, 4})).ok());
  EXPECT_TRUE(
      base.AddColumn(df::Column::Int64("customer_id", {10, 11, 10, 12}))
          .ok());
  EXPECT_TRUE(
      base.AddColumn(df::Column::Double("y", {1.0, 2.0, 3.0, 4.0})).ok());
  EXPECT_TRUE(repo.Add("orders", std::move(base)).ok());

  df::DataFrame customers;
  EXPECT_TRUE(
      customers.AddColumn(df::Column::Int64("customer_id", {10, 11, 12}))
          .ok());
  EXPECT_TRUE(customers
                  .AddColumn(df::Column::String(
                      "zip", {"z1", "z2", "z1"}))
                  .ok());
  EXPECT_TRUE(repo.Add("customers", std::move(customers)).ok());

  df::DataFrame zip_stats;
  EXPECT_TRUE(
      zip_stats.AddColumn(df::Column::String("zip", {"z1", "z2"})).ok());
  EXPECT_TRUE(
      zip_stats.AddColumn(df::Column::Double("income", {50.0, 70.0}))
          .ok());
  EXPECT_TRUE(repo.Add("zip_stats", std::move(zip_stats)).ok());
  return repo;
}

TEST(TransitiveTest, DiscoversTwoHopPath) {
  discovery::DataRepository repo = MakeChainRepo();
  std::vector<discovery::TransitiveCandidate> paths =
      discovery::DiscoverTransitiveCandidates(repo, "orders", "y");
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].via_table, "customers");
  EXPECT_EQ(paths[0].final_table, "zip_stats");
  EXPECT_EQ(paths[0].base_to_via[0].base_column, "customer_id");
  EXPECT_EQ(paths[0].via_to_final[0].base_column, "zip");
  EXPECT_EQ(paths[0].MaterializedName(), "customers+zip_stats");
}

TEST(TransitiveTest, MaterializeBridgesTables) {
  discovery::DataRepository repo = MakeChainRepo();
  std::vector<discovery::TransitiveCandidate> paths =
      discovery::DiscoverTransitiveCandidates(repo, "orders", "y");
  ASSERT_EQ(paths.size(), 1u);
  Rng rng(7);
  Result<CandidateJoin> bridged = join::MaterializeTransitive(
      &repo, paths[0], join::JoinOptions{}, &rng);
  ASSERT_TRUE(bridged.ok());
  ASSERT_TRUE(repo.Has("customers+zip_stats"));

  // Joining the bridge to the base pulls zip-level income to each order.
  const df::DataFrame& orders = repo.GetOrDie("orders");
  Result<df::DataFrame> joined = join::ExecuteLeftJoin(
      orders, repo.GetOrDie(bridged->foreign_table), *bridged,
      join::JoinOptions{}, &rng);
  ASSERT_TRUE(joined.ok());
  ASSERT_TRUE(joined->HasColumn("income"));
  EXPECT_DOUBLE_EQ(joined->col("income").DoubleAt(0), 50.0);  // cust 10/z1
  EXPECT_DOUBLE_EQ(joined->col("income").DoubleAt(1), 70.0);  // cust 11/z2
  EXPECT_DOUBLE_EQ(joined->col("income").DoubleAt(3), 50.0);  // cust 12/z1
}

TEST(TransitiveTest, MissingTableFails) {
  discovery::DataRepository repo = MakeChainRepo();
  discovery::TransitiveCandidate path;
  path.via_table = "ghost";
  path.final_table = "zip_stats";
  Rng rng(8);
  EXPECT_FALSE(
      join::MaterializeTransitive(&repo, path, join::JoinOptions{}, &rng)
          .ok());
}

// ------------------------------------------------------- significance --

ml::Dataset MakeBaseData(size_t n, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.task = ml::TaskType::kRegression;
  data.x = la::Matrix(n, 1);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.Normal();
    data.y[i] = data.x(i, 0) + rng.Normal(0.0, 1.0);
  }
  data.feature_names = {"weak"};
  return data;
}

TEST(SignificanceTest, RealAugmentationIsSignificant) {
  ml::Dataset base = MakeBaseData(300, 11);
  // Augmented: add a feature that explains most of the residual.
  ml::Dataset augmented = base;
  Rng rng(12);
  la::Matrix strong(300, 1);
  for (size_t i = 0; i < 300; ++i) {
    strong(i, 0) = base.y[i] - base.x(i, 0) + rng.Normal(0.0, 0.2);
  }
  augmented.x = base.x.HStack(strong);
  augmented.feature_names.push_back("strong");

  featsel::SignificanceOptions options;
  options.num_splits = 8;
  featsel::SignificanceResult result =
      featsel::TestAugmentationSignificance(base, augmented, options);
  EXPECT_GT(result.mean_improvement, 0.0);
  EXPECT_TRUE(result.SignificantAt(0.05)) << "p=" << result.p_value;
  EXPECT_EQ(result.split_improvements.size(), 8u);
}

TEST(SignificanceTest, NoiseAugmentationIsNotSignificant) {
  ml::Dataset base = MakeBaseData(300, 13);
  ml::Dataset augmented = base;
  Rng rng(14);
  la::Matrix junk(300, 3);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t c = 0; c < 3; ++c) junk(i, c) = rng.Normal();
  }
  augmented.x = base.x.HStack(junk);
  augmented.feature_names.insert(augmented.feature_names.end(),
                                 {"j1", "j2", "j3"});

  featsel::SignificanceOptions options;
  options.num_splits = 8;
  featsel::SignificanceResult result =
      featsel::TestAugmentationSignificance(base, augmented, options);
  EXPECT_FALSE(result.SignificantAt(0.01)) << "p=" << result.p_value;
}

TEST(SignificanceTest, PValueInUnitInterval) {
  ml::Dataset base = MakeBaseData(100, 15);
  featsel::SignificanceOptions options;
  options.num_splits = 4;
  options.num_permutations = 200;
  featsel::SignificanceResult result =
      featsel::TestAugmentationSignificance(base, base, options);
  EXPECT_GT(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
}

}  // namespace
}  // namespace arda
