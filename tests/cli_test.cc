#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dataframe/csv.h"
#include "tools/cli.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace arda::tools {
namespace {

namespace fs = std::filesystem;

TEST(CliParseTest, RequiredFlags) {
  Result<CliOptions> options = ParseCliArgs(
      {"--data=/tmp/x", "--base=sales", "--target=y"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->data_dir, "/tmp/x");
  EXPECT_EQ(options->base_table, "sales");
  EXPECT_EQ(options->target, "y");
  EXPECT_EQ(options->selector, "rifs");
  EXPECT_EQ(options->task, "regression");
}

TEST(CliParseTest, MissingRequiredFails) {
  EXPECT_FALSE(ParseCliArgs({"--data=/tmp/x"}).ok());
  EXPECT_FALSE(ParseCliArgs({}).ok());
}

TEST(CliParseTest, HelpSkipsValidation) {
  Result<CliOptions> options = ParseCliArgs({"--help"});
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(options->show_help);
  EXPECT_FALSE(CliUsage().empty());
}

TEST(CliParseTest, UnknownFlagFails) {
  EXPECT_FALSE(ParseCliArgs({"--bogus=1"}).ok());
}

TEST(CliParseTest, AllOptionalFlags) {
  Result<CliOptions> options = ParseCliArgs(
      {"--data=d", "--base=b", "--target=t", "--task=classification",
       "--selector=f_test", "--plan=full", "--soft-join=nearest",
       "--output=out.csv", "--seed=99"});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->task, "classification");
  EXPECT_EQ(options->selector, "f_test");
  EXPECT_EQ(options->plan, "full");
  EXPECT_EQ(options->soft_join, "nearest");
  EXPECT_EQ(options->output, "out.csv");
  EXPECT_EQ(options->seed, 99u);
}

TEST(CliParseTest, BadValuesFail) {
  EXPECT_FALSE(ParseCliArgs({"--data=d", "--base=b", "--target=t",
                             "--task=clustering"})
                   .ok());
  EXPECT_FALSE(ParseCliArgs({"--data=d", "--base=b", "--target=t",
                             "--seed=abc"})
                   .ok());
}

TEST(CliConfigTest, TranslatesPlanAndSoftJoin) {
  CliOptions options;
  options.plan = "table";
  options.soft_join = "hard";
  options.selector = "mutual_info";
  options.seed = 5;
  Result<core::ArdaConfig> config = MakeConfig(options);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->plan, core::JoinPlanKind::kTableAtATime);
  EXPECT_EQ(config->join.soft_method, join::SoftJoinMethod::kHardExact);
  EXPECT_EQ(config->selector, "mutual_info");
  EXPECT_EQ(config->seed, 5u);
}

TEST(CliConfigTest, RejectsBadPlanAndSoftJoin) {
  CliOptions options;
  options.plan = "spiral";
  EXPECT_FALSE(MakeConfig(options).ok());
  options.plan = "budget";
  options.soft_join = "psychic";
  EXPECT_FALSE(MakeConfig(options).ok());
}

TEST(CliRunTest, EndToEndOverTempCsvDir) {
  fs::path dir = fs::path(testing::TempDir()) / "arda_cli_test";
  fs::create_directories(dir);
  Rng rng(3);
  std::string base_csv = "id,x,y\n";
  std::string lookup_csv = "id,hidden\n";
  for (int i = 0; i < 150; ++i) {
    double hidden = rng.Normal();
    double x = rng.Normal();
    base_csv += StrFormat("%d,%.6f,%.6f\n", i, x,
                          x + 3.0 * hidden + rng.Normal(0.0, 0.1));
    lookup_csv += StrFormat("%d,%.6f\n", i, hidden);
  }
  {
    std::ofstream f(dir / "sales.csv");
    f << base_csv;
  }
  {
    std::ofstream f(dir / "lookup.csv");
    f << lookup_csv;
  }

  CliOptions options;
  options.data_dir = dir.string();
  options.base_table = "sales";
  options.target = "y";
  options.output = (dir / "augmented.csv").string();
  Status status = RunCli(options);
  EXPECT_TRUE(status.ok()) << status.ToString();

  Result<df::DataFrame> augmented =
      df::ReadCsvFile((dir / "augmented.csv").string());
  ASSERT_TRUE(augmented.ok());
  EXPECT_TRUE(augmented->HasColumn("hidden"));
  fs::remove_all(dir);
}

TEST(CliRunTest, MissingDirectoryFails) {
  CliOptions options;
  options.data_dir = "/nonexistent/arda";
  options.base_table = "x";
  options.target = "y";
  EXPECT_FALSE(RunCli(options).ok());
}

TEST(CliRunTest, MissingBaseTableFails) {
  fs::path dir = fs::path(testing::TempDir()) / "arda_cli_empty";
  fs::create_directories(dir);
  CliOptions options;
  options.data_dir = dir.string();
  options.base_table = "ghost";
  options.target = "y";
  EXPECT_FALSE(RunCli(options).ok());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace arda::tools
