// Assorted edge cases across modules: geo-join corner inputs, model
// hyperparameter extremes, and small-input behavior that the main suites
// do not reach.

#include <gtest/gtest.h>

#include <cmath>

#include "join/geo_join.h"
#include "ml/decision_tree.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/svm_rbf.h"
#include "util/rng.h"

namespace arda {
namespace {

using discovery::CandidateJoin;
using discovery::JoinKeyPair;
using discovery::KeyKind;

CandidateJoin GeoCandidate() {
  CandidateJoin cand;
  cand.foreign_table = "geo";
  cand.keys = {JoinKeyPair{"lat", "lat", KeyKind::kSoft},
               JoinKeyPair{"lon", "lon", KeyKind::kSoft}};
  return cand;
}

TEST(GeoEdgeTest, NullBaseCoordinatesYieldNulls) {
  df::DataFrame base;
  df::Column lat = df::Column::Empty("lat", df::DataType::kDouble);
  lat.AppendDouble(0.0);
  lat.AppendNull();
  ASSERT_TRUE(base.AddColumn(std::move(lat)).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("lon", {0.0, 0.0})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("lat", {0.1})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("lon", {0.1})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {7.0})).ok());
  Rng rng(1);
  Result<df::DataFrame> joined =
      join::ExecuteGeoLeftJoin(base, foreign, GeoCandidate(), {}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_FALSE(joined->col("v").IsNull(0));
  EXPECT_TRUE(joined->col("v").IsNull(1));
}

TEST(GeoEdgeTest, EmptyForeignYieldsAllNulls) {
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Double("lat", {0.0})).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("lon", {0.0})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign
                  .AddColumn(df::Column::Empty("lat",
                                               df::DataType::kDouble))
                  .ok());
  ASSERT_TRUE(foreign
                  .AddColumn(df::Column::Empty("lon",
                                               df::DataType::kDouble))
                  .ok());
  ASSERT_TRUE(foreign
                  .AddColumn(df::Column::Empty("v", df::DataType::kDouble))
                  .ok());
  Rng rng(2);
  Result<df::DataFrame> joined =
      join::ExecuteGeoLeftJoin(base, foreign, GeoCandidate(), {}, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->col("v").IsNull(0));
}

TEST(GeoEdgeTest, ThreeDimensionalKeyWorks) {
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Double("lat", {0.0})).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("lon", {0.0})).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("alt", {100.0})).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("lat", {0.0, 0.0})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("lon", {0.0, 0.0})).ok());
  ASSERT_TRUE(
      foreign.AddColumn(df::Column::Double("alt", {90.0, 500.0})).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("v", {1.0, 2.0})).ok());
  CandidateJoin cand = GeoCandidate();
  cand.keys.push_back(JoinKeyPair{"alt", "alt", KeyKind::kSoft});
  Rng rng(3);
  join::GeoJoinOptions options;
  options.normalize = false;
  Result<df::DataFrame> joined =
      join::ExecuteGeoLeftJoin(base, foreign, cand, options, &rng);
  ASSERT_TRUE(joined.ok());
  EXPECT_DOUBLE_EQ(joined->col("v").DoubleAt(0), 1.0);  // alt 90 closer
}

TEST(ModelEdgeTest, RbfSvmCustomGammaStillLearns) {
  Rng rng(4);
  la::Matrix x(120, 2);
  std::vector<double> y(120);
  for (size_t i = 0; i < 120; ++i) {
    bool positive = i % 2 == 0;
    y[i] = positive ? 1.0 : 0.0;
    x(i, 0) = rng.Normal(positive ? 1.5 : -1.5, 0.5);
    x(i, 1) = rng.Normal();
  }
  ml::RbfSvmConfig config;
  config.gamma = 0.5;
  ml::RbfSvm svm(config);
  svm.Fit(x, y);
  EXPECT_GT(ml::Accuracy(y, svm.Predict(x)), 0.9);
}

TEST(ModelEdgeTest, ForestBootstrapFractionShrinksTrees) {
  Rng rng(5);
  la::Matrix x(300, 2);
  std::vector<double> y(300);
  for (size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    y[i] = x(i, 0);
  }
  ml::ForestConfig config;
  config.task = ml::TaskType::kRegression;
  config.num_trees = 5;
  config.bootstrap_fraction = 0.1;  // 30-row bootstraps
  ml::RandomForest forest(config);
  forest.Fit(x, y);
  // Still trains and predicts finitely.
  for (double p : forest.Predict(x)) EXPECT_TRUE(std::isfinite(p));
}

TEST(ModelEdgeTest, TreeMinImpurityDecreaseBlocksWeakSplits) {
  Rng rng(6);
  la::Matrix x(200, 1);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.Normal();
    y[i] = rng.Normal();  // no signal at all
  }
  ml::TreeConfig strict;
  strict.task = ml::TaskType::kRegression;
  strict.min_impurity_decrease = 1e9;
  ml::DecisionTree tree(strict);
  tree.Fit(x, y);
  EXPECT_EQ(tree.NumNodes(), 1u);  // nothing clears the bar
}

TEST(ModelEdgeTest, LogisticImportancesLengthMatchesFeatures) {
  Rng rng(7);
  la::Matrix x(90, 4);
  std::vector<double> y(90);
  for (size_t i = 0; i < 90; ++i) {
    for (size_t c = 0; c < 4; ++c) x(i, c) = rng.Normal();
    y[i] = static_cast<double>(i % 3);
  }
  ml::LogisticRegression model(1e-3, 40);
  model.Fit(x, y);
  EXPECT_EQ(model.CoefImportances().size(), 4u);
  for (double v : model.CoefImportances()) {
    EXPECT_GE(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(MetricsEdgeTest, MacroF1WithLabelAbsentFromPredictions) {
  // Class 2 never predicted: its F1 contributes 0, not NaN.
  double f1 = ml::MacroF1({0, 1, 2}, {0, 1, 0});
  EXPECT_GE(f1, 0.0);
  EXPECT_TRUE(std::isfinite(f1));
}

TEST(MetricsEdgeTest, R2WorseThanMeanIsNegative) {
  EXPECT_LT(ml::R2Score({1, 2, 3}, {30, -10, 50}), 0.0);
}

}  // namespace
}  // namespace arda
