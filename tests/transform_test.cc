#include <gtest/gtest.h>

#include "core/report_io.h"
#include "dataframe/transform.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace arda {
namespace {

df::DataFrame MakeFrame() {
  df::DataFrame frame;
  EXPECT_TRUE(
      frame.AddColumn(df::Column::Double("v", {3.0, 1.0, 2.0, 4.0})).ok());
  EXPECT_TRUE(
      frame.AddColumn(df::Column::String("s", {"b", "a", "a", "c"})).ok());
  return frame;
}

TEST(TransformTest, FilterByPredicate) {
  df::DataFrame out = df::Filter(
      MakeFrame(), [](const df::DataFrame& f, size_t r) {
        return f.col("v").DoubleAt(r) > 2.0;
      });
  EXPECT_EQ(out.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(out.col("v").DoubleAt(0), 3.0);
  EXPECT_DOUBLE_EQ(out.col("v").DoubleAt(1), 4.0);
}

TEST(TransformTest, FilterNumericRangeDropsNulls) {
  df::DataFrame frame;
  df::Column v = df::Column::Empty("v", df::DataType::kDouble);
  v.AppendDouble(1.0);
  v.AppendNull();
  v.AppendDouble(5.0);
  ASSERT_TRUE(frame.AddColumn(std::move(v)).ok());
  Result<df::DataFrame> out = df::FilterNumericRange(frame, "v", 0.0, 2.0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 1u);
  EXPECT_FALSE(df::FilterNumericRange(frame, "nope", 0, 1).ok());
}

TEST(TransformTest, FilterNumericRangeRejectsStrings) {
  EXPECT_FALSE(df::FilterNumericRange(MakeFrame(), "s", 0, 1).ok());
}

TEST(TransformTest, FilterEquals) {
  Result<df::DataFrame> out = df::FilterEquals(MakeFrame(), "s", "a");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 2u);
  EXPECT_FALSE(df::FilterEquals(MakeFrame(), "v", "a").ok());
}

TEST(TransformTest, SortByNumericAscendingAndDescending) {
  Result<df::DataFrame> ascending = df::SortBy(MakeFrame(), "v");
  ASSERT_TRUE(ascending.ok());
  EXPECT_DOUBLE_EQ(ascending->col("v").DoubleAt(0), 1.0);
  EXPECT_DOUBLE_EQ(ascending->col("v").DoubleAt(3), 4.0);
  Result<df::DataFrame> descending = df::SortBy(MakeFrame(), "v", false);
  ASSERT_TRUE(descending.ok());
  EXPECT_DOUBLE_EQ(descending->col("v").DoubleAt(0), 4.0);
}

TEST(TransformTest, SortByStringNullsLast) {
  df::DataFrame frame;
  df::Column s = df::Column::Empty("s", df::DataType::kString);
  s.AppendString("z");
  s.AppendNull();
  s.AppendString("a");
  ASSERT_TRUE(frame.AddColumn(std::move(s)).ok());
  Result<df::DataFrame> out = df::SortBy(frame, "s");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->col("s").StringAt(0), "a");
  EXPECT_EQ(out->col("s").StringAt(1), "z");
  EXPECT_TRUE(out->col("s").IsNull(2));
}

TEST(TransformTest, AddComputedColumn) {
  df::DataFrame frame = MakeFrame();
  Status st = df::AddComputedColumn(
      &frame, "v2", [](const df::DataFrame& f, size_t r) {
        return f.col("v").DoubleAt(r) * 2.0;
      });
  ASSERT_TRUE(st.ok());
  EXPECT_DOUBLE_EQ(frame.col("v2").DoubleAt(0), 6.0);
  // Name collision fails.
  EXPECT_FALSE(df::AddComputedColumn(&frame, "v2",
                                     [](const df::DataFrame&, size_t) {
                                       return 0.0;
                                     })
                   .ok());
}

TEST(KnnTest, ClassificationOnBlobs) {
  Rng rng(5);
  la::Matrix x(200, 2);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    bool positive = i % 2 == 0;
    y[i] = positive ? 1.0 : 0.0;
    x(i, 0) = rng.Normal(positive ? 2.0 : -2.0, 0.6);
    x(i, 1) = rng.Normal();
  }
  ml::KnnConfig config;
  config.task = ml::TaskType::kClassification;
  ml::KNearestNeighbors knn(config);
  knn.Fit(x, y);
  EXPECT_GT(ml::Accuracy(y, knn.Predict(x)), 0.95);
}

TEST(KnnTest, RegressionInterpolates) {
  la::Matrix x(5, 1, std::vector<double>{0, 1, 2, 3, 4});
  std::vector<double> y = {0, 10, 20, 30, 40};
  ml::KnnConfig config;
  config.task = ml::TaskType::kRegression;
  config.k = 2;
  ml::KNearestNeighbors knn(config);
  knn.Fit(x, y);
  la::Matrix query(1, 1, std::vector<double>{1.5});
  // 2 nearest of 1.5 are 1 and 2 -> mean 15.
  EXPECT_NEAR(knn.Predict(query)[0], 15.0, 1e-9);
}

TEST(KnnTest, DistanceWeightingPullsTowardCloserNeighbor) {
  la::Matrix x(2, 1, std::vector<double>{0.0, 10.0});
  std::vector<double> y = {0.0, 100.0};
  ml::KnnConfig config;
  config.task = ml::TaskType::kRegression;
  config.k = 2;
  config.distance_weighted = true;
  ml::KNearestNeighbors knn(config);
  knn.Fit(x, y);
  la::Matrix query(1, 1, std::vector<double>{1.0});
  EXPECT_LT(knn.Predict(query)[0], 50.0);  // closer to 0 than to 10
}

TEST(ReportIoTest, JsonEscaping) {
  EXPECT_EQ(core::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(core::JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(core::JsonEscape("line\nbreak"), "line\\nbreak");
}

TEST(ReportIoTest, SerializesReportFields) {
  core::ArdaReport report;
  report.base_score = -2.5;
  report.final_score = -1.25;
  report.tables_considered = 4;
  report.tables_joined = 2;
  core::BatchLog batch;
  batch.tables = {"weather", "events"};
  batch.accepted = true;
  batch.features_considered = 10;
  batch.features_kept = 3;
  report.batches.push_back(batch);
  ASSERT_TRUE(report.augmented
                  .AddColumn(df::Column::Double("x", {1.0}))
                  .ok());
  report.selected_features = {"x", "weather.temp"};

  std::string json = core::ReportToJson(report);
  EXPECT_NE(json.find("\"base_score\": -2.5"), std::string::npos);
  EXPECT_NE(json.find("\"final_score\": -1.25"), std::string::npos);
  EXPECT_NE(json.find("\"improvement_percent\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"tables_joined\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"weather\""), std::string::npos);
  EXPECT_NE(json.find("\"accepted\": true"), std::string::npos);
  EXPECT_NE(json.find("\"augmented_rows\": 1"), std::string::npos);
}

TEST(ReportIoTest, WritesFile) {
  core::ArdaReport report;
  std::string path = testing::TempDir() + "/arda_report.json";
  ASSERT_TRUE(core::WriteReportJson(report, path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(core::WriteReportJson(report, "/no/such/dir/x.json").ok());
}

}  // namespace
}  // namespace arda
