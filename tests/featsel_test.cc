#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "featsel/rifs.h"
#include "featsel/search.h"
#include "featsel/selector.h"
#include "featsel/wrappers.h"
#include "util/rng.h"

namespace arda::featsel {
namespace {

// `signal` informative features followed by `noise` pure-noise features.
ml::Dataset MakeDataset(ml::TaskType task, size_t n, size_t signal,
                        size_t noise, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.task = task;
  data.x = la::Matrix(n, signal + noise);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool positive = i % 2 == 0;
    double acc = 0.0;
    for (size_t c = 0; c < signal; ++c) {
      data.x(i, c) = rng.Normal(positive ? 1.0 : -1.0, 0.9);
      acc += data.x(i, c);
    }
    for (size_t c = signal; c < signal + noise; ++c) {
      data.x(i, c) = rng.Normal();
    }
    data.y[i] = task == ml::TaskType::kClassification
                    ? (positive ? 1.0 : 0.0)
                    : acc + rng.Normal(0.0, 0.3);
  }
  for (size_t c = 0; c < signal + noise; ++c) {
    data.feature_names.push_back((c < signal ? "sig" : "noise") +
                                 std::to_string(c));
  }
  return data;
}

size_t CountSignal(const std::vector<size_t>& selected, size_t signal) {
  size_t count = 0;
  for (size_t f : selected) count += f < signal;
  return count;
}

TEST(ExponentialSearchTest, SelectsGoodPrefix) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 300, 3, 12, 1);
  ml::Evaluator evaluator(data, 0.25, 7);
  // Perfect ranking: signal first.
  std::vector<double> ranking(15);
  for (size_t c = 0; c < 15; ++c) {
    ranking[c] = c < 3 ? 10.0 - static_cast<double>(c) : 0.1;
  }
  SearchResult result = ExponentialSearchSelect(ranking, evaluator);
  EXPECT_FALSE(result.selected.empty());
  EXPECT_GE(CountSignal(result.selected, 3), 2u);
  EXPECT_GT(result.score, 0.85);
  // Exponential search trains O(log d) models, far fewer than d.
  EXPECT_LE(result.evaluations, 10u);
}

TEST(ExponentialSearchTest, SingleFeature) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 100, 1, 0, 2);
  ml::Evaluator evaluator(data, 0.25, 7);
  SearchResult result = ExponentialSearchSelect({1.0}, evaluator);
  EXPECT_EQ(result.selected.size(), 1u);
}

TEST(LinearPrefixSearchTest, FindsBestPrefixButCostsMore) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 200, 2, 8, 3);
  ml::Evaluator evaluator(data, 0.25, 7);
  std::vector<double> ranking(10);
  for (size_t c = 0; c < 10; ++c) ranking[c] = 10.0 - static_cast<double>(c);
  SearchResult linear = LinearPrefixSearchSelect(ranking, evaluator);
  EXPECT_EQ(linear.evaluations, 10u);  // one per prefix
  SearchResult capped = LinearPrefixSearchSelect(ranking, evaluator, 4);
  EXPECT_EQ(capped.evaluations, 4u);
  EXPECT_GE(linear.score, capped.score);
}

TEST(ForwardSelectionTest, KeepsSignalDropsNoise) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 250, 3, 10, 4);
  ml::Evaluator evaluator(data, 0.25, 7);
  Rng rng(11);
  SearchResult result = ForwardSelection(data, evaluator, &rng);
  EXPECT_GE(CountSignal(result.selected, 3), 2u);
  EXPECT_GT(result.score, 0.8);
}

TEST(ForwardSelectionTest, RespectsEvaluationCap) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 150, 2, 20, 5);
  ml::Evaluator evaluator(data, 0.25, 7);
  Rng rng(12);
  WrapperConfig config;
  config.max_evaluations = 6;
  SearchResult result = ForwardSelection(data, evaluator, &rng, config);
  EXPECT_LE(result.evaluations, 6u);
}

TEST(BackwardEliminationTest, RemovesNoiseFeatures) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 250, 3, 8, 6);
  ml::Evaluator evaluator(data, 0.25, 7);
  Rng rng(13);
  SearchResult result = BackwardElimination(data, evaluator, &rng);
  EXPECT_LT(result.selected.size(), 11u);
  EXPECT_GE(CountSignal(result.selected, 3), 2u);
}

TEST(RfeTest, ShrinksToInformativeCore) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 250, 3, 12, 7);
  ml::Evaluator evaluator(data, 0.25, 7);
  Rng rng(14);
  SearchResult result = RecursiveFeatureElimination(data, evaluator, &rng);
  EXPECT_FALSE(result.selected.empty());
  EXPECT_GT(result.score, 0.8);
}

TEST(NoiseInjectionTest, MakeNoiseShapes) {
  ml::Dataset data = MakeDataset(ml::TaskType::kRegression, 50, 2, 2, 8);
  Rng rng(15);
  for (NoiseKind kind :
       {NoiseKind::kMomentMatched, NoiseKind::kGaussian, NoiseKind::kUniform,
        NoiseKind::kBernoulli, NoiseKind::kPoisson}) {
    la::Matrix noise = MakeNoiseFeatures(data, 3, kind, &rng);
    EXPECT_EQ(noise.rows(), 50u);
    EXPECT_EQ(noise.cols(), 3u);
  }
  EXPECT_STREQ(NoiseKindName(NoiseKind::kMomentMatched), "moment_matched");
}

TEST(NoiseInjectionTest, MomentMatchedNoiseResemblesData) {
  // Moment-matched noise should reproduce the per-row mean structure of
  // the feature population.
  ml::Dataset data;
  data.task = ml::TaskType::kRegression;
  data.x = la::Matrix(3, 50);
  Rng seed_rng(16);
  for (size_t c = 0; c < 50; ++c) {
    data.x(0, c) = seed_rng.Normal(100.0, 1.0);
    data.x(1, c) = seed_rng.Normal(-50.0, 1.0);
    data.x(2, c) = seed_rng.Normal(0.0, 1.0);
  }
  data.y = {0.0, 0.0, 0.0};
  Rng rng(17);
  // Disable row permutation to test the raw Algorithm-2 sampler.
  la::Matrix noise = MakeNoiseFeatures(data, 200, NoiseKind::kMomentMatched,
                                       &rng, /*permute_moment_noise=*/false);
  EXPECT_NEAR(la::Mean(noise.Row(0)), 100.0, 2.0);
  EXPECT_NEAR(la::Mean(noise.Row(1)), -50.0, 2.0);
}

TEST(RifsTest, SelectsSignalFiltersNoise) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 260, 3, 15, 9);
  ml::Evaluator evaluator(data, 0.25, 7);
  RifsConfig config;
  config.num_rounds = 10;
  Rng rng(18);
  RifsResult result = RunRifs(data, evaluator, config, &rng);
  EXPECT_GE(CountSignal(result.selected, 3), 2u);
  // The selection must be dominated by signal: of the 15 noise features,
  // at most a handful survive.
  EXPECT_LE(result.selected.size() - CountSignal(result.selected, 3), 4u);
  EXPECT_GT(result.score, 0.8);
  ASSERT_EQ(result.beat_noise_fraction.size(), 18u);
  // Signal features beat noise in (almost) every round.
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_GT(result.beat_noise_fraction[c], 0.5);
  }
}

TEST(RifsTest, BeatNoiseFractionInUnitRange) {
  ml::Dataset data = MakeDataset(ml::TaskType::kRegression, 150, 2, 6, 10);
  ml::Evaluator evaluator(data, 0.25, 7);
  RifsConfig config;
  config.num_rounds = 4;
  Rng rng(19);
  RifsResult result = RunRifs(data, evaluator, config, &rng);
  for (double f : result.beat_noise_fraction) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_GT(result.chosen_threshold, 0.0);
}

TEST(RifsTest, AllNoiseInputStillReturnsSomething) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 120, 0, 8, 11);
  // Overwrite labels with coin flips so no feature carries signal.
  Rng flip(20);
  for (double& label : data.y) label = flip.Bernoulli(0.5) ? 1.0 : 0.0;
  ml::Evaluator evaluator(data, 0.25, 7);
  RifsConfig config;
  config.num_rounds = 4;
  Rng rng(21);
  RifsResult result = RunRifs(data, evaluator, config, &rng);
  EXPECT_FALSE(result.selected.empty());  // fallback keeps best feature
}

TEST(RifsTest, PureForestEnsembleWeight) {
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 200, 2, 8, 12);
  ml::Evaluator evaluator(data, 0.25, 7);
  RifsConfig config;
  config.num_rounds = 4;
  config.nu = 1.0;  // RF-only ranking
  Rng rng(22);
  RifsResult result = RunRifs(data, evaluator, config, &rng);
  EXPECT_GE(CountSignal(result.selected, 2), 1u);
}

// Selector registry sweep.
class SelectorProperty : public testing::TestWithParam<const char*> {};

TEST_P(SelectorProperty, RegistryProducesWorkingSelector) {
  std::unique_ptr<FeatureSelector> selector = MakeSelector(GetParam());
  ASSERT_NE(selector, nullptr);
  EXPECT_EQ(selector->name(), GetParam());
  ml::TaskType task = selector->SupportsTask(ml::TaskType::kClassification)
                          ? ml::TaskType::kClassification
                          : ml::TaskType::kRegression;
  ml::Dataset data = MakeDataset(task, 200, 2, 8, 13);
  ml::Evaluator evaluator(data, 0.25, 7);
  Rng rng(23);
  SelectionResult result = selector->Select(data, evaluator, &rng);
  EXPECT_EQ(result.method, GetParam());
  EXPECT_FALSE(result.selected.empty());
  EXPECT_GE(result.seconds, 0.0);
  // Selected indices are valid and unique.
  std::set<size_t> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), result.selected.size());
  for (size_t f : result.selected) EXPECT_LT(f, 10u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSelectors, SelectorProperty,
    testing::Values("rifs", "all_features", "forward_selection",
                    "backward_selection", "rfe", "random_forest",
                    "sparse_regression", "mutual_info", "f_test", "pearson",
                    "lasso", "relief", "linear_svc", "logistic_reg"));

TEST(SelectorRegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeSelector("nope"), nullptr);
}

TEST(SelectorRegistryTest, PaperNamesFilteredByTask) {
  std::vector<std::string> classification =
      PaperSelectorNames(ml::TaskType::kClassification);
  std::vector<std::string> regression =
      PaperSelectorNames(ml::TaskType::kRegression);
  auto has = [](const std::vector<std::string>& names, const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has(classification, "logistic_reg"));
  EXPECT_FALSE(has(classification, "lasso"));
  EXPECT_TRUE(has(regression, "lasso"));
  EXPECT_FALSE(has(regression, "linear_svc"));
  EXPECT_TRUE(has(regression, "rifs"));
}

TEST(SelectorRegistryTest, AllFeaturesSelectsEverything) {
  std::unique_ptr<FeatureSelector> selector = MakeSelector("all_features");
  ml::Dataset data = MakeDataset(ml::TaskType::kClassification, 100, 2, 3, 14);
  ml::Evaluator evaluator(data, 0.25, 7);
  Rng rng(24);
  SelectionResult result = selector->Select(data, evaluator, &rng);
  EXPECT_EQ(result.selected.size(), 5u);
  EXPECT_DOUBLE_EQ(result.seconds, 0.0);
}

TEST(SelectorRegistryTest, CustomRifsConfigName) {
  RifsConfig config;
  config.noise = NoiseKind::kGaussian;
  std::unique_ptr<FeatureSelector> selector =
      MakeRifsSelector(config, "rifs_gaussian");
  EXPECT_EQ(selector->name(), "rifs_gaussian");
}

}  // namespace
}  // namespace arda::featsel
