#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/split.h"

namespace arda::ml {
namespace {

TEST(MetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({1, 1}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, AccuracyRoundsPredictions) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0}, {0.9, 0.1}), 1.0);
}

TEST(MetricsTest, MacroF1PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2}, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1({0, 0}, {1, 1}), 0.0);
}

TEST(MetricsTest, MacroF1Asymmetric) {
  // Class 0: tp=1 fp=1 fn=0 -> f1 = 2/3; class 1: tp=1 fp=0 fn=1 -> 2/3.
  double f1 = MacroF1({0, 1, 1}, {0, 0, 1});
  EXPECT_NEAR(f1, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, RegressionErrors) {
  std::vector<double> truth = {1, 2, 3};
  std::vector<double> pred = {2, 2, 1};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError(truth, pred), 5.0 / 3.0);
  EXPECT_NEAR(RootMeanSquaredError(truth, pred), std::sqrt(5.0 / 3.0),
              1e-12);
}

TEST(MetricsTest, R2PerfectIsOne) {
  EXPECT_DOUBLE_EQ(R2Score({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(MetricsTest, R2MeanPredictorIsZero) {
  EXPECT_DOUBLE_EQ(R2Score({1, 2, 3}, {2, 2, 2}), 0.0);
}

TEST(MetricsTest, HigherIsBetterScore) {
  EXPECT_DOUBLE_EQ(
      HigherIsBetterScore(TaskType::kClassification, {1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(
      HigherIsBetterScore(TaskType::kRegression, {1, 2}, {2, 3}), -1.0);
}

TEST(DatasetTest, NumClassesAndSelect) {
  Dataset data;
  data.task = TaskType::kClassification;
  data.x = la::Matrix(4, 3, std::vector<double>{1, 2, 3, 4, 5, 6,  //
                                                7, 8, 9, 10, 11, 12});
  data.y = {0, 2, 1, 2};
  data.feature_names = {"a", "b", "c"};
  EXPECT_EQ(data.NumClasses(), 3u);

  Dataset features = data.SelectFeatures({2, 0});
  EXPECT_EQ(features.NumFeatures(), 2u);
  EXPECT_EQ(features.feature_names,
            (std::vector<std::string>{"c", "a"}));
  EXPECT_DOUBLE_EQ(features.x(1, 0), 6.0);

  Dataset rows = data.SelectRows({3, 0});
  EXPECT_EQ(rows.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(rows.y[0], 2.0);
  EXPECT_DOUBLE_EQ(rows.x(0, 0), 10.0);
}

TEST(DatasetTest, RegressionHasNoClasses) {
  Dataset data;
  data.task = TaskType::kRegression;
  data.y = {1.5, 2.5};
  EXPECT_EQ(data.NumClasses(), 0u);
}

TEST(DatasetTest, DistinctLabels) {
  EXPECT_EQ(DistinctLabels({2, 0, 2, 1}), (std::vector<int>{0, 1, 2}));
}

Dataset MakeClassData(size_t n) {
  Dataset data;
  data.task = TaskType::kClassification;
  data.x = la::Matrix(n, 2);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.y[i] = static_cast<double>(i % 4 == 0);  // 25% positives
    data.x(i, 0) = static_cast<double>(i);
  }
  data.feature_names = {"a", "b"};
  return data;
}

TEST(SplitTest, SizesMatchFraction) {
  Dataset data = MakeClassData(100);
  Rng rng(1);
  TrainTestSplit split = MakeTrainTestSplit(data, 0.25, &rng);
  EXPECT_EQ(split.test.NumRows(), 25u);
  EXPECT_EQ(split.train.NumRows(), 75u);
}

TEST(SplitTest, StratificationKeepsClassOnBothSides) {
  Dataset data = MakeClassData(40);
  Rng rng(2);
  TrainTestSplit split = MakeTrainTestSplit(data, 0.2, &rng);
  EXPECT_EQ(DistinctLabels(split.train.y).size(), 2u);
  EXPECT_EQ(DistinctLabels(split.test.y).size(), 2u);
}

TEST(SplitTest, IndicesPartitionRows) {
  Dataset data = MakeClassData(30);
  Rng rng(3);
  TrainTestSplit split = MakeTrainTestSplit(data, 0.3, &rng);
  std::vector<bool> seen(30, false);
  for (size_t i : split.train_indices) seen[i] = true;
  for (size_t i : split.test_indices) {
    EXPECT_FALSE(seen[i]);  // disjoint
    seen[i] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);  // exhaustive
}

TEST(SplitTest, RegressionSplit) {
  Dataset data = MakeClassData(50);
  data.task = TaskType::kRegression;
  Rng rng(4);
  TrainTestSplit split = MakeTrainTestSplit(data, 0.5, &rng);
  EXPECT_EQ(split.test.NumRows(), 25u);
}

TEST(KFoldTest, FoldsPartitionAndBalance) {
  Dataset data = MakeClassData(60);
  Rng rng(5);
  std::vector<std::vector<size_t>> folds = MakeKFoldIndices(data, 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<bool> seen(60, false);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.size(), 12u);
    for (size_t i : fold) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace arda::ml
