#include <gtest/gtest.h>

#include "dataframe/column.h"
#include "dataframe/data_frame.h"

namespace arda::df {
namespace {

Column MakeDoubles() {
  return Column::Double("d", {1.0, 2.0, 3.0});
}

TEST(ColumnTest, TypedConstructionAndAccess) {
  Column d = Column::Double("d", {1.5, 2.5});
  EXPECT_EQ(d.type(), DataType::kDouble);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.DoubleAt(1), 2.5);

  Column i = Column::Int64("i", {7, -2});
  EXPECT_EQ(i.Int64At(0), 7);
  EXPECT_DOUBLE_EQ(i.NumericAt(1), -2.0);

  Column s = Column::String("s", {"a", "b"});
  EXPECT_EQ(s.StringAt(1), "b");
  EXPECT_FALSE(s.IsNumeric());
}

TEST(ColumnTest, NullsTracked) {
  Column c = Column::Empty("c", DataType::kDouble);
  c.AppendDouble(1.0);
  c.AppendNull();
  c.AppendDouble(3.0);
  EXPECT_EQ(c.NullCount(), 1u);
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(0));
  c.SetDouble(1, 2.0);
  EXPECT_EQ(c.NullCount(), 0u);
  c.SetNull(0);
  EXPECT_TRUE(c.IsNull(0));
}

TEST(ColumnTest, AppendFromPreservesNulls) {
  Column src = Column::Empty("x", DataType::kString);
  src.AppendString("v");
  src.AppendNull();
  Column dst = Column::Empty("x", DataType::kString);
  dst.AppendFrom(src, 0);
  dst.AppendFrom(src, 1);
  EXPECT_EQ(dst.StringAt(0), "v");
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(ColumnTest, TakeReordersAndRepeats) {
  Column c = MakeDoubles();
  Column t = c.Take({2, 0, 0});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.DoubleAt(0), 3.0);
  EXPECT_DOUBLE_EQ(t.DoubleAt(1), 1.0);
  EXPECT_DOUBLE_EQ(t.DoubleAt(2), 1.0);
}

TEST(ColumnTest, MedianOddAndEven) {
  Column odd = Column::Double("o", {5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(odd.NumericMedian(), 3.0);
  Column even = Column::Double("e", {4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(even.NumericMedian(), 2.5);
}

TEST(ColumnTest, MedianIgnoresNulls) {
  Column c = Column::Empty("c", DataType::kDouble);
  c.AppendDouble(10.0);
  c.AppendNull();
  c.AppendDouble(20.0);
  EXPECT_DOUBLE_EQ(c.NumericMedian(), 15.0);
  EXPECT_DOUBLE_EQ(c.NumericMean(), 15.0);
}

TEST(ColumnTest, EmptyNumericStatsAreZero) {
  Column c = Column::Empty("c", DataType::kDouble);
  EXPECT_DOUBLE_EQ(c.NumericMedian(), 0.0);
  EXPECT_DOUBLE_EQ(c.NumericMean(), 0.0);
}

TEST(ColumnTest, DistinctValuesSortedAndNullFree) {
  Column c = Column::Empty("c", DataType::kString);
  c.AppendString("b");
  c.AppendString("a");
  c.AppendNull();
  c.AppendString("b");
  std::vector<std::string> distinct = c.DistinctValuesAsString();
  ASSERT_EQ(distinct.size(), 2u);
  EXPECT_EQ(distinct[0], "a");
  EXPECT_EQ(distinct[1], "b");
}

TEST(ColumnTest, ValueToString) {
  Column d = Column::Double("d", {2.5});
  EXPECT_EQ(d.ValueToString(0), "2.5");
  Column i = Column::Int64("i", {-3});
  EXPECT_EQ(i.ValueToString(0), "-3");
  Column n = Column::Empty("n", DataType::kDouble);
  n.AppendNull();
  EXPECT_EQ(n.ValueToString(0), "");
}

TEST(DataFrameTest, AddColumnEnforcesInvariants) {
  DataFrame frame;
  EXPECT_TRUE(frame.AddColumn(MakeDoubles()).ok());
  // Duplicate name.
  EXPECT_EQ(frame.AddColumn(MakeDoubles()).code(),
            StatusCode::kAlreadyExists);
  // Length mismatch.
  EXPECT_EQ(frame.AddColumn(Column::Double("e", {1.0})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(frame.NumRows(), 3u);
  EXPECT_EQ(frame.NumCols(), 1u);
}

DataFrame MakeFrame() {
  DataFrame frame;
  EXPECT_TRUE(frame.AddColumn(Column::Int64("id", {1, 2, 3})).ok());
  EXPECT_TRUE(frame.AddColumn(Column::Double("v", {0.1, 0.2, 0.3})).ok());
  EXPECT_TRUE(frame.AddColumn(Column::String("s", {"x", "y", "z"})).ok());
  return frame;
}

TEST(DataFrameTest, ColumnLookup) {
  DataFrame frame = MakeFrame();
  EXPECT_TRUE(frame.HasColumn("v"));
  EXPECT_FALSE(frame.HasColumn("nope"));
  EXPECT_EQ(frame.ColumnIndex("s"), 2u);
  EXPECT_EQ(frame.ColumnIndex("nope"), DataFrame::kNpos);
  EXPECT_EQ(frame.col("id").Int64At(2), 3);
}

TEST(DataFrameTest, SchemaAndNames) {
  DataFrame frame = MakeFrame();
  std::vector<Field> schema = frame.schema();
  ASSERT_EQ(schema.size(), 3u);
  EXPECT_EQ(schema[1].name, "v");
  EXPECT_EQ(schema[1].type, DataType::kDouble);
  EXPECT_EQ(frame.ColumnNames(),
            (std::vector<std::string>{"id", "v", "s"}));
}

TEST(DataFrameTest, TakeSelectsRows) {
  DataFrame frame = MakeFrame();
  DataFrame taken = frame.Take({2, 0});
  EXPECT_EQ(taken.NumRows(), 2u);
  EXPECT_EQ(taken.col("s").StringAt(0), "z");
  EXPECT_EQ(taken.col("id").Int64At(1), 1);
}

TEST(DataFrameTest, SelectAndDrop) {
  DataFrame frame = MakeFrame();
  Result<DataFrame> selected = frame.Select({"s", "id"});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->ColumnNames(),
            (std::vector<std::string>{"s", "id"}));
  EXPECT_FALSE(frame.Select({"missing"}).ok());

  DataFrame dropped = frame.Drop({"v", "not_there"});
  EXPECT_EQ(dropped.NumCols(), 2u);
  EXPECT_FALSE(dropped.HasColumn("v"));
}

TEST(DataFrameTest, RemoveAndRename) {
  DataFrame frame = MakeFrame();
  EXPECT_TRUE(frame.RemoveColumn("v").ok());
  EXPECT_FALSE(frame.RemoveColumn("v").ok());
  EXPECT_TRUE(frame.RenameColumn("s", "label").ok());
  EXPECT_TRUE(frame.HasColumn("label"));
  EXPECT_FALSE(frame.RenameColumn("label", "id").ok());  // collision
}

TEST(DataFrameTest, HStackPrefixesCollisions) {
  DataFrame a = MakeFrame();
  DataFrame b = MakeFrame();
  ASSERT_TRUE(a.HStack(b, "t.").ok());
  EXPECT_EQ(a.NumCols(), 6u);
  EXPECT_TRUE(a.HasColumn("t.id"));
  EXPECT_TRUE(a.HasColumn("t.v"));
}

TEST(DataFrameTest, HStackRowMismatchFails) {
  DataFrame a = MakeFrame();
  DataFrame b;
  ASSERT_TRUE(b.AddColumn(Column::Double("w", {1.0})).ok());
  EXPECT_FALSE(a.HStack(b, "t.").ok());
}

TEST(DataFrameTest, VStackAppendsRows) {
  DataFrame a = MakeFrame();
  DataFrame b = MakeFrame();
  ASSERT_TRUE(a.VStack(b).ok());
  EXPECT_EQ(a.NumRows(), 6u);
  EXPECT_EQ(a.col("s").StringAt(5), "z");
}

TEST(DataFrameTest, VStackSchemaMismatchFails) {
  DataFrame a = MakeFrame();
  DataFrame b = MakeFrame();
  ASSERT_TRUE(b.RenameColumn("v", "w").ok());
  EXPECT_FALSE(a.VStack(b).ok());
}

TEST(DataFrameTest, HeadRendersTable) {
  DataFrame frame = MakeFrame();
  std::string head = frame.Head(2);
  EXPECT_NE(head.find("id"), std::string::npos);
  EXPECT_NE(head.find("0.1"), std::string::npos);
  EXPECT_EQ(head.find("0.3"), std::string::npos);  // only 2 rows shown
}

}  // namespace
}  // namespace arda::df
