// Tests for the long-lived augmentation service and its lifecycle
// plumbing: the strict JSON wire model, cooperative interrupts (pipeline
// and CLI), one-time environment init, and ArdaService request handling —
// concurrent byte-identity against the one-shot pipeline, admission
// control, copy-on-write snapshot swaps on ingest, the two service fault
// legs, and graceful shutdown over a real socket.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/arda.h"
#include "core/options.h"
#include "core/report_io.h"
#include "discovery/repository.h"
#include "service/service.h"
#include "service/wire.h"
#include "simd/simd.h"
#include "tools/cli.h"
#include "util/fault.h"
#include "util/interrupt.h"
#include "util/json.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace arda {
namespace {

namespace fs = std::filesystem;

// --- JSON wire model ---

TEST(JsonTest, ParsesScalarsExactly) {
  Result<json::Value> v = json::Parse(
      "{\"b\":true,\"i\":-42,\"n\":null,\"s\":\"a\\nb\",\"x\":2.5}");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE(v->Find("n")->is_null());
  EXPECT_TRUE(v->BoolOr("b", false));
  EXPECT_EQ(v->IntOr("i", 0), -42);
  EXPECT_TRUE(v->Find("i")->IsExactInt64());
  EXPECT_DOUBLE_EQ(v->NumberOr("x", 0.0), 2.5);
  EXPECT_EQ(v->StringOr("s", ""), "a\nb");
  EXPECT_EQ(v->Find("missing"), nullptr);
  EXPECT_EQ(v->StringOr("missing", "fallback"), "fallback");
}

TEST(JsonTest, SerializeRoundTripsSortedAndEscaped) {
  std::map<std::string, json::Value> members;
  members.emplace("z", json::Value::MakeInt(7));
  members.emplace("a", json::Value::MakeString("q\"\\\n"));
  std::vector<json::Value> items;
  items.push_back(json::Value::MakeBool(false));
  items.push_back(json::Value::MakeNull());
  members.emplace("m", json::Value::MakeArray(std::move(items)));
  const std::string text =
      json::Serialize(json::Value::MakeObject(std::move(members)));
  EXPECT_EQ(text, "{\"a\":\"q\\\"\\\\\\n\",\"m\":[false,null],\"z\":7}");
  // Re-parsing the emitted bytes and re-serializing is a fixed point —
  // the property the canonical result-cache keys rely on.
  Result<json::Value> again = json::Parse(text);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(json::Serialize(*again), text);
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{\"a\":1,}").ok());    // trailing comma
  EXPECT_FALSE(json::Parse("{\"a\":1} x").ok());   // trailing garbage
  EXPECT_FALSE(json::Parse("{'a':1}").ok());       // single quotes
  EXPECT_FALSE(json::Parse("NaN").ok());           // no NaN literal
  EXPECT_FALSE(json::Parse("{\"a\":01}").ok());    // leading zero
}

TEST(JsonTest, DepthCapRejectsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 80; ++i) deep += ']';
  EXPECT_FALSE(json::Parse(deep).ok());
  // ...but reasonable nesting is fine.
  EXPECT_TRUE(json::Parse("[[[[[[[[1]]]]]]]]").ok());
}

// --- one-time environment init (regression: env reads are hoisted to
// explicit init and are idempotent, so a long-lived server never races
// getenv from worker threads) ---

TEST(EnvInitTest, RepeatedInitIsIdempotent) {
  fault::InitFromEnvironment();
  fault::InitFromEnvironment();
  simd::InitFromEnvironment();
  simd::InitFromEnvironment();
  const std::string level = simd::ActiveLevelName();
  EXPECT_TRUE(level == "scalar" || level == "avx2") << level;
  simd::InitFromEnvironment();
  EXPECT_EQ(level, simd::ActiveLevelName());
}

// --- shared CSV fixture (mirrors the cli_test layout) ---

struct ServiceDir {
  fs::path dir;
  explicit ServiceDir(const char* tag) {
    dir = fs::path(testing::TempDir()) / tag;
    fs::remove_all(dir);
    fs::create_directories(dir);
    Rng rng(3);
    std::string base_csv = "id,x,y\n";
    std::string lookup_csv = "id,hidden\n";
    for (int i = 0; i < 120; ++i) {
      double hidden = rng.Normal();
      double x = rng.Normal();
      base_csv += StrFormat("%d,%.6f,%.6f\n", i, x,
                            x + 3.0 * hidden + rng.Normal(0.0, 0.1));
      lookup_csv += StrFormat("%d,%.6f\n", i, hidden);
    }
    Write("sales.csv", base_csv);
    Write("lookup.csv", lookup_csv);
  }
  ~ServiceDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  void Write(const std::string& name, const std::string& text) {
    std::ofstream out(dir / name, std::ios::binary);
    out << text;
  }
};

// Runs the one-shot pipeline in-process over the fixture — the golden
// bytes every service response must match.
Result<std::string> ReferenceReport(const ServiceDir& data,
                                    uint64_t seed = 42) {
  discovery::DataRepository repo;
  discovery::LoadStats stats;
  ARDA_RETURN_IF_ERROR(
      repo.LoadDirectory(data.dir.string(), "", {}, &stats));
  core::RunOptions run_options;
  run_options.seed = seed;
  ARDA_ASSIGN_OR_RETURN(core::ArdaConfig config,
                        core::MakeArdaConfig(run_options));
  ARDA_ASSIGN_OR_RETURN(const df::DataFrame* base, repo.Get("sales"));
  core::AugmentationTask task;
  task.base = *base;
  task.target_column = "y";
  task.repo = &repo;
  task.base_table_name = "sales";
  core::Arda arda(config);
  ARDA_ASSIGN_OR_RETURN(core::ArdaReport report, arda.Run(task));
  return core::DeterministicReportJson(report);
}

std::string AugmentRequest(uint64_t seed = 42, int64_t threads = 0) {
  std::map<std::string, json::Value> members;
  members.emplace("type", json::Value::MakeString("augment"));
  members.emplace("base", json::Value::MakeString("sales"));
  members.emplace("target", json::Value::MakeString("y"));
  members.emplace("seed",
                  json::Value::MakeInt(static_cast<int64_t>(seed)));
  if (threads > 0) {
    members.emplace("threads", json::Value::MakeInt(threads));
  }
  return json::Serialize(json::Value::MakeObject(std::move(members)));
}

json::Value MustParse(const std::string& text) {
  Result<json::Value> parsed = json::Parse(text);
  ARDA_CHECK(parsed.ok());
  return std::move(*parsed);
}

// Disarms every fault on scope exit (same guard the fault matrix uses).
struct FaultGuard {
  ~FaultGuard() { ARDA_CHECK(fault::SetFaultSpecForTest("").ok()); }
};

// --- cooperative interrupt (pipeline + CLI legs) ---

TEST(InterruptTest, PipelineStopsAtBatchBoundaryAndMarksReport) {
  ServiceDir data("arda_svc_interrupt");
  discovery::DataRepository repo;
  ASSERT_TRUE(repo.LoadDirectory(data.dir.string(), "", {}, nullptr).ok());
  Result<core::ArdaConfig> config =
      core::MakeArdaConfig(core::RunOptions{});
  ASSERT_TRUE(config.ok());
  // Fires on the very first poll: no batch is ever decided, the final
  // estimate is skipped and final_score stays at the base score.
  config->interrupt_check = [] { return true; };
  Result<const df::DataFrame*> base = repo.Get("sales");
  ASSERT_TRUE(base.ok());
  core::AugmentationTask task;
  task.base = **base;
  task.target_column = "y";
  task.repo = &repo;
  task.base_table_name = "sales";
  core::Arda arda(*config);
  Result<core::ArdaReport> report = arda.Run(task);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->interrupted);
  // No batch was ever decided and no foreign column survived: the
  // augmented table is the (coreset) base schema, nothing selected.
  EXPECT_TRUE(report->batches.empty());
  EXPECT_TRUE(report->selected_features.empty());
  EXPECT_EQ(report->tables_joined, 0u);
  const std::string json = core::DeterministicReportJson(*report);
  EXPECT_NE(json.find("\"interrupted\": true"), std::string::npos);
}

TEST(InterruptTest, CliFlushesInterruptedReport) {
  ServiceDir data("arda_svc_cli_interrupt");
  tools::CliOptions options;
  options.data_dir = data.dir.string();
  options.base_table = "sales";
  options.target = "y";
  options.canonical_report = (data.dir / "canonical.json").string();
  interrupt::RequestInterrupt();
  Status status = tools::RunCli(options);
  interrupt::ResetForTest();
  ASSERT_TRUE(status.ok()) << status.ToString();
  // The canonical report was still written, marked interrupted.
  std::ifstream in(data.dir / "canonical.json");
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"interrupted\": true"), std::string::npos);
}

// --- ArdaService request handling ---

TEST(ServiceTest, PingReportsSnapshotAndMalformedRequestsError) {
  ServiceDir data("arda_svc_ping");
  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());

  json::Value ping = MustParse(server.HandleRequest("{\"type\":\"ping\"}"));
  EXPECT_EQ(ping.StringOr("status", ""), "ok");
  EXPECT_EQ(ping.StringOr("server", ""), "arda_serve");
  EXPECT_EQ(ping.IntOr("snapshot_generation", 0), 1);
  EXPECT_EQ(ping.IntOr("tables_loaded", 0), 2);

  json::Value bad = MustParse(server.HandleRequest("not json at all"));
  EXPECT_EQ(bad.StringOr("status", ""), "error");
  EXPECT_FALSE(bad.StringOr("error", "").empty());
  json::Value unknown =
      MustParse(server.HandleRequest("{\"type\":\"bogus\"}"));
  EXPECT_EQ(unknown.StringOr("status", ""), "error");

  json::Value stats = MustParse(server.HandleRequest("{\"type\":\"stats\"}"));
  EXPECT_EQ(stats.StringOr("status", ""), "ok");
  EXPECT_EQ(stats.IntOr("snapshot_generation", 0), 1);
  EXPECT_GE(stats.IntOr("requests_total", -1), 0);
}

TEST(ServiceTest, ConcurrentAugmentsAreByteIdenticalToPipeline) {
  ServiceDir data("arda_svc_identity");
  Result<std::string> reference = ReferenceReport(data);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  config.max_queue_depth = 8;
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 6;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &responses, i] {
      responses[i] = server.HandleRequest(AugmentRequest());
    });
  }
  for (std::thread& t : clients) t.join();

  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(responses[i], responses[0]) << "client " << i;
  }
  json::Value response = MustParse(responses[0]);
  ASSERT_EQ(response.StringOr("status", ""), "ok")
      << response.StringOr("error", "");
  EXPECT_EQ(response.IntOr("generation", 0), 1);
  // The embedded deterministic report matches the one-shot pipeline's
  // bytes exactly — the service adds no nondeterminism.
  EXPECT_EQ(response.StringOr("report_json", ""), *reference);

  // A different thread count is an execution knob, not a result knob:
  // same bytes (and the cache key excludes it, so this is also a hit).
  json::Value threaded =
      MustParse(server.HandleRequest(AugmentRequest(42, 4)));
  EXPECT_EQ(threaded.StringOr("report_json", ""), *reference);
}

TEST(ServiceTest, TelemetryEnabledAugmentsStayByteIdentical) {
  // The observability machinery (PR 9) is observation-only: with request
  // logging at debug, JSON records, and the slow-request breakdown armed
  // for every request, augment responses still match the one-shot
  // pipeline byte for byte and carry no request id.
  ServiceDir data("arda_svc_telemetry");
  Result<std::string> reference = ReferenceReport(data);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  std::vector<std::string> lines;
  log::SetSinkForTest([&lines](const std::string& line) {
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  log::SetLevel(log::Level::kDebug);
  log::SetFormat(log::Format::kJson);

  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  config.slow_request_ms = 0.000001;  // every request logs its breakdown
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      server.HandleRequest(AugmentRequest(), "c5-1");

  log::SetSinkForTest(nullptr);
  log::SetLevel(log::Level::kWarn);
  log::SetFormat(log::Format::kText);

  json::Value parsed = MustParse(response);
  ASSERT_EQ(parsed.StringOr("status", ""), "ok")
      << parsed.StringOr("error", "");
  EXPECT_EQ(parsed.StringOr("report_json", ""), *reference);
  EXPECT_EQ(response.find("request_id"), std::string::npos);
  EXPECT_FALSE(lines.empty());
}

TEST(ServiceTest, ResidentResultCacheServesRepeats) {
  ServiceDir data("arda_svc_cache");
  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());

  metrics::GlobalRegistry().ResetForTest();
  const std::string first = server.HandleRequest(AugmentRequest());
  EXPECT_EQ(metrics::GlobalRegistry().Snapshot().CounterValue(
                "service.result_cache_hits_total"),
            0u);
  const std::string second = server.HandleRequest(AugmentRequest());
  EXPECT_EQ(first, second);
  EXPECT_EQ(metrics::GlobalRegistry().Snapshot().CounterValue(
                "service.result_cache_hits_total"),
            1u);
  // A different seed is a different canonical key — no false sharing.
  const std::string other = server.HandleRequest(AugmentRequest(7));
  EXPECT_NE(other, first);
}

TEST(ServiceTest, AdmissionGateRejectsWhenSaturated) {
  ServiceDir data("arda_svc_overload");
  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  // Zero queue depth: every augment is over the bound, deterministically.
  config.max_queue_depth = 0;
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());

  json::Value response = MustParse(server.HandleRequest(AugmentRequest()));
  EXPECT_EQ(response.StringOr("status", ""), "overloaded");
  // Overload is not an error: pings still answer.
  json::Value ping = MustParse(server.HandleRequest("{\"type\":\"ping\"}"));
  EXPECT_EQ(ping.StringOr("status", ""), "ok");
}

TEST(ServiceTest, IngestSwapsSnapshotCopyOnWrite) {
  ServiceDir data("arda_svc_ingest");
  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());

  json::Value before = MustParse(server.HandleRequest(AugmentRequest()));
  ASSERT_EQ(before.StringOr("status", ""), "ok");
  EXPECT_EQ(before.IntOr("generation", 0), 1);

  // Replace the candidate table with a differently-named feature, then
  // ingest: generation bumps and new augments see the new data.
  Rng rng(11);
  std::string lookup_csv = "id,hidden2\n";
  for (int i = 0; i < 120; ++i) {
    lookup_csv += StrFormat("%d,%.6f\n", i, rng.Normal());
  }
  data.Write("lookup.csv", lookup_csv);

  json::Value ingest =
      MustParse(server.HandleRequest("{\"type\":\"ingest\"}"));
  ASSERT_EQ(ingest.StringOr("status", ""), "ok")
      << ingest.StringOr("error", "");
  EXPECT_EQ(ingest.IntOr("generation", 0), 2);
  EXPECT_EQ(server.snapshot_info().generation, 2u);

  json::Value after = MustParse(server.HandleRequest(AugmentRequest()));
  ASSERT_EQ(after.StringOr("status", ""), "ok");
  EXPECT_EQ(after.IntOr("generation", 0), 2);
  // The swapped-in data is visible: the candidate column changed from a
  // y-predictive signal to pure noise, so the report bytes change too.
  EXPECT_NE(after.StringOr("report_json", ""),
            before.StringOr("report_json", ""));
}

TEST(ServiceTest, IngestFaultKeepsOldSnapshotServing) {
  FaultGuard guard;
  ServiceDir data("arda_svc_ingest_fault");
  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());

  const std::string before = server.HandleRequest(AugmentRequest());
  ASSERT_EQ(MustParse(before).StringOr("status", ""), "ok");

  ASSERT_TRUE(fault::SetFaultSpecForTest("service_ingest").ok());
  json::Value ingest =
      MustParse(server.HandleRequest("{\"type\":\"ingest\"}"));
  EXPECT_EQ(ingest.StringOr("status", ""), "error");
  ASSERT_TRUE(fault::SetFaultSpecForTest("").ok());

  // The failed ingest left no trace: same generation, same bytes.
  EXPECT_EQ(server.snapshot_info().generation, 1u);
  EXPECT_EQ(server.HandleRequest(AugmentRequest()), before);
  // And a retry without the fault succeeds.
  json::Value retry =
      MustParse(server.HandleRequest("{\"type\":\"ingest\"}"));
  EXPECT_EQ(retry.StringOr("status", ""), "ok");
  EXPECT_EQ(server.snapshot_info().generation, 2u);
}

TEST(ServiceTest, MappedCacheServesIdenticalBytesAndSurvivesIngestRaces) {
  // Out-of-core serving mode (satellite of the mmap'd-repository work):
  // with map_cache on, fresh v3 caches are served through an mmap whose
  // lifetime is tied to the frames via shared ownership. A COW ingest
  // swap must therefore never unmap a table an in-flight augment still
  // reads — the old mapping dies only when the last reader drops its
  // snapshot — and the bytes served must equal the eager-load bytes.
  ServiceDir data("arda_svc_mmap");
  const fs::path cache_dir = data.dir / "cache";

  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  config.table_cache = cache_dir.string();
  config.map_cache = true;
  config.max_queue_depth = 16;
  service::ArdaService server(config);
  // First load parses CSVs and writes the caches (nothing to map yet).
  ASSERT_TRUE(server.Start().ok());
  const double mapped_before =
      metrics::GlobalRegistry().Snapshot().CounterValue(
          "ingest.columnar_map_tables");
  // Re-ingest: every cache is now fresh, so generation 2 serves through
  // the mmap path.
  json::Value ingest =
      MustParse(server.HandleRequest("{\"type\":\"ingest\"}"));
  ASSERT_EQ(ingest.StringOr("status", ""), "ok")
      << ingest.StringOr("error", "");
  EXPECT_GE(metrics::GlobalRegistry().Snapshot().CounterValue(
                "ingest.columnar_map_tables"),
            mapped_before + 2);

  // Byte identity: mapped tables produce the same report as the eager
  // one-shot pipeline.
  Result<std::string> reference = ReferenceReport(data);
  ASSERT_TRUE(reference.ok());
  json::Value mapped = MustParse(server.HandleRequest(AugmentRequest()));
  ASSERT_EQ(mapped.StringOr("status", ""), "ok")
      << mapped.StringOr("error", "");
  EXPECT_EQ(mapped.StringOr("report_json", ""), *reference);

  // Race the swap: augments (distinct seeds defeat the result cache) run
  // while the main thread rewrites a CSV and re-ingests, which rewrites
  // the mapped cache file (rename keeps the old inode alive) and swaps
  // the snapshot under the readers.
  constexpr int kClients = 4;
  constexpr int kRoundsPerClient = 3;
  std::vector<std::string> responses(kClients * kRoundsPerClient);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &responses, c] {
      for (int r = 0; r < kRoundsPerClient; ++r) {
        const uint64_t seed = 100 + static_cast<uint64_t>(c * 17 + r);
        responses[static_cast<size_t>(c * kRoundsPerClient + r)] =
            server.HandleRequest(AugmentRequest(seed));
      }
    });
  }
  Rng rng(23);
  for (int round = 0; round < 3; ++round) {
    std::string lookup_csv = "id,hidden\n";
    for (int i = 0; i < 120; ++i) {
      lookup_csv += StrFormat("%d,%.6f\n", i, rng.Normal());
    }
    data.Write("lookup.csv", lookup_csv);
    json::Value swap =
        MustParse(server.HandleRequest("{\"type\":\"ingest\"}"));
    ASSERT_EQ(swap.StringOr("status", ""), "ok")
        << swap.StringOr("error", "");
  }
  for (std::thread& t : clients) t.join();
  for (size_t i = 0; i < responses.size(); ++i) {
    json::Value response = MustParse(responses[i]);
    EXPECT_EQ(response.StringOr("status", ""), "ok")
        << "client response " << i << ": "
        << response.StringOr("error", "");
  }

  // After the dust settles, the served bytes again equal a fresh eager
  // run over the final data.
  Result<std::string> final_reference = ReferenceReport(data);
  ASSERT_TRUE(final_reference.ok());
  json::Value after = MustParse(server.HandleRequest(AugmentRequest()));
  ASSERT_EQ(after.StringOr("status", ""), "ok");
  EXPECT_EQ(after.StringOr("report_json", ""), *final_reference);
}

TEST(ServiceTest, AcceptFaultRejectsOneRequestAndServerSurvives) {
  FaultGuard guard;
  ServiceDir data("arda_svc_accept_fault");
  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(fault::SetFaultSpecForTest("service_accept:1").ok());
  json::Value faulted = MustParse(server.HandleRequest("{\"type\":\"ping\"}"));
  EXPECT_EQ(faulted.StringOr("status", ""), "error");
  json::Value next = MustParse(server.HandleRequest("{\"type\":\"ping\"}"));
  EXPECT_EQ(next.StringOr("status", ""), "ok");
}

TEST(ServiceTest, ShutdownDrainsAndRejectsNewWork) {
  ServiceDir data("arda_svc_shutdown");
  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());

  server.BeginShutdown();
  EXPECT_TRUE(server.ShutdownRequested());
  json::Value rejected = MustParse(server.HandleRequest(AugmentRequest()));
  EXPECT_EQ(rejected.StringOr("status", ""), "shutting_down");
  server.Wait();
}

#if defined(ARDA_HAVE_SOCKETS) || defined(__unix__) || defined(__APPLE__)
TEST(ServiceTest, SocketRoundTripAndShutdownRequest) {
  ServiceDir data("arda_svc_socket");
  service::ServiceConfig config;
  config.data_dir = data.dir.string();
  service::ArdaService server(config);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  Result<service::ServiceClient> client =
      service::ServiceClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::map<std::string, json::Value> ping;
  ping.emplace("type", json::Value::MakeString("ping"));
  Result<json::Value> pong =
      client->Call(json::Value::MakeObject(std::move(ping)));
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->StringOr("status", ""), "ok");

  // An augment over the wire returns the exact bytes the in-process
  // path produces (the socket layer is a dumb framed pipe).
  Result<std::string> wire = client->RoundTrip(AugmentRequest());
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(*wire, server.HandleRequest(AugmentRequest()));

  std::map<std::string, json::Value> bye;
  bye.emplace("type", json::Value::MakeString("shutdown"));
  Result<json::Value> ack =
      client->Call(json::Value::MakeObject(std::move(bye)));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->StringOr("status", ""), "ok");
  server.Wait();
  EXPECT_TRUE(server.ShutdownRequested());
}
#endif

}  // namespace
}  // namespace arda
