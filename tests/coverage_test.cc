// Remaining API corners: discovery without name matching, transitive
// multi-path ordering, evaluator/report round trips on a live pipeline
// run, small-model edge cases, and CHECK-abort death tests (programmer
// errors must fail loudly, not corrupt state).

#include <gtest/gtest.h>

#include "core/arda.h"
#include "core/report_io.h"
#include "discovery/discovery.h"
#include "discovery/transitive.h"
#include "la/linalg.h"
#include "ml/gradient_boosting.h"
#include "ml/knn.h"
#include "util/check.h"

namespace arda {
namespace {

TEST(DiscoveryNoNameMatchTest, FindsDifferentlyNamedKey) {
  discovery::DataRepository repo;
  df::DataFrame base;
  ASSERT_TRUE(
      base.AddColumn(df::Column::Int64("customer", {1, 2, 3})).ok());
  ASSERT_TRUE(
      base.AddColumn(df::Column::Double("y", {1.0, 2.0, 3.0})).ok());
  ASSERT_TRUE(repo.Add("base", std::move(base)).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("cust_id", {1, 2})).ok());
  ASSERT_TRUE(repo.Add("profiles", std::move(foreign)).ok());

  // Strict name matching misses the join...
  EXPECT_TRUE(discovery::DiscoverCandidates(repo, "base", "y").empty());
  // ...relaxing it finds the value overlap.
  discovery::DiscoveryOptions options;
  options.require_name_match = false;
  std::vector<discovery::CandidateJoin> candidates =
      discovery::DiscoverCandidates(repo, "base", "y", options);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].keys[0].base_column, "customer");
  EXPECT_EQ(candidates[0].keys[0].foreign_column, "cust_id");
}

TEST(TransitiveMultiPathTest, PathsSortedByScore) {
  discovery::DataRepository repo;
  df::DataFrame base;
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("k", {1, 2, 3, 4})).ok());
  ASSERT_TRUE(
      base.AddColumn(df::Column::Double("y", {1, 2, 3, 4})).ok());
  ASSERT_TRUE(repo.Add("base", std::move(base)).ok());
  // Strong via: full key overlap; weak via: partial overlap.
  df::DataFrame strong_via;
  ASSERT_TRUE(
      strong_via.AddColumn(df::Column::Int64("k", {1, 2, 3, 4})).ok());
  ASSERT_TRUE(
      strong_via.AddColumn(df::Column::Int64("z", {7, 8, 9, 10})).ok());
  ASSERT_TRUE(repo.Add("strong_via", std::move(strong_via)).ok());
  df::DataFrame weak_via;
  ASSERT_TRUE(
      weak_via.AddColumn(df::Column::Int64("k", {1, 90, 91, 92})).ok());
  ASSERT_TRUE(
      weak_via.AddColumn(df::Column::Int64("w", {5, 6, 7, 8})).ok());
  ASSERT_TRUE(repo.Add("weak_via", std::move(weak_via)).ok());
  // Two leaf tables reachable only through the vias.
  df::DataFrame leaf_z;
  ASSERT_TRUE(leaf_z.AddColumn(df::Column::Int64("z", {7, 8})).ok());
  ASSERT_TRUE(repo.Add("leaf_z", std::move(leaf_z)).ok());
  df::DataFrame leaf_w;
  ASSERT_TRUE(leaf_w.AddColumn(df::Column::Int64("w", {5, 6})).ok());
  ASSERT_TRUE(repo.Add("leaf_w", std::move(leaf_w)).ok());

  std::vector<discovery::TransitiveCandidate> paths =
      discovery::DiscoverTransitiveCandidates(repo, "base", "y");
  ASSERT_GE(paths.size(), 2u);
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].score, paths[i].score);
  }
  EXPECT_EQ(paths[0].via_table, "strong_via");
}

TEST(ReportJsonIntegrationTest, LivePipelineReportSerializes) {
  // Tiny end-to-end run, then serialize.
  Rng rng(42);
  discovery::DataRepository repo;
  df::DataFrame base;
  std::vector<int64_t> ids(80);
  std::vector<double> y(80), hidden(80);
  for (size_t i = 0; i < 80; ++i) {
    ids[i] = static_cast<int64_t>(i);
    hidden[i] = rng.Normal();
    y[i] = 3.0 * hidden[i] + rng.Normal(0.0, 0.2);
  }
  ASSERT_TRUE(base.AddColumn(df::Column::Int64("id", ids)).ok());
  ASSERT_TRUE(base.AddColumn(df::Column::Double("y", y)).ok());
  df::DataFrame foreign;
  ASSERT_TRUE(foreign.AddColumn(df::Column::Int64("id", ids)).ok());
  ASSERT_TRUE(foreign.AddColumn(df::Column::Double("hidden", hidden)).ok());
  ASSERT_TRUE(repo.Add("signal", std::move(foreign)).ok());
  ASSERT_TRUE(repo.Add("base", base).ok());

  core::AugmentationTask task;
  task.base = std::move(base);
  task.target_column = "y";
  task.task = ml::TaskType::kRegression;
  task.repo = &repo;
  core::ArdaConfig config;
  config.rifs.num_rounds = 3;
  Result<core::ArdaReport> report = core::Arda(config).Run(task);
  ASSERT_TRUE(report.ok());

  std::string json = core::ReportToJson(*report);
  // Structure sanity: balanced braces/brackets, key fields present.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"batches\""), std::string::npos);
  EXPECT_NE(json.find("\"selected_features\""), std::string::npos);
}

TEST(BoostingEdgeTest, ConstantTargetPredictsConstant) {
  la::Matrix x(20, 2, 1.0);
  std::vector<double> y(20, 7.5);
  ml::BoostingConfig config;
  config.task = ml::TaskType::kRegression;
  config.num_rounds = 5;
  ml::GradientBoosting model(config);
  model.Fit(x, y);
  EXPECT_NEAR(model.Predict(x)[0], 7.5, 1e-9);
}

TEST(KnnEdgeTest, KLargerThanTrainingSetClamps) {
  la::Matrix x(3, 1, std::vector<double>{0, 1, 2});
  std::vector<double> y = {0, 10, 20};
  ml::KnnConfig config;
  config.task = ml::TaskType::kRegression;
  config.k = 50;
  ml::KNearestNeighbors knn(config);
  knn.Fit(x, y);
  EXPECT_NEAR(knn.Predict(x)[0], 10.0, 1e-9);  // mean of everything
}

TEST(LinalgEdgeTest, SubstitutionSolvers) {
  // L = [[2,0],[1,3]]; solve L y = (4, 7) then L^T x = y.
  la::Matrix l(2, 2, std::vector<double>{2, 0, 1, 3});
  std::vector<double> y = la::ForwardSubstitute(l, {4, 7});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0 / 3.0);
  std::vector<double> x = la::BackwardSubstitute(l, y);
  // Check L^T x = y.
  EXPECT_NEAR(2 * x[0] + 1 * x[1], y[0], 1e-12);
  EXPECT_NEAR(3 * x[1], y[1], 1e-12);
}

using CheckDeathTest = testing::Test;

TEST(CheckDeathTest, MatrixOutOfBoundsAborts) {
  la::Matrix m(2, 2);
  EXPECT_DEATH(m.At(5, 0), "ARDA_CHECK failed");
}

TEST(CheckDeathTest, ColumnTypeMismatchAborts) {
  df::Column c = df::Column::Double("c", {1.0});
  EXPECT_DEATH(c.Int64At(0), "ARDA_CHECK failed");
}

TEST(CheckDeathTest, NullAccessAborts) {
  df::Column c = df::Column::Empty("c", df::DataType::kDouble);
  c.AppendNull();
  EXPECT_DEATH(c.DoubleAt(0), "ARDA_CHECK failed");
}

TEST(CheckDeathTest, MismatchedFitAborts) {
  ml::KnnConfig config;
  ml::KNearestNeighbors knn(config);
  la::Matrix x(3, 1);
  std::vector<double> y = {1.0};  // wrong length
  EXPECT_DEATH(knn.Fit(x, y), "ARDA_CHECK failed");
}

}  // namespace
}  // namespace arda
