// Integration tests of the full ARDA pipeline on the scenario generators:
// join plans, coreset variants, selector variants, soft-join handling and
// acceptance logic working together end-to-end.

#include <gtest/gtest.h>

#include "core/arda.h"
#include "data/generators.h"
#include "featsel/significance.h"

namespace arda::core {
namespace {

ArdaConfig FastConfig() {
  ArdaConfig config;
  config.seed = 21;
  config.rifs.num_rounds = 4;
  return config;
}

TEST(PipelineTest, PovertyHardJoinsImprove) {
  data::Scenario scenario =
      data::MakePovertyScenario(7, data::ScenarioScale::kSmall);
  Arda arda(FastConfig());
  Result<ArdaReport> report = arda.Run(scenario.MakeTask());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->final_score, report->base_score);
  EXPECT_GE(report->tables_joined, 1u);
}

TEST(PipelineTest, PickupSoftJoinsImprove) {
  // The small-scale pickup scenario has only 120 rows, so whether the
  // batch acceptance fires is seed-sensitive; the invariant is that the
  // pipeline never hurts, and helps for at least one seed.
  data::Scenario scenario =
      data::MakePickupScenario(7, data::ScenarioScale::kSmall);
  bool improved = false;
  for (uint64_t seed : {7u, 21u, 77u}) {
    ArdaConfig config = FastConfig();
    config.seed = seed;
    config.join.soft_method = join::SoftJoinMethod::kTwoWayNearest;
    Arda arda(config);
    Result<ArdaReport> report = arda.Run(scenario.MakeTask());
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->final_score, report->base_score - 1e-9);
    improved |= report->final_score > report->base_score;
  }
  EXPECT_TRUE(improved);
}

TEST(PipelineTest, SchoolClassificationImproves) {
  // 150-row small-scale scenario: acceptance is seed-sensitive, so check
  // non-degradation on every seed and improvement on at least one.
  data::Scenario scenario =
      data::MakeSchoolScenario(false, 7, data::ScenarioScale::kSmall);
  bool improved = false;
  for (uint64_t seed : {7u, 21u, 77u}) {
    ArdaConfig config = FastConfig();
    config.seed = seed;
    Arda arda(config);
    Result<ArdaReport> report = arda.Run(scenario.MakeTask());
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->base_score, 0.0);
    EXPECT_LE(report->final_score, 1.0);
    improved |= report->final_score > report->base_score;
  }
  EXPECT_TRUE(improved);
}

TEST(PipelineTest, AllJoinPlansComplete) {
  data::Scenario scenario =
      data::MakePovertyScenario(7, data::ScenarioScale::kSmall);
  for (JoinPlanKind plan :
       {JoinPlanKind::kBudget, JoinPlanKind::kTableAtATime,
        JoinPlanKind::kFullMaterialization}) {
    ArdaConfig config = FastConfig();
    config.plan = plan;
    Arda arda(config);
    Result<ArdaReport> report = arda.Run(scenario.MakeTask());
    ASSERT_TRUE(report.ok()) << JoinPlanKindName(plan);
    if (plan == JoinPlanKind::kFullMaterialization) {
      EXPECT_EQ(report->batches.size(), 1u);
    }
    if (plan == JoinPlanKind::kTableAtATime) {
      EXPECT_EQ(report->batches.size(), scenario.candidates.size());
    }
  }
}

TEST(PipelineTest, SketchCoresetRuns) {
  data::Scenario scenario =
      data::MakePovertyScenario(7, data::ScenarioScale::kSmall);
  ArdaConfig config = FastConfig();
  config.coreset.method = coreset::CoresetMethod::kSketch;
  config.coreset.size = 60;
  Arda arda(config);
  Result<ArdaReport> report = arda.Run(scenario.MakeTask());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->final_score, -1e300);
}

TEST(PipelineTest, StratifiedCoresetOnClassification) {
  data::Scenario scenario =
      data::MakeSchoolScenario(false, 7, data::ScenarioScale::kSmall);
  ArdaConfig config = FastConfig();
  config.coreset.method = coreset::CoresetMethod::kStratified;
  config.coreset.size = 100;
  Arda arda(config);
  Result<ArdaReport> report = arda.Run(scenario.MakeTask());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->augmented.NumRows(), 100u);
}

TEST(PipelineTest, HugeMinImprovementRejectsEverything) {
  data::Scenario scenario =
      data::MakePovertyScenario(7, data::ScenarioScale::kSmall);
  ArdaConfig config = FastConfig();
  config.min_improvement = 1e9;
  Arda arda(config);
  Result<ArdaReport> report = arda.Run(scenario.MakeTask());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tables_joined, 0u);
  EXPECT_EQ(report->augmented.NumCols(), scenario.base.NumCols());
}

TEST(PipelineTest, BatchLogsAreConsistent) {
  data::Scenario scenario =
      data::MakeTaxiScenario(7, data::ScenarioScale::kSmall);
  Arda arda(FastConfig());
  Result<ArdaReport> report = arda.Run(scenario.MakeTask());
  ASSERT_TRUE(report.ok());
  size_t accepted_tables = 0;
  for (const BatchLog& batch : report->batches) {
    EXPECT_GE(batch.join_seconds, 0.0);
    EXPECT_GE(batch.selection_seconds, 0.0);
    if (batch.accepted) accepted_tables += batch.tables.size();
  }
  EXPECT_EQ(report->tables_joined, accepted_tables);
  EXPECT_GE(report->join_seconds, 0.0);
  EXPECT_GE(report->selection_seconds, 0.0);
  EXPECT_GE(report->total_seconds,
            report->join_seconds + report->selection_seconds - 1e-6);
}

TEST(PipelineTest, SeededRunsAreReproducible) {
  data::Scenario scenario =
      data::MakePovertyScenario(7, data::ScenarioScale::kSmall);
  Arda arda(FastConfig());
  Result<ArdaReport> a = arda.Run(scenario.MakeTask());
  Result<ArdaReport> b = arda.Run(scenario.MakeTask());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->final_score, b->final_score);
  EXPECT_EQ(a->augmented.ColumnNames(), b->augmented.ColumnNames());
}

TEST(PipelineTest, SelectorVariantsRunEndToEnd) {
  data::Scenario scenario =
      data::MakePovertyScenario(7, data::ScenarioScale::kSmall);
  for (const char* selector :
       {"random_forest", "f_test", "mutual_info", "all_features"}) {
    ArdaConfig config = FastConfig();
    config.selector = selector;
    Arda arda(config);
    Result<ArdaReport> report = arda.Run(scenario.MakeTask());
    ASSERT_TRUE(report.ok()) << selector;
    EXPECT_FALSE(report->selected_features.empty()) << selector;
  }
}

TEST(PipelineTest, AugmentationSignificanceOnScenario) {
  // End-to-end composition with the significance extension: the pipeline's
  // augmented output should test significant against the base features.
  data::Scenario scenario =
      data::MakePovertyScenario(7, data::ScenarioScale::kSmall);
  Arda arda(FastConfig());
  Result<ArdaReport> report = arda.Run(scenario.MakeTask());
  ASSERT_TRUE(report.ok());
  if (report->tables_joined == 0) GTEST_SKIP() << "nothing augmented";

  Result<ml::Dataset> base = BuildDataset(
      report->augmented.Select(scenario.base.ColumnNames()).value(),
      scenario.target_column, scenario.task);
  Result<ml::Dataset> augmented = BuildDataset(
      report->augmented, scenario.target_column, scenario.task);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(augmented.ok());
  featsel::SignificanceOptions options;
  options.num_splits = 6;
  featsel::SignificanceResult result =
      featsel::TestAugmentationSignificance(*base, *augmented, options);
  EXPECT_GT(result.mean_improvement, 0.0);
  EXPECT_LT(result.p_value, 0.1);
}

TEST(PipelineTest, RifsNoiseVariantsRunThroughPipeline) {
  data::Scenario scenario =
      data::MakePovertyScenario(7, data::ScenarioScale::kSmall);
  for (featsel::NoiseKind kind :
       {featsel::NoiseKind::kGaussian, featsel::NoiseKind::kUniform}) {
    ArdaConfig config = FastConfig();
    config.rifs.noise = kind;
    Arda arda(config);
    Result<ArdaReport> report = arda.Run(scenario.MakeTask());
    ASSERT_TRUE(report.ok()) << featsel::NoiseKindName(kind);
  }
}

}  // namespace
}  // namespace arda::core
