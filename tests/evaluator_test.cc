#include <gtest/gtest.h>

#include "ml/automl.h"
#include "ml/evaluator.h"
#include "util/rng.h"

namespace arda::ml {
namespace {

// Feature 0 is strongly predictive, feature 1 is pure noise.
Dataset MakeSignalNoise(size_t n, TaskType task, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.task = task;
  data.x = la::Matrix(n, 2);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool positive = i % 2 == 0;
    data.x(i, 0) = rng.Normal(positive ? 2.0 : -2.0, 0.6);
    data.x(i, 1) = rng.Normal(0.0, 1.0);
    data.y[i] = task == TaskType::kClassification
                    ? (positive ? 1.0 : 0.0)
                    : 3.0 * data.x(i, 0);
  }
  data.feature_names = {"signal", "noise"};
  return data;
}

TEST(EvaluatorTest, SignalFeatureScoresHigherThanNoise) {
  Dataset data = MakeSignalNoise(300, TaskType::kClassification, 1);
  Evaluator evaluator(data, 0.25, 7);
  double signal_score = evaluator.ScoreFeatures({0});
  double noise_score = evaluator.ScoreFeatures({1});
  EXPECT_GT(signal_score, noise_score);
  EXPECT_GT(signal_score, 0.9);
}

TEST(EvaluatorTest, RegressionScoresAreNegativeMae) {
  Dataset data = MakeSignalNoise(300, TaskType::kRegression, 2);
  Evaluator evaluator(data, 0.25, 7);
  EXPECT_LE(evaluator.ScoreFeatures({1}), 0.0);
  EXPECT_GT(evaluator.ScoreFeatures({0}), evaluator.ScoreFeatures({1}));
}

TEST(EvaluatorTest, DeterministicGivenSeed) {
  Dataset data = MakeSignalNoise(200, TaskType::kClassification, 3);
  Evaluator a(data, 0.25, 7);
  Evaluator b(data, 0.25, 7);
  EXPECT_DOUBLE_EQ(a.ScoreAllFeatures(), b.ScoreAllFeatures());
}

TEST(EvaluatorTest, FinalScoreAtLeastAsGoodAsFixedEstimator) {
  Dataset data = MakeSignalNoise(200, TaskType::kClassification, 4);
  Evaluator evaluator(data, 0.25, 7);
  // FinalScore takes a max over a strictly larger model pool on the same
  // split, so it can only exceed individual members; compare to a
  // sanity floor instead of exact equality.
  EXPECT_GT(evaluator.FinalScore({0, 1}), 0.8);
}

TEST(EvaluatorTest, SplitExposesTrainAndTest) {
  Dataset data = MakeSignalNoise(100, TaskType::kClassification, 5);
  Evaluator evaluator(data, 0.2, 7);
  EXPECT_EQ(evaluator.train().NumRows() + evaluator.test().NumRows(), 100u);
  EXPECT_EQ(evaluator.task(), TaskType::kClassification);
  EXPECT_EQ(evaluator.NumFeatures(), 2u);
}

TEST(AllFeatureIndicesTest, Basic) {
  EXPECT_EQ(AllFeatureIndices(3), (std::vector<size_t>{0, 1, 2}));
  EXPECT_TRUE(AllFeatureIndices(0).empty());
}

TEST(AutoMlTest, FindsReasonableModelWithinBudget) {
  Dataset data = MakeSignalNoise(200, TaskType::kClassification, 6);
  AutoMlConfig config;
  config.time_budget_seconds = 1.0;
  config.max_configs = 15;
  AutoMlResult result = RunRandomSearchAutoMl(data, config);
  EXPECT_GT(result.configs_tried, 0u);
  EXPECT_LE(result.configs_tried, 15u);
  EXPECT_GT(result.best_score, 0.8);
  EXPECT_FALSE(result.best_config.empty());
}

TEST(AutoMlTest, RegressionSearch) {
  Dataset data = MakeSignalNoise(150, TaskType::kRegression, 7);
  AutoMlConfig config;
  config.time_budget_seconds = 1.0;
  config.max_configs = 10;
  AutoMlResult result = RunRandomSearchAutoMl(data, config);
  EXPECT_GT(result.configs_tried, 0u);
  EXPECT_GT(result.best_score, -2.0);  // -MAE not terrible
}

TEST(AutoMlTest, MoreBudgetNeverHurts) {
  Dataset data = MakeSignalNoise(150, TaskType::kClassification, 8);
  AutoMlConfig small;
  small.time_budget_seconds = 10.0;
  small.max_configs = 2;
  small.seed = 5;
  AutoMlConfig big = small;
  big.max_configs = 25;
  double small_score = RunRandomSearchAutoMl(data, small).best_score;
  double big_score = RunRandomSearchAutoMl(data, big).best_score;
  EXPECT_GE(big_score, small_score);  // same seed: strict superset of trials
}

}  // namespace
}  // namespace arda::ml
