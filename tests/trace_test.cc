// Observability subsystem tests: the span tracer (util/trace.h) and the
// metrics registry (util/metrics.h), plus the JSON surfaces they export
// through (trace-event documents, the run report's `metrics` section and
// the shared JsonEscape helper). The trace-event output is validated with
// a real JSON parser, not substring checks, so an escaping or comma bug
// fails loudly here before Perfetto ever sees a file.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/arda.h"
#include "core/report_io.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace arda {
namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser — enough of RFC 8259 to validate
// everything this repo emits (objects, arrays, strings with escapes,
// numbers, booleans, null).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = JsonValue::kBool;
        out->boolean = true;
        return ConsumeLiteral("true");
      case 'f':
        out->kind = JsonValue::kBool;
        out->boolean = false;
        return ConsumeLiteral("false");
      case 'n':
        out->kind = JsonValue::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ConsumeLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (!Consume(*p)) return false;
    }
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) return false;
    out->kind = JsonValue::kNumber;
    out->number = v;
    pos_ += static_cast<size_t>(end - begin);
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare ctrl
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The repo only emits \u00XX for control bytes; decode those
          // directly and reject surrogates (never produced).
          if (code >= 0xD800 && code <= 0xDFFF) return false;
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else {
            out->push_back('?');  // decoded but not needed by any test
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue item;
      if (!ParseValue(&item)) return false;
      out->array.push_back(std::move(item));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
      SkipWs();
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
      SkipWs();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Leaves tracing disabled and empty no matter how a test exits.
struct TraceGuard {
  TraceGuard() {
    trace::Disable();
    trace::Reset();
  }
  ~TraceGuard() {
    trace::Disable();
    trace::Reset();
  }
};

// Parses the current trace document and returns the traceEvents array.
std::vector<JsonValue> ParsedTraceEvents() {
  const std::string json = trace::ToJson();
  JsonValue doc;
  JsonParser parser(json);
  EXPECT_TRUE(parser.Parse(&doc)) << json;
  EXPECT_EQ(doc.kind, JsonValue::kObject);
  const JsonValue* unit = doc.Find("displayTimeUnit");
  EXPECT_NE(unit, nullptr);
  if (unit != nullptr) EXPECT_EQ(unit->str, "ms");
  const JsonValue* events = doc.Find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr) return {};
  EXPECT_EQ(events->kind, JsonValue::kArray);
  return events->array;
}

std::vector<const JsonValue*> EventsNamed(
    const std::vector<JsonValue>& events, const std::string& name) {
  std::vector<const JsonValue*> out;
  for (const JsonValue& e : events) {
    const JsonValue* n = e.Find("name");
    if (n != nullptr && n->str == name) out.push_back(&e);
  }
  return out;
}

// ---------------------------------------------------------------------
// JsonEscape (shared helper — satellite bugfix surface).

TEST(JsonEscapeTest, RoundTripsNastyStrings) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  const std::string wrapped = "\"" + JsonEscape(nasty) + "\"";
  JsonValue value;
  JsonParser parser(wrapped);
  ASSERT_TRUE(parser.Parse(&value)) << wrapped;
  EXPECT_EQ(value.kind, JsonValue::kString);
  EXPECT_EQ(value.str, nasty);
}

TEST(JsonEscapeTest, LeavesPlainTextAlone) {
  EXPECT_EQ(JsonEscape("plain text 123"), "plain text 123");
}

// ---------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistryTest, CounterAndGaugeBasics) {
  metrics::Registry registry;
  metrics::Counter& c = registry.GetCounter("test.counter");
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.Value(), 5u);
  EXPECT_EQ(&registry.GetCounter("test.counter"), &c);

  metrics::Gauge& g = registry.GetGauge("test.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.SetMax(1.0);  // lower value must not win
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.SetMax(7.0);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
}

TEST(MetricsRegistryTest, HistogramBucketBoundariesAreInclusive) {
  metrics::Histogram h({1.0, 10.0, 100.0});
  // "le" semantics: a value exactly on a bound lands in that bucket.
  h.Observe(1.0);    // bucket 0 (le 1)
  h.Observe(0.5);    // bucket 0
  h.Observe(1.0001); // bucket 1 (le 10)
  h.Observe(10.0);   // bucket 1
  h.Observe(100.0);  // bucket 2 (le 100)
  h.Observe(100.5);  // overflow (+Inf)
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 100.5);
  EXPECT_NEAR(h.Sum(), 1.0 + 0.5 + 1.0001 + 10.0 + 100.0 + 100.5, 1e-9);
}

TEST(MetricsRegistryTest, EmptyHistogramReportsZeroMinMax) {
  metrics::Histogram h({1.0});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
}

TEST(MetricsRegistryTest, DefaultBucketsAreStrictlyIncreasing) {
  for (const std::vector<double>* bounds :
       {&metrics::LatencyBucketsSeconds(), &metrics::SizeBuckets()}) {
    ASSERT_FALSE(bounds->empty());
    for (size_t i = 1; i < bounds->size(); ++i) {
      EXPECT_LT((*bounds)[i - 1], (*bounds)[i]);
    }
  }
}

TEST(MetricsRegistryTest, ResetKeepsCachedReferencesValid) {
  metrics::Registry registry;
  metrics::Counter& c = registry.GetCounter("cached.counter");
  metrics::Histogram& h = registry.GetHistogram("cached.hist", {1.0, 2.0});
  c.Increment(3);
  h.Observe(1.5);
  registry.ResetForTest();
  // The same objects, zeroed in place: old references keep working.
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.bounds().size(), 2u);  // bounds survive the reset
  c.Increment();
  h.Observe(5.0);
  EXPECT_EQ(registry.GetCounter("cached.counter").Value(), 1u);
  EXPECT_EQ(registry.GetHistogram("cached.hist", {}).BucketCounts()[2], 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  metrics::Registry registry;
  registry.GetCounter("b.counter").Increment(2);
  registry.GetCounter("a.counter").Increment();
  registry.GetGauge("z.gauge").Set(-1.5);
  registry.GetHistogram("m.hist", {1.0}).Observe(0.5);
  metrics::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.counter");
  EXPECT_EQ(snap.counters[1].name, "b.counter");
  EXPECT_EQ(snap.CounterValue("b.counter"), 2u);
  EXPECT_EQ(snap.CounterValue("missing"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, -1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].bucket_counts.size(), 2u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

TEST(MetricsRegistryTest, MetricsToJsonParses) {
  metrics::Registry registry;
  registry.GetCounter("skips.join").Increment(3);
  registry.GetGauge("process.peak_rss_bytes").Set(1.5e8);
  registry.GetHistogram("stage.join", metrics::LatencyBucketsSeconds())
      .Observe(0.25);
  const std::string json = core::MetricsToJson(registry.Snapshot());
  JsonValue doc;
  JsonParser parser(json);
  ASSERT_TRUE(parser.Parse(&doc)) << json;
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("skips.join")->number, 3.0);
  const JsonValue* hists = doc.Find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->array.size(), 1u);
  const JsonValue& h = hists->array[0];
  EXPECT_EQ(h.Find("name")->str, "stage.join");
  const JsonValue* buckets = h.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_FALSE(buckets->array.empty());
  // Overflow bucket is the string "+Inf", Prometheus-style.
  EXPECT_EQ(buckets->array.back().Find("le")->str, "+Inf");
}

// ---------------------------------------------------------------------
// Span tracer.

TEST(TraceTest, DisabledSpansRecordNothing) {
  TraceGuard guard;
  ASSERT_FALSE(trace::Enabled());
  {
    trace::TraceSpan span("disabled_span", "test");
    trace::TraceSpan detailed("disabled_span", "test", "payload");
    EXPECT_EQ(span.span_id(), 0u);
    trace::CounterEvent("disabled_counter", 1.0);
  }
  EXPECT_EQ(trace::EventCount(), 0u);
}

TEST(TraceTest, SpanNestingStaysWithinParent) {
  TraceGuard guard;
  trace::Enable();
  {
    trace::TraceSpan outer("outer_span", "test");
    {
      trace::TraceSpan inner("inner_span", "test");
    }
  }
  trace::Disable();
  std::vector<JsonValue> events = ParsedTraceEvents();
  std::vector<const JsonValue*> outer = EventsNamed(events, "outer_span");
  std::vector<const JsonValue*> inner = EventsNamed(events, "inner_span");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  const double outer_ts = outer[0]->Find("ts")->number;
  const double outer_end = outer_ts + outer[0]->Find("dur")->number;
  const double inner_ts = inner[0]->Find("ts")->number;
  const double inner_end = inner_ts + inner[0]->Find("dur")->number;
  // The exporter rounds to 3 decimals (nanosecond resolution in µs).
  const double eps = 0.002;
  EXPECT_GE(inner_ts, outer_ts - eps);
  EXPECT_LE(inner_end, outer_end + eps);
  EXPECT_EQ(outer[0]->Find("ph")->str, "X");
  EXPECT_EQ(outer[0]->Find("cat")->str, "test");
}

TEST(TraceTest, MultiThreadBuffersMergeIntoOneDocument) {
  TraceGuard guard;
  trace::Enable();
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      trace::TraceSpan span("worker_span", "test");
    });
  }
  for (std::thread& t : threads) t.join();
  trace::Disable();
  std::vector<JsonValue> events = ParsedTraceEvents();
  std::vector<const JsonValue*> workers = EventsNamed(events, "worker_span");
  ASSERT_EQ(workers.size(), static_cast<size_t>(kThreads));
  std::set<double> tids;
  std::set<double> span_ids;
  for (const JsonValue* e : workers) {
    tids.insert(e->Find("tid")->number);
    const JsonValue* args = e->Find("args");
    ASSERT_NE(args, nullptr);
    span_ids.insert(args->Find("span_id")->number);
  }
  // Each thread got its own buffer/tid, and span ids never collide.
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(span_ids.size(), static_cast<size_t>(kThreads));
  // One thread_name metadata record per participating thread.
  std::vector<const JsonValue*> meta = EventsNamed(events, "thread_name");
  EXPECT_GE(meta.size(), static_cast<size_t>(kThreads));
}

TEST(TraceTest, CounterEventsAndDetailsSurviveExport) {
  TraceGuard guard;
  trace::Enable();
  trace::CounterEvent("queue_depth", 42.0);
  {
    trace::TraceSpan span("detailed_span", "test",
                          "weird \"detail\"\nwith\\escapes");
  }
  trace::Disable();
  std::vector<JsonValue> events = ParsedTraceEvents();
  std::vector<const JsonValue*> counters = EventsNamed(events, "queue_depth");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0]->Find("ph")->str, "C");
  EXPECT_DOUBLE_EQ(counters[0]->Find("args")->Find("value")->number, 42.0);
  std::vector<const JsonValue*> detailed =
      EventsNamed(events, "detailed_span");
  ASSERT_EQ(detailed.size(), 1u);
  EXPECT_EQ(detailed[0]->Find("args")->Find("detail")->str,
            "weird \"detail\"\nwith\\escapes");
}

TEST(TraceTest, ResetDropsEventsAndRestartsSequences) {
  TraceGuard guard;
  trace::Enable();
  uint64_t first_id = 0;
  {
    trace::TraceSpan span("reset_span", "test");
    first_id = span.span_id();
  }
  EXPECT_GT(trace::EventCount(), 0u);
  trace::Reset();
  EXPECT_EQ(trace::EventCount(), 0u);
  {
    trace::TraceSpan span("reset_span", "test");
    // Same thread, sequence restarted: the id repeats deterministically.
    EXPECT_EQ(span.span_id(), first_id);
  }
  trace::Disable();
}

TEST(TraceTest, EmptyTraceIsStillValidJson) {
  TraceGuard guard;
  std::vector<JsonValue> events = ParsedTraceEvents();
  EXPECT_TRUE(events.empty());
}

TEST(TraceTest, StageScopeFeedsStageHistogram) {
  TraceGuard guard;
  metrics::GlobalRegistry().ResetForTest();
  {
    trace::StageScope scope("unit_test_stage");
  }
  metrics::MetricsSnapshot snap = metrics::GlobalRegistry().Snapshot();
  bool found = false;
  for (const metrics::HistogramSnapshot& h : snap.histograms) {
    if (h.name == "stage.unit_test_stage") {
      found = true;
      EXPECT_EQ(h.count, 1u);
    }
  }
  EXPECT_TRUE(found);
  // Tracing was disabled: the scope's span must not have recorded.
  EXPECT_EQ(trace::EventCount(), 0u);
}

// ---------------------------------------------------------------------
// Report JSON (satellite: escaping + metrics section).

TEST(ReportJsonTest, NastyStringsStillParse) {
  core::ArdaReport report;
  report.base_score = 0.5;
  report.final_score = 0.75;
  report.selected_features = {"ok_feature", "weird\"quote", "tab\there",
                              "back\\slash"};
  core::BatchLog batch;
  batch.tables = {"table\nwith_newline"};
  report.batches.push_back(batch);
  report.skipped_candidates.push_back(
      {"bad\"table", "join", "reason with \"quotes\" and \\slashes\\"});
  metrics::Registry registry;
  registry.GetCounter("skips.join").Increment();
  registry.GetHistogram("stage.join", {1e-3, 1.0}).Observe(0.1);
  report.metrics = registry.Snapshot();

  const std::string json = core::ReportToJson(report);
  JsonValue doc;
  JsonParser parser(json);
  ASSERT_TRUE(parser.Parse(&doc)) << json;
  const JsonValue* skipped = doc.Find("skipped_candidates");
  ASSERT_NE(skipped, nullptr);
  ASSERT_EQ(skipped->array.size(), 1u);
  EXPECT_EQ(skipped->array[0].Find("table")->str, "bad\"table");
  EXPECT_EQ(skipped->array[0].Find("reason")->str,
            "reason with \"quotes\" and \\slashes\\");
  const JsonValue* features = doc.Find("selected_features");
  ASSERT_NE(features, nullptr);
  EXPECT_EQ(features->array[1].str, "weird\"quote");
  const JsonValue* metrics_obj = doc.Find("metrics");
  ASSERT_NE(metrics_obj, nullptr);
  EXPECT_DOUBLE_EQ(metrics_obj->Find("counters")->Find("skips.join")->number,
                   1.0);
}

}  // namespace
}  // namespace arda
