#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ml/decision_tree.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/sparse_regression.h"
#include "ml/svm_rbf.h"
#include "util/rng.h"

namespace arda::ml {
namespace {

// Two well-separated Gaussian blobs; feature 0 carries the signal,
// feature 1 is noise.
struct BlobData {
  la::Matrix x;
  std::vector<double> y;
};

BlobData MakeBlobs(size_t n, uint64_t seed) {
  Rng rng(seed);
  BlobData data;
  data.x = la::Matrix(n, 2);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    bool positive = i % 2 == 0;
    data.y[i] = positive ? 1.0 : 0.0;
    data.x(i, 0) = rng.Normal(positive ? 2.0 : -2.0, 0.7);
    data.x(i, 1) = rng.Normal(0.0, 1.0);
  }
  return data;
}

// y = step function of feature 0 (regression).
BlobData MakeStepRegression(size_t n, uint64_t seed) {
  Rng rng(seed);
  BlobData data;
  data.x = la::Matrix(n, 2);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.Uniform(-1.0, 1.0);
    data.x(i, 1) = rng.Normal(0.0, 1.0);
    data.y[i] = data.x(i, 0) > 0.0 ? 10.0 : -10.0;
  }
  return data;
}

TEST(DecisionTreeTest, LearnsStepFunction) {
  BlobData data = MakeStepRegression(300, 1);
  TreeConfig config;
  config.task = TaskType::kRegression;
  DecisionTree tree(config);
  tree.Fit(data.x, data.y);
  std::vector<double> pred = tree.Predict(data.x);
  EXPECT_LT(MeanAbsoluteError(data.y, pred), 0.5);
  EXPECT_GT(tree.NumNodes(), 1u);
}

TEST(DecisionTreeTest, ClassifiesBlobs) {
  BlobData data = MakeBlobs(300, 2);
  TreeConfig config;
  config.task = TaskType::kClassification;
  DecisionTree tree(config);
  tree.Fit(data.x, data.y);
  EXPECT_GT(Accuracy(data.y, tree.Predict(data.x)), 0.95);
}

TEST(DecisionTreeTest, ImportanceConcentratesOnSignalFeature) {
  BlobData data = MakeBlobs(400, 3);
  TreeConfig config;
  config.task = TaskType::kClassification;
  DecisionTree tree(config);
  tree.Fit(data.x, data.y);
  const std::vector<double>& imp = tree.feature_importances();
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(DecisionTreeTest, MaxDepthZeroGivesSingleLeaf) {
  BlobData data = MakeBlobs(50, 4);
  TreeConfig config;
  config.task = TaskType::kClassification;
  config.max_depth = 0;
  DecisionTree tree(config);
  tree.Fit(data.x, data.y);
  EXPECT_EQ(tree.NumNodes(), 1u);
  // Single leaf predicts the majority class everywhere.
  std::vector<double> pred = tree.Predict(data.x);
  for (size_t i = 1; i < pred.size(); ++i) {
    EXPECT_DOUBLE_EQ(pred[i], pred[0]);
  }
}

TEST(DecisionTreeTest, ConstantTargetIsLeaf) {
  la::Matrix x(10, 1);
  std::vector<double> y(10, 3.0);
  TreeConfig config;
  config.task = TaskType::kRegression;
  DecisionTree tree(config);
  tree.Fit(x, y);
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict(x)[0], 3.0);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  BlobData data = MakeBlobs(100, 5);
  TreeConfig config;
  config.task = TaskType::kClassification;
  config.min_samples_leaf = 40;
  DecisionTree tree(config);
  tree.Fit(data.x, data.y);
  // With leaves of >= 40, at most 3 nodes (1 split).
  EXPECT_LE(tree.NumNodes(), 3u);
}

TEST(RandomForestTest, RegressionBeatsSingleNoisyFit) {
  BlobData data = MakeStepRegression(400, 6);
  ForestConfig config;
  config.task = TaskType::kRegression;
  config.num_trees = 20;
  RandomForest forest(config);
  forest.Fit(data.x, data.y);
  EXPECT_LT(MeanAbsoluteError(data.y, forest.Predict(data.x)), 1.0);
  EXPECT_EQ(forest.NumTrees(), 20u);
}

TEST(RandomForestTest, ClassificationAccuracyAndImportances) {
  BlobData data = MakeBlobs(400, 7);
  ForestConfig config;
  config.task = TaskType::kClassification;
  config.num_trees = 15;
  RandomForest forest(config);
  forest.Fit(data.x, data.y);
  EXPECT_GT(Accuracy(data.y, forest.Predict(data.x)), 0.95);
  EXPECT_GT(forest.feature_importances()[0],
            forest.feature_importances()[1]);
}

TEST(RandomForestTest, DeterministicForSeed) {
  BlobData data = MakeBlobs(200, 8);
  ForestConfig config;
  config.task = TaskType::kClassification;
  config.num_trees = 5;
  config.seed = 99;
  RandomForest a(config), b(config);
  a.Fit(data.x, data.y);
  b.Fit(data.x, data.y);
  EXPECT_EQ(a.Predict(data.x), b.Predict(data.x));
}

TEST(RandomForestTest, MulticlassVoting) {
  Rng rng(9);
  la::Matrix x(300, 1);
  std::vector<double> y(300);
  for (size_t i = 0; i < 300; ++i) {
    size_t cls = i % 3;
    y[i] = static_cast<double>(cls);
    x(i, 0) = rng.Normal(static_cast<double>(cls) * 5.0, 0.5);
  }
  ForestConfig config;
  config.task = TaskType::kClassification;
  config.num_trees = 10;
  RandomForest forest(config);
  forest.Fit(x, y);
  EXPECT_GT(Accuracy(y, forest.Predict(x)), 0.95);
}

TEST(RidgeTest, RecoversLinearFunction) {
  Rng rng(10);
  la::Matrix x(300, 3);
  std::vector<double> y(300);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t c = 0; c < 3; ++c) x(i, c) = rng.Normal();
    y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 1) + 5.0;
  }
  RidgeRegression model(1e-4);
  model.Fit(x, y);
  EXPECT_LT(MeanAbsoluteError(y, model.Predict(x)), 0.05);
}

TEST(LassoTest, SparseRecovery) {
  Rng rng(11);
  const size_t n = 200, d = 20;
  la::Matrix x(n, d);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < d; ++c) x(i, c) = rng.Normal();
    y[i] = 4.0 * x(i, 0) - 3.0 * x(i, 5) + rng.Normal(0.0, 0.1);
  }
  Lasso model(0.1);
  model.Fit(x, y);
  // Only the two true features should have large weights.
  EXPECT_GT(std::fabs(model.weights()[0]), 1.0);
  EXPECT_GT(std::fabs(model.weights()[5]), 1.0);
  size_t spurious = 0;
  for (size_t c = 0; c < d; ++c) {
    if (c != 0 && c != 5 && std::fabs(model.weights()[c]) > 0.2) ++spurious;
  }
  EXPECT_EQ(spurious, 0u);
  EXPECT_LE(model.NumNonZero(), d);
}

TEST(LassoTest, HugeAlphaZeroesEverything) {
  Rng rng(12);
  la::Matrix x(50, 3);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t c = 0; c < 3; ++c) x(i, c) = rng.Normal();
    y[i] = x(i, 0);
  }
  Lasso model(100.0);
  model.Fit(x, y);
  EXPECT_EQ(model.NumNonZero(), 0u);
}

TEST(LogisticTest, SeparatesBlobs) {
  BlobData data = MakeBlobs(300, 13);
  LogisticRegression model;
  model.Fit(data.x, data.y);
  EXPECT_GT(Accuracy(data.y, model.Predict(data.x)), 0.95);
  std::vector<double> imp = model.CoefImportances();
  EXPECT_GT(imp[0], imp[1]);
}

TEST(LogisticTest, MulticlassOneVsRest) {
  Rng rng(14);
  la::Matrix x(300, 2);
  std::vector<double> y(300);
  for (size_t i = 0; i < 300; ++i) {
    size_t cls = i % 3;
    y[i] = static_cast<double>(cls);
    x(i, 0) = rng.Normal(cls == 1 ? 4.0 : (cls == 2 ? -4.0 : 0.0), 0.6);
    x(i, 1) = rng.Normal(cls == 0 ? 4.0 : -1.0, 0.6);
  }
  LogisticRegression model;
  model.Fit(x, y);
  EXPECT_GT(Accuracy(y, model.Predict(x)), 0.9);
}

TEST(LinearSvmTest, SeparatesBlobs) {
  BlobData data = MakeBlobs(300, 15);
  LinearSvm model;
  model.Fit(data.x, data.y);
  EXPECT_GT(Accuracy(data.y, model.Predict(data.x)), 0.95);
  EXPECT_GT(model.CoefImportances()[0], model.CoefImportances()[1]);
}

TEST(SparseRegressionTest, FeatureNormsFindSignal) {
  Rng rng(16);
  const size_t n = 150, d = 12;
  la::Matrix x(n, d);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < d; ++c) x(i, c) = rng.Normal();
    y[i] = 5.0 * x(i, 2) + rng.Normal(0.0, 0.2);
  }
  SparseRegressionConfig config;
  config.task = TaskType::kRegression;
  L21SparseRegression model(config);
  model.Fit(x, y);
  std::vector<double> norms = model.FeatureNorms();
  for (size_t c = 0; c < d; ++c) {
    if (c != 2) EXPECT_GT(norms[2], norms[c]);
  }
}

TEST(SparseRegressionTest, ObjectiveDecreases) {
  Rng rng(17);
  la::Matrix x(80, 5);
  std::vector<double> y(80);
  for (size_t i = 0; i < 80; ++i) {
    for (size_t c = 0; c < 5; ++c) x(i, c) = rng.Normal();
    y[i] = x(i, 0) - x(i, 3);
  }
  SparseRegressionConfig short_run;
  short_run.max_iters = 2;
  L21SparseRegression a(short_run);
  a.Fit(x, y);
  SparseRegressionConfig long_run;
  long_run.max_iters = 200;
  L21SparseRegression b(long_run);
  b.Fit(x, y);
  EXPECT_LE(b.final_objective(), a.final_objective() + 1e-9);
}

TEST(SparseRegressionTest, ClassificationRanking) {
  BlobData data = MakeBlobs(200, 18);
  SparseRegressionConfig config;
  config.task = TaskType::kClassification;
  L21SparseRegression model(config);
  model.Fit(data.x, data.y);
  std::vector<double> norms = model.FeatureNorms();
  EXPECT_GT(norms[0], norms[1]);
  EXPECT_GT(Accuracy(data.y, model.Predict(data.x)), 0.9);
}

TEST(RbfSvmTest, SolvesXorLikeProblem) {
  // XOR is not linearly separable; the RBF kernel handles it.
  Rng rng(19);
  la::Matrix x(200, 2);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    double a = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    double b = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    x(i, 0) = a + rng.Normal(0.0, 0.2);
    x(i, 1) = b + rng.Normal(0.0, 0.2);
    y[i] = a * b > 0 ? 1.0 : 0.0;
  }
  RbfSvmConfig config;
  config.c = 5.0;
  RbfSvm svm(config);
  svm.Fit(x, y);
  EXPECT_GT(Accuracy(y, svm.Predict(x)), 0.9);

  LinearSvm linear;
  linear.Fit(x, y);
  EXPECT_LT(Accuracy(y, linear.Predict(x)), 0.75);  // linear can't
}

TEST(RbfSvmTest, MulticlassOneVsRest) {
  Rng rng(20);
  la::Matrix x(240, 2);
  std::vector<double> y(240);
  for (size_t i = 0; i < 240; ++i) {
    size_t cls = i % 3;
    y[i] = static_cast<double>(cls);
    double angle = 2.0 * M_PI * static_cast<double>(cls) / 3.0;
    x(i, 0) = 3.0 * std::cos(angle) + rng.Normal(0.0, 0.4);
    x(i, 1) = 3.0 * std::sin(angle) + rng.Normal(0.0, 0.4);
  }
  RbfSvm svm;
  svm.Fit(x, y);
  EXPECT_GT(Accuracy(y, svm.Predict(x)), 0.92);
}

// --- NaN feature ordering contract (see decision_tree.h): every NaN
// sorts after +inf, all NaNs compare equal, thresholds are never
// non-finite, and NaN rows fall to the right child. ---

// Regression data whose single informative signal lives in two identical
// columns, both salted with NaNs. Duplicating the column lets the
// per-node-sampling mode (max_features=1) see an equivalent candidate at
// every node, so its *predictions* must be bit-identical to the
// pre-sorted mode's even though the sampled column index varies.
struct NanData {
  la::Matrix x;
  std::vector<double> y;
};

NanData MakeNanData(size_t n, uint64_t seed) {
  Rng rng(seed);
  NanData data;
  data.x = la::Matrix(n, 2);
  data.y.resize(n);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < n; ++i) {
    double v = std::round(rng.Normal() * 4.0) / 4.0;
    if (i % 7 == 0) v = nan;  // ~14% missing
    data.x(i, 0) = v;
    data.x(i, 1) = v;
    data.y[i] = std::isnan(v) ? 5.0 : 2.0 * v + rng.Normal(0.0, 0.05);
  }
  return data;
}

TEST(DecisionTreeNanTest, PresortAndPerNodeSortAgreeOnNanOrdering) {
  NanData data = MakeNanData(240, 11);
  TreeConfig presort_config;
  presort_config.task = TaskType::kRegression;
  presort_config.seed = 3;
  DecisionTree presorted(presort_config);  // max_features=0 -> pre-sorted
  presorted.Fit(data.x, data.y);

  TreeConfig pernode_config = presort_config;
  pernode_config.max_features = 1;  // forces the per-node gather-and-sort
  DecisionTree pernode(pernode_config);
  pernode.Fit(data.x, data.y);

  // Neither mode may place a threshold on a non-finite midpoint.
  EXPECT_EQ(presorted.Serialize().find("nan"), std::string::npos);
  EXPECT_EQ(presorted.Serialize().find("inf"), std::string::npos);
  EXPECT_EQ(pernode.Serialize().find("nan"), std::string::npos);
  EXPECT_EQ(pernode.Serialize().find("inf"), std::string::npos);

  // The duplicated column makes every sampled candidate equivalent, so a
  // shared NaN ordering forces bit-identical predictions across modes.
  std::vector<double> a = presorted.Predict(data.x);
  std::vector<double> b = pernode.Predict(data.x);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
}

TEST(DecisionTreeNanTest, NanRowsFallToTheRightChild) {
  // Feature values 0..3 plus NaNs whose targets match the largest finite
  // value's: a NaN probe must land in the rightmost leaf.
  la::Matrix x(8, 1);
  std::vector<double> y;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> vals = {0.0, 1.0, 2.0, 3.0, 0.0, 1.0, nan, nan};
  for (size_t i = 0; i < vals.size(); ++i) {
    x(i, 0) = vals[i];
    double v = std::isnan(vals[i]) ? 3.0 : vals[i];
    y.push_back(v >= 2.0 ? 10.0 : -10.0);
  }
  TreeConfig config;
  config.task = TaskType::kRegression;
  config.seed = 1;
  DecisionTree tree(config);
  tree.Fit(x, y);

  la::Matrix probe(2, 1);
  probe(0, 0) = nan;
  probe(1, 0) = 3.0;
  std::vector<double> pred = tree.Predict(probe);
  // NaN and the largest finite value route identically (both rightward).
  EXPECT_EQ(pred[0], pred[1]);
  EXPECT_DOUBLE_EQ(pred[0], 10.0);
}

TEST(DecisionTreeNanTest, AllNanColumnIsTreatedAsConstant) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  la::Matrix x(20, 2);
  std::vector<double> y;
  for (size_t i = 0; i < 20; ++i) {
    x(i, 0) = nan;  // never splittable
    x(i, 1) = static_cast<double>(i);
    y.push_back(i < 10 ? -1.0 : 1.0);
  }
  TreeConfig config;
  config.task = TaskType::kRegression;
  config.seed = 2;
  DecisionTree tree(config);
  tree.Fit(x, y);
  // The split must come from the finite column, and importances must not
  // credit the all-NaN one.
  EXPECT_GT(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.feature_importances()[0], 0.0);
  EXPECT_GT(tree.feature_importances()[1], 0.0);
}

}  // namespace
}  // namespace arda::ml
