#include <gtest/gtest.h>

#include <cstdio>

#include "dataframe/csv.h"

namespace arda::df {
namespace {

TEST(CsvTest, ParsesTypedColumns) {
  Result<DataFrame> r = ReadCsvString("id,score,name\n1,2.5,ann\n2,3.5,bob\n");
  ASSERT_TRUE(r.ok());
  const DataFrame& frame = r.value();
  EXPECT_EQ(frame.NumRows(), 2u);
  EXPECT_EQ(frame.col("id").type(), DataType::kInt64);
  EXPECT_EQ(frame.col("score").type(), DataType::kDouble);
  EXPECT_EQ(frame.col("name").type(), DataType::kString);
  EXPECT_EQ(frame.col("id").Int64At(1), 2);
  EXPECT_DOUBLE_EQ(frame.col("score").DoubleAt(0), 2.5);
  EXPECT_EQ(frame.col("name").StringAt(1), "bob");
}

TEST(CsvTest, EmptyFieldsBecomeNulls) {
  Result<DataFrame> r = ReadCsvString("a,b\n1,\n,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->col("b").IsNull(0));
  EXPECT_TRUE(r->col("a").IsNull(1));
  EXPECT_EQ(r->col("a").Int64At(0), 1);
}

TEST(CsvTest, MixedNumericFallsBackToString) {
  Result<DataFrame> r = ReadCsvString("a\n1\nx\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("a").type(), DataType::kString);
}

TEST(CsvTest, IntegerWithDecimalBecomesDouble) {
  Result<DataFrame> r = ReadCsvString("a\n1\n2.5\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("a").type(), DataType::kDouble);
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndEscapes) {
  Result<DataFrame> r =
      ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("a").StringAt(0), "x,y");
  EXPECT_EQ(r->col("b").StringAt(0), "he said \"hi\"");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvTest, HandlesCrLf) {
  Result<DataFrame> r = ReadCsvString("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("b").Int64At(0), 2);
}

TEST(CsvTest, TypeInferenceDisabled) {
  CsvOptions options;
  options.infer_types = false;
  Result<DataFrame> r = ReadCsvString("a\n1\n", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("a").type(), DataType::kString);
}

TEST(CsvTest, RoundTripPreservesValuesAndNulls) {
  Result<DataFrame> original =
      ReadCsvString("id,v,s\n1,1.5,ann\n2,,\"b,c\"\n");
  ASSERT_TRUE(original.ok());
  std::string text = WriteCsvString(*original);
  Result<DataFrame> reparsed = ReadCsvString(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->NumRows(), 2u);
  EXPECT_TRUE(reparsed->col("v").IsNull(1));
  EXPECT_DOUBLE_EQ(reparsed->col("v").DoubleAt(0), 1.5);
  EXPECT_EQ(reparsed->col("s").StringAt(1), "b,c");
}

TEST(CsvTest, FileRoundTrip) {
  Result<DataFrame> original = ReadCsvString("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(original.ok());
  std::string path = testing::TempDir() + "/arda_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*original, path).ok());
  Result<DataFrame> reread = ReadCsvFile(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->col("b").StringAt(1), "y");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/arda.csv").ok());
}

}  // namespace
}  // namespace arda::df
