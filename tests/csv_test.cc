#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "dataframe/csv.h"
#include "util/rng.h"

namespace arda::df {
namespace {

TEST(CsvTest, ParsesTypedColumns) {
  Result<DataFrame> r = ReadCsvString("id,score,name\n1,2.5,ann\n2,3.5,bob\n");
  ASSERT_TRUE(r.ok());
  const DataFrame& frame = r.value();
  EXPECT_EQ(frame.NumRows(), 2u);
  EXPECT_EQ(frame.col("id").type(), DataType::kInt64);
  EXPECT_EQ(frame.col("score").type(), DataType::kDouble);
  EXPECT_EQ(frame.col("name").type(), DataType::kString);
  EXPECT_EQ(frame.col("id").Int64At(1), 2);
  EXPECT_DOUBLE_EQ(frame.col("score").DoubleAt(0), 2.5);
  EXPECT_EQ(frame.col("name").StringAt(1), "bob");
}

TEST(CsvTest, EmptyFieldsBecomeNulls) {
  Result<DataFrame> r = ReadCsvString("a,b\n1,\n,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->col("b").IsNull(0));
  EXPECT_TRUE(r->col("a").IsNull(1));
  EXPECT_EQ(r->col("a").Int64At(0), 1);
}

TEST(CsvTest, MixedNumericFallsBackToString) {
  Result<DataFrame> r = ReadCsvString("a\n1\nx\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("a").type(), DataType::kString);
}

TEST(CsvTest, IntegerWithDecimalBecomesDouble) {
  Result<DataFrame> r = ReadCsvString("a\n1\n2.5\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("a").type(), DataType::kDouble);
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndEscapes) {
  Result<DataFrame> r =
      ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("a").StringAt(0), "x,y");
  EXPECT_EQ(r->col("b").StringAt(0), "he said \"hi\"");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvTest, HandlesCrLf) {
  Result<DataFrame> r = ReadCsvString("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("b").Int64At(0), 2);
}

TEST(CsvTest, TypeInferenceDisabled) {
  CsvOptions options;
  options.infer_types = false;
  Result<DataFrame> r = ReadCsvString("a\n1\n", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("a").type(), DataType::kString);
}

TEST(CsvTest, RoundTripPreservesValuesAndNulls) {
  Result<DataFrame> original =
      ReadCsvString("id,v,s\n1,1.5,ann\n2,,\"b,c\"\n");
  ASSERT_TRUE(original.ok());
  std::string text = WriteCsvString(*original);
  Result<DataFrame> reparsed = ReadCsvString(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->NumRows(), 2u);
  EXPECT_TRUE(reparsed->col("v").IsNull(1));
  EXPECT_DOUBLE_EQ(reparsed->col("v").DoubleAt(0), 1.5);
  EXPECT_EQ(reparsed->col("s").StringAt(1), "b,c");
}

TEST(CsvTest, FileRoundTrip) {
  Result<DataFrame> original = ReadCsvString("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(original.ok());
  std::string path = testing::TempDir() + "/arda_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*original, path).ok());
  Result<DataFrame> reread = ReadCsvFile(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->col("b").StringAt(1), "y");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/arda.csv").ok());
}

TEST(CsvTest, QuotedFieldWithEmbeddedNewline) {
  Result<DataFrame> r = ReadCsvString("a,b\n\"x\ny\",1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->col("a").StringAt(0), "x\ny");
  EXPECT_EQ(r->col("b").Int64At(0), 1);
}

TEST(CsvTest, QuotedFieldWithEmbeddedCrLf) {
  // The \r\n inside quotes is field content, the \r\n outside quotes is a
  // record terminator.
  Result<DataFrame> r = ReadCsvString("a,b\r\n\"x\r\ny\",1\r\n2,3\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
  EXPECT_EQ(r->col("a").StringAt(0), "x\r\ny");
  EXPECT_EQ(r->col("a").StringAt(1), "2");
  EXPECT_EQ(r->col("b").Int64At(1), 3);
}

TEST(CsvTest, EmbeddedNewlineHeader) {
  Result<DataFrame> r = ReadCsvString("\"we\nird\",b\n1,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("we\nird").Int64At(0), 1);
}

TEST(CsvTest, QuotedEmptyIsEmptyStringNotNull) {
  CsvOptions options;
  options.infer_types = false;
  Result<DataFrame> r = ReadCsvString("a,b\n\"\",\n", options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->col("a").IsNull(0));
  EXPECT_EQ(r->col("a").StringAt(0), "");
  EXPECT_TRUE(r->col("b").IsNull(0));
}

TEST(CsvTest, WriterRoundTripsTrickyFields) {
  Column c = Column::Empty("s", DataType::kString);
  c.AppendString("line\nbreak");
  c.AppendString("crlf\r\nbreak");
  c.AppendString("bare\rcr");
  c.AppendString("comma, quote \" both");
  c.AppendString("");
  c.AppendNull();
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(std::move(c)).ok());
  // A second column keeps the all-null record non-blank (a lone null in a
  // single-column frame would serialize to a blank line, which the reader
  // skips by design — see docs/csv_dialect.md).
  ASSERT_TRUE(frame
                  .AddColumn(Column::Int64("id", {0, 1, 2, 3, 4, 5}))
                  .ok());

  std::string text = WriteCsvString(frame);
  CsvOptions options;
  options.infer_types = false;
  Result<DataFrame> back = ReadCsvString(text, options);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->NumRows(), 6u);
  EXPECT_EQ(back->col("s").StringAt(0), "line\nbreak");
  EXPECT_EQ(back->col("s").StringAt(1), "crlf\r\nbreak");
  EXPECT_EQ(back->col("s").StringAt(2), "bare\rcr");
  EXPECT_EQ(back->col("s").StringAt(3), "comma, quote \" both");
  EXPECT_FALSE(back->col("s").IsNull(4));
  EXPECT_EQ(back->col("s").StringAt(4), "");
  EXPECT_TRUE(back->col("s").IsNull(5));
}

TEST(CsvTest, NumericGrammarTable) {
  // Positive / negative inference cases from docs/csv_dialect.md. Each
  // column holds one candidate token; the expected type says whether the
  // strict numeric grammar admits it.
  const struct {
    const char* token;
    DataType expected;
  } kCases[] = {
      {"1", DataType::kInt64},
      {"-42", DataType::kInt64},
      {"007", DataType::kInt64},
      {"9223372036854775807", DataType::kInt64},
      {"2.5", DataType::kDouble},
      {".5", DataType::kDouble},
      {"5.", DataType::kDouble},
      {"-1e3", DataType::kDouble},
      {"1e-320", DataType::kDouble},  // subnormal — was a string before
      {"9223372036854775808", DataType::kDouble},  // int64 overflow
      {"nan", DataType::kString},
      {"NaN", DataType::kString},
      {"inf", DataType::kString},
      {"Infinity", DataType::kString},
      {"-inf", DataType::kString},
      {"0x1p3", DataType::kString},  // hex float
      {"0x10", DataType::kString},
      {"+1", DataType::kString},  // explicit plus sign
      {"1e999", DataType::kString},  // double overflow
      {"1_000", DataType::kString},
      {"1,5", DataType::kString},  // locale decimal comma (quoted below)
  };
  for (const auto& c : kCases) {
    std::string token = c.token;
    std::string text = "a\n\"" + token + "\"\n";
    // Quote the data cell so delimiters in tokens stay one field; quoting
    // does not affect numeric inference of non-empty fields.
    Result<DataFrame> r = ReadCsvString(text);
    ASSERT_TRUE(r.ok()) << token;
    EXPECT_EQ(r->col("a").type(), c.expected) << "token: " << token;
  }
}

TEST(CsvTest, SubnormalValueSurvivesInference) {
  // Regression: errno=ERANGE from strtod on subnormals used to knock the
  // whole column down to string.
  Result<DataFrame> r = ReadCsvString("a\n1e-320\n2.5\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->col("a").type(), DataType::kDouble);
  EXPECT_GT(r->col("a").DoubleAt(0), 0.0);
  EXPECT_LT(r->col("a").DoubleAt(0), 1e-300);
}

TEST(CsvTest, QuotedEmptyForcesStringInference) {
  // "" is an explicit empty string; inferring a numeric type would
  // collapse it into a null and lose the null-vs-empty distinction. The
  // bare empty field in row 2 stays a null.
  Result<DataFrame> r = ReadCsvString("a,b\n\"\",1\n,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("a").type(), DataType::kString);
  EXPECT_FALSE(r->col("a").IsNull(0));
  EXPECT_EQ(r->col("a").StringAt(0), "");
  EXPECT_TRUE(r->col("a").IsNull(1));
  EXPECT_EQ(r->col("b").type(), DataType::kInt64);
}

TEST(CsvTest, BareEmptyFieldsDoNotForceString) {
  // Bare empties are nulls and leave numeric inference alone.
  Result<DataFrame> r = ReadCsvString("a\n1\n\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col("a").type(), DataType::kString);
  Result<DataFrame> numeric = ReadCsvString("a,b\n1,x\n,y\n");
  ASSERT_TRUE(numeric.ok());
  EXPECT_EQ(numeric->col("a").type(), DataType::kInt64);
}

TEST(CsvTest, StripsUtf8Bom) {
  // A UTF-8 BOM before the header must not become part of the first
  // column's name.
  Result<DataFrame> r = ReadCsvString("\xEF\xBB\xBFid,name\n1,ann\n");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->HasColumn("id"));
  EXPECT_EQ(r->col("id").Int64At(0), 1);
  // A BOM mid-file is data, not a marker.
  Result<DataFrame> mid = ReadCsvString("a\n\xEF\xBB\xBFx\n");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->col("a").StringAt(0), "\xEF\xBB\xBFx");
}

TEST(CsvTest, BomOnlyInputFails) {
  EXPECT_FALSE(ReadCsvString("\xEF\xBB\xBF").ok());
}

TEST(CsvTest, ChunkedParseMatchesSerial) {
  // Many tiny chunks with tricky content must produce the same frame the
  // serial single-chunk path does.
  std::string text = "id,v,s\n";
  for (int i = 0; i < 200; ++i) {
    text += std::to_string(i) + "," + std::to_string(i) + ".5,\"s," +
            std::to_string(i) + "\"\n";
  }
  CsvOptions serial;
  serial.num_threads = 1;
  Result<DataFrame> expect = ReadCsvString(text, serial);
  ASSERT_TRUE(expect.ok());

  CsvOptions chunked;
  chunked.num_threads = 4;
  chunked.chunk_bytes = 16;  // force a chunk every record or two
  Result<DataFrame> got = ReadCsvString(text, chunked);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(WriteCsvString(*got), WriteCsvString(*expect));
  EXPECT_EQ(got->col("v").type(), DataType::kDouble);
}

TEST(CsvTest, ChunkedParseReportsFirstBadRow) {
  // The reported ragged-row index must match the serial reader's (the
  // first bad data record), regardless of chunking.
  std::string text = "a,b\n1,2\n3\n4\n5,6\n";
  CsvOptions chunked;
  chunked.num_threads = 4;
  chunked.chunk_bytes = 1;
  Result<DataFrame> r = ReadCsvString(text, chunked);
  ASSERT_FALSE(r.ok());
  CsvOptions serial;
  serial.num_threads = 1;
  Result<DataFrame> s = ReadCsvString(text, serial);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(r.status().ToString(), s.status().ToString());
}

TEST(CsvTest, FuzzRoundTripIsLossless) {
  // Random string frames built from the characters that stress the
  // dialect: delimiters, quotes, newlines, carriage returns, emptiness.
  const std::string alphabet = "ab,\"\n\r ";
  Rng rng(2024);
  for (int iter = 0; iter < 50; ++iter) {
    const size_t cols = 1 + static_cast<size_t>(rng.UniformUint64(3));
    const size_t rows = 1 + static_cast<size_t>(rng.UniformUint64(8));
    DataFrame frame;
    for (size_t c = 0; c < cols; ++c) {
      Column col = Column::Empty("c" + std::to_string(c),
                                 DataType::kString);
      for (size_t r = 0; r < rows; ++r) {
        // A lone null row in a single-column frame would serialize to a
        // blank line, which the reader (by design) skips — avoid that
        // one ambiguous shape.
        const bool allow_null = cols > 1;
        if (allow_null && rng.UniformUint64(5) == 0) {
          col.AppendNull();
          continue;
        }
        const size_t len = static_cast<size_t>(rng.UniformUint64(6));
        std::string value;
        for (size_t i = 0; i < len; ++i) {
          value += alphabet[rng.UniformUint64(alphabet.size())];
        }
        col.AppendString(std::move(value));
      }
      ASSERT_TRUE(frame.AddColumn(std::move(col)).ok());
    }

    std::string text = WriteCsvString(frame);
    CsvOptions options;
    options.infer_types = false;
    Result<DataFrame> back = ReadCsvString(text, options);
    ASSERT_TRUE(back.ok()) << "iter " << iter << " text:\n" << text;
    ASSERT_EQ(back->NumRows(), rows) << "iter " << iter;
    for (size_t c = 0; c < cols; ++c) {
      const Column& a = frame.col("c" + std::to_string(c));
      const Column& b = back->col("c" + std::to_string(c));
      for (size_t r = 0; r < rows; ++r) {
        ASSERT_EQ(a.IsNull(r), b.IsNull(r))
            << "iter " << iter << " cell (" << r << "," << c << ")";
        if (!a.IsNull(r)) {
          ASSERT_EQ(a.StringAt(r), b.StringAt(r))
              << "iter " << iter << " cell (" << r << "," << c << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace arda::df
