// Determinism contract of the thread-pool parallel regions: for identical
// seeds, every num_threads value must produce bit-identical results (the
// pool only distributes work; RNG sub-streams are pre-drawn serially and
// reductions happen in deterministic order).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/arda.h"
#include "core/report_io.h"
#include "data/generators.h"
#include "dataframe/csv.h"
#include "featsel/rifs.h"
#include "ml/evaluator.h"
#include "ml/random_forest.h"
#include "simd/simd.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace arda {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(257);
  for (auto& c : counts) c = 0;
  pool.ParallelFor(counts.size(), 4,
                   [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, 4, [&](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, SerialParallelismRunsInline) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(16, 1, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, 3, [&](size_t) {
    // The nested loop must run inline on the task's thread.
    std::thread::id task_thread = std::this_thread::get_id();
    pool.ParallelFor(8, 3, [&](size_t) {
      EXPECT_EQ(std::this_thread::get_id(), task_thread);
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(64, 3,
                                [&](size_t i) {
                                  if (i == 17) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, FreeFunctionResolvesThreads) {
  EXPECT_GE(HardwareConcurrency(), 1u);
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(5), 5u);
  EXPECT_EQ(ResolveNumThreads(0), HardwareConcurrency());
  std::vector<int> hits(100, 0);
  std::atomic<int> sum{0};
  ParallelFor(hits.size(), 8, [&](size_t i) {
    hits[i] += 1;
    sum.fetch_add(static_cast<int>(i));
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

ml::Dataset MakeRegressionData(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.task = ml::TaskType::kRegression;
  data.x = la::Matrix(rows, cols);
  data.y.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) data.x(r, c) = rng.Normal();
    data.y[r] = 2.0 * data.x(r, 0) - data.x(r, 1) + rng.Normal(0.0, 0.1);
  }
  for (size_t c = 0; c < cols; ++c) {
    data.feature_names.push_back("f" + std::to_string(c));
  }
  return data;
}

TEST(ParallelDeterminismTest, RandomForestFitIsThreadCountInvariant) {
  ml::Dataset data = MakeRegressionData(150, 12, 3);
  ml::ForestConfig config;
  config.task = ml::TaskType::kRegression;
  config.num_trees = 16;
  config.seed = 99;

  config.num_threads = 1;
  ml::RandomForest serial(config);
  serial.Fit(data.x, data.y);

  config.num_threads = 8;
  ml::RandomForest parallel(config);
  parallel.Fit(data.x, data.y);

  // Bit-identical: exact equality on doubles is intentional.
  EXPECT_EQ(serial.feature_importances(), parallel.feature_importances());
  EXPECT_EQ(serial.Predict(data.x), parallel.Predict(data.x));
}

TEST(ParallelDeterminismTest, RandomForestClassificationInvariant) {
  ml::Dataset data = MakeRegressionData(120, 8, 11);
  for (double& label : data.y) label = label > 0.0 ? 1.0 : 0.0;
  ml::ForestConfig config;
  config.task = ml::TaskType::kClassification;
  config.num_trees = 12;
  config.seed = 7;

  config.num_threads = 1;
  ml::RandomForest serial(config);
  serial.Fit(data.x, data.y);
  config.num_threads = 8;
  ml::RandomForest parallel(config);
  parallel.Fit(data.x, data.y);

  EXPECT_EQ(serial.Predict(data.x), parallel.Predict(data.x));
  EXPECT_EQ(serial.feature_importances(), parallel.feature_importances());
}

TEST(ParallelDeterminismTest, RifsIsThreadCountInvariant) {
  ml::Dataset data = MakeRegressionData(120, 10, 17);
  ml::Evaluator evaluator(data, 0.25, 5);
  featsel::RifsConfig config;
  config.num_rounds = 5;

  config.num_threads = 1;
  Rng rng_serial(41);
  featsel::RifsResult serial =
      featsel::RunRifs(data, evaluator, config, &rng_serial);

  config.num_threads = 8;
  Rng rng_parallel(41);
  featsel::RifsResult parallel =
      featsel::RunRifs(data, evaluator, config, &rng_parallel);

  EXPECT_EQ(serial.selected, parallel.selected);
  EXPECT_EQ(serial.beat_noise_fraction, parallel.beat_noise_fraction);
  EXPECT_DOUBLE_EQ(serial.score, parallel.score);
  EXPECT_DOUBLE_EQ(serial.chosen_threshold, parallel.chosen_threshold);
  // The two streams must also have advanced identically.
  EXPECT_EQ(rng_serial.NextUint64(), rng_parallel.NextUint64());
}

TEST(ParallelDeterminismTest, PipelineIsThreadCountInvariant) {
  data::Scenario scenario =
      data::MakePovertyScenario(7, data::ScenarioScale::kSmall);

  auto run = [&](size_t num_threads) {
    core::ArdaConfig config;
    config.seed = 21;
    config.rifs.num_rounds = 4;
    config.num_threads = num_threads;
    core::Arda arda(config);
    Result<core::ArdaReport> report = arda.Run(scenario.MakeTask());
    EXPECT_TRUE(report.ok());
    return std::move(report).value();
  };

  core::ArdaReport serial = run(1);
  core::ArdaReport parallel = run(8);

  EXPECT_EQ(serial.num_threads, 1u);
  EXPECT_EQ(parallel.num_threads, 8u);
  EXPECT_DOUBLE_EQ(serial.base_score, parallel.base_score);
  EXPECT_DOUBLE_EQ(serial.final_score, parallel.final_score);
  EXPECT_EQ(serial.tables_joined, parallel.tables_joined);
  EXPECT_EQ(serial.selected_features, parallel.selected_features);
  ASSERT_EQ(serial.batches.size(), parallel.batches.size());
  for (size_t i = 0; i < serial.batches.size(); ++i) {
    EXPECT_EQ(serial.batches[i].tables, parallel.batches[i].tables);
    EXPECT_EQ(serial.batches[i].accepted, parallel.batches[i].accepted);
    EXPECT_DOUBLE_EQ(serial.batches[i].score_after,
                     parallel.batches[i].score_after);
  }
  // The augmented tables must match cell for cell; CSV text equality is
  // the strictest cheap check.
  EXPECT_EQ(df::WriteCsvString(serial.augmented),
            df::WriteCsvString(parallel.augmented));
}

TEST(ParallelDeterminismTest, ChunkedCsvReadIsThreadCountInvariant) {
  // The chunked CSV reader scans record boundaries once, then infers and
  // parses chunks on the pool; output must be bit-identical for every
  // thread count and chunk size on every fixture shape.
  std::vector<std::string> fixtures;
  // Mixed types with nulls, quoted commas, embedded newlines, CRLF.
  fixtures.push_back(
      "id,v,s\r\n1,2.5,\"a,b\"\r\n2,,\"line\nbreak\"\r\n3,4.5,plain\r\n");
  // All-string with quoted empties and unicode bytes.
  fixtures.push_back("a,b\n\"\",x\ny,\"\"\n\xC3\xA9,z\n");
  // Large generated table so chunking actually splits.
  {
    Rng rng(5);
    std::string text = "k,x,label\n";
    for (int i = 0; i < 500; ++i) {
      text += std::to_string(i) + "," +
              std::to_string(rng.Normal()) + ",c" +
              std::to_string(rng.UniformUint64(7)) + "\n";
    }
    fixtures.push_back(std::move(text));
  }
  for (size_t f = 0; f < fixtures.size(); ++f) {
    df::CsvOptions serial;
    serial.num_threads = 1;
    Result<df::DataFrame> expect = df::ReadCsvString(fixtures[f], serial);
    ASSERT_TRUE(expect.ok()) << "fixture " << f;
    std::string expect_text = df::WriteCsvString(*expect);
    for (size_t threads : {size_t{2}, size_t{8}}) {
      for (size_t chunk_bytes : {size_t{1}, size_t{64}, size_t{1 << 20}}) {
        df::CsvOptions options;
        options.num_threads = threads;
        options.chunk_bytes = chunk_bytes;
        Result<df::DataFrame> got =
            df::ReadCsvString(fixtures[f], options);
        ASSERT_TRUE(got.ok())
            << "fixture " << f << " threads " << threads;
        EXPECT_EQ(df::WriteCsvString(*got), expect_text)
            << "fixture " << f << " threads " << threads << " chunk "
            << chunk_bytes;
        // Types must match too (text equality alone can't see
        // int64-vs-double for values like 1).
        for (size_t c = 0; c < expect->NumCols(); ++c) {
          EXPECT_EQ(got->col(c).type(), expect->col(c).type())
              << "fixture " << f << " col " << c;
        }
      }
    }
  }
}

TEST(ParallelDeterminismTest, TracingDoesNotChangeResults) {
  // Observability must never feed back into computation: the full
  // pipeline (across thread counts) is bit-identical with span tracing
  // armed vs. disabled.
  data::Scenario scenario =
      data::MakePovertyScenario(13, data::ScenarioScale::kSmall);

  auto run = [&](size_t num_threads, bool tracing) {
    if (tracing) {
      trace::Enable();
    } else {
      trace::Disable();
    }
    core::ArdaConfig config;
    config.seed = 33;
    config.rifs.num_rounds = 4;
    config.num_threads = num_threads;
    Result<core::ArdaReport> report =
        core::Arda(config).Run(scenario.MakeTask());
    trace::Disable();
    trace::Reset();
    EXPECT_TRUE(report.ok());
    return std::move(report).value();
  };

  core::ArdaReport plain_serial = run(1, false);
  core::ArdaReport traced_serial = run(1, true);
  core::ArdaReport traced_parallel = run(8, true);

  for (const core::ArdaReport* traced : {&traced_serial, &traced_parallel}) {
    EXPECT_DOUBLE_EQ(plain_serial.base_score, traced->base_score);
    EXPECT_DOUBLE_EQ(plain_serial.final_score, traced->final_score);
    EXPECT_EQ(plain_serial.selected_features, traced->selected_features);
    EXPECT_EQ(df::WriteCsvString(plain_serial.augmented),
              df::WriteCsvString(traced->augmented));
  }
}

TEST(ParallelDeterminismTest, PipelineIsSimdLevelInvariant) {
  // The full pipeline must be bit-identical across the SIMD dispatch
  // level x thread count grid: the vector kernels match their scalar
  // fallbacks bit for bit (DESIGN.md "SIMD dispatch"), independently of
  // how the pool slices the work. The avx2 column of the grid is skipped
  // when the CPU lacks AVX2 or ARDA_SIMD=scalar pins the process.
  data::Scenario scenario =
      data::MakePovertyScenario(29, data::ScenarioScale::kSmall);

  auto run = [&](simd::SimdLevel level, size_t num_threads) {
    EXPECT_TRUE(simd::SetLevel(level));
    core::ArdaConfig config;
    config.seed = 17;
    config.rifs.num_rounds = 4;
    config.num_threads = num_threads;
    Result<core::ArdaReport> report =
        core::Arda(config).Run(scenario.MakeTask());
    EXPECT_TRUE(report.ok());
    return std::move(report).value();
  };

  const simd::SimdLevel prev = simd::ActiveLevel();
  std::vector<simd::SimdLevel> levels = {simd::SimdLevel::kScalar};
  const char* env = std::getenv("ARDA_SIMD");
  const bool pinned_scalar =
      env != nullptr && std::string_view(env) == "scalar";
  if (simd::Avx2Supported() && !pinned_scalar) {
    levels.push_back(simd::SimdLevel::kAvx2);
  }

  core::ArdaReport reference = run(simd::SimdLevel::kScalar, 1);
  EXPECT_EQ(reference.simd_level, std::string("scalar"));
  const std::string reference_csv = df::WriteCsvString(reference.augmented);
  for (simd::SimdLevel level : levels) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      if (level == simd::SimdLevel::kScalar && threads == 1) continue;
      core::ArdaReport got = run(level, threads);
      SCOPED_TRACE(std::string(simd::LevelName(level)) + " x " +
                   std::to_string(threads) + " threads");
      EXPECT_EQ(got.simd_level, std::string(simd::LevelName(level)));
      EXPECT_DOUBLE_EQ(reference.base_score, got.base_score);
      EXPECT_DOUBLE_EQ(reference.final_score, got.final_score);
      EXPECT_EQ(reference.selected_features, got.selected_features);
      EXPECT_EQ(reference_csv, df::WriteCsvString(got.augmented));
    }
  }
  simd::SetLevel(prev);
}

TEST(ParallelDeterminismTest, ReportJsonCarriesThreadCount) {
  core::ArdaReport report;
  report.num_threads = 6;
  report.simd_level = "avx2";
  std::string json = core::ReportToJson(report);
  EXPECT_NE(json.find("\"num_threads\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"simd_level\": \"avx2\""), std::string::npos);
}

}  // namespace
}  // namespace arda
