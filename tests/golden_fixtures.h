#ifndef ARDA_TESTS_GOLDEN_FIXTURES_H_
#define ARDA_TESTS_GOLDEN_FIXTURES_H_

// Fixed-seed workloads whose exact outputs are pinned as golden files in
// tests/golden/ (generated once by tools/capture_goldens from the
// pre-rewrite kernels). Shared by the capture tool and
// golden_kernels_test so both always run the identical workload.
//
// The inputs deliberately contain the awkward cases the kernels must
// preserve bit for bit: tied feature values (split tie-breaks), nulls in
// key columns (null-vs-value grouping), duplicate foreign keys (the
// pre-aggregation path), categorical mode ties (lexicographic winner),
// and double keys that differ in bits but collide under the "%.10g"
// rendering that defines key equality.

#include <cmath>
#include <string>
#include <vector>

#include "data/generators.h"
#include "dataframe/aggregate.h"
#include "dataframe/csv.h"
#include "join/geo_join.h"
#include "join/join_executor.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "util/check.h"
#include "util/string_util.h"

namespace arda::golden {

inline ml::Dataset GoldenRegressionData() {
  Rng rng(9);
  ml::Dataset data;
  data.task = ml::TaskType::kRegression;
  const size_t rows = 300, cols = 24;
  data.x = la::Matrix(rows, cols);
  data.y.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      // Quantized values create tied feature values at many thresholds.
      data.x(r, c) = std::round(rng.Normal() * 8.0) / 8.0;
    }
    data.y[r] = data.x(r, 0) - 0.5 * data.x(r, 1) + rng.Normal(0.0, 0.1);
  }
  for (size_t c = 0; c < cols; ++c) {
    data.feature_names.push_back("f" + std::to_string(c));
  }
  return data;
}

inline std::string GoldenClassificationTree() {
  data::MicroBenchmark digits = data::MakeDigitsBenchmark(5, 2.0);
  ml::TreeConfig config;
  config.task = ml::TaskType::kClassification;
  config.seed = 5;
  ml::DecisionTree tree(config);
  tree.Fit(digits.data.x, digits.data.y);
  return tree.Serialize();
}

inline std::string GoldenRegressionTree() {
  ml::Dataset data = GoldenRegressionData();
  ml::TreeConfig config;
  config.task = ml::TaskType::kRegression;
  config.seed = 9;
  ml::DecisionTree tree(config);
  tree.Fit(data.x, data.y);
  return tree.Serialize();
}

/// Forest predictions + importances, hexfloat, at the given thread count.
/// Thread-count invariance means the same string for any `num_threads`.
inline std::string GoldenForestPredictions(size_t num_threads) {
  data::MicroBenchmark digits = data::MakeDigitsBenchmark(7, 2.0);
  ml::ForestConfig config;
  config.task = ml::TaskType::kClassification;
  config.num_trees = 8;
  config.num_threads = num_threads;
  config.seed = 7;
  ml::RandomForest forest(config);
  forest.Fit(digits.data.x, digits.data.y);
  std::string out;
  for (double v : forest.Predict(digits.data.x)) {
    out += StrFormat("%a\n", v);
  }
  out += "importances\n";
  for (double v : forest.feature_importances()) {
    out += StrFormat("%a\n", v);
  }
  return out;
}

/// Base table: int64 id + string city + double val key columns with nulls.
inline df::DataFrame GoldenBaseFrame() {
  df::DataFrame base;
  df::Column id = df::Column::Empty("id", df::DataType::kInt64);
  df::Column city = df::Column::Empty("city", df::DataType::kString);
  df::Column t = df::Column::Empty("t", df::DataType::kDouble);
  df::Column payload = df::Column::Empty("payload", df::DataType::kDouble);
  Rng rng(31);
  static const char* kCities[] = {"ann arbor", "boston", "cambridge",
                                  "dover"};
  for (size_t i = 0; i < 64; ++i) {
    if (i % 13 == 12) {
      id.AppendNull();
    } else {
      id.AppendInt64(static_cast<int64_t>(rng.UniformUint64(12)));
    }
    if (i % 17 == 16) {
      city.AppendNull();
    } else {
      city.AppendString(kCities[rng.UniformUint64(4)]);
    }
    t.AppendDouble(static_cast<double>(i) + 0.25);
    payload.AppendDouble(rng.Normal());
  }
  ARDA_CHECK(base.AddColumn(std::move(id)).ok());
  ARDA_CHECK(base.AddColumn(std::move(city)).ok());
  ARDA_CHECK(base.AddColumn(std::move(t)).ok());
  ARDA_CHECK(base.AddColumn(std::move(payload)).ok());
  return base;
}

/// Foreign table with duplicate keys (forces pre-aggregation), nulls,
/// a categorical value column with mode ties, and double values that
/// collide under "%.10g" rendering while differing in bits.
inline df::DataFrame GoldenForeignFrame() {
  df::DataFrame foreign;
  df::Column id = df::Column::Empty("fid", df::DataType::kInt64);
  df::Column city = df::Column::Empty("fcity", df::DataType::kString);
  df::Column t = df::Column::Empty("ft", df::DataType::kDouble);
  df::Column score = df::Column::Empty("score", df::DataType::kDouble);
  df::Column tag = df::Column::Empty("tag", df::DataType::kString);
  Rng rng(47);
  static const char* kCities[] = {"ann arbor", "boston", "cambridge",
                                  "dover"};
  static const char* kTags[] = {"alpha", "beta", "beta", "alpha", "gamma"};
  for (size_t i = 0; i < 96; ++i) {
    if (i % 19 == 18) {
      id.AppendNull();
    } else {
      id.AppendInt64(static_cast<int64_t>(rng.UniformUint64(12)));
    }
    city.AppendString(kCities[rng.UniformUint64(4)]);
    double base_t = static_cast<double>(i % 40) * 1.7;
    // Same "%.10g" string, different bits, for a fraction of rows.
    if (i % 7 == 3) base_t += 1e-12;
    t.AppendDouble(base_t);
    if (i % 11 == 10) {
      score.AppendNull();
    } else {
      score.AppendDouble(rng.Normal());
    }
    tag.AppendString(kTags[i % 5]);
  }
  ARDA_CHECK(foreign.AddColumn(std::move(id)).ok());
  ARDA_CHECK(foreign.AddColumn(std::move(city)).ok());
  ARDA_CHECK(foreign.AddColumn(std::move(t)).ok());
  ARDA_CHECK(foreign.AddColumn(std::move(score)).ok());
  ARDA_CHECK(foreign.AddColumn(std::move(tag)).ok());
  return foreign;
}

/// `partition_count` pins the radix-partitioned out-of-core path (0 =
/// single-pass); the output is bit-identical for every value by contract.
inline std::string GoldenHardJoinCsv(size_t partition_count = 0) {
  df::DataFrame base = GoldenBaseFrame();
  df::DataFrame foreign = GoldenForeignFrame();
  discovery::CandidateJoin cand;
  cand.foreign_table = "aug";
  cand.keys = {
      discovery::JoinKeyPair{"id", "fid", discovery::KeyKind::kHard},
      discovery::JoinKeyPair{"city", "fcity", discovery::KeyKind::kHard}};
  join::JoinOptions options;
  options.partition_count = partition_count;
  Rng rng(3);
  Result<df::DataFrame> joined =
      join::ExecuteLeftJoin(base, foreign, cand, options, &rng);
  ARDA_CHECK(joined.ok());
  return df::WriteCsvString(joined.value());
}

/// Soft joins never partition their probe, but `partition_count` still
/// reaches the pre-aggregation group-by; output must not change.
inline std::string GoldenSoftJoinCsv(size_t partition_count = 0) {
  df::DataFrame base = GoldenBaseFrame();
  df::DataFrame foreign = GoldenForeignFrame();
  discovery::CandidateJoin cand;
  cand.foreign_table = "aug";
  cand.keys = {
      discovery::JoinKeyPair{"city", "fcity", discovery::KeyKind::kHard},
      discovery::JoinKeyPair{"t", "ft", discovery::KeyKind::kSoft}};
  join::JoinOptions options;
  options.soft_method = join::SoftJoinMethod::kTwoWayNearest;
  options.partition_count = partition_count;
  Rng rng(5);
  Result<df::DataFrame> joined =
      join::ExecuteLeftJoin(base, foreign, cand, options, &rng);
  ARDA_CHECK(joined.ok());
  return df::WriteCsvString(joined.value());
}

inline std::string GoldenGeoJoinCsv() {
  df::DataFrame base;
  df::DataFrame foreign;
  Rng rng(59);
  {
    df::Column lat = df::Column::Empty("lat", df::DataType::kDouble);
    df::Column lon = df::Column::Empty("lon", df::DataType::kDouble);
    df::Column region = df::Column::Empty("region", df::DataType::kString);
    for (size_t i = 0; i < 48; ++i) {
      lat.AppendDouble(rng.Uniform(-10.0, 10.0));
      lon.AppendDouble(rng.Uniform(30.0, 50.0));
      region.AppendString(i % 2 == 0 ? "north" : "south");
    }
    ARDA_CHECK(base.AddColumn(std::move(lat)).ok());
    ARDA_CHECK(base.AddColumn(std::move(lon)).ok());
    ARDA_CHECK(base.AddColumn(std::move(region)).ok());
  }
  {
    df::Column lat = df::Column::Empty("glat", df::DataType::kDouble);
    df::Column lon = df::Column::Empty("glon", df::DataType::kDouble);
    df::Column region = df::Column::Empty("gregion", df::DataType::kString);
    df::Column val = df::Column::Empty("gval", df::DataType::kDouble);
    for (size_t i = 0; i < 40; ++i) {
      // Duplicated coordinates force the geo pre-aggregation path.
      double a = rng.Uniform(-10.0, 10.0);
      double b = rng.Uniform(30.0, 50.0);
      size_t copies = i % 3 == 0 ? 2 : 1;
      for (size_t c = 0; c < copies; ++c) {
        lat.AppendDouble(a);
        lon.AppendDouble(b);
        region.AppendString(i % 2 == 0 ? "north" : "south");
        val.AppendDouble(rng.Normal());
      }
    }
    ARDA_CHECK(foreign.AddColumn(std::move(lat)).ok());
    ARDA_CHECK(foreign.AddColumn(std::move(lon)).ok());
    ARDA_CHECK(foreign.AddColumn(std::move(region)).ok());
    ARDA_CHECK(foreign.AddColumn(std::move(val)).ok());
  }
  discovery::CandidateJoin cand;
  cand.foreign_table = "geo";
  cand.keys = {
      discovery::JoinKeyPair{"region", "gregion", discovery::KeyKind::kHard},
      discovery::JoinKeyPair{"lat", "glat", discovery::KeyKind::kSoft},
      discovery::JoinKeyPair{"lon", "glon", discovery::KeyKind::kSoft}};
  Rng rng2(7);
  Result<df::DataFrame> joined =
      join::ExecuteGeoLeftJoin(base, foreign, cand, {}, &rng2);
  ARDA_CHECK(joined.ok());
  return df::WriteCsvString(joined.value());
}

inline std::string GoldenAggregateCsv(size_t partition_count = 0) {
  df::DataFrame frame = GoldenForeignFrame();
  df::AggregateOptions options;
  options.numeric = df::NumericAgg::kMedian;
  options.categorical = df::CategoricalAgg::kMode;
  options.add_count = true;
  options.partition_count = partition_count;
  Result<df::DataFrame> grouped =
      df::GroupByAggregate(frame, {"fid", "fcity", "ft"}, options);
  ARDA_CHECK(grouped.ok());
  return df::WriteCsvString(grouped.value());
}

}  // namespace arda::golden

#endif  // ARDA_TESTS_GOLDEN_FIXTURES_H_
