// Semantic properties of the scenario generators: the evaluation's
// conclusions only mean something if the planted signal actually behaves
// as designed — signal tables improve the model, the school co-predictor
// pair only helps jointly, and soft-key tables are misaligned enough that
// exact joins fail.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/arda.h"
#include "discovery/discovery.h"
#include "data/generators.h"
#include "join/impute.h"
#include "join/join_executor.h"
#include "join/resample.h"
#include "ml/evaluator.h"

namespace arda::data {
namespace {

// Joins the named candidate tables of a scenario onto its base and
// returns the fast-estimator holdout score.
double ScoreWithTables(const Scenario& scenario,
                       const std::vector<std::string>& tables,
                       uint64_t seed) {
  df::DataFrame working = scenario.base;
  Rng rng(seed);
  for (const discovery::CandidateJoin& cand : scenario.candidates) {
    if (std::find(tables.begin(), tables.end(), cand.foreign_table) ==
        tables.end()) {
      continue;
    }
    Result<df::DataFrame> joined = join::ExecuteLeftJoin(
        working, scenario.repo.GetOrDie(cand.foreign_table), cand, {},
        &rng);
    if (joined.ok()) working = std::move(joined).value();
  }
  join::ImputeInPlace(&working, &rng);
  Result<ml::Dataset> data = core::BuildDataset(
      working, scenario.target_column, scenario.task);
  EXPECT_TRUE(data.ok());
  ml::Evaluator evaluator(*data, 0.25, seed);
  return evaluator.ScoreAllFeatures();
}

TEST(ScenarioSemanticsTest, PovertySignalTablesImproveScore) {
  Scenario scenario = MakePovertyScenario(7);
  double base = ScoreWithTables(scenario, {}, 11);
  double with_signal = ScoreWithTables(scenario, scenario.signal_tables, 11);
  EXPECT_GT(with_signal, base);
  // Regression: error at least halves with the full indicator set.
  EXPECT_LT(-with_signal, 0.7 * -base);
}

TEST(ScenarioSemanticsTest, TaxiWeatherTableImprovesScore) {
  Scenario scenario = MakeTaxiScenario(7);
  double base = ScoreWithTables(scenario, {}, 11);
  double with_weather = ScoreWithTables(scenario, {"weather"}, 11);
  EXPECT_GT(with_weather, base);
}

TEST(ScenarioSemanticsTest, NoiseTablesDoNotImproveLikeSignal) {
  Scenario scenario = MakePovertyScenario(7);
  // Pick a few noise tables (non-signal candidates).
  std::vector<std::string> noise;
  for (const discovery::CandidateJoin& cand : scenario.candidates) {
    if (std::find(scenario.signal_tables.begin(),
                  scenario.signal_tables.end(),
                  cand.foreign_table) == scenario.signal_tables.end()) {
      noise.push_back(cand.foreign_table);
      if (noise.size() == 4) break;
    }
  }
  double base = ScoreWithTables(scenario, {}, 11);
  double with_noise = ScoreWithTables(scenario, noise, 11);
  double with_signal = ScoreWithTables(scenario, scenario.signal_tables, 11);
  EXPECT_GT(with_signal, with_noise);
  // Noise may wiggle the score but must not approach the signal gain.
  EXPECT_LT(with_noise - base, 0.5 * (with_signal - base));
}

TEST(ScenarioSemanticsTest, SchoolCoPredictorsOnlyHelpJointly) {
  Scenario scenario = MakeSchoolScenario(false, 7);
  double base = ScoreWithTables(scenario, {}, 11);
  double tutoring_only = ScoreWithTables(scenario, {"tutoring"}, 11);
  double parents_only = ScoreWithTables(scenario, {"parents"}, 11);
  double both = ScoreWithTables(scenario, {"tutoring", "parents"}, 11);
  // The interaction (tutoring - 0.5) * parent_index is zero-mean in each
  // marginal: alone, neither table should give a real lift; together they
  // should.
  EXPECT_GT(both, base + 0.02);
  EXPECT_LT(tutoring_only - base, 0.6 * (both - base));
  EXPECT_LT(parents_only - base, 0.6 * (both - base));
}

TEST(ScenarioSemanticsTest, PickupTimestampsNeverAlignExactly) {
  Scenario scenario = MakePickupScenario(7);
  // Foreign time grids are deliberately misaligned with integer hours:
  // a hard join must find (almost) no matches.
  const df::Column& base_hours = scenario.base.col("hour");
  for (const std::string& table : scenario.signal_tables) {
    const df::DataFrame& foreign = scenario.repo.GetOrDie(table);
    double overlap =
        discovery::IntersectionScore(base_hours, foreign.col("hour"));
    EXPECT_LT(overlap, 0.05) << table;  // a handful of float coincidences
  }
}

TEST(ScenarioSemanticsTest, TaxiWeatherFinerGrainedThanBase) {
  Scenario scenario = MakeTaxiScenario(7);
  const df::DataFrame& weather = scenario.repo.GetOrDie("weather");
  double g_base = join::DetectGranularity(scenario.base.col("day"));
  double g_weather = join::DetectGranularity(weather.col("day"));
  EXPECT_GT(g_base, 1.5 * g_weather);  // triggers time resampling
}

TEST(ScenarioSemanticsTest, KrakenNoiseHurtsAllFeaturesModel) {
  MicroBenchmark clean = MakeKrakenBenchmark(7, 0.0);
  MicroBenchmark noisy = MakeKrakenBenchmark(7, 10.0);
  ml::Evaluator clean_eval(clean.data, 0.25, 11);
  ml::Evaluator noisy_eval(noisy.data, 0.25, 11);
  EXPECT_GT(clean_eval.ScoreAllFeatures(),
            noisy_eval.ScoreAllFeatures());
}

}  // namespace
}  // namespace arda::data
