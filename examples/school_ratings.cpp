// Example: classification augmentation at data-lake scale. The School (L)
// scenario has 350 candidate tables — a handful carry signal, including a
// pair of *co-predicting* features split across two tables (tutoring
// programs x parent engagement) that only help when joined together.
// This example contrasts ARDA's budget join plan with table-at-a-time
// processing and peeks into the RIFS noise-injection statistics.

#include <algorithm>
#include <cstdio>

#include "core/arda.h"
#include "data/generators.h"
#include "featsel/rifs.h"
#include "join/impute.h"
#include "join/join_executor.h"

int main() {
  using namespace arda;

  data::Scenario scenario =
      data::MakeSchoolScenario(/*large=*/true, /*seed=*/17);
  std::printf("School (L): %zu schools, %zu candidate tables\n",
              scenario.base.NumRows(), scenario.candidates.size());

  // ARDA with the default budget join plan on the 350-table pool.
  {
    core::ArdaConfig config;
    config.seed = 17;
    config.rifs.num_rounds = 6;
    core::Arda arda(config);
    Result<core::ArdaReport> report = arda.Run(scenario.MakeTask());
    ARDA_CHECK(report.ok());
    std::printf(
        "budget plan: base accuracy %.1f%% -> augmented %.1f%% "
        "(%zu batches, %zu tables joined, %.1fs)\n",
        report->base_score * 100.0, report->final_score * 100.0,
        report->batches.size(), report->tables_joined,
        report->total_seconds);
  }

  // Join-plan comparison on the smaller School (S) pool (the full
  // Table 5 sweep lives in bench_table5_table_grouping).
  data::Scenario small = data::MakeSchoolScenario(/*large=*/false, 17);
  for (core::JoinPlanKind plan :
       {core::JoinPlanKind::kBudget, core::JoinPlanKind::kTableAtATime}) {
    core::ArdaConfig config;
    config.seed = 17;
    config.plan = plan;
    config.rifs.num_rounds = 6;
    core::Arda arda(config);
    Result<core::ArdaReport> report = arda.Run(small.MakeTask());
    ARDA_CHECK(report.ok());
    std::printf(
        "school_s %-7s plan: %.1f%% -> %.1f%% (%zu batches, %.1fs)\n",
        core::JoinPlanKindName(plan), report->base_score * 100.0,
        report->final_score * 100.0, report->batches.size(),
        report->total_seconds);
  }

  // A look inside RIFS: join the known signal tables plus a few noise
  // tables, inject random features, and show which columns consistently
  // outrank fresh noise.
  df::DataFrame working = scenario.base;
  Rng rng(17);
  size_t extra_noise = 0;
  for (const discovery::CandidateJoin& cand : scenario.candidates) {
    bool is_signal =
        std::find(scenario.signal_tables.begin(),
                  scenario.signal_tables.end(),
                  cand.foreign_table) != scenario.signal_tables.end();
    if (!is_signal && extra_noise >= 5) continue;
    if (!is_signal) ++extra_noise;
    Result<df::DataFrame> joined = join::ExecuteLeftJoin(
        working, scenario.repo.GetOrDie(cand.foreign_table), cand, {},
        &rng);
    if (joined.ok()) working = std::move(joined).value();
  }
  join::ImputeInPlace(&working, &rng);
  Result<ml::Dataset> data = core::BuildDataset(
      working, scenario.target_column, scenario.task);
  ARDA_CHECK(data.ok());

  ml::Evaluator evaluator(*data, 0.25, 17);
  featsel::RifsConfig rifs_config;
  rifs_config.num_rounds = 10;
  Rng rifs_rng(5);
  featsel::RifsResult rifs =
      featsel::RunRifs(*data, evaluator, rifs_config, &rifs_rng);

  std::printf("\nRIFS beat-all-noise fractions (tau=%.2f chosen):\n",
              rifs.chosen_threshold);
  std::vector<size_t> order(data->NumFeatures());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rifs.beat_noise_fraction[a] > rifs.beat_noise_fraction[b];
  });
  for (size_t i = 0; i < std::min<size_t>(12, order.size()); ++i) {
    std::printf("  %-32s %.2f\n",
                data->feature_names[order[i]].c_str(),
                rifs.beat_noise_fraction[order[i]]);
  }
  std::printf("selected %zu of %zu features, holdout accuracy %.1f%%\n",
              rifs.selected.size(), data->NumFeatures(),
              rifs.score * 100.0);
  return 0;
}
