// Quickstart: the smallest end-to-end ARDA run. We build a tiny sales
// table whose target depends on a hidden per-store attribute stored in a
// separate table, register both in a repository, and let ARDA discover,
// join and select the augmentation automatically.

#include <cstdio>

#include "core/arda.h"
#include "dataframe/csv.h"
#include "discovery/repository.h"

int main() {
  using namespace arda;

  // 1. The user's base table: weekly sales per store. `promo` is a weak
  //    predictor the user already has; the real driver is each store's
  //    foot traffic, which lives in another table.
  Rng rng(42);
  df::DataFrame base;
  std::vector<int64_t> store_ids;
  std::vector<double> promos, sales, traffic;
  for (int64_t store = 0; store < 200; ++store) {
    double foot_traffic = rng.Uniform(100.0, 1000.0);
    double promo = rng.Bernoulli(0.4) ? 1.0 : 0.0;
    store_ids.push_back(store);
    promos.push_back(promo);
    traffic.push_back(foot_traffic);
    sales.push_back(0.05 * foot_traffic + 8.0 * promo +
                    rng.Normal(0.0, 2.0));
  }
  ARDA_CHECK(base.AddColumn(df::Column::Int64("store_id", store_ids)).ok());
  ARDA_CHECK(base.AddColumn(df::Column::Double("promo", promos)).ok());
  ARDA_CHECK(base.AddColumn(df::Column::Double("sales", sales)).ok());

  // 2. The data repository: the joinable table a discovery system would
  //    crawl. (Any number of irrelevant tables could sit here too.)
  discovery::DataRepository repo;
  df::DataFrame stores;
  ARDA_CHECK(
      stores.AddColumn(df::Column::Int64("store_id", store_ids)).ok());
  ARDA_CHECK(
      stores.AddColumn(df::Column::Double("foot_traffic", traffic)).ok());
  ARDA_CHECK(repo.Add("store_info", std::move(stores)).ok());
  ARDA_CHECK(repo.Add("sales_base", base).ok());

  // 3. Run ARDA. Leaving `candidates` empty makes it run the built-in
  //    join discovery over the repository.
  core::AugmentationTask task;
  task.base = std::move(base);
  task.target_column = "sales";
  task.task = ml::TaskType::kRegression;
  task.repo = &repo;
  task.base_table_name = "sales_base";

  core::ArdaConfig config;  // defaults: budget join plan + RIFS
  core::Arda arda(config);
  Result<core::ArdaReport> report = arda.Run(task);
  if (!report.ok()) {
    std::fprintf(stderr, "ARDA failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the augmentation.
  std::printf("base MAE:      %.3f\n", -report->base_score);
  std::printf("augmented MAE: %.3f (%.1f%% improvement)\n",
              -report->final_score, report->ImprovementPercent());
  std::printf("augmented table:\n%s", report->augmented.Head(5).c_str());
  std::printf("\nexport: %zu bytes of CSV\n",
              df::WriteCsvString(report->augmented).size());
  return 0;
}
