// Example: a tour of the feature-selection toolbox on a dataset with
// known ground truth. We take the Kraken micro-benchmark (24 sensors, 10x
// injected noise features) and run every selector in the registry,
// reporting how much planted noise each one lets through — a miniature of
// the paper's Figure 6 / Table 6 evaluation.

#include <cstdio>

#include "data/generators.h"
#include "featsel/selector.h"
#include "ml/evaluator.h"

int main() {
  using namespace arda;

  data::MicroBenchmark bench = data::MakeKrakenBenchmark(/*seed=*/17);
  std::printf("Kraken: %zu rows, %zu original sensors + %zu injected "
              "noise features\n\n",
              bench.data.NumRows(), bench.num_original,
              bench.data.NumFeatures() - bench.num_original);

  ml::Evaluator evaluator(bench.data, 0.25, 17);
  std::vector<size_t> original(bench.num_original);
  for (size_t f = 0; f < bench.num_original; ++f) original[f] = f;
  std::printf("%-22s %8s %9s %9s %8s\n", "method", "accuracy", "selected",
              "noise_in", "time");
  std::printf("%s\n", std::string(62, '-').c_str());
  std::printf("%-22s %7.1f%% %9zu %9s %8s\n", "original features only",
              evaluator.ScoreFeatures(original) * 100.0,
              bench.num_original, "0", "-");

  for (const std::string& name :
       featsel::PaperSelectorNames(ml::TaskType::kClassification)) {
    std::unique_ptr<featsel::FeatureSelector> selector =
        featsel::MakeSelector(name);
    Rng rng(17);
    featsel::SelectionResult result =
        selector->Select(bench.data, evaluator, &rng);
    size_t noise_kept = 0;
    for (size_t f : result.selected) noise_kept += bench.IsNoiseFeature(f);
    std::printf("%-22s %7.1f%% %9zu %9zu %7.1fs\n", name.c_str(),
                result.score * 100.0, result.selected.size(), noise_kept,
                result.seconds);
  }

  std::printf(
      "\nRanking-based methods pair a ranker with the paper's exponential\n"
      "search; forward/backward/RFE retrain the model per step (watch the\n"
      "time column); RIFS compares every feature against injected random\n"
      "noise and keeps only consistent winners.\n");
  return 0;
}
