// Example: augmenting a taxi-demand forecasting table with soft time-key
// joins. The TAXI base table records daily trips per borough; an hourly
// WEATHER table and a sparse EVENTS table hide most of the predictive
// signal behind a granularity-mismatched time key and a composite key.
// This walks through ARDA's pipeline and prints the per-batch decisions.

#include <cstdio>

#include "core/arda.h"
#include "data/generators.h"
#include "util/string_util.h"

int main() {
  using namespace arda;

  data::Scenario scenario = data::MakeTaxiScenario(/*seed=*/17);
  std::printf("TAXI scenario: %zu base rows, %zu candidate tables "
              "(%zu carry signal)\n",
              scenario.base.NumRows(), scenario.candidates.size(),
              scenario.signal_tables.size());
  std::printf("base table head:\n%s\n", scenario.base.Head(5).c_str());

  core::ArdaConfig config;
  config.seed = 17;
  config.join.soft_method = join::SoftJoinMethod::kTwoWayNearest;
  config.join.time_resample = true;

  core::Arda arda(config);
  Result<core::ArdaReport> result = arda.Run(scenario.MakeTask());
  if (!result.ok()) {
    std::fprintf(stderr, "ARDA failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const core::ArdaReport& report = result.value();

  std::printf("join plan executed %zu batches:\n", report.batches.size());
  for (size_t i = 0; i < report.batches.size(); ++i) {
    const core::BatchLog& batch = report.batches[i];
    std::printf(
        "  batch %zu: %zu tables [%s%s], %zu features considered, "
        "%zu new columns kept, %s, score after %.3f\n",
        i, batch.tables.size(),
        Join(std::vector<std::string>(
                 batch.tables.begin(),
                 batch.tables.begin() +
                     std::min<size_t>(batch.tables.size(), 4)),
             ", ")
            .c_str(),
        batch.tables.size() > 4 ? ", ..." : "", batch.features_considered,
        batch.features_kept, batch.accepted ? "ACCEPTED" : "rejected",
        batch.score_after);
  }

  std::printf("\nbase MAE:      %.3f\n", -report.base_score);
  std::printf("augmented MAE: %.3f  (%.1f%% improvement)\n",
              -report.final_score, report.ImprovementPercent());
  std::printf("tables joined: %zu of %zu considered\n",
              report.tables_joined, report.tables_considered);
  std::printf("augmented columns (%zu):\n", report.augmented.NumCols());
  for (const std::string& name : report.augmented.ColumnNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}
