// Example: the three extensions implemented from the paper's future-work
// list (Section 9) —
//   1. location-based (2-D) soft joins,
//   2. transitive (two-hop) augmentation,
//   3. statistical significance testing of augmented features.
// A housing-price table is augmented with the nearest weather station's
// climate data (lat/lon soft join) and with city crime statistics that
// are only reachable through a station->city lookup (transitive join);
// a permutation test then certifies the improvement.

#include <cmath>
#include <cstdio>

#include "core/arda.h"
#include "discovery/transitive.h"
#include "featsel/significance.h"
#include "join/geo_join.h"
#include "join/impute.h"
#include "join/transitive_join.h"

int main() {
  using namespace arda;
  Rng rng(2024);

  // --- Houses: the base table. Price depends on size, the local climate
  //     (held by the nearest station) and the city crime rate (held two
  //     hops away). ------------------------------------------------------
  const size_t n = 400;
  const size_t num_stations = 25;
  std::vector<double> st_lat(num_stations), st_lon(num_stations),
      st_rainfall(num_stations);
  std::vector<std::string> st_city(num_stations);
  std::vector<double> city_crime = {1.0, 4.0, 2.5, 6.0, 0.5};
  for (size_t s = 0; s < num_stations; ++s) {
    st_lat[s] = rng.Uniform(0.0, 100.0);
    st_lon[s] = rng.Uniform(0.0, 100.0);
    st_rainfall[s] = rng.Uniform(20.0, 80.0);
    st_city[s] = "city_" + std::to_string(s % city_crime.size());
  }

  df::DataFrame houses;
  std::vector<double> lat(n), lon(n), sqft(n), price(n);
  for (size_t i = 0; i < n; ++i) {
    lat[i] = rng.Uniform(0.0, 100.0);
    lon[i] = rng.Uniform(0.0, 100.0);
    sqft[i] = rng.Uniform(60.0, 250.0);
    // Nearest station determines the hidden attributes.
    size_t nearest = 0;
    double best = 1e300;
    for (size_t s = 0; s < num_stations; ++s) {
      double d = (lat[i] - st_lat[s]) * (lat[i] - st_lat[s]) +
                 (lon[i] - st_lon[s]) * (lon[i] - st_lon[s]);
      if (d < best) {
        best = d;
        nearest = s;
      }
    }
    size_t city = nearest % city_crime.size();
    price[i] = 2.0 * sqft[i] - 1.5 * st_rainfall[nearest] -
               25.0 * city_crime[city] + rng.Normal(0.0, 10.0);
  }
  ARDA_CHECK(houses.AddColumn(df::Column::Double("lat", lat)).ok());
  ARDA_CHECK(houses.AddColumn(df::Column::Double("lon", lon)).ok());
  ARDA_CHECK(houses.AddColumn(df::Column::Double("sqft", sqft)).ok());
  ARDA_CHECK(houses.AddColumn(df::Column::Double("price", price)).ok());

  // --- The repository: stations (geo-keyed) and city stats. ------------
  discovery::DataRepository repo;
  {
    df::DataFrame stations;
    ARDA_CHECK(stations.AddColumn(df::Column::Double("lat", st_lat)).ok());
    ARDA_CHECK(stations.AddColumn(df::Column::Double("lon", st_lon)).ok());
    ARDA_CHECK(
        stations.AddColumn(df::Column::Double("rainfall", st_rainfall))
            .ok());
    ARDA_CHECK(
        stations.AddColumn(df::Column::String("city", st_city)).ok());
    ARDA_CHECK(repo.Add("stations", std::move(stations)).ok());

    df::DataFrame cities;
    std::vector<std::string> names;
    for (size_t c = 0; c < city_crime.size(); ++c) {
      names.push_back("city_" + std::to_string(c));
    }
    ARDA_CHECK(cities.AddColumn(df::Column::String("city", names)).ok());
    ARDA_CHECK(
        cities.AddColumn(df::Column::Double("crime_rate", city_crime))
            .ok());
    ARDA_CHECK(repo.Add("city_stats", std::move(cities)).ok());
    ARDA_CHECK(repo.Add("houses", houses).ok());
  }

  // --- 1. Location soft join: nearest station in (lat, lon). -----------
  discovery::CandidateJoin geo_cand;
  geo_cand.foreign_table = "stations";
  geo_cand.keys = {
      discovery::JoinKeyPair{"lat", "lat", discovery::KeyKind::kSoft},
      discovery::JoinKeyPair{"lon", "lon", discovery::KeyKind::kSoft}};
  join::GeoJoinOptions geo_options;
  Result<df::DataFrame> with_station =
      join::ExecuteGeoLeftJoin(houses, repo.GetOrDie("stations"), geo_cand,
                               geo_options, &rng);
  ARDA_CHECK(with_station.ok());
  std::printf("geo join added columns: rainfall, city (nearest of %zu "
              "stations)\n",
              num_stations);

  // --- 2. Transitive hop: station -> city -> crime stats. --------------
  std::vector<discovery::TransitiveCandidate> paths =
      discovery::DiscoverTransitiveCandidates(repo, "houses", "price");
  std::printf("transitive paths discovered: %zu\n", paths.size());
  df::DataFrame augmented = *with_station;
  {
    // The joined station city gives a hard key into city_stats.
    discovery::CandidateJoin city_cand;
    city_cand.foreign_table = "city_stats";
    city_cand.keys = {discovery::JoinKeyPair{"city", "city",
                                             discovery::KeyKind::kHard}};
    Result<df::DataFrame> with_city = join::ExecuteLeftJoin(
        augmented, repo.GetOrDie("city_stats"), city_cand, {}, &rng);
    ARDA_CHECK(with_city.ok());
    augmented = std::move(with_city).value();
  }
  join::ImputeInPlace(&augmented, &rng);
  std::printf("augmented columns: %zu\n", augmented.NumCols());

  // --- 3. Does the augmentation significantly improve the model? -------
  Result<ml::Dataset> base_data =
      core::BuildDataset(houses, "price", ml::TaskType::kRegression);
  Result<ml::Dataset> aug_data =
      core::BuildDataset(augmented, "price", ml::TaskType::kRegression);
  ARDA_CHECK(base_data.ok());
  ARDA_CHECK(aug_data.ok());
  featsel::SignificanceResult significance =
      featsel::TestAugmentationSignificance(*base_data, *aug_data);
  std::printf(
      "mean holdout improvement: %.2f MAE, p-value %.4f (%s at "
      "alpha=0.05)\n",
      significance.mean_improvement, significance.p_value,
      significance.SignificantAt(0.05) ? "significant" : "not significant");
  return 0;
}
