// Example: auditing an augmentation like an analyst would. After ARDA
// proposes an augmented table, we (1) eyeball the data with Describe,
// (2) check the selection is *stable* under bootstrap perturbation, and
// (3) certify the improvement with a permutation significance test —
// the trust-building steps around the core pipeline.

#include <cstdio>

#include "core/arda.h"
#include "data/generators.h"
#include "dataframe/describe.h"
#include "featsel/significance.h"
#include "featsel/stability.h"

int main() {
  using namespace arda;

  data::Scenario scenario = data::MakePovertyScenario(/*seed=*/17);
  core::ArdaConfig config;
  config.seed = 17;
  config.rifs.num_rounds = 8;
  core::Arda arda(config);
  Result<core::ArdaReport> run = arda.Run(scenario.MakeTask());
  ARDA_CHECK(run.ok());
  const core::ArdaReport& report = run.value();
  std::printf("ARDA: base MAE %.3f -> augmented MAE %.3f (%zu of %zu "
              "tables joined)\n\n",
              -report.base_score, -report.final_score,
              report.tables_joined, report.tables_considered);

  // 1. What does the augmented table look like?
  std::printf("augmented table summary:\n%s\n",
              df::DescribeToString(report.augmented).c_str());

  // 2. Is the feature selection stable, or an artifact of one split?
  Result<ml::Dataset> augmented_data = core::BuildDataset(
      report.augmented, scenario.target_column, scenario.task);
  ARDA_CHECK(augmented_data.ok());
  {
    featsel::RifsConfig rifs;
    rifs.num_rounds = 6;
    std::unique_ptr<featsel::FeatureSelector> selector =
        featsel::MakeRifsSelector(rifs);
    featsel::StabilityOptions options;
    options.num_bootstraps = 6;
    featsel::StabilityResult stability =
        featsel::AnalyzeSelectionStability(*augmented_data, *selector,
                                           options);
    std::printf("selection stability (mean pairwise Jaccard over %zu "
                "bootstraps): %.2f\n",
                stability.selections.size(), stability.mean_jaccard);
    std::printf("features selected in >=80%% of bootstraps:\n");
    for (size_t f = 0; f < stability.selection_frequency.size(); ++f) {
      if (stability.selection_frequency[f] >= 0.8) {
        std::printf("  %-28s %.0f%%\n",
                    augmented_data->feature_names[f].c_str(),
                    stability.selection_frequency[f] * 100.0);
      }
    }
  }

  // 3. Is the improvement statistically significant?
  Result<ml::Dataset> base_data = core::BuildDataset(
      report.augmented.Select(scenario.base.ColumnNames()).value(),
      scenario.target_column, scenario.task);
  ARDA_CHECK(base_data.ok());
  featsel::SignificanceResult significance =
      featsel::TestAugmentationSignificance(*base_data, *augmented_data);
  std::printf("\nsignificance: mean improvement %.3f, p = %.4f -> %s\n",
              significance.mean_improvement, significance.p_value,
              significance.SignificantAt(0.05)
                  ? "keep the augmentation"
                  : "reject the augmentation");
  return 0;
}
