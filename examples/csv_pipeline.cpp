// Example: driving ARDA from CSV files, the way a downstream user with
// data on disk would. We write a small ride-sharing dataset to a temp
// directory, load every CSV into a repository, let the built-in discovery
// propose joins (including a *soft* time-series join), and export the
// augmented table back to CSV.

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/arda.h"
#include "dataframe/csv.h"
#include "discovery/discovery.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace fs = std::filesystem;

int main() {
  using namespace arda;
  Rng rng(123);
  fs::path dir = fs::temp_directory_path() / "arda_csv_example";
  fs::create_directories(dir);

  // --- Produce the CSVs (stand-in for files the user already has). ----
  // rides.csv: hourly ride counts (the base table, target = rides).
  // surge.csv: surge multiplier sampled every 1.5h (soft time key).
  // zones.csv: irrelevant lookup table (noise).
  {
    std::string rides = "hour,day_of_week,rides\n";
    std::string surge = "hour,multiplier\n";
    std::string zones = "zone,population\n";
    auto surge_at = [](double t) {
      return 1.0 + 0.5 * std::sin(t / 7.0) + 0.3 * std::sin(t / 2.3);
    };
    for (int h = 0; h < 500; ++h) {
      double t = static_cast<double>(h);
      double r = 20.0 + 15.0 * surge_at(t) + rng.Normal(0.0, 1.5);
      rides += StrFormat("%.1f,%d,%.2f\n", t, h % 7, r);
    }
    for (double t = 0.3; t < 500.0; t += 1.5) {
      surge += StrFormat("%.2f,%.3f\n", t,
                         surge_at(t) + rng.Normal(0.0, 0.05));
    }
    for (int z = 0; z < 40; ++z) {
      zones += StrFormat("zone_%d,%d\n", z,
                         static_cast<int>(rng.Uniform(1000, 90000)));
    }
    std::FILE* f = std::fopen((dir / "rides.csv").c_str(), "w");
    std::fputs(rides.c_str(), f);
    std::fclose(f);
    f = std::fopen((dir / "surge.csv").c_str(), "w");
    std::fputs(surge.c_str(), f);
    std::fclose(f);
    f = std::fopen((dir / "zones.csv").c_str(), "w");
    std::fputs(zones.c_str(), f);
    std::fclose(f);
  }

  // --- Load every CSV in the directory into a repository. -------------
  discovery::DataRepository repo;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".csv") continue;
    Result<df::DataFrame> table = df::ReadCsvFile(entry.path().string());
    if (!table.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n",
                   entry.path().c_str(), table.status().ToString().c_str());
      continue;
    }
    ARDA_CHECK(repo.Add(entry.path().stem().string(),
                        std::move(table).value())
                   .ok());
    std::printf("loaded %s\n", entry.path().filename().c_str());
  }

  // --- Discovery: what joins does the system propose? ------------------
  std::vector<discovery::CandidateJoin> candidates =
      discovery::DiscoverCandidates(repo, "rides", "rides");
  for (const discovery::CandidateJoin& cand : candidates) {
    std::printf("candidate: %s on %s (%s, score %.2f)\n",
                cand.foreign_table.c_str(),
                cand.keys[0].base_column.c_str(),
                cand.HasSoftKey() ? "soft" : "hard", cand.score);
  }

  // --- Run the pipeline and export. ------------------------------------
  core::AugmentationTask task;
  task.base = repo.GetOrDie("rides");
  task.target_column = "rides";
  task.task = ml::TaskType::kRegression;
  task.repo = &repo;
  task.base_table_name = "rides";
  task.candidates = candidates;

  core::ArdaConfig config;
  config.join.soft_method = join::SoftJoinMethod::kTwoWayNearest;
  core::Arda arda(config);
  Result<core::ArdaReport> report = arda.Run(task);
  ARDA_CHECK(report.ok());

  std::printf("\nbase MAE %.3f -> augmented MAE %.3f (%.1f%%)\n",
              -report->base_score, -report->final_score,
              report->ImprovementPercent());
  fs::path out = dir / "rides_augmented.csv";
  ARDA_CHECK(df::WriteCsvFile(report->augmented, out.string()).ok());
  std::printf("augmented table written to %s (%zu columns)\n",
              out.c_str(), report->augmented.NumCols());
  return 0;
}
