#include "dataframe/key_encoder.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "simd/simd.h"
#include "util/check.h"

namespace arda::df {

namespace {

// splitmix64 finalizer; also used to post-mix string hashes so linear
// probing sees well-spread bits.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashString(std::string_view s) {
  return Mix64(std::hash<std::string_view>{}(s));
}

// FNV-1a over a tuple of value ids.
uint64_t HashTuple(const uint32_t* ids, size_t count) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < count; ++i) {
    h = (h ^ ids[i]) * 1099511628211ull;
  }
  return Mix64(h);
}

// Renders a non-null numeric value the way Column::ValueToString does
// ("%.10g" for doubles, "%lld" for int64), or the bucketed "%.10g" form
// when granularity > 0, into `buf` without heap allocation.
std::string_view RenderValue(const Column& col, size_t row, double granularity,
                             char* buf, size_t cap) {
  if (col.type() == DataType::kString) return col.StringAt(row);
  if (granularity > 0.0) {
    double v = std::floor(col.NumericAt(row) / granularity) * granularity;
    int len = std::snprintf(buf, cap, "%.10g", v);
    return std::string_view(buf, static_cast<size_t>(len));
  }
  int len = col.type() == DataType::kDouble
                ? std::snprintf(buf, cap, "%.10g", col.DoubleAt(row))
                : std::snprintf(buf, cap, "%lld",
                                static_cast<long long>(col.Int64At(row)));
  return std::string_view(buf, static_cast<size_t>(len));
}

std::vector<size_t> ResolveColumns(const DataFrame& frame,
                                   const std::vector<std::string>& columns) {
  std::vector<size_t> idx;
  idx.reserve(columns.size());
  for (const std::string& name : columns) {
    size_t i = frame.ColumnIndex(name);
    ARDA_CHECK(i != DataFrame::kNpos);
    idx.push_back(i);
  }
  return idx;
}

size_t NextPow2(size_t n) {
  size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

constexpr uint32_t kEmptySlot = ~0u;  // == KeyEncoder::FlatTable::kEmpty

// Walks the probe sequence for `hash` until a slot verifies or a free
// slot is found; returns the slot index either way. `verify(id)` checks a
// candidate against the caller's value storage.
template <typename Verify>
size_t FindSlot(const std::vector<uint64_t>& hashes,
                const std::vector<uint32_t>& ids, uint64_t hash,
                Verify&& verify) {
  const size_t mask = hashes.size() - 1;
  size_t slot = static_cast<size_t>(hash) & mask;
  while (ids[slot] != kEmptySlot) {
    if (hashes[slot] == hash && verify(ids[slot])) return slot;
    slot = (slot + 1) & mask;
  }
  return slot;
}

}  // namespace

void KeyEncoder::FlatTable::Reserve(size_t expected) {
  size_t cap = NextPow2(expected * 2);
  if (cap > hashes.size()) {
    ARDA_CHECK_EQ(count, 0u);
    hashes.assign(cap, 0);
    ids.assign(cap, kEmpty);
  }
}

void KeyEncoder::FlatTable::Grow() {
  std::vector<uint64_t> old_hashes = std::move(hashes);
  std::vector<uint32_t> old_ids = std::move(ids);
  size_t cap = old_hashes.empty() ? 16 : old_hashes.size() * 2;
  hashes.assign(cap, 0);
  ids.assign(cap, kEmpty);
  const size_t mask = cap - 1;
  for (size_t i = 0; i < old_hashes.size(); ++i) {
    if (old_ids[i] == kEmpty) continue;
    size_t slot = static_cast<size_t>(old_hashes[i]) & mask;
    while (ids[slot] != kEmpty) slot = (slot + 1) & mask;
    hashes[slot] = old_hashes[i];
    ids[slot] = old_ids[i];
  }
}

KeyEncoder::KeyEncoder(const DataFrame& frame,
                       const std::vector<size_t>& col_idx,
                       const Options& options) {
  Build(frame, col_idx, options);
}

KeyEncoder::KeyEncoder(const DataFrame& frame,
                       const std::vector<std::string>& columns,
                       const Options& options) {
  Build(frame, ResolveColumns(frame, columns), options);
}

void KeyEncoder::Build(const DataFrame& frame,
                       const std::vector<size_t>& col_idx,
                       const Options& options) {
  const size_t num_cols = col_idx.size();
  const size_t n = frame.NumRows();
  ARDA_CHECK(options.probe_granularity.empty() ||
             options.probe_granularity.size() == num_cols);
  ARDA_CHECK(options.probe_types.empty() ||
             options.probe_types.size() == num_cols);

  dicts_.resize(num_cols);
  for (size_t k = 0; k < num_cols; ++k) {
    const Column& col = frame.col(col_idx[k]);
    ColumnDict& dict = dicts_[k];
    dict.probe_granularity =
        options.probe_granularity.empty() ? 0.0 : options.probe_granularity[k];
    DataType probe_type =
        options.probe_types.empty() ? col.type() : options.probe_types[k];
    // The native int64 dictionary is only sound when both sides render as
    // "%lld"; any double or bucketed participant goes through rendered
    // strings so cross-representation equality matches the legacy keys.
    dict.mode = col.type() == DataType::kInt64 &&
                        probe_type == DataType::kInt64 &&
                        dict.probe_granularity <= 0.0
                    ? Mode::kInt64
                    : Mode::kString;
    dict.table.Reserve(n);
  }
  groups_.Reserve(n);

  row_group_.resize(n);
  tuple_store_.reserve(num_cols * 16);
  std::vector<uint32_t> ids(num_cols);
  char buf[64];
  for (size_t r = 0; r < n; ++r) {
    for (size_t k = 0; k < num_cols; ++k) {
      const Column& col = frame.col(col_idx[k]);
      ColumnDict& dict = dicts_[k];
      if (col.IsNull(r)) {
        ids[k] = 0;
        continue;
      }
      if (dict.mode == Mode::kInt64) {
        int64_t v = col.Int64At(r);
        uint64_t h = Mix64(static_cast<uint64_t>(v));
        size_t slot =
            FindSlot(dict.table.hashes, dict.table.ids, h, [&](uint32_t id) {
              return dict.int_values[id - 1] == v;
            });
        if (dict.table.ids[slot] == FlatTable::kEmpty) {
          dict.int_values.push_back(v);
          uint32_t id = static_cast<uint32_t>(dict.int_values.size());
          dict.table.hashes[slot] = h;
          dict.table.ids[slot] = id;
          if (++dict.table.count * 2 >= dict.table.hashes.size()) {
            dict.table.Grow();
          }
          ids[k] = id;
        } else {
          ids[k] = dict.table.ids[slot];
        }
      } else {
        std::string_view sv = RenderValue(col, r, 0.0, buf, sizeof(buf));
        uint64_t h = HashString(sv);
        size_t slot =
            FindSlot(dict.table.hashes, dict.table.ids, h, [&](uint32_t id) {
              return dict.str_values[id - 1] == sv;
            });
        if (dict.table.ids[slot] == FlatTable::kEmpty) {
          dict.str_values.emplace_back(sv);
          uint32_t id = static_cast<uint32_t>(dict.str_values.size());
          dict.table.hashes[slot] = h;
          dict.table.ids[slot] = id;
          if (++dict.table.count * 2 >= dict.table.hashes.size()) {
            dict.table.Grow();
          }
          ids[k] = id;
        } else {
          ids[k] = dict.table.ids[slot];
        }
      }
    }
    uint64_t h = HashTuple(ids.data(), num_cols);
    size_t slot =
        FindSlot(groups_.hashes, groups_.ids, h, [&](uint32_t gid) {
          const uint32_t* stored = tuple_store_.data() + gid * num_cols;
          for (size_t k = 0; k < num_cols; ++k) {
            if (stored[k] != ids[k]) return false;
          }
          return true;
        });
    uint64_t gid;
    if (groups_.ids[slot] == FlatTable::kEmpty) {
      gid = group_first_row_.size();
      groups_.hashes[slot] = h;
      groups_.ids[slot] = static_cast<uint32_t>(gid);
      tuple_store_.insert(tuple_store_.end(), ids.begin(), ids.end());
      group_first_row_.push_back(r);
      if (++groups_.count * 2 >= groups_.hashes.size()) groups_.Grow();
    } else {
      gid = groups_.ids[slot];
    }
    row_group_[r] = gid;
  }
}

uint64_t KeyEncoder::Probe(const DataFrame& frame,
                           const std::vector<size_t>& col_idx,
                           size_t row) const {
  const size_t num_cols = dicts_.size();
  ARDA_CHECK_EQ(col_idx.size(), num_cols);
  uint32_t stack_ids[16];
  std::vector<uint32_t> heap_ids;
  uint32_t* ids = stack_ids;
  if (num_cols > 16) {
    heap_ids.resize(num_cols);
    ids = heap_ids.data();
  }
  char buf[64];
  for (size_t k = 0; k < num_cols; ++k) {
    const Column& col = frame.col(col_idx[k]);
    const ColumnDict& dict = dicts_[k];
    if (col.IsNull(row)) {
      ids[k] = 0;
      continue;
    }
    if (dict.mode == Mode::kInt64) {
      int64_t v = col.Int64At(row);
      uint64_t h = Mix64(static_cast<uint64_t>(v));
      size_t slot =
          FindSlot(dict.table.hashes, dict.table.ids, h, [&](uint32_t id) {
            return dict.int_values[id - 1] == v;
          });
      if (dict.table.ids[slot] == FlatTable::kEmpty) return kMiss;
      ids[k] = dict.table.ids[slot];
    } else {
      std::string_view sv =
          RenderValue(col, row, dict.probe_granularity, buf, sizeof(buf));
      uint64_t h = HashString(sv);
      size_t slot =
          FindSlot(dict.table.hashes, dict.table.ids, h, [&](uint32_t id) {
            return dict.str_values[id - 1] == sv;
          });
      if (dict.table.ids[slot] == FlatTable::kEmpty) return kMiss;
      ids[k] = dict.table.ids[slot];
    }
  }
  uint64_t h = HashTuple(ids, num_cols);
  size_t slot = FindSlot(groups_.hashes, groups_.ids, h, [&](uint32_t gid) {
    const uint32_t* stored = tuple_store_.data() + gid * num_cols;
    for (size_t k = 0; k < num_cols; ++k) {
      if (stored[k] != ids[k]) return false;
    }
    return true;
  });
  if (groups_.ids[slot] == FlatTable::kEmpty) return kMiss;
  return groups_.ids[slot];
}

uint64_t KeyEncoder::Probe(const DataFrame& frame,
                           const std::vector<std::string>& columns,
                           size_t row) const {
  return Probe(frame, ResolveColumns(frame, columns), row);
}

void KeyEncoder::ProbeAll(const DataFrame& frame,
                          const std::vector<size_t>& col_idx,
                          uint64_t* out) const {
  const size_t num_cols = dicts_.size();
  ARDA_CHECK_EQ(col_idx.size(), num_cols);
  const size_t n = frame.NumRows();
  if (n == 0) return;

  // Column-major value ids (ids[k * n + r]), the layout TupleHashBatch
  // and GroupLookup consume with contiguous vector loads.
  std::vector<uint32_t> ids(num_cols * n, 0);
  // A row whose value misses any column dictionary can never match a
  // group; flagged here and forced to kMiss at the end (Probe returns
  // early instead, which a batch cannot).
  std::vector<uint8_t> miss(n, 0);
  std::vector<uint32_t> walk(n);
  std::vector<uint32_t> col_ids(n);
  char buf[64];
  for (size_t k = 0; k < num_cols; ++k) {
    const Column& col = frame.col(col_idx[k]);
    const ColumnDict& dict = dicts_[k];
    uint32_t* out_ids = ids.data() + k * n;
    if (dict.mode == Mode::kInt64) {
      // Null slots hold the dense placeholder 0; the kernel looks them up
      // like any key and the validity pass below overrides the result.
      const int64_t* keys = col.Int64Data();
      const size_t walk_count = simd::Int64DictLookup(
          dict.table.hashes.data(), dict.table.ids.data(),
          dict.int_values.data(), dict.table.hashes.size() - 1, keys, n,
          col_ids.data(), walk.data());
      for (size_t w = 0; w < walk_count; ++w) {
        const uint32_t r = walk[w];
        const int64_t v = keys[r];
        const uint64_t h = Mix64(static_cast<uint64_t>(v));
        const size_t slot =
            FindSlot(dict.table.hashes, dict.table.ids, h,
                     [&](uint32_t id) { return dict.int_values[id - 1] == v; });
        col_ids[r] = dict.table.ids[slot];
      }
      const uint8_t* valid = col.ValidityData();
      for (size_t r = 0; r < n; ++r) {
        if (valid[r] == 0) {
          out_ids[r] = 0;
        } else if (col_ids[r] == FlatTable::kEmpty) {
          miss[r] = 1;
        } else {
          out_ids[r] = col_ids[r];
        }
      }
    } else {
      for (size_t r = 0; r < n; ++r) {
        if (col.IsNull(r)) {
          out_ids[r] = 0;
          continue;
        }
        std::string_view sv =
            RenderValue(col, r, dict.probe_granularity, buf, sizeof(buf));
        uint64_t h = HashString(sv);
        size_t slot =
            FindSlot(dict.table.hashes, dict.table.ids, h, [&](uint32_t id) {
              return dict.str_values[id - 1] == sv;
            });
        if (dict.table.ids[slot] == FlatTable::kEmpty) {
          miss[r] = 1;
        } else {
          out_ids[r] = dict.table.ids[slot];
        }
      }
    }
  }

  std::vector<uint64_t> hashes(n);
  simd::TupleHashBatch(ids.data(), num_cols, n, n, hashes.data());
  const size_t walk_count = simd::GroupLookup(
      groups_.hashes.data(), groups_.ids.data(), tuple_store_.data(),
      ids.data(), num_cols, n, groups_.hashes.size() - 1, hashes.data(), n,
      out, walk.data());
  for (size_t w = 0; w < walk_count; ++w) {
    const uint32_t r = walk[w];
    const size_t slot =
        FindSlot(groups_.hashes, groups_.ids, hashes[r], [&](uint32_t gid) {
          const uint32_t* stored = tuple_store_.data() + gid * num_cols;
          for (size_t k = 0; k < num_cols; ++k) {
            if (stored[k] != ids[k * n + r]) return false;
          }
          return true;
        });
    out[r] =
        groups_.ids[slot] == FlatTable::kEmpty ? kMiss : groups_.ids[slot];
  }
  for (size_t r = 0; r < n; ++r) {
    if (miss[r]) out[r] = kMiss;
  }
}

}  // namespace arda::df
