#ifndef ARDA_DATAFRAME_PARTITION_H_
#define ARDA_DATAFRAME_PARTITION_H_

#include <cstdint>
#include <vector>

#include "dataframe/data_frame.h"

/// \file
/// Radix partitioning of rows by join/group-by key, the splitting stage
/// of the out-of-core kernels (join_executor.cc, aggregate.cc). Rows
/// whose key tuples are *equal under KeyEncoder's equality relation*
/// always land in the same partition, so each partition can be built,
/// probed and aggregated independently and the per-partition results
/// merged without any cross-partition duplicate handling.
///
/// The partition hash is self-consistent, not equal to KeyEncoder's
/// internal hashes — it only has to respect the same equality relation:
///   - native int64 keys (both sides int64, no bucketing) hash the raw
///     value;
///   - everything else hashes the *rendered* key string ("%.10g" for
///     doubles — so doubles that render identically, and therefore
///     compare equal, cannot be split — "%lld" for int64, strings as-is,
///     bucketed values as "%.10g" of floor(v/g)*g), exactly mirroring
///     key_encoder.cc's RenderValue;
///   - nulls hash to a per-column constant (KeyEncoder treats null as a
///     distinct value that equals itself).
///
/// IMPORTANT: for a join, the `native` flag must be computed once per
/// key *pair* (build type, probe type, pair granularity) and set
/// identically in both sides' specs; per-side computation would let the
/// two sides of one key disagree on the hash domain and split matching
/// rows across partitions.

namespace arda::df {

/// How to hash one key column of a frame.
struct PartitionKeySpec {
  /// Column index within the frame being partitioned.
  size_t col = 0;
  /// Bucketing granularity (probe side of a soft-tolerance numeric key);
  /// 0 = exact. Mirrors KeyEncoder::Options::probe_granularity.
  double granularity = 0.0;
  /// Hash raw int64 values instead of rendered strings. Only sound when
  /// the key pair uses KeyEncoder's native int64 dictionary (both sides
  /// kInt64, granularity <= 0) — see the file comment.
  bool native = false;
};

/// Splits the rows of `frame` into `num_partitions` buckets by key hash.
/// Returns one ascending row-index list per partition (their
/// concatenation is a permutation of 0..NumRows()-1). Deterministic:
/// depends only on key values and `num_partitions` (which need not be a
/// power of two). With num_partitions <= 1 every row lands in bucket 0.
std::vector<std::vector<size_t>> PartitionRowsByKey(
    const DataFrame& frame, const std::vector<PartitionKeySpec>& keys,
    size_t num_partitions);

/// Rough resident-footprint estimate of `frame` used to size partitions
/// against a memory budget: 9 bytes/row per numeric column (8-byte value
/// + validity byte), 40 bytes/row per string column (small-string
/// header + typical short key). Deliberately cheap and row-count-based —
/// it never scans values.
uint64_t EstimateFrameBytes(const DataFrame& frame);

/// Picks a partition count: an explicit `requested` > 0 wins; otherwise
/// 0 budget means "unbounded" (1 partition, the in-memory fast path);
/// otherwise ceil(estimated / budget) clamped to [1, 256].
size_t ChoosePartitionCount(size_t requested, uint64_t budget_bytes,
                            uint64_t estimated_bytes);

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_PARTITION_H_
