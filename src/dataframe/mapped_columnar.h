#ifndef ARDA_DATAFRAME_MAPPED_COLUMNAR_H_
#define ARDA_DATAFRAME_MAPPED_COLUMNAR_H_

#include <string>

#include "dataframe/columnar_io.h"
#include "dataframe/data_frame.h"
#include "util/status.h"

/// \file
/// Mmap-backed open of `.ardac` version-3 files. Instead of slurping the
/// whole table into owned vectors (ReadColumnar), MapColumnar maps the
/// file read-only (`MAP_PRIVATE`) and hands out a DataFrame whose numeric
/// columns *borrow* their validity and value blocks straight out of the
/// mapping (Column::BorrowedDouble/BorrowedInt64). Pages fault in lazily
/// on first touch, so a repository holding many cached tables costs
/// resident memory only for the columns a run actually reads — the basis
/// of the out-of-core execution mode (DESIGN.md).
///
/// Safety: the header, the column index checksum and every recorded
/// extent are validated against the real (fstat) file size before the
/// first payload access, so a truncated or corrupted file yields a
/// Status — never SIGBUS. What the mapped path deliberately skips is the
/// whole-payload checksum (validating it would fault in every page and
/// defeat laziness); a file whose payload bytes were corrupted in place
/// can therefore produce wrong values, but never out-of-bounds access.
/// Eager ReadColumnar keeps full checksum validation; cache rewrites go
/// through WriteColumnar's temp-file + rename, so a live mapping keeps
/// its old inode and stays readable.
///
/// The mapping's lifetime is tied to the returned columns via a shared
/// owner: copies of the frame share it, and munmap happens only when the
/// last borrowing column is destroyed (or materialized by a mutation).

namespace arda::df {

/// Maps `path` (a `.ardac` version-3 file) and returns a DataFrame whose
/// numeric columns borrow the mapping zero-copy; string columns and the
/// meta block decode eagerly. On a version-1/2 file fails with
/// FailedPrecondition and sets `*unsupported_version` to true (when
/// non-null) so callers can fall back to the eager reader without
/// recording a cache fallback. Any other failure (missing file, mmap
/// error, truncation, index corruption) leaves it false. Carries the
/// `fault::kColumnarMap` injection site. On non-POSIX builds always
/// fails with FailedPrecondition.
Result<DataFrame> MapColumnar(const std::string& path,
                              ColumnarMeta* meta = nullptr,
                              bool* unsupported_version = nullptr);

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_MAPPED_COLUMNAR_H_
