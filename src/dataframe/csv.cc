#include "dataframe/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace arda::df {

namespace {

// Splits one CSV record honoring double-quote quoting ("" escapes a quote).
std::vector<std::string> SplitCsvRecord(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string QuoteCsvField(const std::string& field, char delim) {
  bool needs_quote = field.find(delim) != std::string::npos ||
                     field.find('"') != std::string::npos ||
                     field.find('\n') != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<DataFrame> ReadCsvString(const std::string& text,
                                const CsvOptions& options) {
  std::vector<std::string> lines;
  {
    std::string line;
    std::istringstream stream(text);
    while (std::getline(stream, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(line);
    }
  }
  if (lines.empty()) {
    return Status::InvalidArgument("CSV input is empty (no header)");
  }
  std::vector<std::string> header =
      SplitCsvRecord(lines[0], options.delimiter);
  const size_t ncols = header.size();
  std::vector<std::vector<std::string>> cells(ncols);
  for (size_t li = 1; li < lines.size(); ++li) {
    if (lines[li].empty()) continue;
    std::vector<std::string> fields =
        SplitCsvRecord(lines[li], options.delimiter);
    if (fields.size() != ncols) {
      return Status::InvalidArgument(
          StrFormat("CSV row %zu has %zu fields, expected %zu", li,
                    fields.size(), ncols));
    }
    for (size_t c = 0; c < ncols; ++c) {
      cells[c].push_back(std::move(fields[c]));
    }
  }

  DataFrame frame;
  for (size_t c = 0; c < ncols; ++c) {
    DataType type = DataType::kString;
    if (options.infer_types) {
      bool all_int = true;
      bool all_double = true;
      bool any_value = false;
      for (const std::string& cell : cells[c]) {
        if (Trim(cell).empty()) continue;  // null
        any_value = true;
        int64_t iv;
        double dv;
        if (!ParseInt64(cell, &iv)) all_int = false;
        if (!ParseDouble(cell, &dv)) {
          all_double = false;
          break;
        }
      }
      if (any_value && all_int) type = DataType::kInt64;
      else if (any_value && all_double) type = DataType::kDouble;
    }
    Column col = Column::Empty(header[c], type);
    for (const std::string& cell : cells[c]) {
      std::string_view trimmed = Trim(cell);
      if (trimmed.empty() && type != DataType::kString) {
        col.AppendNull();
        continue;
      }
      switch (type) {
        case DataType::kInt64: {
          int64_t iv = 0;
          ARDA_CHECK(ParseInt64(cell, &iv));
          col.AppendInt64(iv);
          break;
        }
        case DataType::kDouble: {
          double dv = 0.0;
          ARDA_CHECK(ParseDouble(cell, &dv));
          col.AppendDouble(dv);
          break;
        }
        case DataType::kString:
          col.AppendString(cell);
          break;
      }
    }
    ARDA_RETURN_IF_ERROR(frame.AddColumn(std::move(col)));
  }
  return frame;
}

Result<DataFrame> ReadCsvFile(const std::string& path,
                              const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), options);
}

std::string WriteCsvString(const DataFrame& frame,
                           const CsvOptions& options) {
  std::string out;
  for (size_t c = 0; c < frame.NumCols(); ++c) {
    if (c > 0) out += options.delimiter;
    out += QuoteCsvField(frame.col(c).name(), options.delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < frame.NumRows(); ++r) {
    for (size_t c = 0; c < frame.NumCols(); ++c) {
      if (c > 0) out += options.delimiter;
      const Column& col = frame.col(c);
      if (!col.IsNull(r)) {
        out += QuoteCsvField(col.ValueToString(r), options.delimiter);
      }
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const DataFrame& frame, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out << WriteCsvString(frame, options);
  if (!out) {
    return Status::IoError("failed writing file: " + path);
  }
  return Status::Ok();
}

}  // namespace arda::df
