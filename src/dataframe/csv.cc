#include "dataframe/csv.h"

#include <fstream>
#include <sstream>

#include "util/fault.h"
#include "util/string_util.h"

namespace arda::df {

namespace {

// One parsed CSV field. `quoted` distinguishes `""` (empty string) from a
// bare empty field (null) so the writer/reader round-trip is lossless.
struct CsvField {
  std::string value;
  bool quoted = false;
};

using CsvRecord = std::vector<CsvField>;

// Splits `text` into records and fields in a single quote-aware pass, so a
// quoted field may contain embedded newlines (and the delimiter, and `""`
// escaped quotes). Records are separated by '\n' outside quotes; one
// trailing '\r' per record (outside quotes) is dropped, which keeps the
// historical CRLF semantics. Completely empty records are skipped, like
// the old line-based reader skipped blank lines. An unterminated quote
// runs to end of input (malformed, parsed permissively).
std::vector<CsvRecord> SplitCsvRecords(const std::string& text, char delim) {
  std::vector<CsvRecord> records;
  CsvRecord record;
  CsvField field;
  bool in_quotes = false;
  bool record_started = false;
  // True when the field's most recent character was appended inside
  // quotes; such a trailing '\r' is field content, not a CRLF terminator.
  bool last_append_in_quotes = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field = CsvField{};
    last_append_in_quotes = false;
  };
  auto end_record = [&] {
    // One trailing '\r' outside quotes belongs to a CRLF terminator.
    if (!field.value.empty() && field.value.back() == '\r' &&
        !last_append_in_quotes) {
      field.value.pop_back();
    }
    end_field();
    bool empty_record = record.size() == 1 && !record[0].quoted &&
                        record[0].value.empty();
    if (!empty_record) records.push_back(std::move(record));
    record.clear();
    record_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.value += '"';
          last_append_in_quotes = true;
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.value += c;
        last_append_in_quotes = true;
      }
    } else if (c == '"') {
      in_quotes = true;
      field.quoted = true;
      record_started = true;
    } else if (c == delim) {
      end_field();
      record_started = true;
    } else if (c == '\n') {
      end_record();
    } else {
      field.value += c;
      last_append_in_quotes = false;
      record_started = true;
    }
  }
  // Final record without a trailing newline.
  if (record_started) end_record();
  return records;
}

std::string QuoteCsvField(const std::string& field, char delim) {
  bool needs_quote = field.find(delim) != std::string::npos ||
                     field.find('"') != std::string::npos ||
                     field.find('\n') != std::string::npos ||
                     field.find('\r') != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<DataFrame> ReadCsvString(const std::string& text,
                                const CsvOptions& options) {
  ARDA_FAULT_POINT(fault::kCsvParse);
  std::vector<CsvRecord> records = SplitCsvRecords(text, options.delimiter);
  if (records.empty()) {
    return Status::InvalidArgument("CSV input is empty (no header)");
  }
  std::vector<std::string> header;
  header.reserve(records[0].size());
  for (CsvField& f : records[0]) header.push_back(std::move(f.value));
  const size_t ncols = header.size();
  std::vector<std::vector<CsvField>> cells(ncols);
  for (size_t ri = 1; ri < records.size(); ++ri) {
    CsvRecord& fields = records[ri];
    if (fields.size() != ncols) {
      return Status::InvalidArgument(
          StrFormat("CSV row %zu has %zu fields, expected %zu", ri,
                    fields.size(), ncols));
    }
    for (size_t c = 0; c < ncols; ++c) {
      cells[c].push_back(std::move(fields[c]));
    }
  }

  DataFrame frame;
  for (size_t c = 0; c < ncols; ++c) {
    DataType type = DataType::kString;
    if (options.infer_types) {
      bool all_int = true;
      bool all_double = true;
      bool any_value = false;
      for (const CsvField& cell : cells[c]) {
        if (Trim(cell.value).empty()) continue;  // null
        any_value = true;
        int64_t iv;
        double dv;
        if (!ParseInt64(cell.value, &iv)) all_int = false;
        if (!ParseDouble(cell.value, &dv)) {
          all_double = false;
          break;
        }
      }
      if (any_value && all_int) type = DataType::kInt64;
      else if (any_value && all_double) type = DataType::kDouble;
    }
    Column col = Column::Empty(header[c], type);
    for (const CsvField& cell : cells[c]) {
      std::string_view trimmed = Trim(cell.value);
      if (trimmed.empty() && type != DataType::kString) {
        col.AppendNull();
        continue;
      }
      switch (type) {
        case DataType::kInt64: {
          int64_t iv = 0;
          // Type inference saw every cell parse, so a failure here means
          // the input mutated mid-read or the parser regressed; surface
          // it as a recoverable per-table error, not a crash.
          if (!ParseInt64(cell.value, &iv)) {
            return Status::InvalidArgument("unparseable int64 cell '" +
                                           cell.value + "' in column " +
                                           header[c]);
          }
          col.AppendInt64(iv);
          break;
        }
        case DataType::kDouble: {
          double dv = 0.0;
          if (!ParseDouble(cell.value, &dv)) {
            return Status::InvalidArgument("unparseable double cell '" +
                                           cell.value + "' in column " +
                                           header[c]);
          }
          col.AppendDouble(dv);
          break;
        }
        case DataType::kString:
          // A bare empty field is a null; only a quoted empty field
          // (`""`) is the empty string, matching what WriteCsvString
          // emits. This keeps the read/write round-trip lossless.
          if (cell.value.empty() && !cell.quoted) {
            col.AppendNull();
          } else {
            col.AppendString(cell.value);
          }
          break;
      }
    }
    ARDA_RETURN_IF_ERROR(frame.AddColumn(std::move(col)));
  }
  return frame;
}

Result<DataFrame> ReadCsvFile(const std::string& path,
                              const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), options);
}

std::string WriteCsvString(const DataFrame& frame,
                           const CsvOptions& options) {
  std::string out;
  for (size_t c = 0; c < frame.NumCols(); ++c) {
    if (c > 0) out += options.delimiter;
    out += QuoteCsvField(frame.col(c).name(), options.delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < frame.NumRows(); ++r) {
    for (size_t c = 0; c < frame.NumCols(); ++c) {
      if (c > 0) out += options.delimiter;
      const Column& col = frame.col(c);
      if (col.IsNull(r)) continue;  // nulls are bare empty fields
      std::string value = col.ValueToString(r);
      if (value.empty()) {
        out += "\"\"";  // empty string, distinct from null
      } else {
        out += QuoteCsvField(value, options.delimiter);
      }
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const DataFrame& frame, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out << WriteCsvString(frame, options);
  if (!out) {
    return Status::IoError("failed writing file: " + path);
  }
  return Status::Ok();
}

}  // namespace arda::df
