#include "dataframe/csv.h"

#include <cstdio>
#include <string_view>
#include <utility>

#include "util/fault.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace arda::df {

namespace {

// One parsed CSV field. `quoted` distinguishes `""` (empty string) from a
// bare empty field (null) so the writer/reader round-trip is lossless.
struct CsvField {
  std::string value;
  bool quoted = false;
};

// Raw text of one record: [begin, end) into the input, excluding the
// terminating '\n' but including any trailing '\r'.
struct RecordRange {
  size_t begin = 0;
  size_t end = 0;
};

// Scans `text` once, quote-aware, and returns the ranges of all non-blank
// records. Records are separated by '\n' outside quotes; a quoted field
// may contain embedded newlines, the delimiter, and `""` escaped quotes.
// A record is blank — and skipped, like the old line-based reader skipped
// blank lines — when its raw text is empty or a lone '\r' and it contains
// no quote character (`""` is a real record: one quoted empty field). An
// unterminated quote runs to end of input (malformed, parsed
// permissively).
std::vector<RecordRange> ScanRecords(std::string_view text) {
  std::vector<RecordRange> records;
  bool in_quotes = false;
  bool saw_quote = false;
  size_t start = 0;
  auto end_record = [&](size_t end) {
    size_t raw_len = end - start;
    bool blank = !saw_quote &&
                 (raw_len == 0 || (raw_len == 1 && text[start] == '\r'));
    if (!blank) records.push_back({start, end});
    saw_quote = false;
  };
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      // `""` escapes toggle out and straight back in; no '\n' can hide
      // between the pair, so plain toggling finds every record boundary.
      if (c == '"') in_quotes = false;
    } else if (c == '"') {
      in_quotes = true;
      saw_quote = true;
    } else if (c == '\n') {
      end_record(i);
      start = i + 1;
    }
  }
  // Final record without a trailing newline.
  if (start < text.size()) end_record(text.size());
  return records;
}

// Parses one record's raw text into fields, replicating the historical
// single-pass state machine: `""` inside quotes is an escaped quote,
// characters outside quotes are field content, and one trailing '\r' that
// was read outside quotes (a CRLF terminator) is dropped from the last
// field. Appends into `out` (cleared first; buffers are reused across
// records to avoid reallocation).
void ParseRecordFields(std::string_view rec, char delim,
                       std::vector<CsvField>* out) {
  out->clear();
  out->emplace_back();
  CsvField* field = &out->back();
  bool in_quotes = false;
  // True when the field's most recent character was appended inside
  // quotes; such a trailing '\r' is field content, not a CRLF terminator.
  bool last_append_in_quotes = false;
  for (size_t i = 0; i < rec.size(); ++i) {
    char c = rec[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < rec.size() && rec[i + 1] == '"') {
          field->value += '"';
          last_append_in_quotes = true;
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field->value += c;
        last_append_in_quotes = true;
      }
    } else if (c == '"') {
      in_quotes = true;
      field->quoted = true;
    } else if (c == delim) {
      out->emplace_back();
      field = &out->back();
      last_append_in_quotes = false;
    } else {
      field->value += c;
      last_append_in_quotes = false;
    }
  }
  if (!field->value.empty() && field->value.back() == '\r' &&
      !last_append_in_quotes) {
    field->value.pop_back();
  }
}

// Per-column accumulator of the type-inference pass.
struct ColumnStats {
  bool any_value = false;
  bool all_int = true;
  bool all_double = true;
  // A quoted empty field is an explicit empty *string*; one occurrence
  // pins the column to kString so the null-vs-empty-string round trip
  // stays lossless (a numeric column cannot hold "").
  bool force_string = false;

  void MergeFrom(const ColumnStats& other) {
    any_value = any_value || other.any_value;
    all_int = all_int && other.all_int;
    all_double = all_double && other.all_double;
    force_string = force_string || other.force_string;
  }

  DataType Decide() const {
    if (force_string) return DataType::kString;
    if (any_value && all_int) return DataType::kInt64;
    if (any_value && all_double) return DataType::kDouble;
    return DataType::kString;
  }
};

// Groups the data records (records[1..]) into chunks of roughly
// `chunk_bytes` raw text each, returned as [lo, hi) ranges of 0-based
// data-record indices. Chunk boundaries depend only on the input, never
// on thread count, so parallel parsing stays deterministic.
std::vector<std::pair<size_t, size_t>> MakeChunks(
    const std::vector<RecordRange>& records, size_t chunk_bytes) {
  if (chunk_bytes == 0) chunk_bytes = 1;
  std::vector<std::pair<size_t, size_t>> chunks;
  const size_t nrows = records.size() - 1;
  size_t start = 0;
  size_t bytes = 0;
  for (size_t i = 0; i < nrows; ++i) {
    bytes += records[i + 1].end - records[i + 1].begin;
    if (bytes >= chunk_bytes) {
      chunks.emplace_back(start, i + 1);
      start = i + 1;
      bytes = 0;
    }
  }
  if (start < nrows) chunks.emplace_back(start, nrows);
  return chunks;
}

Status RaggedRowError(size_t record_index, size_t got, size_t expected) {
  return Status::InvalidArgument(StrFormat(
      "CSV row %zu has %zu fields, expected %zu", record_index, got,
      expected));
}

Result<DataFrame> ReadCsvImpl(std::string_view text,
                              const CsvOptions& options) {
  ARDA_FAULT_POINT(fault::kCsvParse);
  trace::StageScope scope("ingest/read_csv");
  // Excel and friends prepend a UTF-8 BOM; it is not part of the first
  // column's name.
  if (text.size() >= 3 && text.substr(0, 3) == "\xEF\xBB\xBF") {
    text.remove_prefix(3);
  }
  std::vector<RecordRange> records = ScanRecords(text);
  if (records.empty()) {
    return Status::InvalidArgument("CSV input is empty (no header)");
  }

  std::vector<CsvField> header_fields;
  ParseRecordFields(text.substr(records[0].begin,
                                records[0].end - records[0].begin),
                    options.delimiter, &header_fields);
  std::vector<std::string> header;
  header.reserve(header_fields.size());
  for (CsvField& f : header_fields) header.push_back(std::move(f.value));
  const size_t ncols = header.size();
  const size_t nrows = records.size() - 1;

  const std::vector<std::pair<size_t, size_t>> chunks =
      MakeChunks(records, options.chunk_bytes);
  const size_t nchunks = chunks.size();

  // Pass 1 — per-chunk validation (field counts) and type inference.
  // Chunks are independent; flags merge associatively, and the first
  // error (lowest record index) wins, matching the serial reader.
  std::vector<std::vector<ColumnStats>> chunk_stats(nchunks);
  std::vector<Status> chunk_status(nchunks);
  auto infer_chunk = [&](size_t ci) {
    auto [lo, hi] = chunks[ci];
    std::vector<ColumnStats> stats(ncols);
    std::vector<CsvField> fields;
    for (size_t ri = lo; ri < hi; ++ri) {
      const RecordRange& rec = records[ri + 1];
      ParseRecordFields(text.substr(rec.begin, rec.end - rec.begin),
                        options.delimiter, &fields);
      if (fields.size() != ncols) {
        chunk_status[ci] = RaggedRowError(ri + 1, fields.size(), ncols);
        return;
      }
      if (!options.infer_types) continue;
      for (size_t c = 0; c < ncols; ++c) {
        const CsvField& cell = fields[c];
        if (Trim(cell.value).empty()) {
          if (cell.quoted && cell.value.empty()) stats[c].force_string = true;
          continue;  // null
        }
        stats[c].any_value = true;
        int64_t iv;
        double dv;
        if (stats[c].all_int && !ParseInt64(cell.value, &iv)) {
          stats[c].all_int = false;
        }
        if (stats[c].all_double && !ParseDouble(cell.value, &dv)) {
          stats[c].all_double = false;
        }
      }
    }
    chunk_stats[ci] = std::move(stats);
  };
  ParallelFor(nchunks, options.num_threads, infer_chunk);
  for (size_t ci = 0; ci < nchunks; ++ci) {
    ARDA_RETURN_IF_ERROR(chunk_status[ci]);
  }

  std::vector<DataType> types(ncols, DataType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < ncols; ++c) {
      ColumnStats merged;
      for (size_t ci = 0; ci < nchunks; ++ci) {
        merged.MergeFrom(chunk_stats[ci][c]);
      }
      types[c] = merged.Decide();
    }
  }

  // Pass 2 — parse each chunk straight into typed per-chunk builders.
  // Inference saw every cell parse, so a failure here means the input
  // mutated mid-read or the parser regressed; surface it as a recoverable
  // per-table error, not a crash.
  std::vector<std::vector<Column>> chunk_cols(nchunks);
  auto parse_chunk = [&](size_t ci) {
    auto [lo, hi] = chunks[ci];
    std::vector<Column> cols;
    cols.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      cols.push_back(Column::Empty(header[c], types[c]));
      cols.back().Reserve(hi - lo);
    }
    std::vector<CsvField> fields;
    for (size_t ri = lo; ri < hi; ++ri) {
      const RecordRange& rec = records[ri + 1];
      ParseRecordFields(text.substr(rec.begin, rec.end - rec.begin),
                        options.delimiter, &fields);
      if (fields.size() != ncols) {
        chunk_status[ci] = RaggedRowError(ri + 1, fields.size(), ncols);
        return;
      }
      for (size_t c = 0; c < ncols; ++c) {
        const CsvField& cell = fields[c];
        if (types[c] != DataType::kString && Trim(cell.value).empty()) {
          cols[c].AppendNull();
          continue;
        }
        switch (types[c]) {
          case DataType::kInt64: {
            int64_t iv = 0;
            if (!ParseInt64(cell.value, &iv)) {
              chunk_status[ci] = Status::InvalidArgument(
                  "unparseable int64 cell '" + cell.value + "' in column " +
                  header[c]);
              return;
            }
            cols[c].AppendInt64(iv);
            break;
          }
          case DataType::kDouble: {
            double dv = 0.0;
            if (!ParseDouble(cell.value, &dv)) {
              chunk_status[ci] = Status::InvalidArgument(
                  "unparseable double cell '" + cell.value +
                  "' in column " + header[c]);
              return;
            }
            cols[c].AppendDouble(dv);
            break;
          }
          case DataType::kString:
            // A bare empty field is a null; only a quoted empty field
            // (`""`) is the empty string, matching what WriteCsvString
            // emits. This keeps the read/write round-trip lossless.
            if (cell.value.empty() && !cell.quoted) {
              cols[c].AppendNull();
            } else {
              cols[c].AppendString(cell.value);
            }
            break;
        }
      }
    }
    chunk_cols[ci] = std::move(cols);
  };
  ParallelFor(nchunks, options.num_threads, parse_chunk);
  for (size_t ci = 0; ci < nchunks; ++ci) {
    ARDA_RETURN_IF_ERROR(chunk_status[ci]);
  }

  // Stitch chunks together in chunk order — the sole ordering point, so
  // output is bit-identical for every thread count.
  DataFrame frame;
  for (size_t c = 0; c < ncols; ++c) {
    Column col = Column::Empty(header[c], types[c]);
    col.Reserve(nrows);
    for (size_t ci = 0; ci < nchunks; ++ci) {
      col.AppendColumn(std::move(chunk_cols[ci][c]));
    }
    ARDA_RETURN_IF_ERROR(frame.AddColumn(std::move(col)));
  }
  metrics::IncrementCounter("ingest.csv_bytes", text.size());
  metrics::IncrementCounter("ingest.csv_rows", nrows);
  return frame;
}

std::string QuoteCsvField(const std::string& field, char delim) {
  bool needs_quote = field.find(delim) != std::string::npos ||
                     field.find('"') != std::string::npos ||
                     field.find('\n') != std::string::npos ||
                     field.find('\r') != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<DataFrame> ReadCsvString(const std::string& text,
                                const CsvOptions& options) {
  return ReadCsvImpl(text, options);
}

Result<DataFrame> ReadCsvFile(const std::string& path,
                              const CsvOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open file: " + path);
  }
  // One read into one buffer (the old rdbuf()->stringstream->str() path
  // copied the file twice before parsing even started).
  std::string buffer;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    long size = std::ftell(f);
    if (size > 0) buffer.reserve(static_cast<size_t>(size));
    std::fseek(f, 0, SEEK_SET);
  }
  char block[1 << 16];
  size_t got;
  while ((got = std::fread(block, 1, sizeof(block), f)) > 0) {
    buffer.append(block, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("failed reading file: " + path);
  }
  return ReadCsvImpl(buffer, options);
}

std::string WriteCsvString(const DataFrame& frame,
                           const CsvOptions& options) {
  std::string out;
  for (size_t c = 0; c < frame.NumCols(); ++c) {
    if (c > 0) out += options.delimiter;
    out += QuoteCsvField(frame.col(c).name(), options.delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < frame.NumRows(); ++r) {
    for (size_t c = 0; c < frame.NumCols(); ++c) {
      if (c > 0) out += options.delimiter;
      const Column& col = frame.col(c);
      if (col.IsNull(r)) continue;  // nulls are bare empty fields
      std::string value = col.ValueToString(r);
      if (value.empty()) {
        out += "\"\"";  // empty string, distinct from null
      } else {
        out += QuoteCsvField(value, options.delimiter);
      }
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const DataFrame& frame, const std::string& path,
                    const CsvOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  std::string text = WriteCsvString(frame, options);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  bool close_error = std::fclose(f) != 0;
  if (written != text.size() || close_error) {
    return Status::IoError("failed writing file: " + path);
  }
  return Status::Ok();
}

}  // namespace arda::df
