#include "dataframe/describe.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/string_util.h"

namespace arda::df {

std::vector<ColumnSummary> Describe(const DataFrame& frame) {
  std::vector<ColumnSummary> summaries;
  summaries.reserve(frame.NumCols());
  for (size_t ci = 0; ci < frame.NumCols(); ++ci) {
    const Column& col = frame.col(ci);
    ColumnSummary summary;
    summary.name = col.name();
    summary.type = col.type();
    summary.null_count = col.NullCount();
    summary.count = col.size() - summary.null_count;

    std::map<std::string, size_t> counts;
    for (size_t r = 0; r < col.size(); ++r) {
      if (!col.IsNull(r)) ++counts[col.ValueToString(r)];
    }
    summary.distinct = counts.size();
    size_t best = 0;
    for (const auto& [value, count] : counts) {
      if (count > best) {
        best = count;
        summary.mode = value;
      }
    }

    if (col.IsNumeric() && summary.count > 0) {
      std::vector<double> values = col.NonNullNumericValues();
      double sum = 0.0;
      for (double v : values) sum += v;
      summary.mean = sum / static_cast<double>(values.size());
      double var = 0.0;
      for (double v : values) {
        var += (v - summary.mean) * (v - summary.mean);
      }
      summary.stddev = std::sqrt(var / static_cast<double>(values.size()));
      auto [lo, hi] = std::minmax_element(values.begin(), values.end());
      summary.min = *lo;
      summary.max = *hi;
      summary.median = col.NumericMedian();
    }
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

std::string DescribeToString(const DataFrame& frame) {
  std::vector<ColumnSummary> summaries = Describe(frame);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"column", "type", "count", "nulls", "distinct", "mean",
                  "std", "min", "median", "max", "mode"});
  for (const ColumnSummary& s : summaries) {
    bool numeric = s.type != DataType::kString;
    rows.push_back(
        {s.name, DataTypeName(s.type), StrFormat("%zu", s.count),
         StrFormat("%zu", s.null_count), StrFormat("%zu", s.distinct),
         numeric ? StrFormat("%.4g", s.mean) : "-",
         numeric ? StrFormat("%.4g", s.stddev) : "-",
         numeric ? StrFormat("%.4g", s.min) : "-",
         numeric ? StrFormat("%.4g", s.median) : "-",
         numeric ? StrFormat("%.4g", s.max) : "-", s.mode});
  }
  std::vector<size_t> widths(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  }
  return out;
}

}  // namespace arda::df
