#ifndef ARDA_DATAFRAME_AGGREGATE_H_
#define ARDA_DATAFRAME_AGGREGATE_H_

#include <string>
#include <vector>

#include "dataframe/data_frame.h"
#include "util/status.h"

namespace arda::df {

class KeyEncoder;

/// Aggregation applied to non-key numeric columns during group-by.
enum class NumericAgg { kMean, kMedian, kSum, kMin, kMax, kFirst };

/// Aggregation applied to non-key string columns during group-by.
enum class CategoricalAgg { kMode, kFirst };

/// Options for GroupByAggregate.
struct AggregateOptions {
  NumericAgg numeric = NumericAgg::kMean;
  CategoricalAgg categorical = CategoricalAgg::kMode;
  /// When true, adds an int64 "__group_count" column with group sizes.
  bool add_count = false;
  /// Radix partitions for the out-of-core path: the frame is split by key
  /// hash, each partition is aggregated as an independent ThreadPool task,
  /// and the per-partition results are merged back into global
  /// first-occurrence order — bit-identical to the single-pass kernel at
  /// any count. 0 derives the count from `memory_budget_bytes`; a
  /// resolved count of <= 1 runs the existing single pass.
  size_t partition_count = 0;
  /// Soft per-kernel working-set budget, consulted only when
  /// `partition_count` == 0 (0 = unbounded, i.e. single pass).
  uint64_t memory_budget_bytes = 0;
};

/// Groups `frame` by the given key columns and aggregates every other
/// column per `options`. Key columns keep their type and hold one row per
/// distinct key combination (null keys form their own group); aggregated
/// numeric columns become kDouble. Groups appear in first-occurrence order.
///
/// This is the primitive behind ARDA's one-to-many pre-aggregation and time
/// resampling (Section 4 of the paper).
Result<DataFrame> GroupByAggregate(const DataFrame& frame,
                                   const std::vector<std::string>& keys,
                                   const AggregateOptions& options = {});

/// As above, but reuses a KeyEncoder already built over `frame[keys]`
/// (e.g. a join's duplicate-detection pass) instead of re-encoding the
/// key columns. The encoder must have been built on this exact frame.
/// Always single-pass: a whole-frame encoder is incompatible with
/// per-partition encoding, so the partitioning options are ignored.
Result<DataFrame> GroupByAggregate(const DataFrame& frame,
                                   const std::vector<std::string>& keys,
                                   const KeyEncoder& encoder,
                                   const AggregateOptions& options = {});

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_AGGREGATE_H_
