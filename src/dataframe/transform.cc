#include "dataframe/transform.h"

#include <algorithm>

namespace arda::df {

DataFrame Filter(const DataFrame& frame, const RowPredicate& predicate) {
  std::vector<size_t> kept;
  for (size_t r = 0; r < frame.NumRows(); ++r) {
    if (predicate(frame, r)) kept.push_back(r);
  }
  return frame.Take(kept);
}

Result<DataFrame> FilterNumericRange(const DataFrame& frame,
                                     const std::string& column, double lo,
                                     double hi) {
  size_t idx = frame.ColumnIndex(column);
  if (idx == DataFrame::kNpos) {
    return Status::NotFound("no such column: " + column);
  }
  if (!frame.col(idx).IsNumeric()) {
    return Status::InvalidArgument("column is not numeric: " + column);
  }
  return Filter(frame, [&, idx](const DataFrame& f, size_t r) {
    const Column& col = f.col(idx);
    if (col.IsNull(r)) return false;
    double v = col.NumericAt(r);
    return v >= lo && v <= hi;
  });
}

Result<DataFrame> FilterEquals(const DataFrame& frame,
                               const std::string& column,
                               const std::string& value) {
  size_t idx = frame.ColumnIndex(column);
  if (idx == DataFrame::kNpos) {
    return Status::NotFound("no such column: " + column);
  }
  if (frame.col(idx).type() != DataType::kString) {
    return Status::InvalidArgument("column is not a string: " + column);
  }
  return Filter(frame, [&, idx](const DataFrame& f, size_t r) {
    const Column& col = f.col(idx);
    return !col.IsNull(r) && col.StringAt(r) == value;
  });
}

Result<DataFrame> SortBy(const DataFrame& frame, const std::string& column,
                         bool ascending) {
  size_t idx = frame.ColumnIndex(column);
  if (idx == DataFrame::kNpos) {
    return Status::NotFound("no such column: " + column);
  }
  const Column& col = frame.col(idx);
  std::vector<size_t> order(frame.NumRows());
  for (size_t r = 0; r < order.size(); ++r) order[r] = r;
  auto less = [&](size_t a, size_t b) {
    bool null_a = col.IsNull(a);
    bool null_b = col.IsNull(b);
    if (null_a || null_b) return !null_a && null_b;  // nulls last
    if (col.IsNumeric()) {
      double va = col.NumericAt(a);
      double vb = col.NumericAt(b);
      return ascending ? va < vb : vb < va;
    }
    const std::string& sa = col.StringAt(a);
    const std::string& sb = col.StringAt(b);
    return ascending ? sa < sb : sb < sa;
  };
  std::stable_sort(order.begin(), order.end(), less);
  return frame.Take(order);
}

Status AddComputedColumn(DataFrame* frame, const std::string& name,
                         const std::function<double(const DataFrame&,
                                                    size_t)>& fn) {
  std::vector<double> values(frame->NumRows());
  for (size_t r = 0; r < frame->NumRows(); ++r) {
    values[r] = fn(*frame, r);
  }
  return frame->AddColumn(Column::Double(name, std::move(values)));
}

}  // namespace arda::df
