#ifndef ARDA_DATAFRAME_COLUMN_STATS_H_
#define ARDA_DATAFRAME_COLUMN_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dataframe/data_frame.h"

/// \file
/// Per-column statistics catalog: row/non-null counts, numeric min/max, a
/// HyperLogLog distinct-value estimator and a MinHash sketch of the
/// distinct-value set, all computed in a single pass over the column.
/// Discovery scores candidate joins from these sketches instead of
/// rescanning raw values, and the core join planner orders candidates by
/// the statistics form of the Tuple Ratio (see DESIGN.md "Discovery
/// statistics catalog"). Stats are persisted in the `.ardac` cache meta
/// block (docs/columnar_format.md) so repeated runs skip the pass too.

namespace arda::df {

/// HyperLogLog precision: 2^12 = 4096 one-byte registers per column, a
/// ~1.6% relative NDV error. Fixed so serialized sketches stay comparable.
inline constexpr int kHllPrecision = 12;
inline constexpr size_t kHllRegisters = size_t{1} << kHllPrecision;

/// MinHash sketch width and permutation seed. All persisted sketches use
/// these constants so any two columns' sketches are slot-comparable.
inline constexpr size_t kStatsMinHashHashes = 128;
inline constexpr uint64_t kStatsMinHashSeed = 0x51;

/// 64-bit FNV-1a — the canonical value hash behind every sketch in the
/// catalog (and the source-file fingerprint in the cache meta block).
uint64_t StatsFnv1a64(std::string_view data);

/// Mixes a value hash with a per-permutation key (xorshift-multiply);
/// permutation h of the MinHash sketch uses key `seed + h`.
uint64_t StatsMixHash(uint64_t value, uint64_t key);

/// Single-pass statistics of one column. `hll` and `minhash` are sized
/// kHllRegisters / kStatsMinHashHashes when populated and empty only on a
/// default-constructed (absent) entry.
struct ColumnStats {
  uint64_t row_count = 0;
  uint64_t non_null_count = 0;
  /// True when the column is numeric with at least one non-null value;
  /// min/max are only meaningful then.
  bool has_range = false;
  double min = 0.0;
  double max = 0.0;
  /// HyperLogLog registers over the distinct non-null values (rendered via
  /// Column::ValueToString, hashed with StatsFnv1a64).
  std::vector<uint8_t> hll;
  /// MinHash sketch (kStatsMinHashHashes slots, seed kStatsMinHashSeed)
  /// over the same value domain.
  std::vector<uint64_t> minhash;

  /// Estimated number of distinct non-null values (HyperLogLog with the
  /// small-range linear-counting correction). 0 when the sketch is empty.
  double DistinctEstimate() const;

  /// True when no sketches were computed (absent / default entry).
  bool Empty() const { return hll.empty(); }
};

/// Statistics for every column of a frame, aligned with frame column
/// order (columns[i] describes frame.col(i)).
struct TableStats {
  std::vector<ColumnStats> columns;

  bool Empty() const { return columns.empty(); }
};

/// Computes the full statistics of one column in a single pass.
ColumnStats ComputeColumnStats(const Column& column);

/// Computes statistics for every column of `frame`.
TableStats ComputeTableStats(const DataFrame& frame);

/// Estimated Jaccard similarity of two columns' distinct-value sets from
/// their MinHash sketches (fraction of matching slots). 0 when either
/// sketch is empty.
double EstimateJaccard(const ColumnStats& a, const ColumnStats& b);

/// Estimated containment |base ∩ foreign| / |base| of the base column's
/// distinct values in the foreign column's. When both HLLs are present
/// (the catalog case) the intersection comes from inclusion-exclusion
/// over the merged union sketch — register-wise max of two HLLs is the
/// HLL of the union — keeping the ~1.6% HLL error even when the sets'
/// resemblance is tiny. Without comparable HLLs it falls back to the
/// MinHash route:
///   |A ∩ B| ≈ J·(|A| + |B|) / (1 + J),  containment = |A ∩ B| / |A|.
/// Clamped to [0, 1]; 0 when either domain is empty.
double EstimateContainment(const ColumnStats& base,
                           const ColumnStats& foreign);

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_COLUMN_STATS_H_
