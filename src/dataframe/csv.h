#ifndef ARDA_DATAFRAME_CSV_H_
#define ARDA_DATAFRAME_CSV_H_

#include <string>

#include "dataframe/data_frame.h"
#include "util/status.h"

namespace arda::df {

/// CSV reading options.
struct CsvOptions {
  char delimiter = ',';
  /// When true (default) column types are inferred from the data:
  /// all-integer -> int64, otherwise all-numeric -> double, else string.
  /// Empty fields become nulls.
  bool infer_types = true;
};

/// Parses a CSV string (first line is the header) into a DataFrame.
Result<DataFrame> ReadCsvString(const std::string& text,
                                const CsvOptions& options = {});

/// Reads a CSV file (first line is the header) into a DataFrame.
Result<DataFrame> ReadCsvFile(const std::string& path,
                              const CsvOptions& options = {});

/// Serializes a DataFrame to CSV text (header + rows; nulls are empty
/// fields; fields containing the delimiter, quotes or newlines are quoted).
std::string WriteCsvString(const DataFrame& frame,
                           const CsvOptions& options = {});

/// Writes a DataFrame to a CSV file.
Status WriteCsvFile(const DataFrame& frame, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_CSV_H_
