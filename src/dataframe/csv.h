#ifndef ARDA_DATAFRAME_CSV_H_
#define ARDA_DATAFRAME_CSV_H_

#include <string>

#include "dataframe/data_frame.h"
#include "util/status.h"

namespace arda::df {

/// CSV reading options.
struct CsvOptions {
  char delimiter = ',';
  /// When true (default) column types are inferred from the data:
  /// all-integer -> int64, otherwise all-numeric -> double, else string.
  /// Empty fields become nulls; a quoted empty field ("") forces string
  /// inference (it is an explicit empty string, see docs/csv_dialect.md).
  bool infer_types = true;
  /// Worker threads for chunk parsing: 0 = hardware concurrency,
  /// 1 = serial. Output is bit-identical for every value (chunks are
  /// scanned deterministically and appended in chunk order).
  size_t num_threads = 0;
  /// Target raw-text bytes per parse chunk. Inputs smaller than one chunk
  /// parse inline on the caller; tests shrink this to force many chunks.
  size_t chunk_bytes = 1 << 20;
};

/// Parses a CSV string (first line is the header) into a DataFrame.
/// A leading UTF-8 byte-order mark (EF BB BF) is stripped before header
/// parsing. Record boundaries are scanned quote-aware in one pass; chunks
/// of records are then type-inferred and parsed into typed columns in
/// parallel (two-pass, deterministic — see CsvOptions::num_threads).
Result<DataFrame> ReadCsvString(const std::string& text,
                                const CsvOptions& options = {});

/// Reads a CSV file (first line is the header) into a DataFrame via the
/// chunked reader (single read of the file, no stream copies).
Result<DataFrame> ReadCsvFile(const std::string& path,
                              const CsvOptions& options = {});

/// Serializes a DataFrame to CSV text (header + rows; nulls are empty
/// fields; fields containing the delimiter, quotes or newlines are quoted).
std::string WriteCsvString(const DataFrame& frame,
                           const CsvOptions& options = {});

/// Writes a DataFrame to a CSV file.
Status WriteCsvFile(const DataFrame& frame, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_CSV_H_
