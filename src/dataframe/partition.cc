#include "dataframe/partition.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <string_view>

#include "util/check.h"

namespace arda::df {

namespace {

// splitmix64 finalizer (same mixer key_encoder.cc uses; shared equality
// relation, independent hash values).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashString(std::string_view s) {
  return Mix64(std::hash<std::string_view>{}(s));
}

// Per-column hash of nulls. Any constant works: KeyEncoder gives null a
// reserved value id, so null == null and null != everything else; a
// constant hash preserves exactly that.
constexpr uint64_t kNullHash = 0x9ae16a3b2f90404full;

// Renders row `r` of `col` the way key_encoder.cc's RenderValue does, so
// two rows that KeyEncoder would place in one group render identically
// here and hash to the same partition.
uint64_t HashKeyValue(const Column& col, size_t r,
                      const PartitionKeySpec& spec, char* buf,
                      size_t cap) {
  if (col.IsNull(r)) return kNullHash;
  if (spec.native) {
    return Mix64(static_cast<uint64_t>(col.Int64At(r)));
  }
  if (col.type() == DataType::kString) return HashString(col.StringAt(r));
  if (spec.granularity > 0.0) {
    double v = std::floor(col.NumericAt(r) / spec.granularity) *
               spec.granularity;
    int len = std::snprintf(buf, cap, "%.10g", v);
    return HashString(std::string_view(buf, static_cast<size_t>(len)));
  }
  int len = col.type() == DataType::kDouble
                ? std::snprintf(buf, cap, "%.10g", col.DoubleAt(r))
                : std::snprintf(buf, cap, "%lld",
                                static_cast<long long>(col.Int64At(r)));
  return HashString(std::string_view(buf, static_cast<size_t>(len)));
}

}  // namespace

std::vector<std::vector<size_t>> PartitionRowsByKey(
    const DataFrame& frame, const std::vector<PartitionKeySpec>& keys,
    size_t num_partitions) {
  const size_t p = num_partitions == 0 ? 1 : num_partitions;
  const size_t n = frame.NumRows();
  std::vector<std::vector<size_t>> out(p);
  if (p == 1) {
    out[0].resize(n);
    for (size_t r = 0; r < n; ++r) out[0][r] = r;
    return out;
  }
  for (const PartitionKeySpec& spec : keys) {
    ARDA_CHECK_LT(spec.col, frame.NumCols());
    if (spec.native) {
      ARDA_CHECK(frame.col(spec.col).type() == DataType::kInt64);
    }
  }
  char buf[64];
  for (size_t r = 0; r < n; ++r) {
    // FNV-1a over the per-column hashes, then a final mix; modulo (not
    // masking) so any partition count works.
    uint64_t h = 1469598103934665603ull;
    for (const PartitionKeySpec& spec : keys) {
      uint64_t ch = HashKeyValue(frame.col(spec.col), r, spec, buf,
                                 sizeof(buf));
      for (int i = 0; i < 8; ++i) {
        h = (h ^ ((ch >> (8 * i)) & 0xff)) * 1099511628211ull;
      }
    }
    out[Mix64(h) % p].push_back(r);
  }
  return out;
}

uint64_t EstimateFrameBytes(const DataFrame& frame) {
  const uint64_t rows = frame.NumRows();
  uint64_t per_row = 0;
  for (size_t c = 0; c < frame.NumCols(); ++c) {
    per_row += frame.col(c).type() == DataType::kString ? 40 : 9;
  }
  return rows * per_row;
}

size_t ChoosePartitionCount(size_t requested, uint64_t budget_bytes,
                            uint64_t estimated_bytes) {
  if (requested > 0) return requested;
  if (budget_bytes == 0) return 1;
  uint64_t p = (estimated_bytes + budget_bytes - 1) / budget_bytes;
  if (p < 1) p = 1;
  if (p > 256) p = 256;
  return static_cast<size_t>(p);
}

}  // namespace arda::df
