#include "dataframe/mapped_columnar.h"

#include <bit>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "dataframe/columnar_internal.h"
#include "simd/simd.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define ARDA_HAVE_MMAP 1
#else
#define ARDA_HAVE_MMAP 0
#endif

namespace arda::df {

#if ARDA_HAVE_MMAP

namespace {

// Owns one read-only file mapping; shared by every column borrowed out
// of it, so munmap runs exactly once — after the last borrower drops.
struct Mapping {
  void* addr = nullptr;
  size_t len = 0;

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (addr != nullptr) ::munmap(addr, len);
  }
};

}  // namespace

Result<DataFrame> MapColumnar(const std::string& path, ColumnarMeta* meta,
                              bool* unsupported_version) {
  if (unsupported_version != nullptr) *unsupported_version = false;
  if (meta != nullptr) *meta = ColumnarMeta{};
  ARDA_FAULT_POINT(fault::kColumnarMap);
  trace::StageScope scope("ingest/columnar_map");

  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open file: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat file: " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < internal::kV3HeaderSize) {
    // Covers the 0-byte case, which mmap itself would reject (EINVAL).
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("columnar data truncated reading header (need %zu "
                  "bytes, have %llu): %s",
                  internal::kV3HeaderSize,
                  static_cast<unsigned long long>(file_size),
                  path.c_str()));
  }

  auto mapping = std::make_shared<Mapping>();
  void* addr = ::mmap(nullptr, static_cast<size_t>(file_size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IoError("cannot mmap file: " + path);
  }
  mapping->addr = addr;
  mapping->len = static_cast<size_t>(file_size);
  // Column slices are the access granularity here, and bounded residency
  // is the point of the mapped path: with default sequential readahead
  // the kernel's fault windows (64 KiB fault-around, up to 2 MiB
  // readahead) around the header/meta touches below would pull a whole
  // few-MiB table resident on open. Advise random access so each kernel
  // pays for exactly the pages it reads. Advisory only — ignore failure.
  ::madvise(addr, static_cast<size_t>(file_size), MADV_RANDOM);
  const char* base = static_cast<const char*>(addr);
  std::string_view data(base, static_cast<size_t>(file_size));

  // A well-formed v1/v2 file is not an error of the *file* — it predates
  // the index this reader needs. Flag it so the loader falls through to
  // the eager reader without recording a cache fallback.
  if (data.substr(0, 4) == "ARDC") {
    uint32_t version = 0;
    for (int i = 0; i < 4; ++i) {
      version |= static_cast<uint32_t>(
                     static_cast<unsigned char>(data[4 + i]))
                 << (8 * i);
    }
    if (version >= 1 && version < 3) {
      if (unsupported_version != nullptr) *unsupported_version = true;
      return Status::FailedPrecondition(
          StrFormat("columnar file is version %u; mapped open needs the "
                    "version-3 column index",
                    version));
    }
  }

  internal::V3Index index;
  ARDA_RETURN_IF_ERROR(internal::ParseV3Index(data, file_size, &index));
  const size_t rows = static_cast<size_t>(index.rows);

  DataFrame frame;
  for (const internal::V3Column& entry : index.columns) {
    const uint8_t* validity =
        reinterpret_cast<const uint8_t*>(base + entry.validity_off);
    Column col = Column::Empty(entry.name, entry.type);
    switch (entry.type) {
      case DataType::kDouble:
        if constexpr (std::endian::native == std::endian::little) {
          col = Column::BorrowedDouble(
              entry.name,
              reinterpret_cast<const double*>(base + entry.data_off),
              validity, rows, mapping);
        } else {
          std::vector<double> decoded(rows);
          simd::DecodeU64LeToDouble(base + entry.data_off, rows,
                                    decoded.data());
          col = Column::Double(entry.name, std::move(decoded));
          col.SetValidity(
              std::vector<uint8_t>(validity, validity + rows));
        }
        break;
      case DataType::kInt64:
        if constexpr (std::endian::native == std::endian::little) {
          col = Column::BorrowedInt64(
              entry.name,
              reinterpret_cast<const int64_t*>(base + entry.data_off),
              validity, rows, mapping);
        } else {
          std::vector<int64_t> decoded(rows);
          simd::DecodeU64LeToInt64(base + entry.data_off, rows,
                                   decoded.data());
          col = Column::Int64(entry.name, std::move(decoded));
          col.SetValidity(
              std::vector<uint8_t>(validity, validity + rows));
        }
        break;
      case DataType::kString:
        // Strings are variable-width — no zero-copy view exists for
        // them, so they decode eagerly like the meta block.
        ARDA_ASSIGN_OR_RETURN(
            col, internal::DecodeV3StringColumn(
                     data.substr(entry.data_off, entry.data_len),
                     data.substr(entry.validity_off, rows), entry.name,
                     rows));
        break;
    }
    ARDA_RETURN_IF_ERROR(frame.AddColumn(std::move(col)));
  }
  ColumnarMeta local_meta;
  ARDA_RETURN_IF_ERROR(internal::DecodeMetaBlockRange(
      data.substr(index.meta_off, index.meta_len), index.cols,
      meta == nullptr ? &local_meta : meta));

  metrics::IncrementCounter("ingest.columnar_map_bytes", data.size());
  metrics::IncrementCounter("ingest.columnar_map_tables", 1);
  return frame;
}

#else  // !ARDA_HAVE_MMAP

Result<DataFrame> MapColumnar(const std::string& path, ColumnarMeta* meta,
                              bool* unsupported_version) {
  if (unsupported_version != nullptr) *unsupported_version = false;
  if (meta != nullptr) *meta = ColumnarMeta{};
  (void)path;
  return Status::FailedPrecondition(
      "mmap-backed columnar open is unsupported on this platform");
}

#endif  // ARDA_HAVE_MMAP

}  // namespace arda::df
