#ifndef ARDA_DATAFRAME_KEY_ENCODER_H_
#define ARDA_DATAFRAME_KEY_ENCODER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dataframe/data_frame.h"

namespace arda::df {

/// Dictionary-encodes composite row keys over a set of columns into dense
/// group ids, replacing the legacy per-row `'\x1f'`-joined string keys on
/// the join/group-by hot paths (see DESIGN.md "Interned join keys").
///
/// Key equality matches the legacy string composition: doubles compare by
/// their "%.10g" rendering (values that round to the same 10 significant
/// digits collide, exactly as before), int64 by "%lld", strings natively,
/// and null is a per-column value distinct from everything else. Each
/// distinct column value is rendered and hashed once (interned); rows then
/// carry small integer ids and composite lookups hash fixed-width id
/// tuples instead of heap strings. All hashing goes through flat
/// open-addressing tables, so the steady state allocates nothing per row.
///
/// Group ids are dense and numbered in first-occurrence row order, which
/// is what GroupByAggregate's output ordering and the hash-join
/// keep-first-row rule both need.
///
/// Intentional divergence from the legacy keys (strictly more precise):
/// column-wise comparison cannot conflate distinct tuples whose rendered
/// values embed the separator byte '\x1f' or the literal null marker
/// "\x1e<null>", which the concatenated form could.
class KeyEncoder {
 public:
  static constexpr uint64_t kMiss = ~0ull;

  struct Options {
    /// Per-column bucket granularity applied on the *probe* side only:
    /// a probe value v of a numeric column with granularity g > 0 is
    /// keyed as "%.10g" of floor(v / g) * g (the time-resampled hard-join
    /// bucketing). Empty means no bucketing anywhere.
    std::vector<double> probe_granularity;
    /// Types of the columns that Probe() will be called with, aligned
    /// with the build columns. Empty means "same as the build columns".
    /// An int64 build column only uses the fast native dictionary when
    /// the probe side is also int64 and unbucketed; any mismatch falls
    /// back to the rendered-string dictionary, which reproduces the
    /// legacy cross-type comparisons (e.g. int64 "42" == double "42").
    std::vector<DataType> probe_types;
  };

  /// Builds the dictionaries and group ids over `frame[col_idx]`.
  KeyEncoder(const DataFrame& frame, const std::vector<size_t>& col_idx,
             const Options& options = {});
  KeyEncoder(const DataFrame& frame, const std::vector<std::string>& columns,
             const Options& options = {});

  size_t num_groups() const { return group_first_row_.size(); }
  /// Number of build rows.
  size_t num_rows() const { return row_group_.size(); }
  /// Dense group id of build row r, in first-occurrence order.
  uint64_t GroupOf(size_t row) const { return row_group_[row]; }
  /// All build-row group ids as a dense array (the SIMD group-by kernels
  /// index this directly instead of calling GroupOf per row).
  const std::vector<uint64_t>& row_groups() const { return row_group_; }
  /// First build row of each group (the hash-join keep-first rule).
  const std::vector<size_t>& group_first_row() const {
    return group_first_row_;
  }
  bool HasDuplicates() const {
    return num_groups() < row_group_.size();
  }

  /// Encodes row `row` of `frame[col_idx]` (columns aligned with the build
  /// columns) against the build dictionaries without inserting. Returns
  /// the matching group id, or kMiss when any column value or the full
  /// tuple was never seen at build time.
  uint64_t Probe(const DataFrame& frame, const std::vector<size_t>& col_idx,
                 size_t row) const;
  uint64_t Probe(const DataFrame& frame,
                 const std::vector<std::string>& columns, size_t row) const;

  /// Batch Probe over every row of `frame[col_idx]`: out[r] receives the
  /// group id of row r, or kMiss. Identical results to calling Probe per
  /// row (pinned by the golden join outputs); the batch form routes the
  /// native-int64 dictionary lookups and the composite hash+home-slot
  /// probe through the arda_simd kernels, with only collision walks and
  /// rendered-string columns handled row-at-a-time.
  void ProbeAll(const DataFrame& frame, const std::vector<size_t>& col_idx,
                uint64_t* out) const;

 private:
  enum class Mode { kInt64, kString };

  /// Open-addressing (hash -> 32-bit id) table with linear probing. The
  /// caller verifies candidate ids against its own value storage, so two
  /// distinct keys with equal hashes simply occupy two slots.
  struct FlatTable {
    std::vector<uint64_t> hashes;
    std::vector<uint32_t> ids;  // kEmpty marks a free slot
    size_t count = 0;
    static constexpr uint32_t kEmpty = ~0u;

    void Reserve(size_t expected);
    void Grow();
  };

  struct ColumnDict {
    Mode mode = Mode::kString;
    double probe_granularity = 0.0;
    FlatTable table;
    /// Value id (1-based; 0 is reserved for null) -> interned value, used
    /// to verify table candidates exactly.
    std::vector<int64_t> int_values;
    std::vector<std::string> str_values;
  };

  void Build(const DataFrame& frame, const std::vector<size_t>& col_idx,
             const Options& options);

  std::vector<ColumnDict> dicts_;
  /// Flat key tuples, dicts_.size() ids per group, in group-id order.
  std::vector<uint32_t> tuple_store_;
  FlatTable groups_;
  std::vector<uint64_t> row_group_;
  std::vector<size_t> group_first_row_;
};

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_KEY_ENCODER_H_
