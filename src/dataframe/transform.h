#ifndef ARDA_DATAFRAME_TRANSFORM_H_
#define ARDA_DATAFRAME_TRANSFORM_H_

#include <functional>
#include <string>

#include "dataframe/data_frame.h"
#include "util/status.h"

namespace arda::df {

/// Row predicate: receives the frame and a row index, returns keep/drop.
using RowPredicate = std::function<bool(const DataFrame&, size_t)>;

/// Returns the rows of `frame` for which `predicate` is true, in order.
DataFrame Filter(const DataFrame& frame, const RowPredicate& predicate);

/// Returns the rows where the numeric column `column` lies in
/// [lo, hi]; null entries are dropped. Fails if the column is missing or
/// non-numeric.
Result<DataFrame> FilterNumericRange(const DataFrame& frame,
                                     const std::string& column, double lo,
                                     double hi);

/// Returns the rows where string column `column` equals `value`
/// (nulls dropped). Fails if the column is missing or not a string.
Result<DataFrame> FilterEquals(const DataFrame& frame,
                               const std::string& column,
                               const std::string& value);

/// Returns `frame` sorted by `column` (ascending by default; stable).
/// Nulls sort last. Fails if the column is missing.
Result<DataFrame> SortBy(const DataFrame& frame, const std::string& column,
                         bool ascending = true);

/// Appends a computed double column: `fn` receives the frame and a row
/// index and returns the new value. Fails on name collisions.
Status AddComputedColumn(DataFrame* frame, const std::string& name,
                         const std::function<double(const DataFrame&,
                                                    size_t)>& fn);

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_TRANSFORM_H_
