#ifndef ARDA_DATAFRAME_COLUMN_H_
#define ARDA_DATAFRAME_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"

namespace arda::df {

/// Physical type of a column. Timestamps are stored as kInt64
/// (seconds since epoch); categorical data as kString.
enum class DataType {
  kDouble,
  kInt64,
  kString,
};

/// Returns "double", "int64" or "string".
const char* DataTypeName(DataType type);

/// A named, typed, nullable column of values. Storage is one dense vector
/// per type plus a validity mask; only the vector matching type() is used.
///
/// Numeric columns can alternatively *borrow* their storage: raw pointers
/// into memory kept alive by a shared owner (an mmap'd `.ardac` v3 file —
/// see dataframe/mapped_columnar.h). Borrowed columns are read-identical
/// to owned ones through every accessor; any mutation first materializes
/// the borrowed data into owned vectors, so callers never observe the
/// difference. Copies share the owner (cheap), and the backing mapping is
/// released only when the last copy is destroyed.
class Column {
 public:
  /// Builds a non-null double column.
  static Column Double(std::string name, std::vector<double> values);
  /// Builds a non-null int64 column.
  static Column Int64(std::string name, std::vector<int64_t> values);
  /// Builds a non-null string column.
  static Column String(std::string name, std::vector<std::string> values);
  /// Builds an empty column of the given type, ready for appends.
  static Column Empty(std::string name, DataType type);

  /// Builds a column borrowing external storage: `values`/`validity` point
  /// at `rows` entries (validity: one 0/1 byte per row) that must stay
  /// valid and unchanged for as long as `owner` is alive. The column keeps
  /// `owner` alive; it never frees the pointers itself.
  static Column BorrowedDouble(std::string name, const double* values,
                               const uint8_t* validity, size_t rows,
                               std::shared_ptr<const void> owner);
  static Column BorrowedInt64(std::string name, const int64_t* values,
                              const uint8_t* validity, size_t rows,
                              std::shared_ptr<const void> owner);

  /// True when this column reads from borrowed (e.g. mmap-backed)
  /// storage instead of its own vectors.
  bool IsBorrowed() const { return borrowed_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  DataType type() const { return type_; }
  size_t size() const { return borrowed_ ? borrowed_rows_ : valid_.size(); }

  bool IsNull(size_t i) const {
    ARDA_CHECK_LT(i, size());
    return ValidityData()[i] == 0;
  }
  /// Number of null entries.
  size_t NullCount() const;

  /// Value accessors; aborts on type mismatch or null (check IsNull first).
  double DoubleAt(size_t i) const;
  int64_t Int64At(size_t i) const;
  const std::string& StringAt(size_t i) const;

  /// Numeric view: returns the value of a kDouble or kInt64 column as a
  /// double. Aborts for string columns and for nulls.
  double NumericAt(size_t i) const;
  /// True for kDouble and kInt64 columns.
  bool IsNumeric() const { return type_ != DataType::kString; }

  /// Raw dense storage views for the SIMD kernels. One entry per row,
  /// nulls included (null slots hold the 0.0 / 0 placeholder that
  /// AppendNull writes; borrowed storage guarantees the same); consult
  /// ValidityData() before trusting a value.
  const uint8_t* ValidityData() const {
    return borrowed_ ? bvalid_ : valid_.data();
  }
  const double* DoubleData() const {
    ARDA_CHECK(type_ == DataType::kDouble);
    return borrowed_ ? bdoubles_ : doubles_.data();
  }
  const int64_t* Int64Data() const {
    ARDA_CHECK(type_ == DataType::kInt64);
    return borrowed_ ? bints_ : ints_.data();
  }

  /// Appends a value (type must match) or a null.
  void AppendDouble(double value);
  void AppendInt64(int64_t value);
  void AppendString(std::string value);
  void AppendNull();
  /// Appends row `i` of `other` (same type), null-preserving.
  void AppendFrom(const Column& other, size_t i);
  /// Appends every row of `other` (same type) in order, null-preserving.
  /// Bulk path used by the chunked CSV reader to stitch per-chunk
  /// builders together in chunk order.
  void AppendColumn(Column&& other);
  /// Reserves storage for `n` total rows.
  void Reserve(size_t n);

  /// Replaces entry i with a value (clears the null bit).
  void SetDouble(size_t i, double value);
  void SetInt64(size_t i, int64_t value);
  void SetString(size_t i, std::string value);
  /// Marks entry i as null.
  void SetNull(size_t i);
  /// Replaces the whole validity mask (one 0/1 byte per row; size must
  /// equal size()). Bulk path for the columnar decoder: value slots of
  /// rows marked null must already hold the AppendNull placeholder.
  void SetValidity(std::vector<uint8_t> valid);

  /// Returns a column with the rows at `indices`, in order (repeats OK).
  Column Take(const std::vector<size_t>& indices) const;

  /// Non-null numeric values, in row order (numeric columns only).
  std::vector<double> NonNullNumericValues() const;

  /// Median of non-null numeric values; 0 if the column has none.
  double NumericMedian() const;

  /// Mean of non-null numeric values; 0 if the column has none.
  double NumericMean() const;

  /// Distinct non-null values rendered as strings (used for stratification
  /// and key-overlap scoring).
  std::vector<std::string> DistinctValuesAsString() const;

  /// Renders entry i for display/CSV ("" for null).
  std::string ValueToString(size_t i) const;

 private:
  Column(std::string name, DataType type)
      : name_(std::move(name)), type_(type) {}

  /// Copies borrowed storage into owned vectors (no-op for owned
  /// columns). Every mutator calls this first, so borrowed columns are
  /// immutable only in the sense that writes pay a one-time copy.
  void Materialize();

  std::string name_;
  DataType type_;
  std::vector<uint8_t> valid_;
  std::vector<double> doubles_;
  std::vector<int64_t> ints_;
  std::vector<std::string> strings_;

  /// Borrowed-storage state (numeric columns only). When `borrowed_` is
  /// set the vectors above are empty and reads go through the pointers,
  /// which `owner_` keeps alive; copies of the column share the owner.
  bool borrowed_ = false;
  size_t borrowed_rows_ = 0;
  const uint8_t* bvalid_ = nullptr;
  const double* bdoubles_ = nullptr;
  const int64_t* bints_ = nullptr;
  std::shared_ptr<const void> owner_;
};

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_COLUMN_H_
