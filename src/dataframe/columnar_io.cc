#include "dataframe/columnar_io.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <vector>

#include "simd/simd.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace arda::df {

namespace {

constexpr char kMagic[4] = {'A', 'R', 'D', 'C'};
constexpr char kMetaMagic[4] = {'A', 'R', 'D', 'M'};
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kLegacyFormatVersion = 1;
constexpr uint32_t kMetaVersion = 1;
constexpr size_t kHeaderSize = 32;
// Decode-time sanity bounds for sketch sizes; real sketches are
// kHllRegisters / kStatsMinHashHashes, corrupt lengths fail fast instead
// of allocating gigabytes.
constexpr uint32_t kMaxHllRegisters = 1u << 20;
constexpr uint32_t kMaxMinHashSlots = 1u << 16;

constexpr uint8_t kTypeDouble = 0;
constexpr uint8_t kTypeInt64 = 1;
constexpr uint8_t kTypeString = 2;

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Little-endian primitive encode/decode — explicit byte shuffling so the
// on-disk format is host-endianness-independent.
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

// Bounds-checked cursor over an input buffer. Every Get* advances `pos`
// and fails (without reading) when fewer bytes remain than requested, so
// truncated files surface as Status instead of out-of-range reads.
struct Cursor {
  std::string_view data;
  size_t pos = 0;

  size_t Remaining() const { return data.size() - pos; }

  Status Need(size_t n, const char* what) {
    if (Remaining() < n) {
      return Status::InvalidArgument(
          StrFormat("columnar data truncated reading %s (need %zu bytes, "
                    "have %zu)",
                    what, n, Remaining()));
    }
    return Status::Ok();
  }

  Status GetU32(uint32_t* out, const char* what) {
    ARDA_RETURN_IF_ERROR(Need(4, what));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 4;
    *out = v;
    return Status::Ok();
  }

  Status GetU64(uint64_t* out, const char* what) {
    ARDA_RETURN_IF_ERROR(Need(8, what));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    *out = v;
    return Status::Ok();
  }

  Status GetBytes(std::string_view* out, size_t n, const char* what) {
    ARDA_RETURN_IF_ERROR(Need(n, what));
    *out = data.substr(pos, n);
    pos += n;
    return Status::Ok();
  }
};

// Serializes every column of `frame` (the version-independent part of the
// payload).
void AppendColumnsPayload(const DataFrame& frame, std::string* out) {
  const size_t rows = frame.NumRows();
  std::string& payload = *out;
  for (size_t c = 0; c < frame.NumCols(); ++c) {
    const Column& col = frame.col(c);
    PutU32(&payload, static_cast<uint32_t>(col.name().size()));
    payload += col.name();
    uint8_t type = kTypeString;
    switch (col.type()) {
      case DataType::kDouble:
        type = kTypeDouble;
        break;
      case DataType::kInt64:
        type = kTypeInt64;
        break;
      case DataType::kString:
        type = kTypeString;
        break;
    }
    payload.push_back(static_cast<char>(type));
    // Validity bitmap, LSB-first within each byte.
    const size_t bitmap_bytes = (rows + 7) / 8;
    size_t bitmap_start = payload.size();
    payload.append(bitmap_bytes, '\0');
    for (size_t r = 0; r < rows; ++r) {
      if (!col.IsNull(r)) {
        payload[bitmap_start + r / 8] |=
            static_cast<char>(1u << (r % 8));
      }
    }
    switch (col.type()) {
      case DataType::kDouble:
        for (size_t r = 0; r < rows; ++r) {
          PutDouble(&payload, col.IsNull(r) ? 0.0 : col.DoubleAt(r));
        }
        break;
      case DataType::kInt64:
        for (size_t r = 0; r < rows; ++r) {
          PutU64(&payload, static_cast<uint64_t>(
                               col.IsNull(r) ? 0 : col.Int64At(r)));
        }
        break;
      case DataType::kString:
        for (size_t r = 0; r < rows; ++r) {
          if (col.IsNull(r)) {
            PutU32(&payload, 0);
            continue;
          }
          const std::string& s = col.StringAt(r);
          PutU32(&payload, static_cast<uint32_t>(s.size()));
          payload += s;
        }
        break;
    }
  }
}

// Appends the version-2 meta block: fingerprint of the source file plus
// the optional per-column statistics catalog. `meta` may be null (unknown
// fingerprint, no stats).
void AppendMetaBlock(const DataFrame& frame, const ColumnarMeta* meta,
                     std::string* payload) {
  payload->append(kMetaMagic, sizeof(kMetaMagic));
  PutU32(payload, kMetaVersion);
  PutU64(payload, meta == nullptr ? 0 : meta->source_size);
  PutU64(payload, meta == nullptr ? 0 : meta->source_hash);
  const bool has_stats = meta != nullptr && !meta->stats.Empty();
  payload->push_back(has_stats ? 1 : 0);
  if (!has_stats) return;
  ARDA_CHECK_EQ(meta->stats.columns.size(), frame.NumCols());
  for (const ColumnStats& stats : meta->stats.columns) {
    PutU64(payload, stats.row_count);
    PutU64(payload, stats.non_null_count);
    payload->push_back(stats.has_range ? 1 : 0);
    PutDouble(payload, stats.min);
    PutDouble(payload, stats.max);
    PutU32(payload, static_cast<uint32_t>(stats.hll.size()));
    payload->append(reinterpret_cast<const char*>(stats.hll.data()),
                    stats.hll.size());
    PutU32(payload, static_cast<uint32_t>(stats.minhash.size()));
    for (uint64_t slot : stats.minhash) PutU64(payload, slot);
  }
}

std::string AssembleFile(uint32_t version, size_t rows, size_t cols,
                         const std::string& payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, version);
  PutU64(&out, static_cast<uint64_t>(rows));
  PutU32(&out, static_cast<uint32_t>(cols));
  PutU32(&out, 0);  // reserved
  PutU64(&out, Fnv1a64(payload));
  out += payload;
  return out;
}

}  // namespace

std::string WriteColumnarString(const DataFrame& frame,
                                const ColumnarMeta* meta) {
  std::string payload;
  AppendColumnsPayload(frame, &payload);
  AppendMetaBlock(frame, meta, &payload);
  return AssembleFile(kFormatVersion, frame.NumRows(), frame.NumCols(),
                      payload);
}

std::string WriteColumnarStringV1(const DataFrame& frame) {
  std::string payload;
  AppendColumnsPayload(frame, &payload);
  return AssembleFile(kLegacyFormatVersion, frame.NumRows(),
                      frame.NumCols(), payload);
}

Status WriteColumnar(const DataFrame& frame, const std::string& path,
                     const ColumnarMeta* meta) {
  trace::StageScope scope("ingest/columnar_write");
  std::string data = WriteColumnarString(frame, meta);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  bool close_error = std::fclose(f) != 0;
  if (written != data.size() || close_error) {
    std::remove(path.c_str());  // don't leave a torn cache file behind
    return Status::IoError("failed writing file: " + path);
  }
  metrics::IncrementCounter("ingest.columnar_write_bytes", data.size());
  metrics::IncrementCounter("ingest.columnar_write_rows", frame.NumRows());
  return Status::Ok();
}

namespace {

// Decodes the version-2 meta block (fingerprint + stats catalog) into
// `meta`. Carries the `stats_decode` fault site so the degradation path —
// corrupt stats never crash, the cache read fails with a Status and the
// loader falls back to the CSV — stays testable.
Status DecodeMetaBlock(Cursor* in, uint32_t cols, ColumnarMeta* meta) {
  ARDA_FAULT_POINT(fault::kStatsDecode);
  std::string_view magic;
  ARDA_RETURN_IF_ERROR(in->GetBytes(&magic, 4, "meta magic"));
  if (magic != std::string_view(kMetaMagic, sizeof(kMetaMagic))) {
    return Status::InvalidArgument("columnar meta block has bad magic");
  }
  uint32_t meta_version = 0;
  ARDA_RETURN_IF_ERROR(in->GetU32(&meta_version, "meta version"));
  if (meta_version != kMetaVersion) {
    return Status::FailedPrecondition(
        StrFormat("columnar meta version skew: file has %u, reader "
                  "supports %u",
                  meta_version, kMetaVersion));
  }
  ARDA_RETURN_IF_ERROR(in->GetU64(&meta->source_size, "source size"));
  ARDA_RETURN_IF_ERROR(in->GetU64(&meta->source_hash, "source hash"));
  std::string_view has_stats;
  ARDA_RETURN_IF_ERROR(in->GetBytes(&has_stats, 1, "stats flag"));
  if (has_stats[0] == 0) return Status::Ok();
  meta->stats.columns.reserve(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    ColumnStats stats;
    ARDA_RETURN_IF_ERROR(in->GetU64(&stats.row_count, "stats row count"));
    ARDA_RETURN_IF_ERROR(
        in->GetU64(&stats.non_null_count, "stats non-null count"));
    std::string_view has_range;
    ARDA_RETURN_IF_ERROR(in->GetBytes(&has_range, 1, "stats range flag"));
    stats.has_range = has_range[0] != 0;
    uint64_t bits = 0;
    ARDA_RETURN_IF_ERROR(in->GetU64(&bits, "stats min"));
    stats.min = std::bit_cast<double>(bits);
    ARDA_RETURN_IF_ERROR(in->GetU64(&bits, "stats max"));
    stats.max = std::bit_cast<double>(bits);
    uint32_t hll_len = 0;
    ARDA_RETURN_IF_ERROR(in->GetU32(&hll_len, "HLL register count"));
    if (hll_len > kMaxHllRegisters) {
      return Status::InvalidArgument(
          StrFormat("implausible HLL register count %u", hll_len));
    }
    std::string_view hll_bytes;
    ARDA_RETURN_IF_ERROR(
        in->GetBytes(&hll_bytes, hll_len, "HLL registers"));
    stats.hll.assign(hll_bytes.begin(), hll_bytes.end());
    uint32_t slot_count = 0;
    ARDA_RETURN_IF_ERROR(in->GetU32(&slot_count, "MinHash slot count"));
    if (slot_count > kMaxMinHashSlots) {
      return Status::InvalidArgument(
          StrFormat("implausible MinHash slot count %u", slot_count));
    }
    stats.minhash.resize(slot_count);
    for (uint32_t s = 0; s < slot_count; ++s) {
      ARDA_RETURN_IF_ERROR(
          in->GetU64(&stats.minhash[s], "MinHash slot"));
    }
    meta->stats.columns.push_back(std::move(stats));
  }
  return Status::Ok();
}

}  // namespace

Result<DataFrame> ReadColumnarString(std::string_view data,
                                     ColumnarMeta* meta) {
  if (meta != nullptr) *meta = ColumnarMeta{};
  Cursor in{data};
  std::string_view magic;
  ARDA_RETURN_IF_ERROR(in.GetBytes(&magic, 4, "magic"));
  if (magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::InvalidArgument(
        "not a columnar table file (bad magic)");
  }
  uint32_t version = 0;
  ARDA_RETURN_IF_ERROR(in.GetU32(&version, "version"));
  if (version < kLegacyFormatVersion || version > kFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("columnar format version skew: file has %u, reader "
                  "supports %u",
                  version, kFormatVersion));
  }
  uint64_t rows64 = 0;
  uint32_t cols = 0;
  uint32_t reserved = 0;
  uint64_t checksum = 0;
  ARDA_RETURN_IF_ERROR(in.GetU64(&rows64, "row count"));
  ARDA_RETURN_IF_ERROR(in.GetU32(&cols, "column count"));
  ARDA_RETURN_IF_ERROR(in.GetU32(&reserved, "reserved"));
  ARDA_RETURN_IF_ERROR(in.GetU64(&checksum, "checksum"));
  if (rows64 > std::numeric_limits<size_t>::max() / 8) {
    return Status::InvalidArgument("columnar row count is implausible");
  }
  const size_t rows = static_cast<size_t>(rows64);

  std::string_view payload = data.substr(kHeaderSize);
  if (Fnv1a64(payload) != checksum) {
    return Status::FailedPrecondition(
        "columnar payload checksum mismatch (corrupted file)");
  }

  DataFrame frame;
  for (uint32_t c = 0; c < cols; ++c) {
    uint32_t name_len = 0;
    ARDA_RETURN_IF_ERROR(in.GetU32(&name_len, "column name length"));
    std::string_view name;
    ARDA_RETURN_IF_ERROR(in.GetBytes(&name, name_len, "column name"));
    std::string_view type_byte;
    ARDA_RETURN_IF_ERROR(in.GetBytes(&type_byte, 1, "column type"));
    DataType type;
    switch (static_cast<uint8_t>(type_byte[0])) {
      case kTypeDouble:
        type = DataType::kDouble;
        break;
      case kTypeInt64:
        type = DataType::kInt64;
        break;
      case kTypeString:
        type = DataType::kString;
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unknown columnar column type %u",
                      static_cast<unsigned>(
                          static_cast<uint8_t>(type_byte[0]))));
    }
    std::string_view bitmap;
    ARDA_RETURN_IF_ERROR(
        in.GetBytes(&bitmap, (rows + 7) / 8, "null bitmap"));
    auto is_valid = [&](size_t r) {
      return (static_cast<unsigned char>(bitmap[r / 8]) >> (r % 8)) & 1u;
    };

    // Numeric columns decode their fixed-width blob in bulk through the
    // all-valid factory constructors, then punch null holes; this is the
    // hot path that makes cache loads several times faster than a CSV
    // re-parse.
    Column col = Column::Empty(std::string(name), type);
    switch (type) {
      case DataType::kDouble: {
        std::string_view values;
        ARDA_RETURN_IF_ERROR(
            in.GetBytes(&values, rows * 8, "double values"));
        std::vector<double> decoded(rows);
        simd::DecodeU64LeToDouble(values.data(), rows, decoded.data());
        col = Column::Double(std::string(name), std::move(decoded));
        std::vector<uint8_t> valid(rows);
        simd::ExpandValidityBitmap(
            reinterpret_cast<const uint8_t*>(bitmap.data()), rows,
            valid.data());
        col.SetValidity(std::move(valid));
        break;
      }
      case DataType::kInt64: {
        std::string_view values;
        ARDA_RETURN_IF_ERROR(
            in.GetBytes(&values, rows * 8, "int64 values"));
        std::vector<int64_t> decoded(rows);
        simd::DecodeU64LeToInt64(values.data(), rows, decoded.data());
        col = Column::Int64(std::string(name), std::move(decoded));
        std::vector<uint8_t> valid(rows);
        simd::ExpandValidityBitmap(
            reinterpret_cast<const uint8_t*>(bitmap.data()), rows,
            valid.data());
        col.SetValidity(std::move(valid));
        break;
      }
      case DataType::kString: {
        col.Reserve(rows);
        for (size_t r = 0; r < rows; ++r) {
          uint32_t len = 0;
          ARDA_RETURN_IF_ERROR(in.GetU32(&len, "string length"));
          std::string_view bytes;
          ARDA_RETURN_IF_ERROR(in.GetBytes(&bytes, len, "string bytes"));
          if (is_valid(r)) {
            col.AppendString(std::string(bytes));
          } else {
            col.AppendNull();
          }
        }
        break;
      }
    }
    ARDA_RETURN_IF_ERROR(frame.AddColumn(std::move(col)));
  }
  if (version >= 2) {
    ColumnarMeta local_meta;
    ARDA_RETURN_IF_ERROR(
        DecodeMetaBlock(&in, cols, meta == nullptr ? &local_meta : meta));
  }
  if (in.Remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("columnar data has %zu trailing bytes", in.Remaining()));
  }
  return frame;
}

Result<DataFrame> ReadColumnar(const std::string& path,
                               ColumnarMeta* meta) {
  ARDA_FAULT_POINT(fault::kColumnarRead);
  trace::StageScope scope("ingest/columnar_read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open file: " + path);
  }
  std::string buffer;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    long size = std::ftell(f);
    if (size > 0) buffer.reserve(static_cast<size_t>(size));
    std::fseek(f, 0, SEEK_SET);
  }
  char block[1 << 16];
  size_t got;
  while ((got = std::fread(block, 1, sizeof(block), f)) > 0) {
    buffer.append(block, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("failed reading file: " + path);
  }
  Result<DataFrame> frame = ReadColumnarString(buffer, meta);
  if (frame.ok()) {
    metrics::IncrementCounter("ingest.columnar_read_bytes", buffer.size());
    metrics::IncrementCounter("ingest.columnar_read_rows",
                              frame->NumRows());
  }
  return frame;
}

}  // namespace arda::df
