#include "dataframe/columnar_io.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <system_error>
#include <vector>

#include "dataframe/columnar_internal.h"
#include "simd/simd.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace arda::df {

namespace {

constexpr char kMagic[4] = {'A', 'R', 'D', 'C'};
constexpr char kMetaMagic[4] = {'A', 'R', 'D', 'M'};
constexpr uint32_t kFormatVersion = 3;
constexpr uint32_t kV2FormatVersion = 2;
constexpr uint32_t kLegacyFormatVersion = 1;
constexpr uint32_t kMetaVersion = 1;
// v1/v2 header; the v3 header adds index_end + index checksum
// (internal::kV3HeaderSize == 48).
constexpr size_t kHeaderSize = 32;
// Decode-time sanity bounds for sketch sizes; real sketches are
// kHllRegisters / kStatsMinHashHashes, corrupt lengths fail fast instead
// of allocating gigabytes.
constexpr uint32_t kMaxHllRegisters = 1u << 20;
constexpr uint32_t kMaxMinHashSlots = 1u << 16;

constexpr uint8_t kTypeDouble = 0;
constexpr uint8_t kTypeInt64 = 1;
constexpr uint8_t kTypeString = 2;

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Little-endian primitive encode/decode — explicit byte shuffling so the
// on-disk format is host-endianness-independent.
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

// Bounds-checked cursor over an input buffer. Every Get* advances `pos`
// and fails (without reading) when fewer bytes remain than requested, so
// truncated files surface as Status instead of out-of-range reads.
struct Cursor {
  std::string_view data;
  size_t pos = 0;

  size_t Remaining() const { return data.size() - pos; }

  Status Need(size_t n, const char* what) {
    if (Remaining() < n) {
      return Status::InvalidArgument(
          StrFormat("columnar data truncated reading %s (need %zu bytes, "
                    "have %zu)",
                    what, n, Remaining()));
    }
    return Status::Ok();
  }

  Status GetU32(uint32_t* out, const char* what) {
    ARDA_RETURN_IF_ERROR(Need(4, what));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 4;
    *out = v;
    return Status::Ok();
  }

  Status GetU64(uint64_t* out, const char* what) {
    ARDA_RETURN_IF_ERROR(Need(8, what));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    *out = v;
    return Status::Ok();
  }

  Status GetBytes(std::string_view* out, size_t n, const char* what) {
    ARDA_RETURN_IF_ERROR(Need(n, what));
    *out = data.substr(pos, n);
    pos += n;
    return Status::Ok();
  }
};

// Serializes every column of `frame` (the version-independent part of the
// payload).
void AppendColumnsPayload(const DataFrame& frame, std::string* out) {
  const size_t rows = frame.NumRows();
  std::string& payload = *out;
  for (size_t c = 0; c < frame.NumCols(); ++c) {
    const Column& col = frame.col(c);
    PutU32(&payload, static_cast<uint32_t>(col.name().size()));
    payload += col.name();
    uint8_t type = kTypeString;
    switch (col.type()) {
      case DataType::kDouble:
        type = kTypeDouble;
        break;
      case DataType::kInt64:
        type = kTypeInt64;
        break;
      case DataType::kString:
        type = kTypeString;
        break;
    }
    payload.push_back(static_cast<char>(type));
    // Validity bitmap, LSB-first within each byte.
    const size_t bitmap_bytes = (rows + 7) / 8;
    size_t bitmap_start = payload.size();
    payload.append(bitmap_bytes, '\0');
    for (size_t r = 0; r < rows; ++r) {
      if (!col.IsNull(r)) {
        payload[bitmap_start + r / 8] |=
            static_cast<char>(1u << (r % 8));
      }
    }
    switch (col.type()) {
      case DataType::kDouble:
        for (size_t r = 0; r < rows; ++r) {
          PutDouble(&payload, col.IsNull(r) ? 0.0 : col.DoubleAt(r));
        }
        break;
      case DataType::kInt64:
        for (size_t r = 0; r < rows; ++r) {
          PutU64(&payload, static_cast<uint64_t>(
                               col.IsNull(r) ? 0 : col.Int64At(r)));
        }
        break;
      case DataType::kString:
        for (size_t r = 0; r < rows; ++r) {
          if (col.IsNull(r)) {
            PutU32(&payload, 0);
            continue;
          }
          const std::string& s = col.StringAt(r);
          PutU32(&payload, static_cast<uint32_t>(s.size()));
          payload += s;
        }
        break;
    }
  }
}

// Appends the version-2 meta block: fingerprint of the source file plus
// the optional per-column statistics catalog. `meta` may be null (unknown
// fingerprint, no stats).
void AppendMetaBlock(const DataFrame& frame, const ColumnarMeta* meta,
                     std::string* payload) {
  payload->append(kMetaMagic, sizeof(kMetaMagic));
  PutU32(payload, kMetaVersion);
  PutU64(payload, meta == nullptr ? 0 : meta->source_size);
  PutU64(payload, meta == nullptr ? 0 : meta->source_hash);
  const bool has_stats = meta != nullptr && !meta->stats.Empty();
  payload->push_back(has_stats ? 1 : 0);
  if (!has_stats) return;
  ARDA_CHECK_EQ(meta->stats.columns.size(), frame.NumCols());
  for (const ColumnStats& stats : meta->stats.columns) {
    PutU64(payload, stats.row_count);
    PutU64(payload, stats.non_null_count);
    payload->push_back(stats.has_range ? 1 : 0);
    PutDouble(payload, stats.min);
    PutDouble(payload, stats.max);
    PutU32(payload, static_cast<uint32_t>(stats.hll.size()));
    payload->append(reinterpret_cast<const char*>(stats.hll.data()),
                    stats.hll.size());
    PutU32(payload, static_cast<uint32_t>(stats.minhash.size()));
    for (uint64_t slot : stats.minhash) PutU64(payload, slot);
  }
}

std::string AssembleFile(uint32_t version, size_t rows, size_t cols,
                         const std::string& payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, version);
  PutU64(&out, static_cast<uint64_t>(rows));
  PutU32(&out, static_cast<uint32_t>(cols));
  PutU32(&out, 0);  // reserved
  PutU64(&out, Fnv1a64(payload));
  out += payload;
  return out;
}

uint8_t TypeByteOf(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return kTypeDouble;
    case DataType::kInt64:
      return kTypeInt64;
    case DataType::kString:
      return kTypeString;
  }
  return kTypeString;
}

// Serializes `frame` in the version-3 layout: fixed-offset column index
// right after the 48-byte header, then validity bytes (one 0/1 byte per
// row) and data blocks, numeric data padded to 8-byte alignment so a
// mapped reader can borrow it in place.
std::string WriteColumnarStringV3(const DataFrame& frame,
                                  const ColumnarMeta* meta) {
  const size_t rows = frame.NumRows();
  const size_t cols = frame.NumCols();

  // Index size is fixed by names/types alone, which pins every block
  // offset before the blocks are written.
  size_t index_size = 16;  // meta offset + meta length
  for (size_t c = 0; c < cols; ++c) {
    index_size += 4 + frame.col(c).name().size() + 1 + 24;
  }
  const uint64_t index_end = internal::kV3HeaderSize + index_size;

  struct BlockRef {
    uint64_t validity_off = 0;
    uint64_t data_off = 0;
    uint64_t data_len = 0;
  };
  std::vector<BlockRef> refs(cols);
  std::string body;  // bytes from index_end on
  for (size_t c = 0; c < cols; ++c) {
    const Column& col = frame.col(c);
    refs[c].validity_off = index_end + body.size();
    for (size_t r = 0; r < rows; ++r) {
      body.push_back(col.IsNull(r) ? '\0' : '\x01');
    }
    if (col.type() != DataType::kString) {
      while ((index_end + body.size()) % 8 != 0) body.push_back('\0');
    }
    refs[c].data_off = index_end + body.size();
    switch (col.type()) {
      case DataType::kDouble:
        for (size_t r = 0; r < rows; ++r) {
          PutDouble(&body, col.IsNull(r) ? 0.0 : col.DoubleAt(r));
        }
        break;
      case DataType::kInt64:
        for (size_t r = 0; r < rows; ++r) {
          PutU64(&body, static_cast<uint64_t>(
                            col.IsNull(r) ? 0 : col.Int64At(r)));
        }
        break;
      case DataType::kString:
        for (size_t r = 0; r < rows; ++r) {
          if (col.IsNull(r)) {
            PutU32(&body, 0);
            continue;
          }
          const std::string& s = col.StringAt(r);
          PutU32(&body, static_cast<uint32_t>(s.size()));
          body += s;
        }
        break;
    }
    refs[c].data_len = index_end + body.size() - refs[c].data_off;
  }
  const uint64_t meta_off = index_end + body.size();
  AppendMetaBlock(frame, meta, &body);
  const uint64_t meta_len = index_end + body.size() - meta_off;

  std::string index;
  index.reserve(index_size);
  for (size_t c = 0; c < cols; ++c) {
    const Column& col = frame.col(c);
    PutU32(&index, static_cast<uint32_t>(col.name().size()));
    index += col.name();
    index.push_back(static_cast<char>(TypeByteOf(col.type())));
    PutU64(&index, refs[c].validity_off);
    PutU64(&index, refs[c].data_off);
    PutU64(&index, refs[c].data_len);
  }
  PutU64(&index, meta_off);
  PutU64(&index, meta_len);
  ARDA_CHECK_EQ(index.size(), index_size);

  std::string out;
  out.reserve(internal::kV3HeaderSize + index.size() + body.size());
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kFormatVersion);
  PutU64(&out, static_cast<uint64_t>(rows));
  PutU32(&out, static_cast<uint32_t>(cols));
  PutU32(&out, 0);  // reserved
  uint64_t h = 1469598103934665603ULL;
  for (std::string_view part : {std::string_view(index),
                                std::string_view(body)}) {
    for (char ch : part) {
      h ^= static_cast<unsigned char>(ch);
      h *= 1099511628211ULL;
    }
  }
  PutU64(&out, h);  // payload checksum over [48, EOF)
  PutU64(&out, index_end);
  PutU64(&out, Fnv1a64(index));
  out += index;
  out += body;
  return out;
}

}  // namespace

std::string WriteColumnarString(const DataFrame& frame,
                                const ColumnarMeta* meta) {
  return WriteColumnarStringV3(frame, meta);
}

std::string WriteColumnarStringV1(const DataFrame& frame) {
  std::string payload;
  AppendColumnsPayload(frame, &payload);
  return AssembleFile(kLegacyFormatVersion, frame.NumRows(),
                      frame.NumCols(), payload);
}

std::string WriteColumnarStringV2(const DataFrame& frame,
                                  const ColumnarMeta* meta) {
  std::string payload;
  AppendColumnsPayload(frame, &payload);
  AppendMetaBlock(frame, meta, &payload);
  return AssembleFile(kV2FormatVersion, frame.NumRows(), frame.NumCols(),
                      payload);
}

Status WriteColumnar(const DataFrame& frame, const std::string& path,
                     const ColumnarMeta* meta) {
  trace::StageScope scope("ingest/columnar_write");
  std::string data = WriteColumnarString(frame, meta);
  // Write-then-rename: readers of the previous cache generation — eager
  // opens and, critically, live mmaps — keep the old inode until they
  // close/unmap it. Writing `path` in place with "wb" would truncate the
  // inode a mapped snapshot still reads, turning its next page fault
  // into SIGBUS.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open file for writing: " + tmp);
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  bool close_error = std::fclose(f) != 0;
  if (written != data.size() || close_error) {
    std::remove(tmp.c_str());  // don't leave a torn cache file behind
    return Status::IoError("failed writing file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " into place");
  }
  metrics::IncrementCounter("ingest.columnar_write_bytes", data.size());
  metrics::IncrementCounter("ingest.columnar_write_rows", frame.NumRows());
  return Status::Ok();
}

namespace {

// Decodes the version-2 meta block (fingerprint + stats catalog) into
// `meta`. Carries the `stats_decode` fault site so the degradation path —
// corrupt stats never crash, the cache read fails with a Status and the
// loader falls back to the CSV — stays testable.
Status DecodeMetaBlock(Cursor* in, uint32_t cols, ColumnarMeta* meta) {
  ARDA_FAULT_POINT(fault::kStatsDecode);
  std::string_view magic;
  ARDA_RETURN_IF_ERROR(in->GetBytes(&magic, 4, "meta magic"));
  if (magic != std::string_view(kMetaMagic, sizeof(kMetaMagic))) {
    return Status::InvalidArgument("columnar meta block has bad magic");
  }
  uint32_t meta_version = 0;
  ARDA_RETURN_IF_ERROR(in->GetU32(&meta_version, "meta version"));
  if (meta_version != kMetaVersion) {
    return Status::FailedPrecondition(
        StrFormat("columnar meta version skew: file has %u, reader "
                  "supports %u",
                  meta_version, kMetaVersion));
  }
  ARDA_RETURN_IF_ERROR(in->GetU64(&meta->source_size, "source size"));
  ARDA_RETURN_IF_ERROR(in->GetU64(&meta->source_hash, "source hash"));
  std::string_view has_stats;
  ARDA_RETURN_IF_ERROR(in->GetBytes(&has_stats, 1, "stats flag"));
  if (has_stats[0] == 0) return Status::Ok();
  meta->stats.columns.reserve(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    ColumnStats stats;
    ARDA_RETURN_IF_ERROR(in->GetU64(&stats.row_count, "stats row count"));
    ARDA_RETURN_IF_ERROR(
        in->GetU64(&stats.non_null_count, "stats non-null count"));
    std::string_view has_range;
    ARDA_RETURN_IF_ERROR(in->GetBytes(&has_range, 1, "stats range flag"));
    stats.has_range = has_range[0] != 0;
    uint64_t bits = 0;
    ARDA_RETURN_IF_ERROR(in->GetU64(&bits, "stats min"));
    stats.min = std::bit_cast<double>(bits);
    ARDA_RETURN_IF_ERROR(in->GetU64(&bits, "stats max"));
    stats.max = std::bit_cast<double>(bits);
    uint32_t hll_len = 0;
    ARDA_RETURN_IF_ERROR(in->GetU32(&hll_len, "HLL register count"));
    if (hll_len > kMaxHllRegisters) {
      return Status::InvalidArgument(
          StrFormat("implausible HLL register count %u", hll_len));
    }
    std::string_view hll_bytes;
    ARDA_RETURN_IF_ERROR(
        in->GetBytes(&hll_bytes, hll_len, "HLL registers"));
    stats.hll.assign(hll_bytes.begin(), hll_bytes.end());
    uint32_t slot_count = 0;
    ARDA_RETURN_IF_ERROR(in->GetU32(&slot_count, "MinHash slot count"));
    if (slot_count > kMaxMinHashSlots) {
      return Status::InvalidArgument(
          StrFormat("implausible MinHash slot count %u", slot_count));
    }
    stats.minhash.resize(slot_count);
    for (uint32_t s = 0; s < slot_count; ++s) {
      ARDA_RETURN_IF_ERROR(
          in->GetU64(&stats.minhash[s], "MinHash slot"));
    }
    meta->stats.columns.push_back(std::move(stats));
  }
  return Status::Ok();
}

// Eager version-3 read: parse + fully validate the column index, check
// the whole-payload checksum, then bulk-decode every column. Numeric
// blocks are 8-byte-aligned u64-LE runs, so they reuse the same SIMD
// decode as v1/v2; validity is already byte-per-row and copies straight
// into the column mask.
Result<DataFrame> ReadColumnarStringV3(std::string_view data,
                                       ColumnarMeta* meta) {
  internal::V3Index index;
  ARDA_RETURN_IF_ERROR(
      internal::ParseV3Index(data, data.size(), &index));
  if (Fnv1a64(data.substr(internal::kV3HeaderSize)) !=
      index.payload_checksum) {
    return Status::FailedPrecondition(
        "columnar payload checksum mismatch (corrupted file)");
  }
  const size_t rows = static_cast<size_t>(index.rows);
  DataFrame frame;
  for (const internal::V3Column& entry : index.columns) {
    std::string_view validity = data.substr(entry.validity_off, rows);
    std::vector<uint8_t> valid(validity.begin(), validity.end());
    Column col = Column::Empty(entry.name, entry.type);
    switch (entry.type) {
      case DataType::kDouble: {
        std::vector<double> decoded(rows);
        simd::DecodeU64LeToDouble(data.data() + entry.data_off, rows,
                                  decoded.data());
        col = Column::Double(entry.name, std::move(decoded));
        col.SetValidity(std::move(valid));
        break;
      }
      case DataType::kInt64: {
        std::vector<int64_t> decoded(rows);
        simd::DecodeU64LeToInt64(data.data() + entry.data_off, rows,
                                 decoded.data());
        col = Column::Int64(entry.name, std::move(decoded));
        col.SetValidity(std::move(valid));
        break;
      }
      case DataType::kString: {
        ARDA_ASSIGN_OR_RETURN(
            col, internal::DecodeV3StringColumn(
                     data.substr(entry.data_off, entry.data_len),
                     validity, entry.name, rows));
        break;
      }
    }
    ARDA_RETURN_IF_ERROR(frame.AddColumn(std::move(col)));
  }
  ColumnarMeta local_meta;
  ARDA_RETURN_IF_ERROR(internal::DecodeMetaBlockRange(
      data.substr(index.meta_off, index.meta_len), index.cols,
      meta == nullptr ? &local_meta : meta));
  return frame;
}

}  // namespace

Result<DataFrame> ReadColumnarString(std::string_view data,
                                     ColumnarMeta* meta) {
  if (meta != nullptr) *meta = ColumnarMeta{};
  Cursor in{data};
  std::string_view magic;
  ARDA_RETURN_IF_ERROR(in.GetBytes(&magic, 4, "magic"));
  if (magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::InvalidArgument(
        "not a columnar table file (bad magic)");
  }
  uint32_t version = 0;
  ARDA_RETURN_IF_ERROR(in.GetU32(&version, "version"));
  if (version < kLegacyFormatVersion || version > kFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("columnar format version skew: file has %u, reader "
                  "supports %u",
                  version, kFormatVersion));
  }
  if (version == kFormatVersion) {
    return ReadColumnarStringV3(data, meta);
  }
  uint64_t rows64 = 0;
  uint32_t cols = 0;
  uint32_t reserved = 0;
  uint64_t checksum = 0;
  ARDA_RETURN_IF_ERROR(in.GetU64(&rows64, "row count"));
  ARDA_RETURN_IF_ERROR(in.GetU32(&cols, "column count"));
  ARDA_RETURN_IF_ERROR(in.GetU32(&reserved, "reserved"));
  ARDA_RETURN_IF_ERROR(in.GetU64(&checksum, "checksum"));
  if (rows64 > std::numeric_limits<size_t>::max() / 8) {
    return Status::InvalidArgument("columnar row count is implausible");
  }
  const size_t rows = static_cast<size_t>(rows64);

  std::string_view payload = data.substr(kHeaderSize);
  if (Fnv1a64(payload) != checksum) {
    return Status::FailedPrecondition(
        "columnar payload checksum mismatch (corrupted file)");
  }

  DataFrame frame;
  for (uint32_t c = 0; c < cols; ++c) {
    uint32_t name_len = 0;
    ARDA_RETURN_IF_ERROR(in.GetU32(&name_len, "column name length"));
    std::string_view name;
    ARDA_RETURN_IF_ERROR(in.GetBytes(&name, name_len, "column name"));
    std::string_view type_byte;
    ARDA_RETURN_IF_ERROR(in.GetBytes(&type_byte, 1, "column type"));
    DataType type;
    switch (static_cast<uint8_t>(type_byte[0])) {
      case kTypeDouble:
        type = DataType::kDouble;
        break;
      case kTypeInt64:
        type = DataType::kInt64;
        break;
      case kTypeString:
        type = DataType::kString;
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unknown columnar column type %u",
                      static_cast<unsigned>(
                          static_cast<uint8_t>(type_byte[0]))));
    }
    std::string_view bitmap;
    ARDA_RETURN_IF_ERROR(
        in.GetBytes(&bitmap, (rows + 7) / 8, "null bitmap"));
    auto is_valid = [&](size_t r) {
      return (static_cast<unsigned char>(bitmap[r / 8]) >> (r % 8)) & 1u;
    };

    // Numeric columns decode their fixed-width blob in bulk through the
    // all-valid factory constructors, then punch null holes; this is the
    // hot path that makes cache loads several times faster than a CSV
    // re-parse.
    Column col = Column::Empty(std::string(name), type);
    switch (type) {
      case DataType::kDouble: {
        std::string_view values;
        ARDA_RETURN_IF_ERROR(
            in.GetBytes(&values, rows * 8, "double values"));
        std::vector<double> decoded(rows);
        simd::DecodeU64LeToDouble(values.data(), rows, decoded.data());
        col = Column::Double(std::string(name), std::move(decoded));
        std::vector<uint8_t> valid(rows);
        simd::ExpandValidityBitmap(
            reinterpret_cast<const uint8_t*>(bitmap.data()), rows,
            valid.data());
        col.SetValidity(std::move(valid));
        break;
      }
      case DataType::kInt64: {
        std::string_view values;
        ARDA_RETURN_IF_ERROR(
            in.GetBytes(&values, rows * 8, "int64 values"));
        std::vector<int64_t> decoded(rows);
        simd::DecodeU64LeToInt64(values.data(), rows, decoded.data());
        col = Column::Int64(std::string(name), std::move(decoded));
        std::vector<uint8_t> valid(rows);
        simd::ExpandValidityBitmap(
            reinterpret_cast<const uint8_t*>(bitmap.data()), rows,
            valid.data());
        col.SetValidity(std::move(valid));
        break;
      }
      case DataType::kString: {
        col.Reserve(rows);
        for (size_t r = 0; r < rows; ++r) {
          uint32_t len = 0;
          ARDA_RETURN_IF_ERROR(in.GetU32(&len, "string length"));
          std::string_view bytes;
          ARDA_RETURN_IF_ERROR(in.GetBytes(&bytes, len, "string bytes"));
          if (is_valid(r)) {
            col.AppendString(std::string(bytes));
          } else {
            col.AppendNull();
          }
        }
        break;
      }
    }
    ARDA_RETURN_IF_ERROR(frame.AddColumn(std::move(col)));
  }
  if (version >= 2) {
    ColumnarMeta local_meta;
    ARDA_RETURN_IF_ERROR(
        DecodeMetaBlock(&in, cols, meta == nullptr ? &local_meta : meta));
  }
  if (in.Remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("columnar data has %zu trailing bytes", in.Remaining()));
  }
  return frame;
}

Result<uint64_t> FileSizeBytes(const std::string& path) {
  std::error_code ec;
  const uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IoError("cannot stat file: " + path + ": " +
                           ec.message());
  }
  return static_cast<uint64_t>(size);
}

Result<DataFrame> ReadColumnar(const std::string& path,
                               ColumnarMeta* meta) {
  ARDA_FAULT_POINT(fault::kColumnarRead);
  trace::StageScope scope("ingest/columnar_read");
  // Stat-based 64-bit sizing. The previous fseek/ftell probe returned a
  // `long` — on ILP32 targets a > 2 GiB cache silently wrapped negative
  // and skipped the reserve — and swallowed failures. The read loop
  // below still appends past the reserved size if the file grows between
  // stat and read, so concurrent rewriters cost a realloc, not bytes.
  ARDA_ASSIGN_OR_RETURN(const uint64_t size, FileSizeBytes(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open file: " + path);
  }
  std::string buffer;
  buffer.reserve(static_cast<size_t>(size));
  char block[1 << 16];
  size_t got;
  while ((got = std::fread(block, 1, sizeof(block), f)) > 0) {
    buffer.append(block, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("failed reading file: " + path);
  }
  Result<DataFrame> frame = ReadColumnarString(buffer, meta);
  if (frame.ok()) {
    metrics::IncrementCounter("ingest.columnar_read_bytes", buffer.size());
    metrics::IncrementCounter("ingest.columnar_read_rows",
                              frame->NumRows());
  }
  return frame;
}

namespace internal {

uint64_t ColumnarFnv1a64(std::string_view data) { return Fnv1a64(data); }

Status ParseV3Index(std::string_view data, uint64_t file_size,
                    V3Index* out) {
  Cursor in{data};
  std::string_view magic;
  ARDA_RETURN_IF_ERROR(in.GetBytes(&magic, 4, "magic"));
  if (magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::InvalidArgument(
        "not a columnar table file (bad magic)");
  }
  uint32_t version = 0;
  ARDA_RETURN_IF_ERROR(in.GetU32(&version, "version"));
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("columnar format version skew: file has %u, v3 index "
                  "parser supports %u",
                  version, kFormatVersion));
  }
  uint32_t reserved = 0;
  uint64_t index_checksum = 0;
  ARDA_RETURN_IF_ERROR(in.GetU64(&out->rows, "row count"));
  ARDA_RETURN_IF_ERROR(in.GetU32(&out->cols, "column count"));
  ARDA_RETURN_IF_ERROR(in.GetU32(&reserved, "reserved"));
  ARDA_RETURN_IF_ERROR(
      in.GetU64(&out->payload_checksum, "payload checksum"));
  ARDA_RETURN_IF_ERROR(in.GetU64(&out->index_end, "index end"));
  ARDA_RETURN_IF_ERROR(in.GetU64(&index_checksum, "index checksum"));
  if (out->rows > std::numeric_limits<size_t>::max() / 8) {
    return Status::InvalidArgument("columnar row count is implausible");
  }
  if (out->index_end < kV3HeaderSize || out->index_end > file_size ||
      out->index_end > data.size()) {
    return Status::InvalidArgument(
        StrFormat("columnar column index end %llu out of range for "
                  "%llu-byte file",
                  static_cast<unsigned long long>(out->index_end),
                  static_cast<unsigned long long>(file_size)));
  }
  std::string_view index_bytes =
      data.substr(kV3HeaderSize, out->index_end - kV3HeaderSize);
  if (Fnv1a64(index_bytes) != index_checksum) {
    return Status::FailedPrecondition(
        "columnar column index checksum mismatch (corrupted file)");
  }

  // Every extent is validated against the real file size here, before
  // any caller dereferences payload offsets — on the mmap path this is
  // the only thing standing between a truncated file and SIGBUS.
  Cursor ix{index_bytes};
  out->columns.clear();
  out->columns.reserve(out->cols);
  const uint64_t rows = out->rows;
  for (uint32_t c = 0; c < out->cols; ++c) {
    V3Column col;
    uint32_t name_len = 0;
    ARDA_RETURN_IF_ERROR(ix.GetU32(&name_len, "column name length"));
    std::string_view name;
    ARDA_RETURN_IF_ERROR(ix.GetBytes(&name, name_len, "column name"));
    col.name.assign(name);
    std::string_view type_byte;
    ARDA_RETURN_IF_ERROR(ix.GetBytes(&type_byte, 1, "column type"));
    switch (static_cast<uint8_t>(type_byte[0])) {
      case kTypeDouble:
        col.type = DataType::kDouble;
        break;
      case kTypeInt64:
        col.type = DataType::kInt64;
        break;
      case kTypeString:
        col.type = DataType::kString;
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unknown columnar column type %u",
                      static_cast<unsigned>(
                          static_cast<uint8_t>(type_byte[0]))));
    }
    ARDA_RETURN_IF_ERROR(
        ix.GetU64(&col.validity_off, "validity offset"));
    ARDA_RETURN_IF_ERROR(ix.GetU64(&col.data_off, "data offset"));
    ARDA_RETURN_IF_ERROR(ix.GetU64(&col.data_len, "data length"));
    if (col.validity_off < out->index_end ||
        col.validity_off > file_size ||
        rows > file_size - col.validity_off) {
      return Status::InvalidArgument(
          StrFormat("column '%s' validity block out of range",
                    col.name.c_str()));
    }
    if (col.data_off < out->index_end || col.data_off > file_size ||
        col.data_len > file_size - col.data_off) {
      return Status::InvalidArgument(
          StrFormat("column '%s' data block out of range",
                    col.name.c_str()));
    }
    if (col.type != DataType::kString) {
      if (col.data_len != rows * 8) {
        return Status::InvalidArgument(
            StrFormat("column '%s' numeric data length %llu does not "
                      "match %llu rows",
                      col.name.c_str(),
                      static_cast<unsigned long long>(col.data_len),
                      static_cast<unsigned long long>(rows)));
      }
      if (col.data_off % 8 != 0) {
        return Status::InvalidArgument(
            StrFormat("column '%s' numeric data misaligned at offset "
                      "%llu",
                      col.name.c_str(),
                      static_cast<unsigned long long>(col.data_off)));
      }
    }
    out->columns.push_back(std::move(col));
  }
  ARDA_RETURN_IF_ERROR(ix.GetU64(&out->meta_off, "meta offset"));
  ARDA_RETURN_IF_ERROR(ix.GetU64(&out->meta_len, "meta length"));
  if (ix.Remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("columnar column index has %zu trailing bytes",
                  ix.Remaining()));
  }
  if (out->meta_off < out->index_end || out->meta_off > file_size ||
      out->meta_len > file_size - out->meta_off) {
    return Status::InvalidArgument("columnar meta block out of range");
  }
  if (out->meta_off + out->meta_len != file_size) {
    return Status::InvalidArgument(
        StrFormat("columnar data has %llu trailing bytes",
                  static_cast<unsigned long long>(
                      file_size - out->meta_off - out->meta_len)));
  }
  return Status::Ok();
}

Status DecodeMetaBlockRange(std::string_view block, uint32_t cols,
                            ColumnarMeta* meta) {
  Cursor in{block};
  ARDA_RETURN_IF_ERROR(DecodeMetaBlock(&in, cols, meta));
  if (in.Remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("columnar meta block has %zu trailing bytes",
                  in.Remaining()));
  }
  return Status::Ok();
}

Result<Column> DecodeV3StringColumn(std::string_view block,
                                    std::string_view validity,
                                    std::string name, size_t rows) {
  ARDA_CHECK_EQ(validity.size(), rows);
  Cursor in{block};
  Column col = Column::Empty(std::move(name), DataType::kString);
  col.Reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    uint32_t len = 0;
    ARDA_RETURN_IF_ERROR(in.GetU32(&len, "string length"));
    std::string_view bytes;
    ARDA_RETURN_IF_ERROR(in.GetBytes(&bytes, len, "string bytes"));
    if (validity[r] != 0) {
      col.AppendString(std::string(bytes));
    } else {
      col.AppendNull();
    }
  }
  if (in.Remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("string column data block has %zu trailing bytes",
                  in.Remaining()));
  }
  return col;
}

}  // namespace internal

}  // namespace arda::df
