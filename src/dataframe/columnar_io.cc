#include "dataframe/columnar_io.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <vector>

#include "util/fault.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace arda::df {

namespace {

constexpr char kMagic[4] = {'A', 'R', 'D', 'C'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderSize = 32;

constexpr uint8_t kTypeDouble = 0;
constexpr uint8_t kTypeInt64 = 1;
constexpr uint8_t kTypeString = 2;

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Little-endian primitive encode/decode — explicit byte shuffling so the
// on-disk format is host-endianness-independent.
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

// Bounds-checked cursor over an input buffer. Every Get* advances `pos`
// and fails (without reading) when fewer bytes remain than requested, so
// truncated files surface as Status instead of out-of-range reads.
struct Cursor {
  std::string_view data;
  size_t pos = 0;

  size_t Remaining() const { return data.size() - pos; }

  Status Need(size_t n, const char* what) {
    if (Remaining() < n) {
      return Status::InvalidArgument(
          StrFormat("columnar data truncated reading %s (need %zu bytes, "
                    "have %zu)",
                    what, n, Remaining()));
    }
    return Status::Ok();
  }

  Status GetU32(uint32_t* out, const char* what) {
    ARDA_RETURN_IF_ERROR(Need(4, what));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 4;
    *out = v;
    return Status::Ok();
  }

  Status GetU64(uint64_t* out, const char* what) {
    ARDA_RETURN_IF_ERROR(Need(8, what));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    *out = v;
    return Status::Ok();
  }

  Status GetBytes(std::string_view* out, size_t n, const char* what) {
    ARDA_RETURN_IF_ERROR(Need(n, what));
    *out = data.substr(pos, n);
    pos += n;
    return Status::Ok();
  }
};

// Unchecked little-endian load (callers bounds-check the whole block
// first); the byte shuffle compiles to a plain load on LE hosts.
uint64_t LoadU64Le(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string WriteColumnarString(const DataFrame& frame) {
  const size_t rows = frame.NumRows();
  const size_t cols = frame.NumCols();

  std::string payload;
  for (size_t c = 0; c < cols; ++c) {
    const Column& col = frame.col(c);
    PutU32(&payload, static_cast<uint32_t>(col.name().size()));
    payload += col.name();
    uint8_t type = kTypeString;
    switch (col.type()) {
      case DataType::kDouble:
        type = kTypeDouble;
        break;
      case DataType::kInt64:
        type = kTypeInt64;
        break;
      case DataType::kString:
        type = kTypeString;
        break;
    }
    payload.push_back(static_cast<char>(type));
    // Validity bitmap, LSB-first within each byte.
    const size_t bitmap_bytes = (rows + 7) / 8;
    size_t bitmap_start = payload.size();
    payload.append(bitmap_bytes, '\0');
    for (size_t r = 0; r < rows; ++r) {
      if (!col.IsNull(r)) {
        payload[bitmap_start + r / 8] |=
            static_cast<char>(1u << (r % 8));
      }
    }
    switch (col.type()) {
      case DataType::kDouble:
        for (size_t r = 0; r < rows; ++r) {
          PutDouble(&payload, col.IsNull(r) ? 0.0 : col.DoubleAt(r));
        }
        break;
      case DataType::kInt64:
        for (size_t r = 0; r < rows; ++r) {
          PutU64(&payload, static_cast<uint64_t>(
                               col.IsNull(r) ? 0 : col.Int64At(r)));
        }
        break;
      case DataType::kString:
        for (size_t r = 0; r < rows; ++r) {
          if (col.IsNull(r)) {
            PutU32(&payload, 0);
            continue;
          }
          const std::string& s = col.StringAt(r);
          PutU32(&payload, static_cast<uint32_t>(s.size()));
          payload += s;
        }
        break;
    }
  }

  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kFormatVersion);
  PutU64(&out, static_cast<uint64_t>(rows));
  PutU32(&out, static_cast<uint32_t>(cols));
  PutU32(&out, 0);  // reserved
  PutU64(&out, Fnv1a64(payload));
  out += payload;
  return out;
}

Status WriteColumnar(const DataFrame& frame, const std::string& path) {
  trace::StageScope scope("ingest/columnar_write");
  std::string data = WriteColumnarString(frame);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  bool close_error = std::fclose(f) != 0;
  if (written != data.size() || close_error) {
    std::remove(path.c_str());  // don't leave a torn cache file behind
    return Status::IoError("failed writing file: " + path);
  }
  metrics::IncrementCounter("ingest.columnar_write_bytes", data.size());
  metrics::IncrementCounter("ingest.columnar_write_rows", frame.NumRows());
  return Status::Ok();
}

Result<DataFrame> ReadColumnarString(std::string_view data) {
  Cursor in{data};
  std::string_view magic;
  ARDA_RETURN_IF_ERROR(in.GetBytes(&magic, 4, "magic"));
  if (magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::InvalidArgument(
        "not a columnar table file (bad magic)");
  }
  uint32_t version = 0;
  ARDA_RETURN_IF_ERROR(in.GetU32(&version, "version"));
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("columnar format version skew: file has %u, reader "
                  "supports %u",
                  version, kFormatVersion));
  }
  uint64_t rows64 = 0;
  uint32_t cols = 0;
  uint32_t reserved = 0;
  uint64_t checksum = 0;
  ARDA_RETURN_IF_ERROR(in.GetU64(&rows64, "row count"));
  ARDA_RETURN_IF_ERROR(in.GetU32(&cols, "column count"));
  ARDA_RETURN_IF_ERROR(in.GetU32(&reserved, "reserved"));
  ARDA_RETURN_IF_ERROR(in.GetU64(&checksum, "checksum"));
  if (rows64 > std::numeric_limits<size_t>::max() / 8) {
    return Status::InvalidArgument("columnar row count is implausible");
  }
  const size_t rows = static_cast<size_t>(rows64);

  std::string_view payload = data.substr(kHeaderSize);
  if (Fnv1a64(payload) != checksum) {
    return Status::FailedPrecondition(
        "columnar payload checksum mismatch (corrupted file)");
  }

  DataFrame frame;
  for (uint32_t c = 0; c < cols; ++c) {
    uint32_t name_len = 0;
    ARDA_RETURN_IF_ERROR(in.GetU32(&name_len, "column name length"));
    std::string_view name;
    ARDA_RETURN_IF_ERROR(in.GetBytes(&name, name_len, "column name"));
    std::string_view type_byte;
    ARDA_RETURN_IF_ERROR(in.GetBytes(&type_byte, 1, "column type"));
    DataType type;
    switch (static_cast<uint8_t>(type_byte[0])) {
      case kTypeDouble:
        type = DataType::kDouble;
        break;
      case kTypeInt64:
        type = DataType::kInt64;
        break;
      case kTypeString:
        type = DataType::kString;
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unknown columnar column type %u",
                      static_cast<unsigned>(
                          static_cast<uint8_t>(type_byte[0]))));
    }
    std::string_view bitmap;
    ARDA_RETURN_IF_ERROR(
        in.GetBytes(&bitmap, (rows + 7) / 8, "null bitmap"));
    auto is_valid = [&](size_t r) {
      return (static_cast<unsigned char>(bitmap[r / 8]) >> (r % 8)) & 1u;
    };

    // Numeric columns decode their fixed-width blob in bulk through the
    // all-valid factory constructors, then punch null holes; this is the
    // hot path that makes cache loads several times faster than a CSV
    // re-parse.
    Column col = Column::Empty(std::string(name), type);
    switch (type) {
      case DataType::kDouble: {
        std::string_view values;
        ARDA_RETURN_IF_ERROR(
            in.GetBytes(&values, rows * 8, "double values"));
        std::vector<double> decoded(rows);
        for (size_t r = 0; r < rows; ++r) {
          decoded[r] = std::bit_cast<double>(LoadU64Le(values.data() + r * 8));
        }
        col = Column::Double(std::string(name), std::move(decoded));
        for (size_t r = 0; r < rows; ++r) {
          if (!is_valid(r)) col.SetNull(r);
        }
        break;
      }
      case DataType::kInt64: {
        std::string_view values;
        ARDA_RETURN_IF_ERROR(
            in.GetBytes(&values, rows * 8, "int64 values"));
        std::vector<int64_t> decoded(rows);
        for (size_t r = 0; r < rows; ++r) {
          decoded[r] =
              static_cast<int64_t>(LoadU64Le(values.data() + r * 8));
        }
        col = Column::Int64(std::string(name), std::move(decoded));
        for (size_t r = 0; r < rows; ++r) {
          if (!is_valid(r)) col.SetNull(r);
        }
        break;
      }
      case DataType::kString: {
        col.Reserve(rows);
        for (size_t r = 0; r < rows; ++r) {
          uint32_t len = 0;
          ARDA_RETURN_IF_ERROR(in.GetU32(&len, "string length"));
          std::string_view bytes;
          ARDA_RETURN_IF_ERROR(in.GetBytes(&bytes, len, "string bytes"));
          if (is_valid(r)) {
            col.AppendString(std::string(bytes));
          } else {
            col.AppendNull();
          }
        }
        break;
      }
    }
    ARDA_RETURN_IF_ERROR(frame.AddColumn(std::move(col)));
  }
  if (in.Remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("columnar data has %zu trailing bytes", in.Remaining()));
  }
  return frame;
}

Result<DataFrame> ReadColumnar(const std::string& path) {
  ARDA_FAULT_POINT(fault::kColumnarRead);
  trace::StageScope scope("ingest/columnar_read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open file: " + path);
  }
  std::string buffer;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    long size = std::ftell(f);
    if (size > 0) buffer.reserve(static_cast<size_t>(size));
    std::fseek(f, 0, SEEK_SET);
  }
  char block[1 << 16];
  size_t got;
  while ((got = std::fread(block, 1, sizeof(block), f)) > 0) {
    buffer.append(block, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("failed reading file: " + path);
  }
  Result<DataFrame> frame = ReadColumnarString(buffer);
  if (frame.ok()) {
    metrics::IncrementCounter("ingest.columnar_read_bytes", buffer.size());
    metrics::IncrementCounter("ingest.columnar_read_rows",
                              frame->NumRows());
  }
  return frame;
}

}  // namespace arda::df
