#include "dataframe/column.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <utility>

#include "util/string_util.h"

namespace arda::df {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return "double";
    case DataType::kInt64:
      return "int64";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

Column Column::Double(std::string name, std::vector<double> values) {
  Column col(std::move(name), DataType::kDouble);
  col.valid_.assign(values.size(), 1);
  col.doubles_ = std::move(values);
  return col;
}

Column Column::Int64(std::string name, std::vector<int64_t> values) {
  Column col(std::move(name), DataType::kInt64);
  col.valid_.assign(values.size(), 1);
  col.ints_ = std::move(values);
  return col;
}

Column Column::String(std::string name, std::vector<std::string> values) {
  Column col(std::move(name), DataType::kString);
  col.valid_.assign(values.size(), 1);
  col.strings_ = std::move(values);
  return col;
}

Column Column::Empty(std::string name, DataType type) {
  return Column(std::move(name), type);
}

Column Column::BorrowedDouble(std::string name, const double* values,
                              const uint8_t* validity, size_t rows,
                              std::shared_ptr<const void> owner) {
  Column col(std::move(name), DataType::kDouble);
  col.borrowed_ = true;
  col.borrowed_rows_ = rows;
  col.bdoubles_ = values;
  col.bvalid_ = validity;
  col.owner_ = std::move(owner);
  return col;
}

Column Column::BorrowedInt64(std::string name, const int64_t* values,
                             const uint8_t* validity, size_t rows,
                             std::shared_ptr<const void> owner) {
  Column col(std::move(name), DataType::kInt64);
  col.borrowed_ = true;
  col.borrowed_rows_ = rows;
  col.bints_ = values;
  col.bvalid_ = validity;
  col.owner_ = std::move(owner);
  return col;
}

void Column::Materialize() {
  if (!borrowed_) return;
  valid_.assign(bvalid_, bvalid_ + borrowed_rows_);
  if (type_ == DataType::kDouble) {
    doubles_.assign(bdoubles_, bdoubles_ + borrowed_rows_);
  } else {
    ints_.assign(bints_, bints_ + borrowed_rows_);
  }
  borrowed_ = false;
  borrowed_rows_ = 0;
  bvalid_ = nullptr;
  bdoubles_ = nullptr;
  bints_ = nullptr;
  owner_.reset();
}

size_t Column::NullCount() const {
  const uint8_t* valid = ValidityData();
  size_t count = 0;
  for (size_t i = 0; i < size(); ++i) count += (valid[i] == 0);
  return count;
}

double Column::DoubleAt(size_t i) const {
  ARDA_CHECK(type_ == DataType::kDouble);
  ARDA_CHECK(!IsNull(i));
  return DoubleData()[i];
}

int64_t Column::Int64At(size_t i) const {
  ARDA_CHECK(type_ == DataType::kInt64);
  ARDA_CHECK(!IsNull(i));
  return Int64Data()[i];
}

const std::string& Column::StringAt(size_t i) const {
  ARDA_CHECK(type_ == DataType::kString);
  ARDA_CHECK(!IsNull(i));
  return strings_[i];
}

double Column::NumericAt(size_t i) const {
  ARDA_CHECK(IsNumeric());
  ARDA_CHECK(!IsNull(i));
  return type_ == DataType::kDouble ? DoubleData()[i]
                                    : static_cast<double>(Int64Data()[i]);
}

void Column::AppendDouble(double value) {
  ARDA_CHECK(type_ == DataType::kDouble);
  Materialize();
  doubles_.push_back(value);
  valid_.push_back(1);
}

void Column::AppendInt64(int64_t value) {
  ARDA_CHECK(type_ == DataType::kInt64);
  Materialize();
  ints_.push_back(value);
  valid_.push_back(1);
}

void Column::AppendString(std::string value) {
  ARDA_CHECK(type_ == DataType::kString);
  strings_.push_back(std::move(value));
  valid_.push_back(1);
}

void Column::AppendNull() {
  Materialize();
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
  valid_.push_back(0);
}

void Column::AppendColumn(Column&& other) {
  ARDA_CHECK(type_ == other.type_);
  Materialize();
  other.Materialize();
  if (valid_.empty()) {
    valid_ = std::move(other.valid_);
    doubles_ = std::move(other.doubles_);
    ints_ = std::move(other.ints_);
    strings_ = std::move(other.strings_);
    return;
  }
  valid_.insert(valid_.end(), other.valid_.begin(), other.valid_.end());
  doubles_.insert(doubles_.end(), other.doubles_.begin(),
                  other.doubles_.end());
  ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
  strings_.insert(strings_.end(),
                  std::make_move_iterator(other.strings_.begin()),
                  std::make_move_iterator(other.strings_.end()));
}

void Column::Reserve(size_t n) {
  Materialize();
  valid_.reserve(n);
  switch (type_) {
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
  }
}

void Column::AppendFrom(const Column& other, size_t i) {
  ARDA_CHECK(type_ == other.type_);
  if (other.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kDouble:
      AppendDouble(other.DoubleData()[i]);
      break;
    case DataType::kInt64:
      AppendInt64(other.Int64Data()[i]);
      break;
    case DataType::kString:
      AppendString(other.strings_[i]);
      break;
  }
}

void Column::SetDouble(size_t i, double value) {
  ARDA_CHECK(type_ == DataType::kDouble);
  ARDA_CHECK_LT(i, size());
  Materialize();
  doubles_[i] = value;
  valid_[i] = 1;
}

void Column::SetInt64(size_t i, int64_t value) {
  ARDA_CHECK(type_ == DataType::kInt64);
  ARDA_CHECK_LT(i, size());
  Materialize();
  ints_[i] = value;
  valid_[i] = 1;
}

void Column::SetString(size_t i, std::string value) {
  ARDA_CHECK(type_ == DataType::kString);
  ARDA_CHECK_LT(i, size());
  strings_[i] = std::move(value);
  valid_[i] = 1;
}

void Column::SetNull(size_t i) {
  ARDA_CHECK_LT(i, size());
  Materialize();
  valid_[i] = 0;
}

void Column::SetValidity(std::vector<uint8_t> valid) {
  ARDA_CHECK_EQ(valid.size(), size());
  Materialize();
  valid_ = std::move(valid);
}

Column Column::Take(const std::vector<size_t>& indices) const {
  Column out(name_, type_);
  out.valid_.reserve(indices.size());
  for (size_t idx : indices) {
    ARDA_CHECK_LT(idx, size());
    out.AppendFrom(*this, idx);
  }
  return out;
}

std::vector<double> Column::NonNullNumericValues() const {
  ARDA_CHECK(IsNumeric());
  const uint8_t* valid = ValidityData();
  std::vector<double> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    if (valid[i]) out.push_back(NumericAt(i));
  }
  return out;
}

double Column::NumericMedian() const {
  std::vector<double> values = NonNullNumericValues();
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  double lower = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

double Column::NumericMean() const {
  std::vector<double> values = NonNullNumericValues();
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::vector<std::string> Column::DistinctValuesAsString() const {
  const uint8_t* valid = ValidityData();
  std::set<std::string> distinct;
  for (size_t i = 0; i < size(); ++i) {
    if (valid[i]) distinct.insert(ValueToString(i));
  }
  return std::vector<std::string>(distinct.begin(), distinct.end());
}

std::string Column::ValueToString(size_t i) const {
  ARDA_CHECK_LT(i, size());
  if (!ValidityData()[i]) return "";
  switch (type_) {
    case DataType::kDouble:
      return StrFormat("%.10g", DoubleData()[i]);
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(Int64Data()[i]));
    case DataType::kString:
      return strings_[i];
  }
  return "";
}

}  // namespace arda::df
