#include "dataframe/column_stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/metrics.h"

namespace arda::df {

uint64_t StatsFnv1a64(std::string_view data) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

uint64_t StatsMixHash(uint64_t value, uint64_t key) {
  uint64_t x = value ^ (key * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

namespace {

// Folds one value hash into the HLL registers: the top kHllPrecision bits
// pick the register, the rank is the leading-zero count of the rest.
// The raw FNV-1a hash must be avalanched first: FNV's high bits are
// poorly distributed for short inputs, and the register index is taken
// from exactly those bits.
constexpr uint64_t kHllMixKey = 0x484C4C;  // distinct from MinHash keys

void HllAdd(std::vector<uint8_t>* registers, uint64_t raw_hash) {
  const uint64_t hash = StatsMixHash(raw_hash, kHllMixKey);
  const size_t index = hash >> (64 - kHllPrecision);
  const uint64_t rest = hash << kHllPrecision;
  const uint8_t rank =
      rest == 0 ? static_cast<uint8_t>(64 - kHllPrecision + 1)
                : static_cast<uint8_t>(std::countl_zero(rest) + 1);
  if (rank > (*registers)[index]) (*registers)[index] = rank;
}

void MinHashAdd(std::vector<uint64_t>* slots, uint64_t hash) {
  for (size_t h = 0; h < slots->size(); ++h) {
    uint64_t mixed = StatsMixHash(hash, kStatsMinHashSeed + h);
    if (mixed < (*slots)[h]) (*slots)[h] = mixed;
  }
}

}  // namespace

namespace {

double HllEstimate(const std::vector<uint8_t>& registers) {
  if (registers.empty()) return 0.0;
  const double m = static_cast<double>(registers.size());
  double inverse_sum = 0.0;
  size_t zeros = 0;
  for (uint8_t reg : registers) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
    zeros += reg == 0;
  }
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double estimate = alpha * m * m / inverse_sum;
  // Small-range (linear counting) correction: with mostly-empty registers
  // the raw estimator biases high, but m·ln(m/V) is near-exact.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

}  // namespace

double ColumnStats::DistinctEstimate() const { return HllEstimate(hll); }

ColumnStats ComputeColumnStats(const Column& column) {
  ColumnStats stats;
  stats.row_count = column.size();
  stats.hll.assign(kHllRegisters, 0);
  stats.minhash.assign(kStatsMinHashHashes,
                       std::numeric_limits<uint64_t>::max());
  const bool numeric = column.IsNumeric();
  for (size_t r = 0; r < column.size(); ++r) {
    if (column.IsNull(r)) continue;
    ++stats.non_null_count;
    if (numeric) {
      const double v = column.NumericAt(r);
      if (!stats.has_range) {
        stats.has_range = true;
        stats.min = stats.max = v;
      } else {
        stats.min = std::min(stats.min, v);
        stats.max = std::max(stats.max, v);
      }
    }
    const uint64_t hash = StatsFnv1a64(column.ValueToString(r));
    HllAdd(&stats.hll, hash);
    MinHashAdd(&stats.minhash, hash);
  }
  metrics::IncrementCounter("stats.columns_computed");
  return stats;
}

TableStats ComputeTableStats(const DataFrame& frame) {
  TableStats stats;
  stats.columns.reserve(frame.NumCols());
  for (size_t c = 0; c < frame.NumCols(); ++c) {
    stats.columns.push_back(ComputeColumnStats(frame.col(c)));
  }
  return stats;
}

double EstimateJaccard(const ColumnStats& a, const ColumnStats& b) {
  if (a.minhash.empty() || b.minhash.empty()) return 0.0;
  if (a.non_null_count == 0 || b.non_null_count == 0) return 0.0;
  const size_t n = std::min(a.minhash.size(), b.minhash.size());
  if (n == 0) return 0.0;
  size_t matches = 0;
  for (size_t h = 0; h < n; ++h) {
    matches += a.minhash[h] == b.minhash[h];
  }
  return static_cast<double>(matches) / static_cast<double>(n);
}

double EstimateContainment(const ColumnStats& base,
                           const ColumnStats& foreign) {
  const double na = base.DistinctEstimate();
  const double nb = foreign.DistinctEstimate();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  if (base.non_null_count == 0 || foreign.non_null_count == 0) return 0.0;
  // Inclusion-exclusion over HLLs: the register-wise max of two sketches
  // is exactly the sketch of the set union, so |A ∩ B| = na + nb - nu
  // inherits HLL's ~1.6% error. The MinHash-Jaccard route below is far
  // noisier exactly where discovery needs precision — a small base key
  // contained in a large foreign domain has tiny resemblance, and the
  // Jaccard estimate's relative error blows up there.
  if (!base.hll.empty() && base.hll.size() == foreign.hll.size()) {
    std::vector<uint8_t> merged(base.hll.size());
    for (size_t i = 0; i < merged.size(); ++i) {
      merged[i] = std::max(base.hll[i], foreign.hll[i]);
    }
    const double nu = HllEstimate(merged);
    const double intersection = std::max(0.0, na + nb - nu);
    return std::clamp(intersection / na, 0.0, 1.0);
  }
  const double jaccard = EstimateJaccard(base, foreign);
  const double intersection = jaccard * (na + nb) / (1.0 + jaccard);
  return std::clamp(intersection / na, 0.0, 1.0);
}

}  // namespace arda::df
