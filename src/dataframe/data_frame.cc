#include "dataframe/data_frame.h"

#include <algorithm>

#include "util/string_util.h"

namespace arda::df {

Status DataFrame::AddColumn(Column column) {
  if (HasColumn(column.name())) {
    return Status::AlreadyExists("column already exists: " + column.name());
  }
  if (!columns_.empty() && column.size() != NumRows()) {
    return Status::InvalidArgument(StrFormat(
        "column '%s' has %zu rows, frame has %zu", column.name().c_str(),
        column.size(), NumRows()));
  }
  columns_.push_back(std::move(column));
  return Status::Ok();
}

bool DataFrame::HasColumn(const std::string& name) const {
  return ColumnIndex(name) != kNpos;
}

size_t DataFrame::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return kNpos;
}

const Column& DataFrame::col(size_t i) const {
  ARDA_CHECK_LT(i, columns_.size());
  return columns_[i];
}

Column& DataFrame::col(size_t i) {
  ARDA_CHECK_LT(i, columns_.size());
  return columns_[i];
}

const Column& DataFrame::col(const std::string& name) const {
  size_t i = ColumnIndex(name);
  ARDA_CHECK(i != kNpos);
  return columns_[i];
}

Column& DataFrame::col(const std::string& name) {
  size_t i = ColumnIndex(name);
  ARDA_CHECK(i != kNpos);
  return columns_[i];
}

std::vector<Field> DataFrame::schema() const {
  std::vector<Field> fields;
  fields.reserve(columns_.size());
  for (const Column& c : columns_) {
    fields.push_back(Field{c.name(), c.type()});
  }
  return fields;
}

std::vector<std::string> DataFrame::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name());
  return names;
}

DataFrame DataFrame::Take(const std::vector<size_t>& indices) const {
  DataFrame out;
  for (const Column& c : columns_) {
    Status st = out.AddColumn(c.Take(indices));
    ARDA_CHECK(st.ok());
  }
  return out;
}

Result<DataFrame> DataFrame::Select(
    const std::vector<std::string>& names) const {
  DataFrame out;
  for (const std::string& name : names) {
    size_t i = ColumnIndex(name);
    if (i == kNpos) {
      return Status::NotFound("no such column: " + name);
    }
    ARDA_RETURN_IF_ERROR(out.AddColumn(columns_[i]));
  }
  return out;
}

DataFrame DataFrame::Drop(const std::vector<std::string>& names) const {
  DataFrame out;
  for (const Column& c : columns_) {
    if (std::find(names.begin(), names.end(), c.name()) != names.end()) {
      continue;
    }
    Status st = out.AddColumn(c);
    ARDA_CHECK(st.ok());
  }
  return out;
}

Status DataFrame::RemoveColumn(const std::string& name) {
  size_t i = ColumnIndex(name);
  if (i == kNpos) return Status::NotFound("no such column: " + name);
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(i));
  return Status::Ok();
}

Status DataFrame::RenameColumn(const std::string& from,
                               const std::string& to) {
  size_t i = ColumnIndex(from);
  if (i == kNpos) return Status::NotFound("no such column: " + from);
  if (from != to && HasColumn(to)) {
    return Status::AlreadyExists("column already exists: " + to);
  }
  columns_[i].set_name(to);
  return Status::Ok();
}

Status DataFrame::HStack(const DataFrame& other, const std::string& prefix) {
  if (!columns_.empty() && other.NumCols() > 0 &&
      other.NumRows() != NumRows()) {
    return Status::InvalidArgument(
        StrFormat("HStack row mismatch: %zu vs %zu", NumRows(),
                  other.NumRows()));
  }
  for (size_t i = 0; i < other.NumCols(); ++i) {
    Column c = other.col(i);
    if (HasColumn(c.name())) {
      std::string renamed = prefix + c.name();
      int suffix = 2;
      while (HasColumn(renamed)) {
        renamed = prefix + c.name() + "_" + std::to_string(suffix++);
      }
      c.set_name(renamed);
    }
    ARDA_RETURN_IF_ERROR(AddColumn(std::move(c)));
  }
  return Status::Ok();
}

Status DataFrame::VStack(const DataFrame& other) {
  if (NumCols() != other.NumCols()) {
    return Status::InvalidArgument("VStack schema mismatch (column count)");
  }
  for (size_t i = 0; i < NumCols(); ++i) {
    if (columns_[i].name() != other.col(i).name() ||
        columns_[i].type() != other.col(i).type()) {
      return Status::InvalidArgument("VStack schema mismatch at column " +
                                     columns_[i].name());
    }
  }
  for (size_t i = 0; i < NumCols(); ++i) {
    const Column& src = other.col(i);
    for (size_t r = 0; r < src.size(); ++r) {
      columns_[i].AppendFrom(src, r);
    }
  }
  return Status::Ok();
}

std::string DataFrame::Head(size_t n) const {
  const size_t rows = std::min(n, NumRows());
  std::vector<std::vector<std::string>> cells(rows + 1);
  cells[0] = ColumnNames();
  for (size_t r = 0; r < rows; ++r) {
    cells[r + 1].reserve(NumCols());
    for (size_t c = 0; c < NumCols(); ++c) {
      cells[r + 1].push_back(columns_[c].ValueToString(r));
    }
  }
  std::vector<size_t> widths(NumCols(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  }
  return out;
}

}  // namespace arda::df
