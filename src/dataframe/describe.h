#ifndef ARDA_DATAFRAME_DESCRIBE_H_
#define ARDA_DATAFRAME_DESCRIBE_H_

#include <string>
#include <vector>

#include "dataframe/data_frame.h"

namespace arda::df {

/// Summary statistics of one column.
struct ColumnSummary {
  std::string name;
  DataType type = DataType::kDouble;
  size_t count = 0;       ///< non-null entries
  size_t null_count = 0;
  size_t distinct = 0;    ///< distinct non-null values
  // Numeric-only fields (zero for string columns):
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
  /// Most frequent value rendered as a string ("" when empty).
  std::string mode;
};

/// Computes per-column summaries of `frame`, pandas-describe style.
std::vector<ColumnSummary> Describe(const DataFrame& frame);

/// Renders Describe(frame) as an aligned text table (exploration aid for
/// examples and the CLI).
std::string DescribeToString(const DataFrame& frame);

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_DESCRIBE_H_
