#include "dataframe/aggregate.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace arda::df {

namespace {

constexpr char kKeySeparator = '\x1f';
constexpr const char* kNullMarker = "\x1e<null>";

double AggregateNumeric(const std::vector<double>& values, NumericAgg agg) {
  ARDA_CHECK(!values.empty());
  switch (agg) {
    case NumericAgg::kMean: {
      double sum = 0.0;
      for (double v : values) sum += v;
      return sum / static_cast<double>(values.size());
    }
    case NumericAgg::kMedian: {
      std::vector<double> copy = values;
      size_t mid = copy.size() / 2;
      std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
      double upper = copy[mid];
      if (copy.size() % 2 == 1) return upper;
      double lower = *std::max_element(copy.begin(), copy.begin() + mid);
      return 0.5 * (lower + upper);
    }
    case NumericAgg::kSum: {
      double sum = 0.0;
      for (double v : values) sum += v;
      return sum;
    }
    case NumericAgg::kMin:
      return *std::min_element(values.begin(), values.end());
    case NumericAgg::kMax:
      return *std::max_element(values.begin(), values.end());
    case NumericAgg::kFirst:
      return values.front();
  }
  return 0.0;
}

std::string AggregateCategorical(const std::vector<std::string>& values,
                                 CategoricalAgg agg) {
  ARDA_CHECK(!values.empty());
  if (agg == CategoricalAgg::kFirst) return values.front();
  std::map<std::string, size_t> counts;
  for (const std::string& v : values) ++counts[v];
  // Mode; ties broken by lexicographic order (std::map iteration).
  size_t best = 0;
  const std::string* winner = &values.front();
  for (const auto& [value, count] : counts) {
    if (count > best) {
      best = count;
      winner = &value;
    }
  }
  return *winner;
}

}  // namespace

Result<DataFrame> GroupByAggregate(const DataFrame& frame,
                                   const std::vector<std::string>& keys,
                                   const AggregateOptions& options) {
  if (keys.empty()) {
    return Status::InvalidArgument("GroupByAggregate requires key columns");
  }
  std::vector<size_t> key_idx;
  for (const std::string& key : keys) {
    size_t i = frame.ColumnIndex(key);
    if (i == DataFrame::kNpos) {
      return Status::NotFound("no such key column: " + key);
    }
    key_idx.push_back(i);
  }

  const size_t n = frame.NumRows();
  // Group id per row, groups numbered in first-occurrence order.
  std::unordered_map<std::string, size_t> group_of;
  std::vector<size_t> row_group(n);
  std::vector<size_t> group_first_row;
  for (size_t r = 0; r < n; ++r) {
    std::string composite;
    for (size_t ki : key_idx) {
      const Column& kc = frame.col(ki);
      composite += kc.IsNull(r) ? kNullMarker : kc.ValueToString(r);
      composite += kKeySeparator;
    }
    auto [it, inserted] =
        group_of.emplace(std::move(composite), group_first_row.size());
    if (inserted) group_first_row.push_back(r);
    row_group[r] = it->second;
  }
  const size_t num_groups = group_first_row.size();

  DataFrame out;
  // Key columns: take the first row of each group.
  for (size_t ki : key_idx) {
    ARDA_RETURN_IF_ERROR(
        out.AddColumn(frame.col(ki).Take(group_first_row)));
  }

  // Value columns.
  for (size_t ci = 0; ci < frame.NumCols(); ++ci) {
    if (std::find(key_idx.begin(), key_idx.end(), ci) != key_idx.end()) {
      continue;
    }
    const Column& col = frame.col(ci);
    if (col.IsNumeric()) {
      std::vector<std::vector<double>> buckets(num_groups);
      for (size_t r = 0; r < n; ++r) {
        if (!col.IsNull(r)) buckets[row_group[r]].push_back(col.NumericAt(r));
      }
      Column agg_col = Column::Empty(col.name(), DataType::kDouble);
      for (size_t g = 0; g < num_groups; ++g) {
        if (buckets[g].empty()) {
          agg_col.AppendNull();
        } else {
          agg_col.AppendDouble(AggregateNumeric(buckets[g], options.numeric));
        }
      }
      ARDA_RETURN_IF_ERROR(out.AddColumn(std::move(agg_col)));
    } else {
      std::vector<std::vector<std::string>> buckets(num_groups);
      for (size_t r = 0; r < n; ++r) {
        if (!col.IsNull(r)) buckets[row_group[r]].push_back(col.StringAt(r));
      }
      Column agg_col = Column::Empty(col.name(), DataType::kString);
      for (size_t g = 0; g < num_groups; ++g) {
        if (buckets[g].empty()) {
          agg_col.AppendNull();
        } else {
          agg_col.AppendString(
              AggregateCategorical(buckets[g], options.categorical));
        }
      }
      ARDA_RETURN_IF_ERROR(out.AddColumn(std::move(agg_col)));
    }
  }

  if (options.add_count) {
    std::vector<int64_t> counts(num_groups, 0);
    for (size_t r = 0; r < n; ++r) ++counts[row_group[r]];
    ARDA_RETURN_IF_ERROR(
        out.AddColumn(Column::Int64("__group_count", std::move(counts))));
  }
  return out;
}

}  // namespace arda::df
