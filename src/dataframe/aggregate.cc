#include "dataframe/aggregate.h"

#include <algorithm>
#include <array>
#include <utility>

#include "dataframe/key_encoder.h"
#include "dataframe/partition.h"
#include "simd/simd.h"
#include "util/fault.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace arda::df {

namespace {

double AggregateNumeric(const double* values, size_t count, NumericAgg agg,
                        std::vector<double>* scratch) {
  ARDA_CHECK_GT(count, 0u);
  switch (agg) {
    case NumericAgg::kMean: {
      double sum = 0.0;
      for (size_t i = 0; i < count; ++i) sum += values[i];
      return sum / static_cast<double>(count);
    }
    case NumericAgg::kMedian: {
      scratch->assign(values, values + count);
      size_t mid = count / 2;
      std::nth_element(scratch->begin(), scratch->begin() + mid,
                       scratch->end());
      double upper = (*scratch)[mid];
      if (count % 2 == 1) return upper;
      double lower = *std::max_element(scratch->begin(),
                                       scratch->begin() + mid);
      return 0.5 * (lower + upper);
    }
    case NumericAgg::kSum: {
      double sum = 0.0;
      for (size_t i = 0; i < count; ++i) sum += values[i];
      return sum;
    }
    case NumericAgg::kMin:
      return *std::min_element(values, values + count);
    case NumericAgg::kMax:
      return *std::max_element(values, values + count);
    case NumericAgg::kFirst:
      return values[0];
  }
  return 0.0;
}

// `values` holds pointers to the group's strings in row order; the span
// may be reordered in place.
const std::string& AggregateCategorical(const std::string** values,
                                        size_t count, CategoricalAgg agg) {
  ARDA_CHECK_GT(count, 0u);
  if (agg == CategoricalAgg::kFirst) return *values[0];
  // Mode; ties broken by lexicographic order. Sorting and scanning runs
  // visits distinct values in the same ascending order the old
  // std::map<string, count> iteration did, so the strict `count > best`
  // keeps the lexicographically smallest value among the most frequent.
  std::sort(values, values + count,
            [](const std::string* a, const std::string* b) { return *a < *b; });
  size_t best = 0;
  const std::string* winner = values[0];
  for (size_t i = 0; i < count;) {
    size_t j = i + 1;
    while (j < count && *values[j] == *values[i]) ++j;
    if (j - i > best) {
      best = j - i;
      winner = values[i];
    }
    i = j;
  }
  return *winner;
}

Result<DataFrame> GroupByAggregateImpl(const DataFrame& frame,
                                       const std::vector<size_t>& key_idx,
                                       const KeyEncoder& encoder,
                                       const AggregateOptions& options) {
  trace::StageScope scope("preaggregate");
  ARDA_FAULT_POINT(fault::kPreAggregate);
  const size_t n = frame.NumRows();
  const std::vector<size_t>& group_first_row = encoder.group_first_row();
  const size_t num_groups = group_first_row.size();

  DataFrame out;
  // Key columns: take the first row of each group.
  for (size_t ki : key_idx) {
    ARDA_RETURN_IF_ERROR(
        out.AddColumn(frame.col(ki).Take(group_first_row)));
  }

  // Value columns, bucketed once into a flat CSR layout per column (group
  // offsets + packed values in row order) — no per-group heap vectors.
  std::vector<size_t> offsets;
  std::vector<size_t> cursor;
  std::vector<double> flat_doubles;
  std::vector<const std::string*> flat_strings;
  std::vector<double> scratch;
  for (size_t ci = 0; ci < frame.NumCols(); ++ci) {
    if (std::find(key_idx.begin(), key_idx.end(), ci) != key_idx.end()) {
      continue;
    }
    const Column& col = frame.col(ci);
    const uint64_t* gids = encoder.row_groups().data();
    const uint8_t* valid = col.ValidityData();
    offsets.assign(num_groups + 1, 0);
    simd::CountPerGroup(gids, valid, n, offsets.data() + 1);
    for (size_t g = 0; g < num_groups; ++g) offsets[g + 1] += offsets[g];
    cursor.assign(offsets.begin(), offsets.end() - 1);
    if (col.IsNumeric()) {
      flat_doubles.resize(offsets[num_groups]);
      if (col.type() == DataType::kDouble) {
        simd::ScatterByGroup(col.DoubleData(), valid, gids, n,
                             cursor.data(), flat_doubles.data());
      } else {
        const int64_t* ints = col.Int64Data();
        for (size_t r = 0; r < n; ++r) {
          if (valid[r]) {
            flat_doubles[cursor[gids[r]]++] =
                static_cast<double>(ints[r]);
          }
        }
      }
      Column agg_col = Column::Empty(col.name(), DataType::kDouble);
      for (size_t g = 0; g < num_groups; ++g) {
        size_t count = offsets[g + 1] - offsets[g];
        if (count == 0) {
          agg_col.AppendNull();
        } else {
          agg_col.AppendDouble(AggregateNumeric(
              flat_doubles.data() + offsets[g], count, options.numeric,
              &scratch));
        }
      }
      ARDA_RETURN_IF_ERROR(out.AddColumn(std::move(agg_col)));
    } else {
      flat_strings.resize(offsets[num_groups]);
      for (size_t r = 0; r < n; ++r) {
        if (valid[r]) {
          flat_strings[cursor[gids[r]]++] = &col.StringAt(r);
        }
      }
      Column agg_col = Column::Empty(col.name(), DataType::kString);
      for (size_t g = 0; g < num_groups; ++g) {
        size_t count = offsets[g + 1] - offsets[g];
        if (count == 0) {
          agg_col.AppendNull();
        } else {
          agg_col.AppendString(AggregateCategorical(
              flat_strings.data() + offsets[g], count, options.categorical));
        }
      }
      ARDA_RETURN_IF_ERROR(out.AddColumn(std::move(agg_col)));
    }
  }

  if (options.add_count) {
    const uint64_t* gids = encoder.row_groups().data();
    std::vector<int64_t> counts(num_groups, 0);
    for (size_t r = 0; r < n; ++r) ++counts[gids[r]];
    ARDA_RETURN_IF_ERROR(
        out.AddColumn(Column::Int64("__group_count", std::move(counts))));
  }
  return out;
}

Status ResolveKeys(const DataFrame& frame,
                   const std::vector<std::string>& keys,
                   std::vector<size_t>* key_idx) {
  if (keys.empty()) {
    return Status::InvalidArgument("GroupByAggregate requires key columns");
  }
  for (const std::string& key : keys) {
    size_t i = frame.ColumnIndex(key);
    if (i == DataFrame::kNpos) {
      return Status::NotFound("no such key column: " + key);
    }
    key_idx->push_back(i);
  }
  return Status::Ok();
}

// Out-of-core group-by: split rows into `num_partitions` buckets by key
// hash, aggregate each bucket independently (one ThreadPool task per
// bucket — each builds its own KeyEncoder over just its rows, so the
// working set is one partition, not the frame), then merge the
// per-partition outputs back into global first-occurrence order.
//
// Bit-identical to the single pass at any partition count: equal keys
// never span partitions, so each global group lives wholly inside one
// partition with its rows in original relative order (partitions keep
// ascending row order); sorting groups by their *global* first-occurrence
// row therefore reproduces both the single-pass group order and each
// group's exact aggregate inputs.
Result<DataFrame> GroupByAggregatePartitioned(
    const DataFrame& frame, const std::vector<size_t>& key_idx,
    size_t num_partitions, const AggregateOptions& options) {
  trace::StageScope scope("preaggregate_partition");
  ARDA_FAULT_POINT(fault::kPartitionSpill);
  std::vector<PartitionKeySpec> specs;
  specs.reserve(key_idx.size());
  for (size_t ki : key_idx) {
    PartitionKeySpec spec;
    spec.col = ki;
    // Group-by never buckets; a single frame means build == probe type,
    // so the native-int64 decision below matches KeyEncoder's dict mode.
    spec.native = frame.col(ki).type() == DataType::kInt64;
    specs.push_back(spec);
  }
  std::vector<std::vector<size_t>> parts =
      PartitionRowsByKey(frame, specs, num_partitions);

  struct PartOut {
    Status status;
    DataFrame frame;
    // Global row index of each group's first occurrence, in local group
    // order — the merge key.
    std::vector<size_t> global_first;
  };
  std::vector<PartOut> outs(num_partitions);
  // Empty partitions run too: their 0-row aggregate carries the output
  // schema the merge below clones.
  ParallelFor(num_partitions, 0, [&](size_t p) {
    DataFrame sub = frame.Take(parts[p]);
    KeyEncoder encoder(sub, key_idx);
    Result<DataFrame> result =
        GroupByAggregateImpl(sub, key_idx, encoder, options);
    if (!result.ok()) {
      outs[p].status = result.status();
      return;
    }
    outs[p].frame = std::move(*result);
    const std::vector<size_t>& first = encoder.group_first_row();
    outs[p].global_first.reserve(first.size());
    for (size_t local_row : first) {
      outs[p].global_first.push_back(parts[p][local_row]);
    }
  });
  for (const PartOut& part : outs) {
    ARDA_RETURN_IF_ERROR(part.status);
  }

  // (global first row, partition, local group) sorted by first element;
  // global first rows are distinct, so the order is total.
  std::vector<std::array<size_t, 3>> order;
  size_t total_groups = 0;
  for (size_t p = 0; p < num_partitions; ++p) {
    total_groups += outs[p].global_first.size();
  }
  order.reserve(total_groups);
  for (size_t p = 0; p < num_partitions; ++p) {
    for (size_t g = 0; g < outs[p].global_first.size(); ++g) {
      order.push_back({outs[p].global_first[g], p, g});
    }
  }
  std::sort(order.begin(), order.end());

  DataFrame merged;
  const DataFrame& schema_source = outs[0].frame;
  for (size_t c = 0; c < schema_source.NumCols(); ++c) {
    Column col = Column::Empty(schema_source.col(c).name(),
                               schema_source.col(c).type());
    col.Reserve(order.size());
    for (const std::array<size_t, 3>& entry : order) {
      col.AppendFrom(outs[entry[1]].frame.col(c), entry[2]);
    }
    ARDA_RETURN_IF_ERROR(merged.AddColumn(std::move(col)));
  }
  return merged;
}

}  // namespace

Result<DataFrame> GroupByAggregate(const DataFrame& frame,
                                   const std::vector<std::string>& keys,
                                   const AggregateOptions& options) {
  std::vector<size_t> key_idx;
  ARDA_RETURN_IF_ERROR(ResolveKeys(frame, keys, &key_idx));
  const size_t num_partitions = ChoosePartitionCount(
      options.partition_count, options.memory_budget_bytes,
      EstimateFrameBytes(frame));
  if (num_partitions > 1 && frame.NumRows() > 0) {
    return GroupByAggregatePartitioned(frame, key_idx, num_partitions,
                                       options);
  }
  // Group rows via interned integer keys, groups numbered in
  // first-occurrence order (same ordering the string-keyed map produced).
  KeyEncoder encoder(frame, key_idx);
  return GroupByAggregateImpl(frame, key_idx, encoder, options);
}

Result<DataFrame> GroupByAggregate(const DataFrame& frame,
                                   const std::vector<std::string>& keys,
                                   const KeyEncoder& encoder,
                                   const AggregateOptions& options) {
  std::vector<size_t> key_idx;
  ARDA_RETURN_IF_ERROR(ResolveKeys(frame, keys, &key_idx));
  ARDA_CHECK_EQ(encoder.num_rows(), frame.NumRows());
  return GroupByAggregateImpl(frame, key_idx, encoder, options);
}

}  // namespace arda::df
