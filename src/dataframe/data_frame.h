#ifndef ARDA_DATAFRAME_DATA_FRAME_H_
#define ARDA_DATAFRAME_DATA_FRAME_H_

#include <string>
#include <vector>

#include "dataframe/column.h"
#include "util/status.h"

namespace arda::df {

/// Name + type of one column; the frame's schema is the ordered list.
struct Field {
  std::string name;
  DataType type;
};

/// An in-memory relational table: an ordered set of equal-length named
/// columns. All mutating operations preserve the invariant that column
/// names are unique and lengths agree.
class DataFrame {
 public:
  DataFrame() = default;

  /// Appends a column. Fails if the name already exists or the length
  /// disagrees with existing columns.
  Status AddColumn(Column column);

  size_t NumRows() const {
    return columns_.empty() ? 0 : columns_.front().size();
  }
  size_t NumCols() const { return columns_.size(); }

  bool HasColumn(const std::string& name) const;
  /// Index of a column by name, or npos when absent.
  size_t ColumnIndex(const std::string& name) const;
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  /// Column access by position (bounds-checked).
  const Column& col(size_t i) const;
  Column& col(size_t i);
  /// Column access by name (aborts if absent; use HasColumn to probe).
  const Column& col(const std::string& name) const;
  Column& col(const std::string& name);

  /// Ordered schema of the frame.
  std::vector<Field> schema() const;
  /// Column names, in order.
  std::vector<std::string> ColumnNames() const;

  /// Returns a frame with the rows at `indices`, in order (repeats OK).
  DataFrame Take(const std::vector<size_t>& indices) const;

  /// Returns a frame with only the named columns, in the given order.
  /// Fails if any name is absent.
  Result<DataFrame> Select(const std::vector<std::string>& names) const;

  /// Returns a frame without the named columns (absent names ignored).
  DataFrame Drop(const std::vector<std::string>& names) const;

  /// Removes a column by name. Fails if absent.
  Status RemoveColumn(const std::string& name);

  /// Renames a column. Fails if `from` is absent or `to` already exists.
  Status RenameColumn(const std::string& from, const std::string& to);

  /// Appends all columns of `other` (same row count). Name collisions get
  /// `prefix` prepended; if still colliding, a numeric suffix is added.
  Status HStack(const DataFrame& other, const std::string& prefix);

  /// Appends the rows of `other`; schemas must match exactly.
  Status VStack(const DataFrame& other);

  /// First `n` rows rendered as an aligned text table (debugging aid).
  std::string Head(size_t n = 10) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_DATA_FRAME_H_
