#include "dataframe/encode.h"

#include <algorithm>
#include <map>

namespace arda::df {

namespace {

// Chooses the categories that get their own indicator column: all of them
// if there are at most max_categories, otherwise the most frequent ones.
std::vector<std::string> PickCategories(const Column& col,
                                        size_t max_categories) {
  std::map<std::string, size_t> counts;
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsNull(i)) ++counts[col.StringAt(i)];
  }
  std::vector<std::pair<std::string, size_t>> sorted(counts.begin(),
                                                     counts.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (sorted.size() > max_categories) sorted.resize(max_categories);
  std::vector<std::string> categories;
  categories.reserve(sorted.size());
  for (auto& [value, count] : sorted) categories.push_back(value);
  std::sort(categories.begin(), categories.end());
  return categories;
}

}  // namespace

EncodedFeatures EncodeFeatures(const DataFrame& frame,
                               const std::vector<std::string>& exclude,
                               const EncodeOptions& options) {
  const size_t n = frame.NumRows();
  std::vector<std::vector<double>> feature_cols;
  EncodedFeatures out;

  for (size_t ci = 0; ci < frame.NumCols(); ++ci) {
    const Column& col = frame.col(ci);
    if (std::find(exclude.begin(), exclude.end(), col.name()) !=
        exclude.end()) {
      continue;
    }
    if (col.IsNumeric()) {
      double fill = options.impute_numeric_nulls ? col.NumericMedian() : 0.0;
      std::vector<double> values(n);
      for (size_t r = 0; r < n; ++r) {
        values[r] = col.IsNull(r) ? fill : col.NumericAt(r);
      }
      feature_cols.push_back(std::move(values));
      out.names.push_back(col.name());
      out.source_column.push_back(ci);
      continue;
    }
    // String column: one-hot over the selected categories plus optional
    // "other" and "null" indicators.
    std::vector<std::string> categories =
        PickCategories(col, options.max_categories);
    bool truncated = categories.size() == options.max_categories &&
                     col.DistinctValuesAsString().size() > categories.size();
    bool has_null = col.NullCount() > 0;
    std::vector<std::vector<double>> indicators(
        categories.size() + (truncated ? 1 : 0) + (has_null ? 1 : 0),
        std::vector<double>(n, 0.0));
    const size_t other_idx = categories.size();
    const size_t null_idx = other_idx + (truncated ? 1 : 0);
    for (size_t r = 0; r < n; ++r) {
      if (col.IsNull(r)) {
        if (has_null) indicators[null_idx][r] = 1.0;
        continue;
      }
      const std::string& value = col.StringAt(r);
      auto it = std::lower_bound(categories.begin(), categories.end(), value);
      if (it != categories.end() && *it == value) {
        indicators[static_cast<size_t>(it - categories.begin())][r] = 1.0;
      } else if (truncated) {
        indicators[other_idx][r] = 1.0;
      }
    }
    for (size_t k = 0; k < categories.size(); ++k) {
      feature_cols.push_back(std::move(indicators[k]));
      out.names.push_back(col.name() + "=" + categories[k]);
      out.source_column.push_back(ci);
    }
    if (truncated) {
      feature_cols.push_back(std::move(indicators[other_idx]));
      out.names.push_back(col.name() + "=<other>");
      out.source_column.push_back(ci);
    }
    if (has_null) {
      feature_cols.push_back(std::move(indicators[null_idx]));
      out.names.push_back(col.name() + "=<null>");
      out.source_column.push_back(ci);
    }
  }

  out.x = la::Matrix(n, feature_cols.size());
  for (size_t c = 0; c < feature_cols.size(); ++c) {
    for (size_t r = 0; r < n; ++r) {
      out.x(r, c) = feature_cols[c][r];
    }
  }
  return out;
}

}  // namespace arda::df
