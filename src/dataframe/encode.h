#ifndef ARDA_DATAFRAME_ENCODE_H_
#define ARDA_DATAFRAME_ENCODE_H_

#include <string>
#include <vector>

#include "dataframe/data_frame.h"
#include "la/matrix.h"

namespace arda::df {

/// Options controlling DataFrame -> numeric matrix encoding.
struct EncodeOptions {
  /// String columns with at most this many distinct values are one-hot
  /// encoded per category; above it only the most frequent categories get
  /// indicator columns and the rest collapse into an "other" bucket.
  size_t max_categories = 20;
  /// Remaining nulls in numeric columns are replaced by the column median
  /// when true, by 0 otherwise. (The join pipeline normally imputes before
  /// encoding; this is a safety net.)
  bool impute_numeric_nulls = true;
};

/// Numeric feature matrix produced from a DataFrame (the paper's
/// "binarization" of categoricals into numeric features).
struct EncodedFeatures {
  la::Matrix x;                       ///< n rows x d encoded features
  std::vector<std::string> names;     ///< encoded feature names
  std::vector<size_t> source_column;  ///< frame column index each came from
};

/// Encodes every column of `frame` except those in `exclude` into numeric
/// features: numeric columns pass through (nulls imputed), string columns
/// are one-hot binarized (null category gets its own indicator when
/// present). Feature names are "col" or "col=value".
EncodedFeatures EncodeFeatures(const DataFrame& frame,
                               const std::vector<std::string>& exclude,
                               const EncodeOptions& options = {});

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_ENCODE_H_
