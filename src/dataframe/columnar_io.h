#ifndef ARDA_DATAFRAME_COLUMNAR_IO_H_
#define ARDA_DATAFRAME_COLUMNAR_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "dataframe/column_stats.h"
#include "dataframe/data_frame.h"
#include "util/status.h"

/// \file
/// Binary columnar snapshot format (`.ardac`) for DataFrames — the table
/// cache behind `DataRepository::LoadDirectory`. Repeated runs over the
/// same candidate pool deserialize columns with a handful of bulk reads
/// instead of re-parsing and re-inferring CSV text.
///
/// Version 3 layout (all integers little-endian; full spec in
/// docs/columnar_format.md):
///
///   [0)  magic "ARDC" (4 bytes)
///   [4)  u32 format version (currently 3; version 1/2 files still load)
///   [8)  u64 row count
///   [16) u32 column count
///   [20) u32 reserved (0)
///   [24) u64 FNV-1a checksum of bytes [48, EOF)
///   [32) u64 index_end: offset one past the column index
///   [40) u64 FNV-1a checksum of the column index, bytes [48, index_end)
///   [48) column index, per column in frame order:
///          u32 name length, name bytes
///          u8 type (0 = double, 1 = int64, 2 = string)
///          u64 validity offset, u64 data offset, u64 data length
///        then u64 meta offset, u64 meta length
///   [index_end) column payload blocks, addressed only through the index:
///          validity: `rows` bytes, one 0/1 byte per row (1 = valid)
///          numeric data: rows * 8 bytes at an 8-byte-aligned offset
///          string data: u32 length + bytes per row (nulls: length 0)
///        and the meta block ("ARDM", fingerprint + stats catalog —
///        same encoding as version 2); EOF == meta offset + meta length
///
/// The fixed-offset index is what makes v3 mmap-able (see
/// dataframe/mapped_columnar.h): a mapped open validates the header, the
/// index checksum and every recorded extent against the real file size
/// before the first payload access, so truncation surfaces as Status —
/// never SIGBUS — and validity/numeric blocks can then be borrowed
/// zero-copy straight out of the mapping. Versions 1/2 pack a null
/// *bitmap* and unaligned values (docs/columnar_format.md keeps their
/// layout) and always load through the eager path.
///
/// Readers validate magic, version, checksum and every length before
/// touching the data, and return `Status` — never crash — on truncated,
/// corrupted or version-skewed input. A corrupt meta block fails the read
/// the same way (callers degrade to the CSV path).

namespace arda::df {

/// Sidecar metadata persisted with a cached table: a fingerprint of the
/// source CSV (for content-based cache freshness) and the per-column
/// statistics catalog. `source_size`/`source_hash` of 0 and an empty
/// `stats` mean "unknown" — version-1 files read back this way.
struct ColumnarMeta {
  uint64_t source_size = 0;
  uint64_t source_hash = 0;
  TableStats stats;
};

/// Serializes `frame` into the `.ardac` byte format (version 3). With a
/// null `meta` the meta block carries no fingerprint and no stats.
std::string WriteColumnarString(const DataFrame& frame,
                                const ColumnarMeta* meta = nullptr);

/// Serializes `frame` in the legacy version-1 layout (no meta block) —
/// kept so backward-compatibility can be tested against real v1 bytes.
std::string WriteColumnarStringV1(const DataFrame& frame);

/// Serializes `frame` in the legacy version-2 layout (meta block, packed
/// null bitmap, no column index) — kept so backward-compatibility can be
/// tested against real v2 bytes.
std::string WriteColumnarStringV2(const DataFrame& frame,
                                  const ColumnarMeta* meta = nullptr);

/// Writes `frame` to `path` in the `.ardac` format. The bytes land in a
/// sibling temp file first and are rename()d into place, so a concurrent
/// reader — in particular an mmap of the previous cache generation —
/// keeps its old inode and never observes a truncated or torn file.
Status WriteColumnar(const DataFrame& frame, const std::string& path,
                     const ColumnarMeta* meta = nullptr);

/// Deserializes a `.ardac` byte buffer (version 1, 2 or 3). Fails with
/// InvalidArgument on bad magic / truncation / trailing garbage /
/// corrupted lengths, and with FailedPrecondition on version skew or a
/// checksum mismatch. When `meta` is non-null it receives the decoded
/// meta block (defaults for version-1 input).
Result<DataFrame> ReadColumnarString(std::string_view data,
                                     ColumnarMeta* meta = nullptr);

/// Reads a `.ardac` file eagerly (full buffer + checksum validation).
/// Carries the `fault::kColumnarRead` injection site (and
/// `fault::kStatsDecode` inside the meta-block decode), so the
/// cache-fallback path is testable under ARDA_FAULT.
Result<DataFrame> ReadColumnar(const std::string& path,
                               ColumnarMeta* meta = nullptr);

/// 64-bit size of `path` from filesystem metadata. Unlike the old
/// `fseek`+`ftell` probe this never truncates past 2 GiB (ftell returns
/// a `long`) and failure is an explicit IoError instead of a silent
/// zero-byte reserve.
Result<uint64_t> FileSizeBytes(const std::string& path);

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_COLUMNAR_IO_H_
