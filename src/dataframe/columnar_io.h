#ifndef ARDA_DATAFRAME_COLUMNAR_IO_H_
#define ARDA_DATAFRAME_COLUMNAR_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "dataframe/column_stats.h"
#include "dataframe/data_frame.h"
#include "util/status.h"

/// \file
/// Binary columnar snapshot format (`.ardac`) for DataFrames — the table
/// cache behind `DataRepository::LoadDirectory`. Repeated runs over the
/// same candidate pool deserialize columns with a handful of bulk reads
/// instead of re-parsing and re-inferring CSV text.
///
/// Layout (all integers little-endian; full spec in
/// docs/columnar_format.md):
///
///   [0)  magic "ARDC" (4 bytes)
///   [4)  u32 format version (currently 2; version-1 files still load)
///   [8)  u64 row count
///   [16) u32 column count
///   [20) u32 reserved (0)
///   [24) u64 FNV-1a checksum of the payload (everything after byte 32)
///   [32) payload: per column, in frame order:
///          u32 name length, name bytes
///          u8 type (0 = double, 1 = int64, 2 = string)
///          null bitmap: ceil(rows/8) bytes, LSB-first; bit set = valid
///          data: doubles/int64s as rows * 8 bytes; strings as one
///                u32 length + bytes per row (nulls: length 0)
///        then (version >= 2) a meta block:
///          magic "ARDM", u32 meta version (1)
///          u64 source file size, u64 source FNV-1a hash (0,0 = unknown)
///          u8 has_stats; when set, per column in frame order:
///            u64 row count, u64 non-null count
///            u8 has_range, f64 min, f64 max
///            u32 HLL register count + register bytes
///            u32 MinHash slot count + slots as u64s
///
/// Readers validate magic, version, checksum and every length before
/// touching the data, and return `Status` — never crash — on truncated,
/// corrupted or version-skewed input. A corrupt meta block fails the read
/// the same way (callers degrade to the CSV path).

namespace arda::df {

/// Sidecar metadata persisted with a cached table: a fingerprint of the
/// source CSV (for content-based cache freshness) and the per-column
/// statistics catalog. `source_size`/`source_hash` of 0 and an empty
/// `stats` mean "unknown" — version-1 files read back this way.
struct ColumnarMeta {
  uint64_t source_size = 0;
  uint64_t source_hash = 0;
  TableStats stats;
};

/// Serializes `frame` into the `.ardac` byte format (version 2). With a
/// null `meta` the meta block carries no fingerprint and no stats.
std::string WriteColumnarString(const DataFrame& frame,
                                const ColumnarMeta* meta = nullptr);

/// Serializes `frame` in the legacy version-1 layout (no meta block) —
/// kept so backward-compatibility can be tested against real v1 bytes.
std::string WriteColumnarStringV1(const DataFrame& frame);

/// Writes `frame` to `path` in the `.ardac` format.
Status WriteColumnar(const DataFrame& frame, const std::string& path,
                     const ColumnarMeta* meta = nullptr);

/// Deserializes a `.ardac` byte buffer (version 1 or 2). Fails with
/// InvalidArgument on bad magic / truncation / trailing garbage /
/// corrupted lengths, and with FailedPrecondition on version skew or a
/// checksum mismatch. When `meta` is non-null it receives the decoded
/// meta block (defaults for version-1 input).
Result<DataFrame> ReadColumnarString(std::string_view data,
                                     ColumnarMeta* meta = nullptr);

/// Reads a `.ardac` file. Carries the `fault::kColumnarRead` injection
/// site (and `fault::kStatsDecode` inside the meta-block decode), so the
/// cache-fallback path is testable under ARDA_FAULT.
Result<DataFrame> ReadColumnar(const std::string& path,
                               ColumnarMeta* meta = nullptr);

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_COLUMNAR_IO_H_
