#ifndef ARDA_DATAFRAME_COLUMNAR_IO_H_
#define ARDA_DATAFRAME_COLUMNAR_IO_H_

#include <string>
#include <string_view>

#include "dataframe/data_frame.h"
#include "util/status.h"

/// \file
/// Binary columnar snapshot format (`.ardac`) for DataFrames — the table
/// cache behind `DataRepository::LoadDirectory`. Repeated runs over the
/// same candidate pool deserialize columns with a handful of bulk reads
/// instead of re-parsing and re-inferring CSV text.
///
/// Layout (all integers little-endian; full spec in
/// docs/columnar_format.md):
///
///   [0)  magic "ARDC" (4 bytes)
///   [4)  u32 format version (currently 1)
///   [8)  u64 row count
///   [16) u32 column count
///   [20) u32 reserved (0)
///   [24) u64 FNV-1a checksum of the payload (everything after byte 32)
///   [32) payload: per column, in frame order:
///          u32 name length, name bytes
///          u8 type (0 = double, 1 = int64, 2 = string)
///          null bitmap: ceil(rows/8) bytes, LSB-first; bit set = valid
///          data: doubles/int64s as rows * 8 bytes; strings as one
///                u32 length + bytes per row (nulls: length 0)
///
/// Readers validate magic, version, checksum and every length before
/// touching the data, and return `Status` — never crash — on truncated,
/// corrupted or version-skewed input.

namespace arda::df {

/// Serializes `frame` into the `.ardac` byte format.
std::string WriteColumnarString(const DataFrame& frame);

/// Writes `frame` to `path` in the `.ardac` format.
Status WriteColumnar(const DataFrame& frame, const std::string& path);

/// Deserializes a `.ardac` byte buffer. Fails with InvalidArgument on bad
/// magic / truncation / trailing garbage / corrupted lengths, and with
/// FailedPrecondition on version skew or a checksum mismatch.
Result<DataFrame> ReadColumnarString(std::string_view data);

/// Reads a `.ardac` file. Carries the `fault::kColumnarRead` injection
/// site, so the cache-fallback path is testable under ARDA_FAULT.
Result<DataFrame> ReadColumnar(const std::string& path);

}  // namespace arda::df

#endif  // ARDA_DATAFRAME_COLUMNAR_IO_H_
