#ifndef ARDA_DATAFRAME_COLUMNAR_INTERNAL_H_
#define ARDA_DATAFRAME_COLUMNAR_INTERNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dataframe/column.h"
#include "dataframe/columnar_io.h"
#include "util/status.h"

/// \file
/// Internals of the `.ardac` v3 layout shared between the eager reader
/// (columnar_io.cc) and the mmap reader (mapped_columnar.cc). Not part of
/// the public dataframe API.

namespace arda::df::internal {

/// One decoded column-index entry: where the column's validity bytes and
/// data block live in the file.
struct V3Column {
  std::string name;
  DataType type = DataType::kDouble;
  uint64_t validity_off = 0;
  uint64_t data_off = 0;
  uint64_t data_len = 0;
};

/// The decoded v3 header + column index.
struct V3Index {
  uint64_t rows = 0;
  uint32_t cols = 0;
  uint64_t index_end = 0;
  /// FNV-1a of bytes [48, EOF); validated by the eager reader only (the
  /// mapped reader would have to fault in every page to check it).
  uint64_t payload_checksum = 0;
  std::vector<V3Column> columns;
  uint64_t meta_off = 0;
  uint64_t meta_len = 0;
};

constexpr size_t kV3HeaderSize = 48;

/// Parses and fully validates the v3 header and column index of `data`
/// (which must cover at least the header + index region) against the
/// actual byte count `file_size`: magic, version, index checksum, and —
/// before anything touches the payload — every recorded extent
/// (validity/data/meta offsets and lengths, numeric alignment and sizing,
/// EOF position). Each truncation or corruption point maps to a precise
/// Status, so a mapped open can reject a damaged file without a single
/// payload access (and therefore without SIGBUS risk).
Status ParseV3Index(std::string_view data, uint64_t file_size,
                    V3Index* out);

/// Decodes the meta block bytes `block` (exactly the [meta_off,
/// meta_off + meta_len) slice). Carries the `stats_decode` fault site.
Status DecodeMetaBlockRange(std::string_view block, uint32_t cols,
                            ColumnarMeta* meta);

/// Decodes a v3 string-column data block (`block` = exactly the column's
/// data slice, `validity` = its `rows` validity bytes) into an owned
/// string column named `name`.
Result<Column> DecodeV3StringColumn(std::string_view block,
                                    std::string_view validity,
                                    std::string name, size_t rows);

/// The format's FNV-1a (same function that checksums v1/v2 payloads).
uint64_t ColumnarFnv1a64(std::string_view data);

}  // namespace arda::df::internal

#endif  // ARDA_DATAFRAME_COLUMNAR_INTERNAL_H_
