#include "ml/metrics.h"

#include <cmath>
#include <map>

#include "util/check.h"

namespace arda::ml {

double Accuracy(const std::vector<double>& y_true,
                const std::vector<double>& y_pred) {
  ARDA_CHECK_EQ(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (std::lround(y_true[i]) == std::lround(y_pred[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(y_true.size());
}

double MacroF1(const std::vector<double>& y_true,
               const std::vector<double>& y_pred) {
  ARDA_CHECK_EQ(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  std::map<int, size_t> tp, fp, fn;
  for (size_t i = 0; i < y_true.size(); ++i) {
    int truth = static_cast<int>(std::lround(y_true[i]));
    int pred = static_cast<int>(std::lround(y_pred[i]));
    if (truth == pred) {
      ++tp[truth];
    } else {
      ++fp[pred];
      ++fn[truth];
    }
  }
  std::vector<int> labels = DistinctLabels(y_true);
  double f1_sum = 0.0;
  for (int label : labels) {
    double tpv = static_cast<double>(tp[label]);
    double fpv = static_cast<double>(fp[label]);
    double fnv = static_cast<double>(fn[label]);
    double denom = 2.0 * tpv + fpv + fnv;
    f1_sum += denom > 0.0 ? (2.0 * tpv) / denom : 0.0;
  }
  return labels.empty() ? 0.0 : f1_sum / static_cast<double>(labels.size());
}

double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred) {
  ARDA_CHECK_EQ(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    sum += std::fabs(y_true[i] - y_pred[i]);
  }
  return sum / static_cast<double>(y_true.size());
}

double MeanSquaredError(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred) {
  ARDA_CHECK_EQ(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    double d = y_true[i] - y_pred[i];
    sum += d * d;
  }
  return sum / static_cast<double>(y_true.size());
}

double RootMeanSquaredError(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred) {
  return std::sqrt(MeanSquaredError(y_true, y_pred));
}

double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred) {
  ARDA_CHECK_EQ(y_true.size(), y_pred.size());
  if (y_true.empty()) return 0.0;
  double mean = 0.0;
  for (double v : y_true) mean += v;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double HigherIsBetterScore(TaskType task, const std::vector<double>& y_true,
                           const std::vector<double>& y_pred) {
  if (task == TaskType::kClassification) {
    return Accuracy(y_true, y_pred);
  }
  return -MeanAbsoluteError(y_true, y_pred);
}

}  // namespace arda::ml
