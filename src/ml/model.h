#ifndef ARDA_ML_MODEL_H_
#define ARDA_ML_MODEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "la/matrix.h"
#include "ml/dataset.h"

namespace arda::ml {

/// Interface implemented by every trainable predictor. Classification
/// models return integer class labels (as doubles) from Predict;
/// regression models return real-valued targets.
class Model {
 public:
  virtual ~Model() = default;

  /// Trains on feature matrix `x` and targets `y` (x.rows() == y.size()).
  virtual void Fit(const la::Matrix& x, const std::vector<double>& y) = 0;

  /// Predicts one value per row of `x`. Must be called after Fit.
  virtual std::vector<double> Predict(const la::Matrix& x) const = 0;
};

/// A callable that makes fresh, untrained model instances; used by
/// evaluators and wrapper feature selectors that train repeatedly.
using ModelFactory = std::function<std::unique_ptr<Model>()>;

}  // namespace arda::ml

#endif  // ARDA_ML_MODEL_H_
