#include "ml/svm_rbf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace arda::ml {

RbfSvm::RbfSvm(const RbfSvmConfig& config) : config_(config) {
  ARDA_CHECK_GT(config.c, 0.0);
}

double RbfSvm::Kernel(const double* a, const double* b, size_t d) const {
  double dist_sq = 0.0;
  for (size_t i = 0; i < d; ++i) {
    double diff = a[i] - b[i];
    dist_sq += diff * diff;
  }
  return std::exp(-gamma_ * dist_sq);
}

RbfSvm::BinaryMachine RbfSvm::TrainBinary(
    const la::Matrix& xs, const std::vector<double>& sign) const {
  const size_t n = xs.rows();
  const size_t d = xs.cols();
  std::vector<double> alpha(n, 0.0);
  double bias = 0.0;
  Rng rng(config_.seed);

  // Cache the kernel matrix for the training set (n is coreset-sized).
  la::Matrix kernel(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double k = Kernel(xs.RowPtr(i), xs.RowPtr(j), d);
      kernel(i, j) = k;
      kernel(j, i) = k;
    }
  }
  auto decision = [&](size_t i) {
    double sum = bias;
    for (size_t j = 0; j < n; ++j) {
      if (alpha[j] > 0.0) sum += alpha[j] * sign[j] * kernel(j, i);
    }
    return sum;
  };

  size_t passes = 0;
  size_t iters = 0;
  const double c = config_.c;
  const double tol = config_.tolerance;
  while (passes < config_.max_passes && iters < config_.max_iters) {
    size_t changed = 0;
    for (size_t i = 0; i < n && iters < config_.max_iters; ++i, ++iters) {
      const double ei = decision(i) - sign[i];
      const bool violates = (sign[i] * ei < -tol && alpha[i] < c) ||
                            (sign[i] * ei > tol && alpha[i] > 0.0);
      if (!violates) continue;
      size_t j = static_cast<size_t>(rng.UniformUint64(n - 1));
      if (j >= i) ++j;
      const double ej = decision(j) - sign[j];
      double ai_old = alpha[i];
      double aj_old = alpha[j];
      double low, high;
      if (sign[i] != sign[j]) {
        low = std::max(0.0, aj_old - ai_old);
        high = std::min(c, c + aj_old - ai_old);
      } else {
        low = std::max(0.0, ai_old + aj_old - c);
        high = std::min(c, ai_old + aj_old);
      }
      if (low >= high) continue;
      double eta = 2.0 * kernel(i, j) - kernel(i, i) - kernel(j, j);
      if (eta >= -1e-12) continue;
      double aj_new = aj_old - sign[j] * (ei - ej) / eta;
      aj_new = std::clamp(aj_new, low, high);
      if (std::fabs(aj_new - aj_old) < 1e-6) continue;
      double ai_new = ai_old + sign[i] * sign[j] * (aj_old - aj_new);
      alpha[i] = ai_new;
      alpha[j] = aj_new;
      double b1 = bias - ei - sign[i] * (ai_new - ai_old) * kernel(i, i) -
                  sign[j] * (aj_new - aj_old) * kernel(i, j);
      double b2 = bias - ej - sign[i] * (ai_new - ai_old) * kernel(i, j) -
                  sign[j] * (aj_new - aj_old) * kernel(j, j);
      if (ai_new > 0.0 && ai_new < c) {
        bias = b1;
      } else if (aj_new > 0.0 && aj_new < c) {
        bias = b2;
      } else {
        bias = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  BinaryMachine machine;
  machine.bias = bias;
  for (size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) {
      machine.support.push_back(i);
      machine.alpha_times_sign.push_back(alpha[i] * sign[i]);
    }
  }
  return machine;
}

void RbfSvm::Fit(const la::Matrix& x, const std::vector<double>& y) {
  ARDA_CHECK_EQ(x.rows(), y.size());
  ARDA_CHECK_GT(x.rows(), 0u);
  stats_ = la::ComputeColumnStats(x);
  train_x_ = la::Standardize(x, stats_);

  if (config_.gamma > 0.0) {
    gamma_ = config_.gamma;
  } else {
    // "scale" heuristic on standardized data: variance per column is ~1,
    // so gamma = 1 / d.
    gamma_ = 1.0 / std::max<size_t>(1, x.cols());
  }

  double max_label = *std::max_element(y.begin(), y.end());
  num_classes_ = static_cast<size_t>(std::lround(max_label)) + 1;
  const size_t models = num_classes_ <= 2 ? 1 : num_classes_;

  machines_.clear();
  machines_.reserve(models);
  std::vector<double> sign(y.size());
  for (size_t m = 0; m < models; ++m) {
    const double positive = num_classes_ <= 2 ? 1.0 : static_cast<double>(m);
    for (size_t i = 0; i < y.size(); ++i) {
      sign[i] = std::lround(y[i]) == std::lround(positive) ? 1.0 : -1.0;
    }
    machines_.push_back(TrainBinary(train_x_, sign));
  }
}

double RbfSvm::DecisionValue(const BinaryMachine& machine,
                             const la::Matrix& xs, const double* row) const {
  double sum = machine.bias;
  for (size_t k = 0; k < machine.support.size(); ++k) {
    sum += machine.alpha_times_sign[k] *
           Kernel(xs.RowPtr(machine.support[k]), row, xs.cols());
  }
  return sum;
}

std::vector<double> RbfSvm::Predict(const la::Matrix& x) const {
  ARDA_CHECK(!machines_.empty());
  ARDA_CHECK_EQ(x.cols(), train_x_.cols());
  la::Matrix xs = la::Standardize(x, stats_);
  const size_t n = xs.rows();
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = xs.RowPtr(i);
    if (num_classes_ <= 2) {
      out[i] = DecisionValue(machines_[0], train_x_, row) >= 0.0 ? 1.0 : 0.0;
      continue;
    }
    double best_score = -1e300;
    size_t best_class = 0;
    for (size_t m = 0; m < machines_.size(); ++m) {
      double score = DecisionValue(machines_[m], train_x_, row);
      if (score > best_score) {
        best_score = score;
        best_class = m;
      }
    }
    out[i] = static_cast<double>(best_class);
  }
  return out;
}

}  // namespace arda::ml
