#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace arda::ml {

namespace {

// Counts per integer class label; labels are assumed in [0, num_classes).
size_t NumClassesIn(const std::vector<double>& y) {
  double max_label = 0.0;
  for (double v : y) max_label = std::max(max_label, v);
  return static_cast<size_t>(std::lround(max_label)) + 1;
}

double GiniTimesCount(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return total - sum_sq / total;  // total * (1 - sum p_i^2)
}

}  // namespace

DecisionTree::DecisionTree(const TreeConfig& config) : config_(config) {}

void DecisionTree::Fit(const la::Matrix& x, const std::vector<double>& y) {
  ARDA_CHECK_EQ(x.rows(), y.size());
  ARDA_CHECK_GT(x.rows(), 0u);
  nodes_.clear();
  num_features_ = x.cols();
  importances_.assign(num_features_, 0.0);
  std::vector<size_t> indices(x.rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  Rng rng(config_.seed);
  BuildNode(x, y, &indices, 0, indices.size(), 0, &rng);
  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
}

int DecisionTree::BuildNode(const la::Matrix& x, const std::vector<double>& y,
                            std::vector<size_t>* indices, size_t begin,
                            size_t end, size_t depth, Rng* rng) {
  const size_t count = end - begin;
  ARDA_CHECK_GT(count, 0u);
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  const bool classification = config_.task == TaskType::kClassification;
  const size_t num_classes = classification ? NumClassesIn(y) : 0;

  // Node statistics: impurity (scaled by count) and the leaf prediction.
  double node_impurity = 0.0;
  double leaf_value = 0.0;
  std::vector<double> class_counts;
  if (classification) {
    class_counts.assign(num_classes, 0.0);
    for (size_t i = begin; i < end; ++i) {
      class_counts[static_cast<size_t>(std::lround(y[(*indices)[i]]))] += 1.0;
    }
    node_impurity = GiniTimesCount(class_counts, static_cast<double>(count));
    size_t best_class = 0;
    for (size_t c = 1; c < num_classes; ++c) {
      if (class_counts[c] > class_counts[best_class]) best_class = c;
    }
    leaf_value = static_cast<double>(best_class);
  } else {
    double sum = 0.0, sum_sq = 0.0;
    for (size_t i = begin; i < end; ++i) {
      double v = y[(*indices)[i]];
      sum += v;
      sum_sq += v * v;
    }
    leaf_value = sum / static_cast<double>(count);
    node_impurity = sum_sq - sum * sum / static_cast<double>(count);  // SSE
  }
  nodes_[node_id].value = leaf_value;

  const bool pure = node_impurity <= 1e-12;
  if (depth >= config_.max_depth || count < config_.min_samples_split ||
      count < 2 * config_.min_samples_leaf || pure) {
    return node_id;
  }

  // Feature subset for this node.
  std::vector<size_t> features;
  if (config_.max_features == 0 || config_.max_features >= num_features_) {
    features.resize(num_features_);
    for (size_t f = 0; f < num_features_; ++f) features[f] = f;
  } else {
    features = rng->SampleWithoutReplacement(num_features_,
                                             config_.max_features);
  }

  // Best split search.
  double best_gain = config_.min_impurity_decrease;
  size_t best_feature = 0;
  double best_threshold = 0.0;
  std::vector<std::pair<double, double>> sorted(count);  // (value, y)
  std::vector<double> left_counts;
  for (size_t f : features) {
    for (size_t i = 0; i < count; ++i) {
      size_t row = (*indices)[begin + i];
      sorted[i] = {x(row, f), y[row]};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    if (classification) {
      left_counts.assign(num_classes, 0.0);
      double left_n = 0.0;
      for (size_t i = 0; i + 1 < count; ++i) {
        left_counts[static_cast<size_t>(std::lround(sorted[i].second))] += 1.0;
        left_n += 1.0;
        if (sorted[i].first == sorted[i + 1].first) continue;
        const double right_n = static_cast<double>(count) - left_n;
        if (left_n < config_.min_samples_leaf ||
            right_n < config_.min_samples_leaf) {
          continue;
        }
        double left_imp = GiniTimesCount(left_counts, left_n);
        double right_imp = 0.0;
        {
          double sum_sq = 0.0;
          for (size_t c = 0; c < num_classes; ++c) {
            double rc = class_counts[c] - left_counts[c];
            sum_sq += rc * rc;
          }
          right_imp = right_n - sum_sq / right_n;
        }
        double gain = node_impurity - left_imp - right_imp;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
        }
      }
    } else {
      double total_sum = 0.0, total_sq = 0.0;
      for (const auto& [value, target] : sorted) {
        total_sum += target;
        total_sq += target * target;
      }
      double left_sum = 0.0, left_sq = 0.0, left_n = 0.0;
      for (size_t i = 0; i + 1 < count; ++i) {
        left_sum += sorted[i].second;
        left_sq += sorted[i].second * sorted[i].second;
        left_n += 1.0;
        if (sorted[i].first == sorted[i + 1].first) continue;
        const double right_n = static_cast<double>(count) - left_n;
        if (left_n < config_.min_samples_leaf ||
            right_n < config_.min_samples_leaf) {
          continue;
        }
        double left_sse = left_sq - left_sum * left_sum / left_n;
        double right_sum = total_sum - left_sum;
        double right_sse =
            (total_sq - left_sq) - right_sum * right_sum / right_n;
        double gain = node_impurity - left_sse - right_sse;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
        }
      }
    }
  }

  if (best_gain <= config_.min_impurity_decrease) {
    return node_id;  // no useful split found
  }

  // Partition index range by the chosen split.
  auto middle = std::partition(
      indices->begin() + static_cast<ptrdiff_t>(begin),
      indices->begin() + static_cast<ptrdiff_t>(end),
      [&](size_t row) { return x(row, best_feature) <= best_threshold; });
  size_t mid = static_cast<size_t>(middle - indices->begin());
  if (mid == begin || mid == end) {
    return node_id;  // numerically degenerate split
  }

  importances_[best_feature] += best_gain;
  nodes_[node_id].is_leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int left = BuildNode(x, y, indices, begin, mid, depth + 1, rng);
  int right = BuildNode(x, y, indices, mid, end, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

std::vector<double> DecisionTree::Predict(const la::Matrix& x) const {
  ARDA_CHECK(!nodes_.empty());
  ARDA_CHECK_EQ(x.cols(), num_features_);
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    int node = 0;
    while (!nodes_[static_cast<size_t>(node)].is_leaf) {
      const Node& nd = nodes_[static_cast<size_t>(node)];
      node = x(r, nd.feature) <= nd.threshold ? nd.left : nd.right;
    }
    out[r] = nodes_[static_cast<size_t>(node)].value;
  }
  return out;
}

}  // namespace arda::ml
