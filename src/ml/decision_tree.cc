#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "simd/simd.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace arda::ml {

namespace {

// Monotone map from double to uint64_t: a < b (as doubles) iff
// OrderedBits(a) < OrderedBits(b), except that -0.0 orders before +0.0
// where operator< calls them equal. The threshold scan never distinguishes
// the two (equal values merge into one run), so the scan output is
// unaffected by that tie order. Every NaN maps to the single largest key,
// defining the tree-wide NaN ordering: NaN sorts after +inf and all NaNs
// are equal (raw bit-pattern ordering would scatter negative-sign NaNs
// below -inf, diverging from the per-node comparison sort).
uint64_t OrderedBits(double d) {
  if (std::isnan(d)) return ~0ull;
  uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return (b & 0x8000000000000000ull) ? ~b : (b | 0x8000000000000000ull);
}

// The comparison-sort side of the same ordering: a strict weak order that
// matches operator< on non-NaN values and places NaN last, all NaNs tied.
// (Plain operator< is not a strict weak order once NaN appears, so the
// per-node std::sort would otherwise be undefined and could disagree with
// the radix presort.)
bool NanAwareLess(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return !std::isnan(a);
  return a < b;
}

// Equality under the same ordering: operator== on reals (so -0.0 and +0.0
// still merge into one threshold run) and all NaNs equal to each other.
bool SameValue(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

// Stable LSD radix sort by key; within equal keys the input order is kept,
// so (OrderedBits(value), row) pairs built in ascending row order come out
// exactly like std::sort over (value, row). Digits whose byte is constant
// across all keys (the common case for exponent bytes) are skipped.
void RadixSortByKey(std::vector<std::pair<uint64_t, uint32_t>>* a,
                    std::vector<std::pair<uint64_t, uint32_t>>* tmp) {
  const size_t n = a->size();
  if (n < 2) return;
  tmp->resize(n);
  size_t hist[8][256] = {};
  for (const auto& kv : *a) {
    for (size_t d = 0; d < 8; ++d) ++hist[d][(kv.first >> (8 * d)) & 0xFF];
  }
  auto* src = a;
  auto* dst = tmp;
  for (size_t d = 0; d < 8; ++d) {
    const size_t* h = hist[d];
    if (h[(src->front().first >> (8 * d)) & 0xFF] == n) continue;
    size_t pos[256];
    size_t sum = 0;
    for (size_t b = 0; b < 256; ++b) {
      pos[b] = sum;
      sum += h[b];
    }
    for (const auto& kv : *src) {
      (*dst)[pos[(kv.first >> (8 * d)) & 0xFF]++] = kv;
    }
    std::swap(src, dst);
  }
  if (src != a) a->swap(*tmp);
}

// Counts per integer class label; labels are assumed in [0, num_classes).
size_t NumClassesIn(const std::vector<double>& y) {
  double max_label = 0.0;
  for (double v : y) max_label = std::max(max_label, v);
  return static_cast<size_t>(std::lround(max_label)) + 1;
}

double GiniTimesCount(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return total - sum_sq / total;  // total * (1 - sum p_i^2)
}

}  // namespace

DecisionTree::DecisionTree(const TreeConfig& config) : config_(config) {}

void DecisionTree::Fit(const la::Matrix& x, const std::vector<double>& y) {
  trace::TraceSpan fit_span("tree.fit", "ml");
  Stopwatch fit_watch;
  ARDA_CHECK_EQ(x.rows(), y.size());
  ARDA_CHECK_GT(x.rows(), 0u);
  nodes_.clear();
  num_features_ = x.cols();
  importances_.assign(num_features_, 0.0);
  const size_t n = x.rows();
  num_rows_ = n;
  ARDA_CHECK_LT(n, static_cast<size_t>(UINT32_MAX));

  // Column-major working copy: every split-search access from here on
  // touches one contiguous feature column.
  columns_.resize(num_features_ * n);
  constexpr size_t kTile = 64;  // bounds live write streams during transpose
  for (size_t f0 = 0; f0 < num_features_; f0 += kTile) {
    const size_t f1 = std::min(num_features_, f0 + kTile);
    for (size_t r = 0; r < n; ++r) {
      const double* row = x.RowPtr(r);
      for (size_t f = f0; f < f1; ++f) columns_[f * n + r] = row[f];
    }
  }

  num_classes_ =
      config_.task == TaskType::kClassification ? NumClassesIn(y) : 0;
  if (num_classes_ > 0) {
    class_counts_.resize(num_classes_);
    left_counts_.resize(num_classes_);
    labels_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      labels_[i] = static_cast<uint32_t>(std::lround(y[i]));
    }
    labs_.resize(n);
  }
  vals_.resize(n);
  ys_.resize(n);

  // Pre-sorting every feature pays off exactly when every feature is a
  // split candidate at every node; with per-node feature subsampling the
  // O(F n log n) sort would outweigh the scan savings on the sampled
  // sqrt(F) features, so that case keeps the per-node sort.
  presorted_ =
      config_.max_features == 0 || config_.max_features >= num_features_;
  if (presorted_) {
    feat_order_.resize(num_features_ * n);
    if (num_classes_ > 0) {
      // Class counts are additive, so the scan result does not depend on
      // the order of rows within an equal-value run; (value, row) is
      // enough and a stable radix sort on the order-preserving bit pattern
      // reproduces it without comparisons.
      std::vector<std::pair<uint64_t, uint32_t>> keys(n), radix_tmp;
      for (size_t f = 0; f < num_features_; ++f) {
        const double* col = columns_.data() + f * n;
        for (size_t i = 0; i < n; ++i) {
          keys[i] = {OrderedBits(col[i]), static_cast<uint32_t>(i)};
        }
        RadixSortByKey(&keys, &radix_tmp);
        uint32_t* slice = feat_order_.data() + f * n;
        for (size_t i = 0; i < n; ++i) slice[i] = keys[i].second;
      }
    } else {
      // Regression sums targets in scan order, so ties must be ordered by
      // target to reproduce the (value, y) pair sort of the per-node mode
      // bit for bit; the row id makes the permutation unique.
      struct SortKey {
        double v;
        double y;
        uint32_t row;
      };
      std::vector<SortKey> keys(n);
      for (size_t f = 0; f < num_features_; ++f) {
        const double* col = columns_.data() + f * n;
        for (size_t i = 0; i < n; ++i) {
          keys[i] = {col[i], y[i], static_cast<uint32_t>(i)};
        }
        std::sort(keys.begin(), keys.end(),
                  [](const SortKey& a, const SortKey& b) {
                    if (NanAwareLess(a.v, b.v)) return true;
                    if (NanAwareLess(b.v, a.v)) return false;
                    if (NanAwareLess(a.y, b.y)) return true;
                    if (NanAwareLess(b.y, a.y)) return false;
                    return a.row < b.row;
                  });
        uint32_t* slice = feat_order_.data() + f * n;
        for (size_t i = 0; i < n; ++i) slice[i] = keys[i].row;
      }
    }
    part_tmp_.resize(n);
    left_mask_.assign(n, 0);
  }

  std::vector<size_t> indices(n);
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  Rng rng(config_.seed);
  BuildNode(x, y, &indices, 0, indices.size(), 0, &rng);

  // Release fit-time scratch.
  columns_ = {};
  labels_ = {};
  feat_order_ = {};
  part_tmp_ = {};
  left_mask_ = {};
  vals_ = {};
  ys_ = {};
  labs_ = {};
  class_counts_ = {};
  left_counts_ = {};
  sort_buf_ = {};

  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }

  // The registry lookup costs a mutex + map walk; trees fit in tight
  // parallel loops, so resolve the histogram once and reuse the reference
  // (ResetForTest zeroes in place, never invalidating it).
  static metrics::Histogram& fit_hist =
      metrics::GlobalRegistry().GetHistogram(
          "ml.tree_fit_seconds", metrics::LatencyBucketsSeconds());
  fit_hist.Observe(fit_watch.ElapsedSeconds());
}

void DecisionTree::ScanThresholds(size_t count, size_t feature,
                                  double node_impurity,
                                  const double* class_counts,
                                  double* best_gain, size_t* best_feature,
                                  double* best_threshold) {
  const double* vals = vals_.data();
  // ClassSquares' vector path regroups the accumulation across lanes; with
  // whole-number counts < 2^26 every partial sum of squares is an exact
  // integer < 2^53, so the regrouping cannot change the result (simd.h
  // "determinism contract"). Larger nodes keep the sequential loop — both
  // dispatch levels take the same branch, so outputs stay level-invariant.
  const bool exact_counts = count < (size_t{1} << 26);
  if (num_classes_ > 0) {
    const uint32_t* labs = labs_.data();
    std::fill(left_counts_.begin(), left_counts_.end(), 0.0);
    double* left_counts = left_counts_.data();
    double left_n = 0.0;
    for (size_t i = 0; i + 1 < count; ++i) {
      left_counts[labs[i]] += 1.0;
      left_n += 1.0;
      if (vals[i] == vals[i + 1]) continue;
      const double right_n = static_cast<double>(count) - left_n;
      if (left_n < config_.min_samples_leaf ||
          right_n < config_.min_samples_leaf) {
        continue;
      }
      // One fused pass over the class histograms; accumulation order per
      // sum matches the separate left/right loops exactly.
      double left_sq = 0.0, right_sq = 0.0;
      if (exact_counts) {
        simd::ClassSquares(left_counts, class_counts, num_classes_,
                           &left_sq, &right_sq);
      } else {
        for (size_t c = 0; c < num_classes_; ++c) {
          double lc = left_counts[c];
          double rc = class_counts[c] - lc;
          left_sq += lc * lc;
          right_sq += rc * rc;
        }
      }
      double left_imp = left_n - left_sq / left_n;
      double right_imp = right_n - right_sq / right_n;
      double gain = node_impurity - left_imp - right_imp;
      if (gain > *best_gain &&
          std::isfinite(0.5 * (vals[i] + vals[i + 1]))) {
        *best_gain = gain;
        *best_feature = feature;
        *best_threshold = 0.5 * (vals[i] + vals[i + 1]);
      }
    }
  } else {
    const double* ys = ys_.data();
    double total_sum = 0.0, total_sq = 0.0;
    for (size_t i = 0; i < count; ++i) {
      total_sum += ys[i];
      total_sq += ys[i] * ys[i];
    }
    double left_sum = 0.0, left_sq = 0.0, left_n = 0.0;
    for (size_t i = 0; i + 1 < count; ++i) {
      left_sum += ys[i];
      left_sq += ys[i] * ys[i];
      left_n += 1.0;
      if (vals[i] == vals[i + 1]) continue;
      const double right_n = static_cast<double>(count) - left_n;
      if (left_n < config_.min_samples_leaf ||
          right_n < config_.min_samples_leaf) {
        continue;
      }
      double left_sse = left_sq - left_sum * left_sum / left_n;
      double right_sum = total_sum - left_sum;
      double right_sse =
          (total_sq - left_sq) - right_sum * right_sum / right_n;
      double gain = node_impurity - left_sse - right_sse;
      if (gain > *best_gain &&
          std::isfinite(0.5 * (vals[i] + vals[i + 1]))) {
        *best_gain = gain;
        *best_feature = feature;
        *best_threshold = 0.5 * (vals[i] + vals[i + 1]);
      }
    }
  }
}

int DecisionTree::BuildNode(const la::Matrix& x, const std::vector<double>& y,
                            std::vector<size_t>* indices, size_t begin,
                            size_t end, size_t depth, Rng* rng) {
  const size_t count = end - begin;
  ARDA_CHECK_GT(count, 0u);
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  const bool classification = num_classes_ > 0;
  const size_t n = num_rows_;

  // Node statistics: impurity (scaled by count) and the leaf prediction.
  double node_impurity = 0.0;
  double leaf_value = 0.0;
  if (classification) {
    std::fill(class_counts_.begin(), class_counts_.end(), 0.0);
    for (size_t i = begin; i < end; ++i) {
      class_counts_[labels_[(*indices)[i]]] += 1.0;
    }
    node_impurity = GiniTimesCount(class_counts_, static_cast<double>(count));
    size_t best_class = 0;
    for (size_t c = 1; c < num_classes_; ++c) {
      if (class_counts_[c] > class_counts_[best_class]) best_class = c;
    }
    leaf_value = static_cast<double>(best_class);
  } else {
    double sum = 0.0, sum_sq = 0.0;
    for (size_t i = begin; i < end; ++i) {
      double v = y[(*indices)[i]];
      sum += v;
      sum_sq += v * v;
    }
    leaf_value = sum / static_cast<double>(count);
    node_impurity = sum_sq - sum * sum / static_cast<double>(count);  // SSE
  }
  nodes_[node_id].value = leaf_value;

  const bool pure = node_impurity <= 1e-12;
  if (depth >= config_.max_depth || count < config_.min_samples_split ||
      count < 2 * config_.min_samples_leaf || pure) {
    return node_id;
  }

  // Feature subset for this node (pre-sorted mode always scans all).
  std::vector<size_t> sampled;
  if (!presorted_) {
    sampled = rng->SampleWithoutReplacement(num_features_,
                                            config_.max_features);
  }

  // Best split search over contiguous (value, target) runs per feature.
  double best_gain = config_.min_impurity_decrease;
  size_t best_feature = 0;
  double best_threshold = 0.0;
  const size_t num_candidates = presorted_ ? num_features_ : sampled.size();
  for (size_t fi = 0; fi < num_candidates; ++fi) {
    const size_t f = presorted_ ? fi : sampled[fi];
    const double* col = columns_.data() + f * n;
    if (presorted_) {
      const uint32_t* slice = feat_order_.data() + f * n + begin;
      if (SameValue(col[slice[0]], col[slice[count - 1]])) continue;
      if (classification) {
        // Fused gather + threshold scan: each sorted row is touched once
        // instead of being staged through vals_/labs_. The arithmetic is
        // the same as ScanThresholds' classification branch, including its
        // exact_counts guard around the SIMD class-square reduction.
        const bool exact_counts = count < (size_t{1} << 26);
        std::fill(left_counts_.begin(), left_counts_.end(), 0.0);
        double* left_counts = left_counts_.data();
        const double* class_counts = class_counts_.data();
        double left_n = 0.0;
        double v = col[slice[0]];
        for (size_t i = 0; i + 1 < count; ++i) {
          const double v_next = col[slice[i + 1]];
          left_counts[labels_[slice[i]]] += 1.0;
          left_n += 1.0;
          if (v != v_next) {
            const double right_n = static_cast<double>(count) - left_n;
            if (left_n >= config_.min_samples_leaf &&
                right_n >= config_.min_samples_leaf) {
              double left_sq = 0.0, right_sq = 0.0;
              if (exact_counts) {
                simd::ClassSquares(left_counts, class_counts, num_classes_,
                                   &left_sq, &right_sq);
              } else {
                for (size_t c = 0; c < num_classes_; ++c) {
                  double lc = left_counts[c];
                  double rc = class_counts[c] - lc;
                  left_sq += lc * lc;
                  right_sq += rc * rc;
                }
              }
              double left_imp = left_n - left_sq / left_n;
              double right_imp = right_n - right_sq / right_n;
              double gain = node_impurity - left_imp - right_imp;
              // A non-finite midpoint (the run boundary into the NaN
              // region, or ±inf values) cannot partition rows; skip it.
              if (gain > best_gain && std::isfinite(0.5 * (v + v_next))) {
                best_gain = gain;
                best_feature = f;
                best_threshold = 0.5 * (v + v_next);
              }
            }
          }
          v = v_next;
        }
        continue;
      } else {
        // Pure gather (no accumulation), so the vector path is exact.
        simd::GatherValsTargets(col, y.data(), slice, count, vals_.data(),
                                ys_.data());
      }
    } else {
      sort_buf_.resize(count);
      for (size_t i = 0; i < count; ++i) {
        size_t row = (*indices)[begin + i];
        sort_buf_[i] = {col[row], y[row]};
      }
      std::sort(sort_buf_.begin(), sort_buf_.end(),
                [](const std::pair<double, double>& a,
                   const std::pair<double, double>& b) {
                  if (NanAwareLess(a.first, b.first)) return true;
                  if (NanAwareLess(b.first, a.first)) return false;
                  return NanAwareLess(a.second, b.second);
                });
      if (SameValue(sort_buf_.front().first, sort_buf_.back().first)) {
        continue;  // constant feature (an all-NaN column counts)
      }
      for (size_t i = 0; i < count; ++i) {
        vals_[i] = sort_buf_[i].first;
        if (classification) {
          labs_[i] = static_cast<uint32_t>(std::lround(sort_buf_[i].second));
        } else {
          ys_[i] = sort_buf_[i].second;
        }
      }
    }
    ScanThresholds(count, f, node_impurity, class_counts_.data(), &best_gain,
                   &best_feature, &best_threshold);
  }

  if (best_gain <= config_.min_impurity_decrease) {
    return node_id;  // no useful split found
  }

  // Partition index range by the chosen split.
  const double* best_col = columns_.data() + best_feature * n;
  auto middle = std::partition(
      indices->begin() + static_cast<ptrdiff_t>(begin),
      indices->begin() + static_cast<ptrdiff_t>(end),
      [&](size_t row) { return best_col[row] <= best_threshold; });
  size_t mid = static_cast<size_t>(middle - indices->begin());
  if (mid == begin || mid == end) {
    return node_id;  // numerically degenerate split
  }

  if (presorted_) {
    // Stable-partition every feature's slice so both children stay sorted.
    for (size_t i = begin; i < mid; ++i) left_mask_[(*indices)[i]] = 1;
    for (size_t i = mid; i < end; ++i) left_mask_[(*indices)[i]] = 0;
    for (size_t f = 0; f < num_features_; ++f) {
      uint32_t* slice = feat_order_.data() + f * n;
      size_t out = begin;
      size_t spilled = 0;
      for (size_t i = begin; i < end; ++i) {
        // Branchless split: both stores always happen; `out <= i` so the
        // left store never clobbers an unread element, and the right copy
        // at a stale part_tmp_ slot is overwritten or never read.
        uint32_t row = slice[i];
        size_t is_left = left_mask_[row];
        slice[out] = row;
        part_tmp_[spilled] = row;
        out += is_left;
        spilled += 1 - is_left;
      }
      std::copy(part_tmp_.begin(),
                part_tmp_.begin() + static_cast<ptrdiff_t>(spilled),
                slice + out);
    }
  }

  importances_[best_feature] += best_gain;
  nodes_[node_id].is_leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int left = BuildNode(x, y, indices, begin, mid, depth + 1, rng);
  int right = BuildNode(x, y, indices, mid, end, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

std::string DecisionTree::Serialize() const {
  std::string out;
  char line[160];
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& nd = nodes_[i];
    std::snprintf(line, sizeof(line), "%zu %d %zu %a %a %d %d\n", i,
                  nd.is_leaf ? 1 : 0, nd.feature, nd.threshold, nd.value,
                  nd.left, nd.right);
    out += line;
  }
  return out;
}

std::vector<double> DecisionTree::Predict(const la::Matrix& x) const {
  trace::TraceSpan predict_span("tree.predict", "ml");
  Stopwatch predict_watch;
  ARDA_CHECK(!nodes_.empty());
  ARDA_CHECK_EQ(x.cols(), num_features_);
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    int node = 0;
    while (!nodes_[static_cast<size_t>(node)].is_leaf) {
      const Node& nd = nodes_[static_cast<size_t>(node)];
      node = x(r, nd.feature) <= nd.threshold ? nd.left : nd.right;
    }
    out[r] = nodes_[static_cast<size_t>(node)].value;
  }
  static metrics::Histogram& predict_hist =
      metrics::GlobalRegistry().GetHistogram(
          "ml.tree_predict_seconds", metrics::LatencyBucketsSeconds());
  predict_hist.Observe(predict_watch.ElapsedSeconds());
  return out;
}

}  // namespace arda::ml
