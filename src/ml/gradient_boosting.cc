#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace arda::ml {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

GradientBoosting::GradientBoosting(const BoostingConfig& config)
    : config_(config) {
  ARDA_CHECK_GT(config.num_rounds, 0u);
  ARDA_CHECK_GT(config.learning_rate, 0.0);
  ARDA_CHECK_GT(config.subsample, 0.0);
  ARDA_CHECK_LE(config.subsample, 1.0);
}

GradientBoosting::Ensemble GradientBoosting::FitBinary(
    const la::Matrix& x, const std::vector<double>& target, bool logistic,
    Rng* rng) const {
  const size_t n = x.rows();
  Ensemble ensemble;
  if (logistic) {
    // Initialize at the log-odds of the positive rate.
    double positives = 0.0;
    for (double t : target) positives += t;
    double rate =
        std::clamp(positives / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
    ensemble.base_score = std::log(rate / (1.0 - rate));
  } else {
    double mean = 0.0;
    for (double t : target) mean += t;
    ensemble.base_score = mean / static_cast<double>(n);
  }

  std::vector<double> score(n, ensemble.base_score);
  std::vector<double> residual(n);
  const size_t sample_size = std::max<size_t>(
      2, static_cast<size_t>(config_.subsample * static_cast<double>(n)));

  TreeConfig tree_config;
  tree_config.task = TaskType::kRegression;  // trees fit the gradient
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;

  for (size_t round = 0; round < config_.num_rounds; ++round) {
    // Negative gradient of the loss at the current scores.
    for (size_t i = 0; i < n; ++i) {
      residual[i] = logistic ? target[i] - Sigmoid(score[i])
                             : target[i] - score[i];
    }
    std::vector<size_t> rows =
        sample_size >= n ? std::vector<size_t>()
                         : rng->SampleWithoutReplacement(n, sample_size);
    tree_config.seed = rng->NextUint64();
    DecisionTree tree(tree_config);
    if (rows.empty()) {
      tree.Fit(x, residual);
    } else {
      la::Matrix xs = x.SelectRows(rows);
      std::vector<double> rs(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) rs[i] = residual[rows[i]];
      tree.Fit(xs, rs);
    }
    std::vector<double> update = tree.Predict(x);
    for (size_t i = 0; i < n; ++i) {
      score[i] += config_.learning_rate * update[i];
    }
    ensemble.trees.push_back(std::move(tree));
  }
  return ensemble;
}

void GradientBoosting::Fit(const la::Matrix& x,
                           const std::vector<double>& y) {
  ARDA_CHECK_EQ(x.rows(), y.size());
  ARDA_CHECK_GT(x.rows(), 1u);
  ensembles_.clear();
  Rng rng(config_.seed);

  if (config_.task == TaskType::kRegression) {
    num_classes_ = 0;
    ensembles_.push_back(FitBinary(x, y, /*logistic=*/false, &rng));
    return;
  }
  double max_label = *std::max_element(y.begin(), y.end());
  num_classes_ = static_cast<size_t>(std::lround(max_label)) + 1;
  const size_t models = num_classes_ <= 2 ? 1 : num_classes_;
  std::vector<double> target(y.size());
  for (size_t m = 0; m < models; ++m) {
    const double positive = num_classes_ <= 2 ? 1.0 : static_cast<double>(m);
    for (size_t i = 0; i < y.size(); ++i) {
      target[i] = std::lround(y[i]) == std::lround(positive) ? 1.0 : 0.0;
    }
    ensembles_.push_back(FitBinary(x, target, /*logistic=*/true, &rng));
  }
}

std::vector<double> GradientBoosting::RawScores(const Ensemble& ensemble,
                                                const la::Matrix& x) const {
  std::vector<double> score(x.rows(), ensemble.base_score);
  for (const DecisionTree& tree : ensemble.trees) {
    std::vector<double> update = tree.Predict(x);
    for (size_t i = 0; i < score.size(); ++i) {
      score[i] += config_.learning_rate * update[i];
    }
  }
  return score;
}

std::vector<double> GradientBoosting::Predict(const la::Matrix& x) const {
  ARDA_CHECK(!ensembles_.empty());
  if (config_.task == TaskType::kRegression) {
    return RawScores(ensembles_[0], x);
  }
  if (num_classes_ <= 2) {
    std::vector<double> score = RawScores(ensembles_[0], x);
    for (double& s : score) s = s >= 0.0 ? 1.0 : 0.0;
    return score;
  }
  std::vector<std::vector<double>> scores;
  scores.reserve(ensembles_.size());
  for (const Ensemble& ensemble : ensembles_) {
    scores.push_back(RawScores(ensemble, x));
  }
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    size_t best = 0;
    for (size_t m = 1; m < scores.size(); ++m) {
      if (scores[m][i] > scores[best][i]) best = m;
    }
    out[i] = static_cast<double>(best);
  }
  return out;
}

size_t GradientBoosting::NumRounds() const {
  return ensembles_.empty() ? 0 : ensembles_[0].trees.size();
}

}  // namespace arda::ml
