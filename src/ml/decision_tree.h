#ifndef ARDA_ML_DECISION_TREE_H_
#define ARDA_ML_DECISION_TREE_H_

#include <vector>

#include "ml/model.h"
#include "util/rng.h"

namespace arda::ml {

/// Hyperparameters for a CART decision tree.
struct TreeConfig {
  TaskType task = TaskType::kRegression;
  size_t max_depth = 12;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  /// Features examined per split; 0 means all, otherwise a random subset
  /// of this size is drawn per node (random-forest style).
  size_t max_features = 0;
  /// Splits must reduce weighted impurity by at least this much.
  double min_impurity_decrease = 1e-9;
  uint64_t seed = 7;
};

/// CART decision tree: variance reduction for regression, Gini for
/// classification. Supports per-node feature subsampling and exposes
/// impurity-based feature importances (both needed by the random forest
/// and the RIFS ranking ensemble).
class DecisionTree : public Model {
 public:
  explicit DecisionTree(const TreeConfig& config);

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

  /// Total impurity decrease attributed to each feature during Fit,
  /// normalized to sum to 1 (all zeros if the tree is a single leaf).
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

  /// Number of nodes in the fitted tree.
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    bool is_leaf = true;
    size_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;  // prediction for leaves
    int left = -1;
    int right = -1;
  };

  int BuildNode(const la::Matrix& x, const std::vector<double>& y,
                std::vector<size_t>* indices, size_t begin, size_t end,
                size_t depth, Rng* rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  size_t num_features_ = 0;
};

}  // namespace arda::ml

#endif  // ARDA_ML_DECISION_TREE_H_
