#ifndef ARDA_ML_DECISION_TREE_H_
#define ARDA_ML_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/model.h"
#include "simd/aligned.h"
#include "util/rng.h"

namespace arda::ml {

/// Hyperparameters for a CART decision tree.
struct TreeConfig {
  TaskType task = TaskType::kRegression;
  size_t max_depth = 12;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  /// Features examined per split; 0 means all, otherwise a random subset
  /// of this size is drawn per node (random-forest style).
  size_t max_features = 0;
  /// Splits must reduce weighted impurity by at least this much.
  double min_impurity_decrease = 1e-9;
  uint64_t seed = 7;
};

/// CART decision tree: variance reduction for regression, Gini for
/// classification. Supports per-node feature subsampling and exposes
/// impurity-based feature importances (both needed by the random forest
/// and the RIFS ranking ensemble).
///
/// Split search runs in one of two modes with bit-identical results (see
/// DESIGN.md "Columnar split search"):
///  - pre-sorted (every feature is a candidate at every node, the single
///    tree / gradient-boosting case): each feature's rows are sorted once
///    per tree, and every node scans its contiguous slice of the sorted
///    index in O(n) after an O(n) stable partition per split;
///  - per-node sort (random-forest feature subsampling): the classic
///    gather-and-sort over only the sampled features.
///
/// NaN feature values are ordered identically in both modes: every NaN
/// sorts after +inf and all NaNs compare equal, thresholds are never
/// placed on a non-finite midpoint, and NaN rows always fall to the right
/// child (x <= threshold is false), in Fit and Predict alike.
class DecisionTree : public Model {
 public:
  explicit DecisionTree(const TreeConfig& config);

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

  /// Total impurity decrease attributed to each feature during Fit,
  /// normalized to sum to 1 (all zeros if the tree is a single leaf).
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

  /// Number of nodes in the fitted tree.
  size_t NumNodes() const { return nodes_.size(); }

  /// Exact textual serialization of the fitted tree, one node per line:
  /// `id leaf feature threshold value left right` with doubles rendered as
  /// hexfloats. Two trees serialize identically iff they are bit-identical
  /// (the golden-output regression tests rely on this).
  std::string Serialize() const;

 private:
  struct Node {
    bool is_leaf = true;
    size_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;  // prediction for leaves
    int left = -1;
    int right = -1;
  };

  int BuildNode(const la::Matrix& x, const std::vector<double>& y,
                std::vector<size_t>* indices, size_t begin, size_t end,
                size_t depth, Rng* rng);

  /// Scans the candidate thresholds of one feature whose node rows have
  /// been gathered, in ascending (value, y) order, into vals_/ys_[0,count).
  /// Updates best_* when a better split is found.
  void ScanThresholds(size_t count, size_t feature, double node_impurity,
                      const double* class_counts, double* best_gain,
                      size_t* best_feature, double* best_threshold);

  TreeConfig config_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  size_t num_features_ = 0;

  // --- Fit-time state (released when Fit returns). ---
  size_t num_classes_ = 0;  // classification only; hoisted out of BuildNode
  bool presorted_ = false;
  size_t num_rows_ = 0;
  /// Column-major copy of the training matrix: feature f's values live in
  /// [f * n, (f+1) * n), so split-search gathers stay inside one cache-hot
  /// column instead of striding across rows. 64-byte aligned: the SIMD
  /// gather/scan kernels read these with full-width loads.
  simd::AlignedVector<double> columns_;
  std::vector<uint32_t> labels_;     // lround(y), classification only
  /// Pre-sorted mode: feature-major [f * n, (f+1) * n) row ids, each
  /// feature slice sorted by (value, y, row). Node ranges [begin, end)
  /// index into every feature slice simultaneously.
  simd::AlignedVector<uint32_t> feat_order_;
  std::vector<uint32_t> part_tmp_;   // stable-partition scratch
  std::vector<uint8_t> left_mask_;   // per-row split side of current node
  simd::AlignedVector<double> vals_; // gathered feature values, one node
  simd::AlignedVector<double> ys_;   // gathered targets, one node
  std::vector<uint32_t> labs_;       // gathered labels, one node
  std::vector<double> class_counts_; // node label histogram
  std::vector<double> left_counts_;  // running left label histogram
  std::vector<std::pair<double, double>> sort_buf_;  // per-node sort mode
};

}  // namespace arda::ml

#endif  // ARDA_ML_DECISION_TREE_H_
