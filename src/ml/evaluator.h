#ifndef ARDA_ML_EVALUATOR_H_
#define ARDA_ML_EVALUATOR_H_

#include <memory>
#include <vector>

#include "ml/dataset.h"
#include "ml/model.h"
#include "ml/split.h"

namespace arda::ml {

/// Scores feature subsets of one dataset on a fixed train/holdout split.
///
/// All of ARDA's comparisons (RIFS threshold sweep, exponential search,
/// wrapper selectors, final augmentation decisions) are "did the holdout
/// score improve?" questions, so the split is frozen at construction —
/// every candidate subset is judged on exactly the same rows.
///
/// Scores are "higher is better": accuracy for classification, negative
/// MAE for regression (see HigherIsBetterScore).
class Evaluator {
 public:
  /// Freezes a stratified train/holdout split of `data`.
  Evaluator(const Dataset& data, double test_fraction, uint64_t seed);

  /// Holdout score of the paper's *fixed* default estimator (a modest
  /// random forest) trained on the given feature subset. This is the fast
  /// inner-loop scorer used during feature selection.
  double ScoreFeatures(const std::vector<size_t>& features) const;

  /// ScoreFeatures over all features.
  double ScoreAllFeatures() const;

  /// Holdout score of the paper's final estimate: a lightly tuned random
  /// forest (two depth settings) plus, for classification, an RBF-kernel
  /// SVM — the best holdout score is reported (Section 7).
  double FinalScore(const std::vector<size_t>& features) const;

  /// Holdout score of a caller-supplied model on a feature subset.
  double ScoreModel(Model* model, const std::vector<size_t>& features) const;

  TaskType task() const { return train_.task; }
  size_t NumFeatures() const { return train_.NumFeatures(); }
  const Dataset& train() const { return train_; }
  const Dataset& test() const { return test_; }

  /// Fresh instance of the fixed default estimator.
  std::unique_ptr<Model> MakeDefaultModel() const;

 private:
  Dataset train_;
  Dataset test_;
  uint64_t seed_;
};

/// All feature indices [0, count).
std::vector<size_t> AllFeatureIndices(size_t count);

}  // namespace arda::ml

#endif  // ARDA_ML_EVALUATOR_H_
