#include "ml/linear.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace arda::ml {

namespace {

double SoftThreshold(double value, double threshold) {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

size_t CountClasses(const std::vector<double>& y) {
  double max_label = 0.0;
  for (double v : y) max_label = std::max(max_label, v);
  return static_cast<size_t>(std::lround(max_label)) + 1;
}

}  // namespace

// ---------------------------------------------------------------- Ridge --

RidgeRegression::RidgeRegression(double lambda) : lambda_(lambda) {
  ARDA_CHECK_GT(lambda, 0.0);
}

void RidgeRegression::Fit(const la::Matrix& x, const std::vector<double>& y) {
  ARDA_CHECK_EQ(x.rows(), y.size());
  stats_ = la::ComputeColumnStats(x);
  la::Matrix xs = la::Standardize(x, stats_);
  intercept_ = la::Mean(y);
  std::vector<double> centered(y.size());
  for (size_t i = 0; i < y.size(); ++i) centered[i] = y[i] - intercept_;
  Result<std::vector<double>> solved = la::RidgeSolve(xs, centered, lambda_);
  // Degenerate system (all-NaN features, injected fault): degrade to the
  // intercept-only model rather than carrying NaN weights into every
  // downstream prediction.
  weights_ = solved.ok() ? std::move(solved).value()
                         : std::vector<double>(xs.cols(), 0.0);
}

std::vector<double> RidgeRegression::Predict(const la::Matrix& x) const {
  ARDA_CHECK_EQ(x.cols(), weights_.size());
  la::Matrix xs = la::Standardize(x, stats_);
  std::vector<double> out = xs.MultiplyVec(weights_);
  for (double& v : out) v += intercept_;
  return out;
}

// ---------------------------------------------------------------- Lasso --

Lasso::Lasso(double alpha, size_t max_iters, double tolerance)
    : alpha_(alpha), max_iters_(max_iters), tolerance_(tolerance) {
  ARDA_CHECK_GE(alpha, 0.0);
}

void Lasso::Fit(const la::Matrix& x, const std::vector<double>& y) {
  ARDA_CHECK_EQ(x.rows(), y.size());
  const size_t n = x.rows();
  const size_t d = x.cols();
  stats_ = la::ComputeColumnStats(x);
  la::Matrix xs = la::Standardize(x, stats_);
  intercept_ = la::Mean(y);
  std::vector<double> residual(n);
  for (size_t i = 0; i < n; ++i) residual[i] = y[i] - intercept_;

  weights_.assign(d, 0.0);
  // Column squared norms (constant across iterations).
  std::vector<double> col_sq(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = xs.RowPtr(r);
    for (size_t c = 0; c < d; ++c) col_sq[c] += row[c] * row[c];
  }
  const double n_alpha = alpha_ * static_cast<double>(n);

  for (size_t iter = 0; iter < max_iters_; ++iter) {
    double max_delta = 0.0;
    for (size_t c = 0; c < d; ++c) {
      if (col_sq[c] <= 1e-12) continue;
      // rho = x_c^T (residual + w_c * x_c)
      double rho = 0.0;
      for (size_t r = 0; r < n; ++r) rho += xs(r, c) * residual[r];
      rho += weights_[c] * col_sq[c];
      double new_w = SoftThreshold(rho, n_alpha) / col_sq[c];
      double delta = new_w - weights_[c];
      if (delta != 0.0) {
        for (size_t r = 0; r < n; ++r) residual[r] -= delta * xs(r, c);
        weights_[c] = new_w;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < tolerance_) break;
  }
}

std::vector<double> Lasso::Predict(const la::Matrix& x) const {
  ARDA_CHECK_EQ(x.cols(), weights_.size());
  la::Matrix xs = la::Standardize(x, stats_);
  std::vector<double> out = xs.MultiplyVec(weights_);
  for (double& v : out) v += intercept_;
  return out;
}

size_t Lasso::NumNonZero() const {
  size_t count = 0;
  for (double w : weights_) count += (w != 0.0);
  return count;
}

// ------------------------------------------------------------- Logistic --

LogisticRegression::LogisticRegression(double l2, size_t max_iters,
                                       double learning_rate)
    : l2_(l2), max_iters_(max_iters), learning_rate_(learning_rate) {}

void LogisticRegression::Fit(const la::Matrix& x,
                             const std::vector<double>& y) {
  ARDA_CHECK_EQ(x.rows(), y.size());
  const size_t n = x.rows();
  const size_t d = x.cols();
  stats_ = la::ComputeColumnStats(x);
  la::Matrix xs = la::Standardize(x, stats_);
  num_classes_ = CountClasses(y);
  const size_t models = num_classes_ <= 2 ? 1 : num_classes_;
  weights_ = la::Matrix(models, d);
  intercepts_.assign(models, 0.0);

  std::vector<double> margin(n), grad(d);
  for (size_t m = 0; m < models; ++m) {
    const double positive = num_classes_ <= 2 ? 1.0 : static_cast<double>(m);
    std::vector<double> target(n);
    for (size_t i = 0; i < n; ++i) {
      target[i] = std::lround(y[i]) == std::lround(positive) ? 1.0 : 0.0;
    }
    std::vector<double> w(d, 0.0);
    double b = 0.0;
    double lr = learning_rate_;
    for (size_t iter = 0; iter < max_iters_; ++iter) {
      // margin = xs w + b; residual = sigmoid(margin) - target
      for (size_t i = 0; i < n; ++i) {
        const double* row = xs.RowPtr(i);
        double z = b;
        for (size_t c = 0; c < d; ++c) z += row[c] * w[c];
        margin[i] = Sigmoid(z) - target[i];
      }
      std::fill(grad.begin(), grad.end(), 0.0);
      double grad_b = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double* row = xs.RowPtr(i);
        const double g = margin[i];
        grad_b += g;
        for (size_t c = 0; c < d; ++c) grad[c] += g * row[c];
      }
      const double inv_n = 1.0 / static_cast<double>(n);
      double step_norm = 0.0;
      for (size_t c = 0; c < d; ++c) {
        double g = grad[c] * inv_n + l2_ * w[c];
        w[c] -= lr * g;
        step_norm += g * g;
      }
      b -= lr * grad_b * inv_n;
      if (std::sqrt(step_norm) * lr < 1e-7) break;
    }
    weights_.SetRow(m, w);
    intercepts_[m] = b;
  }
}

std::vector<double> LogisticRegression::Predict(const la::Matrix& x) const {
  ARDA_CHECK_EQ(x.cols(), weights_.cols());
  la::Matrix xs = la::Standardize(x, stats_);
  const size_t n = xs.rows();
  std::vector<double> out(n);
  if (num_classes_ <= 2) {
    for (size_t i = 0; i < n; ++i) {
      const double* row = xs.RowPtr(i);
      double z = intercepts_[0];
      for (size_t c = 0; c < xs.cols(); ++c) z += row[c] * weights_(0, c);
      out[i] = z >= 0.0 ? 1.0 : 0.0;
    }
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    const double* row = xs.RowPtr(i);
    double best_score = -1e300;
    size_t best_class = 0;
    for (size_t m = 0; m < num_classes_; ++m) {
      double z = intercepts_[m];
      for (size_t c = 0; c < xs.cols(); ++c) z += row[c] * weights_(m, c);
      if (z > best_score) {
        best_score = z;
        best_class = m;
      }
    }
    out[i] = static_cast<double>(best_class);
  }
  return out;
}

std::vector<double> LogisticRegression::CoefImportances() const {
  std::vector<double> out(weights_.cols(), 0.0);
  for (size_t m = 0; m < weights_.rows(); ++m) {
    for (size_t c = 0; c < weights_.cols(); ++c) {
      out[c] += std::fabs(weights_(m, c));
    }
  }
  if (weights_.rows() > 0) {
    for (double& v : out) v /= static_cast<double>(weights_.rows());
  }
  return out;
}

// ------------------------------------------------------------ LinearSvm --

LinearSvm::LinearSvm(double c, size_t max_iters, double learning_rate)
    : c_(c), max_iters_(max_iters), learning_rate_(learning_rate) {
  ARDA_CHECK_GT(c, 0.0);
}

void LinearSvm::Fit(const la::Matrix& x, const std::vector<double>& y) {
  ARDA_CHECK_EQ(x.rows(), y.size());
  const size_t n = x.rows();
  const size_t d = x.cols();
  stats_ = la::ComputeColumnStats(x);
  la::Matrix xs = la::Standardize(x, stats_);
  num_classes_ = CountClasses(y);
  const size_t models = num_classes_ <= 2 ? 1 : num_classes_;
  weights_ = la::Matrix(models, d);
  intercepts_.assign(models, 0.0);

  std::vector<double> grad(d);
  for (size_t m = 0; m < models; ++m) {
    const double positive = num_classes_ <= 2 ? 1.0 : static_cast<double>(m);
    std::vector<double> sign(n);
    for (size_t i = 0; i < n; ++i) {
      sign[i] = std::lround(y[i]) == std::lround(positive) ? 1.0 : -1.0;
    }
    std::vector<double> w(d, 0.0);
    double b = 0.0;
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t iter = 0; iter < max_iters_; ++iter) {
      // Squared-hinge loss: 1/(2C)||w||^2 + 1/n sum max(0, 1 - s_i z_i)^2
      std::fill(grad.begin(), grad.end(), 0.0);
      double grad_b = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double* row = xs.RowPtr(i);
        double z = b;
        for (size_t c = 0; c < d; ++c) z += row[c] * w[c];
        double slack = 1.0 - sign[i] * z;
        if (slack > 0.0) {
          double g = -2.0 * slack * sign[i];
          grad_b += g;
          for (size_t c = 0; c < d; ++c) grad[c] += g * row[c];
        }
      }
      const double lr = learning_rate_ / (1.0 + 0.05 * static_cast<double>(iter));
      double step_norm = 0.0;
      for (size_t c = 0; c < d; ++c) {
        double g = grad[c] * inv_n + w[c] / c_;
        w[c] -= lr * g;
        step_norm += g * g;
      }
      b -= lr * grad_b * inv_n;
      if (std::sqrt(step_norm) * lr < 1e-7) break;
    }
    weights_.SetRow(m, w);
    intercepts_[m] = b;
  }
}

std::vector<double> LinearSvm::Predict(const la::Matrix& x) const {
  ARDA_CHECK_EQ(x.cols(), weights_.cols());
  la::Matrix xs = la::Standardize(x, stats_);
  const size_t n = xs.rows();
  std::vector<double> out(n);
  if (num_classes_ <= 2) {
    for (size_t i = 0; i < n; ++i) {
      const double* row = xs.RowPtr(i);
      double z = intercepts_[0];
      for (size_t c = 0; c < xs.cols(); ++c) z += row[c] * weights_(0, c);
      out[i] = z >= 0.0 ? 1.0 : 0.0;
    }
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    const double* row = xs.RowPtr(i);
    double best_score = -1e300;
    size_t best_class = 0;
    for (size_t m = 0; m < num_classes_; ++m) {
      double z = intercepts_[m];
      for (size_t c = 0; c < xs.cols(); ++c) z += row[c] * weights_(m, c);
      if (z > best_score) {
        best_score = z;
        best_class = m;
      }
    }
    out[i] = static_cast<double>(best_class);
  }
  return out;
}

std::vector<double> LinearSvm::CoefImportances() const {
  std::vector<double> out(weights_.cols(), 0.0);
  for (size_t m = 0; m < weights_.rows(); ++m) {
    for (size_t c = 0; c < weights_.cols(); ++c) {
      out[c] += std::fabs(weights_(m, c));
    }
  }
  if (weights_.rows() > 0) {
    for (double& v : out) v /= static_cast<double>(weights_.rows());
  }
  return out;
}

}  // namespace arda::ml
