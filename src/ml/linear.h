#ifndef ARDA_ML_LINEAR_H_
#define ARDA_ML_LINEAR_H_

#include <vector>

#include "la/linalg.h"
#include "ml/model.h"

namespace arda::ml {

/// Ridge-regularized linear least squares regression. Features are
/// z-scored internally; the intercept is fit on the standardized scale.
class RidgeRegression : public Model {
 public:
  explicit RidgeRegression(double lambda = 1e-3);

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

  /// Weights on the standardized feature scale (no intercept).
  const std::vector<double>& weights() const { return weights_; }

 private:
  double lambda_;
  la::ColumnStats stats_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

/// L1-regularized least squares fit by cyclic coordinate descent on
/// standardized features. Regression-only; the magnitude of the learned
/// weights drives the Lasso feature ranker.
class Lasso : public Model {
 public:
  /// `alpha` is the L1 penalty on the standardized scale.
  explicit Lasso(double alpha = 0.05, size_t max_iters = 200,
                 double tolerance = 1e-6);

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

  const std::vector<double>& weights() const { return weights_; }
  /// Count of non-zero standardized weights after fitting.
  size_t NumNonZero() const;

 private:
  double alpha_;
  size_t max_iters_;
  double tolerance_;
  la::ColumnStats stats_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

/// Multiclass logistic regression trained one-vs-rest with full-batch
/// gradient descent and L2 regularization on standardized features.
class LogisticRegression : public Model {
 public:
  explicit LogisticRegression(double l2 = 1e-3, size_t max_iters = 200,
                              double learning_rate = 0.5);

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

  /// Per-feature importance: mean |weight| over the one-vs-rest models.
  std::vector<double> CoefImportances() const;

 private:
  double l2_;
  size_t max_iters_;
  double learning_rate_;
  la::ColumnStats stats_;
  la::Matrix weights_;  // classes x features (standardized scale)
  std::vector<double> intercepts_;
  size_t num_classes_ = 0;
};

/// Multiclass linear SVM (squared hinge, one-vs-rest) trained with
/// full-batch subgradient descent on standardized features.
class LinearSvm : public Model {
 public:
  explicit LinearSvm(double c = 1.0, size_t max_iters = 200,
                     double learning_rate = 0.2);

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

  /// Per-feature importance: mean |weight| over the one-vs-rest models.
  std::vector<double> CoefImportances() const;

 private:
  double c_;
  size_t max_iters_;
  double learning_rate_;
  la::ColumnStats stats_;
  la::Matrix weights_;  // classes x features (standardized scale)
  std::vector<double> intercepts_;
  size_t num_classes_ = 0;
};

}  // namespace arda::ml

#endif  // ARDA_ML_LINEAR_H_
