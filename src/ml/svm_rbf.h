#ifndef ARDA_ML_SVM_RBF_H_
#define ARDA_ML_SVM_RBF_H_

#include <vector>

#include "la/linalg.h"
#include "ml/model.h"

namespace arda::ml {

/// Hyperparameters for the RBF-kernel SVM.
struct RbfSvmConfig {
  /// Soft-margin penalty.
  double c = 1.0;
  /// Kernel width; 0 means the "scale" heuristic 1 / (d * var(X)).
  double gamma = 0.0;
  /// SMO stopping tolerance on KKT violations.
  double tolerance = 1e-3;
  /// Upper bound on full passes over the training set without progress.
  size_t max_passes = 5;
  /// Hard cap on SMO iterations (safety valve).
  size_t max_iters = 20000;
  uint64_t seed = 29;
};

/// Kernel SVM with an RBF kernel trained by simplified SMO; multiclass via
/// one-vs-rest. This is the paper's secondary classification estimator
/// ("SVM with RBF kernel"). Classification only.
class RbfSvm : public Model {
 public:
  explicit RbfSvm(const RbfSvmConfig& config = {});

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

 private:
  /// One binary one-vs-rest machine: dual coefficients over support rows.
  struct BinaryMachine {
    std::vector<double> alpha_times_sign;  // alpha_i * s_i per support vector
    std::vector<size_t> support;           // row indices into the stored X
    double bias = 0.0;
  };

  double Kernel(const double* a, const double* b, size_t d) const;
  BinaryMachine TrainBinary(const la::Matrix& xs,
                            const std::vector<double>& sign) const;
  double DecisionValue(const BinaryMachine& machine, const la::Matrix& xs,
                       const double* row) const;

  RbfSvmConfig config_;
  double gamma_ = 1.0;
  la::ColumnStats stats_;
  la::Matrix train_x_;  // standardized training matrix (support basis)
  std::vector<BinaryMachine> machines_;
  size_t num_classes_ = 0;
};

}  // namespace arda::ml

#endif  // ARDA_ML_SVM_RBF_H_
