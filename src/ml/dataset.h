#ifndef ARDA_ML_DATASET_H_
#define ARDA_ML_DATASET_H_

#include <string>
#include <vector>

#include "la/matrix.h"

namespace arda::ml {

/// Learning task kind. Classification labels are small non-negative
/// integers stored as doubles in `y`; regression targets are arbitrary
/// doubles.
enum class TaskType { kRegression, kClassification };

/// Returns "regression" or "classification".
const char* TaskTypeName(TaskType task);

/// A fully numeric supervised-learning dataset: feature matrix, target
/// vector, feature names and task kind. Produced by encoding an augmented
/// DataFrame; consumed by models, rankers and selectors.
struct Dataset {
  la::Matrix x;
  std::vector<double> y;
  std::vector<std::string> feature_names;
  TaskType task = TaskType::kRegression;

  size_t NumRows() const { return x.rows(); }
  size_t NumFeatures() const { return x.cols(); }

  /// Number of distinct classes (max label + 1); 0 for regression.
  size_t NumClasses() const;

  /// Returns the dataset restricted to the given feature indices.
  Dataset SelectFeatures(const std::vector<size_t>& features) const;

  /// Returns the dataset restricted to the given row indices (repeats OK).
  Dataset SelectRows(const std::vector<size_t>& rows) const;
};

/// Distinct class labels present in `y`, sorted ascending.
std::vector<int> DistinctLabels(const std::vector<double>& y);

}  // namespace arda::ml

#endif  // ARDA_ML_DATASET_H_
