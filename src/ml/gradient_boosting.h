#ifndef ARDA_ML_GRADIENT_BOOSTING_H_
#define ARDA_ML_GRADIENT_BOOSTING_H_

#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace arda::ml {

/// Hyperparameters for gradient-boosted trees.
struct BoostingConfig {
  TaskType task = TaskType::kRegression;
  size_t num_rounds = 60;
  double learning_rate = 0.1;
  size_t max_depth = 3;
  size_t min_samples_leaf = 3;
  /// Rows sampled (without replacement) per round; 1.0 = all.
  double subsample = 0.8;
  uint64_t seed = 37;
};

/// Gradient-boosted shallow CART trees: squared loss for regression,
/// one-vs-rest logistic loss for classification. Rounds out the model zoo
/// the random-search AutoML baseline draws from (real AutoML systems lean
/// heavily on boosting for tabular data).
class GradientBoosting : public Model {
 public:
  explicit GradientBoosting(const BoostingConfig& config);

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

  size_t NumRounds() const;

 private:
  /// One boosted ensemble (regression, or one one-vs-rest class).
  struct Ensemble {
    double base_score = 0.0;
    std::vector<DecisionTree> trees;
  };

  std::vector<double> RawScores(const Ensemble& ensemble,
                                const la::Matrix& x) const;
  Ensemble FitBinary(const la::Matrix& x, const std::vector<double>& target,
                     bool logistic, Rng* rng) const;

  BoostingConfig config_;
  std::vector<Ensemble> ensembles_;
  size_t num_classes_ = 0;
};

}  // namespace arda::ml

#endif  // ARDA_ML_GRADIENT_BOOSTING_H_
