#include "ml/sparse_regression.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace arda::ml {

L21SparseRegression::L21SparseRegression(const SparseRegressionConfig& config)
    : config_(config) {
  ARDA_CHECK_GE(config.gamma, 0.0);
}

void L21SparseRegression::Fit(const la::Matrix& x,
                              const std::vector<double>& y) {
  ARDA_CHECK_EQ(x.rows(), y.size());
  const size_t n = x.rows();
  const size_t d = x.cols();
  stats_ = la::ComputeColumnStats(x);
  la::Matrix xs = la::Standardize(x, stats_);

  // Build the target matrix Y (n x c) and per-output offsets.
  size_t c;
  la::Matrix targets;
  if (config_.task == TaskType::kClassification) {
    double max_label = 0.0;
    for (double v : y) max_label = std::max(max_label, v);
    num_classes_ = static_cast<size_t>(std::lround(max_label)) + 1;
    c = num_classes_;
    targets = la::Matrix(n, c);
    for (size_t i = 0; i < n; ++i) {
      targets(i, static_cast<size_t>(std::lround(y[i]))) = 1.0;
    }
  } else {
    num_classes_ = 0;
    c = 1;
    targets = la::Matrix(n, 1);
    for (size_t i = 0; i < n; ++i) targets(i, 0) = y[i];
  }
  output_offsets_.assign(c, 0.0);
  for (size_t j = 0; j < c; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += targets(i, j);
    mean /= static_cast<double>(n);
    output_offsets_[j] = mean;
    for (size_t i = 0; i < n; ++i) targets(i, j) -= mean;
  }

  w_ = la::Matrix(d, c);
  const double eps = config_.epsilon;

  // Smoothed objective sum_i sqrt(||r_i||^2 + eps) + gamma sum_j
  // sqrt(||w_j||^2 + eps), optionally with its gradient.
  la::Matrix residual(n, c);
  auto evaluate = [&](const la::Matrix& w, la::Matrix* grad) {
    residual = xs.Multiply(w);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < c; ++j) residual(i, j) -= targets(i, j);
    }
    double objective = 0.0;
    std::vector<double> row_scale(n);
    for (size_t i = 0; i < n; ++i) {
      double norm_sq = eps;
      const double* row = residual.RowPtr(i);
      for (size_t j = 0; j < c; ++j) norm_sq += row[j] * row[j];
      double norm = std::sqrt(norm_sq);
      objective += norm;
      row_scale[i] = 1.0 / norm;
    }
    if (grad != nullptr) {
      // grad = X^T diag(row_scale) residual + gamma * row-normalized W.
      for (size_t fi = 0; fi < d; ++fi) {
        for (size_t j = 0; j < c; ++j) (*grad)(fi, j) = 0.0;
      }
      for (size_t i = 0; i < n; ++i) {
        const double* xrow = xs.RowPtr(i);
        const double* rrow = residual.RowPtr(i);
        const double scale = row_scale[i];
        for (size_t fi = 0; fi < d; ++fi) {
          const double xv = xrow[fi] * scale;
          if (xv == 0.0) continue;
          double* grow = grad->RowPtr(fi);
          for (size_t j = 0; j < c; ++j) grow[j] += xv * rrow[j];
        }
      }
    }
    for (size_t fi = 0; fi < d; ++fi) {
      double norm_sq = eps;
      const double* wrow = w.RowPtr(fi);
      for (size_t j = 0; j < c; ++j) norm_sq += wrow[j] * wrow[j];
      double norm = std::sqrt(norm_sq);
      objective += config_.gamma * norm;
      if (grad != nullptr) {
        const double scale = config_.gamma / norm;
        double* grow = grad->RowPtr(fi);
        for (size_t j = 0; j < c; ++j) grow[j] += scale * wrow[j];
      }
    }
    return objective;
  };

  // Gradient descent with backtracking line search: halve the step until
  // the objective decreases, gently grow it after accepted steps. This
  // keeps the per-iteration cost linear in nnz(X) while converging far
  // more reliably than a fixed schedule on the non-smooth l2,1 terms.
  la::Matrix grad(d, c);
  la::Matrix candidate(d, c);
  double lr = config_.learning_rate;
  double objective = evaluate(w_, &grad);
  final_objective_ = objective;
  for (size_t iter = 0; iter < config_.max_iters; ++iter) {
    bool accepted = false;
    for (int attempt = 0; attempt < 20; ++attempt) {
      for (size_t fi = 0; fi < d; ++fi) {
        const double* wrow = w_.RowPtr(fi);
        const double* grow = grad.RowPtr(fi);
        double* crow = candidate.RowPtr(fi);
        for (size_t j = 0; j < c; ++j) crow[j] = wrow[j] - lr * grow[j];
      }
      double new_objective = evaluate(candidate, nullptr);
      if (new_objective <= objective) {
        bool converged = objective - new_objective <
                         config_.tolerance * std::max(1.0, objective);
        std::swap(w_, candidate);
        objective = new_objective;
        lr = std::min(lr * 1.25, 1e3);
        accepted = true;
        if (converged) iter = config_.max_iters;  // stop outer loop
        break;
      }
      lr *= 0.5;
      if (lr < 1e-12) break;
    }
    if (!accepted) break;
    if (iter < config_.max_iters) {
      objective = evaluate(w_, &grad);
    }
  }
  final_objective_ = objective;
}

std::vector<double> L21SparseRegression::Predict(const la::Matrix& x) const {
  ARDA_CHECK_EQ(x.cols(), w_.rows());
  la::Matrix xs = la::Standardize(x, stats_);
  la::Matrix scores = xs.Multiply(w_);
  const size_t n = xs.rows();
  std::vector<double> out(n);
  if (config_.task == TaskType::kRegression) {
    for (size_t i = 0; i < n; ++i) out[i] = scores(i, 0) + output_offsets_[0];
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    size_t best = 0;
    double best_score = -1e300;
    for (size_t j = 0; j < num_classes_; ++j) {
      double s = scores(i, j) + output_offsets_[j];
      if (s > best_score) {
        best_score = s;
        best = j;
      }
    }
    out[i] = static_cast<double>(best);
  }
  return out;
}

std::vector<double> L21SparseRegression::FeatureNorms() const {
  std::vector<double> norms(w_.rows(), 0.0);
  for (size_t fi = 0; fi < w_.rows(); ++fi) {
    double sum = 0.0;
    const double* row = w_.RowPtr(fi);
    for (size_t j = 0; j < w_.cols(); ++j) sum += row[j] * row[j];
    norms[fi] = std::sqrt(sum);
  }
  return norms;
}

}  // namespace arda::ml
