#ifndef ARDA_ML_KNN_H_
#define ARDA_ML_KNN_H_

#include <cstddef>
#include <vector>

#include "la/linalg.h"
#include "ml/model.h"
#include "simd/aligned.h"

namespace arda::ml {

/// Hyperparameters for k-nearest-neighbours prediction.
struct KnnConfig {
  TaskType task = TaskType::kRegression;
  size_t k = 5;
  /// Weight neighbours by inverse distance rather than uniformly.
  bool distance_weighted = false;
};

/// Brute-force k-NN on standardized features: majority vote for
/// classification, (weighted) mean for regression. Quadratic in the
/// number of rows, intended for coreset-scale data; rounds out the model
/// zoo and gives the Relief family a reference predictor.
class KNearestNeighbors : public Model {
 public:
  explicit KNearestNeighbors(const KnnConfig& config = {});

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

 private:
  KnnConfig config_;
  la::ColumnStats stats_;
  /// Standardized training rows, row-major in a 64-byte-aligned buffer so
  /// the batch distance kernel's 32-byte loads never straddle cache lines
  /// (a ~25% penalty on the matrix sweep; see DESIGN.md "SIMD dispatch").
  simd::AlignedVector<double> train_x_;
  size_t n_train_ = 0;
  size_t dims_ = 0;
  std::vector<double> train_y_;
  size_t num_classes_ = 0;
};

}  // namespace arda::ml

#endif  // ARDA_ML_KNN_H_
