#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "simd/simd.h"
#include "util/check.h"

namespace arda::ml {

KNearestNeighbors::KNearestNeighbors(const KnnConfig& config)
    : config_(config) {
  ARDA_CHECK_GT(config.k, 0u);
}

void KNearestNeighbors::Fit(const la::Matrix& x,
                            const std::vector<double>& y) {
  ARDA_CHECK_EQ(x.rows(), y.size());
  ARDA_CHECK_GT(x.rows(), 0u);
  stats_ = la::ComputeColumnStats(x);
  la::Matrix standardized = la::Standardize(x, stats_);
  n_train_ = x.rows();
  dims_ = x.cols();
  train_x_.assign(standardized.data().begin(), standardized.data().end());
  train_y_ = y;
  if (config_.task == TaskType::kClassification) {
    double max_label = *std::max_element(y.begin(), y.end());
    num_classes_ = static_cast<size_t>(std::lround(max_label)) + 1;
  }
}

std::vector<double> KNearestNeighbors::Predict(const la::Matrix& x) const {
  ARDA_CHECK_GT(n_train_, 0u);
  ARDA_CHECK_EQ(x.cols(), dims_);
  la::Matrix xs = la::Standardize(x, stats_);
  const size_t n_train = n_train_;
  const size_t k = std::min(config_.k, n_train);

  std::vector<double> out(xs.rows());
  std::vector<double> d2(n_train);
  std::vector<std::pair<double, size_t>> distances(n_train);
  for (size_t q = 0; q < xs.rows(); ++q) {
    const double* query = xs.RowPtr(q);
    // Batch kernel over the contiguous row-major training matrix; each
    // d2[t] is bit-identical to the per-pair SquaredDistance call.
    simd::SquaredDistanceToMany(query, train_x_.data(), n_train, dims_,
                                d2.data());
    for (size_t t = 0; t < n_train; ++t) {
      distances[t] = {d2[t], t};
    }
    std::partial_sort(distances.begin(),
                      distances.begin() + static_cast<ptrdiff_t>(k),
                      distances.end());
    if (config_.task == TaskType::kRegression) {
      double total_weight = 0.0;
      double sum = 0.0;
      for (size_t i = 0; i < k; ++i) {
        double weight =
            config_.distance_weighted
                ? 1.0 / (std::sqrt(distances[i].first) + 1e-9)
                : 1.0;
        sum += weight * train_y_[distances[i].second];
        total_weight += weight;
      }
      out[q] = sum / total_weight;
    } else {
      std::vector<double> votes(num_classes_, 0.0);
      for (size_t i = 0; i < k; ++i) {
        double weight =
            config_.distance_weighted
                ? 1.0 / (std::sqrt(distances[i].first) + 1e-9)
                : 1.0;
        size_t label = static_cast<size_t>(
            std::lround(train_y_[distances[i].second]));
        if (label < num_classes_) votes[label] += weight;
      }
      size_t best = 0;
      for (size_t c = 1; c < num_classes_; ++c) {
        if (votes[c] > votes[best]) best = c;
      }
      out[q] = static_cast<double>(best);
    }
  }
  return out;
}

}  // namespace arda::ml
