#ifndef ARDA_ML_RANDOM_FOREST_H_
#define ARDA_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace arda::ml {

/// Hyperparameters for a random forest.
struct ForestConfig {
  TaskType task = TaskType::kRegression;
  size_t num_trees = 40;
  size_t max_depth = 12;
  size_t min_samples_leaf = 1;
  /// Features per split; 0 means sqrt(d) (the usual forest default).
  size_t max_features = 0;
  /// Bootstrap sample size as a fraction of n.
  double bootstrap_fraction = 1.0;
  uint64_t seed = 13;
  /// Threads used to fit/predict trees: 0 = hardware concurrency,
  /// 1 = serial. Results are bit-identical for every value (bootstrap
  /// samples and tree seeds are pre-drawn serially; reductions happen in
  /// tree order).
  size_t num_threads = 0;
};

/// Bagged CART ensemble: majority vote for classification, mean for
/// regression. Exposes averaged impurity importances, which both the
/// random-forest feature ranker and RIFS consume.
class RandomForest : public Model {
 public:
  explicit RandomForest(const ForestConfig& config);

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

  /// Importances averaged over trees, normalized to sum to 1.
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

  size_t NumTrees() const { return trees_.size(); }

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  std::vector<double> importances_;
  size_t num_classes_ = 0;
};

}  // namespace arda::ml

#endif  // ARDA_ML_RANDOM_FOREST_H_
