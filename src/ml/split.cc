#include "ml/split.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace arda::ml {

namespace {

// Row indices grouped by integer label, groups in ascending label order
// and rows in ascending row order within each group — the same iteration
// order the old std::map produced, without per-label node allocations.
std::vector<std::pair<int, std::vector<size_t>>> GroupByLabel(
    const std::vector<double>& y) {
  const size_t n = y.size();
  std::vector<std::pair<int, size_t>> tagged(n);
  for (size_t i = 0; i < n; ++i) {
    tagged[i] = {static_cast<int>(std::lround(y[i])), i};
  }
  std::sort(tagged.begin(), tagged.end());
  std::vector<std::pair<int, std::vector<size_t>>> groups;
  for (size_t i = 0; i < n;) {
    size_t j = i;
    while (j < n && tagged[j].first == tagged[i].first) ++j;
    std::vector<size_t> rows;
    rows.reserve(j - i);
    for (size_t k = i; k < j; ++k) rows.push_back(tagged[k].second);
    groups.emplace_back(tagged[i].first, std::move(rows));
    i = j;
  }
  return groups;
}

}  // namespace

TrainTestSplit MakeTrainTestSplit(const Dataset& data, double test_fraction,
                                  Rng* rng) {
  ARDA_CHECK_GT(test_fraction, 0.0);
  ARDA_CHECK_LT(test_fraction, 1.0);
  const size_t n = data.NumRows();
  ARDA_CHECK_GE(n, 2u);

  std::vector<size_t> test_idx;
  std::vector<size_t> train_idx;
  if (data.task == TaskType::kClassification) {
    for (auto& [label, rows] : GroupByLabel(data.y)) {
      std::vector<size_t> shuffled = rows;
      rng->Shuffle(&shuffled);
      size_t test_count = static_cast<size_t>(
          std::lround(test_fraction * static_cast<double>(shuffled.size())));
      // Keep at least one row on each side for classes with >= 2 rows.
      if (shuffled.size() >= 2) {
        if (test_count == 0) test_count = 1;
        if (test_count == shuffled.size()) test_count = shuffled.size() - 1;
      } else {
        test_count = 0;  // singleton classes stay in train
      }
      for (size_t i = 0; i < shuffled.size(); ++i) {
        (i < test_count ? test_idx : train_idx).push_back(shuffled[i]);
      }
    }
  } else {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    rng->Shuffle(&order);
    size_t test_count = static_cast<size_t>(
        std::lround(test_fraction * static_cast<double>(n)));
    if (test_count == 0) test_count = 1;
    if (test_count == n) test_count = n - 1;
    for (size_t i = 0; i < n; ++i) {
      (i < test_count ? test_idx : train_idx).push_back(order[i]);
    }
  }

  TrainTestSplit split;
  split.train = data.SelectRows(train_idx);
  split.test = data.SelectRows(test_idx);
  split.train_indices = std::move(train_idx);
  split.test_indices = std::move(test_idx);
  return split;
}

std::vector<std::vector<size_t>> MakeKFoldIndices(const Dataset& data,
                                                  size_t folds, Rng* rng) {
  ARDA_CHECK_GE(folds, 2u);
  const size_t n = data.NumRows();
  std::vector<std::vector<size_t>> out(folds);
  if (data.task == TaskType::kClassification) {
    for (auto& [label, rows] : GroupByLabel(data.y)) {
      std::vector<size_t> shuffled = rows;
      rng->Shuffle(&shuffled);
      for (size_t i = 0; i < shuffled.size(); ++i) {
        out[i % folds].push_back(shuffled[i]);
      }
    }
  } else {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    rng->Shuffle(&order);
    for (size_t i = 0; i < n; ++i) {
      out[i % folds].push_back(order[i]);
    }
  }
  return out;
}

}  // namespace arda::ml
