#ifndef ARDA_ML_SPARSE_REGRESSION_H_
#define ARDA_ML_SPARSE_REGRESSION_H_

#include <vector>

#include "la/linalg.h"
#include "ml/model.h"

namespace arda::ml {

/// Configuration for the l2,1-regularized sparse regression of Eq. (1) in
/// the paper:  min_W ||X W - Y||_{2,1} + gamma ||W||_{2,1}.
struct SparseRegressionConfig {
  TaskType task = TaskType::kRegression;
  /// Row-sparsity penalty gamma.
  double gamma = 0.1;
  size_t max_iters = 300;
  double learning_rate = 0.05;
  /// Smoothing epsilon for the non-differentiable l2 norms.
  double epsilon = 1e-6;
  /// Convergence threshold on the relative objective decrease.
  double tolerance = 1e-7;
};

/// Solver for the paper's sparse-regression ranking objective. The
/// l2,1-norm over rows of W drives entire features to zero jointly across
/// outputs, so the per-feature row norms give a noise-robust feature
/// ranking (Section 6.2). Optimized with smoothed gradient descent and a
/// diminishing step size on standardized features.
///
/// For regression Y has one column (the centered target); for
/// classification Y is the one-hot label matrix, and Predict returns the
/// argmax output.
class L21SparseRegression : public Model {
 public:
  explicit L21SparseRegression(const SparseRegressionConfig& config = {});

  void Fit(const la::Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const la::Matrix& x) const override;

  /// Per-feature l2 norm of the corresponding row of W; the sparse
  /// regression feature score.
  std::vector<double> FeatureNorms() const;

  /// Final value of the smoothed objective after fitting.
  double final_objective() const { return final_objective_; }

 private:
  SparseRegressionConfig config_;
  la::ColumnStats stats_;
  la::Matrix w_;  // d x c
  std::vector<double> output_offsets_;
  size_t num_classes_ = 0;
  double final_objective_ = 0.0;
};

}  // namespace arda::ml

#endif  // ARDA_ML_SPARSE_REGRESSION_H_
