#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace arda::ml {

RandomForest::RandomForest(const ForestConfig& config) : config_(config) {}

void RandomForest::Fit(const la::Matrix& x, const std::vector<double>& y) {
  trace::StageScope scope("forest.fit");
  metrics::IncrementCounter("ml.forest_fits_total");
  ARDA_CHECK_EQ(x.rows(), y.size());
  ARDA_CHECK_GT(x.rows(), 0u);
  ARDA_CHECK_GT(config_.num_trees, 0u);
  trees_.clear();
  importances_.assign(x.cols(), 0.0);

  if (config_.task == TaskType::kClassification) {
    double max_label = *std::max_element(y.begin(), y.end());
    num_classes_ = static_cast<size_t>(std::lround(max_label)) + 1;
  }

  size_t max_features = config_.max_features;
  if (max_features == 0) {
    max_features = std::max<size_t>(
        1, static_cast<size_t>(std::lround(
               std::sqrt(static_cast<double>(x.cols())))));
  }

  Rng rng(config_.seed);
  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(std::lround(
             config_.bootstrap_fraction * static_cast<double>(x.rows()))));

  // Pre-draw every tree's bootstrap sample and seed serially, in the same
  // interleaved order the serial loop consumed the stream, so fitting is
  // embarrassingly parallel yet bit-identical for any thread count.
  std::vector<std::vector<size_t>> bootstrap_rows(config_.num_trees);
  trees_.reserve(config_.num_trees);
  for (size_t t = 0; t < config_.num_trees; ++t) {
    bootstrap_rows[t] = rng.SampleWithReplacement(x.rows(), sample_size);
    TreeConfig tree_config;
    tree_config.task = config_.task;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.max_features = max_features;
    tree_config.seed = rng.NextUint64();
    trees_.emplace_back(tree_config);
  }

  ParallelFor(config_.num_trees, config_.num_threads, [&](size_t t) {
    const std::vector<size_t>& rows = bootstrap_rows[t];
    la::Matrix xb = x.SelectRows(rows);
    std::vector<double> yb(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) yb[i] = y[rows[i]];
    trees_[t].Fit(xb, yb);
  });

  // Ordered reduction: accumulate importances in tree order, exactly as
  // the serial loop did.
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& imp = tree.feature_importances();
    for (size_t f = 0; f < imp.size(); ++f) importances_[f] += imp[f];
  }

  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
}

std::vector<double> RandomForest::Predict(const la::Matrix& x) const {
  trace::StageScope scope("forest.predict");
  ARDA_CHECK(!trees_.empty());
  const size_t n = x.rows();
  // Per-tree predictions land in tree-indexed slots; both reductions below
  // run in tree order, so results match the serial loop bit for bit.
  std::vector<std::vector<double>> per_tree(trees_.size());
  ParallelFor(trees_.size(), config_.num_threads, [&](size_t t) {
    per_tree[t] = trees_[t].Predict(x);
  });
  if (config_.task == TaskType::kRegression) {
    std::vector<double> sum(n, 0.0);
    for (const std::vector<double>& pred : per_tree) {
      for (size_t i = 0; i < n; ++i) sum[i] += pred[i];
    }
    const double inv = 1.0 / static_cast<double>(trees_.size());
    for (double& v : sum) v *= inv;
    return sum;
  }
  // Classification: majority vote.
  std::vector<std::vector<uint32_t>> votes(n,
                                           std::vector<uint32_t>(num_classes_));
  for (const std::vector<double>& pred : per_tree) {
    for (size_t i = 0; i < n; ++i) {
      size_t label = static_cast<size_t>(std::lround(pred[i]));
      if (label < num_classes_) ++votes[i][label];
    }
  }
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    size_t best = 0;
    for (size_t c = 1; c < num_classes_; ++c) {
      if (votes[i][c] > votes[i][best]) best = c;
    }
    out[i] = static_cast<double>(best);
  }
  return out;
}

}  // namespace arda::ml
