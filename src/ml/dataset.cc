#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.h"

namespace arda::ml {

const char* TaskTypeName(TaskType task) {
  return task == TaskType::kRegression ? "regression" : "classification";
}

size_t Dataset::NumClasses() const {
  if (task != TaskType::kClassification || y.empty()) return 0;
  double max_label = *std::max_element(y.begin(), y.end());
  ARDA_CHECK_GE(max_label, 0.0);
  return static_cast<size_t>(std::lround(max_label)) + 1;
}

Dataset Dataset::SelectFeatures(const std::vector<size_t>& features) const {
  Dataset out;
  out.x = x.SelectCols(features);
  out.y = y;
  out.task = task;
  out.feature_names.reserve(features.size());
  for (size_t f : features) {
    ARDA_CHECK_LT(f, feature_names.size());
    out.feature_names.push_back(feature_names[f]);
  }
  return out;
}

Dataset Dataset::SelectRows(const std::vector<size_t>& rows) const {
  Dataset out;
  out.x = x.SelectRows(rows);
  out.task = task;
  out.feature_names = feature_names;
  out.y.reserve(rows.size());
  for (size_t r : rows) {
    ARDA_CHECK_LT(r, y.size());
    out.y.push_back(y[r]);
  }
  return out;
}

std::vector<int> DistinctLabels(const std::vector<double>& y) {
  std::set<int> labels;
  for (double v : y) labels.insert(static_cast<int>(std::lround(v)));
  return std::vector<int>(labels.begin(), labels.end());
}

}  // namespace arda::ml
