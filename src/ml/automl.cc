#include "ml/automl.h"

#include <algorithm>
#include <cmath>

#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/split.h"
#include "ml/svm_rbf.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace arda::ml {

namespace {

struct Candidate {
  std::unique_ptr<Model> model;
  std::string description;
};

Candidate SampleCandidate(TaskType task, size_t num_rows, Rng* rng) {
  // Family weights: forests and boosting dominate the zoo, mirroring
  // what the paper's AutoML systems end up picking for tabular data.
  const int family = static_cast<int>(rng->UniformUint64(7));
  if (family == 6) {
    BoostingConfig config;
    config.task = task;
    config.num_rounds = static_cast<size_t>(rng->UniformInt(30, 120));
    config.learning_rate = rng->Uniform(0.03, 0.3);
    config.max_depth = static_cast<size_t>(rng->UniformInt(2, 5));
    config.seed = rng->NextUint64();
    return {std::make_unique<GradientBoosting>(config),
            StrFormat("gbdt(rounds=%zu, lr=%.2f, depth=%zu)",
                      config.num_rounds, config.learning_rate,
                      config.max_depth)};
  }
  if (family <= 2) {
    ForestConfig config;
    config.task = task;
    config.num_trees = static_cast<size_t>(rng->UniformInt(15, 60));
    config.max_depth = static_cast<size_t>(rng->UniformInt(4, 16));
    config.min_samples_leaf = static_cast<size_t>(rng->UniformInt(1, 4));
    config.seed = rng->NextUint64();
    return {std::make_unique<RandomForest>(config),
            StrFormat("random_forest(trees=%zu, depth=%zu)",
                      config.num_trees, config.max_depth)};
  }
  if (family == 3) {
    TreeConfig config;
    config.task = task;
    config.max_depth = static_cast<size_t>(rng->UniformInt(3, 14));
    config.min_samples_leaf = static_cast<size_t>(rng->UniformInt(1, 8));
    config.seed = rng->NextUint64();
    return {std::make_unique<DecisionTree>(config),
            StrFormat("decision_tree(depth=%zu)", config.max_depth)};
  }
  if (task == TaskType::kRegression) {
    if (family == 4) {
      double lambda = std::pow(10.0, rng->Uniform(-4.0, 1.0));
      return {std::make_unique<RidgeRegression>(lambda),
              StrFormat("ridge(lambda=%.4g)", lambda)};
    }
    double alpha = std::pow(10.0, rng->Uniform(-3.0, 0.0));
    return {std::make_unique<Lasso>(alpha),
            StrFormat("lasso(alpha=%.4g)", alpha)};
  }
  if (family == 4) {
    double l2 = std::pow(10.0, rng->Uniform(-4.0, 0.0));
    return {std::make_unique<LogisticRegression>(l2),
            StrFormat("logistic(l2=%.4g)", l2)};
  }
  if (num_rows <= 2000 && rng->Bernoulli(0.5)) {
    RbfSvmConfig config;
    config.c = std::pow(10.0, rng->Uniform(-1.0, 1.5));
    config.seed = rng->NextUint64();
    return {std::make_unique<RbfSvm>(config),
            StrFormat("rbf_svm(C=%.4g)", config.c)};
  }
  double c = std::pow(10.0, rng->Uniform(-1.0, 1.5));
  return {std::make_unique<LinearSvm>(c),
          StrFormat("linear_svm(C=%.4g)", c)};
}

}  // namespace

AutoMlResult RunRandomSearchAutoMl(const Dataset& data,
                                   const AutoMlConfig& config) {
  Rng rng(config.seed);
  TrainTestSplit split =
      MakeTrainTestSplit(data, config.test_fraction, &rng);
  Stopwatch watch;
  AutoMlResult result;
  while (result.configs_tried < config.max_configs &&
         watch.ElapsedSeconds() < config.time_budget_seconds) {
    Candidate candidate = SampleCandidate(data.task, data.NumRows(), &rng);
    candidate.model->Fit(split.train.x, split.train.y);
    std::vector<double> pred = candidate.model->Predict(split.test.x);
    double score = HigherIsBetterScore(data.task, split.test.y, pred);
    ++result.configs_tried;
    if (score > result.best_score) {
      result.best_score = score;
      result.best_config = std::move(candidate.description);
    }
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace arda::ml
