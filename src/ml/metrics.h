#ifndef ARDA_ML_METRICS_H_
#define ARDA_ML_METRICS_H_

#include <vector>

#include "ml/dataset.h"

namespace arda::ml {

/// Fraction of predictions matching the true label (labels compared after
/// rounding to the nearest integer).
double Accuracy(const std::vector<double>& y_true,
                const std::vector<double>& y_pred);

/// Macro-averaged F1 over the classes present in `y_true`.
double MacroF1(const std::vector<double>& y_true,
               const std::vector<double>& y_pred);

/// Mean absolute error.
double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred);

/// Mean squared error.
double MeanSquaredError(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred);

/// Root mean squared error.
double RootMeanSquaredError(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred);

/// Coefficient of determination; 0 when y_true is constant and
/// predictions are imperfect.
double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred);

/// Task-appropriate "higher is better" score used throughout the system
/// to compare feature sets and augmentations: accuracy for classification,
/// negative MAE for regression.
double HigherIsBetterScore(TaskType task, const std::vector<double>& y_true,
                           const std::vector<double>& y_pred);

}  // namespace arda::ml

#endif  // ARDA_ML_METRICS_H_
