#include "ml/evaluator.h"

#include <algorithm>

#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/svm_rbf.h"
#include "util/check.h"

namespace arda::ml {

Evaluator::Evaluator(const Dataset& data, double test_fraction,
                     uint64_t seed)
    : seed_(seed) {
  Rng rng(seed);
  TrainTestSplit split = MakeTrainTestSplit(data, test_fraction, &rng);
  train_ = std::move(split.train);
  test_ = std::move(split.test);
}

std::unique_ptr<Model> Evaluator::MakeDefaultModel() const {
  ForestConfig config;
  config.task = train_.task;
  config.num_trees = 24;
  config.max_depth = 10;
  config.seed = seed_ ^ 0xA5A5A5A5ULL;
  return std::make_unique<RandomForest>(config);
}

double Evaluator::ScoreModel(Model* model,
                             const std::vector<size_t>& features) const {
  ARDA_CHECK(!features.empty());
  Dataset train_sub = train_.SelectFeatures(features);
  Dataset test_sub = test_.SelectFeatures(features);
  model->Fit(train_sub.x, train_sub.y);
  std::vector<double> pred = model->Predict(test_sub.x);
  return HigherIsBetterScore(train_.task, test_sub.y, pred);
}

double Evaluator::ScoreFeatures(const std::vector<size_t>& features) const {
  std::unique_ptr<Model> model = MakeDefaultModel();
  return ScoreModel(model.get(), features);
}

double Evaluator::ScoreAllFeatures() const {
  return ScoreFeatures(AllFeatureIndices(train_.NumFeatures()));
}

double Evaluator::FinalScore(const std::vector<size_t>& features) const {
  double best = -1e300;
  for (size_t depth : {8u, 14u}) {
    ForestConfig config;
    config.task = train_.task;
    config.num_trees = 40;
    config.max_depth = depth;
    config.seed = seed_ ^ (0xC3C3ULL + depth);
    RandomForest forest(config);
    best = std::max(best, ScoreModel(&forest, features));
  }
  if (train_.task == TaskType::kClassification &&
      train_.NumRows() <= 3000) {
    RbfSvmConfig config;
    config.seed = seed_ ^ 0x5151ULL;
    RbfSvm svm(config);
    best = std::max(best, ScoreModel(&svm, features));
  }
  return best;
}

std::vector<size_t> AllFeatureIndices(size_t count) {
  std::vector<size_t> indices(count);
  for (size_t i = 0; i < count; ++i) indices[i] = i;
  return indices;
}

}  // namespace arda::ml
