#ifndef ARDA_ML_SPLIT_H_
#define ARDA_ML_SPLIT_H_

#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"

namespace arda::ml {

/// A train/holdout split of a dataset.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
  std::vector<size_t> train_indices;
  std::vector<size_t> test_indices;
};

/// Randomly splits `data` into train and holdout parts. For classification
/// the split is stratified per label so every class appears on both sides
/// when it has at least two examples. `test_fraction` must be in (0, 1).
TrainTestSplit MakeTrainTestSplit(const Dataset& data, double test_fraction,
                                  Rng* rng);

/// Index folds for k-fold cross-validation (stratified for
/// classification). Each entry is the test-index set for one fold.
std::vector<std::vector<size_t>> MakeKFoldIndices(const Dataset& data,
                                                  size_t folds, Rng* rng);

}  // namespace arda::ml

#endif  // ARDA_ML_SPLIT_H_
