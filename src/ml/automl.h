#ifndef ARDA_ML_AUTOML_H_
#define ARDA_ML_AUTOML_H_

#include <memory>
#include <string>

#include "ml/dataset.h"
#include "ml/model.h"

namespace arda::ml {

/// Options for the budgeted random-search AutoML baseline.
struct AutoMlConfig {
  /// Wall-clock budget; the search stops after the first config that
  /// finishes past this point (scaled-down stand-in for the paper's 1 h
  /// Azure AutoML / Alpine Meadow runs).
  double time_budget_seconds = 5.0;
  /// Hard cap on configurations tried regardless of time.
  size_t max_configs = 200;
  double test_fraction = 0.25;
  uint64_t seed = 71;
};

/// Result of an AutoML run.
struct AutoMlResult {
  /// Best holdout score found (higher is better: accuracy or -MAE).
  double best_score = -1e300;
  /// Human-readable description of the winning configuration.
  std::string best_config;
  /// Configurations evaluated within the budget.
  size_t configs_tried = 0;
  /// Wall-clock seconds actually spent.
  double elapsed_seconds = 0.0;
};

/// Time-budgeted random search over the model zoo (random forests,
/// decision trees, ridge/Lasso for regression, logistic / linear SVM /
/// RBF SVM for classification) with randomized hyperparameters. Plays the
/// role of the black-box AutoML estimators the paper compares against.
AutoMlResult RunRandomSearchAutoMl(const Dataset& data,
                                   const AutoMlConfig& config = {});

}  // namespace arda::ml

#endif  // ARDA_ML_AUTOML_H_
