#include "featsel/model_rankers.h"

#include <cmath>

#include "ml/linear.h"

namespace arda::featsel {

std::vector<double> RandomForestRanker::Rank(const ml::Dataset& data,
                                             Rng* rng) const {
  return RankSeeded(data, rng->NextUint64());
}

std::vector<double> RandomForestRanker::RankSeeded(const ml::Dataset& data,
                                                   uint64_t seed) const {
  ml::ForestConfig config;
  config.task = data.task;
  config.num_trees = num_trees_;
  config.max_depth = max_depth_;
  config.seed = seed;
  ml::RandomForest forest(config);
  forest.Fit(data.x, data.y);
  return forest.feature_importances();
}

std::vector<double> SparseRegressionRanker::Rank(const ml::Dataset& data,
                                                 Rng* rng) const {
  (void)rng;
  ml::SparseRegressionConfig config;
  config.task = data.task;
  config.gamma = gamma_;
  ml::L21SparseRegression model(config);
  model.Fit(data.x, data.y);
  return model.FeatureNorms();
}

std::vector<double> LassoRanker::Rank(const ml::Dataset& data,
                                      Rng* rng) const {
  (void)rng;
  ml::Lasso lasso(alpha_);
  lasso.Fit(data.x, data.y);
  std::vector<double> scores(lasso.weights().size());
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = std::fabs(lasso.weights()[i]);
  }
  return scores;
}

std::vector<double> LogisticRanker::Rank(const ml::Dataset& data,
                                         Rng* rng) const {
  (void)rng;
  ml::LogisticRegression model(1e-3, 120);
  model.Fit(data.x, data.y);
  return model.CoefImportances();
}

std::vector<double> LinearSvcRanker::Rank(const ml::Dataset& data,
                                          Rng* rng) const {
  (void)rng;
  ml::LinearSvm model(1.0, 120);
  model.Fit(data.x, data.y);
  return model.CoefImportances();
}

}  // namespace arda::featsel
