#ifndef ARDA_FEATSEL_FILTER_RANKERS_H_
#define ARDA_FEATSEL_FILTER_RANKERS_H_

#include "featsel/ranker.h"

namespace arda::featsel {

/// |Pearson correlation| between each feature and the target.
class PearsonRanker : public FeatureRanker {
 public:
  std::string name() const override { return "pearson"; }
  std::vector<double> Rank(const ml::Dataset& data, Rng* rng) const override;
};

/// Univariate F statistic: one-way ANOVA across classes for
/// classification, the regression F statistic derived from the Pearson
/// correlation for regression (sklearn's f_classif / f_regression).
class FTestRanker : public FeatureRanker {
 public:
  std::string name() const override { return "f_test"; }
  std::vector<double> Rank(const ml::Dataset& data, Rng* rng) const override;
};

/// Histogram-estimated mutual information between each feature and the
/// target. Features are quantile-binned; regression targets are binned
/// the same way, classification labels are used directly.
class MutualInfoRanker : public FeatureRanker {
 public:
  explicit MutualInfoRanker(size_t bins = 10) : bins_(bins) {}
  std::string name() const override { return "mutual_info"; }
  std::vector<double> Rank(const ml::Dataset& data, Rng* rng) const override;

 private:
  size_t bins_;
};

/// Chi-squared independence statistic between the quantile-binned feature
/// and the class label (classification only; one of the classic filter
/// statistics the paper lists in Section 5).
class ChiSquaredRanker : public FeatureRanker {
 public:
  explicit ChiSquaredRanker(size_t bins = 10) : bins_(bins) {}
  std::string name() const override { return "chi_squared"; }
  bool SupportsTask(ml::TaskType task) const override {
    return task == ml::TaskType::kClassification;
  }
  std::vector<double> Rank(const ml::Dataset& data, Rng* rng) const override;

 private:
  size_t bins_;
};

}  // namespace arda::featsel

#endif  // ARDA_FEATSEL_FILTER_RANKERS_H_
