#include "featsel/ranker.h"

#include <algorithm>

namespace arda::featsel {

std::vector<size_t> DescendingOrder(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

std::vector<double> MinMaxNormalize(const std::vector<double>& scores) {
  if (scores.empty()) return {};
  auto [lo_it, hi_it] = std::minmax_element(scores.begin(), scores.end());
  double lo = *lo_it, hi = *hi_it;
  std::vector<double> out(scores.size());
  if (hi - lo <= 1e-300) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = (scores[i] - lo) / (hi - lo);
  }
  return out;
}

}  // namespace arda::featsel
