#ifndef ARDA_FEATSEL_MODEL_RANKERS_H_
#define ARDA_FEATSEL_MODEL_RANKERS_H_

#include "featsel/ranker.h"
#include "ml/random_forest.h"
#include "ml/sparse_regression.h"

namespace arda::featsel {

/// Impurity importances of a random forest fit on the data.
class RandomForestRanker : public FeatureRanker {
 public:
  explicit RandomForestRanker(size_t num_trees = 25, size_t max_depth = 10)
      : num_trees_(num_trees), max_depth_(max_depth) {}
  std::string name() const override { return "random_forest"; }
  std::vector<double> Rank(const ml::Dataset& data, Rng* rng) const override;

  /// Rank with an explicit forest seed instead of drawing one from an
  /// Rng. `Rank(data, rng)` is exactly `RankSeeded(data,
  /// rng->NextUint64())`; RIFS pre-draws the seed serially so its rounds
  /// can run on a thread pool without touching a shared stream.
  std::vector<double> RankSeeded(const ml::Dataset& data,
                                 uint64_t seed) const;

 private:
  size_t num_trees_;
  size_t max_depth_;
};

/// Row norms ||W_j|| of the paper's l2,1-regularized sparse regression
/// (Eq. 1); the convex half of the RIFS ranking ensemble.
class SparseRegressionRanker : public FeatureRanker {
 public:
  explicit SparseRegressionRanker(double gamma = 0.1) : gamma_(gamma) {}
  std::string name() const override { return "sparse_regression"; }
  std::vector<double> Rank(const ml::Dataset& data, Rng* rng) const override;

 private:
  double gamma_;
};

/// |w| of a Lasso fit (regression tasks only).
class LassoRanker : public FeatureRanker {
 public:
  explicit LassoRanker(double alpha = 0.02) : alpha_(alpha) {}
  std::string name() const override { return "lasso"; }
  bool SupportsTask(ml::TaskType task) const override {
    return task == ml::TaskType::kRegression;
  }
  std::vector<double> Rank(const ml::Dataset& data, Rng* rng) const override;

 private:
  double alpha_;
};

/// Mean |w| of one-vs-rest logistic regression (classification only).
class LogisticRanker : public FeatureRanker {
 public:
  std::string name() const override { return "logistic_reg"; }
  bool SupportsTask(ml::TaskType task) const override {
    return task == ml::TaskType::kClassification;
  }
  std::vector<double> Rank(const ml::Dataset& data, Rng* rng) const override;
};

/// Mean |w| of a one-vs-rest linear SVM (classification only).
class LinearSvcRanker : public FeatureRanker {
 public:
  std::string name() const override { return "linear_svc"; }
  bool SupportsTask(ml::TaskType task) const override {
    return task == ml::TaskType::kClassification;
  }
  std::vector<double> Rank(const ml::Dataset& data, Rng* rng) const override;
};

}  // namespace arda::featsel

#endif  // ARDA_FEATSEL_MODEL_RANKERS_H_
