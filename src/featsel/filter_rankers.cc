#include "featsel/filter_rankers.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "la/matrix.h"
#include "util/check.h"

namespace arda::featsel {

namespace {

// Assigns each value to one of `bins` quantile buckets.
std::vector<size_t> QuantileBin(const std::vector<double>& values,
                                size_t bins) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> edges;
  edges.reserve(bins - 1);
  for (size_t b = 1; b < bins; ++b) {
    size_t idx = b * sorted.size() / bins;
    edges.push_back(sorted[std::min(idx, sorted.size() - 1)]);
  }
  std::vector<size_t> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = static_cast<size_t>(
        std::upper_bound(edges.begin(), edges.end(), values[i]) -
        edges.begin());
  }
  return out;
}

double MutualInformation(const std::vector<size_t>& a, size_t a_card,
                         const std::vector<size_t>& b, size_t b_card) {
  ARDA_CHECK_EQ(a.size(), b.size());
  const double n = static_cast<double>(a.size());
  if (a.empty()) return 0.0;
  std::vector<double> pa(a_card, 0.0), pb(b_card, 0.0);
  std::vector<double> joint(a_card * b_card, 0.0);
  for (size_t i = 0; i < a.size(); ++i) {
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
    joint[a[i] * b_card + b[i]] += 1.0;
  }
  double mi = 0.0;
  for (size_t i = 0; i < a_card; ++i) {
    for (size_t j = 0; j < b_card; ++j) {
      double pij = joint[i * b_card + j] / n;
      if (pij <= 0.0) continue;
      mi += pij * std::log(pij * n * n / (pa[i] * pb[j]));
    }
  }
  return std::max(0.0, mi);
}

}  // namespace

std::vector<double> PearsonRanker::Rank(const ml::Dataset& data,
                                        Rng* rng) const {
  (void)rng;
  std::vector<double> scores(data.NumFeatures());
  for (size_t f = 0; f < data.NumFeatures(); ++f) {
    scores[f] = std::fabs(la::PearsonCorrelation(data.x.Col(f), data.y));
  }
  return scores;
}

std::vector<double> FTestRanker::Rank(const ml::Dataset& data,
                                      Rng* rng) const {
  (void)rng;
  const size_t n = data.NumRows();
  std::vector<double> scores(data.NumFeatures(), 0.0);
  if (data.task == ml::TaskType::kRegression) {
    // F = r^2 / (1 - r^2) * (n - 2).
    for (size_t f = 0; f < data.NumFeatures(); ++f) {
      double r = la::PearsonCorrelation(data.x.Col(f), data.y);
      double r2 = std::min(r * r, 1.0 - 1e-12);
      scores[f] = r2 / (1.0 - r2) * static_cast<double>(n >= 2 ? n - 2 : 0);
    }
    return scores;
  }
  // One-way ANOVA per feature.
  std::map<int, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) {
    groups[static_cast<int>(std::lround(data.y[i]))].push_back(i);
  }
  const size_t k = groups.size();
  if (k < 2 || n <= k) return scores;
  for (size_t f = 0; f < data.NumFeatures(); ++f) {
    std::vector<double> col = data.x.Col(f);
    double grand_mean = la::Mean(col);
    double ss_between = 0.0, ss_within = 0.0;
    for (const auto& [label, rows] : groups) {
      double group_mean = 0.0;
      for (size_t r : rows) group_mean += col[r];
      group_mean /= static_cast<double>(rows.size());
      ss_between += static_cast<double>(rows.size()) *
                    (group_mean - grand_mean) * (group_mean - grand_mean);
      for (size_t r : rows) {
        ss_within += (col[r] - group_mean) * (col[r] - group_mean);
      }
    }
    double df_between = static_cast<double>(k - 1);
    double df_within = static_cast<double>(n - k);
    if (ss_within <= 1e-12) {
      scores[f] = ss_between > 1e-12 ? 1e12 : 0.0;
    } else {
      scores[f] = (ss_between / df_between) / (ss_within / df_within);
    }
  }
  return scores;
}

std::vector<double> MutualInfoRanker::Rank(const ml::Dataset& data,
                                           Rng* rng) const {
  (void)rng;
  const size_t n = data.NumRows();
  std::vector<double> scores(data.NumFeatures(), 0.0);
  if (n == 0) return scores;

  std::vector<size_t> target_bins;
  size_t target_card;
  if (data.task == ml::TaskType::kClassification) {
    target_card = data.NumClasses();
    target_bins.resize(n);
    for (size_t i = 0; i < n; ++i) {
      target_bins[i] = static_cast<size_t>(std::lround(data.y[i]));
    }
  } else {
    target_card = std::min<size_t>(bins_, n);
    target_bins = QuantileBin(data.y, target_card);
  }

  const size_t feature_card = std::min<size_t>(bins_, n);
  for (size_t f = 0; f < data.NumFeatures(); ++f) {
    std::vector<size_t> feature_bins =
        QuantileBin(data.x.Col(f), feature_card);
    scores[f] = MutualInformation(feature_bins, feature_card, target_bins,
                                  target_card);
  }
  return scores;
}

std::vector<double> ChiSquaredRanker::Rank(const ml::Dataset& data,
                                           Rng* rng) const {
  (void)rng;
  const size_t n = data.NumRows();
  std::vector<double> scores(data.NumFeatures(), 0.0);
  if (n == 0 || data.task != ml::TaskType::kClassification) return scores;

  const size_t classes = data.NumClasses();
  std::vector<size_t> labels(n);
  std::vector<double> class_totals(classes, 0.0);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<size_t>(std::lround(data.y[i]));
    class_totals[labels[i]] += 1.0;
  }

  const size_t bins = std::min<size_t>(bins_, n);
  for (size_t f = 0; f < data.NumFeatures(); ++f) {
    std::vector<size_t> feature_bins = QuantileBin(data.x.Col(f), bins);
    std::vector<double> observed(bins * classes, 0.0);
    std::vector<double> bin_totals(bins, 0.0);
    for (size_t i = 0; i < n; ++i) {
      observed[feature_bins[i] * classes + labels[i]] += 1.0;
      bin_totals[feature_bins[i]] += 1.0;
    }
    double chi2 = 0.0;
    for (size_t b = 0; b < bins; ++b) {
      if (bin_totals[b] <= 0.0) continue;
      for (size_t c = 0; c < classes; ++c) {
        double expected =
            bin_totals[b] * class_totals[c] / static_cast<double>(n);
        if (expected <= 1e-12) continue;
        double diff = observed[b * classes + c] - expected;
        chi2 += diff * diff / expected;
      }
    }
    scores[f] = chi2;
  }
  return scores;
}

}  // namespace arda::featsel
