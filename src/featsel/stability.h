#ifndef ARDA_FEATSEL_STABILITY_H_
#define ARDA_FEATSEL_STABILITY_H_

#include <vector>

#include "featsel/selector.h"
#include "ml/dataset.h"
#include "util/rng.h"

namespace arda::featsel {

/// Options for selection-stability analysis.
struct StabilityOptions {
  /// Bootstrap resamples to run the selector on.
  size_t num_bootstraps = 8;
  /// Bootstrap size as a fraction of n (sampled with replacement).
  double sample_fraction = 0.8;
  double test_fraction = 0.25;
  uint64_t seed = 131;
};

/// Result of a stability analysis.
struct StabilityResult {
  /// Mean pairwise Jaccard similarity of the selected sets across
  /// bootstraps — 1.0 means the selector always picks the same features.
  double mean_jaccard = 0.0;
  /// Fraction of bootstraps in which each feature was selected.
  std::vector<double> selection_frequency;
  /// Selected sets per bootstrap.
  std::vector<std::vector<size_t>> selections;
};

/// Measures how stable a feature selector's output is under bootstrap
/// perturbation of the rows — a standard robustness diagnostic for
/// selection methods (unstable selections are a red flag even when
/// accuracy looks fine). The selector runs once per bootstrap with its
/// own evaluator on the resampled rows.
StabilityResult AnalyzeSelectionStability(
    const ml::Dataset& data, const FeatureSelector& selector,
    const StabilityOptions& options = {});

/// Jaccard similarity of two index sets (inputs need not be sorted).
double SelectionJaccard(const std::vector<size_t>& a,
                        const std::vector<size_t>& b);

}  // namespace arda::featsel

#endif  // ARDA_FEATSEL_STABILITY_H_
