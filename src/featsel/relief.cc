#include "featsel/relief.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/check.h"

namespace arda::featsel {

namespace {

// Min-max normalizes every column into [0, 1] (constant columns -> 0).
la::Matrix NormalizeFeatures(const la::Matrix& x) {
  la::Matrix out(x.rows(), x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    double lo = 1e300, hi = -1e300;
    for (size_t r = 0; r < x.rows(); ++r) {
      lo = std::min(lo, x(r, c));
      hi = std::max(hi, x(r, c));
    }
    double span = hi - lo;
    for (size_t r = 0; r < x.rows(); ++r) {
      out(r, c) = span > 1e-12 ? (x(r, c) - lo) / span : 0.0;
    }
  }
  return out;
}

// Indices of the k nearest rows to `query` among `candidates` (excluding
// `query` itself), by L1 distance on the normalized matrix.
std::vector<size_t> NearestNeighbors(const la::Matrix& x, size_t query,
                                     const std::vector<size_t>& candidates,
                                     size_t k) {
  std::vector<std::pair<double, size_t>> distances;
  distances.reserve(candidates.size());
  const double* q = x.RowPtr(query);
  for (size_t cand : candidates) {
    if (cand == query) continue;
    const double* row = x.RowPtr(cand);
    double dist = 0.0;
    for (size_t c = 0; c < x.cols(); ++c) dist += std::fabs(q[c] - row[c]);
    distances.emplace_back(dist, cand);
  }
  size_t keep = std::min(k, distances.size());
  std::partial_sort(distances.begin(), distances.begin() + keep,
                    distances.end());
  std::vector<size_t> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(distances[i].second);
  return out;
}

}  // namespace

std::vector<double> ReliefRanker::Rank(const ml::Dataset& data,
                                       Rng* rng) const {
  const size_t n = data.NumRows();
  const size_t d = data.NumFeatures();
  std::vector<double> weights(d, 0.0);
  if (n < 3 || d == 0) return weights;

  la::Matrix x = NormalizeFeatures(data.x);
  size_t m = config_.num_samples == 0 ? n : std::min(config_.num_samples, n);
  std::vector<size_t> sampled = rng->SampleWithoutReplacement(n, m);
  const size_t k = std::max<size_t>(1, config_.num_neighbors);

  if (data.task == ml::TaskType::kClassification) {
    // ReliefF with class-prior weighting of misses.
    std::map<int, std::vector<size_t>> by_label;
    for (size_t i = 0; i < n; ++i) {
      by_label[static_cast<int>(std::lround(data.y[i]))].push_back(i);
    }
    std::map<int, double> prior;
    for (const auto& [label, rows] : by_label) {
      prior[label] = static_cast<double>(rows.size()) /
                     static_cast<double>(n);
    }
    for (size_t query : sampled) {
      int label = static_cast<int>(std::lround(data.y[query]));
      const double* q = x.RowPtr(query);
      // Nearest hits.
      std::vector<size_t> hits =
          NearestNeighbors(x, query, by_label[label], k);
      for (size_t hit : hits) {
        const double* row = x.RowPtr(hit);
        for (size_t c = 0; c < d; ++c) {
          weights[c] -= std::fabs(q[c] - row[c]) /
                        (static_cast<double>(m) *
                         static_cast<double>(hits.size()));
        }
      }
      // Nearest misses from each other class, prior-weighted.
      for (const auto& [other, rows] : by_label) {
        if (other == label) continue;
        std::vector<size_t> misses = NearestNeighbors(x, query, rows, k);
        if (misses.empty()) continue;
        double scale = prior[other] / (1.0 - prior[label]);
        for (size_t miss : misses) {
          const double* row = x.RowPtr(miss);
          for (size_t c = 0; c < d; ++c) {
            weights[c] += scale * std::fabs(q[c] - row[c]) /
                          (static_cast<double>(m) *
                           static_cast<double>(misses.size()));
          }
        }
      }
    }
    return weights;
  }

  // RReliefF for regression.
  double y_lo = *std::min_element(data.y.begin(), data.y.end());
  double y_hi = *std::max_element(data.y.begin(), data.y.end());
  double y_span = std::max(1e-12, y_hi - y_lo);
  std::vector<size_t> all_rows(n);
  for (size_t i = 0; i < n; ++i) all_rows[i] = i;

  double n_dc = 0.0;                    // P(different target)
  std::vector<double> n_df(d, 0.0);     // P(different feature)
  std::vector<double> n_dc_df(d, 0.0);  // P(diff target & diff feature)
  double total_pairs = 0.0;
  for (size_t query : sampled) {
    const double* q = x.RowPtr(query);
    std::vector<size_t> neighbors = NearestNeighbors(x, query, all_rows, k);
    for (size_t nb : neighbors) {
      const double* row = x.RowPtr(nb);
      double target_diff = std::fabs(data.y[query] - data.y[nb]) / y_span;
      n_dc += target_diff;
      total_pairs += 1.0;
      for (size_t c = 0; c < d; ++c) {
        double feature_diff = std::fabs(q[c] - row[c]);
        n_df[c] += feature_diff;
        n_dc_df[c] += target_diff * feature_diff;
      }
    }
  }
  if (n_dc <= 1e-12 || total_pairs - n_dc <= 1e-12) return weights;
  for (size_t c = 0; c < d; ++c) {
    weights[c] =
        n_dc_df[c] / n_dc - (n_df[c] - n_dc_df[c]) / (total_pairs - n_dc);
  }
  return weights;
}

}  // namespace arda::featsel
