#include "featsel/stability.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace arda::featsel {

double SelectionJaccard(const std::vector<size_t>& a,
                        const std::vector<size_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::set<size_t> sa(a.begin(), a.end());
  std::set<size_t> sb(b.begin(), b.end());
  size_t intersection = 0;
  for (size_t v : sb) intersection += sa.count(v);
  size_t unions = sa.size() + sb.size() - intersection;
  return unions == 0 ? 1.0
                     : static_cast<double>(intersection) /
                           static_cast<double>(unions);
}

StabilityResult AnalyzeSelectionStability(const ml::Dataset& data,
                                          const FeatureSelector& selector,
                                          const StabilityOptions& options) {
  ARDA_CHECK_GE(options.num_bootstraps, 2u);
  ARDA_CHECK_GT(options.sample_fraction, 0.0);
  Rng rng(options.seed);
  const size_t n = data.NumRows();
  const size_t sample_size = std::max<size_t>(
      4, static_cast<size_t>(options.sample_fraction *
                             static_cast<double>(n)));

  StabilityResult result;
  result.selection_frequency.assign(data.NumFeatures(), 0.0);
  for (size_t b = 0; b < options.num_bootstraps; ++b) {
    std::vector<size_t> rows = rng.SampleWithReplacement(n, sample_size);
    ml::Dataset sample = data.SelectRows(rows);
    ml::Evaluator evaluator(sample, options.test_fraction,
                            options.seed + b);
    Rng selector_rng = rng.Fork();
    SelectionResult selection =
        selector.Select(sample, evaluator, &selector_rng);
    for (size_t f : selection.selected) {
      result.selection_frequency[f] += 1.0;
    }
    result.selections.push_back(std::move(selection.selected));
  }
  for (double& freq : result.selection_frequency) {
    freq /= static_cast<double>(options.num_bootstraps);
  }

  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < result.selections.size(); ++i) {
    for (size_t j = i + 1; j < result.selections.size(); ++j) {
      total += SelectionJaccard(result.selections[i], result.selections[j]);
      ++pairs;
    }
  }
  result.mean_jaccard = pairs == 0 ? 1.0 : total / static_cast<double>(pairs);
  return result;
}

}  // namespace arda::featsel
