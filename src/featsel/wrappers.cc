#include "featsel/wrappers.h"

#include <algorithm>

#include "featsel/model_rankers.h"
#include "util/check.h"

namespace arda::featsel {

namespace {

bool Budget(const WrapperConfig& config, size_t used) {
  return config.max_evaluations == 0 || used < config.max_evaluations;
}

}  // namespace

SearchResult ForwardSelection(const ml::Dataset& data,
                              const ml::Evaluator& evaluator, Rng* rng,
                              const WrapperConfig& config) {
  ARDA_CHECK_GT(data.NumFeatures(), 0u);
  RandomForestRanker ranker;
  std::vector<size_t> order = DescendingOrder(ranker.Rank(data, rng));

  SearchResult result;
  std::vector<size_t> current;
  double current_score = -1e300;
  for (size_t f : order) {
    if (!Budget(config, result.evaluations)) break;
    current.push_back(f);
    double score = evaluator.ScoreFeatures(current);
    ++result.evaluations;
    if (score >= current_score || current.size() == 1) {
      current_score = score;
    } else {
      current.pop_back();  // the candidate hurt; drop it
    }
    if (current_score > result.score) {
      result.score = current_score;
      result.selected = current;
    }
  }
  return result;
}

SearchResult BackwardElimination(const ml::Dataset& data,
                                 const ml::Evaluator& evaluator, Rng* rng,
                                 const WrapperConfig& config) {
  ARDA_CHECK_GT(data.NumFeatures(), 0u);
  RandomForestRanker ranker;
  std::vector<size_t> order = DescendingOrder(ranker.Rank(data, rng));
  std::reverse(order.begin(), order.end());  // worst first

  SearchResult result;
  std::vector<size_t> current =
      ml::AllFeatureIndices(data.NumFeatures());
  double current_score = evaluator.ScoreFeatures(current);
  ++result.evaluations;
  result.score = current_score;
  result.selected = current;

  for (size_t f : order) {
    if (current.size() <= 1) break;
    if (!Budget(config, result.evaluations)) break;
    std::vector<size_t> without;
    without.reserve(current.size() - 1);
    for (size_t g : current) {
      if (g != f) without.push_back(g);
    }
    double score = evaluator.ScoreFeatures(without);
    ++result.evaluations;
    if (score >= current_score) {
      current = std::move(without);
      current_score = score;
      // Ties prefer the smaller set: elimination is the point.
      if (current_score >= result.score) {
        result.score = current_score;
        result.selected = current;
      }
    }
  }
  return result;
}

SearchResult RecursiveFeatureElimination(const ml::Dataset& data,
                                         const ml::Evaluator& evaluator,
                                         Rng* rng, double drop_fraction,
                                         const WrapperConfig& config) {
  ARDA_CHECK_GT(data.NumFeatures(), 0u);
  ARDA_CHECK_GT(drop_fraction, 0.0);
  ARDA_CHECK_LT(drop_fraction, 1.0);
  RandomForestRanker ranker;

  SearchResult result;
  std::vector<size_t> current =
      ml::AllFeatureIndices(data.NumFeatures());
  while (!current.empty()) {
    double score = evaluator.ScoreFeatures(current);
    ++result.evaluations;
    if (score > result.score) {
      result.score = score;
      result.selected = current;
    }
    if (current.size() <= 2 || !Budget(config, result.evaluations)) break;
    // Re-rank the surviving features and drop the weakest tail.
    ml::Dataset sub = data.SelectFeatures(current);
    std::vector<size_t> order = DescendingOrder(ranker.Rank(sub, rng));
    size_t keep = current.size() -
                  std::max<size_t>(1, static_cast<size_t>(
                                          drop_fraction *
                                          static_cast<double>(current.size())));
    keep = std::max<size_t>(keep, 2);
    std::vector<size_t> next;
    next.reserve(keep);
    for (size_t i = 0; i < keep && i < order.size(); ++i) {
      next.push_back(current[order[i]]);
    }
    std::sort(next.begin(), next.end());
    if (next.size() >= current.size()) break;
    current = std::move(next);
  }
  return result;
}

}  // namespace arda::featsel
