#include "featsel/significance.h"

#include <cmath>

#include "ml/evaluator.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/split.h"
#include "util/check.h"

namespace arda::featsel {

SignificanceResult TestAugmentationSignificance(
    const ml::Dataset& base, const ml::Dataset& augmented,
    const SignificanceOptions& options) {
  ARDA_CHECK_EQ(base.NumRows(), augmented.NumRows());
  ARDA_CHECK_EQ(base.y.size(), augmented.y.size());
  ARDA_CHECK_GT(options.num_splits, 1u);
  Rng rng(options.seed);

  SignificanceResult result;
  result.split_improvements.reserve(options.num_splits);
  for (size_t split_idx = 0; split_idx < options.num_splits; ++split_idx) {
    // Shared split: the same rows land in the holdout for both feature
    // sets, so the delta isolates the effect of the added features.
    Rng split_rng = rng.Fork();
    Rng split_rng_copy = split_rng;  // identical stream for both splits
    ml::TrainTestSplit base_split =
        ml::MakeTrainTestSplit(base, options.test_fraction, &split_rng);
    ml::TrainTestSplit aug_split = ml::MakeTrainTestSplit(
        augmented, options.test_fraction, &split_rng_copy);

    ml::ForestConfig config;
    config.task = base.task;
    config.num_trees = 24;
    config.max_depth = 10;
    config.seed = rng.NextUint64();

    ml::RandomForest base_model(config);
    base_model.Fit(base_split.train.x, base_split.train.y);
    double base_score = ml::HigherIsBetterScore(
        base.task, base_split.test.y,
        base_model.Predict(base_split.test.x));

    ml::RandomForest aug_model(config);
    aug_model.Fit(aug_split.train.x, aug_split.train.y);
    double aug_score = ml::HigherIsBetterScore(
        augmented.task, aug_split.test.y,
        aug_model.Predict(aug_split.test.x));

    result.split_improvements.push_back(aug_score - base_score);
  }

  double mean = 0.0;
  for (double delta : result.split_improvements) mean += delta;
  mean /= static_cast<double>(result.split_improvements.size());
  result.mean_improvement = mean;

  // Sign-flip permutation test: under H0 the deltas are symmetric around
  // zero, so random sign assignments are exchangeable with the observed
  // one. One-sided: count permutations with mean >= observed.
  size_t at_least = 0;
  for (size_t p = 0; p < options.num_permutations; ++p) {
    double permuted = 0.0;
    for (double delta : result.split_improvements) {
      permuted += rng.Bernoulli(0.5) ? delta : -delta;
    }
    permuted /= static_cast<double>(result.split_improvements.size());
    if (permuted >= mean) ++at_least;
  }
  // +1 correction keeps the estimate strictly positive (standard for
  // Monte-Carlo permutation tests).
  result.p_value = (static_cast<double>(at_least) + 1.0) /
                   (static_cast<double>(options.num_permutations) + 1.0);
  return result;
}

}  // namespace arda::featsel
