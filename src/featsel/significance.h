#ifndef ARDA_FEATSEL_SIGNIFICANCE_H_
#define ARDA_FEATSEL_SIGNIFICANCE_H_

#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"

namespace arda::featsel {

/// Options for the augmentation significance test.
struct SignificanceOptions {
  /// Independent train/holdout resplits to measure the improvement on.
  size_t num_splits = 12;
  /// Sign-flip permutations of the per-split deltas.
  size_t num_permutations = 2000;
  double test_fraction = 0.25;
  uint64_t seed = 97;
};

/// Result of the significance test.
struct SignificanceResult {
  /// Mean over splits of (augmented score - base score); scores are
  /// higher-is-better (accuracy or -MAE).
  double mean_improvement = 0.0;
  /// Per-split improvements (length = num_splits).
  std::vector<double> split_improvements;
  /// One-sided p-value of H0 "the augmentation does not improve the
  /// score" under a sign-flip permutation test on the per-split deltas.
  double p_value = 1.0;

  bool SignificantAt(double alpha = 0.05) const { return p_value < alpha; }
};

/// Statistical significance test for augmented features (the paper's
/// future-work item "statistical significance tests for augmented
/// features"). Both datasets must have identical rows and targets; the
/// augmented one carries extra feature columns. For each of k random
/// (shared) train/holdout splits, the default estimator is trained on
/// both feature sets and the holdout score difference recorded; a
/// sign-flip permutation test then asks how often random sign assignments
/// of those deltas produce a mean at least as large as observed.
SignificanceResult TestAugmentationSignificance(
    const ml::Dataset& base, const ml::Dataset& augmented,
    const SignificanceOptions& options = {});

}  // namespace arda::featsel

#endif  // ARDA_FEATSEL_SIGNIFICANCE_H_
