#ifndef ARDA_FEATSEL_SEARCH_H_
#define ARDA_FEATSEL_SEARCH_H_

#include <vector>

#include "ml/evaluator.h"

namespace arda::featsel {

/// Result of a subset search over a feature ranking.
struct SearchResult {
  /// Selected feature indices (into the evaluated dataset).
  std::vector<size_t> selected;
  /// Holdout score of the selected subset.
  double score = -1e300;
  /// Number of model trainings performed.
  size_t evaluations = 0;
};

/// The paper's modified exponential search (Section 6.3, after Bentley &
/// Yao): order features by descending score, test prefixes of size 2, 4,
/// 8, ... until the holdout score first decreases at 2^k, then binary
/// search between 2^(k-1) and 2^k. Returns the best prefix seen anywhere
/// during the search (rankings are not perfectly monotone in practice).
SearchResult ExponentialSearchSelect(const std::vector<double>& ranking,
                                     const ml::Evaluator& evaluator);

/// Linear prefix search over a ranking (the "forward selection over a
/// ranking" strategy the paper contrasts with exponential search): tests
/// every prefix of the ranking up to `max_prefix` (0 = all) and returns
/// the best. Trains the model once per prefix — expensive, as the paper
/// observes.
SearchResult LinearPrefixSearchSelect(const std::vector<double>& ranking,
                                      const ml::Evaluator& evaluator,
                                      size_t max_prefix = 0);

}  // namespace arda::featsel

#endif  // ARDA_FEATSEL_SEARCH_H_
