#include "featsel/search.h"

#include <algorithm>

#include "featsel/ranker.h"
#include "util/check.h"

namespace arda::featsel {

namespace {

// Evaluates the top-`count` prefix of `order`, updating the best result.
double EvaluatePrefix(const std::vector<size_t>& order, size_t count,
                      const ml::Evaluator& evaluator, SearchResult* best) {
  std::vector<size_t> subset(order.begin(),
                             order.begin() + static_cast<ptrdiff_t>(count));
  double score = evaluator.ScoreFeatures(subset);
  ++best->evaluations;
  if (score > best->score) {
    best->score = score;
    best->selected = std::move(subset);
  }
  return score;
}

}  // namespace

SearchResult ExponentialSearchSelect(const std::vector<double>& ranking,
                                     const ml::Evaluator& evaluator) {
  SearchResult best;
  const size_t d = ranking.size();
  ARDA_CHECK_GT(d, 0u);
  std::vector<size_t> order = DescendingOrder(ranking);

  // Doubling phase: 2, 4, 8, ... until the score decreases.
  size_t prev_count = 0;
  double prev_score = -1e300;
  size_t count = std::min<size_t>(2, d);
  for (;;) {
    double score = EvaluatePrefix(order, count, evaluator, &best);
    if (score < prev_score || count == d) {
      if (score >= prev_score) prev_count = count;  // monotone to the end
      break;
    }
    prev_score = score;
    prev_count = count;
    count = std::min(count * 2, d);
  }

  // Binary search inside (prev_count, count) for the turning point.
  size_t lo = prev_count;
  size_t hi = count;
  while (hi - lo > 1) {
    size_t mid = lo + (hi - lo) / 2;
    double mid_score = EvaluatePrefix(order, mid, evaluator, &best);
    if (mid_score >= prev_score) {
      prev_score = mid_score;
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

SearchResult LinearPrefixSearchSelect(const std::vector<double>& ranking,
                                      const ml::Evaluator& evaluator,
                                      size_t max_prefix) {
  SearchResult best;
  const size_t d = ranking.size();
  ARDA_CHECK_GT(d, 0u);
  std::vector<size_t> order = DescendingOrder(ranking);
  size_t limit = max_prefix == 0 ? d : std::min(max_prefix, d);
  for (size_t count = 1; count <= limit; ++count) {
    EvaluatePrefix(order, count, evaluator, &best);
  }
  return best;
}

}  // namespace arda::featsel
