#include "featsel/rifs.h"

#include <algorithm>
#include <cmath>

#include "featsel/model_rankers.h"
#include "la/linalg.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace arda::featsel {

const char* NoiseKindName(NoiseKind kind) {
  switch (kind) {
    case NoiseKind::kMomentMatched:
      return "moment_matched";
    case NoiseKind::kGaussian:
      return "gaussian";
    case NoiseKind::kUniform:
      return "uniform";
    case NoiseKind::kBernoulli:
      return "bernoulli";
    case NoiseKind::kPoisson:
      return "poisson";
  }
  return "unknown";
}

la::Matrix MakeNoiseFeatures(const ml::Dataset& data, size_t count,
                             NoiseKind kind, Rng* rng,
                             bool permute_moment_noise) {
  const size_t n = data.NumRows();
  la::Matrix noise(n, count);
  switch (kind) {
    case NoiseKind::kMomentMatched: {
      // Algorithm 2: fit N(mu, Sigma) to the empirical feature moments
      // (each feature is an observation in R^n) and sample i.i.d. columns.
      la::FeatureMoments moments = la::ComputeFeatureMoments(data.x);
      la::Matrix samples =
          la::SampleMultivariateNormal(moments, count, rng);
      for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < count; ++c) noise(r, c) = samples(r, c);
      }
      if (permute_moment_noise) {
        // Break target alignment while keeping each column's value
        // distribution (see RifsConfig::permute_moment_noise).
        std::vector<size_t> order(n);
        for (size_t c = 0; c < count; ++c) {
          for (size_t r = 0; r < n; ++r) order[r] = r;
          rng->Shuffle(&order);
          for (size_t r = 0; r < n; ++r) {
            double tmp = noise(r, c);
            noise(r, c) = noise(order[r], c);
            noise(order[r], c) = tmp;
          }
        }
      }
      return noise;
    }
    case NoiseKind::kGaussian:
      for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < count; ++c) noise(r, c) = rng->Normal();
      }
      return noise;
    case NoiseKind::kUniform:
      for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < count; ++c) noise(r, c) = rng->UniformDouble();
      }
      return noise;
    case NoiseKind::kBernoulli:
      for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < count; ++c) {
          noise(r, c) = rng->Bernoulli(0.5) ? 1.0 : 0.0;
        }
      }
      return noise;
    case NoiseKind::kPoisson:
      for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < count; ++c) {
          noise(r, c) = static_cast<double>(rng->Poisson(1.0));
        }
      }
      return noise;
  }
  return noise;
}

RifsResult RunRifs(const ml::Dataset& data, const ml::Evaluator& evaluator,
                   const RifsConfig& config, Rng* rng) {
  const size_t d = data.NumFeatures();
  ARDA_CHECK_GT(d, 0u);
  ARDA_CHECK_GT(config.num_rounds, 0u);
  const size_t t = std::max<size_t>(
      1, static_cast<size_t>(std::lround(config.eta *
                                         static_cast<double>(d))));

  RandomForestRanker forest_ranker;
  SparseRegressionRanker sparse_ranker;
  const bool use_forest = config.nu > 0.0;
  const bool use_sparse = config.nu < 1.0;

  // Algorithm 1: count rounds where a real feature outranks every
  // injected noise feature under the aggregate ranking.
  //
  // Serial pre-pass: draw each round's noise matrix and forest seed from
  // the caller's stream in exactly the order the serial loop consumed it
  // (noise, then one NextUint64 for the forest). The expensive ranking
  // work below then runs on the thread pool with no shared stream, and
  // the per-round results are reduced in round order — bit-identical
  // output for any thread count.
  std::vector<la::Matrix> round_noise;
  round_noise.reserve(config.num_rounds);
  std::vector<uint64_t> forest_seeds(config.num_rounds, 0);
  for (size_t round = 0; round < config.num_rounds; ++round) {
    round_noise.push_back(MakeNoiseFeatures(data, t, config.noise, rng,
                                            config.permute_moment_noise));
    if (use_forest) forest_seeds[round] = rng->NextUint64();
  }

  // The aggregate is over percentile *ranks*, not raw scores: raw
  // importances are dominated by the top feature and flatten everything
  // else near zero, which would make beats-all-noise comparisons among
  // mid-ranked features meaningless.
  // Tied scores share their average percentile: sparse rankers drive
  // many weights to exactly zero, and positional tie-breaking would
  // systematically rank real zero-weight features above the injected
  // noise (which sits at the highest indices).
  auto percentile_ranks = [](const std::vector<double>& scores) {
    std::vector<size_t> order = DescendingOrder(scores);
    std::vector<double> ranks(scores.size());
    const double denom =
        scores.size() > 1 ? static_cast<double>(scores.size() - 1) : 1.0;
    size_t pos = 0;
    while (pos < order.size()) {
      size_t end = pos;
      while (end + 1 < order.size() &&
             scores[order[end + 1]] == scores[order[pos]]) {
        ++end;
      }
      const double mean_rank =
          1.0 - 0.5 * static_cast<double>(pos + end) / denom;
      for (size_t k = pos; k <= end; ++k) ranks[order[k]] = mean_rank;
      pos = end + 1;
    }
    return ranks;
  };

  // Each round writes only its own slot; nothing else is shared mutable.
  std::vector<std::vector<uint8_t>> round_beats(
      config.num_rounds, std::vector<uint8_t>(d, 0));
  ParallelFor(config.num_rounds, config.num_threads, [&](size_t round) {
    trace::TraceSpan round_span("rifs.round", "rifs");
    metrics::IncrementCounter("rifs.rounds_total");
    ml::Dataset augmented;
    augmented.task = data.task;
    augmented.y = data.y;
    augmented.x = data.x.HStack(round_noise[round]);
    augmented.feature_names = data.feature_names;
    for (size_t j = 0; j < t; ++j) {
      augmented.feature_names.push_back("__rifs_noise");
    }

    std::vector<double> aggregate(d + t, 0.0);
    if (use_forest) {
      std::vector<double> rf = percentile_ranks(
          forest_ranker.RankSeeded(augmented, forest_seeds[round]));
      for (size_t j = 0; j < d + t; ++j) aggregate[j] += config.nu * rf[j];
    }
    if (use_sparse) {
      std::vector<double> sr =
          percentile_ranks(sparse_ranker.Rank(augmented, nullptr));
      for (size_t j = 0; j < d + t; ++j) {
        aggregate[j] += (1.0 - config.nu) * sr[j];
      }
    }

    double max_noise = -1e300;
    for (size_t j = d; j < d + t; ++j) {
      max_noise = std::max(max_noise, aggregate[j]);
    }
    size_t beat_count = 0;
    for (size_t j = 0; j < d; ++j) {
      if (aggregate[j] > max_noise) {
        round_beats[round][j] = 1;
        ++beat_count;
      }
    }
    metrics::ObserveSize("rifs.round_features_beat_noise",
                         static_cast<double>(beat_count));
  });

  // Ordered reduction over rounds.
  std::vector<double> front_count(d, 0.0);
  for (size_t round = 0; round < config.num_rounds; ++round) {
    for (size_t j = 0; j < d; ++j) {
      if (round_beats[round][j]) front_count[j] += 1.0;
    }
  }

  RifsResult result;
  result.beat_noise_fraction.resize(d);
  for (size_t j = 0; j < d; ++j) {
    result.beat_noise_fraction[j] =
        front_count[j] / static_cast<double>(config.num_rounds);
  }

  // Algorithm 3: sweep thresholds in increasing order while the holdout
  // score increases monotonically; keep the best subset seen.
  std::vector<double> thresholds = config.thresholds;
  std::sort(thresholds.begin(), thresholds.end());
  double prev_score = -1e300;
  for (double tau : thresholds) {
    std::vector<size_t> subset;
    for (size_t j = 0; j < d; ++j) {
      if (result.beat_noise_fraction[j] >= tau) subset.push_back(j);
    }
    if (subset.empty()) break;
    double score = evaluator.ScoreFeatures(subset);
    ++result.evaluations;
    metrics::IncrementCounter("rifs.threshold_evaluations_total");
    if (score > result.score) {
      result.score = score;
      result.selected = std::move(subset);
      result.chosen_threshold = tau;
    }
    if (config.stop_on_decrease && score < prev_score) break;
    prev_score = score;
  }

  // Fallback: if every threshold produced an empty subset (all features
  // indistinguishable from noise), keep the single best-scoring feature.
  if (result.selected.empty()) {
    size_t best = static_cast<size_t>(
        std::max_element(result.beat_noise_fraction.begin(),
                         result.beat_noise_fraction.end()) -
        result.beat_noise_fraction.begin());
    result.selected = {best};
    result.score = evaluator.ScoreFeatures(result.selected);
    ++result.evaluations;
    metrics::IncrementCounter("rifs.threshold_evaluations_total");
  }
  return result;
}

}  // namespace arda::featsel
