#ifndef ARDA_FEATSEL_SELECTOR_H_
#define ARDA_FEATSEL_SELECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "featsel/rifs.h"
#include "featsel/search.h"
#include "ml/evaluator.h"
#include "util/status.h"

namespace arda::featsel {

/// Outcome of one feature-selection run, with the timing the paper
/// reports per method.
struct SelectionResult {
  std::string method;
  std::vector<size_t> selected;
  /// Holdout score of the selection under the fixed default estimator.
  double score = -1e300;
  /// Wall-clock seconds spent selecting (0 for "all features").
  double seconds = 0.0;
  /// Model trainings performed.
  size_t evaluations = 0;
};

/// Uniform interface over every feature-selection method the paper
/// benchmarks, so experiment harnesses can iterate a name list.
class FeatureSelector {
 public:
  virtual ~FeatureSelector() = default;
  virtual std::string name() const = 0;
  virtual bool SupportsTask(ml::TaskType task) const {
    (void)task;
    return true;
  }
  /// Runs selection, timing it. `data` must match the evaluator's
  /// feature space.
  virtual SelectionResult Select(const ml::Dataset& data,
                                 const ml::Evaluator& evaluator,
                                 Rng* rng) const = 0;
  /// Status-propagating variant: rejects degenerate inputs (zero rows or
  /// zero features) and injected faults instead of crashing, so the ARDA
  /// driver can skip a join batch and keep going. The default validates
  /// and delegates to Select.
  virtual Result<SelectionResult> TrySelect(const ml::Dataset& data,
                                            const ml::Evaluator& evaluator,
                                            Rng* rng) const;
};

/// Creates a selector by its paper name:
///   "rifs", "all_features", "forward_selection", "backward_selection",
///   "rfe", "random_forest", "sparse_regression", "mutual_info", "f_test",
///   "pearson", "lasso", "relief", "linear_svc", "logistic_reg".
/// Ranking methods use the paper's exponential search over their ranking.
/// Returns nullptr for unknown names.
std::unique_ptr<FeatureSelector> MakeSelector(const std::string& name);

/// Creates a RIFS selector with an explicit configuration (used by the
/// ablation benches).
std::unique_ptr<FeatureSelector> MakeRifsSelector(const RifsConfig& config,
                                                  std::string name = "rifs");

/// The selector names benchmarked in the paper's Table 1, in its row
/// order, filtered to those applicable to `task`.
std::vector<std::string> PaperSelectorNames(ml::TaskType task);

}  // namespace arda::featsel

#endif  // ARDA_FEATSEL_SELECTOR_H_
