#ifndef ARDA_FEATSEL_RANKER_H_
#define ARDA_FEATSEL_RANKER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"

namespace arda::featsel {

/// Produces a relevance score per feature (higher = more relevant).
/// Rankers are the building blocks of every ranking-based selector and of
/// the RIFS ensemble.
class FeatureRanker {
 public:
  virtual ~FeatureRanker() = default;

  /// Short identifier ("random_forest", "f_test", ...).
  virtual std::string name() const = 0;

  /// Scores each feature of `data`. Scores are only meaningful relative
  /// to one another within a single call.
  virtual std::vector<double> Rank(const ml::Dataset& data,
                                   Rng* rng) const = 0;

  /// Whether the ranker supports the task (e.g. Lasso is
  /// regression-only, logistic regression classification-only).
  virtual bool SupportsTask(ml::TaskType task) const {
    (void)task;
    return true;
  }
};

/// Indices of `scores` sorted by descending score (stable: ties keep the
/// original feature order).
std::vector<size_t> DescendingOrder(const std::vector<double>& scores);

/// Min-max normalizes scores into [0, 1]; constant vectors map to all 0.5.
std::vector<double> MinMaxNormalize(const std::vector<double>& scores);

}  // namespace arda::featsel

#endif  // ARDA_FEATSEL_RANKER_H_
