#ifndef ARDA_FEATSEL_WRAPPERS_H_
#define ARDA_FEATSEL_WRAPPERS_H_

#include "featsel/ranker.h"
#include "featsel/search.h"
#include "ml/evaluator.h"

namespace arda::featsel {

/// Limits on wrapper methods (they retrain the model per step; the paper
/// measures them as orders of magnitude slower than ranking methods).
struct WrapperConfig {
  /// Hard cap on model trainings; 0 = no cap.
  size_t max_evaluations = 100;
};

/// Forward selection guided by a random-forest ranking: walk the ranking
/// from best to worst, tentatively adding each feature and keeping it only
/// if the holdout score does not drop (the paper's linear-search-over-
/// ranking strategy). One model training per feature considered.
SearchResult ForwardSelection(const ml::Dataset& data,
                              const ml::Evaluator& evaluator, Rng* rng,
                              const WrapperConfig& config = {});

/// Backward elimination guided by a random-forest ranking: start from all
/// features and walk the ranking from worst to best, removing a feature
/// whenever doing so does not hurt the holdout score. Trains on large
/// feature sets throughout, hence the slowest method in the paper's
/// Table 1.
SearchResult BackwardElimination(const ml::Dataset& data,
                                 const ml::Evaluator& evaluator, Rng* rng,
                                 const WrapperConfig& config = {});

/// Recursive feature elimination: repeatedly fit the random-forest
/// ranker and drop the lowest-ranked `drop_fraction` of surviving
/// features, scoring each stage; returns the best stage seen.
SearchResult RecursiveFeatureElimination(const ml::Dataset& data,
                                         const ml::Evaluator& evaluator,
                                         Rng* rng,
                                         double drop_fraction = 0.25,
                                         const WrapperConfig& config = {});

}  // namespace arda::featsel

#endif  // ARDA_FEATSEL_WRAPPERS_H_
