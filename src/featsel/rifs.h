#ifndef ARDA_FEATSEL_RIFS_H_
#define ARDA_FEATSEL_RIFS_H_

#include <vector>

#include "featsel/ranker.h"
#include "ml/evaluator.h"

namespace arda::featsel {

/// Distribution the injected random features are drawn from
/// (Section 6.1).
enum class NoiseKind {
  /// Moment-matched multivariate normal N(mu, Sigma) fit to the empirical
  /// feature moments (Algorithm 2) — the aggressive strategy for inputs
  /// where signal features are a small minority.
  kMomentMatched,
  /// Standard normal noise.
  kGaussian,
  /// Uniform[0, 1) noise.
  kUniform,
  /// Bernoulli(1/2) indicator noise.
  kBernoulli,
  /// Poisson(1) count noise.
  kPoisson,
};

/// Returns a short name for the noise kind.
const char* NoiseKindName(NoiseKind kind);

/// RIFS hyperparameters (Algorithms 1 and 3 of the paper).
struct RifsConfig {
  /// Fraction eta of random features to inject (t = eta * d, at least 1).
  double eta = 0.2;
  /// Number of injection/ranking rounds k (fresh noise each round).
  size_t num_rounds = 10;
  /// Aggregate-ranking weight: nu * random-forest + (1 - nu) * sparse
  /// regression (Section 6.3).
  double nu = 0.5;
  /// Threshold sweep T, ascending (Algorithm 3). Every threshold is
  /// evaluated (each costs one cheap model training) and the best subset
  /// wins; the paper's monotone early stop is available via
  /// `stop_on_decrease`.
  std::vector<double> thresholds = {0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  /// Stop the sweep at the first score decrease (Algorithm 3 verbatim)
  /// instead of evaluating every threshold.
  bool stop_on_decrease = false;
  NoiseKind noise = NoiseKind::kMomentMatched;
  /// Threads used to run the per-round ranker ensemble: 0 = hardware
  /// concurrency, 1 = serial. Noise matrices and forest seeds are
  /// pre-drawn serially and the beat-all-noise counts are reduced in
  /// round order, so results are bit-identical for every value.
  size_t num_threads = 0;
  /// Row-permute each moment-matched noise column after sampling. The
  /// empirical covariance of Algorithm 2 lives in R^(n x n), so with few
  /// input features its samples are linear mixtures of *real* columns —
  /// including target-aligned ones — and genuine signal can never outrank
  /// them. Permuting keeps the marginal value distribution (the "looks
  /// like the input" property) while breaking target alignment.
  bool permute_moment_noise = true;
};

/// Result of a RIFS run.
struct RifsResult {
  /// Selected feature indices.
  std::vector<size_t> selected;
  /// Per-feature fraction of rounds in which the feature outranked every
  /// injected random feature (the vector r* of Algorithm 1).
  std::vector<double> beat_noise_fraction;
  /// Holdout score of the selected subset.
  double score = -1e300;
  /// Threshold tau that produced the selected subset.
  double chosen_threshold = 0.0;
  /// Model trainings performed during the threshold sweep.
  size_t evaluations = 0;
};

/// Generates `count` injected noise features for `data` (each feature is a
/// column of length n). Exposed for the Fig-6-style noise ablation.
/// `permute_moment_noise` applies only to kMomentMatched (see RifsConfig).
la::Matrix MakeNoiseFeatures(const ml::Dataset& data, size_t count,
                             NoiseKind kind, Rng* rng,
                             bool permute_moment_noise = true);

/// Random-Injection Feature Selection (Section 6): repeatedly appends
/// fresh random features to the dataset, ranks real+injected features
/// with the nu-weighted RF + sparse-regression ensemble, counts how often
/// each real feature beats *all* injected noise, then sweeps thresholds
/// over that fraction, keeping features above tau while the holdout score
/// improves monotonically.
RifsResult RunRifs(const ml::Dataset& data, const ml::Evaluator& evaluator,
                   const RifsConfig& config, Rng* rng);

}  // namespace arda::featsel

#endif  // ARDA_FEATSEL_RIFS_H_
