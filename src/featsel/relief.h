#ifndef ARDA_FEATSEL_RELIEF_H_
#define ARDA_FEATSEL_RELIEF_H_

#include "featsel/ranker.h"

namespace arda::featsel {

/// Configuration for the Relief family.
struct ReliefConfig {
  /// Instances sampled for weight updates (m); 0 means all rows, capped.
  size_t num_samples = 150;
  /// Nearest hits/misses considered per instance (k).
  size_t num_neighbors = 5;
};

/// ReliefF (classification) / RReliefF (regression) feature weighting:
/// features that separate nearest neighbors of different labels (or
/// different target values) score high; features that vary among nearest
/// same-label neighbors score low. Distances are computed on min-max
/// normalized features, the standard Relief convention. As the paper
/// notes (Section 5), Relief's reliance on nearest neighbors in the
/// original feature space makes it fragile under heavy noise — visible in
/// the micro-benchmarks.
class ReliefRanker : public FeatureRanker {
 public:
  explicit ReliefRanker(const ReliefConfig& config = {}) : config_(config) {}
  std::string name() const override { return "relief"; }
  std::vector<double> Rank(const ml::Dataset& data, Rng* rng) const override;

 private:
  ReliefConfig config_;
};

}  // namespace arda::featsel

#endif  // ARDA_FEATSEL_RELIEF_H_
