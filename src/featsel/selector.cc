#include "featsel/selector.h"

#include <utility>

#include "featsel/filter_rankers.h"
#include "featsel/model_rankers.h"
#include "featsel/relief.h"
#include "featsel/wrappers.h"
#include "util/fault.h"
#include "util/timer.h"

namespace arda::featsel {

namespace {

// Ranking method + exponential search.
class RankingSelector : public FeatureSelector {
 public:
  explicit RankingSelector(std::unique_ptr<FeatureRanker> ranker)
      : ranker_(std::move(ranker)) {}

  std::string name() const override { return ranker_->name(); }
  bool SupportsTask(ml::TaskType task) const override {
    return ranker_->SupportsTask(task);
  }

  SelectionResult Select(const ml::Dataset& data,
                         const ml::Evaluator& evaluator,
                         Rng* rng) const override {
    Stopwatch watch;
    std::vector<double> scores = ranker_->Rank(data, rng);
    SearchResult search = ExponentialSearchSelect(scores, evaluator);
    SelectionResult result;
    result.method = name();
    result.selected = std::move(search.selected);
    result.score = search.score;
    result.evaluations = search.evaluations;
    result.seconds = watch.ElapsedSeconds();
    return result;
  }

 private:
  std::unique_ptr<FeatureRanker> ranker_;
};

class AllFeaturesSelector : public FeatureSelector {
 public:
  std::string name() const override { return "all_features"; }
  SelectionResult Select(const ml::Dataset& data,
                         const ml::Evaluator& evaluator,
                         Rng* rng) const override {
    (void)rng;
    SelectionResult result;
    result.method = name();
    result.selected = ml::AllFeatureIndices(data.NumFeatures());
    result.score = evaluator.ScoreFeatures(result.selected);
    result.evaluations = 1;
    result.seconds = 0.0;  // no selection work, matching the paper's plots
    return result;
  }
};

class RifsSelector : public FeatureSelector {
 public:
  RifsSelector(const RifsConfig& config, std::string name)
      : config_(config), name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Result<SelectionResult> TrySelect(const ml::Dataset& data,
                                    const ml::Evaluator& evaluator,
                                    Rng* rng) const override {
    ARDA_FAULT_POINT(fault::kRifs);
    return FeatureSelector::TrySelect(data, evaluator, rng);
  }
  SelectionResult Select(const ml::Dataset& data,
                         const ml::Evaluator& evaluator,
                         Rng* rng) const override {
    Stopwatch watch;
    RifsResult rifs = RunRifs(data, evaluator, config_, rng);
    SelectionResult result;
    result.method = name_;
    result.selected = std::move(rifs.selected);
    result.score = rifs.score;
    result.evaluations = rifs.evaluations;
    result.seconds = watch.ElapsedSeconds();
    return result;
  }

 private:
  RifsConfig config_;
  std::string name_;
};

enum class WrapperKind { kForward, kBackward, kRfe };

class WrapperSelector : public FeatureSelector {
 public:
  WrapperSelector(WrapperKind kind, std::string name)
      : kind_(kind), name_(std::move(name)) {}

  std::string name() const override { return name_; }
  SelectionResult Select(const ml::Dataset& data,
                         const ml::Evaluator& evaluator,
                         Rng* rng) const override {
    Stopwatch watch;
    SearchResult search;
    switch (kind_) {
      case WrapperKind::kForward:
        search = ForwardSelection(data, evaluator, rng);
        break;
      case WrapperKind::kBackward:
        search = BackwardElimination(data, evaluator, rng);
        break;
      case WrapperKind::kRfe:
        search = RecursiveFeatureElimination(data, evaluator, rng);
        break;
    }
    SelectionResult result;
    result.method = name_;
    result.selected = std::move(search.selected);
    result.score = search.score;
    result.evaluations = search.evaluations;
    result.seconds = watch.ElapsedSeconds();
    return result;
  }

 private:
  WrapperKind kind_;
  std::string name_;
};

}  // namespace

Result<SelectionResult> FeatureSelector::TrySelect(
    const ml::Dataset& data, const ml::Evaluator& evaluator, Rng* rng) const {
  if (data.NumFeatures() == 0) {
    return Status::FailedPrecondition(
        "feature selection needs at least one feature");
  }
  if (data.NumRows() == 0) {
    return Status::FailedPrecondition(
        "feature selection needs at least one row");
  }
  return Select(data, evaluator, rng);
}

std::unique_ptr<FeatureSelector> MakeSelector(const std::string& name) {
  if (name == "rifs") return MakeRifsSelector(RifsConfig{});
  if (name == "all_features") return std::make_unique<AllFeaturesSelector>();
  if (name == "forward_selection") {
    return std::make_unique<WrapperSelector>(WrapperKind::kForward, name);
  }
  if (name == "backward_selection") {
    return std::make_unique<WrapperSelector>(WrapperKind::kBackward, name);
  }
  if (name == "rfe") {
    return std::make_unique<WrapperSelector>(WrapperKind::kRfe, name);
  }
  if (name == "random_forest") {
    return std::make_unique<RankingSelector>(
        std::make_unique<RandomForestRanker>());
  }
  if (name == "sparse_regression") {
    return std::make_unique<RankingSelector>(
        std::make_unique<SparseRegressionRanker>());
  }
  if (name == "mutual_info") {
    return std::make_unique<RankingSelector>(
        std::make_unique<MutualInfoRanker>());
  }
  if (name == "chi_squared") {
    return std::make_unique<RankingSelector>(
        std::make_unique<ChiSquaredRanker>());
  }
  if (name == "f_test") {
    return std::make_unique<RankingSelector>(std::make_unique<FTestRanker>());
  }
  if (name == "pearson") {
    return std::make_unique<RankingSelector>(
        std::make_unique<PearsonRanker>());
  }
  if (name == "lasso") {
    return std::make_unique<RankingSelector>(std::make_unique<LassoRanker>());
  }
  if (name == "relief") {
    return std::make_unique<RankingSelector>(
        std::make_unique<ReliefRanker>());
  }
  if (name == "linear_svc") {
    return std::make_unique<RankingSelector>(
        std::make_unique<LinearSvcRanker>());
  }
  if (name == "logistic_reg") {
    return std::make_unique<RankingSelector>(
        std::make_unique<LogisticRanker>());
  }
  return nullptr;
}

std::unique_ptr<FeatureSelector> MakeRifsSelector(const RifsConfig& config,
                                                  std::string name) {
  return std::make_unique<RifsSelector>(config, std::move(name));
}

std::vector<std::string> PaperSelectorNames(ml::TaskType task) {
  std::vector<std::string> names = {
      "rifs",      "backward_selection", "forward_selection",
      "rfe",       "sparse_regression",  "random_forest",
      "f_test",    "lasso",              "mutual_info",
      "relief",    "linear_svc",         "logistic_reg",
  };
  std::vector<std::string> applicable;
  for (const std::string& name : names) {
    std::unique_ptr<FeatureSelector> selector = MakeSelector(name);
    if (selector != nullptr && selector->SupportsTask(task)) {
      applicable.push_back(name);
    }
  }
  return applicable;
}

}  // namespace arda::featsel
