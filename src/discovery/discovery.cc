#include "discovery/discovery.h"

#include <algorithm>
#include <set>

#include "discovery/minhash.h"
#include "util/string_util.h"

namespace arda::discovery {

double IntersectionScore(const df::Column& base, const df::Column& foreign) {
  std::vector<std::string> base_values = base.DistinctValuesAsString();
  if (base_values.empty()) return 0.0;
  std::vector<std::string> foreign_values = foreign.DistinctValuesAsString();
  std::set<std::string> foreign_set(foreign_values.begin(),
                                    foreign_values.end());
  size_t hits = 0;
  for (const std::string& v : base_values) {
    if (foreign_set.count(v) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(base_values.size());
}

double RangeOverlap(const df::Column& base, const df::Column& foreign) {
  if (!base.IsNumeric() || !foreign.IsNumeric()) return 0.0;
  std::vector<double> bv = base.NonNullNumericValues();
  std::vector<double> fv = foreign.NonNullNumericValues();
  if (bv.empty() || fv.empty()) return 0.0;
  auto [b_lo_it, b_hi_it] = std::minmax_element(bv.begin(), bv.end());
  auto [f_lo_it, f_hi_it] = std::minmax_element(fv.begin(), fv.end());
  double b_lo = *b_lo_it, b_hi = *b_hi_it;
  double f_lo = *f_lo_it, f_hi = *f_hi_it;
  double inter = std::min(b_hi, f_hi) - std::max(b_lo, f_lo);
  if (inter <= 0.0) return 0.0;
  double base_span = b_hi - b_lo;
  if (base_span <= 0.0) return 1.0;  // single base value inside the range
  return std::min(1.0, inter / base_span);
}

std::vector<CandidateJoin> DiscoverCandidates(
    const DataRepository& repo, const std::string& base_name,
    const std::string& target_column, const DiscoveryOptions& options) {
  std::vector<CandidateJoin> candidates;
  Result<const df::DataFrame*> base_result = repo.Get(base_name);
  if (!base_result.ok()) return candidates;
  const df::DataFrame& base = *base_result.value();

  for (const std::string& table_name : repo.Names()) {
    if (table_name == base_name) continue;
    const df::DataFrame& foreign = repo.GetOrDie(table_name);
    CandidateJoin best;
    best.foreign_table = table_name;
    for (size_t bi = 0; bi < base.NumCols(); ++bi) {
      const df::Column& base_col = base.col(bi);
      if (base_col.name() == target_column) continue;
      for (size_t fi = 0; fi < foreign.NumCols(); ++fi) {
        const df::Column& foreign_col = foreign.col(fi);
        if (options.require_name_match &&
            ToLower(base_col.name()) != ToLower(foreign_col.name())) {
          continue;
        }
        if (base_col.type() != foreign_col.type()) continue;
        // Exact-overlap hard key? (Or its MinHash estimate.)
        double inter;
        if (options.use_minhash) {
          MinHashSignature base_sig(base_col, options.minhash_hashes);
          MinHashSignature foreign_sig(foreign_col,
                                       options.minhash_hashes);
          inter = base_sig.EstimateJaccard(foreign_sig);
        } else {
          inter = IntersectionScore(base_col, foreign_col);
        }
        if (inter >= options.min_intersection && inter >= best.score) {
          best.score = inter;
          best.keys = {JoinKeyPair{base_col.name(), foreign_col.name(),
                                   KeyKind::kHard}};
          continue;
        }
        // Numeric near-alignment soft key (e.g. timestamps at different
        // granularities never match exactly but cover the same range).
        if (base_col.IsNumeric()) {
          double overlap = RangeOverlap(base_col, foreign_col);
          // Soft candidates rank below equally strong hard ones.
          double score = 0.5 * overlap;
          if (overlap >= options.min_range_overlap && score > best.score) {
            best.score = score;
            best.keys = {JoinKeyPair{base_col.name(), foreign_col.name(),
                                     KeyKind::kSoft}};
          }
        }
      }
    }
    if (!best.keys.empty()) {
      candidates.push_back(std::move(best));
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const CandidateJoin& a, const CandidateJoin& b) {
                     return a.score > b.score;
                   });
  return candidates;
}

}  // namespace arda::discovery
