#include "discovery/discovery.h"

#include <algorithm>
#include <memory>
#include <set>

#include "discovery/minhash.h"
#include "util/string_util.h"

namespace arda::discovery {

double IntersectionScore(const df::Column& base, const df::Column& foreign) {
  std::vector<std::string> base_values = base.DistinctValuesAsString();
  if (base_values.empty()) return 0.0;
  std::vector<std::string> foreign_values = foreign.DistinctValuesAsString();
  std::set<std::string> foreign_set(foreign_values.begin(),
                                    foreign_values.end());
  size_t hits = 0;
  for (const std::string& v : base_values) {
    if (foreign_set.count(v) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(base_values.size());
}

double SpanOverlap(double b_lo, double b_hi, double f_lo, double f_hi) {
  if (b_hi < f_lo || f_hi < b_lo) return 0.0;  // disjoint
  const double base_span = b_hi - b_lo;
  // Zero-width base: the single base value lies inside (or on the edge
  // of) the foreign range, so the base is fully covered — two columns
  // holding the same single value overlap completely.
  if (base_span <= 0.0) return 1.0;
  const double inter = std::min(b_hi, f_hi) - std::max(b_lo, f_lo);
  return std::clamp(inter / base_span, 0.0, 1.0);
}

double RangeOverlap(const df::Column& base, const df::Column& foreign) {
  if (!base.IsNumeric() || !foreign.IsNumeric()) return 0.0;
  std::vector<double> bv = base.NonNullNumericValues();
  std::vector<double> fv = foreign.NonNullNumericValues();
  if (bv.empty() || fv.empty()) return 0.0;
  auto [b_lo_it, b_hi_it] = std::minmax_element(bv.begin(), bv.end());
  auto [f_lo_it, f_hi_it] = std::minmax_element(fv.begin(), fv.end());
  return SpanOverlap(*b_lo_it, *b_hi_it, *f_lo_it, *f_hi_it);
}

double RangeOverlapFromStats(const df::ColumnStats& base,
                             const df::ColumnStats& foreign) {
  if (!base.has_range || !foreign.has_range) return 0.0;
  return SpanOverlap(base.min, base.max, foreign.min, foreign.max);
}

namespace {

// Hard-key containment scorer for one DiscoverCandidates call. Per-column
// state (MinHash signatures in kMinHash mode) is built at most once per
// column — the former per-pair signature rebuild in the innermost loop
// made MinHash mode more expensive than the exact rescan it replaced.
class HardKeyScorer {
 public:
  HardKeyScorer(const DiscoveryOptions& options, const DataRepository& repo,
                const std::string& base_name, const df::DataFrame& base)
      : options_(options), repo_(repo), base_(base) {
    scoring_ = options.use_minhash ? DiscoveryScoring::kMinHash
                                   : options.scoring;
    if (scoring_ == DiscoveryScoring::kMinHash) {
      base_signatures_.resize(base.NumCols());
    } else if (scoring_ == DiscoveryScoring::kCatalog) {
      base_stats_ = repo.Stats(base_name);
      // A base table supplied outside the repository has no catalog
      // entry; score it from a locally computed one.
      if (base_stats_ == nullptr) {
        local_base_stats_ =
            std::make_unique<df::TableStats>(df::ComputeTableStats(base));
        base_stats_ = local_base_stats_.get();
      }
    }
  }

  // Called once per foreign table, before Containment/SoftOverlap.
  void BeginTable(const std::string& table_name,
                  const df::DataFrame& foreign) {
    foreign_ = &foreign;
    if (scoring_ == DiscoveryScoring::kMinHash) {
      foreign_signatures_.clear();
      foreign_signatures_.resize(foreign.NumCols());
    } else if (scoring_ == DiscoveryScoring::kCatalog) {
      foreign_stats_ = repo_.Stats(table_name);
    }
  }

  // Estimated (or exact) containment of base column `bi`'s distinct
  // values in foreign column `fi`'s.
  double Containment(size_t bi, size_t fi) {
    switch (scoring_) {
      case DiscoveryScoring::kExact:
        return IntersectionScore(base_.col(bi), foreign_->col(fi));
      case DiscoveryScoring::kMinHash:
        return BaseSignature(bi).EstimateContainment(ForeignSignature(fi));
      case DiscoveryScoring::kCatalog:
        if (foreign_stats_ == nullptr) {
          return IntersectionScore(base_.col(bi), foreign_->col(fi));
        }
        return df::EstimateContainment(base_stats_->columns[bi],
                                       foreign_stats_->columns[fi]);
    }
    return 0.0;
  }

  // Numeric range overlap for the soft-key heuristic.
  double SoftOverlap(size_t bi, size_t fi) const {
    if (scoring_ == DiscoveryScoring::kCatalog &&
        foreign_stats_ != nullptr) {
      return RangeOverlapFromStats(base_stats_->columns[bi],
                                   foreign_stats_->columns[fi]);
    }
    return RangeOverlap(base_.col(bi), foreign_->col(fi));
  }

 private:
  const MinHashSignature& BaseSignature(size_t bi) {
    if (base_signatures_[bi] == nullptr) {
      base_signatures_[bi] = std::make_unique<MinHashSignature>(
          base_.col(bi), options_.minhash_hashes);
    }
    return *base_signatures_[bi];
  }

  const MinHashSignature& ForeignSignature(size_t fi) {
    if (foreign_signatures_[fi] == nullptr) {
      foreign_signatures_[fi] = std::make_unique<MinHashSignature>(
          foreign_->col(fi), options_.minhash_hashes);
    }
    return *foreign_signatures_[fi];
  }

  const DiscoveryOptions& options_;
  const DataRepository& repo_;
  const df::DataFrame& base_;
  const df::DataFrame* foreign_ = nullptr;
  DiscoveryScoring scoring_ = DiscoveryScoring::kCatalog;
  // kCatalog state.
  const df::TableStats* base_stats_ = nullptr;
  const df::TableStats* foreign_stats_ = nullptr;
  std::unique_ptr<df::TableStats> local_base_stats_;
  // kMinHash state: signatures built lazily, once per column.
  std::vector<std::unique_ptr<MinHashSignature>> base_signatures_;
  std::vector<std::unique_ptr<MinHashSignature>> foreign_signatures_;
};

}  // namespace

std::vector<CandidateJoin> DiscoverCandidates(
    const DataRepository& repo, const std::string& base_name,
    const std::string& target_column, const DiscoveryOptions& options) {
  std::vector<CandidateJoin> candidates;
  Result<const df::DataFrame*> base_result = repo.Get(base_name);
  if (!base_result.ok()) return candidates;
  const df::DataFrame& base = *base_result.value();

  HardKeyScorer scorer(options, repo, base_name, base);
  for (const std::string& table_name : repo.Names()) {
    if (table_name == base_name) continue;
    const df::DataFrame& foreign = repo.GetOrDie(table_name);
    scorer.BeginTable(table_name, foreign);
    CandidateJoin best;
    best.foreign_table = table_name;
    for (size_t bi = 0; bi < base.NumCols(); ++bi) {
      const df::Column& base_col = base.col(bi);
      if (base_col.name() == target_column) continue;
      for (size_t fi = 0; fi < foreign.NumCols(); ++fi) {
        const df::Column& foreign_col = foreign.col(fi);
        if (options.require_name_match &&
            ToLower(base_col.name()) != ToLower(foreign_col.name())) {
          continue;
        }
        if (base_col.type() != foreign_col.type()) continue;
        // Containment hard key? (Exact, or its sketch estimate.)
        double inter = scorer.Containment(bi, fi);
        if (inter >= options.min_intersection && inter >= best.score) {
          best.score = inter;
          best.keys = {JoinKeyPair{base_col.name(), foreign_col.name(),
                                   KeyKind::kHard}};
          continue;
        }
        // Numeric near-alignment soft key (e.g. timestamps at different
        // granularities never match exactly but cover the same range).
        if (base_col.IsNumeric()) {
          double overlap = scorer.SoftOverlap(bi, fi);
          // Soft candidates rank below equally strong hard ones.
          double score = 0.5 * overlap;
          if (overlap >= options.min_range_overlap && score > best.score) {
            best.score = score;
            best.keys = {JoinKeyPair{base_col.name(), foreign_col.name(),
                                     KeyKind::kSoft}};
          }
        }
      }
    }
    if (!best.keys.empty()) {
      candidates.push_back(std::move(best));
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const CandidateJoin& a, const CandidateJoin& b) {
                     return a.score > b.score;
                   });
  return candidates;
}

}  // namespace arda::discovery
