#ifndef ARDA_DISCOVERY_TUPLE_RATIO_H_
#define ARDA_DISCOVERY_TUPLE_RATIO_H_

#include <string>
#include <vector>

#include "dataframe/data_frame.h"
#include "discovery/candidate.h"
#include "discovery/repository.h"
#include "util/status.h"

namespace arda::discovery {

/// The Tuple Ratio of Kumar et al. ("To join or not to join?", SIGMOD'16):
/// nS / nR, where nS is the number of base-table training examples and nR
/// the size of the foreign-key domain (distinct key combinations in the
/// foreign table). Their VC-dimension analysis shows a foreign table is
/// highly unlikely to help a classifier when the ratio exceeds a
/// model-dependent threshold, because the key itself already carries all
/// the information the join could add.
///
/// Fails with NotFound when the candidate references a foreign key column
/// the table does not have — a broken reference, not a legitimate ratio.
/// (Key-less candidates and empty foreign tables still yield the
/// degenerate ratio nS, treating the domain as size 1.)
Result<double> TupleRatio(const df::DataFrame& base,
                          const df::DataFrame& foreign,
                          const CandidateJoin& candidate);

/// One candidate dropped by the prefilter, with why.
struct RemovedCandidate {
  CandidateJoin candidate;
  /// Human-readable removal reason (the ratio, or the broken reference).
  std::string reason;
  /// True when the candidate referenced a missing table or key column —
  /// a data-integrity problem the caller should surface as a skip, not a
  /// legitimate "table too large" filter decision.
  bool broken_reference = false;
};

/// Result of applying the TR decision rule as a prefilter.
struct TupleRatioFilterResult {
  std::vector<CandidateJoin> kept;
  std::vector<RemovedCandidate> removed;
};

/// Keeps only candidates whose tuple ratio is at most `tau` (the paper's
/// Table 4 experiment: prefilter tables before feature selection).
/// Candidates referencing missing tables or key columns are removed with
/// `broken_reference` set.
TupleRatioFilterResult FilterByTupleRatio(
    const DataRepository& repo, const df::DataFrame& base,
    const std::vector<CandidateJoin>& candidates, double tau);

}  // namespace arda::discovery

#endif  // ARDA_DISCOVERY_TUPLE_RATIO_H_
