#include "discovery/transitive.h"

#include <algorithm>
#include <set>

namespace arda::discovery {

std::vector<TransitiveCandidate> DiscoverTransitiveCandidates(
    const DataRepository& repo, const std::string& base_name,
    const std::string& target_column, const DiscoveryOptions& options) {
  std::vector<TransitiveCandidate> paths;
  std::vector<CandidateJoin> direct =
      DiscoverCandidates(repo, base_name, target_column, options);
  std::set<std::string> directly_reachable;
  directly_reachable.insert(base_name);
  for (const CandidateJoin& cand : direct) {
    directly_reachable.insert(cand.foreign_table);
  }

  for (const CandidateJoin& first_hop : direct) {
    // Discover joins *from the via table*; the via table's target concept
    // doesn't exist, so pass an empty target column.
    std::vector<CandidateJoin> second_hops =
        DiscoverCandidates(repo, first_hop.foreign_table, "", options);
    for (const CandidateJoin& second_hop : second_hops) {
      if (directly_reachable.count(second_hop.foreign_table) > 0) {
        continue;  // already joinable in one hop (or the base itself)
      }
      TransitiveCandidate path;
      path.via_table = first_hop.foreign_table;
      path.base_to_via = first_hop.keys;
      path.final_table = second_hop.foreign_table;
      path.via_to_final = second_hop.keys;
      path.score = std::min(first_hop.score, second_hop.score);
      paths.push_back(std::move(path));
    }
  }
  std::stable_sort(paths.begin(), paths.end(),
                   [](const TransitiveCandidate& a,
                      const TransitiveCandidate& b) {
                     return a.score > b.score;
                   });
  return paths;
}

}  // namespace arda::discovery
