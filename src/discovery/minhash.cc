#include "discovery/minhash.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "dataframe/column_stats.h"
#include "util/check.h"

namespace arda::discovery {

// Value and permutation hashing are shared with the persisted statistics
// catalog (df::ComputeColumnStats), so a signature built here with the
// catalog's width/seed is slot-identical to the catalog's sketch.
MinHashSignature::MinHashSignature(const df::Column& column,
                                   size_t num_hashes, uint64_t seed) {
  ARDA_CHECK_GT(num_hashes, 0u);
  slots_.assign(num_hashes, std::numeric_limits<uint64_t>::max());
  for (const std::string& value : column.DistinctValuesAsString()) {
    empty_ = false;
    uint64_t base = df::StatsFnv1a64(value);
    for (size_t h = 0; h < num_hashes; ++h) {
      uint64_t mixed = df::StatsMixHash(base, seed + h);
      if (mixed < slots_[h]) slots_[h] = mixed;
    }
  }
}

double MinHashSignature::EstimateJaccard(
    const MinHashSignature& other) const {
  ARDA_CHECK_EQ(slots_.size(), other.slots_.size());
  if (empty_ || other.empty_) return 0.0;
  size_t matches = 0;
  for (size_t h = 0; h < slots_.size(); ++h) {
    matches += slots_[h] == other.slots_[h];
  }
  return static_cast<double>(matches) /
         static_cast<double>(slots_.size());
}

double MinHashSignature::EstimateCardinality() const {
  if (empty_) return 0.0;
  double mean = 0.0;
  for (uint64_t slot : slots_) {
    mean += std::ldexp(static_cast<double>(slot), -64);
  }
  mean /= static_cast<double>(slots_.size());
  if (mean <= 0.0) return 0.0;
  return std::max(1.0, 1.0 / mean - 1.0);
}

double MinHashSignature::EstimateContainment(
    const MinHashSignature& other) const {
  if (empty_ || other.empty_) return 0.0;
  const double na = EstimateCardinality();
  const double nb = other.EstimateCardinality();
  if (na <= 0.0) return 0.0;
  const double jaccard = EstimateJaccard(other);
  const double intersection = jaccard * (na + nb) / (1.0 + jaccard);
  return std::clamp(intersection / na, 0.0, 1.0);
}

double ExactJaccard(const df::Column& a, const df::Column& b) {
  std::vector<std::string> va = a.DistinctValuesAsString();
  std::vector<std::string> vb = b.DistinctValuesAsString();
  if (va.empty() || vb.empty()) return 0.0;
  std::set<std::string> sa(va.begin(), va.end());
  size_t intersection = 0;
  for (const std::string& value : vb) {
    intersection += sa.count(value);
  }
  size_t unions = sa.size() + vb.size() - intersection;
  return unions == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(unions);
}

}  // namespace arda::discovery
