#include "discovery/minhash.h"

#include <algorithm>
#include <limits>
#include <set>
#include <string>

#include "util/check.h"

namespace arda::discovery {

namespace {

// 64-bit FNV-1a over a string.
uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

// Mixes a value hash with a per-permutation key (xorshift-multiply).
uint64_t Mix(uint64_t value, uint64_t key) {
  uint64_t x = value ^ (key * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

MinHashSignature::MinHashSignature(const df::Column& column,
                                   size_t num_hashes, uint64_t seed) {
  ARDA_CHECK_GT(num_hashes, 0u);
  slots_.assign(num_hashes, std::numeric_limits<uint64_t>::max());
  for (const std::string& value : column.DistinctValuesAsString()) {
    empty_ = false;
    uint64_t base = Fnv1a(value);
    for (size_t h = 0; h < num_hashes; ++h) {
      uint64_t mixed = Mix(base, seed + h);
      if (mixed < slots_[h]) slots_[h] = mixed;
    }
  }
}

double MinHashSignature::EstimateJaccard(
    const MinHashSignature& other) const {
  ARDA_CHECK_EQ(slots_.size(), other.slots_.size());
  if (empty_ || other.empty_) return 0.0;
  size_t matches = 0;
  for (size_t h = 0; h < slots_.size(); ++h) {
    matches += slots_[h] == other.slots_[h];
  }
  return static_cast<double>(matches) /
         static_cast<double>(slots_.size());
}

double ExactJaccard(const df::Column& a, const df::Column& b) {
  std::vector<std::string> va = a.DistinctValuesAsString();
  std::vector<std::string> vb = b.DistinctValuesAsString();
  if (va.empty() || vb.empty()) return 0.0;
  std::set<std::string> sa(va.begin(), va.end());
  size_t intersection = 0;
  for (const std::string& value : vb) {
    intersection += sa.count(value);
  }
  size_t unions = sa.size() + vb.size() - intersection;
  return unions == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(unions);
}

}  // namespace arda::discovery
