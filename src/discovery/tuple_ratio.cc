#include "discovery/tuple_ratio.h"

#include <set>

#include "util/string_util.h"

namespace arda::discovery {

Result<double> TupleRatio(const df::DataFrame& base,
                          const df::DataFrame& foreign,
                          const CandidateJoin& candidate) {
  const double ns = static_cast<double>(base.NumRows());
  // A key column the foreign table doesn't have is a broken reference —
  // report it instead of returning a degenerate ratio that would make the
  // candidate look legitimately "too large".
  for (const JoinKeyPair& key : candidate.keys) {
    if (!foreign.HasColumn(key.foreign_column)) {
      return Status::NotFound("foreign table has no key column: " +
                              key.foreign_column);
    }
  }
  // Foreign-key domain size: distinct key combinations in the foreign
  // table on the candidate's key columns.
  std::set<std::string> domain;
  if (candidate.keys.empty() || foreign.NumRows() == 0) {
    return ns;  // degenerate: treat the domain as size 1
  }
  for (size_t r = 0; r < foreign.NumRows(); ++r) {
    std::string composite;
    for (const JoinKeyPair& key : candidate.keys) {
      const df::Column& col = foreign.col(key.foreign_column);
      composite += col.IsNull(r) ? "\x1e" : col.ValueToString(r);
      composite += '\x1f';
    }
    domain.insert(std::move(composite));
  }
  if (domain.empty()) return ns;
  return ns / static_cast<double>(domain.size());
}

TupleRatioFilterResult FilterByTupleRatio(
    const DataRepository& repo, const df::DataFrame& base,
    const std::vector<CandidateJoin>& candidates, double tau) {
  TupleRatioFilterResult result;
  for (const CandidateJoin& candidate : candidates) {
    Result<const df::DataFrame*> foreign = repo.Get(candidate.foreign_table);
    if (!foreign.ok()) {
      result.removed.push_back(
          {candidate, foreign.status().message(), /*broken_reference=*/true});
      continue;
    }
    Result<double> ratio = TupleRatio(base, *foreign.value(), candidate);
    if (!ratio.ok()) {
      result.removed.push_back(
          {candidate, ratio.status().message(), /*broken_reference=*/true});
      continue;
    }
    if (*ratio <= tau) {
      result.kept.push_back(candidate);
    } else {
      result.removed.push_back(
          {candidate,
           StrFormat("tuple ratio %.2f exceeds tau %.2f", *ratio, tau),
           /*broken_reference=*/false});
    }
  }
  return result;
}

}  // namespace arda::discovery
