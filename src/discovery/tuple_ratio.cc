#include "discovery/tuple_ratio.h"

#include <set>

namespace arda::discovery {

double TupleRatio(const df::DataFrame& base, const df::DataFrame& foreign,
                  const CandidateJoin& candidate) {
  const double ns = static_cast<double>(base.NumRows());
  // Foreign-key domain size: distinct key combinations in the foreign
  // table on the candidate's key columns.
  std::set<std::string> domain;
  if (candidate.keys.empty() || foreign.NumRows() == 0) {
    return ns;  // degenerate: treat the domain as size 1
  }
  for (size_t r = 0; r < foreign.NumRows(); ++r) {
    std::string composite;
    for (const JoinKeyPair& key : candidate.keys) {
      if (!foreign.HasColumn(key.foreign_column)) return ns;
      const df::Column& col = foreign.col(key.foreign_column);
      composite += col.IsNull(r) ? "\x1e" : col.ValueToString(r);
      composite += '\x1f';
    }
    domain.insert(std::move(composite));
  }
  if (domain.empty()) return ns;
  return ns / static_cast<double>(domain.size());
}

TupleRatioFilterResult FilterByTupleRatio(
    const DataRepository& repo, const df::DataFrame& base,
    const std::vector<CandidateJoin>& candidates, double tau) {
  TupleRatioFilterResult result;
  for (const CandidateJoin& candidate : candidates) {
    Result<const df::DataFrame*> foreign = repo.Get(candidate.foreign_table);
    if (!foreign.ok()) {
      result.removed.push_back(candidate);
      continue;
    }
    double ratio = TupleRatio(base, *foreign.value(), candidate);
    if (ratio <= tau) {
      result.kept.push_back(candidate);
    } else {
      result.removed.push_back(candidate);
    }
  }
  return result;
}

}  // namespace arda::discovery
