#ifndef ARDA_DISCOVERY_DISCOVERY_H_
#define ARDA_DISCOVERY_DISCOVERY_H_

#include <string>
#include <vector>

#include "dataframe/data_frame.h"
#include "discovery/candidate.h"
#include "discovery/repository.h"

namespace arda::discovery {

/// Options for the simulated join-discovery heuristics.
struct DiscoveryOptions {
  /// Minimum intersection score for a hard-key candidate.
  double min_intersection = 0.05;
  /// Numeric columns whose value ranges overlap by at least this fraction
  /// and whose names match become soft-key candidates.
  double min_range_overlap = 0.3;
  /// Column-name pairs must match exactly (case-insensitive) when true;
  /// otherwise any type-compatible pair with enough value overlap joins.
  bool require_name_match = true;
  /// Score hard-key overlap with MinHash-estimated Jaccard similarity
  /// instead of the exact intersection score — how index-based discovery
  /// systems (Aurum) avoid comparing full value sets. Cheaper on wide
  /// repositories, at the cost of estimation error.
  bool use_minhash = false;
  /// Signature width when use_minhash is set.
  size_t minhash_hashes = 64;
};

/// Fraction of the base column's distinct values that also appear in the
/// foreign column — the paper's "intersection-score" used to rank
/// candidate joins when the discovery system provides no score.
double IntersectionScore(const df::Column& base, const df::Column& foreign);

/// Fractional overlap of the numeric value ranges of two columns
/// (0 when disjoint, 1 when the base range is fully covered).
double RangeOverlap(const df::Column& base, const df::Column& foreign);

/// Simulated Aurum/Auctus: scans every repository table (except
/// `base_name`) for columns joinable with base-table columns and returns
/// scored candidates, hard keys for exact value overlap and soft keys for
/// numeric near-alignment. `target_column` is never proposed as a key.
/// Results are sorted by descending score.
std::vector<CandidateJoin> DiscoverCandidates(
    const DataRepository& repo, const std::string& base_name,
    const std::string& target_column, const DiscoveryOptions& options = {});

}  // namespace arda::discovery

#endif  // ARDA_DISCOVERY_DISCOVERY_H_
