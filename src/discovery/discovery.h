#ifndef ARDA_DISCOVERY_DISCOVERY_H_
#define ARDA_DISCOVERY_DISCOVERY_H_

#include <string>
#include <vector>

#include "dataframe/column_stats.h"
#include "dataframe/data_frame.h"
#include "discovery/candidate.h"
#include "discovery/repository.h"

namespace arda::discovery {

/// How DiscoverCandidates scores hard-key value overlap.
enum class DiscoveryScoring {
  /// Exact containment by rescanning both columns' distinct values —
  /// O(values) per column pair, the reference scorer.
  kExact,
  /// Per-call MinHash signatures (containment estimated from the
  /// sketches). Signatures are built once per column per call — how
  /// index-based discovery systems (Aurum) avoid comparing full value
  /// sets — but still rebuilt on every call.
  kMinHash,
  /// The repository's persisted statistics catalog
  /// (DataRepository::Stats): sketch containment for hard keys, stored
  /// min/max for range overlap. No column rescans at all — the default.
  kCatalog,
};

/// Options for the simulated join-discovery heuristics.
struct DiscoveryOptions {
  /// Minimum containment score for a hard-key candidate.
  double min_intersection = 0.05;
  /// Numeric columns whose value ranges overlap by at least this fraction
  /// and whose names match become soft-key candidates.
  double min_range_overlap = 0.3;
  /// Column-name pairs must match exactly (case-insensitive) when true;
  /// otherwise any type-compatible pair with enough value overlap joins.
  bool require_name_match = true;
  /// Hard-key scoring backend (see DiscoveryScoring).
  DiscoveryScoring scoring = DiscoveryScoring::kCatalog;
  /// Legacy alias: forces kMinHash scoring regardless of `scoring`.
  bool use_minhash = false;
  /// Signature width for kMinHash scoring.
  size_t minhash_hashes = 64;
};

/// Fraction of the base column's distinct values that also appear in the
/// foreign column — the paper's "intersection-score" used to rank
/// candidate joins when the discovery system provides no score.
double IntersectionScore(const df::Column& base, const df::Column& foreign);

/// Fractional overlap of [b_lo, b_hi] with [f_lo, f_hi], measured as the
/// covered share of the base span. Zero-width ranges use containment
/// semantics: a point base inside (or equal to) the foreign range is
/// fully covered (1.0), while a point foreign strictly inside a wider
/// base range covers none of it (0.0).
double SpanOverlap(double b_lo, double b_hi, double f_lo, double f_hi);

/// Fractional overlap of the numeric value ranges of two columns
/// (0 when disjoint, 1 when the base range is fully covered; zero-width
/// ranges per SpanOverlap).
double RangeOverlap(const df::Column& base, const df::Column& foreign);

/// RangeOverlap computed from catalog entries instead of column scans.
/// 0 when either side has no numeric range.
double RangeOverlapFromStats(const df::ColumnStats& base,
                             const df::ColumnStats& foreign);

/// Simulated Aurum/Auctus: scans every repository table (except
/// `base_name`) for columns joinable with base-table columns and returns
/// scored candidates, hard keys for value containment and soft keys for
/// numeric near-alignment. `target_column` is never proposed as a key.
/// Results are sorted by descending score. The default kCatalog scoring
/// reads the repository's statistics catalog (computing it on demand)
/// instead of rescanning column values.
std::vector<CandidateJoin> DiscoverCandidates(
    const DataRepository& repo, const std::string& base_name,
    const std::string& target_column, const DiscoveryOptions& options = {});

}  // namespace arda::discovery

#endif  // ARDA_DISCOVERY_DISCOVERY_H_
