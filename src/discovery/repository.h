#ifndef ARDA_DISCOVERY_REPOSITORY_H_
#define ARDA_DISCOVERY_REPOSITORY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dataframe/column_stats.h"
#include "dataframe/csv.h"
#include "dataframe/data_frame.h"
#include "util/status.h"

namespace arda::discovery {

/// One table that degraded during directory loading: a corrupt columnar
/// cache that fell back to CSV, or a CSV that failed to parse (skipped).
struct IngestSkip {
  std::string table;
  std::string reason;
};

/// Options for DataRepository::LoadDirectory.
struct LoadOptions {
  /// CSV parsing options used when a table is (re-)parsed from source.
  df::CsvOptions csv;
  /// Serve fresh version-3 `.ardac` caches through an mmap
  /// (df::MapColumnar) instead of an eager read: numeric columns borrow
  /// the mapping zero-copy and pages fault in lazily, so resident memory
  /// scales with the columns actually touched — the out-of-core
  /// repository mode. Version-1/2 caches silently fall through to the
  /// eager reader (they predate the mmap-able column index; no fallback
  /// is recorded); any *failed* map degrades exactly like a failed eager
  /// read (CSV re-parse + `stats->fallbacks` entry).
  bool map_cache = false;
};

/// What DataRepository::LoadDirectory did, for reporting and tests.
struct LoadStats {
  /// Tables registered in the repository.
  size_t tables_loaded = 0;
  /// Tables served from a fresh `.ardac` cache file (CSV not re-parsed).
  size_t cache_hits = 0;
  /// Cache files written after a CSV parse (cache enabled and missing or
  /// stale).
  size_t cache_writes = 0;
  /// Columnar cache reads that failed and fell back to the CSV. Each entry
  /// has already incremented the `skips.ingest` counter; callers forward
  /// them into the run report (AugmentationTask::ingest_skips) so the
  /// counter/report lockstep holds.
  std::vector<IngestSkip> fallbacks;
  /// CSVs that failed to parse: the table is absent from the repository.
  std::vector<IngestSkip> failures;
};

/// An in-process stand-in for a data lake / open-data repository: a named
/// collection of tables the discovery system searches and ARDA joins
/// against.
///
/// Tables and their statistics are held through shared_ptr, so copying a
/// repository is cheap (it shares the frames, copy-on-write at table
/// granularity): the augmentation service builds each ingest as a copy of
/// the current repository, replaces only the re-loaded tables, and swaps
/// the copy in atomically while in-flight readers keep the old snapshot
/// alive. Mutating one copy never affects another.
///
/// Thread safety: a const DataRepository is safe to read from any number
/// of threads concurrently, including first Stats() calls (memoization is
/// internally synchronized). Mutations (Add/AddOrReplace/Remove/
/// LoadDirectory) require external exclusion — the service only mutates
/// never-published copies.
class DataRepository {
 public:
  DataRepository() = default;
  /// Copies share the underlying frames/statistics (copy-on-write).
  DataRepository(const DataRepository& other);
  DataRepository& operator=(const DataRepository& other);
  /// Moves transfer the maps; the mutex is not moved (each repository
  /// owns its own).
  DataRepository(DataRepository&& other) noexcept;
  DataRepository& operator=(DataRepository&& other) noexcept;

  /// Registers a table under `name`. Fails on duplicate names.
  Status Add(std::string name, df::DataFrame table);

  /// Replaces or inserts a table.
  void AddOrReplace(std::string name, df::DataFrame table);

  bool Has(const std::string& name) const;

  /// Returns the table; fails with NotFound for unknown names.
  Result<const df::DataFrame*> Get(const std::string& name) const;

  /// Returns the table, aborting on unknown names (use after Has).
  const df::DataFrame& GetOrDie(const std::string& name) const;

  /// Removes a table; fails with NotFound if absent.
  Status Remove(const std::string& name);

  /// Loads every `*.csv` in `data_dir` (table name = file stem), in
  /// lexicographic stem order. When `cache_dir` is non-empty it is created
  /// if needed and consulted first: a `<stem>.ardac` file whose recorded
  /// source fingerprint (size + FNV-1a hash of the CSV bytes) matches is
  /// deserialized instead of parsing the CSV (docs/columnar_format.md) and
  /// its persisted statistics catalog is installed; fingerprint-less
  /// version-1 caches fall back to an mtime comparison in which equal
  /// timestamps count as STALE (a CSV rewritten within the filesystem's
  /// timestamp granularity must not be served from cache). A missing/stale
  /// cache entry is rewritten after the CSV parse (best-effort), with the
  /// fingerprint and freshly computed stats. Any columnar failure —
  /// corruption, version skew, injected `columnar_read`/`stats_decode`
  /// fault — degrades to the CSV path and is recorded in
  /// `stats->fallbacks` (plus a `skips.ingest` counter increment); a CSV
  /// that fails to read or parse lands in `stats->failures` and the table
  /// is skipped. Only an unreadable `data_dir` fails the call. `stats`
  /// may be null. LoadOptions::map_cache selects the mmap-backed cache
  /// path (out-of-core repository mode).
  Status LoadDirectory(const std::string& data_dir,
                       const std::string& cache_dir,
                       const LoadOptions& options = {},
                       LoadStats* stats = nullptr);

  /// Per-column statistics catalog of a table (docs: DESIGN.md "Discovery
  /// statistics catalog"). Computed lazily on first request and memoized;
  /// LoadDirectory seeds it from cached `.ardac` meta blocks. Returns
  /// nullptr for unknown tables. Safe for concurrent calls (including
  /// racing first calls on the same table): memoization is serialized on
  /// an internal mutex, so concurrent service requests over one shared
  /// snapshot each see the single computed catalog.
  const df::TableStats* Stats(const std::string& name) const;

  /// Installs a precomputed statistics catalog for `name` (e.g. one
  /// deserialized from a cache meta block).
  void SetStats(const std::string& name, df::TableStats stats);

  /// All table names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const { return tables_.size(); }

 private:
  /// Frames are immutable once registered (const through the shared_ptr),
  /// which is what makes sharing them across repository copies sound.
  std::map<std::string, std::shared_ptr<const df::DataFrame>> tables_;
  /// Lazily computed per-table stats; invalidated whenever the table
  /// changes. Mutable + mutex so Stats() can memoize through a const
  /// repository under concurrent readers. The shared_ptr targets are
  /// stable, so pointers handed out by Stats() survive later memoization
  /// of other tables.
  mutable std::mutex stats_mu_;
  mutable std::map<std::string, std::shared_ptr<const df::TableStats>>
      stats_;
};

}  // namespace arda::discovery

#endif  // ARDA_DISCOVERY_REPOSITORY_H_
