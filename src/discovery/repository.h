#ifndef ARDA_DISCOVERY_REPOSITORY_H_
#define ARDA_DISCOVERY_REPOSITORY_H_

#include <map>
#include <string>
#include <vector>

#include "dataframe/data_frame.h"
#include "util/status.h"

namespace arda::discovery {

/// An in-process stand-in for a data lake / open-data repository: a named
/// collection of tables the discovery system searches and ARDA joins
/// against.
class DataRepository {
 public:
  /// Registers a table under `name`. Fails on duplicate names.
  Status Add(std::string name, df::DataFrame table);

  /// Replaces or inserts a table.
  void AddOrReplace(std::string name, df::DataFrame table);

  bool Has(const std::string& name) const;

  /// Returns the table; fails with NotFound for unknown names.
  Result<const df::DataFrame*> Get(const std::string& name) const;

  /// Returns the table, aborting on unknown names (use after Has).
  const df::DataFrame& GetOrDie(const std::string& name) const;

  /// Removes a table; fails with NotFound if absent.
  Status Remove(const std::string& name);

  /// All table names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, df::DataFrame> tables_;
};

}  // namespace arda::discovery

#endif  // ARDA_DISCOVERY_REPOSITORY_H_
