#ifndef ARDA_DISCOVERY_CANDIDATE_H_
#define ARDA_DISCOVERY_CANDIDATE_H_

#include <string>
#include <vector>

namespace arda::discovery {

/// Whether a join key must match exactly (hard) or joins to the closest
/// value (soft — e.g. timestamps, GPS coordinates, ages).
enum class KeyKind { kHard, kSoft };

/// One base-column/foreign-column pairing of a (possibly composite) join
/// key.
struct JoinKeyPair {
  std::string base_column;
  std::string foreign_column;
  KeyKind kind = KeyKind::kHard;
};

/// A candidate join produced by the data-discovery system: which foreign
/// table to join, on which keys, with a relevance score used by ARDA to
/// prioritize its join plan (higher is more promising).
struct CandidateJoin {
  std::string foreign_table;
  std::vector<JoinKeyPair> keys;
  /// Discovery relevance score (e.g. intersection score); higher first.
  double score = 0.0;

  /// True if any key pair is soft.
  bool HasSoftKey() const {
    for (const JoinKeyPair& key : keys) {
      if (key.kind == KeyKind::kSoft) return true;
    }
    return false;
  }
};

}  // namespace arda::discovery

#endif  // ARDA_DISCOVERY_CANDIDATE_H_
