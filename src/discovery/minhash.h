#ifndef ARDA_DISCOVERY_MINHASH_H_
#define ARDA_DISCOVERY_MINHASH_H_

#include <cstdint>
#include <vector>

#include "dataframe/column.h"

namespace arda::discovery {

/// MinHash signature of a column's distinct-value set. Data-discovery
/// systems like Aurum index columns by exactly such signatures so that
/// candidate joins can be proposed without comparing full value sets —
/// the resemblance (Jaccard similarity) of two sets is estimated as the
/// fraction of matching signature slots.
class MinHashSignature {
 public:
  /// Builds the signature of `column`'s distinct non-null values using
  /// `num_hashes` independent hash permutations derived from `seed`.
  /// All signatures that will be compared must use the same num_hashes
  /// and seed.
  MinHashSignature(const df::Column& column, size_t num_hashes = 64,
                   uint64_t seed = 0x51u);

  /// Estimated Jaccard similarity with another signature (same
  /// num_hashes/seed required). Empty columns give 0.
  double EstimateJaccard(const MinHashSignature& other) const;

  /// Estimated number of distinct values in the underlying set: each slot
  /// is the minimum of n uniform 64-bit hashes, so E[min] ≈ 2^64/(n+1)
  /// and the mean slot value inverts to n. 0 for empty columns.
  double EstimateCardinality() const;

  /// Estimated containment |this ∩ other| / |this| of this signature's
  /// value set in the other's, combining the Jaccard estimate with the
  /// sketch cardinalities:
  ///   |A ∩ B| ≈ J·(|A| + |B|) / (1 + J).
  /// Unlike the symmetric Jaccard, this matches the semantics of the
  /// exact IntersectionScore (and its min_intersection threshold): a
  /// small base key fully contained in a large dimension table scores
  /// near 1, not near |A|/|B|. Clamped to [0, 1]; 0 for empty columns.
  double EstimateContainment(const MinHashSignature& other) const;

  size_t num_hashes() const { return slots_.size(); }
  bool empty() const { return empty_; }
  const std::vector<uint64_t>& slots() const { return slots_; }

 private:
  std::vector<uint64_t> slots_;
  bool empty_ = true;
};

/// Exact Jaccard similarity of two columns' distinct-value sets
/// (reference implementation for testing the estimator; O(n log n)).
double ExactJaccard(const df::Column& a, const df::Column& b);

}  // namespace arda::discovery

#endif  // ARDA_DISCOVERY_MINHASH_H_
