#ifndef ARDA_DISCOVERY_TRANSITIVE_H_
#define ARDA_DISCOVERY_TRANSITIVE_H_

#include <string>
#include <vector>

#include "discovery/candidate.h"
#include "discovery/discovery.h"
#include "discovery/repository.h"

namespace arda::discovery {

/// A two-hop augmentation path (the paper's future work on "automation of
/// augmentation via transitive joins"): the base table joins `via_table`
/// on `base_to_via`, and `via_table` joins `final_table` on
/// `via_to_final`, pulling the final table's columns within reach of the
/// base table even though they share no key with it directly.
struct TransitiveCandidate {
  std::string via_table;
  std::vector<JoinKeyPair> base_to_via;
  std::string final_table;
  std::vector<JoinKeyPair> via_to_final;
  /// min of the two hop scores.
  double score = 0.0;

  /// Name for the materialized bridge ("via+final").
  std::string MaterializedName() const {
    return via_table + "+" + final_table;
  }
};

/// Finds two-hop paths: for every direct candidate (base -> via), runs
/// discovery from `via` over the remaining repository tables. Paths back
/// to the base table or to tables already directly joinable are skipped.
/// Materialize a path into a joinable table with
/// join::MaterializeTransitive.
std::vector<TransitiveCandidate> DiscoverTransitiveCandidates(
    const DataRepository& repo, const std::string& base_name,
    const std::string& target_column, const DiscoveryOptions& options = {});

}  // namespace arda::discovery

#endif  // ARDA_DISCOVERY_TRANSITIVE_H_
