#include "discovery/repository.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "dataframe/columnar_io.h"
#include "dataframe/mapped_columnar.h"
#include "util/metrics.h"

namespace arda::discovery {

namespace fs = std::filesystem;

namespace {

// mtime-based freshness, the only signal available for fingerprint-less
// version-1 cache files. Equal timestamps count as stale: a CSV rewritten
// within the filesystem's mtime granularity ends up with the same mtime
// as the cache written just before it, and serving the cache then would
// silently return the old table. The cost of the strict comparison is one
// spurious re-parse when cache and CSV genuinely tied; version-2 caches
// avoid the problem entirely with a content fingerprint.
bool CacheIsFreshByMtime(const fs::path& cache, const fs::path& csv) {
  std::error_code ec;
  fs::file_time_type cache_time = fs::last_write_time(cache, ec);
  if (ec) return false;
  fs::file_time_type csv_time = fs::last_write_time(csv, ec);
  if (ec) return false;
  return cache_time > csv_time;
}

// Reads a whole file into a string (the CSV bytes double as parser input
// and as the content fingerprint for cache freshness).
Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open file: " + path);
  }
  std::string buffer;
  char block[1 << 16];
  size_t got;
  while ((got = std::fread(block, 1, sizeof(block), f)) > 0) {
    buffer.append(block, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("failed reading file: " + path);
  }
  return buffer;
}

}  // namespace

Status DataRepository::LoadDirectory(const std::string& data_dir,
                                     const std::string& cache_dir,
                                     const LoadOptions& options,
                                     LoadStats* stats) {
  const df::CsvOptions& csv_options = options.csv;
  LoadStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  std::error_code ec;
  fs::directory_iterator it(data_dir, ec);
  if (ec) {
    return Status::IoError("cannot open directory: " + data_dir);
  }
  std::vector<fs::path> csvs;
  for (const fs::directory_entry& entry : it) {
    if (entry.path().extension() == ".csv") csvs.push_back(entry.path());
  }
  // Directory iteration order is unspecified; sort so load order (and the
  // order of recorded fallbacks/failures) is deterministic.
  std::sort(csvs.begin(), csvs.end());

  if (!cache_dir.empty()) {
    fs::create_directories(cache_dir, ec);  // best-effort; reads degrade
  }

  for (const fs::path& csv_path : csvs) {
    const std::string stem = csv_path.stem().string();
    fs::path cache_path;
    if (!cache_dir.empty()) {
      cache_path = fs::path(cache_dir) / (stem + ".ardac");
    }

    Result<std::string> bytes = ReadFileBytes(csv_path.string());
    if (!bytes.ok()) {
      stats->failures.push_back({stem, bytes.status().ToString()});
      continue;
    }
    const uint64_t source_hash = df::StatsFnv1a64(*bytes);

    std::error_code exists_ec;
    if (!cache_path.empty() && fs::exists(cache_path, exists_ec)) {
      df::ColumnarMeta meta;
      Result<df::DataFrame> cached = [&]() -> Result<df::DataFrame> {
        if (options.map_cache) {
          bool unsupported_version = false;
          Result<df::DataFrame> mapped = df::MapColumnar(
              cache_path.string(), &meta, &unsupported_version);
          // A version-1/2 cache predates the mmap-able column index:
          // serve it eagerly with no fallback recorded (it migrates to
          // v3 whenever the CSV changes and the rewrite below runs). Any
          // *failed* map falls through the normal degradation path.
          if (mapped.ok() || !unsupported_version) return mapped;
        }
        return df::ReadColumnar(cache_path.string(), &meta);
      }();
      if (cached.ok()) {
        // Freshness: the recorded source fingerprint must match the CSV
        // bytes on disk. Fingerprint-less (version-1) caches degrade to
        // the mtime comparison, which cannot detect a same-mtime rewrite.
        const bool has_fingerprint =
            meta.source_size != 0 || meta.source_hash != 0;
        const bool fresh =
            has_fingerprint
                ? (meta.source_size == bytes->size() &&
                   meta.source_hash == source_hash)
                : CacheIsFreshByMtime(cache_path, csv_path);
        if (fresh) {
          AddOrReplace(stem, std::move(cached).value());
          // Persisted stats ride along with the cache hit; caches without
          // them (version 1) leave Stats() to recompute on demand.
          if (!meta.stats.Empty()) SetStats(stem, std::move(meta.stats));
          ++stats->tables_loaded;
          ++stats->cache_hits;
          continue;
        }
        // Stale cache: silently re-parse and rewrite below.
      } else {
        // Graceful degradation: a corrupt/skewed/faulted cache never
        // fails the load — fall through to the CSV. Counter and stats
        // entry move in lockstep so run reports stay consistent (see
        // AugmentationTask::ingest_skips).
        metrics::IncrementCounter("skips.ingest");
        stats->fallbacks.push_back(
            {stem, "columnar cache read failed, re-parsed CSV: " +
                       cached.status().ToString()});
      }
    }

    Result<df::DataFrame> table = df::ReadCsvString(*bytes, csv_options);
    if (!table.ok()) {
      stats->failures.push_back({stem, table.status().ToString()});
      continue;
    }
    df::TableStats table_stats;
    if (!cache_path.empty()) {
      // Best-effort cache refresh; a failed write only costs the next run
      // a re-parse. The meta block records the source fingerprint and the
      // statistics catalog computed once here at ingest.
      df::ColumnarMeta meta;
      meta.source_size = bytes->size();
      meta.source_hash = source_hash;
      meta.stats = df::ComputeTableStats(*table);
      if (df::WriteColumnar(*table, cache_path.string(), &meta).ok()) {
        ++stats->cache_writes;
      }
      table_stats = std::move(meta.stats);
    }
    AddOrReplace(stem, std::move(table).value());
    if (!table_stats.Empty()) SetStats(stem, std::move(table_stats));
    ++stats->tables_loaded;
  }
  return Status::Ok();
}

DataRepository::DataRepository(const DataRepository& other) {
  *this = other;
}

DataRepository& DataRepository::operator=(const DataRepository& other) {
  if (this == &other) return *this;
  tables_ = other.tables_;  // shares the frames (copy-on-write)
  std::scoped_lock lock(stats_mu_, other.stats_mu_);
  stats_ = other.stats_;
  return *this;
}

DataRepository::DataRepository(DataRepository&& other) noexcept {
  *this = std::move(other);
}

DataRepository& DataRepository::operator=(DataRepository&& other) noexcept {
  if (this == &other) return *this;
  tables_ = std::move(other.tables_);
  std::scoped_lock lock(stats_mu_, other.stats_mu_);
  stats_ = std::move(other.stats_);
  return *this;
}

Status DataRepository::Add(std::string name, df::DataFrame table) {
  auto [it, inserted] = tables_.emplace(
      std::move(name),
      std::make_shared<const df::DataFrame>(std::move(table)));
  if (!inserted) {
    return Status::AlreadyExists("table already registered: " + it->first);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.erase(it->first);
  return Status::Ok();
}

void DataRepository::AddOrReplace(std::string name, df::DataFrame table) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.erase(name);
  }
  tables_[std::move(name)] =
      std::make_shared<const df::DataFrame>(std::move(table));
}

bool DataRepository::Has(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const df::DataFrame*> DataRepository::Get(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second.get();
}

const df::DataFrame& DataRepository::GetOrDie(const std::string& name) const {
  auto it = tables_.find(name);
  ARDA_CHECK(it != tables_.end());
  return *it->second;
}

Status DataRepository::Remove(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.erase(name);
  return Status::Ok();
}

const df::TableStats* DataRepository::Stats(const std::string& name) const {
  auto table_it = tables_.find(name);
  if (table_it == tables_.end()) return nullptr;
  // Memoization is serialized: concurrent first calls on one table compute
  // once and every caller sees the same object. Holding the lock across
  // ComputeTableStats trades some concurrency for never computing a
  // catalog twice; stats are computed per table per process lifetime.
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    it = stats_
             .emplace(name, std::make_shared<const df::TableStats>(
                                df::ComputeTableStats(*table_it->second)))
             .first;
  }
  return it->second.get();
}

void DataRepository::SetStats(const std::string& name,
                              df::TableStats stats) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_[name] = std::make_shared<const df::TableStats>(std::move(stats));
}

std::vector<std::string> DataRepository::Names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace arda::discovery
