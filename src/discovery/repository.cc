#include "discovery/repository.h"

namespace arda::discovery {

Status DataRepository::Add(std::string name, df::DataFrame table) {
  auto [it, inserted] = tables_.emplace(std::move(name), std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("table already registered: " + it->first);
  }
  return Status::Ok();
}

void DataRepository::AddOrReplace(std::string name, df::DataFrame table) {
  tables_[std::move(name)] = std::move(table);
}

bool DataRepository::Has(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const df::DataFrame*> DataRepository::Get(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return &it->second;
}

const df::DataFrame& DataRepository::GetOrDie(const std::string& name) const {
  auto it = tables_.find(name);
  ARDA_CHECK(it != tables_.end());
  return it->second;
}

Status DataRepository::Remove(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::Ok();
}

std::vector<std::string> DataRepository::Names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace arda::discovery
